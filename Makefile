# Developer entry points. Everything is stdlib-only Go; see README.md's
# Development section.

GO ?= go

.PHONY: build test race bench bench-static experiments

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race coverage for the concurrent scan engine and candidate validation:
# the parallel scan grid, the single-flight reference cache, the worker-pool
# validator, the context watchdog, the fault-injection registry, and the
# batched static-stage scorer all run under the race detector.
race:
	$(GO) test -race ./patchecko/ ./internal/dynamic/ ./internal/emu/ ./internal/faultinject/ ./internal/detector/ ./internal/nn/

bench:
	$(GO) test -bench=. -benchmem

# Measure the static stage's scalar and batched candidate paths and refresh
# BENCH_static.json (ns/pair, pairs/sec, allocs/op, speedup). Fails if the
# batched path allocates in steady state or the speedup drops below 3x.
bench-static:
	PATCHECKO_BENCH_OUT=$(CURDIR)/BENCH_static.json $(GO) test ./internal/detector/ -run TestWriteStaticBenchArtifact -count=1 -v

experiments:
	$(GO) run ./cmd/experiments -scale medium -seed 42 -all
