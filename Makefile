# Developer entry points. Everything is stdlib-only Go; see README.md's
# Development section.

GO ?= go

.PHONY: build test race bench experiments

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race coverage for the concurrent scan engine and candidate validation:
# the parallel scan grid, the single-flight reference cache, and the
# worker-pool validator all run under the race detector.
race:
	$(GO) test -race ./patchecko/ ./internal/dynamic/

bench:
	$(GO) test -bench=. -benchmem

experiments:
	$(GO) run ./cmd/experiments -scale medium -seed 42 -all
