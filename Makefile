# Developer entry points. Everything is stdlib-only Go; see README.md's
# Development section.

GO ?= go

.PHONY: build test race bench experiments

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race coverage for the concurrent scan engine and candidate validation:
# the parallel scan grid, the single-flight reference cache, the worker-pool
# validator, the context watchdog and the fault-injection registry all run
# under the race detector.
race:
	$(GO) test -race ./patchecko/ ./internal/dynamic/ ./internal/emu/ ./internal/faultinject/

bench:
	$(GO) test -bench=. -benchmem

experiments:
	$(GO) run ./cmd/experiments -scale medium -seed 42 -all
