# Developer entry points. Everything is stdlib-only Go; see README.md's
# Development section.

GO ?= go

.PHONY: build test race bench bench-static fuzz-smoke cover experiments service-smoke lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Invariant lint suite: build the patcheckovet multichecker (the
# internal/lint analyzers — determinism, errtaxonomy, ctxflow,
# atomiccounter — behind the `go vet -vettool` protocol) and run it over
# the whole module. Intentional violations carry //patchecko:allow
# directives; see DESIGN.md "Enforced invariants". CI runs this.
lint:
	$(GO) build -o bin/patcheckovet ./cmd/patcheckovet
	$(GO) vet -vettool=$(CURDIR)/bin/patcheckovet ./...

# Race coverage for the concurrent scan engine and candidate validation:
# the parallel scan grid, the single-flight reference cache, the worker-pool
# validator, the context watchdog, the fault-injection registry, and the
# batched static-stage scorer all run under the race detector.
# The golden equivalence matrix alone is minutes of scanning; under the
# race detector on one core it overruns go test's default 10m deadline,
# so give the gate an explicit budget.
race:
	$(GO) test -race -timeout 45m ./patchecko/ ./internal/dynamic/ ./internal/emu/ ./internal/faultinject/ ./internal/detector/ ./internal/nn/ ./internal/cas/ ./internal/server/ ./internal/embed/ ./internal/annindex/

bench:
	$(GO) test -bench=. -benchmem

# Measure the static stage's scalar and batched candidate paths and refresh
# BENCH_static.json (ns/pair, pairs/sec, allocs/op, speedup). Fails if the
# batched path allocates in steady state or the speedup drops below 3x.
# The second step merges the embedding-index retrieval rows into the same
# artifact (pairs/sec vs batched exact, recall@K); it fails below the 5x
# retrieval floor or if recall@K at the covering operating point is not 1.0.
# The third step merges the component-identification prefilter rows
# (grid reduction, ground-truth recall, fingerprint/signature costs); it
# fails if recall on any fixture is not 1.0 or the fleet fixture's grid
# reduction drops below 2x.
bench-static:
	PATCHECKO_BENCH_OUT=$(CURDIR)/BENCH_static.json $(GO) test ./internal/detector/ -run TestWriteStaticBenchArtifact -count=1 -v
	PATCHECKO_BENCH_OUT=$(CURDIR)/BENCH_static.json $(GO) test ./internal/embed/ -run TestWriteRetrievalBenchArtifact -count=1 -v
	PATCHECKO_BENCH_OUT=$(CURDIR)/BENCH_static.json $(GO) test ./patchecko/ -run TestWritePrefilterBenchArtifact -count=1 -v

# Short fuzzing pass over every fuzz target, seeded from the checked-in
# corpora under testdata/fuzz. Ten seconds each is enough to exercise the
# mutator against the structural invariants; longer local runs just raise
# -fuzztime.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test ./internal/isa/ -run=Fuzz -fuzz=FuzzDecode$$ -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/isa/ -run=Fuzz -fuzz=FuzzDecodeAllNoHang -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/binimg/ -run=Fuzz -fuzz=FuzzImageDecode -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/disasm/ -run=Fuzz -fuzz=FuzzDisassemble -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/features/ -run=Fuzz -fuzz=FuzzExtract -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/cas/ -run=Fuzz -fuzz=FuzzNormalize -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/annindex/ -run=Fuzz -fuzz=FuzzDecode -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/compid/ -run=Fuzz -fuzz=FuzzFingerprintDecode -fuzztime=$(FUZZTIME)

# Statement-coverage floor for the packages the observability layer leans
# on hardest: the metrics/trace layer itself, the static-stage scorer, the
# scan engine, and the content-address/delta-store layer. The floor is
# asserted per package, so a regression in one cannot hide behind the
# others. CI runs this.
COVER_PKGS  = ./internal/obs/ ./internal/detector/ ./patchecko/ ./internal/cas/ ./internal/embed/ ./internal/annindex/ ./internal/compid/
COVER_FLOOR = 70
cover:
	@set -e; for pkg in $(COVER_PKGS); do \
		$(GO) test -coverprofile=cover.out $$pkg; \
		pct=$$($(GO) tool cover -func=cover.out | awk '/^total:/ { sub(/%/, "", $$3); print $$3 }'); \
		rm -f cover.out; \
		awk -v pct="$$pct" -v floor="$(COVER_FLOOR)" -v pkg="$$pkg" 'BEGIN { \
			if (pct + 0 < floor + 0) { \
				printf "FAIL: %s coverage %.1f%% below the %d%% floor\n", pkg, pct, floor; exit 1 } \
			}'; \
	done

experiments:
	$(GO) run ./cmd/experiments -scale medium -seed 42 -all

# End-to-end service smoke: start patcheckod over the seed-42 tiny fixture,
# submit thingos-1.0 through patcheckoctl, and require the served normalized
# Report to be byte-identical to the committed golden report. CI runs this.
service-smoke:
	./scripts/service_smoke.sh
