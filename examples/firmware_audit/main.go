// Firmware audit: the vendor-vetting scenario from the paper's
// introduction. A business integrating an IoT device receives its firmware
// as stripped binaries and wants to know which known CVEs are still
// unpatched. This example audits the Android Things stand-in (thingos-1.0)
// against the full 25-CVE database and prints an actionable report.
package main

import (
	"context"
	"fmt"
	"log"
	"runtime"
	"sort"
	"time"

	"repro/patchecko"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const seed = 21
	fmt.Println("training detector and building CVE database...")
	groups, err := patchecko.TrainingCorpus(patchecko.ScaleSmall, seed)
	if err != nil {
		return err
	}
	cfg := patchecko.DefaultTrainConfig()
	cfg.Seed = seed
	model, _, _, err := patchecko.TrainDetector(groups, cfg)
	if err != nil {
		return err
	}
	db, err := patchecko.BuildVulnDB(patchecko.ScaleSmall, seed)
	if err != nil {
		return err
	}

	fw, err := patchecko.BuildFirmware(patchecko.ThingOS, patchecko.ScaleSmall)
	if err != nil {
		return err
	}
	fmt.Printf("auditing %s (%s): %d library images\n\n", fw.Device, fw.Arch, len(fw.Images))

	an := patchecko.NewAnalyzer(model, db)
	an.Workers = runtime.NumCPU() // scan grid in parallel; the report is identical at any worker count
	report, err := an.ScanFirmware(context.Background(), fw)
	if err != nil {
		return err
	}
	fmt.Printf("scanned %d (image, CVE, mode) grid cells on %d workers in %v (%d cache hits / %d misses)\n\n",
		report.Stats.ScansRun, report.Stats.Workers, report.Stats.ScanWall.Round(time.Millisecond),
		report.Stats.CacheHits, report.Stats.CacheMisses)

	var vulnerable, patched, unlocated []string
	for id, scan := range report.Results {
		switch {
		case !scan.Matched:
			unlocated = append(unlocated, id)
		case scan.Verdict.Patched:
			patched = append(patched, id)
		default:
			vulnerable = append(vulnerable, id)
		}
	}
	sort.Strings(vulnerable)
	sort.Strings(patched)
	sort.Strings(unlocated)

	fmt.Printf("STILL VULNERABLE (%d):\n", len(vulnerable))
	for _, id := range vulnerable {
		scan := report.Results[id]
		fmt.Printf("  %-16s in %-18s match %#x (sim %.2f, %d candidates -> %d validated)\n",
			id, scan.Library, scan.Match.Addr, scan.Match.Sim,
			scan.NumCandidates, scan.NumExecuted)
	}
	fmt.Printf("\npatched (%d):\n", len(patched))
	for _, id := range patched {
		fmt.Printf("  %-16s in %s\n", id, report.Results[id].Library)
	}
	if len(unlocated) > 0 {
		fmt.Printf("\nnot located (%d): %v\n", len(unlocated), unlocated)
	}

	// Cross-check against the ground truth the corpus kept aside — a real
	// audit would not have this, but it shows the report's fidelity.
	correct := 0
	checked := 0
	for id, scan := range report.Results {
		truth, ok := fw.CVETruthFor(id)
		if !ok || !scan.Matched {
			continue
		}
		checked++
		if scan.Verdict.Patched == truth.Patched {
			correct++
		}
	}
	fmt.Printf("\nground-truth agreement: %d/%d verdicts correct\n", correct, checked)
	return nil
}
