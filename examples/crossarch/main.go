// Cross-architecture similarity: the property the whole static stage rests
// on. This example compiles one source function for all four architectures
// at all six optimization levels, prints how much the binaries differ at
// the instruction level, and then shows that the trained model still scores
// all 24 variants as the same function — while scoring a different function
// low.
package main

import (
	"fmt"
	"log"

	"repro/internal/compiler"
	"repro/internal/disasm"
	"repro/internal/features"
	"repro/internal/isa"
	"repro/internal/minic"
	"repro/patchecko"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const seed = 5
	// The subject: the paper's case-study function.
	pair := minic.CVEByID("CVE-2018-9412")
	mod := &minic.Module{Name: "demo", Funcs: []*minic.Func{pair.Vulnerable}}
	decoyMod := &minic.Module{Name: "decoy", Funcs: []*minic.Func{
		minic.CVEByID("CVE-2018-9427").Vulnerable, // an unrelated digest routine
	}}

	fmt.Println("compiling removeUnsynchronization for 4 architectures x 6 levels...")
	type variant struct {
		arch  string
		level compiler.Level
		vec   features.Vector
		insts int
		bytes int
	}
	var variants []variant
	for _, arch := range isa.All() {
		for _, lvl := range compiler.Levels() {
			im, err := compiler.Compile(mod, arch, lvl)
			if err != nil {
				return err
			}
			dis, err := disasm.Disassemble(im)
			if err != nil {
				return err
			}
			fn := dis.Funcs[0]
			variants = append(variants, variant{
				arch: arch.Name, level: lvl,
				vec:   features.Extract(dis, fn),
				insts: len(fn.Instrs),
				bytes: int(fn.Size),
			})
		}
	}
	fmt.Printf("%-8s %-6s %8s %8s\n", "arch", "level", "instrs", "bytes")
	for _, v := range variants {
		fmt.Printf("%-8s %-6s %8d %8d\n", v.arch, v.level, v.insts, v.bytes)
	}

	// Train the model and score the variants against each other.
	fmt.Println("\ntraining the similarity model...")
	groups, err := patchecko.TrainingCorpus(patchecko.ScaleSmall, seed)
	if err != nil {
		return err
	}
	cfg := patchecko.DefaultTrainConfig()
	cfg.Seed = seed
	model, _, _, err := patchecko.TrainDetector(groups, cfg)
	if err != nil {
		return err
	}

	ref := variants[0] // xarm32/O0
	var decoyVec features.Vector
	{
		im, err := compiler.Compile(decoyMod, isa.AMD64, compiler.O2)
		if err != nil {
			return err
		}
		dis, err := disasm.Disassemble(im)
		if err != nil {
			return err
		}
		decoyVec = features.Extract(dis, dis.Funcs[0])
	}

	fmt.Printf("\nsimilarity of every variant to %s/%s (same source, different binary):\n", ref.arch, ref.level)
	var same, cross int
	for _, v := range variants[1:] {
		s := model.Similarity(ref.vec, v.vec)
		marker := ""
		if s >= 0.5 {
			same++
			marker = "similar"
		}
		cross++
		fmt.Printf("  %-8s %-6s  %.3f  %s\n", v.arch, v.level, s, marker)
	}
	fmt.Printf("=> %d/%d cross-compilations recognized as the same function\n", same, cross)
	fmt.Printf("decoy function (mixKeyDigest, amd64/O2) scores %.3f\n",
		model.Similarity(ref.vec, decoyVec))
	return nil
}
