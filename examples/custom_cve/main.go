// Bring your own CVE: the paper's vulnerability database holds 2,076
// Android Security Bulletin entries; this example shows how a downstream
// user extends the database with their own advisory. You write the
// vulnerable and patched versions of the function in source form, AddCVE
// compiles references for every architecture and derives execution
// environments, and the scanner then finds (and patch-checks) the function
// in firmware it has never seen.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/patchecko"
)

// The vendor advisory: an allocation-size truncation. The vulnerable
// version truncates the element count to 16 bits before the bounds check;
// the patch validates the full value.
const vulnerableSrc = `
func packRecords(p, n, a) {
    hdr = checksum(p, 8);
    write_log(hdr);
    count = a & 0xffff;           // BUG: truncates before validating
    if (count > n / 4) { return -1; }
    i = 0;
    sum = 0;
    while (i < a) {               // ...but iterates the full count
        sum = sum + p[i * 4];
        i = i + 1;
    }
    return sum;
}
`

const patchedSrc = `
func packRecords(p, n, a) {
    hdr = checksum(p, 8);
    write_log(hdr);
    if (a < 0) { return -1; }     // FIX: validate the real value
    if (a > n / 4) { return -1; }
    i = 0;
    sum = 0;
    while (i < a) {
        sum = sum + p[i * 4];
        i = i + 1;
    }
    return sum;
}
`

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const seed = 77

	fmt.Println("building the stock 25-CVE database and adding ADV-2026-0001...")
	db, err := patchecko.BuildVulnDB(patchecko.ScaleTiny, seed)
	if err != nil {
		return err
	}
	err = patchecko.AddCVE(db, patchecko.CustomCVE{
		ID:         "ADV-2026-0001",
		Library:    "libvendorpack",
		FuncName:   "packRecords",
		Class:      "allocation-size truncation before bounds check",
		Vulnerable: vulnerableSrc,
		Patched:    patchedSrc,
	})
	if err != nil {
		return err
	}
	fmt.Printf("database now holds %d entries\n", len(db.Entries))

	// Build "vendor firmware": the vulnerable function compiled into a
	// library alongside unrelated code, then stripped.
	firmwareSrc := vulnerableSrc + `
func vendorInit(p, n) {
    i = 0;
    while (i < min(n, 32)) {
        p[i] = i * 7 & 255;
        i = i + 1;
    }
    return i;
}

func vendorChecksum(p, n) {
    return checksum(p, min(n, 64));
}
`
	im, err := patchecko.CompileSource("libvendorpack", firmwareSrc, "xarm64", "O2")
	if err != nil {
		return err
	}
	stripped := im.Strip()
	fmt.Printf("vendor firmware image: %d bytes of text, stripped\n", len(stripped.Text))

	// Train a detector and scan.
	fmt.Println("training detector...")
	groups, err := patchecko.TrainingCorpus(patchecko.ScaleSmall, seed)
	if err != nil {
		return err
	}
	cfg := patchecko.DefaultTrainConfig()
	cfg.Seed = seed
	model, _, _, err := patchecko.TrainDetector(groups, cfg)
	if err != nil {
		return err
	}
	an := patchecko.NewAnalyzer(model, db)
	prepared, err := patchecko.Prepare(stripped)
	if err != nil {
		return err
	}
	scan, err := an.ScanImage(context.Background(), prepared, "ADV-2026-0001", patchecko.QueryVulnerable)
	if err != nil {
		return err
	}
	fmt.Printf("scan: %d functions, %d candidates, %d validated\n",
		scan.TotalFuncs, scan.NumCandidates, scan.NumExecuted)
	if !scan.Matched {
		return fmt.Errorf("custom CVE not located in vendor firmware")
	}
	status := "STILL VULNERABLE"
	if scan.Verdict.Patched {
		status = "patched"
	}
	fmt.Printf("ADV-2026-0001 located at %#x (sim %.3f): %s (confidence %.2f)\n",
		scan.Match.Addr, scan.Match.Sim, status, scan.Verdict.Confidence)
	return nil
}
