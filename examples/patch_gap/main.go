// Hidden patch gap: the paper motivates PATCHECKO with studies showing
// vendors ship firmware whose actual patch state diverges from what they
// report (the "hidden patch gap"). This example scans two devices that
// nominally track the same CVE list — the Android Things stand-in on a
// 2018 patch level and the Pixel stand-in on a 2017 level — and prints the
// per-CVE divergence between them, which is exactly the information a
// fleet operator needs.
package main

import (
	"context"
	"fmt"
	"log"
	"runtime"

	"repro/patchecko"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func verdictOf(scan *patchecko.CVEScan) string {
	switch {
	case scan == nil || !scan.Matched:
		return "not-found"
	case scan.Verdict.Patched:
		return "patched"
	default:
		return "VULNERABLE"
	}
}

func run() error {
	const seed = 33
	fmt.Println("training detector and building CVE database...")
	groups, err := patchecko.TrainingCorpus(patchecko.ScaleSmall, seed)
	if err != nil {
		return err
	}
	cfg := patchecko.DefaultTrainConfig()
	cfg.Seed = seed
	model, _, _, err := patchecko.TrainDetector(groups, cfg)
	if err != nil {
		return err
	}
	db, err := patchecko.BuildVulnDB(patchecko.ScaleSmall, seed)
	if err != nil {
		return err
	}
	an := patchecko.NewAnalyzer(model, db)
	an.Workers = runtime.NumCPU()

	devices := []patchecko.Device{patchecko.ThingOS, patchecko.Pebble2XL}
	reports := make(map[string]*patchecko.Report, len(devices))
	for _, dev := range devices {
		fw, err := patchecko.BuildFirmware(dev, patchecko.ScaleSmall)
		if err != nil {
			return err
		}
		fmt.Printf("scanning %s (%s, %d libraries)...\n", dev.Name, fw.Arch, len(fw.Images))
		report, err := an.ScanFirmware(context.Background(), fw)
		if err != nil {
			return err
		}
		reports[dev.Name] = report
	}

	fmt.Printf("\n%-16s %14s %14s   %s\n", "CVE", devices[0].Name, devices[1].Name, "gap")
	gaps := 0
	for _, id := range db.IDs() {
		a := verdictOf(reports[devices[0].Name].Results[id])
		b := verdictOf(reports[devices[1].Name].Results[id])
		gap := ""
		if a != b && a != "not-found" && b != "not-found" {
			gap = "<-- patch gap"
			gaps++
		}
		fmt.Printf("%-16s %14s %14s   %s\n", id, a, b, gap)
	}
	fmt.Printf("\n%d CVEs have divergent patch states across the two devices.\n", gaps)
	fmt.Println("Devices sharing a CVE list do not share a patch level — the hidden patch gap.")
	return nil
}
