// Quickstart: the smallest end-to-end PATCHECKO run. It trains the
// similarity model on a generated corpus, builds the CVE database, scans
// one firmware library for the paper's case-study vulnerability
// (CVE-2018-9412, ID3::removeUnsynchronization) and prints the verdict.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/patchecko"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const seed = 7

	// 1. Dataset I: generated libraries compiled for 4 architectures at 6
	//    optimization levels, summarized as static feature vectors.
	fmt.Println("== building training corpus ==")
	groups, err := patchecko.TrainingCorpus(patchecko.ScaleSmall, seed)
	if err != nil {
		return err
	}
	fmt.Printf("%d source functions across %d compilations\n", len(groups), groups.NumVectors())

	// 2. Train the paper's 6-layer pair-similarity network.
	fmt.Println("\n== training detector ==")
	cfg := patchecko.DefaultTrainConfig()
	cfg.Seed = seed
	cfg.Epochs = 8
	cfg.Verbose = func(s string) { fmt.Println("  " + s) }
	model, _, ds, err := patchecko.TrainDetector(groups, cfg)
	if err != nil {
		return err
	}
	acc, _, auc := model.TestMetrics(ds.Test)
	fmt.Printf("held-out accuracy %.3f, AUC %.3f\n", acc, auc)

	// 3. Dataset II: the vulnerability database (references + environments).
	db, err := patchecko.BuildVulnDB(patchecko.ScaleSmall, seed)
	if err != nil {
		return err
	}

	// 4. Dataset III: a device firmware image set (stripped binaries).
	fw, err := patchecko.BuildFirmware(patchecko.ThingOS, patchecko.ScaleSmall)
	if err != nil {
		return err
	}

	// 5. Scan the host library for the case-study CVE.
	fmt.Println("\n== scanning libstagefright for CVE-2018-9412 ==")
	im, ok := fw.Image("libstagefright")
	if !ok {
		return fmt.Errorf("firmware has no libstagefright")
	}
	prepared, err := patchecko.Prepare(im)
	if err != nil {
		return err
	}
	fmt.Printf("recovered %d functions from the stripped image\n", prepared.NumFuncs())

	an := patchecko.NewAnalyzer(model, db)
	scan, err := an.ScanImage(context.Background(), prepared, "CVE-2018-9412", patchecko.QueryVulnerable)
	if err != nil {
		return err
	}
	fmt.Printf("static stage:  %d candidate functions\n", scan.NumCandidates)
	fmt.Printf("dynamic stage: %d survived input validation\n", scan.NumExecuted)
	for i, r := range scan.Ranking {
		if i >= 3 {
			break
		}
		fmt.Printf("  rank %d: function at %#x (similarity distance %.3f)\n", i+1, r.Addr, r.Sim)
	}
	if !scan.Matched {
		return fmt.Errorf("no match found")
	}
	status := "STILL VULNERABLE"
	if scan.Verdict.Patched {
		status = "patched"
	}
	fmt.Printf("differential verdict: %s (confidence %.2f)\n", status, scan.Verdict.Confidence)
	return nil
}
