#!/usr/bin/env bash
# End-to-end smoke test for the resident scan service: build the daemon and
# client, regenerate the seed-42 tiny fixture, serve it through patcheckod,
# and require the served normalized Report to be byte-identical to the
# committed golden report — the same bytes the CLI scan and the golden test
# suite pin. Run from the repo root; CI runs this as the service-smoke job.
set -euo pipefail

cd "$(dirname "$0")/.."
work="$(mktemp -d)"
addr="127.0.0.1:${SMOKE_PORT:-8941}"
daemon_pid=""
cleanup() {
    status=$?
    if [ -n "$daemon_pid" ] && kill -0 "$daemon_pid" 2>/dev/null; then
        kill "$daemon_pid" 2>/dev/null || true
        # Grace period, then force: a wedged daemon must not hang the trap.
        for _ in $(seq 1 50); do
            kill -0 "$daemon_pid" 2>/dev/null || break
            sleep 0.1
        done
        kill -9 "$daemon_pid" 2>/dev/null || true
    fi
    [ -n "$daemon_pid" ] && wait "$daemon_pid" 2>/dev/null || true
    rm -rf "$work"
    exit "$status"
}
trap cleanup EXIT
trap 'exit 130' INT
trap 'exit 143' TERM

echo "==> building"
go build -o "$work/patchecko" ./cmd/patchecko
go build -o "$work/patcheckod" ./cmd/patcheckod
go build -o "$work/patcheckoctl" ./cmd/patcheckoctl
go build -o "$work/corpusgen" ./cmd/corpusgen

echo "==> generating the seed-42 tiny fixture"
"$work/corpusgen" -out "$work/corpus" -scale tiny -seed 42
"$work/patchecko" train -scale tiny -seed 42 -out "$work/model.json"

echo "==> starting patcheckod on $addr"
"$work/patcheckod" -addr "$addr" \
    -model "$work/model.json" -db "$work/corpus/vulndb.json" \
    -journal "$work/journal.jsonl" -store "$work/store" \
    -metrics "$work/daemon_metrics.json" &
daemon_pid=$!

# Wait for readiness (the daemon loads the model before listening).
for i in $(seq 1 50); do
    if "$work/patcheckoctl" health -addr "http://$addr" >/dev/null 2>&1; then
        break
    fi
    if ! kill -0 "$daemon_pid" 2>/dev/null; then
        echo "FAIL: patcheckod exited before becoming healthy" >&2
        exit 1
    fi
    sleep 0.2
done
"$work/patcheckoctl" health -addr "http://$addr" >/dev/null

echo "==> submitting thingos-1.0 and fetching the normalized report"
"$work/patcheckoctl" submit -addr "http://$addr" \
    -dir "$work/corpus/thingos-1.0" -device thingos-1.0 -arch xarm32 \
    -normalize -out "$work/report.json"

echo "==> comparing against the committed golden report"
if ! cmp "$work/report.json" patchecko/testdata/golden_report_seed42.json; then
    echo "FAIL: served report diverges from patchecko/testdata/golden_report_seed42.json" >&2
    exit 1
fi

echo "==> checking /metrics"
metrics="$("$work/patcheckoctl" metrics -addr "http://$addr")"
for want in '"jobs_admitted":1' '"jobs_completed":1'; do
    case "$metrics" in
    *"$want"*) ;;
    *)
        echo "FAIL: /metrics missing $want:" >&2
        echo "$metrics" >&2
        exit 1
        ;;
    esac
done

echo "PASS: served scan is byte-identical to the committed golden report"
