package patchecko

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/binimg"
	"repro/internal/minic"
)

func TestFailKindString(t *testing.T) {
	for _, tc := range []struct {
		kind FailKind
		want string
	}{
		{FailDecode, "decode"},
		{FailPrepare, "prepare"},
		{FailReference, "reference"},
		{FailTrap, "trap"},
		{FailPanic, "panic"},
		{FailCancelled, "cancelled"},
		{FailInternal, "internal"},
		{FailKind(0), "failkind(0)"},
		{FailKind(99), "failkind(99)"},
	} {
		if got := tc.kind.String(); got != tc.want {
			t.Errorf("FailKind(%d).String() = %q, want %q", int(tc.kind), got, tc.want)
		}
	}
}

// TestClassify pins the cause-over-stage precedence of the error-chain
// classifier: specific recognized causes (cancellation, traps, image rot,
// panics) win over the stage fallback no matter how deeply they are wrapped.
func TestClassify(t *testing.T) {
	trap := &minic.TrapError{Kind: minic.TrapOOB, Addr: 0x20}
	for _, tc := range []struct {
		name  string
		err   error
		stage FailKind
		want  FailKind
	}{
		{"nil", nil, FailPrepare, 0},
		{"canceled", context.Canceled, FailInternal, FailCancelled},
		{"deadline", context.DeadlineExceeded, FailInternal, FailCancelled},
		{"wrapped canceled", fmt.Errorf("scan: %w", context.Canceled), FailReference, FailCancelled},
		{"trap", trap, FailInternal, FailTrap},
		{"wrapped trap", fmt.Errorf("profiling: %w", trap), FailReference, FailTrap},
		{"trap inside refError", &refError{err: trap}, FailReference, FailTrap},
		{"bad image", binimg.ErrBadImage, FailInternal, FailDecode},
		{"wrapped bad image", fmt.Errorf("load: %w", binimg.ErrBadImage), FailPrepare, FailDecode},
		{"panic", &panicError{v: "boom"}, FailInternal, FailPanic},
		{"wrapped panic", fmt.Errorf("cell: %w", &panicError{v: 42}), FailReference, FailPanic},
		{"plain falls back to stage", errors.New("no candidates"), FailReference, FailReference},
		{"plain internal", errors.New("whatever"), FailInternal, FailInternal},
		// Cancellation is checked before traps: a trap that surfaced because
		// the context died still reads as cancellation.
		{"canceled beats trap", fmt.Errorf("%w after %w", context.Canceled, trap), FailInternal, FailCancelled},
	} {
		if got := classify(tc.err, tc.stage); got != tc.want {
			t.Errorf("%s: classify(%v, %v) = %v, want %v", tc.name, tc.err, tc.stage, got, tc.want)
		}
	}
}

// TestCellError pins the scope encoding: reference-side failures blank the
// library coordinate (the reference is broken independently of any target
// image) and default to FailReference, while everything else keeps all three
// cell coordinates.
func TestCellError(t *testing.T) {
	trap := &minic.TrapError{Kind: minic.TrapDivZero}
	for _, tc := range []struct {
		name string
		err  error
		want ScanError
	}{
		{
			"plain cell failure",
			errors.New("mystery"),
			ScanError{CVE: "CVE-1", Library: "libx", Mode: QueryVulnerable, Kind: FailInternal, Msg: "mystery"},
		},
		{
			"reference failure drops library",
			&refError{err: errors.New("reference rot")},
			ScanError{CVE: "CVE-1", Mode: QueryVulnerable, Kind: FailReference, Msg: "reference rot"},
		},
		{
			"trap beats reference stage, still reference-scoped",
			&refError{err: trap},
			ScanError{CVE: "CVE-1", Mode: QueryVulnerable, Kind: FailTrap, Msg: trap.Error()},
		},
		{
			"panic keeps cell scope",
			&panicError{v: "boom"},
			ScanError{CVE: "CVE-1", Library: "libx", Mode: QueryVulnerable, Kind: FailPanic, Msg: "panic in scan worker: boom"},
		},
		{
			"decode rot in cell work keeps cell scope",
			fmt.Errorf("target: %w", binimg.ErrBadImage),
			ScanError{CVE: "CVE-1", Library: "libx", Mode: QueryVulnerable, Kind: FailDecode,
				Msg: "target: " + binimg.ErrBadImage.Error()},
		},
	} {
		got := cellError("CVE-1", "libx", QueryVulnerable, tc.err)
		if got != tc.want {
			t.Errorf("%s:\n got %+v\nwant %+v", tc.name, got, tc.want)
		}
	}
}

// TestScanErrorRendering checks the three scope renderings that field
// presence encodes.
func TestScanErrorRendering(t *testing.T) {
	for _, tc := range []struct {
		name string
		se   ScanError
		want string
	}{
		{
			"image scope",
			ScanError{Library: "libx", Kind: FailPrepare, Msg: "bad bytes"},
			"image libx: prepare: bad bytes",
		},
		{
			"reference scope",
			ScanError{CVE: "CVE-9", Mode: QueryPatched, Kind: FailTrap, Msg: "oob"},
			"CVE-9 [patched]: trap: oob",
		},
		{
			"cell scope",
			ScanError{CVE: "CVE-9", Library: "libx", Mode: QueryVulnerable, Kind: FailPanic, Msg: "boom"},
			"CVE-9 [vulnerable] on libx: panic: boom",
		},
	} {
		if got := tc.se.Error(); got != tc.want {
			t.Errorf("%s: Error() = %q, want %q", tc.name, got, tc.want)
		}
	}
}

// TestScanErrorDedupEquality pins the property the engine's dedup relies on:
// ScanError is a plain comparable value, so independently-constructed records
// of the same failure are equal (and usable as map keys), while any differing
// coordinate keeps records distinct.
func TestScanErrorDedupEquality(t *testing.T) {
	mk := func() ScanError {
		return cellError("CVE-1", "libx", QueryVulnerable, &refError{err: errors.New("reference rot")})
	}
	a, b := mk(), mk()
	if a != b {
		t.Fatalf("identical failures not equal: %+v vs %+v", a, b)
	}
	seen := map[ScanError]bool{a: true}
	if !seen[b] {
		t.Fatal("equal ScanError missed as map key")
	}
	for _, other := range []ScanError{
		cellError("CVE-2", "libx", QueryVulnerable, &refError{err: errors.New("reference rot")}),
		cellError("CVE-1", "libx", QueryPatched, &refError{err: errors.New("reference rot")}),
		cellError("CVE-1", "libx", QueryVulnerable, &refError{err: errors.New("different rot")}),
		cellError("CVE-1", "libx", QueryVulnerable, errors.New("reference rot")),
	} {
		if other == a {
			t.Errorf("distinct failure compares equal: %+v", other)
		}
	}
}

// TestPanicErrorMessage keeps the recovered-panic rendering stable; the
// chaos suite matches on it when asserting worker-panic isolation.
func TestPanicErrorMessage(t *testing.T) {
	err := &panicError{v: errors.New("inner")}
	if got := err.Error(); !strings.Contains(got, "panic in scan worker") || !strings.Contains(got, "inner") {
		t.Errorf("panicError rendering = %q", got)
	}
	var pe *panicError
	if !errors.As(fmt.Errorf("wrap: %w", err), &pe) {
		t.Error("panicError lost through wrapping")
	}
}
