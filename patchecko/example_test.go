package patchecko_test

import (
	"context"
	"fmt"
	"log"
	"runtime"

	"repro/patchecko"
)

// Example demonstrates the full pipeline at the smallest scale: train a
// detector, build the CVE database and a device firmware image, then scan
// one library for the paper's case-study vulnerability. (Compile-only
// documentation: corpus generation and training take seconds, so the
// example declares no expected output.)
func Example() {
	groups, err := patchecko.TrainingCorpus(patchecko.ScaleSmall, 1)
	if err != nil {
		log.Fatal(err)
	}
	model, _, _, err := patchecko.TrainDetector(groups, patchecko.DefaultTrainConfig())
	if err != nil {
		log.Fatal(err)
	}
	db, err := patchecko.BuildVulnDB(patchecko.ScaleSmall, 1)
	if err != nil {
		log.Fatal(err)
	}
	fw, err := patchecko.BuildFirmware(patchecko.ThingOS, patchecko.ScaleSmall)
	if err != nil {
		log.Fatal(err)
	}
	im, _ := fw.Image("libstagefright")
	prepared, err := patchecko.Prepare(im)
	if err != nil {
		log.Fatal(err)
	}
	an := patchecko.NewAnalyzer(model, db)
	scan, err := an.ScanImage(context.Background(), prepared, "CVE-2018-9412", patchecko.QueryVulnerable)
	if err != nil {
		log.Fatal(err)
	}
	if scan.Matched {
		fmt.Printf("found at %#x, patched=%v\n", scan.Match.Addr, scan.Verdict.Patched)
	}
}

// ExampleAddCVE shows how to extend the vulnerability database with a
// user-authored advisory written in the source language.
func ExampleAddCVE() {
	db := &patchecko.DB{}
	err := patchecko.AddCVE(db, patchecko.CustomCVE{
		ID:       "ADV-0001",
		Library:  "libcustom",
		FuncName: "decode",
		Vulnerable: `func decode(p, n) {
			i = 0; s = 0;
			while (i <= n) { s = s + p[i]; i = i + 1; }  // off-by-one
			return s;
		}`,
		Patched: `func decode(p, n) {
			i = 0; s = 0;
			while (i < n) { s = s + p[i]; i = i + 1; }
			return s;
		}`,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(db.Entries))
	// Output: 1
}

// ExampleCompileSource compiles source text to a binary image and
// disassembles it.
func ExampleCompileSource() {
	im, err := patchecko.CompileSource("libdemo",
		"func twice(a) { return a * 2; }", "amd64", "O2")
	if err != nil {
		log.Fatal(err)
	}
	dis, err := patchecko.Disassemble(im)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(dis.Funcs), dis.Funcs[0].Name)
	// Output: 1 twice
}

// ExampleAnalyzer_ScanFirmware audits a whole device image set.
func ExampleAnalyzer_ScanFirmware() {
	var (
		model *patchecko.Model // trained via TrainDetector
		db    *patchecko.DB    // built via BuildVulnDB
	)
	if model == nil || db == nil {
		return // documentation sketch; see examples/firmware_audit for a full run
	}
	fw, err := patchecko.BuildFirmware(patchecko.Pebble2XL, patchecko.ScaleSmall)
	if err != nil {
		log.Fatal(err)
	}
	an := patchecko.NewAnalyzer(model, db)
	an.Workers = runtime.NumCPU() // deterministic output, parallel wall-clock
	report, err := an.ScanFirmware(context.Background(), fw)
	if err != nil {
		log.Fatal(err)
	}
	for id, scan := range report.Results {
		if scan.Matched && !scan.Verdict.Patched {
			fmt.Println(id, "is still vulnerable in", scan.Library)
		}
	}
}
