// Component-identification prefilter: before the scan grid is scheduled,
// each prepared image is fingerprinted once (internal/compid) and each CVE
// row keeps only the images whose fingerprints match the CVE's component
// signature — UVSCAN's identify-components-first architecture applied to
// the (image, CVE, mode) grid. The keep rule is calibrated recall-safe (a
// pruned cell is one the full grid would have scored as a no-match), and
// every escape path degrades to the FULL grid, never to silent pruning:
// missing signatures, degenerate signatures, armed compid.match faults and
// rows the filter would empty all keep their cells, with the degrade
// counted and traced.

package patchecko

import (
	"repro/internal/compid"
	"repro/internal/faultinject"
	"repro/internal/isa"
	"repro/internal/obs"
)

// Fingerprint returns the image's component fingerprint, built once per
// prepared image from work Prepare already did (the disassembly and feature
// vectors) and shared across CVEs, scans and workers. The build is
// single-flighted under the image's mutex like the target sets.
func (p *PreparedImage) Fingerprint() *compid.Fingerprint {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.fp == nil {
		p.fp = compid.Extract(p.Image, p.Dis, p.Vecs)
	}
	return p.fp
}

// signatureFor returns the memoized component signature for (CVE, arch),
// deriving it on first use. A failed derivation memoizes nil: no signature
// means the prefilter cannot justify pruning, so callers keep those cells.
func (a *Analyzer) signatureFor(cveID, arch string) *compid.Signature {
	a.sigMu.Lock()
	defer a.sigMu.Unlock()
	key := cveID + "|" + arch
	if sig, ok := a.sigs[key]; ok {
		return sig
	}
	var sig *compid.Signature
	if ar, err := isa.ByName(arch); err == nil {
		sig, _ = compid.SignatureFor(cveID, ar)
	}
	if a.sigs == nil {
		a.sigs = make(map[string]*compid.Signature)
	}
	a.sigs[key] = sig
	return sig
}

// PrefilterKeep reports whether the component prefilter keeps the
// (image, CVE) pair: true when the image's fingerprint matches the CVE's
// component signature, and unconditionally true on every degrade path — an
// armed compid.match fault (keyed "<libname>|<cve>") or a CVE with no
// derivable signature. The scan CLI uses it to explain per-CVE pruning;
// ScanFirmware folds it into the grid keep matrix.
func (a *Analyzer) PrefilterKeep(p *PreparedImage, cveID string) bool {
	if ferr := faultinject.Fire(faultinject.CompidMatch, p.Image.LibName+"|"+cveID); ferr != nil {
		a.Obs.Add(obs.CtrPrefilterDegraded, 1)
		return true
	}
	sig := a.signatureFor(cveID, p.Image.Arch)
	if sig == nil {
		return true
	}
	return sig.Matches(p.Fingerprint())
}

// prefilterGrid computes the scan grid's keep matrix, indexed [CVE][image],
// plus the number of (image, CVE, mode) cells pruned. It returns a nil
// matrix when the prefilter is off (schedule everything). Runs sequentially
// before the grid, so its counters and trace events are deterministic for
// any worker count.
func (a *Analyzer) prefilterGrid(prepared []*PreparedImage, ids []string, nModes int) ([][]bool, int) {
	if !a.Prefilter {
		return nil, 0
	}
	keep := make([][]bool, len(ids))
	pruned := 0
	for ci, id := range ids {
		row := make([]bool, len(prepared))
		keep[ci] = row
		healthy := 0
		var sig *compid.Signature
		for _, p := range prepared {
			if p != nil {
				healthy++
				if sig == nil {
					sig = a.signatureFor(id, p.Image.Arch)
				}
			}
		}
		if healthy == 0 {
			continue
		}
		if sig == nil {
			// No signature to prune against: the whole row runs.
			for pi, p := range prepared {
				row[pi] = p != nil
			}
			a.Obs.Add(obs.CtrPrefilterDegraded, 1)
			a.Obs.Emit(obs.Event{
				Kind:   obs.EvPrefilter,
				CVE:    id,
				Images: healthy,
				Reason: "no signature; kept full row",
			})
			continue
		}
		kept := 0
		for pi, p := range prepared {
			if p == nil {
				continue
			}
			if a.PrefilterKeep(p, id) {
				row[pi] = true
				kept++
			}
		}
		reason := ""
		if kept == 0 {
			// A row the filter would empty is a filter failure, not a
			// finding: keep every cell so the full grid decides.
			for pi, p := range prepared {
				row[pi] = p != nil
			}
			kept = healthy
			reason = "all cells pruned; kept full row"
			a.Obs.Add(obs.CtrPrefilterDegraded, 1)
		}
		pruned += (healthy - kept) * nModes
		a.Obs.Emit(obs.Event{
			Kind:   obs.EvPrefilter,
			CVE:    id,
			Images: healthy,
			Pruned: healthy - kept,
			Reason: reason,
		})
	}
	return keep, pruned
}
