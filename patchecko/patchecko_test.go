package patchecko

import (
	"context"
	"sync"
	"testing"

	"repro/internal/vulndb"
)

type vulndbEntry = vulndb.Entry

// Shared fixtures: training a model and building the corpus dominate test
// time, so build them once.
var (
	fixOnce  sync.Once
	fixModel *Model
	fixDB    *DB
	fixErr   error
)

func fixtures(t *testing.T) (*Model, *DB) {
	t.Helper()
	fixOnce.Do(func() {
		groups, err := TrainingCorpus(ScaleSmall, 11)
		if err != nil {
			fixErr = err
			return
		}
		cfg := DefaultTrainConfig()
		cfg.Epochs = 8
		fixModel, _, _, fixErr = TrainDetector(groups, cfg)
		if fixErr != nil {
			return
		}
		fixDB, fixErr = BuildVulnDB(ScaleTiny, 11)
	})
	if fixErr != nil {
		t.Fatal(fixErr)
	}
	return fixModel, fixDB
}

func TestEndToEndCaseStudy(t *testing.T) {
	// §IV's case study, end to end: locate removeUnsynchronization
	// (CVE-2018-9412) in the ThingOS libstagefright image and confirm the
	// verdict matches the device's ground truth (unpatched).
	model, db := fixtures(t)
	fw, err := BuildFirmware(ThingOS, ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	truth, ok := fw.CVETruthFor("CVE-2018-9412")
	if !ok {
		t.Fatal("no ground truth")
	}
	im, ok := fw.Image(truth.Library)
	if !ok {
		t.Fatal("host library missing")
	}
	p, err := Prepare(im)
	if err != nil {
		t.Fatal(err)
	}
	an := NewAnalyzer(model, db)
	scan, err := an.ScanImage(context.Background(), p, "CVE-2018-9412", QueryVulnerable)
	if err != nil {
		t.Fatal(err)
	}
	if scan.TotalFuncs == 0 || scan.NumCandidates == 0 {
		t.Fatalf("static stage found nothing: %+v", scan)
	}
	if scan.NumExecuted == 0 {
		t.Fatal("dynamic validation pruned every candidate")
	}
	if scan.NumExecuted > scan.NumCandidates {
		t.Error("more executed than candidates")
	}
	if !scan.Matched {
		t.Fatal("no match")
	}
	rank := scan.TopRank(truth.Addr)
	if rank == 0 || rank > 3 {
		t.Errorf("true function ranked %d, want top 3 (paper: 100%% top-3)", rank)
	}
	if scan.Verdict.Patched {
		t.Error("verdict says patched; ThingOS carries the vulnerable version")
	}
	if scan.StaticTime <= 0 || scan.DynamicTime <= 0 {
		t.Error("timings not recorded")
	}
}

func TestPatchedDeviceVerdict(t *testing.T) {
	// CVE-2017-13232 is patched on ThingOS: the pipeline must find the
	// function and report it patched.
	model, db := fixtures(t)
	fw, err := BuildFirmware(ThingOS, ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	truth, _ := fw.CVETruthFor("CVE-2017-13232")
	if !truth.Patched {
		t.Fatal("fixture assumption broken: 13232 should be patched on ThingOS")
	}
	im, _ := fw.Image(truth.Library)
	p, err := Prepare(im)
	if err != nil {
		t.Fatal(err)
	}
	an := NewAnalyzer(model, db)
	scan, err := an.ScanImage(context.Background(), p, "CVE-2017-13232", QueryVulnerable)
	if err != nil {
		t.Fatal(err)
	}
	if !scan.Matched {
		t.Skip("static stage missed the patched variant (the paper notes vulnerable-query scans can miss patched functions)")
	}
	if scan.TopRank(truth.Addr) == 0 {
		t.Skip("true function not among dynamic survivors for the vulnerable query")
	}
	if scan.TopRank(truth.Addr) <= 3 && !scan.Verdict.Patched {
		t.Error("verdict says vulnerable; ThingOS carries the patch")
	}
}

func TestScanUnknownCVE(t *testing.T) {
	model, db := fixtures(t)
	fw, err := BuildFirmware(ThingOS, ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Prepare(fw.Images[0])
	if err != nil {
		t.Fatal(err)
	}
	an := NewAnalyzer(model, db)
	if _, err := an.ScanImage(context.Background(), p, "CVE-1999-0001", QueryVulnerable); err == nil {
		t.Error("want error for unknown CVE")
	}
}

func TestQueryModes(t *testing.T) {
	model, db := fixtures(t)
	fw, err := BuildFirmware(ThingOS, ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	truth, _ := fw.CVETruthFor("CVE-2018-9412")
	im, _ := fw.Image(truth.Library)
	p, err := Prepare(im)
	if err != nil {
		t.Fatal(err)
	}
	an := NewAnalyzer(model, db)
	for _, mode := range []QueryMode{QueryVulnerable, QueryPatched} {
		scan, err := an.ScanImage(context.Background(), p, "CVE-2018-9412", mode)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if scan.Mode != mode {
			t.Errorf("mode not recorded")
		}
	}
	if QueryVulnerable.String() == QueryPatched.String() {
		t.Error("mode strings indistinct")
	}
}

func TestScanFirmwareReport(t *testing.T) {
	model, db := fixtures(t)
	fw, err := BuildFirmware(Pebble2XL, ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	an := NewAnalyzer(model, db)
	report, err := an.ScanFirmware(context.Background(), fw)
	if err != nil {
		t.Fatal(err)
	}
	if report.Device != Pebble2XL.Name || report.Arch != "xarm64" {
		t.Errorf("report header wrong: %+v", report)
	}
	if len(report.Results) != 25 {
		t.Fatalf("%d CVE results, want 25", len(report.Results))
	}
	matched := 0
	for id, scan := range report.Results {
		if scan == nil {
			t.Fatalf("%s: nil scan", id)
		}
		if scan.Matched {
			matched++
		}
	}
	if matched < 15 {
		t.Errorf("only %d/25 CVEs matched anywhere in the firmware", matched)
	}
}

func TestPreparedImageCountsFunctions(t *testing.T) {
	_, db := fixtures(t)
	entry, _ := db.Get("CVE-2018-9412")
	ref, err := entry.VulnRef("amd64")
	if err != nil {
		t.Fatal(err)
	}
	p, err := Prepare(ref.Dis.Image)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumFuncs() != 1 || len(p.Vecs) != 1 {
		t.Errorf("single-function reference image prepared as %d funcs", p.NumFuncs())
	}
}

func TestAddCVE(t *testing.T) {
	_, db := fixtures(t)
	// Work on a copy so other tests see the stock database.
	dbCopy := &DB{Entries: append([]*vulndbEntry(nil), db.Entries...)}

	const vuln = `
func zap(p, n) {
    i = 0;
    while (i <= n) {  // off-by-one
        p[i] = 0;
        i = i + 1;
    }
    return i;
}
`
	const patched = `
func zap(p, n) {
    i = 0;
    while (i < n) {
        p[i] = 0;
        i = i + 1;
    }
    return i;
}
`
	c := CustomCVE{
		ID: "ADV-TEST-1", Library: "libzap", FuncName: "zap",
		Vulnerable: vuln, Patched: patched,
	}
	if err := AddCVE(dbCopy, c); err != nil {
		t.Fatal(err)
	}
	entry, ok := dbCopy.Get("ADV-TEST-1")
	if !ok {
		t.Fatal("entry not added")
	}
	if len(entry.Envs) == 0 || len(entry.VulnImages) != 4 || len(entry.PatchedImages) != 4 {
		t.Errorf("incomplete entry: %d envs, %d/%d images",
			len(entry.Envs), len(entry.VulnImages), len(entry.PatchedImages))
	}
	// Duplicate and malformed additions are rejected.
	if err := AddCVE(dbCopy, c); err == nil {
		t.Error("duplicate ID accepted")
	}
	bad := []CustomCVE{
		{ID: "", FuncName: "zap", Vulnerable: vuln, Patched: patched},
		{ID: "X", FuncName: "nosuch", Vulnerable: vuln, Patched: patched},
		{ID: "Y", FuncName: "zap", Vulnerable: "not source", Patched: patched},
		{ID: "Z", FuncName: "zap", Vulnerable: vuln,
			Patched: "func zap(p) { return 0; }"}, // arity mismatch
	}
	for _, c := range bad {
		if err := AddCVE(dbCopy, c); err == nil {
			t.Errorf("accepted bad custom CVE %q", c.ID)
		}
	}
}

func TestCompileSourceAndDisassemble(t *testing.T) {
	im, err := CompileSource("libsrc", "func f(a) { return a * 3; }", "x86", "O2")
	if err != nil {
		t.Fatal(err)
	}
	dis, err := Disassemble(im)
	if err != nil {
		t.Fatal(err)
	}
	if len(dis.Funcs) != 1 || dis.Funcs[0].Name != "f" {
		t.Errorf("unexpected disassembly: %d funcs", len(dis.Funcs))
	}
	if _, err := CompileSource("x", "garbage", "x86", "O2"); err == nil {
		t.Error("bad source accepted")
	}
	if _, err := CompileSource("x", "func f() { return 0; }", "mips", "O2"); err == nil {
		t.Error("bad arch accepted")
	}
	if _, err := CompileSource("x", "func f() { return 0; }", "x86", "O9"); err == nil {
		t.Error("bad level accepted")
	}
}

func TestExploitReplayAnalyzer(t *testing.T) {
	// The replay extension resolves the one-integer patch: ThingOS carries
	// the vulnerable CVE-2018-9470, which the default engine misreports as
	// patched (the paper's Table VIII miss) but replay classifies correctly.
	model, db := fixtures(t)
	fw, err := BuildFirmware(ThingOS, ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	truth, _ := fw.CVETruthFor("CVE-2018-9470")
	if truth.Patched {
		t.Fatal("fixture: 9470 must be unpatched on ThingOS")
	}
	im, _ := fw.Image(truth.Library)
	p, err := Prepare(im)
	if err != nil {
		t.Fatal(err)
	}
	an := NewAnalyzer(model, db)
	if an.DB() != db {
		t.Error("DB accessor broken")
	}
	base, err := an.ScanImage(context.Background(), p, "CVE-2018-9470", QueryVulnerable)
	if err != nil {
		t.Fatal(err)
	}
	an.ExploitReplay = true
	an.Workers = 4 // also exercise parallel validation in the pipeline
	replay, err := an.ScanImage(context.Background(), p, "CVE-2018-9470", QueryVulnerable)
	if err != nil {
		t.Fatal(err)
	}
	if !base.Matched || !replay.Matched {
		t.Skip("static stage missed the function at tiny scale")
	}
	if base.Match.Addr != truth.Addr || replay.Match.Addr != truth.Addr {
		t.Skip("matched a lookalike; replay verdict not meaningful")
	}
	if !base.Verdict.Patched {
		t.Error("default engine classified the minute patch — blind spot disappeared")
	}
	if replay.Verdict.Patched {
		t.Error("exploit replay failed to flip the verdict to vulnerable")
	}
	if replay.Verdict.Confidence <= base.Verdict.Confidence {
		t.Error("replay verdict should be high confidence")
	}
}
