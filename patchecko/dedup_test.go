package patchecko

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"repro/internal/binimg"
	"repro/internal/cas"
)

// dedupFleet builds the delta-scan fixture: the seed-42 firmware plus a
// byte-identical clone of one library under another name, the way a real
// fleet ships the same vendor library on several device models. The clone
// guarantees genuine cross-image duplication, so the in-memory dedup path
// is exercised and measurable.
func dedupFleet(t *testing.T) (*Model, *DB, *Firmware, *binimg.Image) {
	t.Helper()
	model, db, fw := goldenFixtures(t)
	clone := *fw.Images[0]
	clone.LibName = fw.Images[0].LibName + "clone"
	fleet := *fw
	fleet.Images = append(append([]*binimg.Image{}, fw.Images...), &clone)
	return model, db, &fleet, &clone
}

// uniqueAddrs prepares a fleet's images and returns its set of function
// content addresses — the ground truth the store counters are checked
// against.
func uniqueAddrs(t *testing.T, fw *Firmware) map[cas.Addr]struct{} {
	t.Helper()
	prepared, err := PrepareImages(context.Background(), fw.Images, 4)
	if err != nil {
		t.Fatal(err)
	}
	set := make(map[cas.Addr]struct{})
	for _, p := range prepared {
		for _, a := range p.CAS {
			set[a] = struct{}{}
		}
	}
	return set
}

// TestDeltaScanStore pins the incremental-scan contract end to end:
//
//   - a cold store misses once per (CVE, mode, unique function) and is
//     fully populated by the scan;
//   - a warm rescan of the identical fleet answers every consult from disk
//     and recomputes nothing;
//   - after a mutation, a warm rescan re-scores exactly the functions whose
//     content actually changed;
//   - a store written under another model hash invalidates everything;
//   - and in every configuration the Report bytes equal the store-less scan.
func TestDeltaScanStore(t *testing.T) {
	model, db, fleet, clone := dedupFleet(t)
	hash := goldenModelHash(t)
	dir := t.TempDir()

	// scan returns the pre-normalization stats (the dedup/store counters
	// under test) alongside the normalized report bytes (the equivalence
	// half of the contract). The store-consult arithmetic below counts one
	// consult per (CVE, mode, unique function) over the FULL grid, so these
	// scans turn the component prefilter off; the prefilter×store
	// combination is byte-equality-checked at the end.
	scan := func(st *cas.Store, fw *Firmware) (ScanStats, []byte) {
		t.Helper()
		an := NewAnalyzer(model, db)
		an.Workers = 4
		an.Prefilter = false
		an.Store = st
		report, err := an.ScanFirmware(context.Background(), fw)
		if err != nil {
			t.Fatal(err)
		}
		stats := report.Stats
		normalizeReport(report)
		raw, err := json.Marshal(report)
		if err != nil {
			t.Fatal(err)
		}
		return stats, raw
	}
	open := func(dir, hash string) *cas.Store {
		t.Helper()
		st, err := cas.Open(dir, hash, 0)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	// consults = one store lookup per (CVE, query mode, unique function).
	consults := func(r ScanStats) int64 {
		return int64(r.CVEs) * 2 * int64(r.UniqueFuncs)
	}

	// Baseline without a store: the store must never change the bytes.
	_, baseRaw := scan(nil, fleet)

	cold, coldRaw := scan(open(dir, hash), fleet)
	if !bytes.Equal(coldRaw, baseRaw) {
		t.Error("cold-store report bytes diverge from store-less scan")
	}
	if cold.StoreHits != 0 || cold.StoreInvalidated != 0 {
		t.Errorf("cold scan: hits %d, invalidated %d, want 0/0",
			cold.StoreHits, cold.StoreInvalidated)
	}
	if cold.StoreMisses != consults(cold) {
		t.Errorf("cold scan: misses %d, want %d (CVEs %d × 2 × unique %d)",
			cold.StoreMisses, consults(cold), cold.CVEs, cold.UniqueFuncs)
	}
	// The cloned library makes duplication real: shared work must show up.
	if cold.PairsDeduped == 0 || cold.ValidationsDeduped == 0 {
		t.Errorf("cloned fleet shared no work: pairs deduped %d, validations deduped %d",
			cold.PairsDeduped, cold.ValidationsDeduped)
	}

	// Warm rescan, fresh analyzer and fresh store handle: all disk, no
	// recompute, identical bytes.
	warm, warmRaw := scan(open(dir, hash), fleet)
	if !bytes.Equal(warmRaw, baseRaw) {
		t.Error("warm-store report bytes diverge from store-less scan")
	}
	if warm.StoreMisses != 0 || warm.StoreInvalidated != 0 {
		t.Errorf("warm scan: misses %d, invalidated %d, want 0/0",
			warm.StoreMisses, warm.StoreInvalidated)
	}
	if warm.StoreHits != consults(warm) {
		t.Errorf("warm scan: hits %d, want %d", warm.StoreHits, consults(warm))
	}

	// Mutate the fleet: flip one rodata byte in the clone. Only the clone's
	// memory-touching closures get new content addresses; the warm store
	// answers everything else.
	mutated := *clone
	mutated.Rodata = append([]byte(nil), clone.Rodata...)
	if len(mutated.Rodata) == 0 {
		t.Fatal("fixture image has no rodata; mutation fixture is vacuous")
	}
	mutated.Rodata[0] ^= 0x01
	mfleet := *fleet
	mfleet.Images = append(append([]*binimg.Image{}, fleet.Images[:len(fleet.Images)-1]...), &mutated)

	before := uniqueAddrs(t, fleet)
	after := uniqueAddrs(t, &mfleet)
	var changed int64
	for a := range after {
		if _, ok := before[a]; !ok {
			changed++
		}
	}
	if changed == 0 {
		t.Fatal("rodata mutation changed no content address; fixture is vacuous")
	}
	if changed >= int64(len(after)) {
		t.Fatalf("rodata mutation changed every address (%d); delta assertion is vacuous", changed)
	}

	delta, _ := scan(open(dir, hash), &mfleet)
	wantMisses := int64(delta.CVEs) * 2 * changed
	if delta.StoreMisses != wantMisses {
		t.Errorf("delta scan: misses %d, want %d (changed unique funcs %d)",
			delta.StoreMisses, wantMisses, changed)
	}
	if delta.StoreHits != consults(delta)-wantMisses {
		t.Errorf("delta scan: hits %d, want %d", delta.StoreHits, consults(delta)-wantMisses)
	}
	if delta.StoreInvalidated != 0 {
		t.Errorf("delta scan: invalidated %d, want 0", delta.StoreInvalidated)
	}

	// A store written by another model version answers nothing: every
	// consult is an invalidation, every score is recomputed, and the bytes
	// still match.
	stale, staleRaw := scan(open(dir, "sha256:other-model"), fleet)
	if !bytes.Equal(staleRaw, baseRaw) {
		t.Error("stale-store report bytes diverge from store-less scan")
	}
	if stale.StoreInvalidated != consults(stale) {
		t.Errorf("stale scan: invalidated %d, want %d", stale.StoreInvalidated, consults(stale))
	}
	if stale.StoreHits != 0 {
		t.Errorf("stale scan: hits %d, want 0", stale.StoreHits)
	}

	// Prefilter × store: a prefiltered scan against the warm store consults
	// less (pruned cells never reach the store) but must produce the same
	// bytes as every other configuration.
	anPre := NewAnalyzer(model, db)
	anPre.Workers = 4
	anPre.Store = open(dir, hash)
	preReport, err := anPre.ScanFirmware(context.Background(), fleet)
	if err != nil {
		t.Fatal(err)
	}
	preStats := preReport.Stats
	normalizeReport(preReport)
	preRaw, err := json.Marshal(preReport)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(preRaw, baseRaw) {
		t.Error("prefiltered warm-store report bytes diverge from store-less full grid")
	}
	if preStats.CellsPruned == 0 {
		t.Error("prefiltered warm-store scan pruned nothing")
	}
	if total := preStats.StoreHits + preStats.StoreMisses + preStats.StoreInvalidated; total >= consults(preStats) {
		t.Errorf("prefiltered scan consulted the store %d times, want fewer than the full grid's %d",
			total, consults(preStats))
	}
}

// TestDedupOffMatchesOn pins the dedup equivalence on a fleet with real
// duplication (the golden fixture has none): the cloned-library fleet must
// produce byte-identical reports with the content-addressed path on and
// off, while the dedup path measurably shares work.
func TestDedupOffMatchesOn(t *testing.T) {
	model, db, fleet, _ := dedupFleet(t)
	var raws [][]byte
	for _, dedup := range []bool{true, false} {
		an := NewAnalyzer(model, db)
		an.Workers = 4
		an.Dedup = dedup
		report, err := an.ScanFirmware(context.Background(), fleet)
		if err != nil {
			t.Fatal(err)
		}
		if dedup && report.Stats.PairsDeduped == 0 {
			t.Error("dedup-on scan of cloned fleet deduped nothing")
		}
		if !dedup && (report.Stats.PairsDeduped != 0 || report.Stats.ValidationsDeduped != 0) {
			t.Errorf("dedup-off scan reported shared work: %+v", report.Stats)
		}
		normalizeReport(report)
		raw, err := json.Marshal(report)
		if err != nil {
			t.Fatal(err)
		}
		raws = append(raws, raw)
	}
	if !bytes.Equal(raws[0], raws[1]) {
		t.Error("cloned-fleet report bytes differ between dedup on and off")
	}
}
