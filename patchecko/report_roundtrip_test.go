package patchecko

import (
	"bytes"
	"encoding/json"
	"os"
	"testing"
)

// TestReportJSONRoundTrip pins the Report wire contract the scan service
// depends on: unmarshalling the committed golden report and re-marshalling
// it reproduces the exact committed bytes. If a field is added without JSON
// tags matching the golden form, or omitempty semantics shift (e.g. the
// Degraded flag serializing on non-degraded reports), this catches it
// without running a scan.
func TestReportJSONRoundTrip(t *testing.T) {
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Skipf("no committed golden report: %v", err)
	}
	var r Report
	if err := json.Unmarshal(want, &r); err != nil {
		t.Fatalf("golden report does not parse as a Report: %v", err)
	}
	got, err := json.Marshal(&r)
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	if !bytes.Equal(got, want) {
		t.Fatalf("Report JSON round-trip is lossy: %d bytes re-marshalled vs %d committed", len(got), len(want))
	}

	// Normalizing an already-normalized report must be a no-op — the served
	// ?normalize=1 path normalizes a fresh copy every request.
	r.Normalize()
	again, err := json.Marshal(&r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(append(again, '\n'), want) {
		t.Fatal("Normalize is not idempotent on the golden report")
	}
}
