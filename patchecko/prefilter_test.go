package patchecko

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"testing"

	"repro/internal/binimg"
	"repro/internal/compid"
	"repro/internal/corpus"
	"repro/internal/isa"
	"repro/internal/minic"
)

// prefilterFleet extends a device's firmware with generated vendor libraries
// whose code profile diverges from the reference corpus (bigger function
// bodies, rotating optimization levels) — the fleet shape where component
// identification pays: most of the grid is vendor code hosting no CVE.
func prefilterFleet(t *testing.T, fw *Firmware, n int) *Firmware {
	t.Helper()
	arch, err := isa.ByName(fw.Arch)
	if err != nil {
		t.Fatal(err)
	}
	extra, err := corpus.FleetVendorImages(arch, n, 70000)
	if err != nil {
		t.Fatal(err)
	}
	fleet := *fw
	fleet.Images = append(append([]*binimg.Image{}, fw.Images...), extra...)
	return &fleet
}

// prefilterRecall measures the keep decision against the firmware's held-out
// ground truth: the fraction of true (CVE, host image) cells the prefilter
// keeps. The engine contract pins it at exactly 1.0 — a prefilter that drops
// a ground-truth cell is wrong, not approximate.
func prefilterRecall(t *testing.T, an *Analyzer, fw *Firmware) float64 {
	t.Helper()
	prepared, err := PrepareImages(context.Background(), fw.Images, 4)
	if err != nil {
		t.Fatal(err)
	}
	byLib := make(map[string]*PreparedImage)
	for _, p := range prepared {
		if p != nil {
			byLib[p.Image.LibName] = p
		}
	}
	kept := 0
	for _, ct := range fw.CVEs {
		p, ok := byLib[ct.Library]
		if !ok {
			t.Fatalf("ground-truth library %s did not prepare", ct.Library)
		}
		if an.PrefilterKeep(p, ct.ID) {
			kept++
		} else {
			t.Errorf("prefilter pruned ground-truth cell (%s, %s)", ct.Library, ct.ID)
		}
	}
	if len(fw.CVEs) == 0 {
		t.Fatal("firmware has no ground-truth CVE cells; recall is vacuous")
	}
	return float64(kept) / float64(len(fw.CVEs))
}

// TestPrefilterRecall is the prefilter's measured-recall lockdown, on every
// evaluation device plus the vendor-heavy fleet:
//
//   - recall over ground-truth CVE cells is exactly 1.0;
//   - the prefiltered scan's normalized Report is byte-identical to the full
//     grid's (a pruned cell is only ever one the full grid scores as a
//     no-match);
//   - the grid actually shrinks on every device, and on the fleet it shrinks
//     by at least the 2x acceptance floor.
func TestPrefilterRecall(t *testing.T) {
	model, db, thingFw := goldenFixtures(t)
	fixtures := []struct {
		name         string
		fw           *Firmware
		minReduction float64
	}{
		{"thingos", thingFw, 1},
		{"pebble2xl", buildDeviceFw(t, Pebble2XL), 1},
		{"fruitos", buildDeviceFw(t, corpus.FruitOS), 1},
		{"fleet", prefilterFleet(t, thingFw, 12), 2},
	}
	for _, fx := range fixtures {
		t.Run(fx.name, func(t *testing.T) {
			var raws [][]byte
			var pruned, full int
			for _, prefilter := range []bool{true, false} {
				an := NewAnalyzer(model, db)
				an.Workers = 4
				an.Prefilter = prefilter
				report, err := an.ScanFirmware(context.Background(), fx.fw)
				if err != nil {
					t.Fatal(err)
				}
				if prefilter {
					recall := prefilterRecall(t, an, fx.fw)
					if recall != 1.0 {
						t.Errorf("ground-truth recall %.4f, want exactly 1.0", recall)
					}
					healthy := report.Stats.Images - report.Stats.ImagesFailed
					pruned = report.Stats.CellsPruned
					full = report.Stats.CVEs * healthy * 2
					if pruned == 0 {
						t.Error("prefilter pruned no cells")
					}
				} else if report.Stats.CellsPruned != 0 {
					t.Errorf("full grid reports %d pruned cells", report.Stats.CellsPruned)
				}
				normalizeReport(report)
				raw, err := json.Marshal(report)
				if err != nil {
					t.Fatal(err)
				}
				raws = append(raws, raw)
			}
			if !bytes.Equal(raws[0], raws[1]) {
				t.Error("prefiltered report bytes diverge from the full grid")
			}
			reduction := float64(full) / float64(full-pruned)
			t.Logf("grid %d cells, pruned %d, reduction %.2fx, recall 1.0", full, pruned, reduction)
			if reduction < fx.minReduction {
				t.Errorf("grid reduction %.2fx below the %.0fx floor", reduction, fx.minReduction)
			}
		})
	}
}

func buildDeviceFw(t *testing.T, dev Device) *Firmware {
	t.Helper()
	fw, err := BuildFirmware(dev, ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	return fw
}

// prefilterArtifact is the "prefilter" object merged into BENCH_static.json:
// the prefilter pass's cost next to what it removes from the grid.
type prefilterArtifact struct {
	Benchmark string         `json:"benchmark"`
	Rows      []prefilterRow `json:"rows"`
	Costs     prefilterCosts `json:"costs"`
}

type prefilterRow struct {
	Fixture     string `json:"fixture"`
	Images      int    `json:"images"`
	CVEs        int    `json:"cves"`
	GridCells   int    `json:"grid_cells"`
	CellsPruned int    `json:"cells_pruned"`
	// Reduction is full-grid cells over scheduled cells; the fleet row's
	// acceptance floor is 2x.
	Reduction float64 `json:"reduction"`
	// Recall over ground-truth (CVE, host image) cells; the contract pins
	// exactly 1.0.
	Recall float64 `json:"recall"`
}

type prefilterCosts struct {
	// FingerprintNsPerImage is the one-time per-image extraction cost.
	FingerprintNsPerImage int64 `json:"fingerprint_ns_per_image"`
	// SignatureNsPerCVE is the one-time per-(CVE, arch) derivation cost,
	// memoized for the life of the analyzer.
	SignatureNsPerCVE int64 `json:"signature_ns_per_cve"`
	// KeepMatrixNs is the warm per-scan cost of the whole keep matrix.
	KeepMatrixNs int64 `json:"keep_matrix_ns"`
}

// TestWritePrefilterBenchArtifact measures the prefilter's grid reduction
// and recall on the device and fleet fixtures plus the pass's own costs, and
// merges the "prefilter" object into the artifact at PATCHECKO_BENCH_OUT.
// Skipped when the variable is unset; `make bench-static` opts in after the
// detector and retrieval writers have run.
func TestWritePrefilterBenchArtifact(t *testing.T) {
	out := os.Getenv("PATCHECKO_BENCH_OUT")
	if out == "" {
		t.Skip("PATCHECKO_BENCH_OUT not set")
	}
	ids := make([]string, 0, 25)
	for _, pair := range minic.CVEs() {
		ids = append(ids, pair.ID)
	}
	art := prefilterArtifact{
		Benchmark: "internal/compid component prefilter: keep-matrix grid reduction and " +
			"ground-truth recall on the seed-42 tiny devices and the vendor-heavy fleet",
	}

	fixtures := []struct {
		name string
		fw   *Firmware
	}{
		{"thingos", buildDeviceFw(t, ThingOS)},
		{"pebble2xl", buildDeviceFw(t, Pebble2XL)},
		{"fruitos", buildDeviceFw(t, corpus.FruitOS)},
	}
	fixtures = append(fixtures, struct {
		name string
		fw   *Firmware
	}{"fleet", prefilterFleet(t, fixtures[0].fw, 12)})

	var fleetPrepared []*PreparedImage
	for _, fx := range fixtures {
		an := &Analyzer{Prefilter: true}
		prepared, err := PrepareImages(context.Background(), fx.fw.Images, 4)
		if err != nil {
			t.Fatal(err)
		}
		healthy := 0
		for _, p := range prepared {
			if p != nil {
				healthy++
			}
		}
		keep, pruned := an.prefilterGrid(prepared, ids, 2)
		if keep == nil {
			t.Fatal("prefilterGrid returned no keep matrix with the prefilter on")
		}
		full := len(ids) * healthy * 2
		row := prefilterRow{
			Fixture:     fx.name,
			Images:      healthy,
			CVEs:        len(ids),
			GridCells:   full,
			CellsPruned: pruned,
			Reduction:   float64(full) / float64(full-pruned),
			Recall:      prefilterRecall(t, an, fx.fw),
		}
		art.Rows = append(art.Rows, row)
		if fx.name == "fleet" {
			fleetPrepared = prepared
		}
		t.Logf("%s: grid %d, pruned %d, reduction %.2fx, recall %.3f",
			row.Fixture, row.GridCells, row.CellsPruned, row.Reduction, row.Recall)
	}

	// Costs, on the fleet fixture: cold fingerprint extraction per image,
	// cold signature derivation per CVE, and the warm keep matrix.
	fleet := fixtures[len(fixtures)-1].fw
	fpRes := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, p := range fleetPrepared {
				compid.Extract(p.Image, p.Dis, p.Vecs)
			}
		}
	})
	sigRes := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			an := &Analyzer{Prefilter: true}
			for _, id := range ids {
				an.signatureFor(id, fleet.Arch)
			}
		}
	})
	warm := &Analyzer{Prefilter: true}
	warm.prefilterGrid(fleetPrepared, ids, 2)
	keepRes := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			warm.prefilterGrid(fleetPrepared, ids, 2)
		}
	})
	art.Costs = prefilterCosts{
		FingerprintNsPerImage: fpRes.NsPerOp() / int64(len(fleetPrepared)),
		SignatureNsPerCVE:     sigRes.NsPerOp() / int64(len(ids)),
		KeepMatrixNs:          keepRes.NsPerOp(),
	}
	t.Logf("fingerprint %d ns/image, signature %d ns/cve, warm keep matrix %d ns",
		art.Costs.FingerprintNsPerImage, art.Costs.SignatureNsPerCVE, art.Costs.KeepMatrixNs)

	for _, row := range art.Rows {
		if row.Recall != 1.0 {
			t.Errorf("%s: recall %.4f, want exactly 1.0", row.Fixture, row.Recall)
		}
		if row.Fixture == "fleet" && row.Reduction < 2 {
			t.Errorf("fleet grid reduction %.2fx below the 2x acceptance floor", row.Reduction)
		}
	}

	// Merge into the detector/retrieval-written artifact, not over it.
	merged := make(map[string]json.RawMessage)
	if prev, err := os.ReadFile(out); err == nil {
		if err := json.Unmarshal(prev, &merged); err != nil {
			t.Fatalf("existing artifact %s is not a JSON object: %v", out, err)
		}
	}
	rawPre, err := json.Marshal(art)
	if err != nil {
		t.Fatal(err)
	}
	merged["prefilter"] = rawPre
	raw, err := json.MarshalIndent(merged, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(raw, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
