package patchecko

import (
	"fmt"

	"repro/internal/binimg"
	"repro/internal/compiler"
	"repro/internal/disasm"
	"repro/internal/fuzz"
	"repro/internal/isa"
	"repro/internal/minic"
	"repro/internal/vulndb"
)

// CustomCVE describes a user-supplied vulnerability for AddCVE: the
// vulnerable and patched versions of one function, written in the
// repository's source language (see internal/minic's grammar, or run
// `patchecko compile` on an example). Both sources must define a function
// named FuncName with identical parameter lists.
type CustomCVE struct {
	ID         string
	Library    string
	FuncName   string
	Class      string
	Vulnerable string // source text of the vulnerable version
	Patched    string // source text of the patched version
	// NumEnvs is how many execution environments to derive (default 4).
	NumEnvs int
	// Seed drives environment fuzzing (default derived from ID).
	Seed int64
}

// AddCVE compiles both versions for every architecture, derives execution
// environments that run cleanly on both (the paper's input-validation
// contract), and appends the entry to the database. This is how downstream
// users extend the shipped 25-CVE database toward the paper's 2,076-entry
// scale.
func AddCVE(db *DB, c CustomCVE) error {
	if c.ID == "" || c.FuncName == "" {
		return fmt.Errorf("patchecko: custom CVE needs ID and FuncName")
	}
	if _, dup := db.Get(c.ID); dup {
		return fmt.Errorf("patchecko: %s already in database", c.ID)
	}
	vmod, err := minic.Parse(c.Library+".vuln", c.Vulnerable)
	if err != nil {
		return fmt.Errorf("patchecko: %s vulnerable source: %w", c.ID, err)
	}
	pmod, err := minic.Parse(c.Library+".patched", c.Patched)
	if err != nil {
		return fmt.Errorf("patchecko: %s patched source: %w", c.ID, err)
	}
	vf, pf := vmod.Lookup(c.FuncName), pmod.Lookup(c.FuncName)
	if vf == nil || pf == nil {
		return fmt.Errorf("patchecko: %s: both sources must define %s", c.ID, c.FuncName)
	}
	if len(vf.Params) != len(pf.Params) {
		return fmt.Errorf("patchecko: %s: parameter lists differ between versions", c.ID)
	}

	entry := &vulndb.Entry{
		ID:            c.ID,
		Library:       c.Library,
		FuncName:      c.FuncName,
		Class:         c.Class,
		VulnImages:    make(map[string][]byte),
		PatchedImages: make(map[string][]byte),
	}
	for _, arch := range isa.All() {
		vim, err := compiler.Compile(vmod, arch, compiler.O1)
		if err != nil {
			return fmt.Errorf("patchecko: %s: compile vulnerable for %s: %w", c.ID, arch.Name, err)
		}
		pim, err := compiler.Compile(pmod, arch, compiler.O1)
		if err != nil {
			return fmt.Errorf("patchecko: %s: compile patched for %s: %w", c.ID, arch.Name, err)
		}
		entry.VulnImages[arch.Name] = binimg.Encode(vim)
		entry.PatchedImages[arch.Name] = binimg.Encode(pim)
	}

	vref, err := entry.VulnRef(isa.AMD64.Name)
	if err != nil {
		return err
	}
	pref, err := entry.PatchedRef(isa.AMD64.Name)
	if err != nil {
		return err
	}
	seed := c.Seed
	if seed == 0 {
		for _, ch := range c.ID {
			seed = seed*131 + int64(ch)
		}
	}
	cfg := fuzz.DefaultConfig(seed)
	if c.NumEnvs > 0 {
		cfg.NumEnvs = c.NumEnvs
	}
	envs := fuzz.Environments([]fuzz.Ref{
		{Dis: vref.Dis, Fn: vref.Fn},
		{Dis: pref.Dis, Fn: pref.Fn},
	}, cfg)
	if len(envs) == 0 {
		return fmt.Errorf("patchecko: %s: no execution environment runs cleanly on both versions", c.ID)
	}
	for _, env := range envs {
		entry.Envs = append(entry.Envs, vulndb.FromEnv(env))
	}
	db.Entries = append(db.Entries, entry)
	return nil
}

// CompileSource parses source text and compiles it into a (unstripped)
// library image — the programmatic form of `patchecko compile`.
func CompileSource(libName, src, archName, level string) (*Image, error) {
	mod, err := minic.Parse(libName, src)
	if err != nil {
		return nil, err
	}
	arch, err := isa.ByName(archName)
	if err != nil {
		return nil, err
	}
	return compiler.Compile(mod, arch, compiler.Level(level))
}

// Disassemble decodes and CFG-analyzes an image — the programmatic form of
// `patchecko disasm`. The result feeds Prepare-free inspection workflows.
func Disassemble(im *Image) (*disasm.Disassembly, error) {
	return disasm.Disassemble(im)
}
