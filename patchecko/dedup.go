// Content-addressed dedup: the scan grid's per-function work keyed by
// content address instead of by (image, function index), so duplicated
// function bodies — within one image or across a whole fleet — are scored
// and validated once and the results fanned out.
//
// Sharing is sound because equal content addresses imply bit-identical
// behavior for everything the shared results capture (see internal/cas):
// the static feature vector is folded into the address, so static scores
// match bit for bit; instruction streams, resolved-call structure and
// reachable rodata are folded in, so dynamic profiles and trap messages
// match under every execution environment and step limit. Per-occurrence
// accounting (candidate lists, exclusion records, validation counters) is
// kept per cell, which is what makes reports byte-identical with dedup on
// or off.
//
// One caveat, relevant only to tests: fault injection keyed on an image
// name (faultinject.ExecTrap on a candidate image) deliberately breaks the
// "same content, same behavior" premise. The chaos suite arms execution
// faults on reference images only, which the dedup caches never serve.

package patchecko

import (
	"context"
	"slices"
	"sync"
	"sync/atomic"

	"repro/internal/cas"
	"repro/internal/detector"
	"repro/internal/disasm"
	"repro/internal/dynamic"
	"repro/internal/minic"
	"repro/internal/obs"
	"repro/internal/vulndb"
)

// scoreKey identifies one shared static score: a CVE query (one mode)
// against one function body.
type scoreKey struct {
	cve  string
	mode QueryMode
	fn   cas.Addr
}

// scoreEntry memoizes one static score under a mutex; holding the mutex
// across the computation single-flights concurrent consults, exactly like
// the reference cache.
type scoreEntry struct {
	mu    sync.Mutex
	done  bool
	score float64
}

// scoreCache memoizes static scores by content address. The atomic counters
// classify every consult — computed, reused in memory, or answered by the
// persistent store — and are the source of the Report's dedup statistics,
// so they work with a nil Obs sink too.
type scoreCache struct {
	mu      sync.Mutex
	entries map[scoreKey]*scoreEntry

	scored      atomic.Int64
	deduped     atomic.Int64
	fromStore   atomic.Int64
	storeHits   atomic.Int64
	storeMisses atomic.Int64
	storeStale  atomic.Int64
}

func (c *scoreCache) entry(k scoreKey) *scoreEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.entries == nil {
		c.entries = make(map[scoreKey]*scoreEntry)
	}
	e, ok := c.entries[k]
	if !ok {
		e = &scoreEntry{}
		c.entries[k] = e
	}
	return e
}

// dynKey identifies one shared validation outcome: one function body
// profiled under one CVE's environments at one step limit. The query mode
// is deliberately absent — environments depend only on the CVE entry, so
// vulnerable- and patched-mode cells share the same execution.
type dynKey struct {
	cve   string
	limit int64
	fn    cas.Addr
}

// dynEntry memoizes one profiling outcome under a single-flight mutex.
type dynEntry struct {
	mu       sync.Mutex
	done     bool
	eps      []dynamic.EnvProfile
	err      error
	panicked bool
}

// dynCache memoizes candidate validation outcomes by content address.
type dynCache struct {
	mu      sync.Mutex
	entries map[dynKey]*dynEntry
	shared  atomic.Int64
}

func (c *dynCache) entry(k dynKey) *dynEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.entries == nil {
		c.entries = make(map[dynKey]*dynEntry)
	}
	e, ok := c.entries[k]
	if !ok {
		e = &dynEntry{}
		c.entries[k] = e
	}
	return e
}

// DedupCounts are the analyzer-lifetime dedup and delta-scan totals, the
// same classification the obs counters report. ScanFirmware snapshots them
// around the grid to fill the Report's stats; CLI callers read them after
// standalone ScanImage loops.
type DedupCounts struct {
	PairsScored        int64 // static scores computed
	PairsDeduped       int64 // static scores reused from the in-memory cache
	PairsFromStore     int64 // static scores answered by the persistent store
	ValidationsDeduped int64 // candidate validations reused from the in-memory cache
	StoreHits          int64
	StoreMisses        int64
	StoreInvalidated   int64
}

// DedupCounts returns the analyzer's dedup totals so far.
func (a *Analyzer) DedupCounts() DedupCounts {
	return DedupCounts{
		PairsScored:        a.scores.scored.Load(),
		PairsDeduped:       a.scores.deduped.Load(),
		PairsFromStore:     a.scores.fromStore.Load(),
		ValidationsDeduped: a.dyn.shared.Load(),
		StoreHits:          a.scores.storeHits.Load(),
		StoreMisses:        a.scores.storeMisses.Load(),
		StoreInvalidated:   a.scores.storeStale.Load(),
	}
}

// storeKey renders a score key for the persistent store. The rendered form
// is stable — it is the on-disk contract — and collision-free: CVE ids and
// mode names cannot contain '|' and the address is fixed-width hex.
func storeKey(k scoreKey) string {
	return k.cve + "|" + k.mode.String() + "|" + k.fn.String()
}

// dedupCandidates is the static stage with per-unique-body scoring: every
// function consults the shared score for its content address, computing —
// through the caller's batched scorer or the scalar reference path — only
// on first sight. Candidate selection, ordering and observability then run
// per occurrence, so the candidate list is exactly the every-pair list.
func (a *Analyzer) dedupCandidates(entry *vulndb.Entry, arch string, mode QueryMode, p *PreparedImage, sc *detector.Scorer) ([]detector.Candidate, error) {
	var compute func(i int) float64
	if sc == nil {
		ref, err := a.cachedRef(entry, arch, mode)
		if err != nil {
			return nil, err
		}
		qv := ref.StaticVec()
		compute = func(i int) float64 { return a.model.Similarity(qv, p.Vecs[i]) }
	} else {
		qh, err := a.cachedQueryHalves(entry, arch, mode)
		if err != nil {
			return nil, err
		}
		uts := p.UniqueTargets(a.model)
		compute = func(i int) float64 { return sc.Pair(qh, uts, p.uniqPos[i]) }
	}
	var out []detector.Candidate
	for i := range p.Vecs {
		s := a.sharedScore(scoreKey{cve: entry.ID, mode: mode, fn: p.CAS[i]}, i, compute)
		if s >= a.model.Threshold {
			out = append(out, detector.Candidate{Index: i, Score: s})
		}
	}
	// Same total order as both every-pair paths: score descending, index
	// ascending. Shared scores are bit-identical to computed ones, so the
	// permutation matches too.
	slices.SortFunc(out, func(x, y detector.Candidate) int {
		if x.Score != y.Score {
			if x.Score > y.Score {
				return -1
			}
			return 1
		}
		return x.Index - y.Index
	})
	a.Obs.Add(obs.CtrStaticCandidates, int64(len(out)))
	return out, nil
}

// sharedScore returns the static score for key k, serving it from the
// in-memory cache, then the persistent store, then computing via
// compute(i). Exactly one consult per key computes (single-flight under the
// entry mutex), so the scored/deduped/store counters are deterministic for
// any worker count.
func (a *Analyzer) sharedScore(k scoreKey, i int, compute func(i int) float64) float64 {
	e := a.scores.entry(k)
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.done {
		a.scores.deduped.Add(1)
		a.Obs.Add(obs.CtrPairsDeduped, 1)
		return e.score
	}
	var sk string
	if a.Store != nil {
		sk = storeKey(k)
		switch v, st := a.Store.GetScore(sk); st {
		case cas.StatusHit:
			a.scores.storeHits.Add(1)
			a.scores.fromStore.Add(1)
			a.Obs.Add(obs.CtrStoreHits, 1)
			a.Obs.Add(obs.CtrPairsFromStore, 1)
			e.done, e.score = true, v
			return v
		case cas.StatusInvalidated:
			a.scores.storeStale.Add(1)
			a.Obs.Add(obs.CtrStoreInvalidated, 1)
		default:
			a.scores.storeMisses.Add(1)
			a.Obs.Add(obs.CtrStoreMisses, 1)
		}
	}
	v := compute(i)
	a.scores.scored.Add(1)
	a.Obs.Add(obs.CtrPairsScored, 1)
	e.done, e.score = true, v
	if a.Store != nil {
		a.Store.PutScore(sk, v)
	}
	return v
}

// dedupValidate is the dynamic stage's validation step with per-unique-body
// profiling: the pool shape and outcome classification mirror
// dynamic.ValidateParallel exactly, but each candidate's profiling is
// single-flighted by content address, so a body duplicated across cells and
// images executes once per (CVE, step limit). Classification and its
// counters stay per occurrence.
func (a *Analyzer) dedupValidate(ctx context.Context, p *PreparedImage, entry *vulndb.Entry,
	cands []detector.Candidate, candFuncs []*disasm.Function, envs []*minic.Env, workers int) ([]int, map[int][]EnvProfile, map[int]error) {
	if ctx == nil {
		//patchecko:allow ctxflow nil-ctx API tolerance: Background is the documented fallback root
		ctx = context.Background()
	}
	results := make([]dynamic.ProfileOutcome, len(cands))
	run := func(i int) {
		k := dynKey{cve: entry.ID, limit: a.StepLimit, fn: p.CAS[cands[i].Index]}
		results[i] = a.sharedProfile(ctx, p.Dis, candFuncs[i], k, envs)
	}
	if workers > len(cands) {
		workers = len(cands)
	}
	if workers <= 1 || len(cands) <= 1 {
		for i := range cands {
			if ctx.Err() != nil {
				break
			}
			run(i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1) - 1)
					if i >= len(cands) || ctx.Err() != nil {
						return
					}
					run(i)
				}
			}()
		}
		wg.Wait()
	}
	survivors, profiles, excluded := dynamic.ClassifyOutcomes(results, a.Obs)
	// Unalias the memoized profile slices before they are published on a
	// CVEScan: several cells may share one outcome.
	for idx, eps := range profiles {
		profiles[idx] = append([]dynamic.EnvProfile(nil), eps...)
	}
	return survivors, profiles, excluded
}

// sharedProfile profiles one candidate through the dedup cache. A cancelled
// outcome (Ran false) carries no information and is never memoized — the
// same rule the reference cache follows — so a later scan with a live
// context retries.
func (a *Analyzer) sharedProfile(ctx context.Context, dis *disasm.Disassembly, fn *disasm.Function, k dynKey, envs []*minic.Env) dynamic.ProfileOutcome {
	e := a.dyn.entry(k)
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.done {
		a.dyn.shared.Add(1)
		a.Obs.Add(obs.CtrValidationsDeduped, 1)
		return dynamic.ProfileOutcome{Profiles: e.eps, Err: e.err, Ran: true, Panicked: e.panicked}
	}
	r := dynamic.ProfileCandidate(ctx, dis, fn, envs, a.exec())
	if !r.Ran {
		return r
	}
	e.done, e.eps, e.err, e.panicked = true, r.Profiles, r.Err, r.Panicked
	return r
}
