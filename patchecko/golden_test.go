package patchecko

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/cas"
	"repro/internal/obs"
)

// The golden-report suite pins two contracts at once:
//
//  1. Reproducibility: ScanFirmware at seed 42 / ScaleTiny produces the
//     byte-identical Report JSON committed in testdata, so any change to
//     scoring, ranking, verdicts or error recording shows up as a golden
//     diff instead of sliding by silently.
//  2. Observation is free of side effects: the Report is the same bytes at
//     every worker count, with metrics disabled, counters-only, or full
//     event tracing. Instrumentation may only watch.
//
// Regenerate after an intentional pipeline change with:
//
//	PATCHECKO_UPDATE_GOLDEN=1 go test ./patchecko/ -run TestGoldenReport

const goldenPath = "testdata/golden_report_seed42.json"

var (
	goldenOnce  sync.Once
	goldenModel *Model
	goldenDB    *DB
	goldenFw    *Firmware
	goldenErr   error
)

// goldenFixtures builds the seed-42 tiny-scale pipeline inputs shared by
// the golden and metrics-consistency tests. Everything is deterministic in
// (scale, seed), which is what makes a committed golden file possible.
func goldenFixtures(t *testing.T) (*Model, *DB, *Firmware) {
	t.Helper()
	goldenOnce.Do(func() {
		groups, err := TrainingCorpus(ScaleTiny, 42)
		if err != nil {
			goldenErr = err
			return
		}
		cfg := DefaultTrainConfig()
		cfg.Seed = 42
		cfg.Epochs = ScaleTiny.Epochs
		cfg.MaxPosPerFunc = ScaleTiny.MaxPosPerFunc
		goldenModel, _, _, goldenErr = TrainDetector(groups, cfg)
		if goldenErr != nil {
			return
		}
		goldenDB, goldenErr = BuildVulnDB(ScaleTiny, 42)
		if goldenErr != nil {
			return
		}
		goldenFw, goldenErr = BuildFirmware(ThingOS, ScaleTiny)
	})
	if goldenErr != nil {
		t.Fatal(goldenErr)
	}
	return goldenModel, goldenDB, goldenFw
}

// goldenConfig selects one analyzer configuration for a golden run. The
// zero value is the default scan: dedup on, no persistent store, exact
// static stage.
type goldenConfig struct {
	workers     int
	sink        *obs.Metrics
	noDedup     bool
	noPrefilter bool // full scan grid instead of the component-prefiltered one
	store       *cas.Store
	retrieval   bool // embedding-index static stage at topK
	topK        int  // 0 means DefaultTopK
}

var (
	goldenEmbOnce sync.Once
	goldenEmb     *Embedder
	goldenEmbErr  error
)

// goldenEmbedder distills the retrieval embedder from the fixture model once
// per test binary. Distillation is deterministic in (model, seed), so every
// retrieval run indexes with identical embeddings.
func goldenEmbedder(t *testing.T) *Embedder {
	t.Helper()
	model, _, _ := goldenFixtures(t)
	goldenEmbOnce.Do(func() {
		goldenEmb, goldenEmbErr = DistillEmbedder(model, 1)
	})
	if goldenEmbErr != nil {
		t.Fatal(goldenEmbErr)
	}
	return goldenEmb
}

// goldenReportConfigJSON runs a full firmware scan under one configuration
// and marshals the normalized Report. Wall-clock timings, the configured
// worker count, and the dedup/store work-saved statistics are the only
// fields that legitimately vary across configurations; normalizeReport
// zeroes them, and encoding/json sorts all map keys, so equal Reports
// marshal to equal bytes.
func goldenReportConfigJSON(t *testing.T, cfg goldenConfig) []byte {
	t.Helper()
	model, db, fw := goldenFixtures(t)
	an := NewAnalyzer(model, db)
	an.Workers = cfg.workers
	an.Obs = cfg.sink
	an.Dedup = !cfg.noDedup
	an.Prefilter = !cfg.noPrefilter
	an.Store = cfg.store
	if cfg.retrieval {
		an.Embedder = goldenEmbedder(t)
		an.TopK = cfg.topK
	}
	report, err := an.ScanFirmware(context.Background(), fw)
	if err != nil {
		t.Fatalf("workers=%d: %v", cfg.workers, err)
	}
	normalizeReport(report)
	// Compact marshaling keeps the committed fixture small; the profile
	// arrays dominate the report and indentation would triple their size.
	raw, err := json.Marshal(report)
	if err != nil {
		t.Fatal(err)
	}
	return append(raw, '\n')
}

func goldenReportJSON(t *testing.T, workers int, sink *obs.Metrics) []byte {
	t.Helper()
	return goldenReportConfigJSON(t, goldenConfig{workers: workers, sink: sink})
}

// goldenModelHash returns the fixture model's content hash, the store
// version key a real run derives from the serialized model.
func goldenModelHash(t *testing.T) string {
	t.Helper()
	model, _, _ := goldenFixtures(t)
	raw, err := model.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return obs.ModelHash(raw)
}

func TestGoldenReport(t *testing.T) {
	base := goldenReportJSON(t, 1, nil)
	if os.Getenv("PATCHECKO_UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, base, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", goldenPath, len(base))
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with PATCHECKO_UPDATE_GOLDEN=1 to create it): %v", err)
	}
	if !bytes.Equal(base, want) {
		t.Fatalf("seed-42 report diverged from %s (%d vs %d bytes); "+
			"if the pipeline change is intentional, regenerate with PATCHECKO_UPDATE_GOLDEN=1",
			goldenPath, len(base), len(want))
	}

	// Every worker count and every observability mode must reproduce the
	// same bytes: nil (no-op sink), counters-only, and full event tracing.
	sinks := []struct {
		name string
		mk   func() *obs.Metrics
	}{
		{"metrics-off", func() *obs.Metrics { return nil }},
		{"counters", obs.New},
		{"traced", func() *obs.Metrics { return obs.NewTraced(0) }},
	}
	for _, workers := range []int{1, 4, 16} {
		for _, s := range sinks {
			got := goldenReportJSON(t, workers, s.mk())
			if !bytes.Equal(got, want) {
				t.Errorf("workers=%d %s: report bytes diverge from golden", workers, s.name)
			}
		}
	}

	// Dedup equivalence: the content-addressed fast path and the every-pair
	// reference path must produce the same bytes at every worker count.
	for _, workers := range []int{1, 4, 16} {
		got := goldenReportConfigJSON(t, goldenConfig{workers: workers, noDedup: true})
		if !bytes.Equal(got, want) {
			t.Errorf("workers=%d dedup-off: report bytes diverge from golden", workers)
		}
	}

	// Retrieval equivalence: the embedding-index static stage at the default
	// top-K — which exceeds the fixture images' unique-body counts, so the
	// index nominates every body — must reproduce the golden bytes at every
	// worker count, with dedup on and off.
	for _, workers := range []int{1, 4, 16} {
		for _, noDedup := range []bool{false, true} {
			got := goldenReportConfigJSON(t, goldenConfig{workers: workers, noDedup: noDedup, retrieval: true})
			if !bytes.Equal(got, want) {
				t.Errorf("workers=%d dedup=%v retrieval: report bytes diverge from golden", workers, !noDedup)
			}
		}
	}

	// Prefilter equivalence: the component prefilter (on by default, and on
	// in every run above) prunes grid cells whose fingerprints cannot host
	// the CVE, but a pruned cell is always one the full grid would score as
	// a no-match — so the full grid must reproduce the same committed bytes
	// at every worker count, with dedup on and off and through the retrieval
	// static stage.
	for _, workers := range []int{1, 4, 16} {
		for _, noDedup := range []bool{false, true} {
			got := goldenReportConfigJSON(t, goldenConfig{workers: workers, noDedup: noDedup, noPrefilter: true})
			if !bytes.Equal(got, want) {
				t.Errorf("workers=%d dedup=%v no-prefilter: report bytes diverge from golden", workers, !noDedup)
			}
		}
		got := goldenReportConfigJSON(t, goldenConfig{workers: workers, retrieval: true, noPrefilter: true})
		if !bytes.Equal(got, want) {
			t.Errorf("workers=%d retrieval no-prefilter: report bytes diverge from golden", workers)
		}
	}

	// Store equivalence: a cold persistent store (every consult misses and
	// populates) and a warm one (every consult hits) must both reproduce the
	// golden bytes. A fresh Store handle on the same directory separates the
	// warm run from in-memory caching.
	hash := goldenModelHash(t)
	for _, workers := range []int{1, 4, 16} {
		dir := t.TempDir()
		for _, phase := range []string{"cold", "warm"} {
			st, err := cas.Open(dir, hash, 0)
			if err != nil {
				t.Fatal(err)
			}
			got := goldenReportConfigJSON(t, goldenConfig{workers: workers, store: st})
			if !bytes.Equal(got, want) {
				t.Errorf("workers=%d store-%s: report bytes diverge from golden", workers, phase)
			}
		}
	}
}

// TestScanMetricsConsistency cross-checks the manifest counters against the
// Report and the trace-event stream, and pins counter determinism across
// worker counts: counters count work items, not scheduling.
func TestScanMetricsConsistency(t *testing.T) {
	model, db, fw := goldenFixtures(t)
	var baseCounters map[string]int64
	for _, workers := range []int{1, 4, 16} {
		sink := obs.NewTraced(0)
		an := NewAnalyzer(model, db)
		an.Workers = workers
		an.Obs = sink
		report, err := an.ScanFirmware(context.Background(), fw)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}

		// Counters vs the Report's own stats.
		checks := []struct {
			name string
			ctr  obs.Counter
			want int64
		}{
			{"cells completed", obs.CtrCellsCompleted, int64(report.Stats.ScansRun)},
			{"cells pruned", obs.CtrCellsPruned, int64(report.Stats.CellsPruned)},
			// Every CVE in the fixture has a derivable signature and a host
			// image the filter keeps, so no degrade path fires.
			{"prefilter degraded", obs.CtrPrefilterDegraded, 0},
			{"ref cache hits", obs.CtrRefHits, report.Stats.CacheHits},
			{"ref cache misses", obs.CtrRefMisses, report.Stats.CacheMisses},
			{"images prepared", obs.CtrImagesPrepared, int64(report.Stats.Images - report.Stats.ImagesFailed)},
			{"images failed", obs.CtrImagesFailed, int64(report.Stats.ImagesFailed)},
			{"cells failed", obs.CtrCellsFailed, int64(report.Stats.CellsFailed)},
			{"candidates excluded", obs.CtrCandidatesExcluded, int64(report.Stats.CandidatesExcluded)},
			{"unique functions", obs.CtrFuncsUnique, int64(report.Stats.UniqueFuncs)},
			{"pairs deduped", obs.CtrPairsDeduped, report.Stats.PairsDeduped},
			{"validations deduped", obs.CtrValidationsDeduped, report.Stats.ValidationsDeduped},
			// No persistent store is configured, so every store-path counter
			// must stay zero.
			{"pairs from store", obs.CtrPairsFromStore, 0},
			{"store hits", obs.CtrStoreHits, 0},
			{"store misses", obs.CtrStoreMisses, 0},
			{"store invalidated", obs.CtrStoreInvalidated, 0},
		}
		for _, c := range checks {
			if got := sink.Get(c.ctr); got != c.want {
				t.Errorf("workers=%d: %s counter = %d, want %d", workers, c.name, got, c.want)
			}
		}

		// Partition invariants: every scored candidate is either validated
		// or excluded, and every exclusion has exactly one recorded reason.
		if v, e, s := sink.Get(obs.CtrCandidatesValidated), sink.Get(obs.CtrCandidatesExcluded),
			sink.Get(obs.CtrStaticCandidates); v+e != s {
			t.Errorf("workers=%d: validated %d + excluded %d != static candidates %d", workers, v, e, s)
		}
		if n, p, er, tot := sink.Get(obs.CtrExcludedNoEnv), sink.Get(obs.CtrExcludedPanic),
			sink.Get(obs.CtrExcludedError), sink.Get(obs.CtrCandidatesExcluded); n+p+er != tot {
			t.Errorf("workers=%d: exclusion reasons %d+%d+%d do not partition %d", workers, n, p, er, tot)
		}
		if v, p, tot := sink.Get(obs.CtrVerdictPatched), sink.Get(obs.CtrVerdictVulnerable),
			sink.Get(obs.CtrVerdicts); v+p != tot {
			t.Errorf("workers=%d: verdict outcomes %d+%d do not partition %d", workers, v, p, tot)
		}

		// Counters vs the event stream: pairs scored must equal the sum of
		// per-cell pair counts, and cell/exclusion events must match their
		// counters one-to-one.
		var evPairs, evCells, evExcluded, evPruned int64
		for _, ev := range sink.Events() {
			switch ev.Kind {
			case obs.EvCellCompleted:
				evCells++
				evPairs += int64(ev.Pairs)
			case obs.EvCandidateExcluded:
				evExcluded++
			case obs.EvPrefilter:
				evPruned += int64(ev.Pruned)
			}
		}
		if dropped := sink.Dropped(); dropped != 0 {
			t.Fatalf("workers=%d: ring dropped %d events; grow the cap for this fixture", workers, dropped)
		}
		// With dedup on, each static pair is either computed, reused from
		// the in-memory cache, or answered by the store; the three classes
		// partition the per-cell pair totals exactly.
		scored, deduped, fromStore := sink.Get(obs.CtrPairsScored),
			sink.Get(obs.CtrPairsDeduped), sink.Get(obs.CtrPairsFromStore)
		if scored+deduped+fromStore != evPairs {
			t.Errorf("workers=%d: pairs scored %d + deduped %d + from store %d != Σ cell events %d",
				workers, scored, deduped, fromStore, evPairs)
		}
		if got := sink.Get(obs.CtrCellsCompleted); got != evCells {
			t.Errorf("workers=%d: cells_completed = %d, want %d cell events", workers, got, evCells)
		}
		if got := sink.Get(obs.CtrCandidatesExcluded); got != evExcluded {
			t.Errorf("workers=%d: candidates_excluded = %d, want %d exclusion events", workers, got, evExcluded)
		}
		// The prefilter (on by default) runs before the grid: its trace
		// events account for every pruned cell (two query modes per pruned
		// image), the pruned/scanned split partitions the full grid, and on
		// this fixture it must actually prune.
		if got := sink.Get(obs.CtrCellsPruned); got != evPruned*2 {
			t.Errorf("workers=%d: cells_pruned = %d, want 2× the %d images pruned in prefilter events",
				workers, got, evPruned)
		}
		if report.Stats.CellsPruned == 0 {
			t.Errorf("workers=%d: default-on prefilter pruned nothing on the golden fixture", workers)
		}
		healthy := report.Stats.Images - report.Stats.ImagesFailed
		if got, want := report.Stats.ScansRun+report.Stats.CellsFailed+report.Stats.CellsPruned,
			report.Stats.CVEs*healthy*2; got != want {
			t.Errorf("workers=%d: scanned %d + failed %d + pruned %d cells, want full grid %d",
				workers, report.Stats.ScansRun, report.Stats.CellsFailed, report.Stats.CellsPruned, want)
		}

		// Determinism across worker counts.
		counters := sink.Counters()
		if baseCounters == nil {
			baseCounters = counters
			continue
		}
		for name, want := range baseCounters {
			if got := counters[name]; got != want {
				t.Errorf("workers=%d: counter %s = %d, want %d (workers=1)", workers, name, got, want)
			}
		}
	}
}

// TestScanMetricsConsistencyRetrieval pins the retrieval counters' contract:
// they match the Report's stats, the per-cell partition invariants hold
// (rescored + pruned pairs cover every cell's pair total; the exact-scoring
// classes cover exactly the rescored pairs), the retrieval trace events sum
// to the counters, and everything is deterministic across worker counts.
func TestScanMetricsConsistencyRetrieval(t *testing.T) {
	model, db, fw := goldenFixtures(t)
	emb := goldenEmbedder(t)
	var baseCounters map[string]int64
	for _, workers := range []int{1, 4, 16} {
		sink := obs.NewTraced(0)
		an := NewAnalyzer(model, db)
		an.Workers = workers
		an.Obs = sink
		an.Embedder = emb
		report, err := an.ScanFirmware(context.Background(), fw)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if dropped := sink.Dropped(); dropped != 0 {
			t.Fatalf("workers=%d: ring dropped %d events; grow the cap for this fixture", workers, dropped)
		}

		// Counters vs the Report's own stats.
		checks := []struct {
			name string
			ctr  obs.Counter
			want int64
		}{
			{"retrieval hits", obs.CtrRetrievalHits, report.Stats.RetrievalHits},
			{"rescored pairs", obs.CtrRescoredPairs, report.Stats.RescoredPairs},
			{"candidates pruned", obs.CtrCandidatesPruned, report.Stats.CandidatesPruned},
		}
		for _, c := range checks {
			if got := sink.Get(c.ctr); got != c.want {
				t.Errorf("workers=%d: %s counter = %d, want %d", workers, c.name, got, c.want)
			}
		}
		if report.Stats.RescoredPairs == 0 {
			t.Errorf("workers=%d: retrieval scan rescored no pairs", workers)
		}

		// Event stream vs counters, and the per-cell pair partition: every
		// cell ran retrieval, so rescored + pruned must cover the cells' pair
		// totals exactly.
		var evPairs, evCells, evRetrieval, evRetrieved, evRescored, evPruned int64
		for _, ev := range sink.Events() {
			switch ev.Kind {
			case obs.EvCellCompleted:
				evCells++
				evPairs += int64(ev.Pairs)
			case obs.EvRetrieval:
				evRetrieval++
				evRetrieved += int64(ev.Retrieved)
				evRescored += int64(ev.Rescored)
				evPruned += int64(ev.Pruned)
			}
		}
		if evRetrieval != evCells {
			t.Errorf("workers=%d: %d retrieval events for %d cells", workers, evRetrieval, evCells)
		}
		rescored, pruned := sink.Get(obs.CtrRescoredPairs), sink.Get(obs.CtrCandidatesPruned)
		if rescored+pruned != evPairs {
			t.Errorf("workers=%d: rescored %d + pruned %d != Σ cell pairs %d", workers, rescored, pruned, evPairs)
		}
		if evRetrieved != sink.Get(obs.CtrRetrievalHits) || evRescored != rescored || evPruned != pruned {
			t.Errorf("workers=%d: retrieval events (%d, %d, %d) diverge from counters (%d, %d, %d)",
				workers, evRetrieved, evRescored, evPruned, sink.Get(obs.CtrRetrievalHits), rescored, pruned)
		}

		// The exact-scoring partition covers only the rescored pairs: with
		// dedup on, every rescored pair is computed once, reused from memory,
		// or answered by the store — never scored behind retrieval's back.
		scored, deduped, fromStore := sink.Get(obs.CtrPairsScored),
			sink.Get(obs.CtrPairsDeduped), sink.Get(obs.CtrPairsFromStore)
		if scored+deduped+fromStore != rescored {
			t.Errorf("workers=%d: pairs scored %d + deduped %d + from store %d != rescored %d",
				workers, scored, deduped, fromStore, rescored)
		}

		// Determinism across worker counts.
		counters := sink.Counters()
		if baseCounters == nil {
			baseCounters = counters
			continue
		}
		for name, want := range baseCounters {
			if got := counters[name]; got != want {
				t.Errorf("workers=%d: counter %s = %d, want %d (workers=1)", workers, name, got, want)
			}
		}
	}
}

// TestManifestFromScan exercises the full artifact path: a live scan's sink
// renders a manifest whose counters survive a JSON round trip.
func TestManifestFromScan(t *testing.T) {
	model, db, fw := goldenFixtures(t)
	sink := obs.NewTraced(0)
	an := NewAnalyzer(model, db)
	an.Workers = 4
	an.Obs = sink
	if _, err := an.ScanFirmware(context.Background(), fw); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "manifest.json")
	info := obs.RunInfo{Tool: "golden-test", Seed: 42, Scale: "tiny", Workers: 4}
	if err := sink.WriteManifest(path, info); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var man obs.Manifest
	if err := json.Unmarshal(raw, &man); err != nil {
		t.Fatal(err)
	}
	if man.Tool != "golden-test" || man.Seed != 42 || man.Scale != "tiny" || man.Workers != 4 {
		t.Errorf("manifest run info mangled: %+v", man)
	}
	for name, want := range sink.Counters() {
		if got := man.Counters[name]; got != want {
			t.Errorf("manifest counter %s = %d, want %d", name, got, want)
		}
	}
	if man.Events != len(sink.Events()) {
		t.Errorf("manifest events = %d, want %d", man.Events, len(sink.Events()))
	}
}
