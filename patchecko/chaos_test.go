package patchecko

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/minic"
	"repro/internal/obs"
)

// TestScanFirmwareChaos is the fault-injection acceptance test: with faults
// armed at every layer of the pipeline — image preparation, worker panics,
// reference execution, reference decoding — ScanFirmware must still return a
// Report covering every non-faulted cell, surface each injected fault as a
// typed ScanError, and produce a byte-identical Report at any worker count.
func TestScanFirmwareChaos(t *testing.T) {
	model, db := fixtures(t)
	fw, err := BuildFirmware(ThingOS, ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(fw.Images) < 3 {
		t.Fatal("fixture firmware too small for chaos testing")
	}

	// Fault targets. CVE-2018-9427 and CVE-2018-9420 are each the only CVE
	// hosted by their library (libkeystore, libexifparser), so breaking one
	// reference cannot bleed into another CVE's reference images.
	const (
		panicCVE  = "CVE-2018-9412"
		trapCVE   = "CVE-2018-9427"
		decodeCVE = "CVE-2018-9420"
	)
	trapEntry, ok := db.Get(trapCVE)
	if !ok {
		t.Fatalf("%s missing from DB", trapCVE)
	}
	decodeEntry, ok := db.Get(decodeCVE)
	if !ok {
		t.Fatalf("%s missing from DB", decodeCVE)
	}

	// The prepare fault must not take out the libraries whose reference
	// faults we want observed from healthy scans of their host images.
	badLib, panicLib := "", ""
	for _, im := range fw.Images {
		if im.LibName == trapEntry.Library || im.LibName == decodeEntry.Library {
			continue
		}
		if badLib == "" {
			badLib = im.LibName
		} else if panicLib == "" {
			panicLib = im.LibName
		}
	}
	if badLib == "" || panicLib == "" {
		t.Fatal("could not pick distinct fault-target libraries")
	}

	// One fault per pipeline layer. The compid.match fault targets the same
	// cell as the worker panic: a faulted prefilter decision must degrade to
	// keeping the cell — never prune it — so the panic cell stays scheduled
	// in the prefiltered runs and the panic fault fires there too.
	disarms := []func(){
		faultinject.Arm(faultinject.PrepareFail, badLib,
			errors.New("injected prepare failure")),
		faultinject.Arm(faultinject.CompidMatch, panicLib+"|"+panicCVE,
			errors.New("injected prefilter fault")),
		faultinject.Arm(faultinject.ScanPanic, panicLib+"|"+panicCVE+"|"+QueryVulnerable.String(),
			errors.New("injected worker panic")),
		faultinject.Arm(faultinject.ExecTrap, trapEntry.Library+".patched:"+trapEntry.FuncName,
			&minic.TrapError{Kind: minic.TrapOOB, Msg: "injected reference trap"}),
		faultinject.Arm(faultinject.DecodeCorrupt, decodeEntry.Library+".vuln",
			errors.New("injected reference rot")),
	}
	disarmAll := func() {
		for _, d := range disarms {
			d()
		}
	}
	defer disarmAll()

	// The retrieval runs swap in the embedding-index static stage; at the
	// default top-K it covers every unique body of the fixture images, so
	// even under armed faults the report must match the exact paths.
	chaosEmb, err := DistillEmbedder(model, 7)
	if err != nil {
		t.Fatal(err)
	}

	healthy := len(fw.Images) - 1
	// Normalized reports are worker-count-invariant within one prefilter
	// setting, but under armed faults the prefiltered grid can legitimately
	// fold a different (still correct) no-match winner and a different
	// CellsFailed count than the full grid — the byte-identity of prefilter
	// on vs off is a fault-free guarantee, pinned by the golden and recall
	// suites — so each prefilter setting keeps its own baseline report.
	bases := make(map[bool]*Report)
	// Deterministic counters depend on the dedup, retrieval and prefilter
	// settings (shared work is counted as deduped, not scored; retrieval
	// counters are zero on exact scans; pruned cells never count), so each
	// setting tuple keeps its own worker-count-invariant baseline.
	type counterKey struct{ noDedup, retrieval, prefilter bool }
	baseCounters := make(map[counterKey]map[string]int64)
	// The scalar runs pin the static stage to the reference path, the traced
	// runs arm full observability, the noDedup runs disable the
	// content-addressed fast path, the retrieval runs route the static
	// stage through the embedding index, and the prefilter runs let the
	// component prefilter prune the grid: batched, scalar, observed,
	// unobserved, deduped, every-pair, retrieval, exact, pruned and
	// full-grid scans must all produce byte-identical reports (per prefilter
	// setting) even with every fault armed, and the deterministic pipeline
	// counters must not depend on the worker count either.
	for _, cfg := range []struct {
		workers   int
		scalar    bool
		traced    bool
		noDedup   bool
		retrieval bool
		prefilter bool
	}{
		{1, false, false, false, false, false}, {4, false, false, false, false, false}, {16, false, false, false, false, false},
		{1, true, false, false, false, false}, {4, true, false, false, false, false},
		{1, false, true, false, false, false}, {4, false, true, false, false, false}, {16, false, true, false, false, false},
		{1, false, false, true, false, false}, {16, false, false, true, false, false},
		{4, true, false, true, false, false}, {1, false, true, true, false, false}, {16, false, true, true, false, false},
		{1, false, false, false, true, false}, {16, false, false, false, true, false},
		{4, false, true, false, true, false}, {16, false, true, false, true, false},
		{4, true, false, true, true, false}, {1, false, true, true, true, false},
		{1, false, true, false, false, true}, {4, false, true, false, false, true}, {16, false, true, false, false, true},
		{1, false, true, true, false, true}, {16, false, true, true, false, true},
		{4, false, true, false, true, true}, {16, false, true, false, true, true},
		{4, true, false, false, false, true},
	} {
		workers := cfg.workers
		// A fresh analyzer per run: reference failures memoize per analyzer,
		// and the determinism guarantee is about a cold scan.
		an := NewAnalyzer(model, db)
		an.Workers = workers
		an.StaticScalar = cfg.scalar
		an.Dedup = !cfg.noDedup
		an.Prefilter = cfg.prefilter
		if cfg.retrieval {
			an.Embedder = chaosEmb
		}
		if cfg.traced {
			an.Obs = obs.NewTraced(0)
		}
		report, err := an.ScanFirmware(context.Background(), fw)
		if err != nil {
			t.Fatalf("workers=%d: chaos scan aborted: %v", workers, err)
		}
		if cfg.traced {
			counters := an.Obs.Counters()
			key := counterKey{cfg.noDedup, cfg.retrieval, cfg.prefilter}
			if baseCounters[key] == nil {
				baseCounters[key] = counters
			} else {
				for name, want := range baseCounters[key] {
					if got := counters[name]; got != want {
						t.Errorf("workers=%d dedup=%v retrieval=%v: chaos counter %s = %d, want %d (first traced run)",
							workers, !cfg.noDedup, cfg.retrieval, name, got, want)
					}
				}
			}
		}

		// Every cell the faults did not touch completed: no CVE lost its
		// result — even when every cell the prefilter kept failed, the
		// second-chance pass must fold an answer from the pruned cells —
		// and the run/fail/pruned split accounts for the whole grid over
		// the healthy images.
		for id, scan := range report.Results {
			if scan == nil {
				t.Errorf("workers=%d: %s: no result despite healthy cells", workers, id)
			}
		}
		if got, want := report.Stats.ScansRun+report.Stats.CellsFailed+report.Stats.CellsPruned, report.Stats.CVEs*healthy*2; got != want {
			t.Errorf("workers=%d: ScansRun+CellsFailed+CellsPruned = %d, want %d (full healthy grid)",
				workers, got, want)
		}
		if !cfg.prefilter && report.Stats.CellsPruned != 0 {
			t.Errorf("workers=%d: full-grid run pruned %d cells", workers, report.Stats.CellsPruned)
		}
		if cfg.prefilter && report.Stats.CellsPruned == 0 {
			t.Errorf("workers=%d: prefiltered chaos run pruned nothing", workers)
		}
		if report.Stats.ImagesFailed != 1 {
			t.Errorf("workers=%d: ImagesFailed = %d, want 1", workers, report.Stats.ImagesFailed)
		}

		// Each injected fault surfaces as a typed ScanError — exactly once
		// for the cell-scoped faults, once per query mode that consulted the
		// broken reference for the reference-scoped ones — and never more,
		// despite every healthy image observing the reference failures.
		seen := make(map[ScanError]bool)
		var prepErrs, panicErrs, trapErrs, decodeErrs []ScanError
		for _, se := range report.Errors {
			if seen[se] {
				t.Errorf("workers=%d: duplicate ScanError survived dedup: %+v", workers, se)
			}
			seen[se] = true
			switch {
			case strings.Contains(se.Msg, "injected prepare failure"):
				prepErrs = append(prepErrs, se)
			case strings.Contains(se.Msg, "injected worker panic"):
				panicErrs = append(panicErrs, se)
			case strings.Contains(se.Msg, "injected reference trap"):
				trapErrs = append(trapErrs, se)
			case strings.Contains(se.Msg, "injected reference rot"):
				decodeErrs = append(decodeErrs, se)
			default:
				t.Errorf("workers=%d: unexpected ScanError: %v", workers, se)
			}
		}
		if len(prepErrs) != 1 || prepErrs[0].CVE != "" ||
			prepErrs[0].Library != badLib || prepErrs[0].Kind != FailPrepare {
			t.Errorf("workers=%d: prepare fault recorded as %+v", workers, prepErrs)
		}
		if len(panicErrs) != 1 || panicErrs[0].CVE != panicCVE ||
			panicErrs[0].Library != panicLib || panicErrs[0].Mode != QueryVulnerable ||
			panicErrs[0].Kind != FailPanic {
			t.Errorf("workers=%d: panic fault recorded as %+v", workers, panicErrs)
		}
		// The trapped patched reference fails every patched-mode cell with
		// candidates, and any vulnerable-mode cell whose match reached the
		// differential stage — one deduplicated error per mode, at most.
		if len(trapErrs) < 1 || len(trapErrs) > 2 {
			t.Errorf("workers=%d: trap fault recorded %d times, want 1 per consulting mode: %+v",
				workers, len(trapErrs), trapErrs)
		}
		for _, se := range trapErrs {
			if se.CVE != trapCVE || se.Library != "" || se.Kind != FailTrap {
				t.Errorf("workers=%d: trap fault recorded as %+v", workers, se)
			}
		}
		// The rotted vulnerable reference fails every vulnerable-mode cell
		// up front; patched-mode cells only hit it from the differential
		// stage. Again one deduplicated error per consulting mode.
		if len(decodeErrs) < 1 || len(decodeErrs) > 2 {
			t.Errorf("workers=%d: decode fault recorded %d times, want 1 per consulting mode: %+v",
				workers, len(decodeErrs), decodeErrs)
		}
		sawVulnMode := false
		for _, se := range decodeErrs {
			if se.CVE != decodeCVE || se.Library != "" || se.Kind != FailDecode {
				t.Errorf("workers=%d: decode fault recorded as %+v", workers, se)
			}
			sawVulnMode = sawVulnMode || se.Mode == QueryVulnerable
		}
		if !sawVulnMode {
			t.Errorf("workers=%d: decode fault never observed from vulnerable-mode cells: %+v",
				workers, decodeErrs)
		}

		// The determinism guarantee holds under faults: the whole Report —
		// results, errors, and counters — is identical at any worker count
		// within one prefilter setting.
		normalizeReport(report)
		if bases[cfg.prefilter] == nil {
			bases[cfg.prefilter] = report
			continue
		}
		base := bases[cfg.prefilter]
		if !reflect.DeepEqual(base, report) {
			t.Errorf("workers=%d prefilter=%v: chaos report diverges from first scan of this setting",
				workers, cfg.prefilter)
			if !reflect.DeepEqual(base.Errors, report.Errors) {
				t.Errorf("  errors:\n got %+v\nwant %+v", report.Errors, base.Errors)
			}
			if base.Stats != report.Stats {
				t.Errorf("  stats:\n got %+v\nwant %+v", report.Stats, base.Stats)
			}
		}
	}

	// Disarm everything and rescan: the chaos runs leave no residue — a
	// fresh analyzer on the same inputs reports zero errors.
	disarmAll()
	if faultinject.Active() {
		t.Fatal("faults still armed after disarm")
	}
	an := NewAnalyzer(model, db)
	an.Workers = 4
	report, err := an.ScanFirmware(context.Background(), fw)
	if err != nil {
		t.Fatalf("post-chaos scan aborted: %v", err)
	}
	if len(report.Errors) != 0 {
		t.Errorf("post-chaos scan recorded errors: %v", report.Errors)
	}
	if report.Stats.ScansRun+report.Stats.CellsPruned != report.Stats.CVEs*report.Stats.Images*2 {
		t.Errorf("post-chaos scan incomplete: %+v", report.Stats)
	}
	if report.Stats.CellsPruned == 0 {
		t.Errorf("post-chaos default-configuration scan pruned nothing: %+v", report.Stats)
	}
}
