// Parallel scan engine: whole-firmware scans schedule the (image, CVE,
// query-mode) grid across a bounded worker pool, amortize per-CVE reference
// work through a single-flight cache, and reduce results in sequential
// iteration order so the final Report is identical to a one-worker run
// regardless of scheduling.

package patchecko

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/binimg"
	"repro/internal/dynamic"
	"repro/internal/minic"
	"repro/internal/vulndb"
)

// refKey identifies one cached reference: a CVE's vulnerable or patched
// version for one architecture under one execution step limit.
type refKey struct {
	cve   string
	arch  string
	mode  QueryMode
	limit int64
}

// refEntry holds the memoized reference work for one key. The decoded
// reference and its dynamic profiles are guarded by separate sync.Onces:
// the static stage only needs the decoded binary, and profiling must stay
// lazy so a scan with zero candidates never executes the reference (the
// sequential pipeline never did).
type refEntry struct {
	refOnce sync.Once
	ref     *vulndb.Ref
	refErr  error

	profOnce sync.Once
	profiles []dynamic.Profile
	profErr  error
}

// resolveRef decodes and disassembles the reference, once per entry.
func (e *refEntry) resolveRef(entry *vulndb.Entry, arch string, mode QueryMode) (*vulndb.Ref, error) {
	e.refOnce.Do(func() {
		e.ref, e.refErr = refFor(entry, arch, mode)
	})
	return e.ref, e.refErr
}

// refCache memoizes per-CVE reference work across images, query modes and
// goroutines. Concurrent requests for the same key single-flight: the first
// arrival computes under the entry's sync.Once, later arrivals block on the
// Once and reuse the result.
type refCache struct {
	mu      sync.Mutex
	entries map[refKey]*refEntry
	// hits/misses count reference *profiling* consults (the expensive,
	// per-CVE×mode work the cache exists to amortize). Exactly one miss is
	// recorded per key — the consult whose Once body ran — so the counters
	// are deterministic for any worker count.
	hits   atomic.Int64
	misses atomic.Int64
}

func (c *refCache) entry(k refKey) *refEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.entries == nil {
		c.entries = make(map[refKey]*refEntry)
	}
	e, ok := c.entries[k]
	if !ok {
		e = &refEntry{}
		c.entries[k] = e
	}
	return e
}

func (c *refCache) counts() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// cachedRef returns the decoded reference for (CVE, arch, mode), computed
// once per analyzer. Decoding is cheap next to profiling, so it is memoized
// without touching the hit/miss counters.
func (a *Analyzer) cachedRef(entry *vulndb.Entry, arch string, mode QueryMode) (*vulndb.Ref, error) {
	e := a.cache.entry(refKey{cve: entry.ID, arch: arch, mode: mode, limit: a.StepLimit})
	return e.resolveRef(entry, arch, mode)
}

// cachedRefProfiles returns the reference's per-environment dynamic
// profiles, executing the reference once per (CVE, arch, mode, step limit)
// for the analyzer's lifetime. The caller must not mutate the returned
// slice; ScanImage copies it before publishing on a CVEScan.
func (a *Analyzer) cachedRefProfiles(entry *vulndb.Entry, arch string, mode QueryMode, envs []*minic.Env) ([]dynamic.Profile, error) {
	e := a.cache.entry(refKey{cve: entry.ID, arch: arch, mode: mode, limit: a.StepLimit})
	computed := false
	e.profOnce.Do(func() {
		computed = true
		ref, err := e.resolveRef(entry, arch, mode)
		if err != nil {
			e.profErr = err
			return
		}
		e.profiles, e.profErr = dynamic.ProfileFunc(ref.Dis, ref.Fn, envs, a.StepLimit)
	})
	if computed {
		a.cache.misses.Add(1)
	} else {
		a.cache.hits.Add(1)
	}
	return e.profiles, e.profErr
}

// ScanStats are scan-level counters for one ScanFirmware run. All fields
// except the wall-clock durations are deterministic in the inputs — they do
// not depend on worker count or goroutine scheduling.
type ScanStats struct {
	Workers     int           // effective worker-pool size
	Images      int           // library images prepared
	CVEs        int           // CVEs scanned
	ScansRun    int           // (image, CVE, mode) grid cells executed
	CacheHits   int64         // reference-profile consults answered from cache
	CacheMisses int64         // reference-profile consults that computed
	PrepareWall time.Duration // wall-clock of the prepare stage
	ScanWall    time.Duration // wall-clock of the scan grid and reduction
}

// PrepareImages disassembles and feature-extracts a set of library images
// with a bounded worker pool. Results keep the input order. When several
// images fail, the error of the lowest-index image wins regardless of which
// worker hit its error first, so the call is deterministic for any worker
// count. workers <= 0 defaults to runtime.NumCPU.
func PrepareImages(ctx context.Context, images []*binimg.Image, workers int) ([]*PreparedImage, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(images) {
		workers = len(images)
	}
	prepared := make([]*PreparedImage, len(images))
	errs := make([]error, len(images))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= len(images) || ctx.Err() != nil {
					return
				}
				prepared[i], errs[i] = Prepare(images[i])
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return prepared, nil
}

// ScanFirmware scans every CVE in the database against every library of
// the firmware image set, reporting the strongest match per CVE. Library
// images are prepared once and reused across all CVEs. Because the scanner
// cannot know a priori whether a target is patched, each image is probed
// with BOTH reference versions ("PATCHECKO will ... restart the whole
// process based on the patched version of the vulnerable function") and
// the closer match wins.
//
// The (image, CVE, mode) scan grid runs on Analyzer.Workers goroutines
// (<= 1 means sequential). The reduction is deterministic: the Report is
// identical for any worker count, and when several grid cells fail the
// error of the earliest cell in sequential iteration order is returned.
// Per-CVE reference work is served from the analyzer's single-flight cache;
// Report.Stats exposes the cache and wall-clock counters.
func (a *Analyzer) ScanFirmware(ctx context.Context, fw *Firmware) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	workers := a.Workers
	if workers <= 0 {
		workers = 1
	}

	prepStart := time.Now()
	prepared, err := PrepareImages(ctx, fw.Images, workers)
	if err != nil {
		return nil, err
	}
	prepWall := time.Since(prepStart)

	// The scan grid. Task index encodes the sequential iteration order
	// (CVE, then image, then mode), which the reduction and the error
	// selection below both rely on.
	ids := a.db.IDs()
	modes := [2]QueryMode{QueryVulnerable, QueryPatched}
	nTasks := len(ids) * len(prepared) * len(modes)
	if workers > nTasks {
		workers = nTasks
	}
	// Candidate validation inside each grid cell stays sequential when the
	// grid itself is parallel: the outer pool already saturates the cores,
	// and nesting pools would only add scheduling overhead.
	validateWorkers := a.Workers
	if workers > 1 {
		validateWorkers = 1
	}

	hits0, misses0 := a.cache.counts()
	scanStart := time.Now()
	scans := make([]*CVEScan, nTasks)
	errs := make([]error, nTasks)
	var (
		next   atomic.Int64
		ran    atomic.Int64
		minErr atomic.Int64 // lowest failed task index; nTasks when none
		wg     sync.WaitGroup
	)
	minErr.Store(int64(nTasks))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= nTasks || ctx.Err() != nil {
					return
				}
				// A lower-index task already failed: this cell's outcome
				// cannot be observed, so skip the work. Cells below the
				// current minimum are never skipped, which keeps the
				// surfaced error deterministic.
				if int64(i) > minErr.Load() {
					continue
				}
				mi := i % len(modes)
				pi := (i / len(modes)) % len(prepared)
				ci := i / (len(modes) * len(prepared))
				scan, err := a.scanImage(ctx, prepared[pi], ids[ci], modes[mi], validateWorkers)
				if err != nil {
					errs[i] = err
					for {
						cur := minErr.Load()
						if int64(i) >= cur || minErr.CompareAndSwap(cur, int64(i)) {
							break
						}
					}
					continue
				}
				scans[i] = scan
				ran.Add(1)
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if idx := minErr.Load(); idx < int64(nTasks) {
		return nil, errs[idx]
	}

	// Deterministic reduction: fold the grid in sequential iteration order
	// so ties resolve exactly as a one-worker scan would.
	report := &Report{Device: fw.Device, Arch: fw.Arch, Results: make(map[string]*CVEScan, len(ids))}
	for ci, id := range ids {
		var best *CVEScan
		for pi := range prepared {
			for mi := range modes {
				scan := scans[(ci*len(prepared)+pi)*len(modes)+mi]
				if best == nil || better(scan, best) {
					best = scan
				}
			}
		}
		report.Results[id] = best
	}
	hits1, misses1 := a.cache.counts()
	report.Stats = ScanStats{
		Workers:     workers,
		Images:      len(prepared),
		CVEs:        len(ids),
		ScansRun:    int(ran.Load()),
		CacheHits:   hits1 - hits0,
		CacheMisses: misses1 - misses0,
		PrepareWall: prepWall,
		ScanWall:    time.Since(scanStart),
	}
	return report, nil
}
