// Parallel scan engine: whole-firmware scans schedule the (image, CVE,
// query-mode) grid across a bounded worker pool, amortize per-CVE reference
// work through a single-flight cache, and reduce results in sequential
// iteration order so the final Report is identical to a one-worker run
// regardless of scheduling.
//
// Failures are isolated, not fatal: an image that will not prepare, a CVE
// reference that will not execute, or a grid cell that traps or panics is
// recorded as a typed ScanError on the Report while every unaffected cell
// completes. Only context cancellation aborts the whole scan.

package patchecko

import (
	"container/list"
	"context"
	"errors"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/binimg"
	"repro/internal/cas"
	"repro/internal/detector"
	"repro/internal/dynamic"
	"repro/internal/embed"
	"repro/internal/faultinject"
	"repro/internal/minic"
	"repro/internal/obs"
	"repro/internal/vulndb"
)

// refKey identifies one cached reference: a CVE's vulnerable or patched
// version for one architecture under one execution step limit.
type refKey struct {
	cve   string
	arch  string
	mode  QueryMode
	limit int64
}

// refEntry holds the memoized reference work for one key under a mutex
// (not a sync.Once): outcomes memoize permanently — including failures,
// which are deterministic in the inputs — EXCEPT cancellation, which says
// nothing about the reference and must not poison the cache for later
// scans. Holding the mutex across the computation single-flights
// concurrent consults of the same key.
type refEntry struct {
	mu sync.Mutex

	refDone bool
	ref     *vulndb.Ref
	refErr  error

	// qh caches the reference static vector's first-layer halves for the
	// batched static stage: normalized and half-multiplied once per
	// (CVE, arch, mode), reused by every image and worker.
	qhDone bool
	qh     *detector.QueryHalves

	// qe caches the reference static vector's embedding for the retrieval
	// static stage, keyed by the embedder that produced it so analyzers with
	// different embedders sharing one cache never cross streams.
	qeEmb *embed.Embedder
	qe    []float64

	profDone bool
	profiles []dynamic.Profile
	profErr  error
}

// resolveRefLocked decodes and disassembles the reference once per entry.
// Callers hold e.mu.
func (e *refEntry) resolveRefLocked(entry *vulndb.Entry, arch string, mode QueryMode) (*vulndb.Ref, error) {
	if !e.refDone {
		e.ref, e.refErr = refFor(entry, arch, mode)
		e.refDone = true
	}
	return e.ref, e.refErr
}

// cacheItem pairs a cache key with its entry so LRU eviction can delete the
// map slot from the recency list alone.
type cacheItem struct {
	key refKey
	e   *refEntry
}

// RefCache memoizes per-CVE reference work (decoded references, first-layer
// query halves, dynamic profiles) across images, query modes and goroutines.
// Every Analyzer owns an unbounded private one; NewRefCache builds a bounded
// process-wide instance that can be shared by many analyzers (the resident
// scan service gives every concurrent job the same cache, so a CVE's
// reference is profiled once per process, not once per job).
//
// Eviction is least-recently-used and affects only work, never results:
// reference work is deterministic in its inputs, so recomputing an evicted
// entry reproduces it exactly. Entries checked out before eviction stay
// valid — holders keep their pointer; the cache merely forgets the slot.
type RefCache struct {
	mu      sync.Mutex
	max     int
	entries map[refKey]*list.Element
	ll      *list.List // front = most recently used
	// hits/misses count reference *profiling* consults (the expensive,
	// per-CVE×mode work the cache exists to amortize). Exactly one miss is
	// recorded per key — the consult that computed — so the counters are
	// deterministic for any worker count (on a private cache; a shared
	// cache's warmth legitimately varies across jobs).
	hits   atomic.Int64
	misses atomic.Int64
}

// NewRefCache returns a bounded reference cache holding at most maxEntries
// (CVE, arch, mode, step-limit) entries; maxEntries <= 0 means unbounded.
func NewRefCache(maxEntries int) *RefCache {
	return &RefCache{max: maxEntries}
}

func (c *RefCache) entry(k refKey) *refEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.entries == nil {
		c.entries = make(map[refKey]*list.Element)
		c.ll = list.New()
	}
	if el, ok := c.entries[k]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*cacheItem).e
	}
	e := &refEntry{}
	c.entries[k] = c.ll.PushFront(&cacheItem{key: k, e: e})
	for c.max > 0 && len(c.entries) > c.max {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.entries, back.Value.(*cacheItem).key)
	}
	return e
}

// InvalidateCVE drops every cached entry for the CVE, forcing the next
// consult to recompute. The scan service calls it before retrying a job
// whose ScanErrors named the CVE: failures memoize permanently (they are
// deterministic for a fixed environment), so a transient fault — an injected
// chaos fault, a since-fixed reference file — must be evicted explicitly for
// a retry to observe the recovered state.
func (c *RefCache) InvalidateCVE(cveID string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for k, el := range c.entries {
		if k.cve == cveID {
			c.ll.Remove(el)
			delete(c.entries, k)
		}
	}
}

// Len returns the number of cached entries.
func (c *RefCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

func (c *RefCache) counts() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// refcache returns the cache reference work goes through: the process-wide
// shared cache when the analyzer was given one, its private cache otherwise.
func (a *Analyzer) refcache() *RefCache {
	if a.SharedCache != nil {
		return a.SharedCache
	}
	return &a.cache
}

// cachedRef returns the decoded reference for (CVE, arch, mode), computed
// once per analyzer. Decoding is cheap next to profiling, so it is memoized
// without touching the hit/miss counters.
func (a *Analyzer) cachedRef(entry *vulndb.Entry, arch string, mode QueryMode) (*vulndb.Ref, error) {
	e := a.refcache().entry(refKey{cve: entry.ID, arch: arch, mode: mode, limit: a.StepLimit})
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.resolveRefLocked(entry, arch, mode)
}

// cachedQueryHalves returns the reference's precomputed first-layer query
// halves, built once per (CVE, arch, mode, step limit) for the analyzer's
// lifetime. Like cachedRef this is cheap next to profiling and does not
// touch the hit/miss counters.
func (a *Analyzer) cachedQueryHalves(entry *vulndb.Entry, arch string, mode QueryMode) (*detector.QueryHalves, error) {
	e := a.refcache().entry(refKey{cve: entry.ID, arch: arch, mode: mode, limit: a.StepLimit})
	e.mu.Lock()
	defer e.mu.Unlock()
	ref, err := e.resolveRefLocked(entry, arch, mode)
	if err != nil {
		return nil, err
	}
	if !e.qhDone {
		e.qh = a.model.PrepareQuery(ref.StaticVec())
		e.qhDone = true
	}
	return e.qh, nil
}

// cachedRefProfiles returns the reference's per-environment dynamic
// profiles, executing the reference once per (CVE, arch, mode, step limit)
// for the analyzer's lifetime. References must run every environment to
// completion; a trapping reference is a memoized failure. A cancelled
// profiling run is returned but NOT memoized, so a later scan with a live
// context retries instead of inheriting the stale cancellation. The caller
// must not mutate the returned slice; ScanImage copies it before publishing
// on a CVEScan.
func (a *Analyzer) cachedRefProfiles(ctx context.Context, entry *vulndb.Entry, arch string, mode QueryMode, envs []*minic.Env) ([]dynamic.Profile, error) {
	c := a.refcache()
	e := c.entry(refKey{cve: entry.ID, arch: arch, mode: mode, limit: a.StepLimit})
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.profDone {
		c.hits.Add(1)
		return e.profiles, e.profErr
	}
	c.misses.Add(1)
	ref, err := e.resolveRefLocked(entry, arch, mode)
	if err != nil {
		e.profDone, e.profErr = true, err
		return nil, err
	}
	profiles, err := profileReference(ctx, ref, envs, a.exec())
	if err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
		return nil, err
	}
	e.profDone, e.profiles, e.profErr = true, profiles, err
	return e.profiles, e.profErr
}

// profileReference executes the reference under its own environments. The
// reference defines the environments, so it must complete all of them; a
// trap here means the stored reference is unusable for this step limit.
func profileReference(ctx context.Context, ref *vulndb.Ref, envs []*minic.Env, ex dynamic.Exec) ([]dynamic.Profile, error) {
	eps, err := dynamic.ProfileFunc(ctx, ref.Dis, ref.Fn, envs, ex)
	if err != nil {
		return nil, err
	}
	return dynamic.CompleteVectors(eps)
}

// ScanStats are scan-level counters for one ScanFirmware run. All fields
// except the wall-clock durations are deterministic in the inputs — they do
// not depend on worker count or goroutine scheduling.
type ScanStats struct {
	Workers     int           // effective worker-pool size
	Images      int           // library images prepared
	CVEs        int           // CVEs scanned
	ScansRun    int           // (image, CVE, mode) grid cells completed
	CellsPruned int           // grid cells the component prefilter skipped (see Analyzer.Prefilter)
	CacheHits   int64         // reference-profile consults answered from cache
	CacheMisses int64         // reference-profile consults that computed
	PrepareWall time.Duration // wall-clock of the prepare stage
	ScanWall    time.Duration // wall-clock of the scan grid and reduction

	// Fault-isolation counters.
	ImagesFailed       int // images that failed to prepare (isolated, see Report.Errors)
	CellsFailed        int // grid cells that failed (before deduplication)
	CandidatesExcluded int // dynamic-stage candidates excluded with a recorded reason
	PartialSurvivors   int // survivors ranked from truncated profiles

	// Dedup / delta-scan counters. UniqueFuncs is deterministic in the
	// inputs (content addresses are computed whether or not dedup runs);
	// the rest measure the work the dedup caches and the persistent store
	// saved this run, so they legitimately vary with the Dedup flag and the
	// store's warmth — the equivalence suites zero them before comparing.
	UniqueFuncs        int   // distinct function content addresses across prepared images
	PairsDeduped       int64 // static scores reused from the in-memory dedup cache
	PairsFromStore     int64 // static scores answered by the persistent store
	ValidationsDeduped int64 // candidate validations reused from the in-memory dedup cache
	StoreHits          int64 // persistent-store consults answered with a current score
	StoreMisses        int64 // persistent-store consults with no usable entry
	StoreInvalidated   int64 // persistent-store consults stale under the current model hash

	// Embedding-index retrieval counters, summed over the cells that ran the
	// retrieval static stage (all zero when Analyzer.Embedder is nil). Per
	// such cell RescoredPairs + CandidatesPruned equals the cell's pair
	// total; they measure work the index pruned, vary with the Embedder and
	// TopK configuration, and are zeroed by Report.Normalize.
	RetrievalHits    int64 // unique function bodies nominated by index lookups
	RescoredPairs    int64 // nominated pairs rescored by the exact pair network
	CandidatesPruned int64 // pairs skipped because their body was not nominated
}

// PrepareImages disassembles and feature-extracts a set of library images
// with a bounded worker pool. Results keep the input order. When several
// images fail, the error of the lowest-index image wins regardless of which
// worker hit its error first, so the call is deterministic for any worker
// count. workers <= 0 defaults to runtime.NumCPU.
//
// This is the fail-fast entry point for callers that need all images; the
// firmware scan engine isolates per-image failures instead.
func PrepareImages(ctx context.Context, images []*binimg.Image, workers int) ([]*PreparedImage, error) {
	if ctx == nil {
		//patchecko:allow ctxflow nil-ctx API tolerance: Background is the documented fallback root
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	prepared, errs := prepareAll(ctx, images, workers)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return prepared, nil
}

// prepareAll runs the shared prepare pool, returning per-image results and
// errors in input order.
func prepareAll(ctx context.Context, images []*binimg.Image, workers int) ([]*PreparedImage, []error) {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(images) {
		workers = len(images)
	}
	prepared := make([]*PreparedImage, len(images))
	errs := make([]error, len(images))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= len(images) || ctx.Err() != nil {
					return
				}
				prepared[i], errs[i] = prepareOne(images[i])
			}
		}()
	}
	wg.Wait()
	return prepared, errs
}

// prepareOne prepares a single image with panic containment and the
// prepare-stage fault point armed for chaos tests.
func prepareOne(im *binimg.Image) (p *PreparedImage, err error) {
	defer func() {
		if r := recover(); r != nil {
			p, err = nil, &panicError{r}
		}
	}()
	if ferr := faultinject.Fire(faultinject.PrepareFail, im.LibName); ferr != nil {
		return nil, ferr
	}
	return Prepare(im)
}

// prepareImagesIsolated prepares every image, converting failures into
// ScanErrors (in image order) instead of aborting: a broken library must
// not cost the scan of the healthy ones. Failed slots are nil.
func prepareImagesIsolated(ctx context.Context, images []*binimg.Image, workers int) ([]*PreparedImage, []ScanError) {
	prepared, errs := prepareAll(ctx, images, workers)
	var scanErrs []ScanError
	for i, err := range errs {
		if err == nil {
			continue
		}
		prepared[i] = nil
		scanErrs = append(scanErrs, ScanError{
			Library: images[i].LibName,
			Kind:    classify(err, FailPrepare),
			Msg:     err.Error(),
		})
	}
	return prepared, scanErrs
}

// runCell executes one (image, CVE, mode) grid cell with panic containment:
// a panic anywhere in the pipeline below becomes this cell's error instead
// of tearing down the scan.
func (a *Analyzer) runCell(ctx context.Context, p *PreparedImage, cveID string, mode QueryMode, validateWorkers int, sc *detector.Scorer) (scan *CVEScan, err error) {
	defer func() {
		if r := recover(); r != nil {
			scan, err = nil, &panicError{r}
		}
	}()
	faultinject.FirePanic(faultinject.ScanPanic, p.Image.LibName+"|"+cveID+"|"+mode.String())
	return a.scanImage(ctx, p, cveID, mode, validateWorkers, sc)
}

// ScanFirmware scans every CVE in the database against every library of
// the firmware image set, reporting the strongest match per CVE. Library
// images are prepared once and reused across all CVEs. Because the scanner
// cannot know a priori whether a target is patched, each image is probed
// with BOTH reference versions ("PATCHECKO will ... restart the whole
// process based on the patched version of the vulnerable function") and
// the closer match wins.
//
// The (image, CVE, mode) scan grid runs on Analyzer.Workers goroutines
// (<= 1 means sequential). Failures are isolated per cell: a failing image,
// reference or cell is recorded as a typed ScanError in Report.Errors and
// the rest of the grid completes; only context cancellation returns an
// error. The reduction is deterministic — results, errors and stats are
// identical for any worker count. Per-CVE reference work is served from the
// analyzer's single-flight cache; Report.Stats exposes the cache, isolation
// and wall-clock counters.
func (a *Analyzer) ScanFirmware(ctx context.Context, fw *Firmware) (*Report, error) {
	if ctx == nil {
		//patchecko:allow ctxflow nil-ctx API tolerance: Background is the documented fallback root
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	workers := a.Workers
	if workers <= 0 {
		workers = 1
	}

	ids := a.db.IDs()
	a.Obs.Emit(obs.Event{
		Kind:   obs.EvScanStarted,
		Device: fw.Device,
		Arch:   fw.Arch,
		Images: len(fw.Images),
		CVEs:   len(ids),
	})

	prepWatch := obs.StartStopwatch()
	prepared, prepErrs := prepareImagesIsolated(ctx, fw.Images, workers)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	prepWall := prepWatch.Elapsed()
	a.Obs.AddStage(obs.StagePrepare, prepWall)
	a.Obs.Add(obs.CtrImagesFailed, int64(len(prepErrs)))
	uniqAddrs := make(map[cas.Addr]struct{})
	for _, p := range prepared {
		if p == nil {
			continue
		}
		a.Obs.Add(obs.CtrImagesPrepared, 1)
		a.Obs.Add(obs.CtrFuncsDisassembled, int64(p.NumFuncs()))
		for _, addr := range p.CAS {
			uniqAddrs[addr] = struct{}{}
		}
		a.Obs.Emit(obs.Event{
			Kind:    obs.EvImagePrepared,
			Library: p.Image.LibName,
			Funcs:   p.NumFuncs(),
		})
	}
	a.Obs.Add(obs.CtrFuncsUnique, int64(len(uniqAddrs)))

	// The scan grid. Task index encodes the sequential iteration order
	// (CVE, then image, then mode), which the reduction below relies on.
	modes := [2]QueryMode{QueryVulnerable, QueryPatched}
	nTasks := len(ids) * len(prepared) * len(modes)
	if workers > nTasks {
		workers = nTasks
	}
	if workers < 1 {
		workers = 1
	}
	// Candidate validation inside each grid cell stays sequential when the
	// grid itself is parallel: the outer pool already saturates the cores,
	// and nesting pools would only add scheduling overhead.
	validateWorkers := a.Workers
	if workers > 1 {
		validateWorkers = 1
	}

	hits0, misses0 := a.refcache().counts()
	dedup0 := a.DedupCounts()
	scanWatch := obs.StartStopwatch()
	// Component-identification prefilter: a sequential pass deciding which
	// (image, CVE) rows the grid schedules at all. keep is nil when the
	// prefilter is off; pruned cells are skipped below and counted in
	// Stats.CellsPruned.
	keep, cellsPruned := a.prefilterGrid(prepared, ids, len(modes))
	scans := make([]*CVEScan, nTasks)
	errs := make([]error, nTasks)
	var (
		next atomic.Int64
		ran  atomic.Int64
		wg   sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One batched scoring context per worker: scratch buffers and
			// the candidate buffer are reused across every cell the worker
			// runs, so steady-state static scoring never allocates.
			sc := a.newScorer()
			for {
				i := int(next.Add(1) - 1)
				if i >= nTasks || ctx.Err() != nil {
					return
				}
				mi := i % len(modes)
				pi := (i / len(modes)) % len(prepared)
				ci := i / (len(modes) * len(prepared))
				if prepared[pi] == nil {
					continue // image failed prepare; recorded already
				}
				if keep != nil && !keep[ci][pi] {
					continue // pruned by the component prefilter; counted already
				}
				scan, err := a.runCell(ctx, prepared[pi], ids[ci], modes[mi], validateWorkers, sc)
				if err != nil {
					if ctx.Err() != nil {
						return
					}
					errs[i] = err
					continue
				}
				scans[i] = scan
				ran.Add(1)
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Deterministic reduction: fold the grid in sequential iteration order
	// so ties — and the order of recorded errors — resolve exactly as a
	// one-worker scan would. Cell failures dedupe by value: a broken CVE
	// reference observed from every image collapses to one ScanError.
	report := &Report{Device: fw.Device, Arch: fw.Arch, Results: make(map[string]*CVEScan, len(ids))}
	report.Degraded = a.StaticOnly
	report.Errors = append(report.Errors, prepErrs...)
	for _, se := range prepErrs {
		a.emitScanError(se)
	}
	stats := ScanStats{ImagesFailed: len(prepErrs)}
	seen := make(map[ScanError]bool)
	rescued := 0
	var rescueSc *detector.Scorer
	rescueScReady := false
	for ci, id := range ids {
		var best *CVEScan
		foldCell := func(pi, mi int) {
			i := (ci*len(prepared)+pi)*len(modes) + mi
			if err := errs[i]; err != nil {
				stats.CellsFailed++
				a.Obs.Add(obs.CtrCellsFailed, 1)
				se := cellError(id, prepared[pi].Image.LibName, modes[mi], err)
				if !seen[se] {
					seen[se] = true
					report.Errors = append(report.Errors, se)
					a.emitScanError(se)
				}
				return
			}
			scan := scans[i]
			if scan == nil {
				return
			}
			stats.CandidatesExcluded += len(scan.Excluded)
			stats.PartialSurvivors += scan.NumPartial
			if scan.retrievalUsed {
				stats.RetrievalHits += int64(scan.retrievedUnique)
				stats.RescoredPairs += int64(scan.rescoredPairs)
				stats.CandidatesPruned += int64(scan.prunedFuncs)
			}
			a.Obs.Add(obs.CtrCellsCompleted, 1)
			a.emitCellEvents(scan)
			if best == nil || better(scan, best) {
				best = scan
			}
		}
		for pi := range prepared {
			for mi := range modes {
				foldCell(pi, mi)
			}
		}
		if best == nil && keep != nil {
			// Second-chance pass: every cell the prefilter scheduled for
			// this CVE failed (or none were healthy), yet pruned cells
			// remain. A pruned cell is a would-be no-match, but the full
			// grid would still have reported that no-match — and a report
			// answer must never depend on the prefilter — so run the pruned
			// cells now, sequentially, and fold them in grid order.
			rescuedRow := 0
			for pi := range prepared {
				if prepared[pi] == nil || keep[ci][pi] {
					continue
				}
				keep[ci][pi] = true
				for mi := range modes {
					i := (ci*len(prepared)+pi)*len(modes) + mi
					if !rescueScReady {
						rescueSc = a.newScorer()
						rescueScReady = true
					}
					scan, err := a.runCell(ctx, prepared[pi], id, modes[mi], validateWorkers, rescueSc)
					if err != nil {
						if cerr := ctx.Err(); cerr != nil {
							return nil, cerr
						}
						errs[i] = err
					} else {
						scans[i] = scan
						ran.Add(1)
					}
					rescued++
					rescuedRow++
					foldCell(pi, mi)
				}
			}
			if rescuedRow > 0 {
				a.Obs.Add(obs.CtrPrefilterDegraded, 1)
				a.Obs.Emit(obs.Event{
					Kind:   obs.EvPrefilter,
					CVE:    id,
					Images: rescuedRow / len(modes),
					Reason: "all kept cells failed; ran pruned cells",
				})
			}
		}
		report.Results[id] = best
		if best != nil && best.Matched {
			a.Obs.Emit(obs.Event{
				Kind:       obs.EvVerdictReached,
				CVE:        best.CVE,
				Library:    best.Library,
				Mode:       best.Mode.String(),
				Addr:       best.Match.Addr,
				Patched:    best.Verdict.Patched,
				Confidence: best.Verdict.Confidence,
			})
		}
	}
	hits1, misses1 := a.refcache().counts()
	dedup1 := a.DedupCounts()
	stats.Workers = workers
	stats.Images = len(prepared)
	stats.CVEs = len(ids)
	stats.ScansRun = int(ran.Load())
	stats.CellsPruned = cellsPruned - rescued
	stats.CacheHits = hits1 - hits0
	stats.CacheMisses = misses1 - misses0
	stats.PrepareWall = prepWall
	stats.ScanWall = scanWatch.Elapsed()
	stats.UniqueFuncs = len(uniqAddrs)
	stats.PairsDeduped = dedup1.PairsDeduped - dedup0.PairsDeduped
	stats.PairsFromStore = dedup1.PairsFromStore - dedup0.PairsFromStore
	stats.ValidationsDeduped = dedup1.ValidationsDeduped - dedup0.ValidationsDeduped
	stats.StoreHits = dedup1.StoreHits - dedup0.StoreHits
	stats.StoreMisses = dedup1.StoreMisses - dedup0.StoreMisses
	stats.StoreInvalidated = dedup1.StoreInvalidated - dedup0.StoreInvalidated
	report.Stats = stats
	a.Obs.Add(obs.CtrRefHits, stats.CacheHits)
	a.Obs.Add(obs.CtrRefMisses, stats.CacheMisses)
	a.Obs.Add(obs.CtrCellsPruned, int64(stats.CellsPruned))
	return report, nil
}

// EmitScanEvents mirrors one completed CVEScan into the analyzer's
// trace-event stream: a cell_completed event, one candidate_excluded event
// per pruned candidate (ascending address order) and, when the scan reached
// a verdict, a verdict_reached event. ScanFirmware emits these itself from
// its deterministic reduction; standalone ScanImage callers that want the
// same trace call this once per scan, in scan order.
func (a *Analyzer) EmitScanEvents(scan *CVEScan) {
	if !a.Obs.Enabled() || scan == nil {
		return
	}
	a.emitCellEvents(scan)
	if scan.Matched {
		a.Obs.Emit(obs.Event{
			Kind:       obs.EvVerdictReached,
			CVE:        scan.CVE,
			Library:    scan.Library,
			Mode:       scan.Mode.String(),
			Addr:       scan.Match.Addr,
			Patched:    scan.Verdict.Patched,
			Confidence: scan.Verdict.Confidence,
		})
	}
}

// emitCellEvents emits one cell_completed event for a finished grid cell
// plus one candidate_excluded event per pruned candidate, in ascending
// address order. Called only from the sequential reduction, so the event
// stream is identical for any worker count.
func (a *Analyzer) emitCellEvents(scan *CVEScan) {
	if !a.Obs.Enabled() {
		return
	}
	if scan.retrievalUsed {
		a.Obs.Add(obs.CtrRetrievalHits, int64(scan.retrievedUnique))
		a.Obs.Add(obs.CtrRescoredPairs, int64(scan.rescoredPairs))
		a.Obs.Add(obs.CtrCandidatesPruned, int64(scan.prunedFuncs))
		a.Obs.Emit(obs.Event{
			Kind:      obs.EvRetrieval,
			CVE:       scan.CVE,
			Library:   scan.Library,
			Mode:      scan.Mode.String(),
			Retrieved: scan.retrievedUnique,
			Rescored:  scan.rescoredPairs,
			Pruned:    scan.prunedFuncs,
		})
	}
	a.Obs.Emit(obs.Event{
		Kind:       obs.EvCellCompleted,
		CVE:        scan.CVE,
		Library:    scan.Library,
		Mode:       scan.Mode.String(),
		Pairs:      scan.TotalFuncs,
		Candidates: scan.NumCandidates,
		Survivors:  scan.NumExecuted,
		Matched:    scan.Matched,
	})
	if len(scan.Excluded) == 0 {
		return
	}
	addrs := make([]uint64, 0, len(scan.Excluded))
	for addr := range scan.Excluded {
		addrs = append(addrs, addr)
	}
	slices.Sort(addrs)
	for _, addr := range addrs {
		a.Obs.Emit(obs.Event{
			Kind:    obs.EvCandidateExcluded,
			CVE:     scan.CVE,
			Library: scan.Library,
			Mode:    scan.Mode.String(),
			Addr:    addr,
			Reason:  scan.Excluded[addr],
		})
	}
}

// emitScanError mirrors a recorded ScanError into the trace-event stream.
// The mode coordinate is meaningless on image-level failures and stays
// blank there, matching ScanError's own scoping rules.
func (a *Analyzer) emitScanError(se ScanError) {
	ev := obs.Event{
		Kind:    obs.EvScanError,
		CVE:     se.CVE,
		Library: se.Library,
		Fail:    se.Kind.String(),
		Reason:  se.Msg,
	}
	if se.CVE != "" {
		ev.Mode = se.Mode.String()
	}
	a.Obs.Emit(ev)
}
