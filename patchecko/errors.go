// Typed failure taxonomy for the fault-tolerant scan engine: every failing
// (image, CVE, mode) grid cell is recorded as a ScanError on the Report
// instead of aborting the whole firmware scan.

package patchecko

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/binimg"
	"repro/internal/minic"
)

// FailKind classifies an isolated scan failure.
type FailKind int

// Failure kinds. Trap, decode, panic and cancellation causes are recognized
// from the error chain; the remaining kinds record which pipeline stage
// failed.
const (
	FailDecode    FailKind = iota + 1 // image or reference bytes failed to decode
	FailPrepare                       // disassembly / feature extraction failed
	FailReference                     // per-CVE reference work failed
	FailTrap                          // an emulator trap surfaced at scan level
	FailPanic                         // recovered panic in a scan worker
	FailCancelled                     // the context ended the work
	FailInternal                      // anything else
)

func (k FailKind) String() string {
	switch k {
	case FailDecode:
		return "decode"
	case FailPrepare:
		return "prepare"
	case FailReference:
		return "reference"
	case FailTrap:
		return "trap"
	case FailPanic:
		return "panic"
	case FailCancelled:
		return "cancelled"
	case FailInternal:
		return "internal"
	default:
		return fmt.Sprintf("failkind(%d)", int(k))
	}
}

// Retryable reports whether a failure of this kind could plausibly succeed
// on a retry of the same work. The deterministic kinds — decode, prepare,
// reference, trap — are terminal: they are functions of the inputs, so the
// same scan fails the same way again. Panics, cancellations (a deadline that
// ate the attempt, not the job) and unclassified internal errors may be
// environmental, so a retry policy with budget may re-run them. The scan
// service's backoff loop is driven by this split.
func (k FailKind) Retryable() bool {
	switch k {
	case FailPanic, FailCancelled, FailInternal:
		return true
	}
	return false
}

// ScanError is one isolated failure from a firmware scan. It is a plain
// comparable value: the engine deduplicates identical failures (e.g. a
// broken CVE reference observed from every image) by equality, and reports
// carrying it stay byte-comparable across worker counts.
//
// Field presence encodes the failure's scope:
//   - image-level (prepare) failures have CVE == "" and Mode == 0;
//   - reference-side failures have Library == "" — the CVE's reference is
//     broken independently of any target image;
//   - cell-level failures carry all three coordinates.
type ScanError struct {
	CVE     string
	Library string
	Mode    QueryMode
	Kind    FailKind
	Msg     string
}

// Retryable reports whether the recorded failure is worth retrying; see
// FailKind.Retryable.
func (e ScanError) Retryable() bool { return e.Kind.Retryable() }

func (e ScanError) Error() string {
	switch {
	case e.CVE == "":
		return fmt.Sprintf("image %s: %s: %s", e.Library, e.Kind, e.Msg)
	case e.Library == "":
		return fmt.Sprintf("%s [%s]: %s: %s", e.CVE, e.Mode, e.Kind, e.Msg)
	default:
		return fmt.Sprintf("%s [%s] on %s: %s: %s", e.CVE, e.Mode, e.Library, e.Kind, e.Msg)
	}
}

// panicError wraps a recovered panic value so it travels the same path as
// ordinary errors and classifies as FailPanic.
type panicError struct{ v any }

func (e *panicError) Error() string { return fmt.Sprintf("panic in scan worker: %v", e.v) }

// refError marks a failure in per-CVE reference work (decoding or executing
// the vulnerable/patched reference). Reference work does not depend on the
// image being scanned, so the engine blanks the library coordinate on these
// and identical failures from different images collapse to one ScanError.
type refError struct{ err error }

func (e *refError) Error() string { return e.err.Error() }
func (e *refError) Unwrap() error { return e.err }

// classify maps an error chain to a FailKind. Specific causes win over the
// stage fallback: an emulator trap is FailTrap even when it surfaced through
// reference profiling.
func classify(err error, stage FailKind) FailKind {
	if err == nil {
		return 0
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return FailCancelled
	}
	if _, ok := minic.IsTrap(err); ok {
		return FailTrap
	}
	if errors.Is(err, binimg.ErrBadImage) {
		return FailDecode
	}
	var pe *panicError
	if errors.As(err, &pe) {
		return FailPanic
	}
	return stage
}

// cellError converts one failed grid cell into its ScanError record.
func cellError(cve, lib string, mode QueryMode, err error) ScanError {
	stage := FailInternal
	var re *refError
	isRef := errors.As(err, &re)
	if isRef {
		stage = FailReference
	}
	se := ScanError{CVE: cve, Library: lib, Mode: mode, Kind: classify(err, stage), Msg: err.Error()}
	if isRef {
		se.Library = ""
	}
	return se
}
