// Package patchecko is the public API of the PATCHECKO reproduction: a
// vulnerability and patch-presence detection framework for stripped
// firmware binaries (Sun, Garcia, Salles-Loustau, Zonouz — "Hybrid Firmware
// Analysis for Known Mobile and IoT Security Vulnerabilities", DSN 2020).
//
// The pipeline has three stages:
//
//  1. Static stage — every function in the target image is disassembled
//     and summarized as a 48-dimensional feature vector; a trained deep
//     neural network scores each function against the CVE reference and
//     keeps the similar ones as candidates.
//  2. Dynamic stage — candidates are executed in isolation under the CVE's
//     fuzzer-derived execution environments; crashing candidates are
//     pruned, survivors are profiled into 21-dimensional dynamic feature
//     vectors, and ranked by Minkowski (p=3) distance to the reference's
//     profiles averaged over environments.
//  3. Differential stage — the top match is compared against BOTH the
//     vulnerable and the patched reference (static features, dynamic
//     similarity, differential CFG/library-call signatures) to decide
//     whether the device still carries the vulnerability.
//
// Typical use:
//
//	groups, _ := patchecko.TrainingCorpus(patchecko.ScaleSmall, 1)
//	model, hist, _, _ := patchecko.TrainDetector(groups, patchecko.DefaultTrainConfig())
//	db, _ := patchecko.BuildVulnDB(patchecko.ScaleSmall, 1)
//	fw, _ := patchecko.BuildFirmware(patchecko.ThingOS, patchecko.ScaleSmall)
//	an := patchecko.NewAnalyzer(model, db)
//	report, _ := an.ScanFirmware(context.Background(), fw)
package patchecko

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/annindex"
	"repro/internal/binimg"
	"repro/internal/cas"
	"repro/internal/compid"
	"repro/internal/corpus"
	"repro/internal/detector"
	"repro/internal/diffengine"
	"repro/internal/disasm"
	"repro/internal/dynamic"
	"repro/internal/embed"
	"repro/internal/features"
	"repro/internal/minic"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/vulndb"
)

// Re-exported building blocks. The aliases make the whole workflow usable
// through this single package.
type (
	// Scale sizes corpus generation and training.
	Scale = corpus.Scale
	// Device describes a target platform (architecture + patch states).
	Device = corpus.Device
	// Firmware is a device's stripped library set plus held-aside ground truth.
	Firmware = corpus.Firmware
	// Model is the trained static-stage similarity detector.
	Model = detector.Model
	// TrainConfig controls detector training.
	TrainConfig = detector.TrainConfig
	// Groups is the Dataset I feature corpus.
	Groups = detector.Groups
	// DB is the vulnerability database (Dataset II).
	DB = vulndb.DB
	// History is the per-epoch training history (Fig. 8).
	History = nn.History
	// Profile is one execution's 21-dimensional dynamic feature vector
	// (Table II).
	Profile = dynamic.Profile
	// EnvProfile is one environment's execution outcome: a Profile plus
	// the trap that truncated it, if any.
	EnvProfile = dynamic.EnvProfile
	// Image is one library binary.
	Image = binimg.Image
	// Verdict is the differential engine's patch decision.
	Verdict = diffengine.Verdict
	// Embedder is the single-tower embedding head the retrieval static
	// stage uses (see Analyzer.Embedder and DistillEmbedder).
	Embedder = embed.Embedder
)

// Preset scales.
var (
	ScaleTiny   = corpus.ScaleTiny
	ScaleSmall  = corpus.ScaleSmall
	ScaleMedium = corpus.ScaleMedium
	ScaleLarge  = corpus.ScaleLarge
)

// The two evaluation devices.
var (
	ThingOS   = corpus.ThingOS
	Pebble2XL = corpus.Pebble2XL
)

// TrainingCorpus builds Dataset I at the given scale.
func TrainingCorpus(s Scale, seed int64) (Groups, error) {
	return corpus.TrainingGroups(s, seed)
}

// DefaultTrainConfig mirrors the paper's training setup at laptop scale.
func DefaultTrainConfig() TrainConfig { return detector.DefaultTrainConfig() }

// TrainDetector fits the 6-layer similarity network on the corpus.
func TrainDetector(groups Groups, cfg TrainConfig) (*Model, *History, *detector.Dataset, error) {
	m, h, ds, err := detector.Train(groups, cfg)
	return m, h, ds, err
}

// BuildVulnDB builds Dataset II: the 25-CVE vulnerability database.
func BuildVulnDB(s Scale, seed int64) (*DB, error) { return corpus.BuildDB(s, seed) }

// DistillEmbedder distills the retrieval static stage's single-tower
// embedding head from a trained detector (deterministic in model and seed).
// Assign the result to Analyzer.Embedder to enable embedding-index
// retrieval.
func DistillEmbedder(m *Model, seed int64) (*Embedder, error) {
	return embed.DistillFromModel(m, seed)
}

// BuildFirmware builds Dataset III for a device.
func BuildFirmware(dev Device, s Scale) (*Firmware, error) {
	return corpus.BuildFirmware(dev, s)
}

// QueryMode selects which reference version drives the static search. The
// paper evaluates both (Tables VI and VII) because a scanner does not know
// a priori whether the target is patched.
type QueryMode int

// Query modes.
const (
	QueryVulnerable QueryMode = iota + 1
	QueryPatched
)

func (m QueryMode) String() string {
	if m == QueryPatched {
		return "patched"
	}
	return "vulnerable"
}

// Analyzer runs the three-stage pipeline.
type Analyzer struct {
	model *Model
	db    *DB
	// StepLimit bounds each candidate execution.
	StepLimit int64
	// ExecBudget is a wall-clock watchdog per emulator execution, enforced
	// alongside the step limit; expiry surfaces as a TrapBudget trap. Zero
	// (the default) disables it: unlike the step limit a wall-clock bound
	// is not deterministic in the inputs, so scans that must be
	// byte-reproducible across runs leave it off.
	ExecBudget time.Duration
	// ExploitReplay enables the patch-diff-guided differential replay
	// extension (the future work the paper sketches for its one
	// misclassification). When the standard differential evidence is
	// decisive it is kept; replay only overrides low-confidence verdicts.
	// Off by default to preserve the paper's documented blind spot.
	ExploitReplay bool
	// Workers parallelizes the scan engine when > 1 (the paper's other
	// future-work item): ScanFirmware schedules its (image, CVE, mode)
	// grid across this many goroutines, and standalone ScanImage calls
	// validate candidates on a pool of this size. Results are bit-identical
	// to sequential scanning; only wall-clock changes.
	Workers int
	// StaticScalar pins the static stage to the scalar reference path
	// (Model.Candidates on raw vectors) instead of the batched scorer with
	// cached first-layer halves. Both paths share one canonical
	// floating-point order, so reports are byte-identical either way; the
	// flag exists so equivalence is testable and the batched machinery is
	// bypassable when debugging.
	StaticScalar bool
	// Obs receives pipeline counters, per-stage wall-clock totals and (when
	// built with obs.NewTraced) structured trace events. Nil — the default —
	// is the no-op sink: instrumented paths cost one predicted branch and
	// zero allocations, and reports are byte-identical either way.
	Obs *obs.Metrics
	// Dedup — on by default via NewAnalyzer — shares per-function work by
	// content address: each unique function body is statically scored once
	// per CVE×mode and dynamically validated once per CVE×step-limit, with
	// the result reused for every duplicate across all images the analyzer
	// scans. Reports are byte-identical with dedup on or off; only work is
	// saved. Turn it off to force the reference every-pair path (the
	// equivalence suites compare both).
	Dedup bool
	// Store, when non-nil and Dedup is on, persists static scores by content
	// address across analyzer lifetimes — the delta-scan path: rescanning a
	// firmware update only recomputes functions whose content changed. The
	// store is versioned by model hash and corruption-tolerant; a bad or
	// stale entry is a miss, never a wrong score. Ignored when Dedup is off.
	Store *cas.Store
	// SharedCache, when non-nil, replaces the analyzer's private reference
	// cache with a process-wide (usually bounded, see NewRefCache) one so
	// concurrent scans by different analyzers — the resident scan service's
	// jobs — profile each CVE reference once per process. Results are
	// byte-identical either way; only warmth (Stats.CacheHits/CacheMisses)
	// varies, which Report.Normalize zeroes for comparisons.
	SharedCache *RefCache
	// Embedder, when non-nil, switches the static stage to embedding-index
	// retrieval (see retrieval.go): each unique function body is embedded
	// once per image, a deterministic nearest-neighbour index nominates the
	// TopK closest bodies to the CVE reference's embedding, and only the
	// nominated pairs are rescored by the exact pair network — candidates
	// always carry exact scores; retrieval can only prune, never re-rank.
	// With TopK at least the image's unique-body count, reports are
	// byte-identical to the exact paths. Nil — the default — is the escape
	// hatch: the exact every-pair static stage. Distill one with
	// DistillEmbedder.
	Embedder *embed.Embedder
	// TopK is the retrieval depth when Embedder is set; <= 0 means
	// DefaultTopK. Ignored on the exact paths.
	TopK int
	// Prefilter — on by default via NewAnalyzer — runs the component-
	// identification prefilter (internal/compid) before ScanFirmware
	// schedules its grid: each prepared image is fingerprinted once, and a
	// CVE row only schedules the images whose fingerprints match the CVE's
	// component signature. The keep rule is calibrated recall-safe — a
	// pruned cell is one the full grid would have scored as a no-match — so
	// reports are byte-identical with the prefilter on or off (after
	// Normalize, which zeroes the grid-scheduling accounting), and the
	// recall suite pins that against full-grid ground truth rather than
	// assuming it. Every escape path (no derivable signature, a degenerate
	// signature, an armed compid.match fault, a row the filter would empty)
	// degrades to the full grid; pruning is never silent — see
	// Stats.CellsPruned, the cells_pruned/prefilter_degraded counters and
	// the prefilter trace event.
	Prefilter bool
	// StaticOnly degrades the pipeline to its static stage: candidates are
	// scored and reported, but dynamic validation and the differential
	// verdict are shed. Every scan and the Report are explicitly marked
	// Degraded — degradation is never silent. The scan service uses this
	// under overload or deadline pressure to return a cheap partial answer
	// instead of none.
	StaticOnly bool

	// cache memoizes per-CVE reference work (decoded references and their
	// dynamic profiles) across images, query modes and goroutines.
	cache RefCache
	// scores and dyn memoize per-unique-function work (static scores and
	// validation outcomes) across images, cells and goroutines when Dedup
	// is on.
	scores scoreCache
	dyn    dynCache
	// sigs memoizes per-(CVE, arch) component signatures for the prefilter;
	// nil entries memoize failed derivations (degrade, never prune blindly).
	sigMu sync.Mutex
	sigs  map[string]*compid.Signature
}

// NewAnalyzer builds an analyzer from a trained model and a CVE database.
// Content-addressed dedup is on by default; results are byte-identical to a
// dedup-off analyzer.
func NewAnalyzer(model *Model, db *DB) *Analyzer {
	return &Analyzer{model: model, db: db, StepLimit: 1 << 20, Dedup: true, Prefilter: true}
}

// DB returns the analyzer's vulnerability database.
func (a *Analyzer) DB() *DB { return a.db }

// PreparedImage caches the static stage's per-image work (disassembly and
// feature extraction) so one image can be scanned for many CVEs.
type PreparedImage struct {
	Image *Image
	Dis   *disasm.Disassembly
	Vecs  []features.Vector
	// CAS holds each function's content address, aligned with Dis.Funcs.
	// Computed unconditionally by Prepare — the addresses are cheap next to
	// feature extraction and the dedup-ratio statistics must not depend on
	// whether dedup is enabled.
	CAS []cas.Addr

	// uniq lists one representative function index per distinct content
	// address, in first-occurrence order; uniqPos maps every function to its
	// representative's position in uniq. Together they let the dedup path
	// score only unique bodies and fan the results out.
	uniq    []int
	uniqPos []int

	// Batched static stage: every function vector normalized and pushed
	// through the model's first layer once, then reused across all CVEs,
	// both query modes and every worker. Built lazily under mu by the first
	// cell that scores this image. uts is the dedup variant covering only
	// the unique representatives.
	mu       sync.Mutex
	tsModel  *Model
	ts       *detector.TargetSet
	utsModel *Model
	uts      *detector.TargetSet

	// Embedding-index retrieval: the unique representatives embedded and
	// indexed once per (image, embedder), shared by every CVE, mode and
	// worker. Built lazily under mu like the target sets.
	annEmb *embed.Embedder
	ann    *annindex.Index
	annErr error

	// fp is the image's component fingerprint for the prefilter, built
	// lazily under mu by Fingerprint and shared across every CVE row.
	fp *compid.Fingerprint
}

// Targets returns the image's precomputed first-layer target halves for the
// model, building them on first use. Safe for concurrent use; the build is
// single-flighted under the image's mutex.
func (p *PreparedImage) Targets(m *Model) *detector.TargetSet {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.tsModel != m {
		p.ts = m.PrepareTargets(p.Vecs)
		p.tsModel = m
	}
	return p.ts
}

// UniqueTargets is Targets restricted to the unique-representative vectors:
// the dedup path pushes each distinct function body through the model's
// first layer once. Per-vector preparation is independent, so a
// representative's halves here are bit-identical to its halves in the full
// set — which is what keeps dedup scores equal to every-pair scores.
func (p *PreparedImage) UniqueTargets(m *Model) *detector.TargetSet {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.utsModel != m {
		uv := make([]features.Vector, len(p.uniq))
		for k, i := range p.uniq {
			uv[k] = p.Vecs[i]
		}
		p.uts = m.PrepareTargets(uv)
		p.utsModel = m
	}
	return p.uts
}

// Prepare disassembles the image and extracts per-function features.
func Prepare(im *Image) (*PreparedImage, error) {
	dis, err := disasm.Disassemble(im)
	if err != nil {
		return nil, fmt.Errorf("patchecko: %s: %w", im.LibName, err)
	}
	p := &PreparedImage{Image: im, Dis: dis}
	p.Vecs = make([]features.Vector, len(dis.Funcs))
	for i, f := range dis.Funcs {
		p.Vecs[i] = features.Extract(dis, f)
	}
	p.CAS = cas.ImageAddrs(dis, p.Vecs)
	pos := make(map[cas.Addr]int, len(p.CAS))
	p.uniqPos = make([]int, len(p.CAS))
	for i, addr := range p.CAS {
		k, ok := pos[addr]
		if !ok {
			k = len(p.uniq)
			pos[addr] = k
			p.uniq = append(p.uniq, i)
		}
		p.uniqPos[i] = k
	}
	return p, nil
}

// NumFuncs returns the number of recovered functions.
func (p *PreparedImage) NumFuncs() int { return len(p.Dis.Funcs) }

// NumUnique returns the number of distinct function content addresses in
// the image.
func (p *PreparedImage) NumUnique() int { return len(p.uniq) }

// RankedMatch is one dynamically-ranked candidate.
type RankedMatch struct {
	Addr uint64
	Sim  float64 // Minkowski similarity distance; smaller = more similar
	// Completed of Envs environments ran to completion during validation;
	// Completed < Envs marks a candidate ranked from truncated profiles.
	Completed int
	Envs      int
}

// Partial reports whether the candidate was ranked from truncated profiles.
func (m RankedMatch) Partial() bool { return m.Completed < m.Envs }

// CVEScan is the outcome of scanning one image for one CVE.
type CVEScan struct {
	CVE     string
	Library string
	Mode    QueryMode

	// Static stage.
	TotalFuncs    int
	NumCandidates int
	CandidateAddr []uint64

	// Dynamic stage.
	NumExecuted int // candidates surviving input validation
	NumPartial  int // survivors whose profiles include a trapped environment
	Ranking     []RankedMatch
	// Excluded records, per candidate address, why validation excluded it
	// (no environment completed, a worker panic, ...). The paper discards
	// these silently; keeping the reasons makes pruning auditable.
	Excluded map[uint64]string
	// RefProfiles are the query reference's per-environment profiles;
	// SurvivorProfiles maps each surviving candidate's address to its
	// per-environment outcomes, truncated traces included. Together they
	// are the raw material of the paper's Table III and the
	// distance-metric ablations.
	RefProfiles      []Profile
	SurvivorProfiles map[uint64][]EnvProfile

	// Differential stage (only when a match was found).
	Matched bool
	Match   RankedMatch
	Verdict Verdict

	// Degraded marks a scan whose dynamic and differential stages were shed
	// (Analyzer.StaticOnly): the candidate list is real, but nothing was
	// validated and no verdict was attempted. Omitted from JSON when false
	// so full-pipeline reports are unchanged.
	Degraded bool `json:"Degraded,omitempty"`

	// Timings, for the paper's processing-time columns.
	StaticTime  time.Duration
	DynamicTime time.Duration

	// Retrieval bookkeeping (unexported, never serialized): filled when the
	// embedding-index static stage ran this cell, consumed by the scan
	// reduction's stats and trace events, zeroed by Report.Normalize so
	// retrieval-on and retrieval-off reports of the same scan compare equal.
	retrievalUsed   bool
	retrievedUnique int // unique bodies the index nominated
	rescoredPairs   int // pairs rescored by the exact network
	prunedFuncs     int // pairs skipped (body not nominated)
}

// TopRank returns the 1-based rank of addr in the dynamic ranking, or 0.
func (s *CVEScan) TopRank(addr uint64) int {
	for i, r := range s.Ranking {
		if r.Addr == addr {
			return i + 1
		}
	}
	return 0
}

// ScanImage runs the full pipeline for one CVE against one prepared image.
// The context cancels the scan between pipeline stages; per-CVE reference
// work is served from the analyzer's cache.
func (a *Analyzer) ScanImage(ctx context.Context, p *PreparedImage, cveID string, mode QueryMode) (*CVEScan, error) {
	return a.scanImage(ctx, p, cveID, mode, a.Workers, a.newScorer())
}

// newScorer returns a scoring context for the batched static stage, or nil
// when the analyzer is pinned to the scalar path. A Scorer is single-
// threaded; the scan engine calls this once per worker goroutine.
func (a *Analyzer) newScorer() *detector.Scorer {
	if a.StaticScalar {
		return nil
	}
	return a.model.NewScorer().Observe(a.Obs)
}

// scanImage is ScanImage with an explicit candidate-validation pool size —
// so the firmware scan grid can keep per-cell validation sequential while
// standalone ScanImage calls still parallelize it — and the caller's
// batched scoring context (nil forces the scalar static stage).
func (a *Analyzer) scanImage(ctx context.Context, p *PreparedImage, cveID string, mode QueryMode, validateWorkers int, sc *detector.Scorer) (*CVEScan, error) {
	if ctx == nil {
		//patchecko:allow ctxflow nil-ctx API tolerance: Background is the documented fallback root
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	entry, ok := a.db.Get(cveID)
	if !ok {
		return nil, fmt.Errorf("patchecko: unknown CVE %s", cveID)
	}
	arch := p.Image.Arch
	queryRef, err := a.cachedRef(entry, arch, mode)
	if err != nil {
		return nil, &refError{err}
	}

	scan := &CVEScan{
		CVE:        cveID,
		Library:    p.Image.LibName,
		Mode:       mode,
		TotalFuncs: len(p.Dis.Funcs),
	}

	// Stage 1: deep-learning classification. The batched path scores the
	// image's cached first-layer target halves against the CVE's cached
	// query halves in the worker's scratch buffers; the scalar path scores
	// the raw vectors. Both use the same canonical accumulation order, so
	// candidates — indices, exact scores, order — are identical.
	sw := obs.StartStopwatch()
	var cands []detector.Candidate
	if a.Embedder != nil {
		var rerr error
		cands, rerr = a.retrieveCandidates(entry, arch, mode, p, sc, scan)
		if rerr != nil {
			return nil, &refError{rerr}
		}
	} else if a.Dedup {
		var derr error
		cands, derr = a.dedupCandidates(entry, arch, mode, p, sc)
		if derr != nil {
			return nil, &refError{derr}
		}
	} else if sc == nil {
		cands = a.model.Candidates(queryRef.StaticVec(), p.Vecs)
		// The batched Scorer counts its own pairs; the scalar path counts
		// here so both report the same totals.
		a.Obs.Add(obs.CtrPairsScored, int64(len(p.Vecs)))
		a.Obs.Add(obs.CtrStaticCandidates, int64(len(cands)))
	} else {
		qh, qerr := a.cachedQueryHalves(entry, arch, mode)
		if qerr != nil {
			return nil, &refError{qerr}
		}
		cands = sc.Candidates(qh, p.Targets(a.model))
	}
	scan.StaticTime = sw.Elapsed()
	a.Obs.AddStage(obs.StageStatic, scan.StaticTime)
	scan.NumCandidates = len(cands)
	for _, c := range cands {
		scan.CandidateAddr = append(scan.CandidateAddr, p.Dis.Funcs[c.Index].Addr)
	}
	if a.StaticOnly {
		scan.Degraded = true
		return scan, nil
	}
	if len(cands) == 0 {
		return scan, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Stage 2: input validation + dynamic profiling + ranking.
	sw = obs.StartStopwatch()
	envs := entry.Environments()
	candFuncs := make([]*disasm.Function, len(cands))
	for i, c := range cands {
		candFuncs[i] = p.Dis.Funcs[c.Index]
	}
	var survivors []int
	var profiles map[int][]EnvProfile
	var excluded map[int]error
	if a.Dedup {
		survivors, profiles, excluded = a.dedupValidate(ctx, p, entry, cands, candFuncs, envs, validateWorkers)
	} else {
		survivors, profiles, excluded = dynamic.ValidateParallel(ctx, p.Dis, candFuncs, envs, a.exec(), validateWorkers)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	scan.NumExecuted = len(survivors)
	if len(excluded) > 0 {
		scan.Excluded = make(map[uint64]string, len(excluded))
		for idx, reason := range excluded {
			scan.Excluded[candFuncs[idx].Addr] = reason.Error()
		}
	}
	refProfiles, err := a.cachedRefProfiles(ctx, entry, arch, mode, envs)
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		return nil, &refError{fmt.Errorf("patchecko: %s: reference does not execute: %w", cveID, err)}
	}
	// Copy: the cached slice is shared across scans and must not alias a
	// published result.
	scan.RefProfiles = append([]Profile(nil), refProfiles...)
	scan.SurvivorProfiles = make(map[uint64][]EnvProfile, len(profiles))
	for idx, ps := range profiles {
		scan.SurvivorProfiles[candFuncs[idx].Addr] = ps
		if dynamic.Completion(ps) < len(ps) {
			scan.NumPartial++
		}
	}
	ranked := dynamic.Rank(refProfiles, profiles)
	for _, r := range ranked {
		scan.Ranking = append(scan.Ranking, RankedMatch{
			Addr:      candFuncs[r.Index].Addr,
			Sim:       r.Sim,
			Completed: r.Completed,
			Envs:      r.Envs,
		})
	}
	scan.DynamicTime = sw.Elapsed()
	a.Obs.AddStage(obs.StageDynamic, scan.DynamicTime)
	if len(ranked) == 0 {
		return scan, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Stage 3: differential patch analysis on the top match. Only a
	// fully-validated match can claim one: a candidate ranked from
	// truncated profiles is reported in the ranking but is not strong
	// enough evidence to drive a patch verdict.
	top := ranked[0]
	if top.Envs == 0 || top.Completed < top.Envs {
		return scan, nil
	}
	scan.Matched = true
	scan.Match = scan.Ranking[0]
	topFn := candFuncs[top.Index]
	sw = obs.StartStopwatch()
	verdict, err := a.patchVerdict(ctx, entry, arch, p, topFn, dynamic.Vectors(profiles[top.Index]), envs)
	a.Obs.AddStage(obs.StageDifferential, sw.Elapsed())
	if err != nil {
		return nil, err
	}
	scan.Verdict = verdict
	return scan, nil
}

// exec bundles the analyzer's per-execution bounds for the dynamic stage.
func (a *Analyzer) exec() dynamic.Exec {
	return dynamic.Exec{Steps: a.StepLimit, Budget: a.ExecBudget, Obs: a.Obs}
}

// patchVerdict runs the differential engine on a matched target function.
// Both reference versions and their profiles come from the analyzer's cache,
// so across a firmware scan they are computed once per CVE — the same cache
// entries also serve the query side of vulnerable- and patched-mode scans.
func (a *Analyzer) patchVerdict(ctx context.Context, entry *vulndb.Entry, arch string, p *PreparedImage,
	target *disasm.Function, targetProfiles []dynamic.Profile, envs []*minic.Env) (Verdict, error) {
	vref, err := a.cachedRef(entry, arch, QueryVulnerable)
	if err != nil {
		return Verdict{}, &refError{err}
	}
	pref, err := a.cachedRef(entry, arch, QueryPatched)
	if err != nil {
		return Verdict{}, &refError{err}
	}
	vp, err := a.cachedRefProfiles(ctx, entry, arch, QueryVulnerable, envs)
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return Verdict{}, cerr
		}
		return Verdict{}, &refError{fmt.Errorf("patchecko: %s: vulnerable ref: %w", entry.ID, err)}
	}
	pp, err := a.cachedRefProfiles(ctx, entry, arch, QueryPatched, envs)
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return Verdict{}, cerr
		}
		return Verdict{}, &refError{fmt.Errorf("patchecko: %s: patched ref: %w", entry.ID, err)}
	}
	verdict := diffengine.Decide(diffengine.Inputs{
		VulnStatic:      vref.StaticVec(),
		PatchedStatic:   pref.StaticVec(),
		TargetStatic:    features.Extract(p.Dis, target),
		VulnProfiles:    vp,
		PatchedProfiles: pp,
		TargetProfiles:  targetProfiles,
		VulnSig:         diffengine.SigOf(vref.Fn),
		PatchedSig:      diffengine.SigOf(pref.Fn),
		TargetSig:       diffengine.SigOf(target),
		Obs:             a.Obs,
	})
	if a.ExploitReplay && verdict.Confidence < 0.75 {
		vulnExec := diffengine.Exec{Dis: vref.Dis, Fn: vref.Fn}
		patchedExec := diffengine.Exec{Dis: pref.Dis, Fn: pref.Fn}
		targetExec := diffengine.Exec{Dis: p.Dis, Fn: target}
		div := diffengine.FindDivergence(vulnExec, patchedExec, envs,
			diffengine.DefaultReplayConfig(int64(target.Addr)))
		if len(div) > 0 {
			if patched, ok := diffengine.ReplayVerdict(targetExec, vulnExec, patchedExec, div, a.StepLimit); ok {
				verdict.Patched = patched
				verdict.Confidence = 0.95
			}
		}
	}
	return verdict, nil
}

func refFor(entry *vulndb.Entry, arch string, mode QueryMode) (*vulndb.Ref, error) {
	if mode == QueryPatched {
		return entry.PatchedRef(arch)
	}
	return entry.VulnRef(arch)
}

// Report is a whole-firmware scan result.
type Report struct {
	Device string
	Arch   string
	// Results is indexed by CVE id; each entry is the scan of that CVE's
	// best-matching library image. An entry is nil only when every grid
	// cell for that CVE failed — individual failures are isolated into
	// Errors and do not null out a CVE that other images answered.
	Results map[string]*CVEScan
	// Errors are the isolated failures recorded during the scan, in
	// deterministic order: image preparation failures first (in image
	// order), then grid-cell failures in sequential iteration order.
	// Identical failures observed from several cells (e.g. a broken CVE
	// reference seen by every image) are deduplicated by value.
	Errors []ScanError
	// Stats are the scan-level counters of the run that produced the
	// report (worker count, cache hits/misses, per-stage wall-clock).
	Stats ScanStats
	// Degraded marks a report produced with the dynamic and differential
	// stages shed (Analyzer.StaticOnly): every result lists static
	// candidates only, with no validation and no verdicts. The scan service
	// sets this under overload or deadline pressure; it is never set
	// silently — a degraded report says so. Omitted from JSON when false so
	// full-pipeline reports are unchanged.
	Degraded bool `json:"Degraded,omitempty"`
}

// Normalize zeroes the Report fields that legitimately vary from run to run
// on identical inputs — wall-clock timings, the configured worker count,
// and the work-saved accounting that depends on cache warmth, the Dedup
// flag and the persistent store — so two reports of the same scan can be
// compared byte-for-byte (marshal after Normalize; encoding/json sorts map
// keys). It also zeroes the grid-scheduling accounting (cells run/pruned
// and the per-cell byproducts summed only over scheduled cells), which
// varies with the Prefilter flag while the Results and Errors it describes
// do not. Everything it leaves alone is deterministic in the scan inputs
// and configuration-independent.
func (r *Report) Normalize() {
	for _, s := range r.Results {
		if s != nil {
			s.StaticTime, s.DynamicTime = 0, 0
			s.retrievalUsed = false
			s.retrievedUnique, s.rescoredPairs, s.prunedFuncs = 0, 0, 0
		}
	}
	r.Stats.PrepareWall, r.Stats.ScanWall = 0, 0
	r.Stats.Workers = 0
	r.Stats.ScansRun, r.Stats.CellsPruned = 0, 0
	r.Stats.CandidatesExcluded, r.Stats.PartialSurvivors = 0, 0
	r.Stats.CacheHits, r.Stats.CacheMisses = 0, 0
	r.Stats.PairsDeduped, r.Stats.PairsFromStore = 0, 0
	r.Stats.ValidationsDeduped = 0
	r.Stats.StoreHits, r.Stats.StoreMisses, r.Stats.StoreInvalidated = 0, 0, 0
	r.Stats.RetrievalHits, r.Stats.RescoredPairs, r.Stats.CandidatesPruned = 0, 0, 0
}

// better prefers matched scans with smaller similarity distance. It is the
// comparison the firmware-scan reduction folds with, so it must be a strict
// ordering: ties return false and the earlier scan in sequential iteration
// order wins, which is what keeps parallel reduction deterministic.
func better(a, b *CVEScan) bool {
	if a.Matched != b.Matched {
		return a.Matched
	}
	if !a.Matched {
		return a.NumCandidates > b.NumCandidates
	}
	return a.Match.Sim < b.Match.Sim
}
