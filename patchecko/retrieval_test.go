package patchecko

import (
	"context"
	"slices"
	"testing"
)

// retrievalCombos enumerates the static-stage configurations retrieval must
// compose with: the batched and scalar scoring paths, each with dedup on and
// off.
var retrievalCombos = []struct {
	name    string
	scalar  bool
	noDedup bool
}{
	{"batched-dedup", false, false},
	{"batched-nodedup", false, true},
	{"scalar-dedup", true, false},
	{"scalar-nodedup", true, true},
}

func retrievalAnalyzer(model *Model, db *DB, scalar, noDedup bool, emb *Embedder, topK int) *Analyzer {
	an := NewAnalyzer(model, db)
	an.StaticOnly = true // the property under test is the candidate list
	an.StaticScalar = scalar
	an.Dedup = !noDedup
	an.Embedder = emb
	an.TopK = topK
	return an
}

// TestRetrievalCandidatesEquivalence is the engine-level recall property:
// with top-K at least every image's unique-body count, the retrieval static
// stage produces exactly the exact-scan candidate list — addresses, counts
// and order — on every scoring path; and at a small K its candidate list is
// an ordered subsequence of the exact list (retrieval prunes, never
// re-ranks or invents).
func TestRetrievalCandidatesEquivalence(t *testing.T) {
	model, db, fw := goldenFixtures(t)
	emb := goldenEmbedder(t)
	ctx := context.Background()
	prepared, err := PrepareImages(ctx, fw.Images, 4)
	if err != nil {
		t.Fatal(err)
	}
	ids := db.IDs()
	for _, combo := range retrievalCombos {
		t.Run(combo.name, func(t *testing.T) {
			exact := retrievalAnalyzer(model, db, combo.scalar, combo.noDedup, nil, 0)
			full := retrievalAnalyzer(model, db, combo.scalar, combo.noDedup, emb, 1<<20)
			small := retrievalAnalyzer(model, db, combo.scalar, combo.noDedup, emb, 2)
			prunedSomewhere := false
			for _, p := range prepared {
				for _, id := range ids {
					for _, mode := range []QueryMode{QueryVulnerable, QueryPatched} {
						se, err := exact.ScanImage(ctx, p, id, mode)
						if err != nil {
							t.Fatal(err)
						}
						sf, err := full.ScanImage(ctx, p, id, mode)
						if err != nil {
							t.Fatal(err)
						}
						if !slices.Equal(se.CandidateAddr, sf.CandidateAddr) {
							t.Fatalf("%s %s %s: full-K retrieval candidates %v != exact %v",
								p.Image.LibName, id, mode, sf.CandidateAddr, se.CandidateAddr)
						}
						ss, err := small.ScanImage(ctx, p, id, mode)
						if err != nil {
							t.Fatal(err)
						}
						if !isSubsequence(ss.CandidateAddr, se.CandidateAddr) {
							t.Fatalf("%s %s %s: small-K candidates %v are not a subsequence of exact %v",
								p.Image.LibName, id, mode, ss.CandidateAddr, se.CandidateAddr)
						}
						if len(ss.CandidateAddr) < len(se.CandidateAddr) {
							prunedSomewhere = true
						}
					}
				}
			}
			// The small-K runs must actually exercise pruning somewhere, or
			// the subsequence check above is vacuous.
			if !prunedSomewhere {
				t.Error("K=2 retrieval never pruned a candidate; fixture too small to exercise pruning")
			}
		})
	}
}

// isSubsequence reports whether sub appears in seq in order.
func isSubsequence(sub, seq []uint64) bool {
	j := 0
	for _, v := range seq {
		if j < len(sub) && sub[j] == v {
			j++
		}
	}
	return j == len(sub)
}
