// Embedding-index static stage: candidate retrieval with exact top-K
// rescoring. A single-tower embedding head distilled from the trained pair
// network (internal/embed) maps each unique function body to a short vector
// once per image; a deterministic nearest-neighbour index over those vectors
// (internal/annindex) retrieves the K closest bodies to the CVE reference's
// embedding, and only the retrieved pairs go through the exact pair-network
// scoring the rest of the pipeline trusts. Everything downstream — candidate
// thresholding, ordering, validation, verdicts — is unchanged and runs on
// exact scores, so retrieval can only prune, never re-rank.
//
// The recall contract: annindex.Search is exact over the embedding metric,
// so with K at least the image's unique-body count retrieval degenerates to
// the full pair set and reports are byte-identical to the exact paths. Below
// that, recall depends on how faithfully the distilled embedding preserves
// the teacher's neighbourhoods — measured, not assumed, by the benchmark
// artifact (BENCH_static.json "retrieval") and the equivalence suites.
// Setting Analyzer.Embedder to nil (the default) is the escape hatch: the
// exact every-pair static stage, untouched.

package patchecko

import (
	"slices"

	"repro/internal/annindex"
	"repro/internal/detector"
	"repro/internal/embed"
	"repro/internal/features"
	"repro/internal/obs"
	"repro/internal/vulndb"
)

// DefaultTopK is the retrieval depth used when Analyzer.TopK is zero. It
// comfortably exceeds the unique-function count of the evaluation images at
// the golden-fixture scales, so default-K retrieval is byte-identical to the
// exact scan there; real deployments tune it down for speed.
const DefaultTopK = 128

// cachedQueryEmbedding returns the reference static vector's embedding under
// the analyzer's current embedder, memoized per (CVE, arch, mode, step limit)
// alongside the reference itself. Keyed by embedder pointer so a shared
// RefCache serving analyzers with different embedders never crosses streams.
func (a *Analyzer) cachedQueryEmbedding(entry *vulndb.Entry, arch string, mode QueryMode) ([]float64, error) {
	e := a.refcache().entry(refKey{cve: entry.ID, arch: arch, mode: mode, limit: a.StepLimit})
	e.mu.Lock()
	defer e.mu.Unlock()
	ref, err := e.resolveRefLocked(entry, arch, mode)
	if err != nil {
		return nil, err
	}
	if e.qeEmb != a.Embedder {
		e.qe = a.Embedder.Embed(ref.StaticVec())
		e.qeEmb = a.Embedder
	}
	return e.qe, nil
}

// retrievalIndex returns the image's embedding index for the embedder,
// building it on first use: every unique-representative vector is embedded
// once and indexed under its position in p.uniq. Single-flighted under the
// image mutex like the target-set caches; Build is deterministic in the
// embeddings, so every worker sees the same index.
func (p *PreparedImage) retrievalIndex(e *embed.Embedder) (*annindex.Index, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.annEmb != e {
		vecs := make([][]float64, len(p.uniq))
		flat := make([]float64, len(vecs)*e.Dim())
		xbuf := make([]float64, features.NumStatic)
		hbuf := make([]float64, e.Hidden())
		for k, i := range p.uniq {
			row := flat[k*e.Dim() : (k+1)*e.Dim()]
			e.EmbedInto(row, xbuf, hbuf, p.Vecs[i])
			vecs[k] = row
		}
		p.ann, p.annErr = annindex.Build(vecs, annindex.DefaultConfig())
		p.annEmb = e
	}
	return p.ann, p.annErr
}

// retrieveCandidates is the static stage with embedding-index pruning: the
// index nominates the top-K unique bodies by embedding distance to the query,
// and only functions whose body was nominated are rescored by the exact pair
// network. Scoring reuses the same machinery as the exact paths — shared
// scores by content address when Dedup is on, the caller's batched scorer or
// the scalar reference path otherwise — so a retrieved pair's score is
// bit-identical to its exact-scan score, and with K >= NumUnique the
// candidate list is exactly the every-pair list. Retrieval bookkeeping is
// recorded on the scan and surfaced by the reduction; obs pair counters here
// cover only the rescored pairs.
func (a *Analyzer) retrieveCandidates(entry *vulndb.Entry, arch string, mode QueryMode, p *PreparedImage, sc *detector.Scorer, scan *CVEScan) ([]detector.Candidate, error) {
	scan.retrievalUsed = true
	if len(p.Vecs) == 0 {
		return nil, nil
	}
	qe, err := a.cachedQueryEmbedding(entry, arch, mode)
	if err != nil {
		return nil, err
	}
	idx, err := p.retrievalIndex(a.Embedder)
	if err != nil {
		return nil, err
	}
	k := a.TopK
	if k <= 0 {
		k = DefaultTopK
	}
	hits := idx.Search(qe, k)
	retrieved := make([]bool, len(p.uniq))
	for _, h := range hits {
		retrieved[h.ID] = true
	}

	// The compute closure mirrors the exact static stage for the analyzer's
	// configuration, pair for pair.
	var compute func(i int) float64
	if sc == nil {
		ref, err := a.cachedRef(entry, arch, mode)
		if err != nil {
			return nil, err
		}
		qv := ref.StaticVec()
		compute = func(i int) float64 { return a.model.Similarity(qv, p.Vecs[i]) }
	} else {
		qh, err := a.cachedQueryHalves(entry, arch, mode)
		if err != nil {
			return nil, err
		}
		if a.Dedup {
			uts := p.UniqueTargets(a.model)
			compute = func(i int) float64 { return sc.Pair(qh, uts, p.uniqPos[i]) }
		} else {
			ts := p.Targets(a.model)
			compute = func(i int) float64 { return sc.Pair(qh, ts, i) }
		}
	}

	rescored := 0
	var out []detector.Candidate
	for i := range p.Vecs {
		if !retrieved[p.uniqPos[i]] {
			continue
		}
		rescored++
		var s float64
		if a.Dedup {
			s = a.sharedScore(scoreKey{cve: entry.ID, mode: mode, fn: p.CAS[i]}, i, compute)
		} else {
			s = compute(i)
		}
		if s >= a.model.Threshold {
			out = append(out, detector.Candidate{Index: i, Score: s})
		}
	}
	if !a.Dedup {
		// The dedup path counts per consult inside sharedScore; the direct
		// paths count the rescored pairs here so the pairs_scored partition
		// covers exactly the pairs the exact network actually scored.
		a.Obs.Add(obs.CtrPairsScored, int64(rescored))
	}
	// Same total order as every exact path: score descending, index
	// ascending. Rescored pairs carry exact scores, so on the pairs both
	// paths score the permutation matches too.
	slices.SortFunc(out, func(x, y detector.Candidate) int {
		if x.Score != y.Score {
			if x.Score > y.Score {
				return -1
			}
			return 1
		}
		return x.Index - y.Index
	})
	a.Obs.Add(obs.CtrStaticCandidates, int64(len(out)))
	scan.retrievedUnique = len(hits)
	scan.rescoredPairs = rescored
	scan.prunedFuncs = len(p.Vecs) - rescored
	return out, nil
}
