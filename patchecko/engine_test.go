package patchecko

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// normalizeReport zeroes the fields that legitimately vary across runs so
// the remainder can be compared with reflect.DeepEqual; see Report.Normalize
// (the public form served comparisons use). UniqueFuncs stays: it is
// deterministic in the inputs regardless of configuration.
func normalizeReport(r *Report) { r.Normalize() }

// TestScanFirmwareParallelMatchesSequential is the engine's determinism
// guarantee: the Report of a whole-firmware scan is identical — every
// CVEScan field except timings, and every deterministic counter — at any
// worker count and under any goroutine scheduling.
func TestScanFirmwareParallelMatchesSequential(t *testing.T) {
	model, db := fixtures(t)
	fw, err := BuildFirmware(ThingOS, ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	var base *Report
	for _, workers := range []int{0, 1, 4, 16} {
		an := NewAnalyzer(model, db)
		an.Workers = workers
		report, err := an.ScanFirmware(context.Background(), fw)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got, want := report.Stats.ScansRun+report.Stats.CellsPruned, report.Stats.Images*report.Stats.CVEs*2; got != want {
			t.Errorf("workers=%d: ran+pruned %d grid cells, want %d", workers, got, want)
		}
		// The cache guarantee: reference profiling runs at most once per
		// CVE×mode, however many images consult it.
		if max := int64(report.Stats.CVEs * 2); report.Stats.CacheMisses > max {
			t.Errorf("workers=%d: %d cache misses, want <= %d (once per CVE×mode)",
				workers, report.Stats.CacheMisses, max)
		}
		normalizeReport(report)
		if base == nil {
			base = report
			continue
		}
		if report.Stats != base.Stats {
			t.Errorf("workers=%d: stats diverge: %+v vs %+v", workers, report.Stats, base.Stats)
		}
		if !reflect.DeepEqual(base, report) {
			for id, want := range base.Results {
				if got := report.Results[id]; !reflect.DeepEqual(want, got) {
					t.Errorf("workers=%d: %s diverges from sequential scan:\n got %+v\nwant %+v",
						workers, id, got, want)
				}
			}
		}
	}
}

// TestScanFirmwareScalarMatchesBatched is the wire-through half of the
// batched==scalar guarantee: whole-firmware Reports from the batched static
// stage (cached first-layer halves, per-worker scratch buffers) and from
// the scalar reference path are byte-identical — every score, candidate
// list, ranking, verdict and deterministic counter — at any worker count.
func TestScanFirmwareScalarMatchesBatched(t *testing.T) {
	model, db := fixtures(t)
	fw, err := BuildFirmware(ThingOS, ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	var base *Report
	for _, cfg := range []struct {
		workers int
		scalar  bool
	}{
		{1, true}, {4, true}, {16, true},
		{1, false}, {4, false}, {16, false},
	} {
		an := NewAnalyzer(model, db)
		an.Workers = cfg.workers
		an.StaticScalar = cfg.scalar
		report, err := an.ScanFirmware(context.Background(), fw)
		if err != nil {
			t.Fatalf("workers=%d scalar=%v: %v", cfg.workers, cfg.scalar, err)
		}
		normalizeReport(report)
		if base == nil {
			base = report
			continue
		}
		if !reflect.DeepEqual(base, report) {
			t.Errorf("workers=%d scalar=%v: report diverges from scalar single-worker scan",
				cfg.workers, cfg.scalar)
			for id, want := range base.Results {
				if got := report.Results[id]; !reflect.DeepEqual(want, got) {
					t.Errorf("  %s:\n got %+v\nwant %+v", id, got, want)
				}
			}
		}
	}
}

// TestScanImageScalarMatchesBatched pins the single-image entry point the
// same way, including reuse of one analyzer's caches across both modes.
func TestScanImageScalarMatchesBatched(t *testing.T) {
	model, db := fixtures(t)
	fw, err := BuildFirmware(ThingOS, ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	truth, ok := fw.CVETruthFor("CVE-2018-9412")
	if !ok {
		t.Fatal("no ground truth")
	}
	im, _ := fw.Image(truth.Library)
	p, err := Prepare(im)
	if err != nil {
		t.Fatal(err)
	}
	scalar := NewAnalyzer(model, db)
	scalar.StaticScalar = true
	batched := NewAnalyzer(model, db)
	for _, mode := range []QueryMode{QueryVulnerable, QueryPatched} {
		want, err := scalar.ScanImage(context.Background(), p, "CVE-2018-9412", mode)
		if err != nil {
			t.Fatal(err)
		}
		got, err := batched.ScanImage(context.Background(), p, "CVE-2018-9412", mode)
		if err != nil {
			t.Fatal(err)
		}
		want.StaticTime, want.DynamicTime = 0, 0
		got.StaticTime, got.DynamicTime = 0, 0
		if !reflect.DeepEqual(want, got) {
			t.Errorf("mode=%v: batched scan diverges from scalar:\n got %+v\nwant %+v", mode, got, want)
		}
	}
}

// TestBetter pins the tie-break ordering the parallel reducer folds with.
// better must be a strict order — ties return false so the earlier scan in
// sequential iteration order wins deterministically.
func TestBetter(t *testing.T) {
	matched := func(sim float64) *CVEScan {
		return &CVEScan{Matched: true, Match: RankedMatch{Sim: sim}}
	}
	unmatched := func(cands int) *CVEScan {
		return &CVEScan{NumCandidates: cands}
	}
	cases := []struct {
		name string
		a, b *CVEScan
		want bool
	}{
		{"matched beats unmatched", matched(9.9), unmatched(100), true},
		{"unmatched loses to matched", unmatched(100), matched(9.9), false},
		{"unmatched: more candidates wins", unmatched(5), unmatched(3), true},
		{"unmatched: fewer candidates loses", unmatched(3), unmatched(5), false},
		{"unmatched: equal candidates is a tie", unmatched(4), unmatched(4), false},
		{"matched: smaller distance wins", matched(0.5), matched(1.5), true},
		{"matched: larger distance loses", matched(1.5), matched(0.5), false},
		{"matched: equal distance is a tie", matched(0.7), matched(0.7), false},
	}
	for _, tc := range cases {
		if got := better(tc.a, tc.b); got != tc.want {
			t.Errorf("%s: better = %v, want %v", tc.name, got, tc.want)
		}
	}
	// Strictness: better(a, b) and better(b, a) must never both hold, or
	// the reduction's winner would depend on evaluation order.
	all := []*CVEScan{matched(0.5), matched(0.5), matched(2), unmatched(0), unmatched(7)}
	for _, a := range all {
		for _, b := range all {
			if better(a, b) && better(b, a) {
				t.Errorf("better is not asymmetric for %+v vs %+v", a, b)
			}
		}
	}
}

// TestPrepareImagesDeterministicError corrupts two images mid-set and
// checks that every worker count surfaces the lowest-index failure, not
// whichever goroutine loses the race.
func TestPrepareImagesDeterministicError(t *testing.T) {
	fw, err := BuildFirmware(ThingOS, ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(fw.Images) < 2 {
		t.Fatal("fixture firmware too small to corrupt mid-set")
	}
	corrupt := func(im *Image, name string) *Image {
		bad := *im
		bad.LibName = name
		bad.Arch = "no-such-arch"
		return &bad
	}
	// Two corrupt images: the earlier one must win at every worker count.
	images := append([]*Image(nil), fw.Images...)
	images[1] = corrupt(images[1], "libfirstbad")
	images = append(images, corrupt(images[0], "liblastbad"))
	for _, workers := range []int{0, 1, 2, 8} {
		if _, err := PrepareImages(context.Background(), images, workers); err == nil {
			t.Fatalf("workers=%d: corrupt image set prepared without error", workers)
		} else if !strings.Contains(err.Error(), "libfirstbad") {
			t.Errorf("workers=%d: got error %q, want the index-1 image's error", workers, err)
		}
	}
	// End to end, ScanFirmware isolates the failures instead of aborting:
	// the corrupt images become typed ScanErrors in deterministic (image)
	// order, and every healthy image is still scanned for every CVE.
	model, db := fixtures(t)
	badFw := *fw
	badFw.Images = images
	an := NewAnalyzer(model, db)
	an.Workers = 8
	report, err := an.ScanFirmware(context.Background(), &badFw)
	if err != nil {
		t.Fatalf("isolated scan aborted: %v", err)
	}
	if report.Stats.ImagesFailed != 2 {
		t.Errorf("ImagesFailed = %d, want 2", report.Stats.ImagesFailed)
	}
	if len(report.Errors) != 2 {
		t.Fatalf("recorded %d scan errors, want 2: %v", len(report.Errors), report.Errors)
	}
	if report.Errors[0].Library != "libfirstbad" || report.Errors[1].Library != "liblastbad" {
		t.Errorf("error order not deterministic: %+v", report.Errors)
	}
	for _, se := range report.Errors {
		if se.CVE != "" || se.Kind != FailPrepare {
			t.Errorf("image failure misrecorded: %+v", se)
		}
		if !strings.Contains(se.Error(), se.Library) {
			t.Errorf("rendered error %q does not name the image", se.Error())
		}
	}
	for id, scan := range report.Results {
		if scan == nil {
			t.Errorf("%s: no result despite healthy images", id)
		}
	}
	healthy := len(images) - 2
	if got, want := report.Stats.ScansRun+report.Stats.CellsPruned, report.Stats.CVEs*healthy*2; got != want {
		t.Errorf("ScansRun+CellsPruned = %d, want the full grid (%d) over the %d healthy images",
			got, want, healthy)
	}
}

// TestScanFirmwareCancelled checks prompt, leak-free cancellation.
func TestScanFirmwareCancelled(t *testing.T) {
	model, db := fixtures(t)
	fw, err := BuildFirmware(ThingOS, ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	an := NewAnalyzer(model, db)
	an.Workers = 8
	start := time.Now()
	if _, err := an.ScanFirmware(ctx, fw); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled scan returned %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("cancelled scan took %v, want a prompt return", elapsed)
	}
	p, err := Prepare(fw.Images[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := an.ScanImage(ctx, p, "CVE-2018-9412", QueryVulnerable); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled ScanImage returned %v, want context.Canceled", err)
	}
	if _, err := PrepareImages(ctx, fw.Images, 4); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled PrepareImages returned %v, want context.Canceled", err)
	}
	// Every worker goroutine must have drained.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before cancel, %d after", before, n)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestConcurrentScansShareReferenceCache hammers one analyzer from many
// goroutines (run under -race via `make race`): the single-flight cache
// must compute each reference profile exactly once and every scan must
// still see identical results.
func TestConcurrentScansShareReferenceCache(t *testing.T) {
	model, db := fixtures(t)
	fw, err := BuildFirmware(ThingOS, ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	truth, ok := fw.CVETruthFor("CVE-2018-9412")
	if !ok {
		t.Fatal("no ground truth")
	}
	im, _ := fw.Image(truth.Library)
	p, err := Prepare(im)
	if err != nil {
		t.Fatal(err)
	}
	an := NewAnalyzer(model, db)
	an.Workers = 2
	want, err := an.ScanImage(context.Background(), p, "CVE-2018-9412", QueryVulnerable)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	scans := make([]*CVEScan, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			scans[g], errs[g] = an.ScanImage(context.Background(), p, "CVE-2018-9412", QueryVulnerable)
		}(g)
	}
	wg.Wait()
	for g := 0; g < goroutines; g++ {
		if errs[g] != nil {
			t.Fatalf("goroutine %d: %v", g, errs[g])
		}
		scans[g].StaticTime, scans[g].DynamicTime = 0, 0
	}
	want.StaticTime, want.DynamicTime = 0, 0
	for g := 0; g < goroutines; g++ {
		if !reflect.DeepEqual(scans[g], want) {
			t.Errorf("goroutine %d produced a divergent scan", g)
		}
	}
	// Single-flight: one CVE on one arch touches at most three profile
	// keys (query + differential vuln/patched), no matter how many
	// concurrent scans consulted them.
	if _, misses := an.cache.counts(); misses > 3 {
		t.Errorf("%d cache misses for one CVE, want <= 3 (single-flight broken)", misses)
	}
}
