package dynamic

import (
	"context"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/compiler"
	"repro/internal/disasm"
	"repro/internal/isa"
	"repro/internal/minic"
)

func TestMinkowskiProperties(t *testing.T) {
	// Metric axioms on random profiles: identity, symmetry, non-negativity.
	f := func(seedA, seedB [NumDynamic]int16) bool {
		var a, b Profile
		for i := range a {
			a[i] = float64(seedA[i])
			b[i] = float64(seedB[i])
		}
		dab := Minkowski(a, b, MinkowskiP)
		dba := Minkowski(b, a, MinkowskiP)
		daa := Minkowski(a, a, MinkowskiP)
		return daa == 0 && dab >= 0 && math.Abs(dab-dba) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMinkowskiSpecialCases(t *testing.T) {
	var a, b Profile
	a[0], b[0] = 0, 3
	a[1], b[1] = 0, 4
	// p=2 is Euclidean: sqrt(9+16)=5.
	if d := Minkowski(a, b, 2); math.Abs(d-5) > 1e-12 {
		t.Errorf("Euclidean = %v, want 5", d)
	}
	// p=1 is Manhattan: 7.
	if d := Minkowski(a, b, 1); math.Abs(d-7) > 1e-12 {
		t.Errorf("Manhattan = %v, want 7", d)
	}
	// p=3: (27+64)^(1/3).
	want := math.Pow(91, 1.0/3)
	if d := Minkowski(a, b, 3); math.Abs(d-want) > 1e-12 {
		t.Errorf("p=3 = %v, want %v", d, want)
	}
}

func TestSimilarityAveragesOverEnvs(t *testing.T) {
	var p0, p1 Profile
	p1[5] = 10
	f := []Profile{p0, p0}
	g := []Profile{p1, p0} // raw distance 10 in env 0, 0 in env 1
	if got := SimilarityRaw(f, g); math.Abs(got-5) > 1e-12 {
		t.Errorf("SimilarityRaw = %v, want 5", got)
	}
	// The scaled form averages log-space distances the same way.
	want := math.Log1p(10) / 2
	if got := Similarity(f, g); math.Abs(got-want) > 1e-12 {
		t.Errorf("Similarity = %v, want %v", got, want)
	}
	if !math.IsInf(Similarity(nil, nil), 1) {
		t.Error("empty profile sets should be infinitely dissimilar")
	}
	// Identical profile sets are perfectly similar under both metrics.
	if Similarity(f, f) != 0 || SimilarityRaw(f, f) != 0 {
		t.Error("self-similarity should be 0")
	}
}

func TestNamesMatchTableII(t *testing.T) {
	if len(Names) != 21 {
		t.Fatalf("%d dynamic feature names, want 21", len(Names))
	}
	if Names[0] != "binary_defined_fun_call_num" || Names[20] != "syscall_num" {
		t.Error("Table II ordering broken")
	}
}

// buildFirmwareLib compiles a module and returns its disassembly.
func buildFirmwareLib(t *testing.T, mod *minic.Module) *disasm.Disassembly {
	t.Helper()
	im, err := compiler.Compile(mod, isa.XARM64, compiler.O1)
	if err != nil {
		t.Fatal(err)
	}
	dis, err := disasm.Disassemble(im)
	if err != nil {
		t.Fatal(err)
	}
	return dis
}

func TestValidatePrunesCrashers(t *testing.T) {
	mod := &minic.Module{Name: "t", Funcs: []*minic.Func{
		minic.NewFunc("good", []string{"p", "n"},
			minic.Ret(minic.Call("checksum", minic.V("p"), minic.Call("min", minic.V("n"), minic.I(32))))),
		minic.NewFunc("crasher", []string{"p", "n"},
			minic.Ret(minic.Ld(minic.I(0), minic.I(0)))), // null deref
		minic.NewFunc("divzero", []string{"p", "n"},
			minic.Ret(minic.Div(minic.V("n"), minic.Sub(minic.V("n"), minic.V("n"))))),
	}}
	dis := buildFirmwareLib(t, mod)
	envs := []*minic.Env{
		{Args: []int64{minic.DataBase, 16, 1, 1}, Data: make([]byte, 32)},
		{Args: []int64{minic.DataBase, 8, 2, 2}, Data: []byte("abcdefgh")},
	}
	cands := dis.Funcs
	survivors, profiles := Validate(dis, cands, envs, 0)
	if len(survivors) != 1 {
		t.Fatalf("%d survivors, want 1 (only 'good')", len(survivors))
	}
	if dis.Funcs[survivors[0]].Name != "good" {
		t.Errorf("survivor is %s", dis.Funcs[survivors[0]].Name)
	}
	if len(profiles[survivors[0]]) != len(envs) {
		t.Errorf("survivor has %d profiles, want %d", len(profiles[survivors[0]]), len(envs))
	}
}

func TestRankFindsTrueMatch(t *testing.T) {
	// The same source function at a different optimization level must rank
	// closest to the reference among decoys.
	src := minic.NewFunc("target", []string{"p", "n"},
		minic.Set("s", minic.I(0)),
		minic.Loop(minic.Gt(minic.V("n"), minic.I(0)),
			minic.Set("s", minic.Add(minic.V("s"), minic.Ld(minic.V("p"), minic.V("n")))),
			minic.Set("n", minic.Sub(minic.V("n"), minic.I(1)))),
		minic.Ret(minic.V("s")))
	decoy1 := minic.NewFunc("decoy1", []string{"p", "n"},
		minic.Ret(minic.Call("checksum", minic.V("p"), minic.Call("min", minic.V("n"), minic.I(16)))))
	decoy2 := minic.NewFunc("decoy2", []string{"p", "n"},
		minic.Set("x", minic.Mul(minic.V("n"), minic.V("n"))),
		minic.Ret(minic.Xor(minic.V("x"), minic.I(255))))

	refMod := &minic.Module{Name: "ref", Funcs: []*minic.Func{src}}
	refIm, err := compiler.Compile(refMod, isa.XARM64, compiler.O0)
	if err != nil {
		t.Fatal(err)
	}
	refDis, err := disasm.Disassemble(refIm)
	if err != nil {
		t.Fatal(err)
	}
	refFn, _ := refDis.Lookup("target")

	tgtDis := buildFirmwareLib(t, &minic.Module{Name: "fw", Funcs: []*minic.Func{decoy1, src, decoy2}})

	envs := []*minic.Env{
		{Args: []int64{minic.DataBase, 24, 0, 0}, Data: []byte("abcdefghijklmnopqrstuvwxyz")},
		{Args: []int64{minic.DataBase, 8, 0, 0}, Data: []byte("12345678")},
	}
	refProfiles, err := ProfileFunc(refDis, refFn, envs, 0)
	if err != nil {
		t.Fatal(err)
	}
	survivors, profiles := Validate(tgtDis, tgtDis.Funcs, envs, 0)
	if len(survivors) != 3 {
		t.Fatalf("%d survivors, want 3", len(survivors))
	}
	ranked := Rank(refProfiles, profiles)
	if tgtDis.Funcs[ranked[0].Index].Name != "target" {
		t.Errorf("top ranked is %s (sim %v), want target",
			tgtDis.Funcs[ranked[0].Index].Name, ranked[0].Sim)
	}
	// Distances are ascending.
	for i := 1; i < len(ranked); i++ {
		if ranked[i].Sim < ranked[i-1].Sim {
			t.Error("ranking not sorted ascending")
		}
	}
}

func TestValidateParallelMatchesSequential(t *testing.T) {
	mod := minic.GenLibrary(minic.GenConfig{Seed: 71, Name: "libpar", NumFuncs: 24, FragileFrac: 0.4})
	dis := buildFirmwareLib(t, mod)
	envs := []*minic.Env{
		{Args: []int64{minic.DataBase, 32, 5, 2}, Data: make([]byte, 64)},
		{Args: []int64{minic.DataBase, 16, -3, 9}, Data: []byte("parallel-validation-data")},
	}
	seqIdx, seqProf := Validate(dis, dis.Funcs, envs, 0)
	for _, workers := range []int{2, 4, 100} {
		parIdx, parProf := ValidateParallel(context.Background(), dis, dis.Funcs, envs, 0, workers)
		if len(parIdx) != len(seqIdx) {
			t.Fatalf("workers=%d: %d survivors vs sequential %d", workers, len(parIdx), len(seqIdx))
		}
		for i := range seqIdx {
			if parIdx[i] != seqIdx[i] {
				t.Fatalf("workers=%d: survivor order differs at %d", workers, i)
			}
			for e := range seqProf[seqIdx[i]] {
				if parProf[parIdx[i]][e] != seqProf[seqIdx[i]][e] {
					t.Fatalf("workers=%d: profiles differ for candidate %d", workers, seqIdx[i])
				}
			}
		}
	}
	// Degenerate worker counts fall back to sequential.
	if idx, _ := ValidateParallel(context.Background(), dis, dis.Funcs, envs, 0, 0); len(idx) != len(seqIdx) {
		t.Error("workers=0 should behave like Validate")
	}
	// A nil context behaves like context.Background.
	if idx, _ := ValidateParallel(nil, dis, dis.Funcs, envs, 0, 4); len(idx) != len(seqIdx) {
		t.Error("nil context should behave like Background")
	}
}

func TestValidateParallelCancelled(t *testing.T) {
	mod := minic.GenLibrary(minic.GenConfig{Seed: 71, Name: "libpar", NumFuncs: 24, FragileFrac: 0.4})
	dis := buildFirmwareLib(t, mod)
	envs := []*minic.Env{
		{Args: []int64{minic.DataBase, 32, 5, 2}, Data: make([]byte, 64)},
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		idx, prof := ValidateParallel(ctx, dis, dis.Funcs, envs, 0, workers)
		if len(idx) != 0 || len(prof) != 0 {
			t.Errorf("workers=%d: cancelled validation still profiled %d candidates", workers, len(idx))
		}
	}
}
