package dynamic

import (
	"context"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/compiler"
	"repro/internal/disasm"
	"repro/internal/isa"
	"repro/internal/minic"
)

func TestMinkowskiProperties(t *testing.T) {
	// Metric axioms on random profiles: identity, symmetry, non-negativity.
	f := func(seedA, seedB [NumDynamic]int16) bool {
		var a, b Profile
		for i := range a {
			a[i] = float64(seedA[i])
			b[i] = float64(seedB[i])
		}
		dab := Minkowski(a, b, MinkowskiP)
		dba := Minkowski(b, a, MinkowskiP)
		daa := Minkowski(a, a, MinkowskiP)
		return daa == 0 && dab >= 0 && math.Abs(dab-dba) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMinkowskiSpecialCases(t *testing.T) {
	var a, b Profile
	a[0], b[0] = 0, 3
	a[1], b[1] = 0, 4
	// p=2 is Euclidean: sqrt(9+16)=5.
	if d := Minkowski(a, b, 2); math.Abs(d-5) > 1e-12 {
		t.Errorf("Euclidean = %v, want 5", d)
	}
	// p=1 is Manhattan: 7.
	if d := Minkowski(a, b, 1); math.Abs(d-7) > 1e-12 {
		t.Errorf("Manhattan = %v, want 7", d)
	}
	// p=3: (27+64)^(1/3).
	want := math.Pow(91, 1.0/3)
	if d := Minkowski(a, b, 3); math.Abs(d-want) > 1e-12 {
		t.Errorf("p=3 = %v, want %v", d, want)
	}
}

func TestSimilarityAveragesOverEnvs(t *testing.T) {
	var p0, p1 Profile
	p1[5] = 10
	f := []Profile{p0, p0}
	g := []Profile{p1, p0} // raw distance 10 in env 0, 0 in env 1
	if got := SimilarityRaw(f, g); math.Abs(got-5) > 1e-12 {
		t.Errorf("SimilarityRaw = %v, want 5", got)
	}
	// The scaled form averages log-space distances the same way.
	want := math.Log1p(10) / 2
	if got := Similarity(f, g); math.Abs(got-want) > 1e-12 {
		t.Errorf("Similarity = %v, want %v", got, want)
	}
	if !math.IsInf(Similarity(nil, nil), 1) {
		t.Error("empty profile sets should be infinitely dissimilar")
	}
	// Identical profile sets are perfectly similar under both metrics.
	if Similarity(f, f) != 0 || SimilarityRaw(f, f) != 0 {
		t.Error("self-similarity should be 0")
	}
}

func TestNamesMatchTableII(t *testing.T) {
	if len(Names) != 21 {
		t.Fatalf("%d dynamic feature names, want 21", len(Names))
	}
	if Names[0] != "binary_defined_fun_call_num" || Names[20] != "syscall_num" {
		t.Error("Table II ordering broken")
	}
}

// buildFirmwareLib compiles a module and returns its disassembly.
func buildFirmwareLib(t *testing.T, mod *minic.Module) *disasm.Disassembly {
	t.Helper()
	im, err := compiler.Compile(mod, isa.XARM64, compiler.O1)
	if err != nil {
		t.Fatal(err)
	}
	dis, err := disasm.Disassemble(im)
	if err != nil {
		t.Fatal(err)
	}
	return dis
}

func TestValidatePrunesCrashers(t *testing.T) {
	mod := &minic.Module{Name: "t", Funcs: []*minic.Func{
		minic.NewFunc("good", []string{"p", "n"},
			minic.Ret(minic.Call("checksum", minic.V("p"), minic.Call("min", minic.V("n"), minic.I(32))))),
		minic.NewFunc("crasher", []string{"p", "n"},
			minic.Ret(minic.Ld(minic.I(0), minic.I(0)))), // null deref
		minic.NewFunc("divzero", []string{"p", "n"},
			minic.Ret(minic.Div(minic.V("n"), minic.Sub(minic.V("n"), minic.V("n"))))),
	}}
	dis := buildFirmwareLib(t, mod)
	envs := []*minic.Env{
		{Args: []int64{minic.DataBase, 16, 1, 1}, Data: make([]byte, 32)},
		{Args: []int64{minic.DataBase, 8, 2, 2}, Data: []byte("abcdefgh")},
	}
	cands := dis.Funcs
	survivors, profiles, excluded := Validate(dis, cands, envs, Exec{})
	if len(survivors) != 1 {
		t.Fatalf("%d survivors, want 1 (only 'good')", len(survivors))
	}
	if dis.Funcs[survivors[0]].Name != "good" {
		t.Errorf("survivor is %s", dis.Funcs[survivors[0]].Name)
	}
	if len(profiles[survivors[0]]) != len(envs) {
		t.Errorf("survivor has %d profiles, want %d", len(profiles[survivors[0]]), len(envs))
	}
	// The pruned candidates are excluded with a reason, not dropped silently.
	if len(excluded) != 2 {
		t.Fatalf("%d exclusion reasons, want 2: %v", len(excluded), excluded)
	}
	for idx, reason := range excluded {
		if dis.Funcs[idx].Name == "good" {
			t.Error("'good' was excluded")
		}
		if reason == nil || !strings.Contains(reason.Error(), "no environment completed") {
			t.Errorf("candidate %d: uninformative exclusion reason %v", idx, reason)
		}
		if _, ok := minic.IsTrap(reason); !ok {
			t.Errorf("candidate %d: reason does not wrap the trap: %v", idx, reason)
		}
	}
}

func TestPartialProfilesSurvive(t *testing.T) {
	// A candidate that traps in one environment but completes another must
	// survive with a truncated profile for the trapping environment, and
	// must rank strictly below any fully-complete candidate.
	mod := &minic.Module{Name: "t", Funcs: []*minic.Func{
		minic.NewFunc("solid", []string{"p", "n"},
			minic.Ret(minic.Call("checksum", minic.V("p"), minic.Call("min", minic.V("n"), minic.I(16))))),
		minic.NewFunc("flaky", []string{"p", "n"},
			minic.When(minic.Lt(minic.V("n"), minic.I(0)),
				minic.Ret(minic.Ld(minic.I(0), minic.I(0)))), // null deref on negative n
			minic.Ret(minic.Call("checksum", minic.V("p"), minic.V("n")))),
	}}
	dis := buildFirmwareLib(t, mod)
	envs := []*minic.Env{
		{Args: []int64{minic.DataBase, -1, 0, 0}, Data: []byte("abcdefgh")}, // flaky traps here
		{Args: []int64{minic.DataBase, 8, 0, 0}, Data: []byte("abcdefgh")},
	}
	survivors, profiles, excluded := Validate(dis, dis.Funcs, envs, Exec{})
	if len(survivors) != 2 || len(excluded) != 0 {
		t.Fatalf("survivors=%v excluded=%v, want both candidates surviving", survivors, excluded)
	}
	var flakyIdx, solidIdx int
	for _, i := range survivors {
		if dis.Funcs[i].Name == "flaky" {
			flakyIdx = i
		} else {
			solidIdx = i
		}
	}
	eps := profiles[flakyIdx]
	if len(eps) != 2 {
		t.Fatalf("flaky has %d env profiles, want 2", len(eps))
	}
	if eps[0].Complete() || eps[0].Trap.Kind != minic.TrapOOB {
		t.Errorf("env 0 should carry an OOB trap, got %+v", eps[0].Trap)
	}
	if !eps[1].Complete() {
		t.Errorf("env 1 should be complete, got trap %v", eps[1].Trap)
	}
	if eps[0].Vec[idxInstrs] <= 0 || eps[0].Vec[idxInstrs] >= eps[1].Vec[idxInstrs] {
		t.Errorf("truncated trace should be non-empty and shorter: %v vs %v",
			eps[0].Vec[idxInstrs], eps[1].Vec[idxInstrs])
	}
	if got := Completion(eps); got != 1 {
		t.Errorf("Completion = %d, want 1", got)
	}
	// Completion dominates similarity: solid (2/2 envs) outranks flaky (1/2)
	// even against a reference that is flaky itself.
	refEps, err := ProfileFunc(nil, dis, dis.Funcs[flakyIdx], envs[1:], Exec{})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := CompleteVectors(refEps)
	if err != nil {
		t.Fatal(err)
	}
	ranked := Rank(ref, profiles)
	if ranked[0].Index != solidIdx || ranked[0].Completed != 2 {
		t.Errorf("top ranked = %+v, want fully-complete candidate %d first", ranked[0], solidIdx)
	}
	if ranked[1].Index != flakyIdx || ranked[1].Completed != 1 || ranked[1].Envs != 2 {
		t.Errorf("partial candidate ranked %+v", ranked[1])
	}
}

func TestSimilarityEnvWeighting(t *testing.T) {
	var ref0, ref1 Profile
	ref0[idxInstrs], ref1[idxInstrs] = 100, 100
	ref := []Profile{ref0, ref1}

	// One identical complete env, one trapped env that covered half the
	// reference trace: the trapped distance carries weight 0.5.
	var half Profile
	half[idxInstrs] = 50
	cand := []EnvProfile{
		{Vec: ref0},
		{Vec: half, Trap: &minic.TrapError{Kind: minic.TrapOOB}},
	}
	d1 := MinkowskiScaled(ref1, half, MinkowskiP)
	wantSim := (0 + 0.5*d1) / 1.5
	sim, completed := SimilarityEnv(ref, cand)
	if completed != 1 {
		t.Errorf("completed = %d, want 1", completed)
	}
	if math.Abs(sim-wantSim) > 1e-12 {
		t.Errorf("sim = %v, want %v", sim, wantSim)
	}
	// All environments trapped instantly: zero weight, infinite distance.
	dead := []EnvProfile{{Trap: &minic.TrapError{Kind: minic.TrapDecode}}}
	if sim, completed := SimilarityEnv(ref, dead); !math.IsInf(sim, 1) || completed != 0 {
		t.Errorf("dead candidate: sim=%v completed=%d", sim, completed)
	}
	// A step-limit trap ran at least as long as the reference: full weight.
	var over Profile
	over[idxInstrs] = 250
	long := []EnvProfile{{Vec: over, Trap: &minic.TrapError{Kind: minic.TrapStepLimit}}}
	if f := completionFrac(ref0, over); f != 1 {
		t.Errorf("over-long truncated trace frac = %v, want clamp to 1", f)
	}
	if sim, _ := SimilarityEnv(ref[:1], long); math.IsInf(sim, 1) {
		t.Error("step-limit-trapped env should still contribute signal")
	}
	if sim, completed := SimilarityEnv(nil, cand); !math.IsInf(sim, 1) || completed != 0 {
		t.Errorf("empty reference: sim=%v completed=%d", sim, completed)
	}
}

func TestCompleteVectorsRejectsTraps(t *testing.T) {
	eps := []EnvProfile{
		{},
		{Trap: &minic.TrapError{Kind: minic.TrapDivZero}},
	}
	if _, err := CompleteVectors(eps); err == nil || !strings.Contains(err.Error(), "environment 1") {
		t.Errorf("CompleteVectors error = %v, want env index + trap", err)
	}
	vs, err := CompleteVectors(eps[:1])
	if err != nil || len(vs) != 1 {
		t.Errorf("clean profiles rejected: %v", err)
	}
}

func TestRankFindsTrueMatch(t *testing.T) {
	// The same source function at a different optimization level must rank
	// closest to the reference among decoys.
	src := minic.NewFunc("target", []string{"p", "n"},
		minic.Set("s", minic.I(0)),
		minic.Loop(minic.Gt(minic.V("n"), minic.I(0)),
			minic.Set("s", minic.Add(minic.V("s"), minic.Ld(minic.V("p"), minic.V("n")))),
			minic.Set("n", minic.Sub(minic.V("n"), minic.I(1)))),
		minic.Ret(minic.V("s")))
	decoy1 := minic.NewFunc("decoy1", []string{"p", "n"},
		minic.Ret(minic.Call("checksum", minic.V("p"), minic.Call("min", minic.V("n"), minic.I(16)))))
	decoy2 := minic.NewFunc("decoy2", []string{"p", "n"},
		minic.Set("x", minic.Mul(minic.V("n"), minic.V("n"))),
		minic.Ret(minic.Xor(minic.V("x"), minic.I(255))))

	refMod := &minic.Module{Name: "ref", Funcs: []*minic.Func{src}}
	refIm, err := compiler.Compile(refMod, isa.XARM64, compiler.O0)
	if err != nil {
		t.Fatal(err)
	}
	refDis, err := disasm.Disassemble(refIm)
	if err != nil {
		t.Fatal(err)
	}
	refFn, _ := refDis.Lookup("target")

	tgtDis := buildFirmwareLib(t, &minic.Module{Name: "fw", Funcs: []*minic.Func{decoy1, src, decoy2}})

	envs := []*minic.Env{
		{Args: []int64{minic.DataBase, 24, 0, 0}, Data: []byte("abcdefghijklmnopqrstuvwxyz")},
		{Args: []int64{minic.DataBase, 8, 0, 0}, Data: []byte("12345678")},
	}
	refEps, err := ProfileFunc(nil, refDis, refFn, envs, Exec{})
	if err != nil {
		t.Fatal(err)
	}
	refProfiles, err := CompleteVectors(refEps)
	if err != nil {
		t.Fatal(err)
	}
	survivors, profiles, _ := Validate(tgtDis, tgtDis.Funcs, envs, Exec{})
	if len(survivors) != 3 {
		t.Fatalf("%d survivors, want 3", len(survivors))
	}
	ranked := Rank(refProfiles, profiles)
	if tgtDis.Funcs[ranked[0].Index].Name != "target" {
		t.Errorf("top ranked is %s (sim %v), want target",
			tgtDis.Funcs[ranked[0].Index].Name, ranked[0].Sim)
	}
	// All candidates here complete every environment, so within the
	// completion tier distances are ascending (the paper's rule).
	for i := 1; i < len(ranked); i++ {
		if ranked[i].Completed == ranked[i-1].Completed && ranked[i].Sim < ranked[i-1].Sim {
			t.Error("ranking not sorted ascending")
		}
		if ranked[i].Completed > ranked[i-1].Completed {
			t.Error("completion must dominate the sort")
		}
	}
}

func TestValidateParallelMatchesSequential(t *testing.T) {
	mod := minic.GenLibrary(minic.GenConfig{Seed: 71, Name: "libpar", NumFuncs: 24, FragileFrac: 0.4})
	dis := buildFirmwareLib(t, mod)
	envs := []*minic.Env{
		{Args: []int64{minic.DataBase, 32, 5, 2}, Data: make([]byte, 64)},
		{Args: []int64{minic.DataBase, 16, -3, 9}, Data: []byte("parallel-validation-data")},
	}
	seqIdx, seqProf, seqExcl := Validate(dis, dis.Funcs, envs, Exec{})
	for _, workers := range []int{2, 4, 100} {
		parIdx, parProf, parExcl := ValidateParallel(context.Background(), dis, dis.Funcs, envs, Exec{}, workers)
		if len(parIdx) != len(seqIdx) {
			t.Fatalf("workers=%d: %d survivors vs sequential %d", workers, len(parIdx), len(seqIdx))
		}
		for i := range seqIdx {
			if parIdx[i] != seqIdx[i] {
				t.Fatalf("workers=%d: survivor order differs at %d", workers, i)
			}
			for e := range seqProf[seqIdx[i]] {
				if !sameEnvProfile(parProf[parIdx[i]][e], seqProf[seqIdx[i]][e]) {
					t.Fatalf("workers=%d: profiles differ for candidate %d", workers, seqIdx[i])
				}
			}
		}
		if len(parExcl) != len(seqExcl) {
			t.Fatalf("workers=%d: %d exclusions vs sequential %d", workers, len(parExcl), len(seqExcl))
		}
		for idx, reason := range seqExcl {
			pr, ok := parExcl[idx]
			if !ok || pr.Error() != reason.Error() {
				t.Fatalf("workers=%d: exclusion reason differs for %d: %v vs %v", workers, idx, pr, reason)
			}
		}
	}
	// Degenerate worker counts fall back to sequential.
	if idx, _, _ := ValidateParallel(context.Background(), dis, dis.Funcs, envs, Exec{}, 0); len(idx) != len(seqIdx) {
		t.Error("workers=0 should behave like Validate")
	}
	// A nil context behaves like context.Background.
	if idx, _, _ := ValidateParallel(nil, dis, dis.Funcs, envs, Exec{}, 4); len(idx) != len(seqIdx) {
		t.Error("nil context should behave like Background")
	}
}

// sameEnvProfile compares env profiles by value: identical feature vectors
// and the same trap kind (trap pointers differ across runs).
func sameEnvProfile(a, b EnvProfile) bool {
	if a.Vec != b.Vec {
		return false
	}
	if (a.Trap == nil) != (b.Trap == nil) {
		return false
	}
	return a.Trap == nil || a.Trap.Kind == b.Trap.Kind
}

func TestValidateParallelPanicRecovery(t *testing.T) {
	mod := &minic.Module{Name: "t", Funcs: []*minic.Func{
		minic.NewFunc("ok", []string{"p", "n"}, minic.Ret(minic.V("n"))),
	}}
	dis := buildFirmwareLib(t, mod)
	envs := []*minic.Env{{Args: []int64{minic.DataBase, 4, 0, 0}, Data: []byte("abcd")}}
	// A nil candidate makes the emulator panic; the pool must survive and
	// record the panic as that candidate's exclusion reason.
	cands := []*disasm.Function{dis.Funcs[0], nil}
	for _, workers := range []int{1, 4} {
		survivors, _, excluded := ValidateParallel(context.Background(), dis, cands, envs, Exec{}, workers)
		if len(survivors) != 1 || survivors[0] != 0 {
			t.Fatalf("workers=%d: survivors = %v, want [0]", workers, survivors)
		}
		reason := excluded[1]
		if reason == nil || !strings.Contains(reason.Error(), "panic") {
			t.Errorf("workers=%d: panic not recorded as exclusion: %v", workers, reason)
		}
	}
}

func TestValidateParallelCancelled(t *testing.T) {
	mod := minic.GenLibrary(minic.GenConfig{Seed: 71, Name: "libpar", NumFuncs: 24, FragileFrac: 0.4})
	dis := buildFirmwareLib(t, mod)
	envs := []*minic.Env{
		{Args: []int64{minic.DataBase, 32, 5, 2}, Data: make([]byte, 64)},
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		idx, prof, excl := ValidateParallel(ctx, dis, dis.Funcs, envs, Exec{}, workers)
		if len(idx) != 0 || len(prof) != 0 {
			t.Errorf("workers=%d: cancelled validation still profiled %d candidates", workers, len(idx))
		}
		if len(excl) != 0 {
			t.Errorf("workers=%d: cancellation recorded as exclusions: %v", workers, excl)
		}
	}
}
