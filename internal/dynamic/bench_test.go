package dynamic

import (
	"math/rand"
	"testing"
)

func BenchmarkSimilarity(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	mk := func() []Profile {
		ps := make([]Profile, 4)
		for i := range ps {
			for j := range ps[i] {
				ps[i][j] = float64(rng.Intn(1000))
			}
		}
		return ps
	}
	f, g := mk(), mk()
	b.Run("scaled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = Similarity(f, g)
		}
	})
	b.Run("raw", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = SimilarityRaw(f, g)
		}
	})
}
