// Package dynamic implements PATCHECKO's second stage: candidate-function
// validation and similarity ranking from dynamic features.
//
// Following §III-B/III-C of the paper: candidates surviving the static
// stage are executed under the CVE function's execution environments and
// profiled into 21-dimensional dynamic feature vectors (Table II);
// similarity to the reference is the Minkowski distance with p=3 averaged
// over the K environments (equations (1) and (2)). Smaller is more similar.
//
// # Failure model
//
// The paper discards a candidate outright when it "triggers a system
// exception". Real firmware functions trap constantly under fixed execution
// environments, so this implementation degrades instead of discarding
// blindly: a trapping execution yields a truncated-but-usable EnvProfile —
// the Table II trace up to the trap, tagged with the trap — and ranking
// weights each environment by how much of it completed. A candidate is
// excluded only when no environment completes, and exclusions carry their
// reason instead of vanishing silently. Candidates that complete every
// environment are ranked exactly as the paper's rule would rank them:
// completion is the primary sort key, so partially-profiled candidates can
// never displace fully-validated ones.
package dynamic

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/disasm"
	"repro/internal/emu"
	"repro/internal/minic"
	"repro/internal/obs"
)

// NumDynamic is the dynamic feature vector width (Table II).
const NumDynamic = 21

// Names lists the Table II feature names in vector order.
var Names = [NumDynamic]string{
	"binary_defined_fun_call_num",
	"min_stack_depth", "max_stack_depth", "avg_stack_depth", "std_stack_depth",
	"instruction_num", "unique_instruction_num",
	"call_instruction_num", "arithmetic_instruction_num", "branch_instruction_num",
	"load_instruction_num", "store_instruction_num",
	"max_branch_frequency", "max_arith_frequency",
	"mem_heap_access", "mem_stack_access", "mem_lib_access",
	"mem_anon_access", "mem_others_access",
	"library_call_num", "syscall_num",
}

// idxInstrs is the vector slot of instruction_num (F6), the feature the
// completion weighting measures trace length with.
const idxInstrs = 5

// Profile is one execution's dynamic feature vector.
type Profile [NumDynamic]float64

// MinkowskiP is the paper's distance exponent ("In our case, we set p=3").
const MinkowskiP = 3.0

// Minkowski computes the Minkowski distance of order p between raw
// profiles (equation (1) verbatim).
func Minkowski(a, b Profile, p float64) float64 {
	var sum float64
	for i := range a {
		sum += math.Pow(math.Abs(a[i]-b[i]), p)
	}
	return math.Pow(sum, 1/p)
}

// MinkowskiScaled applies the distance to log-scaled features. The paper
// notes that "the instruction execution traces of these functions may
// differ drastically for the same input" when compilation flags differ and
// that the analysis must therefore compare semantic rather than raw
// behaviour; log scaling makes count features compare by ratio, which is
// what keeps the same source function recognizable across optimization
// levels (an O0 build executes several times more instructions than O2).
func MinkowskiScaled(a, b Profile, p float64) float64 {
	var sum float64
	for i := range a {
		sum += math.Pow(math.Abs(slog(a[i])-slog(b[i])), p)
	}
	return math.Pow(sum, 1/p)
}

func slog(x float64) float64 {
	if x < 0 {
		return -math.Log1p(-x)
	}
	return math.Log1p(x)
}

// Similarity is equation (2): the (scaled) Minkowski distance averaged
// over the K execution environments. Both profile sets must have equal
// length K. Smaller is more similar; identical traces score exactly 0.
func Similarity(f, g []Profile) float64 {
	return similarity(f, g, MinkowskiScaled)
}

// SimilarityRaw averages the unscaled distance — the paper's literal
// equation (2). The ablation benchmarks compare it against the scaled form.
func SimilarityRaw(f, g []Profile) float64 {
	return similarity(f, g, Minkowski)
}

func similarity(f, g []Profile, dist func(Profile, Profile, float64) float64) float64 {
	k := len(f)
	if len(g) < k {
		k = len(g)
	}
	if k == 0 {
		return math.Inf(1)
	}
	var sum float64
	for i := 0; i < k; i++ {
		sum += dist(f[i], g[i], MinkowskiP)
	}
	return sum / float64(k)
}

// DefaultStepLimit bounds candidate executions.
const DefaultStepLimit = 1 << 20

// Exec bundles the per-execution bounds threaded from the analyzer down to
// every emulator run.
type Exec struct {
	// Steps is the instruction budget per execution (DefaultStepLimit
	// if <= 0); exhaustion surfaces as minic.TrapStepLimit.
	Steps int64
	// Budget is the wall-clock watchdog per execution (0 = none);
	// expiry surfaces as minic.TrapBudget. Unlike the step limit the
	// watchdog is not deterministic in the inputs, so scans that must be
	// byte-reproducible leave it off and rely on Steps.
	Budget time.Duration
	// Obs receives execution and validation counters; nil (the default)
	// is the no-op sink.
	Obs *obs.Metrics
}

// Steps builds an Exec with only an instruction budget — the common case
// in tests and deterministic scans.
func Steps(limit int64) Exec { return Exec{Steps: limit} }

// EnvProfile is one environment's execution outcome: the Table II feature
// vector of the trace — complete, or truncated at the fault — plus the trap
// that ended it, if any.
type EnvProfile struct {
	Vec  Profile
	Trap *minic.TrapError // nil when the execution ran to completion
}

// Complete reports whether the environment executed cleanly.
func (e EnvProfile) Complete() bool { return e.Trap == nil }

// Vectors flattens env profiles to plain feature vectors, truncated traces
// included, preserving environment order.
func Vectors(eps []EnvProfile) []Profile {
	out := make([]Profile, len(eps))
	for i, ep := range eps {
		out[i] = ep.Vec
	}
	return out
}

// CompleteVectors flattens env profiles that all ran to completion. It
// fails with the first trap otherwise — the contract for reference
// executions, which must run clean under their own environments.
func CompleteVectors(eps []EnvProfile) ([]Profile, error) {
	for i, ep := range eps {
		if ep.Trap != nil {
			return nil, fmt.Errorf("environment %d: %w", i, ep.Trap)
		}
	}
	return Vectors(eps), nil
}

// Completion counts the environments that ran to completion.
func Completion(eps []EnvProfile) int {
	n := 0
	for _, ep := range eps {
		if ep.Complete() {
			n++
		}
	}
	return n
}

// ProfileFunc executes fn under every environment, returning one profile
// per environment. A trapping environment yields a truncated profile tagged
// with its trap instead of aborting the whole candidate. The returned error
// is non-nil only when the context ended the run (cancellation or an outer
// deadline); the profiles gathered so far accompany it.
func ProfileFunc(ctx context.Context, dis *disasm.Disassembly, fn *disasm.Function, envs []*minic.Env, ex Exec) ([]EnvProfile, error) {
	if ex.Steps <= 0 {
		ex.Steps = DefaultStepLimit
	}
	out := make([]EnvProfile, 0, len(envs))
	for _, env := range envs {
		if ctx != nil && ctx.Err() != nil {
			return out, ctx.Err()
		}
		res, err := executeOne(ctx, dis, fn, env, ex)
		if err != nil {
			if tr, ok := minic.IsTrap(err); ok {
				ex.Obs.Add(obs.CtrEnvsExecuted, 1)
				ex.Obs.Add(obs.CtrEnvsTrapped, 1)
				ep := EnvProfile{Trap: tr}
				if res != nil && res.Trace != nil {
					ep.Vec = Profile(res.Trace.Vector())
				}
				out = append(out, ep)
				continue
			}
			return out, err // cancellation from an enclosing context
		}
		ex.Obs.Add(obs.CtrEnvsExecuted, 1)
		out = append(out, EnvProfile{Vec: Profile(res.Trace.Vector())})
	}
	return out, nil
}

// executeOne runs a single emulator execution under the Exec bounds,
// deriving the per-execution watchdog deadline from the budget.
func executeOne(ctx context.Context, dis *disasm.Disassembly, fn *disasm.Function, env *minic.Env, ex Exec) (*emu.Result, error) {
	if ex.Budget <= 0 {
		return emu.ExecuteObserved(ctx, dis, fn, env.Clone(), ex.Steps, ex.Obs)
	}
	if ctx == nil {
		//patchecko:allow ctxflow nil-ctx API tolerance: Background is the documented fallback root
		ctx = context.Background()
	}
	ectx, cancel := context.WithTimeout(ctx, ex.Budget)
	defer cancel()
	return emu.ExecuteObserved(ectx, dis, fn, env.Clone(), ex.Steps, ex.Obs)
}

// SimilarityEnv is the fault-tolerant form of equation (2): each
// environment's (scaled) distance is weighted by its completion. A
// completed environment weighs 1; a trapped one weighs the fraction of the
// reference trace it covered before faulting (by instruction count), so a
// candidate that died immediately contributes almost nothing while one that
// trapped on its last loop iteration still carries most of its signal. It
// also returns how many environments completed — the primary ranking key.
func SimilarityEnv(ref []Profile, cand []EnvProfile) (sim float64, completed int) {
	k := len(ref)
	if len(cand) < k {
		k = len(cand)
	}
	if k == 0 {
		return math.Inf(1), 0
	}
	var sum, wsum float64
	for i := 0; i < k; i++ {
		d := MinkowskiScaled(ref[i], cand[i].Vec, MinkowskiP)
		w := 1.0
		if cand[i].Complete() {
			completed++
		} else {
			w = completionFrac(ref[i], cand[i].Vec)
		}
		sum += w * d
		wsum += w
	}
	if wsum == 0 {
		return math.Inf(1), completed
	}
	return sum / wsum, completed
}

// completionFrac estimates how much of the reference execution a truncated
// trace covered, by instruction count, clamped to [0, 1].
func completionFrac(ref, cand Profile) float64 {
	refInstr := ref[idxInstrs]
	if refInstr <= 0 {
		return 0
	}
	f := cand[idxInstrs] / refInstr
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// Validate executes every candidate under every environment. A candidate
// survives when at least one environment runs to completion; its profiles
// keep the truncated traces of any trapping environments. Candidates with
// no completed environment are excluded, and — unlike the paper's silent
// discard — the exclusion reason is returned per candidate index. This is
// the fault-tolerant form of the paper's "candidate functions execution
// validation" step.
func Validate(dis *disasm.Disassembly, cands []*disasm.Function, envs []*minic.Env, ex Exec) ([]int, map[int][]EnvProfile, map[int]error) {
	return ValidateParallel(nil, dis, cands, envs, ex, 1)
}

// ValidateParallel is Validate with a bounded worker pool — the paper's
// stated future work ("parallelizing the candidate function execution in
// each environment to further reduce the dynamic analysis processing
// time"). Results are identical to Validate: candidates are independent
// and the emulator is deterministic, so only wall-clock changes. A panic
// while profiling a candidate is recovered and recorded as that candidate's
// exclusion reason rather than crashing the pool. The context cancels
// between candidate executions; on cancellation the partial result set is
// returned and the caller is expected to check ctx.Err and discard it.
func ValidateParallel(ctx context.Context, dis *disasm.Disassembly, cands []*disasm.Function, envs []*minic.Env, ex Exec, workers int) ([]int, map[int][]EnvProfile, map[int]error) {
	if ctx == nil {
		//patchecko:allow ctxflow nil-ctx API tolerance: Background is the documented fallback root
		ctx = context.Background()
	}
	if workers > len(cands) {
		workers = len(cands)
	}
	results := make([]ProfileOutcome, len(cands))
	if workers <= 1 || len(cands) <= 1 {
		for i, fn := range cands {
			if ctx.Err() != nil {
				break
			}
			results[i] = ProfileCandidate(ctx, dis, fn, envs, ex)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1) - 1)
					if i >= len(cands) || ctx.Err() != nil {
						return
					}
					results[i] = ProfileCandidate(ctx, dis, cands[i], envs, ex)
				}
			}()
		}
		wg.Wait()
	}
	return ClassifyOutcomes(results, ex.Obs)
}

// ClassifyOutcomes reduces per-candidate outcomes into the validation
// result exactly as Validate does: errors and fully-trapping candidates are
// excluded with a reason, the rest survive with their profiles. Counters
// are recorded per outcome, so a caller that shares profiling work across
// duplicate candidates (the engine's dedup path) still reports the same
// validation totals as an unshared run.
func ClassifyOutcomes(results []ProfileOutcome, ob *obs.Metrics) ([]int, map[int][]EnvProfile, map[int]error) {
	var survivors []int
	profiles := make(map[int][]EnvProfile)
	excluded := make(map[int]error)
	for i, r := range results {
		switch {
		case !r.Ran:
			// Skipped by cancellation; the caller discards the set.
		case r.Err != nil:
			excluded[i] = r.Err
			ob.Add(obs.CtrCandidatesExcluded, 1)
			if r.Panicked {
				ob.Add(obs.CtrExcludedPanic, 1)
			} else {
				ob.Add(obs.CtrExcludedError, 1)
			}
		case Completion(r.Profiles) == 0:
			excluded[i] = exclusionReason(r.Profiles)
			ob.Add(obs.CtrCandidatesExcluded, 1)
			ob.Add(obs.CtrExcludedNoEnv, 1)
		default:
			survivors = append(survivors, i)
			profiles[i] = r.Profiles
			ob.Add(obs.CtrCandidatesValidated, 1)
		}
	}
	return survivors, profiles, excluded
}

// ProfileOutcome is one candidate's profiling outcome. Ran is false only
// when the context ended the run before (or while) the candidate executed;
// such outcomes carry no information and must not be cached or classified
// as exclusions.
type ProfileOutcome struct {
	Profiles []EnvProfile
	Err      error
	Ran      bool
	Panicked bool
}

// ProfileCandidate profiles one candidate, converting panics and
// cancellation into a recorded outcome so one hostile candidate cannot
// take down the pool.
func ProfileCandidate(ctx context.Context, dis *disasm.Disassembly, fn *disasm.Function, envs []*minic.Env, ex Exec) (r ProfileOutcome) {
	defer func() {
		if rec := recover(); rec != nil {
			r = ProfileOutcome{Err: fmt.Errorf("dynamic: panic while profiling candidate: %v", rec), Ran: true, Panicked: true}
		}
	}()
	eps, err := ProfileFunc(ctx, dis, fn, envs, ex)
	if err != nil {
		if ctx != nil && ctx.Err() != nil {
			return ProfileOutcome{} // context ended the run mid-candidate
		}
		return ProfileOutcome{Err: err, Ran: true} // emulator-level failure: exclude with reason
	}
	return ProfileOutcome{Profiles: eps, Ran: true}
}

// exclusionReason summarizes why a fully-trapping candidate was excluded:
// every environment faulted; the first environment's trap leads the message
// deterministically.
func exclusionReason(eps []EnvProfile) error {
	for i, ep := range eps {
		if ep.Trap != nil {
			return fmt.Errorf("no environment completed (%d total): env %d: %w", len(eps), i, ep.Trap)
		}
	}
	return fmt.Errorf("no environments to execute")
}

// Ranked is one candidate with its similarity distance to the reference.
type Ranked struct {
	Index int
	Sim   float64 // completion-weighted Minkowski distance; smaller = closer
	// Completed and Envs report the candidate's validation coverage:
	// environments that ran to completion out of those executed.
	Completed int
	Envs      int
}

// Rank orders candidates for the (function, similarity distance) ranking of
// the paper's Tables IV/V. Completion dominates: candidates that completed
// more environments always rank above candidates that completed fewer, so
// among fully-validated candidates the order is exactly the paper's
// ascending-distance rule, and partially-profiled candidates follow without
// ever displacing them.
func Rank(ref []Profile, cands map[int][]EnvProfile) []Ranked {
	out := make([]Ranked, 0, len(cands))
	for idx, eps := range cands {
		sim, _ := SimilarityEnv(ref, eps)
		// Completion is counted over the candidate's own environments, not
		// the (possibly shorter) comparison window the distance uses.
		//patchecko:allow determinism sortRanked below imposes a total order (ties by index)
		out = append(out, Ranked{Index: idx, Sim: sim, Completed: Completion(eps), Envs: len(eps)})
	}
	sortRanked(out)
	return out
}

func sortRanked(rs []Ranked) {
	// Insertion sort: candidate lists are short after validation, and a
	// deterministic stable order (ties by index) matters for the tables.
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && less(rs[j], rs[j-1]); j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
}

func less(a, b Ranked) bool {
	if a.Completed != b.Completed {
		return a.Completed > b.Completed
	}
	if a.Sim != b.Sim {
		return a.Sim < b.Sim
	}
	return a.Index < b.Index
}
