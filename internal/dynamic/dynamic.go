// Package dynamic implements PATCHECKO's second stage: candidate-function
// validation and similarity ranking from dynamic features.
//
// Following §III-B/III-C of the paper: candidates surviving the static
// stage are executed under the CVE function's execution environments;
// candidates that trap are discarded ("if the candidate f triggers a system
// exception, we will remove [it] from the candidate set"); the survivors
// are profiled into 21-dimensional dynamic feature vectors (Table II), and
// similarity to the reference is the Minkowski distance with p=3 averaged
// over the K environments (equations (1) and (2)). Smaller is more similar.
package dynamic

import (
	"context"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/disasm"
	"repro/internal/emu"
	"repro/internal/minic"
)

// NumDynamic is the dynamic feature vector width (Table II).
const NumDynamic = 21

// Names lists the Table II feature names in vector order.
var Names = [NumDynamic]string{
	"binary_defined_fun_call_num",
	"min_stack_depth", "max_stack_depth", "avg_stack_depth", "std_stack_depth",
	"instruction_num", "unique_instruction_num",
	"call_instruction_num", "arithmetic_instruction_num", "branch_instruction_num",
	"load_instruction_num", "store_instruction_num",
	"max_branch_frequency", "max_arith_frequency",
	"mem_heap_access", "mem_stack_access", "mem_lib_access",
	"mem_anon_access", "mem_others_access",
	"library_call_num", "syscall_num",
}

// Profile is one execution's dynamic feature vector.
type Profile [NumDynamic]float64

// MinkowskiP is the paper's distance exponent ("In our case, we set p=3").
const MinkowskiP = 3.0

// Minkowski computes the Minkowski distance of order p between raw
// profiles (equation (1) verbatim).
func Minkowski(a, b Profile, p float64) float64 {
	var sum float64
	for i := range a {
		sum += math.Pow(math.Abs(a[i]-b[i]), p)
	}
	return math.Pow(sum, 1/p)
}

// MinkowskiScaled applies the distance to log-scaled features. The paper
// notes that "the instruction execution traces of these functions may
// differ drastically for the same input" when compilation flags differ and
// that the analysis must therefore compare semantic rather than raw
// behaviour; log scaling makes count features compare by ratio, which is
// what keeps the same source function recognizable across optimization
// levels (an O0 build executes several times more instructions than O2).
func MinkowskiScaled(a, b Profile, p float64) float64 {
	var sum float64
	for i := range a {
		sum += math.Pow(math.Abs(slog(a[i])-slog(b[i])), p)
	}
	return math.Pow(sum, 1/p)
}

func slog(x float64) float64 {
	if x < 0 {
		return -math.Log1p(-x)
	}
	return math.Log1p(x)
}

// Similarity is equation (2): the (scaled) Minkowski distance averaged
// over the K execution environments. Both profile sets must have equal
// length K. Smaller is more similar; identical traces score exactly 0.
func Similarity(f, g []Profile) float64 {
	return similarity(f, g, MinkowskiScaled)
}

// SimilarityRaw averages the unscaled distance — the paper's literal
// equation (2). The ablation benchmarks compare it against the scaled form.
func SimilarityRaw(f, g []Profile) float64 {
	return similarity(f, g, Minkowski)
}

func similarity(f, g []Profile, dist func(Profile, Profile, float64) float64) float64 {
	k := len(f)
	if len(g) < k {
		k = len(g)
	}
	if k == 0 {
		return math.Inf(1)
	}
	var sum float64
	for i := 0; i < k; i++ {
		sum += dist(f[i], g[i], MinkowskiP)
	}
	return sum / float64(k)
}

// DefaultStepLimit bounds candidate executions.
const DefaultStepLimit = 1 << 20

// ProfileFunc executes fn under every environment, returning one profile
// per environment. Any trap aborts with the error.
func ProfileFunc(dis *disasm.Disassembly, fn *disasm.Function, envs []*minic.Env, limit int64) ([]Profile, error) {
	if limit <= 0 {
		limit = DefaultStepLimit
	}
	out := make([]Profile, 0, len(envs))
	for _, env := range envs {
		res, err := emu.Execute(dis, fn, env.Clone(), limit)
		if err != nil {
			return nil, err
		}
		out = append(out, Profile(res.Trace.Vector()))
	}
	return out, nil
}

// Validate executes every candidate under every environment and returns
// the indexes (into cands) of those that complete all executions cleanly,
// together with their profiles. This is the paper's
// "candidate functions execution validation" step.
func Validate(dis *disasm.Disassembly, cands []*disasm.Function, envs []*minic.Env, limit int64) ([]int, map[int][]Profile) {
	var survivors []int
	profiles := make(map[int][]Profile)
	for i, fn := range cands {
		ps, err := ProfileFunc(dis, fn, envs, limit)
		if err != nil {
			continue
		}
		survivors = append(survivors, i)
		profiles[i] = ps
	}
	return survivors, profiles
}

// ValidateParallel is Validate with a bounded worker pool — the paper's
// stated future work ("parallelizing the candidate function execution in
// each environment to further reduce the dynamic analysis processing
// time"). Results are identical to Validate: candidates are independent
// and the emulator is deterministic, so only wall-clock changes. The
// context cancels between candidate executions; on cancellation the
// partial result set is returned and the caller is expected to check
// ctx.Err and discard it.
func ValidateParallel(ctx context.Context, dis *disasm.Disassembly, cands []*disasm.Function, envs []*minic.Env, limit int64, workers int) ([]int, map[int][]Profile) {
	if ctx == nil {
		ctx = context.Background()
	}
	if workers > len(cands) {
		workers = len(cands)
	}
	if workers <= 1 || len(cands) <= 1 {
		var survivors []int
		profiles := make(map[int][]Profile)
		for i, fn := range cands {
			if ctx.Err() != nil {
				break
			}
			ps, err := ProfileFunc(dis, fn, envs, limit)
			if err != nil {
				continue
			}
			survivors = append(survivors, i)
			profiles[i] = ps
		}
		return survivors, profiles
	}
	type result struct {
		ps []Profile
		ok bool
	}
	results := make([]result, len(cands))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= len(cands) || ctx.Err() != nil {
					return
				}
				ps, err := ProfileFunc(dis, cands[i], envs, limit)
				results[i] = result{ps: ps, ok: err == nil}
			}
		}()
	}
	wg.Wait()

	var survivors []int
	profiles := make(map[int][]Profile)
	for i, r := range results {
		if r.ok {
			survivors = append(survivors, i)
			profiles[i] = r.ps
		}
	}
	return survivors, profiles
}

// Ranked is one candidate with its similarity distance to the reference.
type Ranked struct {
	Index int
	Sim   float64
}

// Rank orders candidates by ascending similarity distance to the reference
// profiles (most similar first), producing the (function, similarity
// distance) ranking of the paper's Tables IV/V.
func Rank(ref []Profile, cands map[int][]Profile) []Ranked {
	out := make([]Ranked, 0, len(cands))
	for idx, ps := range cands {
		out = append(out, Ranked{Index: idx, Sim: Similarity(ref, ps)})
	}
	sortRanked(out)
	return out
}

func sortRanked(rs []Ranked) {
	// Insertion sort: candidate lists are short after validation, and a
	// deterministic stable order (ties by index) matters for the tables.
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && less(rs[j], rs[j-1]); j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
}

func less(a, b Ranked) bool {
	if a.Sim != b.Sim {
		return a.Sim < b.Sim
	}
	return a.Index < b.Index
}
