package nn

import (
	"encoding/json"
	"fmt"
)

// serialized is the on-disk JSON shape of a network.
type serialized struct {
	Widths []int       `json:"widths"`
	W      [][]float64 `json:"w"`
	B      [][]float64 `json:"b"`
}

// MarshalJSON serializes the network weights.
func (n *Network) MarshalJSON() ([]byte, error) {
	s := serialized{}
	s.Widths = append(s.Widths, n.Layers[0].In)
	for _, l := range n.Layers {
		s.Widths = append(s.Widths, l.Out)
		s.W = append(s.W, l.W)
		s.B = append(s.B, l.B)
	}
	return json.Marshal(s)
}

// UnmarshalJSON restores a network from MarshalJSON output.
func (n *Network) UnmarshalJSON(b []byte) error {
	var s serialized
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	if len(s.Widths) < 2 || len(s.W) != len(s.Widths)-1 || len(s.B) != len(s.W) {
		return fmt.Errorf("nn: malformed serialized network")
	}
	restored, err := NewNetwork(s.Widths, 0)
	if err != nil {
		return err
	}
	for i, l := range restored.Layers {
		if len(s.W[i]) != len(l.W) || len(s.B[i]) != len(l.B) {
			return fmt.Errorf("nn: layer %d weight shape mismatch", i)
		}
		copy(l.W, s.W[i])
		copy(l.B, s.B[i])
	}
	*n = *restored
	return nil
}
