// Split-input inference: the static stage's hot path.
//
// PATCHECKO's similarity model scores a PAIR input [a;b] — two halves that
// the scan engine recombines combinatorially (every CVE reference against
// every firmware function, in both symmetrized orders). For the first dense
// layer the algebra factors per half:
//
//	y1 = W·[a;b] + bias = (bias + W[:, :48]·a) + (W[:, 48:]·b)
//
// so each half's contribution can be computed once and reused across every
// pair it appears in. The functions here fix ONE canonical floating-point
// accumulation order for that factored form — each half is accumulated
// sequentially on its own (the first-position half starting from the bias,
// the second-position half from zero) and the two partial sums are added —
// and provide two implementations of it:
//
//   - HalfApply + InferLogitSplit: the plain reference implementation,
//     allocating as it goes. This is what Model.Similarity uses.
//   - HalfApplyInto + Scratch + InferLogitSplitScratch: the engine
//     implementation — allocation-free with caller-owned buffers, inner
//     loops unrolled two output rows at a time. Unrolling across rows does
//     not touch any single accumulator's operation sequence, so the two
//     implementations produce bit-identical results; the batched scan path
//     is byte-for-byte the scalar path, only faster.
//
// Note the split order is NOT bit-identical to InferLogit on the
// concatenated 96-dim input (the 49th addend lands on a different partial
// sum), which is why Model.Similarity and the Scorer both standardize on
// the split order instead.
package nn

// HalfApply computes one layer's partial response to the input columns
// [off, off+len(x)): out[o] = base + Σ_j W[o][off+j]·x[j], where base is
// B[o] when withBias is set and 0 otherwise. Accumulation is sequential in
// j per output row. This is the reference implementation; HalfApplyInto is
// the allocation-free equivalent.
func (d *Dense) HalfApply(x []float64, off int, withBias bool) []float64 {
	y := make([]float64, d.Out)
	for o := 0; o < d.Out; o++ {
		row := d.W[o*d.In+off : o*d.In+off+len(x)]
		s := 0.0
		if withBias {
			s = d.B[o]
		}
		for j, xj := range x {
			s += row[j] * xj
		}
		y[o] = s
	}
	return y
}

// HalfApplyInto is HalfApply into a caller-owned buffer of length d.Out.
// The inner loop runs four output rows per pass — four independent
// accumulators that share each load of x and overlap their add-latency
// chains, each still strictly sequential in j, so results are bit-identical
// to HalfApply.
func (d *Dense) HalfApplyInto(dst, x []float64, off int, withBias bool) {
	n := len(x)
	o := 0
	for ; o+3 < d.Out; o += 4 {
		r0 := d.W[o*d.In+off : o*d.In+off+n]
		r1 := d.W[(o+1)*d.In+off : (o+1)*d.In+off+n]
		r2 := d.W[(o+2)*d.In+off : (o+2)*d.In+off+n]
		r3 := d.W[(o+3)*d.In+off : (o+3)*d.In+off+n]
		var s0, s1, s2, s3 float64
		if withBias {
			s0, s1, s2, s3 = d.B[o], d.B[o+1], d.B[o+2], d.B[o+3]
		}
		for j, xj := range x {
			s0 += r0[j] * xj
			s1 += r1[j] * xj
			s2 += r2[j] * xj
			s3 += r3[j] * xj
		}
		dst[o], dst[o+1], dst[o+2], dst[o+3] = s0, s1, s2, s3
	}
	for ; o < d.Out; o++ {
		row := d.W[o*d.In+off : o*d.In+off+n]
		s := 0.0
		if withBias {
			s = d.B[o]
		}
		for j, xj := range x {
			s += row[j] * xj
		}
		dst[o] = s
	}
}

// ApplyInto is Apply into a caller-owned buffer of length d.Out:
// allocation-free, bit-identical to Apply.
func (d *Dense) ApplyInto(dst, x []float64) {
	d.HalfApplyInto(dst, x, 0, true)
}

// ApplyInto2 computes the layer on two independent inputs in one
// interleaved pass, loading each weight row once for both. Each
// accumulator (two rows × two inputs) follows the exact sequential order
// of Apply on its own input, so dstA/dstB are bit-identical to two
// ApplyInto calls. The symmetrized pair scorer uses this to push both pair
// orders through the network together.
func (d *Dense) ApplyInto2(dstA, dstB, xA, xB []float64) {
	n := len(xA)
	o := 0
	for ; o+1 < d.Out; o += 2 {
		r0 := d.W[o*d.In : o*d.In+n]
		r1 := d.W[(o+1)*d.In : (o+1)*d.In+n]
		a0, a1 := d.B[o], d.B[o+1]
		b0, b1 := a0, a1
		for j, xj := range xA {
			w0, w1 := r0[j], r1[j]
			yj := xB[j]
			a0 += w0 * xj
			a1 += w1 * xj
			b0 += w0 * yj
			b1 += w1 * yj
		}
		dstA[o], dstA[o+1] = a0, a1
		dstB[o], dstB[o+1] = b0, b1
	}
	if o < d.Out {
		row := d.W[o*d.In : o*d.In+n]
		sa, sb := d.B[o], d.B[o]
		for j, xj := range xA {
			w := row[j]
			sa += w * xj
			sb += w * xB[j]
		}
		dstA[o], dstB[o] = sa, sb
	}
}

// Scratch holds two forward passes worth of activation buffers (one per
// symmetrized pair direction), sized for a specific network. A Scratch is
// not safe for concurrent use; give each scoring goroutine its own (the
// scan engine keeps one per worker).
type Scratch struct {
	bufs  [][]float64
	bufs2 [][]float64
}

// NewScratch allocates activation buffers for every layer of the network.
func (n *Network) NewScratch() *Scratch {
	s := &Scratch{
		bufs:  make([][]float64, len(n.Layers)),
		bufs2: make([][]float64, len(n.Layers)),
	}
	for i, l := range n.Layers {
		s.bufs[i] = make([]float64, l.Out)
		s.bufs2[i] = make([]float64, l.Out)
	}
	return s
}

// InferLogitSplit runs a forward pass from precomputed first-layer halves:
// first must hold the first pair position's contribution WITH the bias
// (HalfApply(a, 0, true)), second the second position's without it
// (HalfApply(b, NumStatic-equivalent offset, false)). Reference
// implementation, allocating per layer; goroutine-safe like InferLogit.
func (n *Network) InferLogitSplit(first, second []float64) float64 {
	h := make([]float64, len(first))
	for o := range h {
		v := first[o] + second[o]
		if v < 0 {
			v = 0
		}
		h[o] = v
	}
	for li := 1; li < len(n.Layers); li++ {
		h = n.Layers[li].Apply(h)
		if li == len(n.Layers)-1 {
			break
		}
		for i := range h {
			if h[i] < 0 {
				h[i] = 0
			}
		}
	}
	return h[0]
}

// InferLogitSplitScratch2 runs BOTH symmetrized directions of a pair in
// one interleaved, allocation-free pass: every weight row is loaded once
// and applied to both directions' activations (ApplyInto2). Each
// direction's result is bit-identical to InferLogitSplit on its own
// halves; this is the scorer's hot path.
func (n *Network) InferLogitSplitScratch2(s *Scratch, firstA, secondA, firstB, secondB []float64) (float64, float64) {
	ha, hb := s.bufs[0], s.bufs2[0]
	for o := range ha {
		va := firstA[o] + secondA[o]
		if va < 0 {
			va = 0
		}
		ha[o] = va
		vb := firstB[o] + secondB[o]
		if vb < 0 {
			vb = 0
		}
		hb[o] = vb
	}
	for li := 1; li < len(n.Layers); li++ {
		outA, outB := s.bufs[li], s.bufs2[li]
		n.Layers[li].ApplyInto2(outA, outB, ha, hb)
		if li < len(n.Layers)-1 {
			for i := range outA {
				if outA[i] < 0 {
					outA[i] = 0
				}
				if outB[i] < 0 {
					outB[i] = 0
				}
			}
		}
		ha, hb = outA, outB
	}
	return ha[0], hb[0]
}

// InferLogitSplitScratch is InferLogitSplit with zero heap allocations: all
// intermediate activations live in the Scratch. Bit-identical to
// InferLogitSplit.
func (n *Network) InferLogitSplitScratch(s *Scratch, first, second []float64) float64 {
	h := s.bufs[0]
	for o := range h {
		v := first[o] + second[o]
		if v < 0 {
			v = 0
		}
		h[o] = v
	}
	for li := 1; li < len(n.Layers); li++ {
		out := s.bufs[li]
		n.Layers[li].ApplyInto(out, h)
		if li < len(n.Layers)-1 {
			for i := range out {
				if out[i] < 0 {
					out[i] = 0
				}
			}
		}
		h = out
	}
	return h[0]
}
