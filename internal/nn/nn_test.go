package nn

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSigmoid(t *testing.T) {
	if got := Sigmoid(0); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Sigmoid(0) = %v", got)
	}
	if got := Sigmoid(100); got < 0.999999 {
		t.Errorf("Sigmoid(100) = %v", got)
	}
	if got := Sigmoid(-100); got > 1e-6 {
		t.Errorf("Sigmoid(-100) = %v", got)
	}
	// Stable and bounded everywhere.
	f := func(x float64) bool {
		s := Sigmoid(x)
		return s >= 0 && s <= 1 && !math.IsNaN(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBCEWithLogit(t *testing.T) {
	// Loss is non-negative and gradient is sigmoid(l) - y everywhere.
	f := func(logit float64, label bool) bool {
		if math.IsInf(logit, 0) || math.IsNaN(logit) {
			return true
		}
		y := 0.0
		if label {
			y = 1
		}
		loss, grad := BCEWithLogit(logit, y)
		return loss >= -1e-12 && !math.IsNaN(loss) &&
			math.Abs(grad-(Sigmoid(logit)-y)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	loss, _ := BCEWithLogit(0, 1)
	if math.Abs(loss-math.Log(2)) > 1e-9 {
		t.Errorf("BCE(0,1) = %v, want ln2", loss)
	}
}

func TestGradientCheck(t *testing.T) {
	// Numerical gradient check on a tiny network.
	n, err := NewNetwork([]int{3, 4, 1}, 7)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.3, -1.2, 0.8}
	y := 1.0
	n.zeroGrads()
	logit := n.Logit(x)
	_, grad := BCEWithLogit(logit, y)
	n.backward(grad)

	const eps = 1e-6
	for li, l := range n.Layers {
		for wi := range l.W {
			orig := l.W[wi]
			l.W[wi] = orig + eps
			lp, _ := BCEWithLogit(n.Logit(x), y)
			l.W[wi] = orig - eps
			lm, _ := BCEWithLogit(n.Logit(x), y)
			l.W[wi] = orig
			numeric := (lp - lm) / (2 * eps)
			if math.Abs(numeric-l.dW[wi]) > 1e-4 {
				t.Fatalf("layer %d W[%d]: analytic %v vs numeric %v", li, wi, l.dW[wi], numeric)
			}
		}
		for bi := range l.B {
			orig := l.B[bi]
			l.B[bi] = orig + eps
			lp, _ := BCEWithLogit(n.Logit(x), y)
			l.B[bi] = orig - eps
			lm, _ := BCEWithLogit(n.Logit(x), y)
			l.B[bi] = orig
			numeric := (lp - lm) / (2 * eps)
			if math.Abs(numeric-l.dB[bi]) > 1e-4 {
				t.Fatalf("layer %d B[%d]: analytic %v vs numeric %v", li, bi, l.dB[bi], numeric)
			}
		}
	}
}

// xorSamples builds a non-linearly-separable dataset the network must be
// able to fit (proves the ReLU layers and optimizer actually work).
func xorSamples(n int, seed int64) []Sample {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Sample, 0, n)
	for i := 0; i < n; i++ {
		a := rng.Float64()*2 - 1
		b := rng.Float64()*2 - 1
		y := 0.0
		if (a > 0) != (b > 0) {
			y = 1
		}
		out = append(out, Sample{X: []float64{a, b}, Y: y})
	}
	return out
}

func TestTrainLearnsXOR(t *testing.T) {
	n, err := NewNetwork([]int{2, 16, 8, 1}, 42)
	if err != nil {
		t.Fatal(err)
	}
	train := xorSamples(2000, 1)
	val := xorSamples(500, 2)
	hist, err := Train(n, train, val, TrainConfig{Epochs: 30, BatchSize: 32, LR: 0.01, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	last := hist.Epochs[len(hist.Epochs)-1]
	if last.ValAcc < 0.95 {
		t.Errorf("XOR val accuracy %.3f, want >= 0.95", last.ValAcc)
	}
	if auc := AUC(n, val); auc < 0.97 {
		t.Errorf("XOR AUC %.3f, want >= 0.97", auc)
	}
	// Loss should broadly decrease.
	if hist.Epochs[0].TrainLoss <= last.TrainLoss {
		t.Errorf("training loss did not decrease: %v -> %v",
			hist.Epochs[0].TrainLoss, last.TrainLoss)
	}
}

func TestTrainValidatesInput(t *testing.T) {
	n, _ := NewNetwork([]int{3, 1}, 0)
	if _, err := Train(n, nil, nil, TrainConfig{}); err == nil {
		t.Error("want error for empty training set")
	}
	bad := []Sample{{X: []float64{1, 2}, Y: 0}}
	if _, err := Train(n, bad, nil, TrainConfig{}); err == nil {
		t.Error("want error for dimension mismatch")
	}
}

func TestNewNetworkValidation(t *testing.T) {
	if _, err := NewNetwork([]int{5}, 0); err == nil {
		t.Error("want error for single width")
	}
	if _, err := NewNetwork([]int{5, 3}, 0); err == nil {
		t.Error("want error for non-1 output width")
	}
}

func TestPaperNetworkShape(t *testing.T) {
	n := NewPaperNetwork(1)
	if n.InputDim() != 96 {
		t.Errorf("input dim %d, want 96", n.InputDim())
	}
	if len(n.Layers) != 6 {
		t.Errorf("%d dense layers, want 6 (the paper's 6-layer sequential model)", len(n.Layers))
	}
	if n.NumParams() == 0 {
		t.Error("no parameters")
	}
}

func TestSerializeRoundtrip(t *testing.T) {
	n, _ := NewNetwork([]int{4, 8, 1}, 99)
	x := []float64{0.1, -0.5, 2.0, 0.7}
	want := n.Predict(x)
	b, err := json.Marshal(n)
	if err != nil {
		t.Fatal(err)
	}
	var restored Network
	if err := json.Unmarshal(b, &restored); err != nil {
		t.Fatal(err)
	}
	if got := restored.Predict(x); math.Abs(got-want) > 1e-15 {
		t.Errorf("prediction changed after roundtrip: %v vs %v", got, want)
	}
}

func TestSerializeRejectsGarbage(t *testing.T) {
	var n Network
	for _, s := range []string{`{}`, `{"widths":[3]}`, `{"widths":[2,1],"w":[[1]],"b":[[0]]}`, `not json`} {
		if err := json.Unmarshal([]byte(s), &n); err == nil {
			t.Errorf("accepted garbage %q", s)
		}
	}
}

func TestAUCExtremes(t *testing.T) {
	n, _ := NewNetwork([]int{1, 4, 1}, 5)
	// Perfectly separable by construction after training.
	var train []Sample
	for i := 0; i < 400; i++ {
		x := float64(i%2)*2 - 1
		train = append(train, Sample{X: []float64{x}, Y: (x + 1) / 2})
	}
	if _, err := Train(n, train, nil, TrainConfig{Epochs: 20, BatchSize: 16, LR: 0.05}); err != nil {
		t.Fatal(err)
	}
	if auc := AUC(n, train); auc < 0.999 {
		t.Errorf("separable AUC = %v, want ~1", auc)
	}
	// Degenerate single-class sets return 0.
	if auc := AUC(n, train[:1]); auc != 0 {
		t.Errorf("single-class AUC = %v, want 0", auc)
	}
}

func TestDeterministicTraining(t *testing.T) {
	build := func() float64 {
		n, _ := NewNetwork([]int{2, 8, 1}, 11)
		train := xorSamples(500, 4)
		if _, err := Train(n, train, nil, TrainConfig{Epochs: 3, BatchSize: 32, Seed: 5}); err != nil {
			t.Fatal(err)
		}
		return n.Predict([]float64{0.4, -0.2})
	}
	if build() != build() {
		t.Error("training is nondeterministic for identical seeds")
	}
}
