// Package nn is a from-scratch feedforward neural network — the stand-in
// for the paper's Keras/TensorFlow stack. It provides exactly what
// PATCHECKO's similarity detector needs: a sequential model of dense layers
// with ReLU activations and a sigmoid output trained with binary
// cross-entropy and Adam, plus accuracy/loss/AUC metrics and JSON
// serialization. The paper's model is a 6-layer sequential network over a
// 96-dimensional input (a pair of 48-dimensional static feature vectors);
// NewPaperNetwork builds that shape.
package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Dense is one fully-connected layer: y = W.x + b.
type Dense struct {
	In, Out int
	W       []float64 // Out x In, row-major
	B       []float64

	// training state
	lastX []float64
	dW    []float64
	dB    []float64
}

// NewDense initializes a layer with He-uniform weights drawn from rng.
func NewDense(in, out int, rng *rand.Rand) *Dense {
	d := &Dense{
		In: in, Out: out,
		W:  make([]float64, in*out),
		B:  make([]float64, out),
		dW: make([]float64, in*out),
		dB: make([]float64, out),
	}
	limit := math.Sqrt(6.0 / float64(in))
	for i := range d.W {
		d.W[i] = (rng.Float64()*2 - 1) * limit
	}
	return d
}

// Forward computes the layer output, remembering the input for Backward.
func (d *Dense) Forward(x []float64) []float64 {
	d.lastX = x
	return d.Apply(x)
}

// Apply computes the layer output without recording backprop state. Unlike
// Forward it does not mutate the layer, so it is safe for concurrent use.
func (d *Dense) Apply(x []float64) []float64 {
	y := make([]float64, d.Out)
	for o := 0; o < d.Out; o++ {
		row := d.W[o*d.In : (o+1)*d.In]
		s := d.B[o]
		for i, xi := range x {
			s += row[i] * xi
		}
		y[o] = s
	}
	return y
}

// Backward accumulates parameter gradients for the last Forward input and
// returns the gradient with respect to that input.
func (d *Dense) Backward(dout []float64) []float64 {
	dx := make([]float64, d.In)
	for o := 0; o < d.Out; o++ {
		g := dout[o]
		if g == 0 {
			continue
		}
		row := d.W[o*d.In : (o+1)*d.In]
		drow := d.dW[o*d.In : (o+1)*d.In]
		d.dB[o] += g
		for i, xi := range d.lastX {
			drow[i] += g * xi
			dx[i] += g * row[i]
		}
	}
	return dx
}

func (d *Dense) zeroGrads() {
	for i := range d.dW {
		d.dW[i] = 0
	}
	for i := range d.dB {
		d.dB[i] = 0
	}
}

// Network is a stack of dense layers with ReLU between them and a single
// logit output (apply Sigmoid for a probability).
type Network struct {
	Layers []*Dense

	// relu masks per layer boundary, for backprop
	masks [][]bool
}

// NewNetwork builds a network with the given layer widths, e.g.
// [96, 128, 64, 1]. Widths must start with the input dimension and end
// with 1.
func NewNetwork(widths []int, seed int64) (*Network, error) {
	if len(widths) < 2 {
		return nil, fmt.Errorf("nn: need at least input and output widths")
	}
	if widths[len(widths)-1] != 1 {
		return nil, fmt.Errorf("nn: final width must be 1, got %d", widths[len(widths)-1])
	}
	rng := rand.New(rand.NewSource(seed))
	n := &Network{}
	for i := 0; i+1 < len(widths); i++ {
		n.Layers = append(n.Layers, NewDense(widths[i], widths[i+1], rng))
	}
	n.masks = make([][]bool, len(n.Layers))
	return n, nil
}

// NewPaperNetwork builds the paper's 6-layer sequential model over the
// 96-dimensional pair input.
func NewPaperNetwork(seed int64) *Network {
	n, err := NewNetwork([]int{96, 128, 64, 32, 16, 8, 1}, seed)
	if err != nil {
		panic(err) // widths are static and valid
	}
	return n
}

// InputDim returns the expected input width.
func (n *Network) InputDim() int { return n.Layers[0].In }

// Logit runs a forward pass and returns the raw output logit.
func (n *Network) Logit(x []float64) float64 {
	h := x
	for li, l := range n.Layers {
		h = l.Forward(h)
		if li == len(n.Layers)-1 {
			break
		}
		mask := make([]bool, len(h))
		for i := range h {
			if h[i] > 0 {
				mask[i] = true
			} else {
				h[i] = 0
			}
		}
		n.masks[li] = mask
	}
	return h[0]
}

// Predict returns the probability that x is a positive pair.
func (n *Network) Predict(x []float64) float64 {
	return Sigmoid(n.Logit(x))
}

// InferLogit is Logit without the backprop bookkeeping (saved layer inputs
// and ReLU masks): a pure read of the weights, safe to call from many
// goroutines at once. Inference paths that may run concurrently — the scan
// engine's static stage in particular — must use this instead of Logit.
func (n *Network) InferLogit(x []float64) float64 {
	h := x
	for li, l := range n.Layers {
		h = l.Apply(h)
		if li == len(n.Layers)-1 {
			break
		}
		for i := range h {
			if h[i] < 0 {
				h[i] = 0
			}
		}
	}
	return h[0]
}

// Infer returns the probability that x is a positive pair, computed
// goroutine-safely (see InferLogit).
func (n *Network) Infer(x []float64) float64 {
	return Sigmoid(n.InferLogit(x))
}

// backward runs backprop from a single logit gradient, accumulating layer
// gradients (call after Logit on the same input).
func (n *Network) backward(dlogit float64) {
	grad := []float64{dlogit}
	for li := len(n.Layers) - 1; li >= 0; li-- {
		grad = n.Layers[li].Backward(grad)
		if li > 0 {
			mask := n.masks[li-1]
			for i := range grad {
				if !mask[i] {
					grad[i] = 0
				}
			}
		}
	}
}

func (n *Network) zeroGrads() {
	for _, l := range n.Layers {
		l.zeroGrads()
	}
}

// NumParams returns the total trainable parameter count.
func (n *Network) NumParams() int {
	total := 0
	for _, l := range n.Layers {
		total += len(l.W) + len(l.B)
	}
	return total
}

// Sigmoid is the logistic function.
func Sigmoid(x float64) float64 {
	if x >= 0 {
		return 1 / (1 + math.Exp(-x))
	}
	e := math.Exp(x)
	return e / (1 + e)
}

// BCEWithLogit returns the numerically-stable binary cross-entropy loss of
// a logit against label y (0 or 1), plus the gradient dloss/dlogit.
func BCEWithLogit(logit, y float64) (loss, grad float64) {
	// loss = max(l,0) - l*y + log(1+exp(-|l|))
	loss = math.Max(logit, 0) - logit*y + math.Log1p(math.Exp(-math.Abs(logit)))
	grad = Sigmoid(logit) - y
	return loss, grad
}
