package nn

import "testing"

func BenchmarkForward(b *testing.B) {
	n := NewPaperNetwork(1)
	x := make([]float64, 96)
	for i := range x {
		x[i] = float64(i) / 96
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = n.Logit(x)
	}
}

func BenchmarkTrainStep(b *testing.B) {
	n := NewPaperNetwork(1)
	samples := make([]Sample, 64)
	for i := range samples {
		x := make([]float64, 96)
		for j := range x {
			x[j] = float64((i*j)%7) / 7
		}
		samples[i] = Sample{X: x, Y: float64(i % 2)}
	}
	opt := NewAdam(1e-3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.zeroGrads()
		for _, s := range samples {
			logit := n.Logit(s.X)
			_, grad := BCEWithLogit(logit, s.Y)
			n.backward(grad)
		}
		opt.Step(n, float64(len(samples)))
	}
	b.ReportMetric(float64(len(samples))*float64(b.N)/b.Elapsed().Seconds(), "samples/s")
}
