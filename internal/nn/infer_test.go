package nn

import (
	"math"
	"math/rand"
	"testing"
)

func randVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

// TestApplyIntoMatchesApply pins the allocation-free layer kernel to the
// reference Apply bit for bit, across layer shapes that exercise both the
// unrolled pairs and the odd-row tail.
func TestApplyIntoMatchesApply(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, shape := range [][2]int{{96, 128}, {128, 64}, {16, 7}, {5, 1}, {3, 2}} {
		d := NewDense(shape[0], shape[1], rng)
		for i := range d.B {
			d.B[i] = rng.NormFloat64()
		}
		x := randVec(rng, shape[0])
		want := d.Apply(x)
		got := make([]float64, shape[1])
		d.ApplyInto(got, x)
		for o := range want {
			if got[o] != want[o] {
				t.Fatalf("%dx%d: ApplyInto[%d] = %v, Apply = %v", shape[0], shape[1], o, got[o], want[o])
			}
		}
	}
}

// TestHalfApplyVariantsAgree pins HalfApplyInto to HalfApply bit for bit,
// for both halves of a pair layer, with and without the bias.
func TestHalfApplyVariantsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	d := NewDense(96, 128, rng)
	for i := range d.B {
		d.B[i] = rng.NormFloat64()
	}
	half := randVec(rng, 48)
	for _, tc := range []struct {
		off      int
		withBias bool
	}{{0, true}, {0, false}, {48, true}, {48, false}} {
		want := d.HalfApply(half, tc.off, tc.withBias)
		got := make([]float64, d.Out)
		d.HalfApplyInto(got, half, tc.off, tc.withBias)
		for o := range want {
			if got[o] != want[o] {
				t.Fatalf("off=%d bias=%v: HalfApplyInto[%d] = %v, HalfApply = %v",
					tc.off, tc.withBias, o, got[o], want[o])
			}
		}
	}
}

// TestApplyInto2MatchesApply pins the interleaved two-input kernel to the
// reference Apply bit for bit on both inputs, across shapes covering the
// unrolled rows and the tail (including the final 8→1 layer).
func TestApplyInto2MatchesApply(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	for _, shape := range [][2]int{{128, 64}, {16, 8}, {8, 1}, {5, 3}, {6, 7}} {
		d := NewDense(shape[0], shape[1], rng)
		for i := range d.B {
			d.B[i] = rng.NormFloat64()
		}
		xA, xB := randVec(rng, shape[0]), randVec(rng, shape[0])
		wantA, wantB := d.Apply(xA), d.Apply(xB)
		gotA, gotB := make([]float64, shape[1]), make([]float64, shape[1])
		d.ApplyInto2(gotA, gotB, xA, xB)
		for o := range wantA {
			if gotA[o] != wantA[o] || gotB[o] != wantB[o] {
				t.Fatalf("%dx%d row %d: ApplyInto2 (%v, %v) != Apply (%v, %v)",
					shape[0], shape[1], o, gotA[o], gotB[o], wantA[o], wantB[o])
			}
		}
	}
}

// TestInferLogitSplitScratch2MatchesSplit: the interleaved dual-direction
// pass reproduces two independent reference passes bit for bit.
func TestInferLogitSplitScratch2MatchesSplit(t *testing.T) {
	n := NewPaperNetwork(6)
	rng := rand.New(rand.NewSource(17))
	s := n.NewScratch()
	l0 := n.Layers[0]
	for trial := 0; trial < 50; trial++ {
		a, b := randVec(rng, 48), randVec(rng, 48)
		aFirst, aSecond := l0.HalfApply(a, 0, true), l0.HalfApply(a, 48, false)
		bFirst, bSecond := l0.HalfApply(b, 0, true), l0.HalfApply(b, 48, false)
		wantAB := n.InferLogitSplit(aFirst, bSecond)
		wantBA := n.InferLogitSplit(bFirst, aSecond)
		gotAB, gotBA := n.InferLogitSplitScratch2(s, aFirst, bSecond, bFirst, aSecond)
		if gotAB != wantAB || gotBA != wantBA {
			t.Fatalf("trial %d: dual pass (%v, %v) != reference (%v, %v)",
				trial, gotAB, gotBA, wantAB, wantBA)
		}
	}
}

// TestInferLogitSplitScratchMatchesSplit is the forward-pass half of the
// batched==scalar guarantee: the scratch-buffer pass must reproduce the
// allocating reference pass bit for bit, over many random half pairs.
func TestInferLogitSplitScratchMatchesSplit(t *testing.T) {
	n := NewPaperNetwork(3)
	rng := rand.New(rand.NewSource(13))
	s := n.NewScratch()
	l0 := n.Layers[0]
	for trial := 0; trial < 50; trial++ {
		a, b := randVec(rng, 48), randVec(rng, 48)
		first := l0.HalfApply(a, 0, true)
		second := l0.HalfApply(b, 48, false)
		want := n.InferLogitSplit(first, second)
		got := n.InferLogitSplitScratch(s, first, second)
		if got != want {
			t.Fatalf("trial %d: scratch logit %v != reference %v", trial, got, want)
		}
	}
}

// TestSplitOrderTracksConcatenated documents the relationship with the
// concatenated-input path: the split accumulation order is a reassociation
// of InferLogit's, so the logits agree to rounding error but not
// necessarily bit for bit — which is why every pair-scoring path in the
// detector standardizes on the split order.
func TestSplitOrderTracksConcatenated(t *testing.T) {
	n := NewPaperNetwork(4)
	rng := rand.New(rand.NewSource(14))
	l0 := n.Layers[0]
	for trial := 0; trial < 20; trial++ {
		a, b := randVec(rng, 48), randVec(rng, 48)
		pair := append(append(make([]float64, 0, 96), a...), b...)
		concat := n.InferLogit(pair)
		split := n.InferLogitSplit(l0.HalfApply(a, 0, true), l0.HalfApply(b, 48, false))
		if math.Abs(concat-split) > 1e-9*(1+math.Abs(concat)) {
			t.Fatalf("trial %d: split logit %v too far from concatenated %v", trial, split, concat)
		}
	}
}

// TestInferSplitScratchAllocFree: the engine forward pass must not touch
// the heap once the Scratch exists.
func TestInferSplitScratchAllocFree(t *testing.T) {
	n := NewPaperNetwork(5)
	rng := rand.New(rand.NewSource(15))
	l0 := n.Layers[0]
	first := l0.HalfApply(randVec(rng, 48), 0, true)
	second := l0.HalfApply(randVec(rng, 48), 48, false)
	s := n.NewScratch()
	var sink float64
	allocs := testing.AllocsPerRun(100, func() {
		sink += n.InferLogitSplitScratch(s, first, second)
	})
	if allocs != 0 {
		t.Errorf("InferLogitSplitScratch allocates %.1f objects/op, want 0", allocs)
	}
	_ = sink
}
