package nn

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Sample is one training example: an input vector and a 0/1 label.
type Sample struct {
	X []float64
	Y float64
}

// Adam is the Adam optimizer with per-parameter moment estimates.
type Adam struct {
	LR      float64
	Beta1   float64
	Beta2   float64
	Epsilon float64

	t  int
	mW [][]float64
	vW [][]float64
	mB [][]float64
	vB [][]float64
}

// NewAdam returns an Adam optimizer with the usual defaults.
func NewAdam(lr float64) *Adam {
	if lr <= 0 {
		lr = 1e-3
	}
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Epsilon: 1e-8}
}

// Step applies accumulated gradients (scaled by 1/batch) to the network.
func (a *Adam) Step(n *Network, batch float64) {
	if a.mW == nil {
		a.mW = make([][]float64, len(n.Layers))
		a.vW = make([][]float64, len(n.Layers))
		a.mB = make([][]float64, len(n.Layers))
		a.vB = make([][]float64, len(n.Layers))
		for i, l := range n.Layers {
			a.mW[i] = make([]float64, len(l.W))
			a.vW[i] = make([]float64, len(l.W))
			a.mB[i] = make([]float64, len(l.B))
			a.vB[i] = make([]float64, len(l.B))
		}
	}
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for li, l := range n.Layers {
		update := func(p, g, m, v []float64) {
			for i := range p {
				gi := g[i] / batch
				m[i] = a.Beta1*m[i] + (1-a.Beta1)*gi
				v[i] = a.Beta2*v[i] + (1-a.Beta2)*gi*gi
				mhat := m[i] / bc1
				vhat := v[i] / bc2
				p[i] -= a.LR * mhat / (math.Sqrt(vhat) + a.Epsilon)
			}
		}
		update(l.W, l.dW, a.mW[li], a.vW[li])
		update(l.B, l.dB, a.mB[li], a.vB[li])
	}
}

// TrainConfig controls Train.
type TrainConfig struct {
	Epochs    int
	BatchSize int
	LR        float64
	Seed      int64
	// Verbose, when non-nil, receives one line per epoch.
	Verbose func(string)
}

// EpochStats is one point of the training history — the data behind the
// paper's Fig. 8 accuracy/loss curves.
type EpochStats struct {
	Epoch     int
	TrainLoss float64
	TrainAcc  float64
	ValLoss   float64
	ValAcc    float64
}

// History is the full training history.
type History struct {
	Epochs []EpochStats
}

// Train fits the network on train, reporting validation stats per epoch.
func Train(n *Network, train, val []Sample, cfg TrainConfig) (*History, error) {
	if len(train) == 0 {
		return nil, fmt.Errorf("nn: empty training set")
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 10
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 64
	}
	for _, s := range train {
		if len(s.X) != n.InputDim() {
			return nil, fmt.Errorf("nn: sample dim %d, network expects %d", len(s.X), n.InputDim())
		}
	}
	opt := NewAdam(cfg.LR)
	rng := rand.New(rand.NewSource(cfg.Seed))
	idx := make([]int, len(train))
	for i := range idx {
		idx[i] = i
	}
	hist := &History{}
	for e := 1; e <= cfg.Epochs; e++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		var lossSum float64
		var correct int
		for start := 0; start < len(idx); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(idx) {
				end = len(idx)
			}
			n.zeroGrads()
			for _, i := range idx[start:end] {
				s := train[i]
				logit := n.Logit(s.X)
				loss, grad := BCEWithLogit(logit, s.Y)
				lossSum += loss
				if (logit > 0) == (s.Y > 0.5) {
					correct++
				}
				n.backward(grad)
			}
			opt.Step(n, float64(end-start))
		}
		st := EpochStats{
			Epoch:     e,
			TrainLoss: lossSum / float64(len(train)),
			TrainAcc:  float64(correct) / float64(len(train)),
		}
		if len(val) > 0 {
			st.ValLoss, st.ValAcc = Evaluate(n, val)
		}
		hist.Epochs = append(hist.Epochs, st)
		if cfg.Verbose != nil {
			cfg.Verbose(fmt.Sprintf(
				"epoch %2d  train loss %.4f acc %.4f  val loss %.4f acc %.4f",
				st.Epoch, st.TrainLoss, st.TrainAcc, st.ValLoss, st.ValAcc))
		}
	}
	return hist, nil
}

// Evaluate returns mean loss and accuracy over the samples.
func Evaluate(n *Network, samples []Sample) (loss, acc float64) {
	if len(samples) == 0 {
		return 0, 0
	}
	var lossSum float64
	var correct int
	for _, s := range samples {
		logit := n.Logit(s.X)
		l, _ := BCEWithLogit(logit, s.Y)
		lossSum += l
		if (logit > 0) == (s.Y > 0.5) {
			correct++
		}
	}
	return lossSum / float64(len(samples)), float64(correct) / float64(len(samples))
}

// AUC computes the area under the ROC curve by rank statistics
// (Mann-Whitney U with midranks for ties), the metric the paper reports for
// training performance (0.971 for the state of the art it builds on).
func AUC(n *Network, samples []Sample) float64 {
	type scored struct {
		p float64
		y float64
	}
	ss := make([]scored, 0, len(samples))
	var pos, neg float64
	for _, s := range samples {
		ss = append(ss, scored{p: n.Predict(s.X), y: s.Y})
		if s.Y > 0.5 {
			pos++
		} else {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		return 0
	}
	sort.Slice(ss, func(i, j int) bool { return ss[i].p < ss[j].p })
	var rankSum float64
	i := 0
	for i < len(ss) {
		j := i
		for j < len(ss) && ss[j].p == ss[i].p {
			j++
		}
		midrank := float64(i+j+1) / 2 // ranks are 1-based
		for k := i; k < j; k++ {
			if ss[k].y > 0.5 {
				rankSum += midrank
			}
		}
		i = j
	}
	return (rankSum - pos*(pos+1)/2) / (pos * neg)
}
