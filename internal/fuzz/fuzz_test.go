package fuzz

import (
	"testing"

	"repro/internal/compiler"
	"repro/internal/disasm"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/minic"
)

func refFor(t *testing.T, fn *minic.Func) Ref {
	t.Helper()
	mod := &minic.Module{Name: "ref", Funcs: []*minic.Func{fn}}
	im, err := compiler.Compile(mod, isa.AMD64, compiler.O1)
	if err != nil {
		t.Fatal(err)
	}
	dis, err := disasm.Disassemble(im)
	if err != nil {
		t.Fatal(err)
	}
	df, ok := dis.Lookup(fn.Name)
	if !ok {
		t.Fatal("function lost")
	}
	return Ref{Dis: dis, Fn: df}
}

func TestSeedEnvShape(t *testing.T) {
	env := SeedEnv(64)
	if len(env.Args) != 4 || env.Args[0] != minic.DataBase || env.Args[1] != 64 {
		t.Errorf("seed args %v", env.Args)
	}
	if len(env.Data) != 64 || env.Data[0] != 4 || env.Data[63] != 1 {
		t.Errorf("seed data malformed")
	}
	if got := SeedEnv(0); len(got.Data) != 64 {
		t.Errorf("default data length %d", len(got.Data))
	}
}

func TestEnvironmentsCleanOnAllRefs(t *testing.T) {
	pair := minic.CVEByID("CVE-2018-9412")
	vref := refFor(t, pair.Vulnerable)
	pref := refFor(t, pair.Patched)
	cfg := DefaultConfig(1)
	cfg.NumEnvs = 4
	envs := Environments([]Ref{vref, pref}, cfg)
	if len(envs) == 0 {
		t.Fatal("no environments found")
	}
	if len(envs) > cfg.NumEnvs {
		t.Fatalf("got %d envs, cap is %d", len(envs), cfg.NumEnvs)
	}
	for i, env := range envs {
		for _, ref := range []Ref{vref, pref} {
			if _, err := emu.Execute(ref.Dis, ref.Fn, env.Clone(), cfg.StepLimit); err != nil {
				t.Errorf("env %d traps on a reference: %v", i, err)
			}
		}
	}
}

func TestEnvironmentsDeterministic(t *testing.T) {
	pair := minic.CVEByID("CVE-2018-9340")
	ref := refFor(t, pair.Vulnerable)
	cfg := DefaultConfig(7)
	a := Environments([]Ref{ref}, cfg)
	b := Environments([]Ref{ref}, cfg)
	if len(a) != len(b) {
		t.Fatalf("nondeterministic env count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if string(a[i].Data) != string(b[i].Data) {
			t.Errorf("env %d data differs between runs", i)
		}
		for j := range a[i].Args {
			if a[i].Args[j] != b[i].Args[j] {
				t.Errorf("env %d args differ", i)
			}
		}
	}
}

func TestEnvironmentsDiversity(t *testing.T) {
	// Fuzzing a branchy function should produce more than one distinct env.
	pair := minic.CVEByID("CVE-2018-9412")
	ref := refFor(t, pair.Vulnerable)
	cfg := DefaultConfig(3)
	cfg.NumEnvs = 4
	envs := Environments([]Ref{ref}, cfg)
	if len(envs) < 2 {
		t.Fatalf("only %d envs; coverage-guided search found no diversity", len(envs))
	}
	seen := make(map[string]bool)
	for _, e := range envs {
		seen[string(e.Data)] = true
	}
	if len(seen) < 2 {
		t.Error("all environments share identical data")
	}
}

func TestEnvironmentsCrashOnlyTarget(t *testing.T) {
	// A function that always traps yields no environments.
	boom := minic.NewFunc("boom", []string{"a"},
		minic.Ret(minic.Div(minic.I(1), minic.Sub(minic.V("a"), minic.V("a")))))
	ref := refFor(t, boom)
	if envs := Environments([]Ref{ref}, DefaultConfig(1)); envs != nil {
		t.Errorf("got %d envs for an always-crashing target", len(envs))
	}
}

func TestArgMutationsStayInValidRange(t *testing.T) {
	pair := minic.CVEByID("CVE-2018-9470")
	ref := refFor(t, pair.Vulnerable)
	cfg := DefaultConfig(11)
	cfg.NumEnvs = 8
	cfg.MaxIters = 800
	for _, env := range Environments([]Ref{ref}, cfg) {
		for i := 1; i < len(env.Args); i++ {
			if env.Args[i] > 2*argMutationBound || env.Args[i] < -argMutationBound {
				t.Errorf("arg %d = %d escaped the valid-value range", i, env.Args[i])
			}
		}
	}
}
