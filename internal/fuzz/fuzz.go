// Package fuzz derives execution environments for dynamic analysis. It is
// the stand-in for the paper's use of LibFuzzer: a seeded, mutation-based,
// coverage-guided loop that produces a set of diverse inputs under which the
// reference function(s) execute cleanly. The paper generates inputs for the
// CVE function with LibFuzzer and "tested that these inputs worked with both
// the vulnerable and patched functions"; Environments enforces exactly that
// by requiring every emitted environment to run trap-free on every supplied
// reference function.
package fuzz

import (
	"math/rand"

	"repro/internal/disasm"
	"repro/internal/emu"
	"repro/internal/minic"
)

// Config controls environment generation.
type Config struct {
	Seed int64
	// NumEnvs is how many execution environments to emit (the paper's K).
	NumEnvs int
	// MaxIters bounds the mutation loop.
	MaxIters int
	// StepLimit bounds each trial execution.
	StepLimit int64
	// DataLen is the size of the input buffer mapped at minic.DataBase.
	DataLen int
}

// DefaultConfig returns sensible defaults (K=4 environments).
func DefaultConfig(seed int64) Config {
	return Config{Seed: seed, NumEnvs: 4, MaxIters: 400, StepLimit: 1 << 18, DataLen: 64}
}

// argMutationBound caps scalar-argument mutations. Arguments model lengths,
// counts and indexes; the harness keeps them in the plausible "valid value"
// range the paper mentions choosing for its execution environments.
const argMutationBound = 96

// Ref is one reference function to which every environment must be benign.
type Ref struct {
	Dis *disasm.Disassembly
	Fn  *disasm.Function
}

// SeedEnv returns the canonical starting environment used across the
// corpus: pointer to the data buffer, a buffer-sized length, and two small
// scalars, with a gently structured buffer (small leading length field,
// non-zero tail).
func SeedEnv(dataLen int) *minic.Env {
	if dataLen <= 0 {
		dataLen = 64
	}
	data := make([]byte, dataLen)
	data[0] = 4
	for i := 4; i < dataLen; i++ {
		data[i] = 1
	}
	return &minic.Env{
		Args: []int64{minic.DataBase, int64(dataLen), 3, 2},
		Data: data,
	}
}

// Environments runs the coverage-guided loop and returns up to
// cfg.NumEnvs environments, each of which executes every reference cleanly.
// The first returned environment is always the (validated) seed.
func Environments(refs []Ref, cfg Config) []*minic.Env {
	if cfg.NumEnvs <= 0 {
		cfg.NumEnvs = 4
	}
	if cfg.MaxIters <= 0 {
		cfg.MaxIters = 400
	}
	if cfg.DataLen <= 0 {
		cfg.DataLen = 64
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	coverage := make(map[uint64]struct{})
	returns := make(map[int64]struct{})

	// tryEnv executes env on every reference; it returns whether all ran
	// cleanly and whether the run discovered new behaviour.
	tryEnv := func(env *minic.Env) (clean, interesting bool) {
		newCov := false
		for _, ref := range refs {
			res, err := emu.Execute(ref.Dis, ref.Fn, env.Clone(), cfg.StepLimit)
			if err != nil {
				return false, false
			}
			for pc := range res.Trace.PCs() {
				if _, ok := coverage[pc]; !ok {
					coverage[pc] = struct{}{}
					newCov = true
				}
			}
			if _, ok := returns[res.Ret]; !ok {
				returns[res.Ret] = struct{}{}
				newCov = true
			}
		}
		return true, newCov
	}

	seed := SeedEnv(cfg.DataLen)
	var out []*minic.Env
	var pool []*minic.Env
	if clean, _ := tryEnv(seed); clean {
		out = append(out, seed)
		pool = append(pool, seed)
	}
	if len(pool) == 0 {
		// The references crash even on the seed; nothing can be profiled.
		return nil
	}

	for iter := 0; iter < cfg.MaxIters && len(out) < cfg.NumEnvs; iter++ {
		parent := pool[rng.Intn(len(pool))]
		child := mutate(parent, rng)
		clean, interesting := tryEnv(child)
		if !clean {
			continue
		}
		pool = append(pool, child)
		if interesting {
			out = append(out, child)
		}
	}
	// If coverage saturated before reaching NumEnvs, top up with clean
	// mutants so callers still get K environments.
	for iter := 0; iter < cfg.MaxIters && len(out) < cfg.NumEnvs; iter++ {
		child := mutate(pool[rng.Intn(len(pool))], rng)
		if clean, _ := tryEnv(child); clean {
			out = append(out, child)
		}
	}
	if len(out) > cfg.NumEnvs {
		out = out[:cfg.NumEnvs]
	}
	return out
}

// mutate produces a child environment: byte-level buffer mutations plus
// occasional small scalar-argument tweaks.
func mutate(parent *minic.Env, rng *rand.Rand) *minic.Env {
	child := parent.Clone()
	nMut := 1 + rng.Intn(8)
	for i := 0; i < nMut; i++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3: // flip random byte
			if len(child.Data) > 0 {
				child.Data[rng.Intn(len(child.Data))] ^= byte(1 << rng.Intn(8))
			}
		case 4, 5: // overwrite with random byte
			if len(child.Data) > 0 {
				child.Data[rng.Intn(len(child.Data))] = byte(rng.Intn(256))
			}
		case 6: // splice a small run
			if len(child.Data) > 4 {
				at := rng.Intn(len(child.Data) - 4)
				v := byte(rng.Intn(256))
				for k := 0; k < 4; k++ {
					child.Data[at+k] = v
				}
			}
		case 7: // tweak the length-like argument
			if len(child.Args) > 1 {
				child.Args[1] = int64(rng.Intn(argMutationBound))
			}
		default: // tweak a trailing scalar argument within the valid range
			if len(child.Args) > 2 {
				idx := 2 + rng.Intn(len(child.Args)-2)
				child.Args[idx] = int64(rng.Intn(2*argMutationBound) - argMutationBound/4)
			}
		}
	}
	return child
}
