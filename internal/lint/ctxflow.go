// The ctxflow analyzer: cancellation must flow from the caller down, never
// be re-rooted mid-pipeline. A context.Background() minted inside a library
// detaches everything below it from the job deadline, the scan watchdog and
// SIGTERM — the engine's cancellation guarantees only hold because every
// layer threads the context it was handed.

package lint

import (
	"go/ast"
	"go/types"
)

// CtxFlow enforces context discipline module-wide:
//
//   - a function that receives a context.Context must not call
//     context.Background()/TODO(): thread the parameter (or a context
//     derived from it) instead;
//   - non-main packages must not mint context.Background()/TODO() at all —
//     roots belong to main() and tests. Deliberate roots (the server's job
//     contexts, nil-ctx API fallbacks) carry allow directives.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "thread contexts through; no context.Background/TODO in library code",
	Run:  runCtxFlow,
}

func runCtxFlow(p *Pass) {
	isMain := p.Pkg.Name() == "main"
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok {
				return true
			}
			if fd.Body == nil {
				return false
			}
			hasCtx := funcHasCtxParam(p.Info, fd)
			ast.Inspect(fd.Body, func(m ast.Node) bool {
				// Nested function literals share the enclosing declaration's
				// verdict: a closure inside a ctx-taking function still has
				// the parameter in scope.
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				name := ""
				switch {
				case isPkgFunc(p.Info, call, "context", "Background"):
					name = "Background"
				case isPkgFunc(p.Info, call, "context", "TODO"):
					name = "TODO"
				default:
					return true
				}
				switch {
				case hasCtx:
					p.Reportf(call.Pos(), "context.%s inside a function that already receives a context; thread the parameter instead", name)
				case !isMain:
					p.Reportf(call.Pos(), "library package mints context.%s; accept a context from the caller", name)
				}
				return true
			})
			return false
		})
	}
}

// funcHasCtxParam reports whether the declaration takes a context.Context
// parameter (including a receiver of that type, which never happens in
// practice but costs nothing to cover).
func funcHasCtxParam(info *types.Info, fd *ast.FuncDecl) bool {
	obj := info.Defs[fd.Name]
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig := fn.Type().(*types.Signature)
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
