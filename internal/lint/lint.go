// Package lint is the repo's invariant lint suite: a set of static-analysis
// passes that move the engine's load-bearing guarantees — byte-identical
// reports at any worker count, a retryable error taxonomy, disciplined
// context threading, atomic counter hygiene — from the golden/chaos test
// suites (which catch violations after the fact) to compile time.
//
// The framework mirrors golang.org/x/tools/go/analysis in miniature but is
// pure stdlib, because this module vendors nothing: an Analyzer inspects one
// type-checked package through a Pass and reports Diagnostics. The
// cmd/patcheckovet driver speaks `go vet -vettool` protocol, so the whole
// suite runs as `go vet -vettool=bin/patcheckovet ./...` (see `make lint`).
//
// # Escape directive
//
// An intentional violation is annotated at the offending line (or the line
// directly above it) with
//
//	//patchecko:allow <analyzer> <reason>
//
// The reason is mandatory; a directive without one, naming an unknown
// analyzer, or suppressing nothing is itself a diagnostic, so stale
// annotations cannot accumulate. internal/lint/selftest keeps one
// deliberately-allowed violation per analyzer so CI proves both halves:
// the analyzers still fire, and the directives still suppress.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one invariant pass. Run inspects the package behind the Pass
// and reports violations through Pass.Report; it must not retain the Pass.
type Analyzer struct {
	Name string // short lower-case identifier, used in directives and output
	Doc  string // one-line summary of the enforced invariant
	Run  func(*Pass)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// Reportf records a violation at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one reported violation, post-suppression.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// Analyzers is the full suite in reporting order.
var Analyzers = []*Analyzer{
	Determinism,
	ErrTaxonomy,
	CtxFlow,
	AtomicCounter,
}

// DirectivePrefix marks an escape-directive comment.
const DirectivePrefix = "//patchecko:allow"

// directive is one parsed //patchecko:allow comment.
type directive struct {
	file     string
	line     int
	analyzer string
	reason   string
	pos      token.Pos
	used     bool
}

// parseDirectives collects every //patchecko:allow comment in the files.
// Malformed directives (no analyzer, no reason, unknown analyzer) are
// reported immediately under the pseudo-analyzer "directive".
func parseDirectives(fset *token.FileSet, files []*ast.File, analyzers []*Analyzer, diags *[]Diagnostic) []*directive {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	bad := func(pos token.Pos, format string, args ...any) {
		*diags = append(*diags, Diagnostic{
			Analyzer: "directive",
			Pos:      fset.Position(pos),
			Message:  fmt.Sprintf(format, args...),
		})
	}
	var out []*directive
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, DirectivePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, DirectivePrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //patchecko:allowance — not ours
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					bad(c.Pos(), "malformed %s directive: missing analyzer name", DirectivePrefix)
					continue
				}
				name := fields[0]
				if !known[name] {
					bad(c.Pos(), "%s names unknown analyzer %q", DirectivePrefix, name)
					continue
				}
				reason := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), name))
				if reason == "" {
					bad(c.Pos(), "%s %s needs a reason", DirectivePrefix, name)
					continue
				}
				p := fset.Position(c.Pos())
				out = append(out, &directive{
					file:     p.Filename,
					line:     p.Line,
					analyzer: name,
					reason:   reason,
					pos:      c.Pos(),
				})
			}
		}
	}
	return out
}

// Unit is one package ready for analysis.
type Unit struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Run executes the analyzers over the unit, applying the escape directives
// and the per-analyzer package scope (see scope.go; scoped == false bypasses
// scoping, which the fixture tests rely on). Diagnostics come back sorted by
// position, suppressed ones removed, with one extra diagnostic per directive
// that suppressed nothing.
func Run(u *Unit, analyzers []*Analyzer, scoped bool) []Diagnostic {
	var raw []Diagnostic
	directives := parseDirectives(u.Fset, u.Files, analyzers, &raw)

	// Skip test files: the invariants guard shipped pipeline code; tests
	// legitimately mint contexts, measure wall-clock and copy fixtures.
	files := make([]*ast.File, 0, len(u.Files))
	for _, f := range u.Files {
		if strings.HasSuffix(u.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		files = append(files, f)
	}

	ranByName := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		if scoped && !InScope(a.Name, u.Pkg.Path()) {
			continue
		}
		ranByName[a.Name] = true
		pass := &Pass{
			Analyzer: a,
			Fset:     u.Fset,
			Files:    files,
			Pkg:      u.Pkg,
			Info:     u.Info,
			diags:    &raw,
		}
		a.Run(pass)
	}

	// Suppress diagnostics covered by a directive on the same line or the
	// line directly above, and mark those directives used.
	var out []Diagnostic
	for _, d := range raw {
		suppressed := false
		for _, dir := range directives {
			if dir.analyzer != d.Analyzer || dir.file != d.Pos.Filename {
				continue
			}
			if dir.line == d.Pos.Line || dir.line == d.Pos.Line-1 {
				dir.used = true
				suppressed = true
			}
		}
		if !suppressed {
			out = append(out, d)
		}
	}

	// A directive that suppressed nothing is stale — either the violation is
	// gone (delete the directive) or the analyzer it pins has regressed.
	// Only enforced for analyzers that actually ran on this package, so a
	// directive is never "unused" merely because its analyzer is out of
	// scope here.
	for _, dir := range directives {
		if !dir.used && ranByName[dir.analyzer] {
			out = append(out, Diagnostic{
				Analyzer: "directive",
				Pos:      u.Fset.Position(dir.pos),
				Message: fmt.Sprintf("%s %s suppresses nothing; delete it or restore the violation it covered",
					DirectivePrefix, dir.analyzer),
			})
		}
	}

	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
	return out
}

// NewInfo returns a types.Info with every map the analyzers consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// calleeFunc resolves a call expression to the package-level function or
// method object it invokes, or nil for indirect calls, conversions and
// builtins.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// isPkgFunc reports whether the call invokes the named package-level
// function (e.g. "time", "Now").
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	fn := calleeFunc(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath && fn.Name() == name && fn.Type().(*types.Signature).Recv() == nil
}
