// Per-analyzer package scope. The analyzers themselves are scope-free; the
// drivers (cmd/patcheckovet and the selftest harness) consult InScope so an
// invariant is only enforced where it is load-bearing — e.g. the server may
// measure wall-clock and jitter its backoff, but the deterministic pipeline
// packages may not observe time at all.

package lint

import "strings"

// modulePath is this repository's module path; the scope tables are written
// against it so the vet driver and the in-process tests agree.
const modulePath = "repro"

// selftestPath hosts one deliberately-allowed violation per analyzer, so it
// is in every analyzer's scope: CI proves the analyzers fire AND the
// directives suppress (see selftest/selftest.go).
const selftestPath = modulePath + "/internal/lint/selftest"

// deterministicPkgs are the packages whose outputs must be byte-identical
// for any worker count, dedup setting and restart history: the scan engine
// and every stage below it, plus the obs layer whose counters are part of
// the golden contract. Wall-clock observation and global randomness are
// banned here outright; the engine's two stage-timing sites carry explicit
// allow directives (stage wall-clock is the one documented nondeterministic
// output).
var deterministicPkgs = []string{
	modulePath + "/patchecko",
	modulePath + "/internal/detector",
	modulePath + "/internal/diffengine",
	modulePath + "/internal/obs",
	modulePath + "/internal/cas",
	modulePath + "/internal/dynamic",
	modulePath + "/internal/emu",
	modulePath + "/internal/embed",
	modulePath + "/internal/annindex",
	modulePath + "/internal/compid",
	selftestPath,
}

// errPathPkgs are the packages whose errors feed ScanError classification
// and the server's retry budget: flattening a wrapped cause with %v there
// silently turns a retryable failure into a terminal one (or vice versa).
// The CLIs are included because their errors wrap engine errors on the way
// to the operator.
var errPathPkgs = []string{
	modulePath + "/patchecko",
	modulePath + "/internal/server",
	modulePath + "/internal/cas",
	modulePath + "/internal/dynamic",
	modulePath + "/internal/emu",
	modulePath + "/internal/diffengine",
	modulePath + "/internal/detector",
	modulePath + "/internal/vulndb",
	modulePath + "/cmd/",
	selftestPath,
}

// scopes maps analyzer name to the package paths (exact, or prefixes ending
// in "/") it runs on. Analyzers without an entry run module-wide.
var scopes = map[string][]string{
	"determinism": deterministicPkgs,
	"errtaxonomy": errPathPkgs,
}

// InScope reports whether the named analyzer applies to the package path.
// Unknown packages (outside the module) are never in scope.
func InScope(analyzer, pkgPath string) bool {
	if pkgPath != modulePath && !strings.HasPrefix(pkgPath, modulePath+"/") {
		return false
	}
	pats, ok := scopes[analyzer]
	if !ok {
		return true // module-wide analyzer
	}
	for _, p := range pats {
		if pkgPath == p || (strings.HasSuffix(p, "/") && strings.HasPrefix(pkgPath, p)) {
			return true
		}
	}
	return false
}
