// The determinism analyzer: no wall-clock, no global randomness, and no
// map-iteration order leaking into ordered output, inside the packages whose
// results must be byte-identical (see deterministicPkgs in scope.go).

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Determinism enforces the engine's reproducibility contract:
//
//   - time.Now / time.Since / time.Until are banned — stage timing in the
//     engine is the single documented exception and carries directives;
//   - the global math/rand source (rand.Intn, rand.Seed, ...) is banned;
//     seeded rand.New(rand.NewSource(seed)) instances are deterministic and
//     allowed;
//   - a `range` over a map whose body appends to a slice that is never
//     sorted afterwards, writes output, feeds obs counters/trace events, or
//     sends on a channel leaks nondeterministic iteration order. Collecting
//     keys and sorting them (the engine's canonical pattern) is fine.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "forbid wall-clock, global randomness and ordered use of map iteration in deterministic packages",
	Run:  runDeterminism,
}

// wallClockFuncs are the time package's wall-clock observers.
var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// seededRandFuncs are the math/rand constructors that build an explicitly
// seeded source; everything else at package level draws from the global
// source.
var seededRandFuncs = map[string]bool{"New": true, "NewSource": true}

func runDeterminism(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if fn := calleeFunc(p.Info, n); fn != nil && fn.Pkg() != nil && fn.Type().(*types.Signature).Recv() == nil {
					switch fn.Pkg().Path() {
					case "time":
						if wallClockFuncs[fn.Name()] {
							p.Reportf(n.Pos(), "time.%s observes the wall clock in a deterministic package", fn.Name())
						}
					case "math/rand", "math/rand/v2":
						if !seededRandFuncs[fn.Name()] {
							p.Reportf(n.Pos(), "rand.%s draws from the global random source; use a seeded rand.New(rand.NewSource(seed))", fn.Name())
						}
					}
				}
			case *ast.RangeStmt:
				checkMapRange(p, f, n)
			}
			return true
		})
	}
}

// checkMapRange reports a range over a map whose body feeds an
// order-sensitive sink.
func checkMapRange(p *Pass, file *ast.File, rng *ast.RangeStmt) {
	t := p.Info.Types[rng.X].Type
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			p.Reportf(n.Pos(), "channel send inside a map range publishes values in nondeterministic order")
		case *ast.CallExpr:
			checkMapRangeCall(p, file, rng, n)
		}
		return true
	})
}

func checkMapRangeCall(p *Pass, file *ast.File, rng *ast.RangeStmt, call *ast.CallExpr) {
	// append: fine only when the destination is sorted after collection
	// (key-collect-then-sort is the canonical deterministic pattern).
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" && isBuiltin(p.Info, id) {
		if len(call.Args) == 0 {
			return
		}
		switch first := ast.Unparen(call.Args[0]).(type) {
		case *ast.Ident:
			dest := appendTarget(p.Info, call.Args[0])
			if dest == nil {
				return
			}
			// A slice declared inside the loop body is rebuilt every
			// iteration; nothing accumulates across iterations, so order
			// cannot leak through it.
			if dest.Pos() >= rng.Body.Pos() && dest.Pos() < rng.Body.End() {
				return
			}
			if !sortedAfter(p, file, rng, dest) {
				p.Reportf(call.Pos(), "append to %s inside a map range, and %s is never sorted afterwards; iteration order leaks into the slice", dest.Name(), dest.Name())
			}
		case *ast.SelectorExpr, *ast.IndexExpr:
			// Accumulating into a field or a collection element: the analyzer
			// cannot see a later sort of that storage, so flag it.
			p.Reportf(call.Pos(), "append inside a map range records nondeterministic iteration order")
		default:
			// append to a fresh value (composite literal, conversion, call
			// result): per-iteration, nothing accumulates across iterations.
			_ = first
		}
		return
	}
	fn := calleeFunc(p.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	sig, _ := fn.Type().(*types.Signature)
	switch path := fn.Pkg().Path(); {
	case path == "fmt" && sig.Recv() == nil:
		// The Sprint family is pure; the Print/Fprint families write output.
		switch fn.Name() {
		case "Print", "Println", "Printf", "Fprint", "Fprintln", "Fprintf":
			p.Reportf(call.Pos(), "fmt.%s inside a map range writes output in nondeterministic order", fn.Name())
		}
	case path == modulePath+"/internal/obs":
		p.Reportf(call.Pos(), "obs call inside a map range feeds counters/trace events in nondeterministic order")
	}
}

// isBuiltin reports whether the identifier resolves to the language builtin
// of the same name (and not a shadowing declaration).
func isBuiltin(info *types.Info, id *ast.Ident) bool {
	_, ok := info.Uses[id].(*types.Builtin)
	return ok
}

// appendTarget resolves the variable a slice-append accumulates into, or nil
// when the destination is not a simple variable.
func appendTarget(info *types.Info, e ast.Expr) *types.Var {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		if v, ok := info.Uses[id].(*types.Var); ok {
			return v
		}
	}
	return nil
}

// sortedAfter reports whether dest is passed to a sort/slices ordering
// function after the range statement, anywhere inside the function (or
// file-level scope) enclosing it.
func sortedAfter(p *Pass, file *ast.File, rng *ast.RangeStmt, dest *types.Var) bool {
	enclosing := enclosingFunc(file, rng.Pos())
	if enclosing == nil {
		return false
	}
	sorted := false
	ast.Inspect(enclosing, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() || len(call.Args) == 0 {
			return true
		}
		fn := calleeFunc(p.Info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if path := fn.Pkg().Path(); path != "sort" && path != "slices" {
			return true
		}
		// Any sort/slices function taking dest as an argument counts:
		// sort.Strings, sort.Slice, slices.Sort, slices.SortFunc, ...
		for _, arg := range call.Args {
			if appendTarget(p.Info, arg) == dest {
				sorted = true
				return false
			}
		}
		return true
	})
	return sorted
}

// enclosingFunc finds the innermost function declaration or literal
// containing pos.
func enclosingFunc(file *ast.File, pos token.Pos) ast.Node {
	var best ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			if n.Pos() <= pos && pos < n.End() {
				best = n
			}
		}
		return true
	})
	return best
}
