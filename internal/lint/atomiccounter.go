// The atomiccounter analyzer: a counter field is either atomic everywhere
// or atomic nowhere. One plain `s.n++` next to an atomic.AddInt64(&s.n, 1)
// is a data race the race detector only catches when both sides actually
// collide under test; statically the mix is always wrong. The second half
// is a copylocks check: values containing sync primitives or sync/atomic
// types must move by pointer.

package lint

import (
	"go/ast"
	"go/types"
)

// AtomicCounter enforces concurrency hygiene module-wide:
//
//   - a struct field passed to sync/atomic functions anywhere in the
//     package must never be read or written non-atomically elsewhere
//     (snapshot paths that rely on external synchronization carry allow
//     directives);
//   - methods, parameters and assignments must not copy values whose type
//     (transitively) contains a sync lock or a sync/atomic type.
var AtomicCounter = &Analyzer{
	Name: "atomiccounter",
	Doc:  "no mixed atomic/plain access to counter fields; no copying of lock-bearing values",
	Run:  runAtomicCounter,
}

func runAtomicCounter(p *Pass) {
	atomicFields := collectAtomicFields(p)
	for _, f := range p.Files {
		checkMixedAccess(p, f, atomicFields)
		checkLockCopies(p, f)
	}
}

// collectAtomicFields gathers every struct field whose address is passed to
// a sync/atomic function somewhere in the package, along with the selector
// nodes of those sanctioned accesses.
func collectAtomicFields(p *Pass) map[*types.Var]bool {
	fields := make(map[*types.Var]bool)
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p.Info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				if v := addressedField(p.Info, arg); v != nil {
					fields[v] = true
				}
			}
			return true
		})
	}
	return fields
}

// addressedField resolves &x.f to f's field object.
func addressedField(info *types.Info, e ast.Expr) *types.Var {
	un, ok := ast.Unparen(e).(*ast.UnaryExpr)
	if !ok || un.Op.String() != "&" {
		return nil
	}
	sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	return selectedField(info, sel)
}

// selectedField returns the struct field a selector names, or nil.
func selectedField(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	return v
}

// checkMixedAccess reports selectors of atomically-accessed fields that are
// not themselves inside a sync/atomic call argument.
func checkMixedAccess(p *Pass, f *ast.File, atomicFields map[*types.Var]bool) {
	if len(atomicFields) == 0 {
		return
	}
	// Sanctioned selector nodes: those under &x.f arguments of atomic calls.
	sanctioned := make(map[*ast.SelectorExpr]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(p.Info, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
			return true
		}
		for _, arg := range call.Args {
			if un, ok := ast.Unparen(arg).(*ast.UnaryExpr); ok && un.Op.String() == "&" {
				if sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr); ok {
					sanctioned[sel] = true
				}
			}
		}
		return true
	})
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || sanctioned[sel] {
			return true
		}
		v := selectedField(p.Info, sel)
		if v == nil || !atomicFields[v] {
			return true
		}
		p.Reportf(sel.Sel.Pos(), "field %s is accessed with sync/atomic elsewhere in this package; this plain access races with it", v.Name())
		return true
	})
}

// checkLockCopies reports by-value receivers/params of lock-bearing types
// and assignments that copy a lock-bearing value out of a dereference.
func checkLockCopies(p *Pass, f *ast.File) {
	seen := make(map[types.Type]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			obj, ok := p.Info.Defs[n.Name].(*types.Func)
			if !ok {
				return true
			}
			sig := obj.Type().(*types.Signature)
			if recv := sig.Recv(); recv != nil {
				if why := lockPath(recv.Type(), seen); why != "" {
					p.Reportf(n.Name.Pos(), "method %s has a by-value receiver carrying %s; use a pointer receiver", obj.Name(), why)
				}
			}
			for i := 0; i < sig.Params().Len(); i++ {
				prm := sig.Params().At(i)
				if why := lockPath(prm.Type(), seen); why != "" {
					p.Reportf(n.Name.Pos(), "parameter %s of %s is passed by value but carries %s; pass a pointer", prm.Name(), obj.Name(), why)
				}
			}
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				if _, ok := ast.Unparen(rhs).(*ast.StarExpr); !ok {
					continue
				}
				t := p.Info.Types[rhs].Type
				if t == nil {
					continue
				}
				if why := lockPath(t, seen); why != "" {
					p.Reportf(rhs.Pos(), "dereference copies a value carrying %s", why)
				}
			}
		}
		return true
	})
}

// lockTypeNames are the uncopyable sync and sync/atomic types.
var lockTypeNames = map[string]map[string]bool{
	"sync": {
		"Mutex": true, "RWMutex": true, "WaitGroup": true, "Once": true,
		"Cond": true, "Map": true,
	},
	"sync/atomic": {
		"Bool": true, "Int32": true, "Int64": true, "Uint32": true,
		"Uint64": true, "Uintptr": true, "Pointer": true, "Value": true,
	},
}

// lockPath describes the first lock-bearing component found inside t
// (transitively through structs and arrays), or "" when t is freely
// copyable. seen guards against recursive types.
func lockPath(t types.Type, seen map[types.Type]bool) string {
	if seen[t] {
		return ""
	}
	seen[t] = true
	defer delete(seen, t)
	switch u := t.(type) {
	case *types.Named:
		obj := u.Obj()
		if obj.Pkg() != nil {
			if names, ok := lockTypeNames[obj.Pkg().Path()]; ok && names[obj.Name()] {
				return obj.Pkg().Name() + "." + obj.Name()
			}
		}
		return lockPath(u.Underlying(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if why := lockPath(u.Field(i).Type(), seen); why != "" {
				return why
			}
		}
	case *types.Array:
		return lockPath(u.Elem(), seen)
	}
	return ""
}
