// Fixture for the errtaxonomy analyzer: error causes must stay classifiable
// through the chain (%w, sentinels), never flattened to strings.
package errtaxonomy

import (
	"errors"
	"fmt"
)

// Package-level sentinels are the sanctioned errors.New use.
var ErrMissing = errors.New("missing")

func wrapped(err error) error {
	return fmt.Errorf("scan: %w", err) // ok
}

func flattened(err error) error {
	return fmt.Errorf("scan: %v", err) // want `error argument formatted with %v severs the chain`
}

func stringified(err error) error {
	return fmt.Errorf("scan %s failed: %d", err, 3) // want `error argument formatted with %s severs the chain`
}

func adHoc() error {
	return errors.New("one-off") // want `errors\.New inside a function mints an unmatchable error`
}

func sprintfed(n int) error {
	return errors.New(fmt.Sprintf("bad %d", n)) // want `errors\.New\(fmt\.Sprintf\(\.\.\.\)\) severs the error chain`
}

func inClosure() func() error {
	return func() error {
		return errors.New("closure one-off") // want `errors\.New inside a function mints an unmatchable error`
	}
}

func dynamicFormat(f string, err error) error {
	return fmt.Errorf(f, err) // ok: dynamic format, left to go vet printf
}

func sentinelWrap(name string) error {
	return fmt.Errorf("object %q: %w", name, ErrMissing) // ok
}

var _ = []any{wrapped, flattened, stringified, adHoc, sprintfed, inClosure,
	dynamicFormat, sentinelWrap}
