// Fixture for the //patchecko:allow escape directive: suppression on the
// offending line and the line above, and the stale-directive diagnostic.
package directive

import "time"

func lineAbove() time.Time {
	//patchecko:allow determinism fixture: pins the line-above form
	return time.Now()
}

func sameLine() time.Time {
	return time.Now() //patchecko:allow determinism fixture: pins the same-line form
}

func unannotated() time.Time {
	return time.Now() // want `time\.Now observes the wall clock`
}

func wrongAnalyzer() time.Time {
	//patchecko:allow errtaxonomy a directive only covers its own analyzer // want `suppresses nothing`
	return time.Now() // want `time\.Now observes the wall clock`
}

// A well-formed directive covering no violation is itself a diagnostic.
//patchecko:allow determinism stale: nothing here violates anything // want `suppresses nothing`

//patchecko:allow nosuchanalyzer some reason // want `names unknown analyzer`

var _ = []any{lineAbove, sameLine, unannotated, wrongAnalyzer}
