// Fixture for the atomiccounter analyzer: no mixed atomic/plain field
// access, no copying lock-bearing values.
package atomiccounter

import (
	"sync"
	"sync/atomic"
)

type counters struct {
	hits int64
	name string
}

func (c *counters) bump() { atomic.AddInt64(&c.hits, 1) } // ok: the atomic side

func (c *counters) load() int64 { return atomic.LoadInt64(&c.hits) } // ok

func (c *counters) racyRead() int64 {
	return c.hits // want `field hits is accessed with sync/atomic elsewhere`
}

func (c *counters) racyWrite() {
	c.hits = 0 // want `field hits is accessed with sync/atomic elsewhere`
}

func (c *counters) title() string { return c.name } // ok: name is never atomic

type typed struct {
	n atomic.Int64
}

func (t *typed) bump() int64 { return t.n.Add(1) } // ok: typed atomics cannot be mixed

type guarded struct {
	mu sync.Mutex
	n  int
}

func (g guarded) byValue() int { // want `by-value receiver carrying sync\.Mutex`
	return g.n
}

func (g *guarded) byPointer() int { // ok
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

func snapshot(g guarded) int { // want `passed by value but carries sync\.Mutex`
	return g.n
}

func deref(p *guarded) {
	g := *p // want `dereference copies a value carrying sync\.Mutex`
	_ = g
}

type nested struct {
	inner guarded
}

func takeNested(n nested) int { // want `passed by value but carries sync\.Mutex`
	return n.inner.n
}

var _ = []any{(*counters).bump, (*counters).load, (*counters).racyRead,
	(*counters).racyWrite, (*counters).title, (*typed).bump, guarded.byValue,
	(*guarded).byPointer, snapshot, deref, takeNested}
