// Fixture for the ctxflow analyzer: contexts thread down from the caller;
// library code never re-roots.
package ctxflow

import "context"

func rethreaded(ctx context.Context) error {
	return work(ctx) // ok
}

func derived(ctx context.Context) error {
	sub, cancel := context.WithCancel(ctx) // ok: derived from the parameter
	defer cancel()
	return work(sub)
}

func reRooted(ctx context.Context) error {
	_ = ctx
	return work(context.Background()) // want `context\.Background inside a function that already receives a context`
}

func todoRooted(ctx context.Context) error {
	_ = ctx
	return work(context.TODO()) // want `context\.TODO inside a function that already receives a context`
}

func libraryMint() error {
	return work(context.Background()) // want `library package mints context\.Background`
}

func closureShares(ctx context.Context) func() error {
	_ = ctx
	return func() error {
		// The enclosing declaration receives a context, so the closure does too.
		return work(context.Background()) // want `context\.Background inside a function that already receives a context`
	}
}

func work(ctx context.Context) error {
	return ctx.Err()
}

var _ = []any{rethreaded, derived, reRooted, todoRooted, libraryMint, closureShares}
