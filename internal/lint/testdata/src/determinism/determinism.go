// Fixture for the determinism analyzer: wall-clock, global randomness, and
// map-iteration order leaking into ordered sinks.
package determinism

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

func wallClock() time.Time {
	return time.Now() // want `time\.Now observes the wall clock`
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time\.Since observes the wall clock`
}

func deadline(t0 time.Time) time.Duration {
	return time.Until(t0) // want `time\.Until observes the wall clock`
}

func globalRand() int {
	return rand.Intn(6) // want `rand\.Intn draws from the global random source`
}

func seededRand(seed int64) int {
	r := rand.New(rand.NewSource(seed)) // ok: explicitly seeded source
	return r.Intn(6)                    // ok: method on the seeded source
}

func leakedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to keys inside a map range`
	}
	return keys
}

func sortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // ok: sorted below, the canonical pattern
	}
	sort.Strings(keys)
	return keys
}

func channelLeak(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k // want `channel send inside a map range`
	}
}

func printLeak(m map[string]int) {
	for k := range m {
		fmt.Println(k) // want `fmt\.Println inside a map range`
	}
}

func sprintOK(m map[string]int) map[string]string {
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = fmt.Sprintf("%d", v) // ok: Sprint family is pure
	}
	return out
}

func freshPerIteration(m map[string][]int) map[string][]int {
	out := make(map[string][]int, len(m))
	for k, vs := range m {
		out[k] = append([]int(nil), vs...) // ok: fresh slice each iteration
	}
	return out
}

func loopLocal(m map[string]string) int {
	total := 0
	for k := range m {
		var parts []byte
		parts = append(parts, k...) // ok: accumulator lives inside the loop
		total += len(parts)
	}
	return total
}

// Keep every fixture function referenced so the package compiles vet-clean.
var _ = []any{wallClock, elapsed, deadline, globalRand, seededRand, leakedKeys,
	sortedKeys, channelLeak, printLeak, sprintOK, freshPerIteration, loopLocal}
