// Package selftest pins the invariant lint suite against regressions: it
// carries exactly one deliberate violation per analyzer, each suppressed by
// a //patchecko:allow directive. The suite treats a directive that
// suppresses nothing as a diagnostic, so this package keeps CI honest in
// both directions: if an analyzer stops firing, its directive here goes
// stale and `make lint` fails; if directives stop suppressing, the
// violations here surface and `make lint` fails. The package-level tests in
// internal/lint additionally strip these directives and require every
// violation to resurface (the negative path).
//
// Nothing here is called at runtime; the functions exist only to be
// analyzed.
package selftest

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"
)

// wallClock trips determinism: time.Now in a deterministic-scoped package.
func wallClock() time.Time {
	//patchecko:allow determinism selftest: pins the wall-clock ban
	return time.Now()
}

// globalRand trips determinism's global-randomness ban.
func globalRand() int {
	//patchecko:allow determinism selftest: pins the global math/rand ban
	return rand.Intn(10)
}

// orderLeak trips determinism's map-iteration check: the slice collected
// from the map range is never sorted.
func orderLeak(m map[string]int) []string {
	var keys []string
	for k := range m {
		//patchecko:allow determinism selftest: pins the unsorted map-range check
		keys = append(keys, k)
	}
	return keys
}

// flattenedCause trips errtaxonomy: an error-typed argument formatted with
// %v instead of %w.
func flattenedCause(err error) error {
	//patchecko:allow errtaxonomy selftest: pins the %w chain check
	return fmt.Errorf("scan failed: %v", err)
}

// adHocError trips errtaxonomy's in-function errors.New check.
func adHocError() error {
	//patchecko:allow errtaxonomy selftest: pins the sentinel check
	return errors.New("unmatchable one-off failure")
}

// reRooted trips ctxflow: a function that receives a context and mints a
// fresh root anyway.
func reRooted(ctx context.Context) context.Context {
	//patchecko:allow ctxflow selftest: pins the context-threading check
	return context.Background()
}

// counters is the shape the atomiccounter analyzer guards: n is accessed
// through sync/atomic in touch, so every other access must be atomic too.
type counters struct {
	n int64
}

func (c *counters) touch() { atomic.AddInt64(&c.n, 1) }

// mixedRead trips atomiccounter with a plain read of the atomic field.
func (c *counters) mixedRead() int64 {
	//patchecko:allow atomiccounter selftest: pins the mixed-access check
	return c.n
}

// Silence "declared and not used" style review noise: the suite analyzes
// these, nothing executes them.
var _ = []any{wallClock, globalRand, orderLeak, flattenedCause, adHocError, reRooted, (*counters).touch, (*counters).mixedRead}
