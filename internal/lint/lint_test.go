package lint

// Fixture harness in the style of x/tools' analysistest, stdlib-only: each
// directory under testdata/src is parsed and type-checked with the source
// importer (fixtures import only the standard library, so this needs no
// export data and no network), the analyzers under test run unscoped, and
// the diagnostics are matched against `// want "regexp"` comments on the
// offending lines. Every diagnostic must be wanted and every want must be
// hit.

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// The source importer compiles stdlib dependencies from $GOROOT/src and
// caches them, so it is shared across all tests (it is bound to one
// FileSet, which the loads share too).
var (
	fixtureFset     = token.NewFileSet()
	importerOnce    sync.Once
	fixtureImporter types.Importer
)

func sourceImporter() types.Importer {
	importerOnce.Do(func() {
		fixtureImporter = importer.ForCompiler(fixtureFset, "source", nil)
	})
	return fixtureImporter
}

// loadFiles parses and type-checks a set of (filename, source) pairs as one
// package. src == nil reads the file from disk.
func loadFiles(t *testing.T, pkgPath string, names []string, srcs []any) *Unit {
	t.Helper()
	files := make([]*ast.File, 0, len(names))
	for i, name := range names {
		f, err := parser.ParseFile(fixtureFset, name, srcs[i], parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		files = append(files, f)
	}
	info := NewInfo()
	tc := &types.Config{Importer: sourceImporter()}
	pkg, err := tc.Check(pkgPath, fixtureFset, files, info)
	if err != nil {
		t.Fatalf("typecheck %s: %v", pkgPath, err)
	}
	return &Unit{Fset: fixtureFset, Files: files, Pkg: pkg, Info: info}
}

// loadDir loads every .go file of a directory as one package.
func loadDir(t *testing.T, dir, pkgPath string) *Unit {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	var srcs []any
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		names = append(names, filepath.Join(dir, e.Name()))
		srcs = append(srcs, nil)
	}
	if len(names) == 0 {
		t.Fatalf("no Go files in %s", dir)
	}
	return loadFiles(t, pkgPath, names, srcs)
}

// expectation is one parsed `// want` comment.
type expectation struct {
	file string // base name
	line int
	re   *regexp.Regexp
	hit  bool
}

var (
	wantRE  = regexp.MustCompile(`//\s*want\s+(.+)$`)
	tokenRE = regexp.MustCompile("`[^`]+`|\"(?:[^\"\\\\]|\\\\.)*\"")
)

// parseWants scans the fixture sources for `// want "re"` / `// want `re“
// comments. Several patterns on one line expect several diagnostics there.
func parseWants(t *testing.T, dir string) []*expectation {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wants []*expectation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			toks := tokenRE.FindAllString(m[1], -1)
			if len(toks) == 0 {
				t.Fatalf("%s:%d: want comment with no quoted pattern", e.Name(), i+1)
			}
			for _, tok := range toks {
				pat := tok[1 : len(tok)-1]
				if tok[0] == '"' {
					if pat, err = strconv.Unquote(tok); err != nil {
						t.Fatalf("%s:%d: bad want pattern %s: %v", e.Name(), i+1, tok, err)
					}
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", e.Name(), i+1, pat, err)
				}
				wants = append(wants, &expectation{file: e.Name(), line: i + 1, re: re})
			}
		}
	}
	return wants
}

// checkFixture runs analyzers (unscoped) over testdata/src/<name> and
// matches diagnostics against the fixture's want comments, both ways.
func checkFixture(t *testing.T, name string, analyzers []*Analyzer) {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	unit := loadDir(t, dir, name)
	diags := Run(unit, analyzers, false)
	wants := parseWants(t, dir)
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.hit || w.file != filepath.Base(d.Pos.Filename) || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %v", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matched %q", w.file, w.line, w.re)
		}
	}
}

func TestDeterminismFixture(t *testing.T) {
	checkFixture(t, "determinism", []*Analyzer{Determinism})
}

func TestErrTaxonomyFixture(t *testing.T) {
	checkFixture(t, "errtaxonomy", []*Analyzer{ErrTaxonomy})
}

func TestCtxFlowFixture(t *testing.T) {
	checkFixture(t, "ctxflow", []*Analyzer{CtxFlow})
}

func TestAtomicCounterFixture(t *testing.T) {
	checkFixture(t, "atomiccounter", []*Analyzer{AtomicCounter})
}

func TestDirectiveFixture(t *testing.T) {
	checkFixture(t, "directive", Analyzers)
}

// TestMalformedDirectives covers the directive shapes that cannot carry a
// want comment on their own line (a reason would swallow it).
func TestMalformedDirectives(t *testing.T) {
	const src = `package p

import "time"

func a() time.Time {
	//patchecko:allow
	return time.Now()
}

func b() time.Time {
	//patchecko:allow determinism
	return time.Now()
}
`
	unit := loadFiles(t, "p", []string{"malformed.go"}, []any{src})
	diags := Run(unit, Analyzers, false)
	var msgs []string
	for _, d := range diags {
		msgs = append(msgs, d.Message)
	}
	joined := strings.Join(msgs, "\n")
	for _, want := range []string{
		"missing analyzer name",
		"needs a reason",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("diagnostics missing %q:\n%s", want, joined)
		}
	}
	// Neither malformed directive suppresses, so both time.Now calls fire.
	fired := 0
	for _, d := range diags {
		if d.Analyzer == "determinism" {
			fired++
		}
	}
	if fired != 2 {
		t.Errorf("got %d determinism diagnostics, want 2 (malformed directives must not suppress):\n%s", fired, joined)
	}
}

// TestOutOfScopeDirectiveNotStale: a directive for an analyzer that does not
// run on the package (scoped mode) must not be reported as unused.
func TestOutOfScopeDirectiveNotStale(t *testing.T) {
	const src = `package isa

import "time"

// The determinism analyzer does not run here, so this directive covers a
// call the suite never inspects — and must not count as stale.
func now() time.Time {
	//patchecko:allow determinism out-of-scope package
	return time.Now()
}
`
	unit := loadFiles(t, modulePath+"/internal/isa", []string{"isa.go"}, []any{src})
	if diags := Run(unit, Analyzers, true); len(diags) != 0 {
		t.Errorf("out-of-scope package produced diagnostics: %v", diags)
	}
}

// TestScope pins the per-analyzer package scoping policy.
func TestScope(t *testing.T) {
	cases := []struct {
		analyzer, pkg string
		want          bool
	}{
		{"determinism", modulePath + "/patchecko", true},
		{"determinism", modulePath + "/internal/obs", true},
		{"determinism", modulePath + "/internal/server", false}, // jitter/backoff are operational
		{"determinism", selftestPath, true},
		{"errtaxonomy", modulePath + "/internal/server", true},
		{"errtaxonomy", modulePath + "/cmd/patchecko", true}, // prefix match
		{"errtaxonomy", modulePath + "/internal/isa", false},
		{"ctxflow", modulePath + "/internal/isa", true}, // module-wide
		{"atomiccounter", modulePath + "/internal/isa", true},
	}
	for _, c := range cases {
		if got := InScope(c.analyzer, c.pkg); got != c.want {
			t.Errorf("InScope(%s, %s) = %v, want %v", c.analyzer, c.pkg, got, c.want)
		}
	}
}

func selftestSource(t *testing.T) (string, string) {
	t.Helper()
	path := filepath.Join("selftest", "selftest.go")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return path, string(data)
}

// TestSelftestClean: with its directives intact, the selftest package must
// produce zero diagnostics under the full scoped suite — exactly what
// `make lint` sees.
func TestSelftestClean(t *testing.T) {
	path, src := selftestSource(t)
	unit := loadFiles(t, selftestPath, []string{path}, []any{src})
	if diags := Run(unit, Analyzers, true); len(diags) != 0 {
		t.Errorf("selftest with directives produced diagnostics:\n%s", diagLines(diags))
	}
}

// TestSelftestViolationsResurface is the negative path: strip every allow
// directive from the selftest sources and every deliberate violation must
// come back, at least one per analyzer. If an analyzer's violation stops
// resurfacing, the analyzer has regressed.
func TestSelftestViolationsResurface(t *testing.T) {
	path, src := selftestSource(t)
	stripped := strings.ReplaceAll(src, DirectivePrefix, "// directive stripped:")
	unit := loadFiles(t, selftestPath, []string{path}, []any{stripped})
	diags := Run(unit, Analyzers, true)
	perAnalyzer := make(map[string]int)
	for _, d := range diags {
		perAnalyzer[d.Analyzer]++
	}
	for _, a := range Analyzers {
		if perAnalyzer[a.Name] == 0 {
			t.Errorf("stripping directives surfaced no %s diagnostics; its selftest violation or the analyzer is broken", a.Name)
		}
	}
	// One per deliberate violation; see selftest.go.
	if len(diags) != 7 {
		t.Errorf("got %d diagnostics from stripped selftest, want 7:\n%s", len(diags), diagLines(diags))
	}
}

func diagLines(diags []Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		fmt.Fprintf(&b, "  %v\n", d)
	}
	return b.String()
}
