// The errtaxonomy analyzer: errors on the scan-cell/prepare/reference paths
// must keep their cause chain intact, because ScanError classification
// (classify in patchecko/errors.go) and the server's retry budget walk the
// chain with errors.Is/As. Flattening a cause with %v produces a string that
// still reads fine in a log but silently turns a trap into FailInternal and
// a cancellation into a retryable failure.

package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// ErrTaxonomy enforces the error taxonomy on the error-path packages (see
// errPathPkgs in scope.go):
//
//   - fmt.Errorf must format error-typed arguments with %w, never %v/%s/%q:
//     any other verb severs the chain that classify() and Retryable() walk;
//   - errors.New inside a function body mints an unmatchable one-off error;
//     declare a package-level sentinel (usable with errors.Is), return a
//     typed ScanError, or wrap a cause with %w;
//   - errors.New(fmt.Sprintf(...)) is fmt.Errorf with extra steps and the
//     same chain-severing problem.
var ErrTaxonomy = &Analyzer{
	Name: "errtaxonomy",
	Doc:  "keep error chains classifiable: %w for causes, sentinels over ad-hoc errors.New",
	Run:  runErrTaxonomy,
}

func runErrTaxonomy(p *Pass) {
	errorIface := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	for _, f := range p.Files {
		// Package-level var initializers may mint sentinels; function bodies
		// may not. Track the nodes under a FuncDecl/FuncLit.
		var funcDepth int
		var inspect func(n ast.Node) bool
		inspect = func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl, *ast.FuncLit:
				funcDepth++
				if body := funcBody(n); body != nil {
					ast.Inspect(body, inspect)
				}
				funcDepth--
				return false
			case *ast.CallExpr:
				switch {
				case isPkgFunc(p.Info, n, "fmt", "Errorf"):
					checkErrorf(p, errorIface, n)
				case isPkgFunc(p.Info, n, "errors", "New"):
					if funcDepth > 0 {
						msg := "errors.New inside a function mints an unmatchable error; declare a package-level sentinel, return a typed ScanError, or wrap a cause with %w"
						if len(n.Args) == 1 {
							if inner, ok := ast.Unparen(n.Args[0]).(*ast.CallExpr); ok && isPkgFunc(p.Info, inner, "fmt", "Sprintf") {
								msg = "errors.New(fmt.Sprintf(...)) severs the error chain; use fmt.Errorf (with %w for causes)"
							}
						}
						p.Reportf(n.Pos(), "%s", msg)
					}
				}
			}
			return true
		}
		ast.Inspect(f, inspect)
	}
}

func funcBody(n ast.Node) ast.Node {
	switch n := n.(type) {
	case *ast.FuncDecl:
		if n.Body == nil {
			return nil
		}
		return n.Body
	case *ast.FuncLit:
		return n.Body
	}
	return nil
}

// checkErrorf verifies that every error-typed argument of a fmt.Errorf call
// is formatted with %w.
func checkErrorf(p *Pass, errorIface *types.Interface, call *ast.CallExpr) {
	if len(call.Args) < 2 {
		return
	}
	format, ok := constantString(p.Info, call.Args[0])
	if !ok {
		return // dynamic format string; nothing to line up verbs against
	}
	verbs, ok := formatVerbs(format)
	if !ok || len(verbs) != len(call.Args)-1 {
		return // indexed/starred/unbalanced format; leave it to go vet printf
	}
	for i, verb := range verbs {
		arg := call.Args[i+1]
		t := p.Info.Types[arg].Type
		if t == nil || !types.Implements(t, errorIface) {
			continue
		}
		if verb != 'w' {
			p.Reportf(arg.Pos(), "error argument formatted with %%%c severs the chain classify()/Retryable() walk; use %%w", verb)
		}
	}
}

// constantString evaluates e to a compile-time string, if it is one.
func constantString(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// formatVerbs extracts the argument-consuming verbs of a Printf-style
// format string in order. It bails out (false) on explicit argument indexes
// and * width/precision, which shift the verb/argument correspondence.
func formatVerbs(format string) ([]rune, bool) {
	var verbs []rune
	for i := 0; i < len(format); {
		if format[i] != '%' {
			i++
			continue
		}
		i++ // past '%'
		// flags
		for i < len(format) && strings.ContainsRune("+-# 0", rune(format[i])) {
			i++
		}
		// width / precision / index
		for i < len(format) && (format[i] == '.' || format[i] >= '0' && format[i] <= '9') {
			i++
		}
		if i >= len(format) {
			return nil, false
		}
		switch format[i] {
		case '%':
			i++
			continue
		case '*', '[':
			return nil, false
		}
		verbs = append(verbs, rune(format[i]))
		i++
	}
	return verbs, true
}
