// Flag plumbing for the CLIs, mirroring internal/profiling: commands call
// AddFlags, attach Collector() to their analyzer, and Write the artifacts
// on exit. When neither flag is given, Collector returns nil — the no-op
// sink — and Write does nothing.

package obs

import (
	"flag"
	"fmt"
	"os"
)

// Flags holds the observability output paths registered by AddFlags.
type Flags struct {
	Metrics string // run-manifest JSON path
	Trace   string // trace-event JSONL path

	m *Metrics
}

// AddFlags registers -metrics and -trace on the flag set.
func AddFlags(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.Metrics, "metrics", "", "write a run-manifest JSON (per-stage counters + wall-clock) to `file`")
	fs.StringVar(&f.Trace, "trace", "", "write structured trace events as JSONL to `file`")
	return f
}

// Enabled reports whether any observability output was requested.
func (f *Flags) Enabled() bool { return f.Metrics != "" || f.Trace != "" }

// Collector returns the sink to thread through the pipeline: a traced sink
// when -trace was given, a counters-only sink for -metrics alone, and nil
// (the no-op sink) when observability is off. The same sink is returned on
// every call.
func (f *Flags) Collector() *Metrics {
	if !f.Enabled() {
		return nil
	}
	if f.m == nil {
		if f.Trace != "" {
			f.m = NewTraced(0)
		} else {
			f.m = New()
		}
	}
	return f.m
}

// Write emits the requested artifacts: the run manifest to -metrics and the
// event JSONL to -trace. Safe to call when observability is off.
func (f *Flags) Write(info RunInfo) error {
	if !f.Enabled() {
		return nil
	}
	m := f.Collector()
	if f.Metrics != "" {
		if err := m.WriteManifest(f.Metrics, info); err != nil {
			return err
		}
	}
	if f.Trace != "" {
		file, err := os.Create(f.Trace)
		if err != nil {
			return fmt.Errorf("obs: %w", err)
		}
		werr := m.WriteJSONL(file)
		if cerr := file.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fmt.Errorf("obs: %s: %w", f.Trace, werr)
		}
	}
	return nil
}
