// Run manifests: a single JSON artifact identifying one scan or experiment
// run — what ran (tool, seed, scale, workers, model hash, VCS revision) and
// what it did (every counter, per-stage wall-clock totals, event-ring
// statistics). Later perf and robustness PRs diff these artifacts instead
// of re-deriving numbers from logs.

package obs

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
)

// RunInfo identifies the run a manifest describes. Zero fields are omitted
// from the artifact (a scan of on-disk artifacts has no seed or scale).
type RunInfo struct {
	Tool      string // e.g. "patchecko scan", "experiments"
	Seed      int64
	Scale     string
	Workers   int
	ModelHash string // content hash of the trained model (see ModelHash)
}

// StageTotal is one stage's accumulated wall-clock time.
type StageTotal struct {
	Stage  string `json:"stage"`
	WallNs int64  `json:"wall_ns"`
}

// Manifest is the run-manifest artifact.
type Manifest struct {
	Tool      string `json:"tool"`
	GoVersion string `json:"go_version"`
	Revision  string `json:"revision"` // VCS revision baked into the binary, or "unknown"
	Dirty     bool   `json:"dirty,omitempty"`

	Seed      int64  `json:"seed,omitempty"`
	Scale     string `json:"scale,omitempty"`
	Workers   int    `json:"workers,omitempty"`
	ModelHash string `json:"model_hash,omitempty"`

	Counters      map[string]int64 `json:"counters"`
	Stages        []StageTotal     `json:"stages"`
	Events        int              `json:"events"`
	EventsDropped uint64           `json:"events_dropped,omitempty"`
}

// Manifest snapshots the sink into a run manifest. Safe on a nil receiver
// (all counters zero).
func (m *Metrics) Manifest(info RunInfo) Manifest {
	rev, dirty := Revision()
	man := Manifest{
		Tool:      info.Tool,
		GoVersion: runtime.Version(),
		Revision:  rev,
		Dirty:     dirty,
		Seed:      info.Seed,
		Scale:     info.Scale,
		Workers:   info.Workers,
		ModelHash: info.ModelHash,
		Counters:  m.Counters(),
		Events:    len(m.Events()),
	}
	if m != nil {
		man.EventsDropped = m.Dropped()
	}
	for s := Stage(0); s < NumStages; s++ {
		man.Stages = append(man.Stages, StageTotal{Stage: s.String(), WallNs: m.StageNs(s)})
	}
	return man
}

// WriteManifest writes the manifest as indented JSON to path.
func (m *Metrics) WriteManifest(path string, info RunInfo) error {
	raw, err := json.MarshalIndent(m.Manifest(info), "", "  ")
	if err != nil {
		return fmt.Errorf("obs: %w", err)
	}
	if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
		return fmt.Errorf("obs: %w", err)
	}
	return nil
}

// Revision returns the VCS revision stamped into the running binary by the
// Go toolchain (the `git describe` stand-in: test binaries and `go run`
// builds carry no stamp and report "unknown").
func Revision() (rev string, dirty bool) {
	rev = "unknown"
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return rev, false
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	return rev, dirty
}

// ModelHash is the canonical content hash recorded in manifests for a
// serialized model (or any other artifact bytes).
func ModelHash(raw []byte) string {
	sum := sha256.Sum256(raw)
	return "sha256:" + hex.EncodeToString(sum[:])
}
