package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilSinkIsNoop pins the disabled-by-default contract: every method is
// safe and inert on a nil receiver.
func TestNilSinkIsNoop(t *testing.T) {
	var m *Metrics
	if m.Enabled() {
		t.Error("nil sink reports Enabled")
	}
	m.Add(CtrPairsScored, 42)
	m.AddStage(StageStatic, time.Second)
	m.Emit(Event{Kind: EvScanStarted})
	if got := m.Get(CtrPairsScored); got != 0 {
		t.Errorf("nil Get = %d, want 0", got)
	}
	if got := m.StageNs(StageStatic); got != 0 {
		t.Errorf("nil StageNs = %d, want 0", got)
	}
	if evs := m.Events(); evs != nil {
		t.Errorf("nil Events = %v, want nil", evs)
	}
	if d := m.Dropped(); d != 0 {
		t.Errorf("nil Dropped = %d, want 0", d)
	}
	var buf bytes.Buffer
	if err := m.WriteJSONL(&buf); err != nil || buf.Len() != 0 {
		t.Errorf("nil WriteJSONL wrote %q, err %v", buf.String(), err)
	}
	// Counters and Manifest still produce a complete (all-zero) view.
	ctrs := m.Counters()
	if len(ctrs) != int(NumCounters) {
		t.Errorf("nil Counters has %d entries, want %d", len(ctrs), NumCounters)
	}
	man := m.Manifest(RunInfo{Tool: "t"})
	if man.Counters["pairs_scored"] != 0 || len(man.Stages) != int(NumStages) {
		t.Errorf("nil Manifest malformed: %+v", man)
	}
}

// TestCountersAndStages exercises the live sink's aggregation, including
// concurrent adds.
func TestCountersAndStages(t *testing.T) {
	m := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				m.Add(CtrPairsScored, 2)
				m.AddStage(StageDynamic, time.Nanosecond)
			}
		}()
	}
	wg.Wait()
	if got := m.Get(CtrPairsScored); got != 16000 {
		t.Errorf("CtrPairsScored = %d, want 16000", got)
	}
	if got := m.StageNs(StageDynamic); got != 8000 {
		t.Errorf("StageNs(dynamic) = %d, want 8000", got)
	}
	if got := m.Counters()["pairs_scored"]; got != 16000 {
		t.Errorf("Counters()[pairs_scored] = %d, want 16000", got)
	}
	if !m.Enabled() {
		t.Error("live sink reports disabled")
	}
}

// TestCounterAndStageNames pins every enum value to a stable name — the
// manifest schema later PRs diff against.
func TestCounterAndStageNames(t *testing.T) {
	seen := make(map[string]bool)
	for c := Counter(0); c < NumCounters; c++ {
		name := c.String()
		if name == "" || strings.Contains(name, "?") {
			t.Errorf("counter %d has no name", c)
		}
		if seen[name] {
			t.Errorf("duplicate counter name %q", name)
		}
		seen[name] = true
	}
	if Counter(-1).String() != "counter(?)" || NumCounters.String() != "counter(?)" {
		t.Error("out-of-range counters must render as counter(?)")
	}
	for s := Stage(0); s < NumStages; s++ {
		if name := s.String(); name == "" || strings.Contains(name, "?") {
			t.Errorf("stage %d has no name", s)
		}
	}
	if Stage(-1).String() != "stage(?)" || NumStages.String() != "stage(?)" {
		t.Error("out-of-range stages must render as stage(?)")
	}
}

// TestRingRetainsAndDrops checks the bounded ring: seq numbers are global,
// the newest events win, and the drop count is exact.
func TestRingRetainsAndDrops(t *testing.T) {
	m := NewTraced(4)
	for i := 0; i < 10; i++ {
		m.Emit(Event{Kind: EvCellCompleted, Pairs: i})
	}
	evs := m.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		wantSeq := uint64(6 + i)
		if ev.Seq != wantSeq || ev.Pairs != 6+i {
			t.Errorf("event %d = seq %d pairs %d, want seq %d pairs %d",
				i, ev.Seq, ev.Pairs, wantSeq, 6+i)
		}
	}
	if d := m.Dropped(); d != 6 {
		t.Errorf("Dropped = %d, want 6", d)
	}
}

// TestEventJSONL checks the JSONL encoding round-trips, omits empty fields
// and keeps emission order.
func TestEventJSONL(t *testing.T) {
	m := NewTraced(0)
	m.Emit(Event{Kind: EvScanStarted, Device: "thingos-1.0", Arch: "xarm32", Images: 3, CVEs: 25})
	m.Emit(Event{Kind: EvCandidateExcluded, CVE: "CVE-1", Library: "lib", Mode: "vulnerable",
		Addr: 0x1000, Reason: "no environment completed"})
	m.Emit(Event{Kind: EvScanError, CVE: "CVE-2", Fail: "trap", Reason: "boom"})

	var buf bytes.Buffer
	if err := m.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	var lines []Event
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		lines = append(lines, ev)
	}
	if len(lines) != 3 {
		t.Fatalf("wrote %d lines, want 3", len(lines))
	}
	if lines[0].Kind != EvScanStarted || lines[0].Device != "thingos-1.0" || lines[0].CVEs != 25 {
		t.Errorf("line 0 round-trip drift: %+v", lines[0])
	}
	if lines[1].Kind != EvCandidateExcluded || lines[1].Addr != 0x1000 {
		t.Errorf("line 1 round-trip drift: %+v", lines[1])
	}
	if lines[2].Kind != EvScanError || lines[2].Fail != "trap" {
		t.Errorf("line 2 round-trip drift: %+v", lines[2])
	}

	// Empty fields must be omitted so traces stay compact.
	raw, _ := json.Marshal(Event{Kind: EvImagePrepared, Library: "lib", Funcs: 7})
	for _, forbidden := range []string{"cve", "reason", "addr", "confidence", "device"} {
		if bytes.Contains(raw, []byte(`"`+forbidden+`"`)) {
			t.Errorf("empty field %q not omitted: %s", forbidden, raw)
		}
	}

	// Unknown kinds fail loudly instead of decoding to garbage.
	var ev Event
	if err := json.Unmarshal([]byte(`{"seq":0,"kind":"nope"}`), &ev); err == nil {
		t.Error("unknown event kind decoded without error")
	}
	if EventKind(99).String() != "event(99)" {
		t.Errorf("out-of-range kind renders as %q", EventKind(99))
	}
}

// TestManifest checks the artifact's identity fields and snapshot totals.
func TestManifest(t *testing.T) {
	m := NewTraced(2)
	m.Add(CtrPairsScored, 800)
	m.Add(CtrStaticCandidates, 12)
	m.AddStage(StageStatic, 5*time.Millisecond)
	m.Emit(Event{Kind: EvScanStarted})
	m.Emit(Event{Kind: EvCellCompleted})
	m.Emit(Event{Kind: EvVerdictReached}) // overwrites the oldest

	man := m.Manifest(RunInfo{Tool: "test", Seed: 42, Scale: "tiny", Workers: 4, ModelHash: "sha256:ab"})
	if man.Tool != "test" || man.Seed != 42 || man.Scale != "tiny" || man.Workers != 4 {
		t.Errorf("identity fields drifted: %+v", man)
	}
	if man.GoVersion == "" || man.Revision == "" {
		t.Errorf("build identity missing: %+v", man)
	}
	if man.Counters["pairs_scored"] != 800 || man.Counters["static_candidates"] != 12 {
		t.Errorf("counters drifted: %v", man.Counters)
	}
	if man.Events != 2 || man.EventsDropped != 1 {
		t.Errorf("event accounting: got %d kept / %d dropped, want 2 / 1", man.Events, man.EventsDropped)
	}
	var staticNs int64
	for _, st := range man.Stages {
		if st.Stage == "static" {
			staticNs = st.WallNs
		}
	}
	if staticNs != int64(5*time.Millisecond) {
		t.Errorf("static stage ns = %d, want %d", staticNs, int64(5*time.Millisecond))
	}

	path := filepath.Join(t.TempDir(), "manifest.json")
	if err := m.WriteManifest(path, RunInfo{Tool: "test"}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back Manifest
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("manifest does not round-trip: %v", err)
	}
	if back.Counters["pairs_scored"] != 800 {
		t.Errorf("written manifest drifted: %v", back.Counters)
	}
}

// TestModelHash pins the hash format (stable across runs, prefixed with the
// algorithm so it can evolve).
func TestModelHash(t *testing.T) {
	h1, h2 := ModelHash([]byte("model")), ModelHash([]byte("model"))
	if h1 != h2 {
		t.Error("ModelHash is not deterministic")
	}
	if !strings.HasPrefix(h1, "sha256:") || len(h1) != len("sha256:")+64 {
		t.Errorf("unexpected hash format %q", h1)
	}
	if ModelHash([]byte("other")) == h1 {
		t.Error("distinct inputs hash equal")
	}
}

// TestFlags drives the CLI plumbing end to end: parse, collect, write.
func TestFlags(t *testing.T) {
	dir := t.TempDir()
	manifestPath := filepath.Join(dir, "m.json")
	tracePath := filepath.Join(dir, "t.jsonl")

	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := AddFlags(fs)
	if err := fs.Parse([]string{"-metrics", manifestPath, "-trace", tracePath}); err != nil {
		t.Fatal(err)
	}
	if !f.Enabled() {
		t.Fatal("flags parsed but Enabled is false")
	}
	m := f.Collector()
	if m == nil || m != f.Collector() {
		t.Fatal("Collector must return one stable live sink")
	}
	m.Add(CtrVerdicts, 3)
	m.Emit(Event{Kind: EvVerdictReached, CVE: "CVE-1"})
	if err := f.Write(RunInfo{Tool: "test"}); err != nil {
		t.Fatal(err)
	}
	rawMan, err := os.ReadFile(manifestPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(rawMan, []byte(`"verdicts": 3`)) {
		t.Errorf("manifest missing counters: %s", rawMan)
	}
	rawTrace, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(rawTrace, []byte(`"verdict_reached"`)) {
		t.Errorf("trace missing event: %s", rawTrace)
	}

	// Disabled flags: nil collector, Write is a no-op.
	fs2 := flag.NewFlagSet("test2", flag.ContinueOnError)
	f2 := AddFlags(fs2)
	if err := fs2.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if f2.Enabled() || f2.Collector() != nil {
		t.Error("disabled flags must yield the nil no-op sink")
	}
	if err := f2.Write(RunInfo{}); err != nil {
		t.Errorf("disabled Write errored: %v", err)
	}

	// -metrics alone: counters-only sink (no ring).
	fs3 := flag.NewFlagSet("test3", flag.ContinueOnError)
	f3 := AddFlags(fs3)
	if err := fs3.Parse([]string{"-metrics", filepath.Join(dir, "m2.json")}); err != nil {
		t.Fatal(err)
	}
	m3 := f3.Collector()
	m3.Emit(Event{Kind: EvScanStarted})
	if evs := m3.Events(); len(evs) != 0 {
		t.Errorf("counters-only sink retained %d events, want 0", len(evs))
	}
	if err := f3.Write(RunInfo{Tool: "t3"}); err != nil {
		t.Fatal(err)
	}
}
