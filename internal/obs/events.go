// Structured trace events: a flat, typed record per pipeline decision,
// retained in a bounded ring and drained as JSONL. Events are for tracing
// WHY a scan produced what it did (which candidates were excluded and why,
// which cells completed, what verdicts were reached); the counters in
// obs.go are the aggregate view of the same decisions.

package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// EventKind classifies a trace event.
type EventKind int

// Event kinds. Keep eventNames in sync.
const (
	EvScanStarted       EventKind = iota + 1 // a firmware scan began
	EvImagePrepared                          // one library image prepared cleanly
	EvCellCompleted                          // one (image, CVE, mode) grid cell completed
	EvCandidateExcluded                      // dynamic validation excluded a candidate
	EvVerdictReached                         // the differential stage decided a cell's verdict
	EvScanError                              // a typed ScanError was recorded (passthrough)
	EvRetrieval                              // embedding-index retrieval pruned a cell's pair set
	EvPrefilter                              // component prefilter decided one CVE row's keeps

	// Scan-service job lifecycle. Emitted into the job's own traced sink,
	// interleaved with the scan events above, so /jobs/{id}/events streams
	// the whole story of one submission.
	EvJobQueued  // the submission was admitted into the job queue
	EvJobStarted // a worker picked the job up (one per attempt)
	EvJobRetried // a retryable attempt failed; backing off before the next
	EvJobShed    // the job was degraded to the static-only pipeline
	EvJobResumed // the job was re-enqueued from the journal after a restart
	EvJobDone    // the job terminated (State says how)
)

var eventNames = map[EventKind]string{
	EvScanStarted:       "scan_started",
	EvImagePrepared:     "image_prepared",
	EvCellCompleted:     "cell_completed",
	EvCandidateExcluded: "candidate_excluded",
	EvVerdictReached:    "verdict_reached",
	EvScanError:         "scan_error",
	EvRetrieval:         "retrieval",
	EvPrefilter:         "prefilter",
	EvJobQueued:         "job_queued",
	EvJobStarted:        "job_started",
	EvJobRetried:        "job_retried",
	EvJobShed:           "job_shed",
	EvJobResumed:        "job_resumed",
	EvJobDone:           "job_done",
}

func (k EventKind) String() string {
	if s, ok := eventNames[k]; ok {
		return s
	}
	return fmt.Sprintf("event(%d)", int(k))
}

// MarshalJSON renders the kind as its snake_case name.
func (k EventKind) MarshalJSON() ([]byte, error) {
	return json.Marshal(k.String())
}

// UnmarshalJSON accepts the snake_case name.
func (k *EventKind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	for kind, name := range eventNames {
		if name == s {
			*k = kind
			return nil
		}
	}
	return fmt.Errorf("obs: unknown event kind %q", s)
}

// Event is one structured trace record. It is a flat value struct —
// emitting one copies it into the ring without allocating — and only the
// fields relevant to its Kind are populated:
//
//	scan_started:       Device, Arch, Images, CVEs
//	image_prepared:     Library, Funcs
//	cell_completed:     CVE, Library, Mode, Pairs, Candidates, Survivors, Matched
//	candidate_excluded: CVE, Library, Mode, Addr, Reason
//	verdict_reached:    CVE, Library, Mode, Addr, Patched, Confidence
//	scan_error:         CVE, Library, Mode, Fail, Reason
//	retrieval:          CVE, Library, Mode, Retrieved, Rescored, Pruned
//	prefilter:          CVE, Images (candidate images), Pruned (images pruned),
//	                    Reason (set when the row degraded to the full grid)
type Event struct {
	Seq  uint64    `json:"seq"`
	Kind EventKind `json:"kind"`

	Device  string `json:"device,omitempty"`
	Arch    string `json:"arch,omitempty"`
	CVE     string `json:"cve,omitempty"`
	Library string `json:"library,omitempty"`
	Mode    string `json:"mode,omitempty"`

	Addr       uint64  `json:"addr,omitempty"`
	Images     int     `json:"images,omitempty"`
	CVEs       int     `json:"cves,omitempty"`
	Funcs      int     `json:"funcs,omitempty"`
	Pairs      int     `json:"pairs,omitempty"`
	Candidates int     `json:"candidates,omitempty"`
	Survivors  int     `json:"survivors,omitempty"`
	Retrieved  int     `json:"retrieved,omitempty"`
	Rescored   int     `json:"rescored,omitempty"`
	Pruned     int     `json:"pruned,omitempty"`
	Matched    bool    `json:"matched,omitempty"`
	Patched    bool    `json:"patched,omitempty"`
	Confidence float64 `json:"confidence,omitempty"`

	Fail   string `json:"fail,omitempty"`   // ScanError kind name
	Reason string `json:"reason,omitempty"` // exclusion reason / error message

	// Scan-service job coordinates (job_* kinds only).
	Job     string `json:"job,omitempty"`     // job id
	Tenant  string `json:"tenant,omitempty"`  // submitting tenant
	Attempt int    `json:"attempt,omitempty"` // 1-based attempt number
	State   string `json:"state,omitempty"`   // terminal state on job_done
}

// ring is a bounded overwrite-oldest event buffer. Pushing never blocks the
// pipeline on a slow consumer: when full, the oldest event is dropped.
type ring struct {
	mu   sync.Mutex
	buf  []Event
	next uint64 // total events ever pushed; also the next seq number
}

func newRing(cap int) *ring { return &ring{buf: make([]Event, cap)} }

func (r *ring) push(ev Event) {
	r.mu.Lock()
	ev.Seq = r.next
	r.buf[r.next%uint64(len(r.buf))] = ev
	r.next++
	r.mu.Unlock()
}

// snapshot returns the retained events in seq order plus the dropped count.
func (r *ring) snapshot() ([]Event, uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	kept := n
	if kept > uint64(len(r.buf)) {
		kept = uint64(len(r.buf))
	}
	out := make([]Event, 0, kept)
	for s := n - kept; s < n; s++ {
		out = append(out, r.buf[s%uint64(len(r.buf))])
	}
	return out, n - kept
}

// Emit records an event in the ring. No-op when the sink is nil or was
// built without tracing (New rather than NewTraced).
func (m *Metrics) Emit(ev Event) {
	if m == nil || m.ring == nil {
		return
	}
	m.ring.push(ev)
}

// Events returns the retained events in emission order. Nil-safe.
func (m *Metrics) Events() []Event {
	if m == nil || m.ring == nil {
		return nil
	}
	evs, _ := m.ring.snapshot()
	return evs
}

// Dropped reports how many events the bounded ring overwrote.
func (m *Metrics) Dropped() uint64 {
	if m == nil || m.ring == nil {
		return 0
	}
	_, dropped := m.ring.snapshot()
	return dropped
}

// WriteJSONL writes the retained events as one JSON object per line, in
// emission order. Nil-safe: a no-op sink writes nothing.
func (m *Metrics) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, ev := range m.Events() {
		if err := enc.Encode(ev); err != nil {
			return fmt.Errorf("obs: %w", err)
		}
	}
	return nil
}
