// Package obs is the pipeline's observability layer: per-stage counters and
// wall-clock totals, a bounded structured-event sink with a JSONL writer,
// and a run-manifest artifact. It is stdlib-only and safe for concurrent
// use.
//
// The paper's evaluation (§V) is all about WHERE candidates die — static
// ranking, dynamic pruning, differential verdict — so every pipeline layer
// reports through this package: functions disassembled, pairs scored,
// candidates surviving the static cutoff, environments executed and
// trapped, dynamic exclusions by reason, emulator traps by kind, and patch
// verdicts by outcome.
//
// # Disabled-by-default contract
//
// A nil *Metrics is the no-op sink: every method is nil-receiver safe and
// returns immediately, so instrumented hot paths cost one predicted branch
// and zero allocations when observability is off. Instrumentation must
// never change results — a Report produced with metrics enabled is
// byte-identical to one produced with metrics disabled (the golden-report
// suite in package patchecko pins this).
//
// # Determinism
//
// All counters are deterministic in the scan inputs: they count work items,
// not scheduling, so totals are identical at any worker count. Stage
// wall-clock totals are the only nondeterministic values. Events are
// emitted from deterministic reduction points in the engine, so the event
// stream is reproducible too; only its interleaving with reference-side
// counters varies.
package obs

import (
	"sync/atomic"
	"time"
)

// Counter identifies one pipeline counter.
type Counter int

// Pipeline counters, grouped by stage. Keep counterNames in sync.
const (
	// Prepare stage.
	CtrImagesPrepared    Counter = iota // library images that prepared cleanly
	CtrImagesFailed                     // images whose preparation failed (isolated)
	CtrFuncsDisassembled                // functions recovered across prepared images

	// Static stage.
	CtrPairsScored      // (query, target) similarity pairs pushed through the network
	CtrStaticCandidates // pairs surviving the model's static cutoff

	// Dynamic stage.
	CtrEnvsExecuted        // per-environment executions (candidates and references)
	CtrEnvsTrapped         // executions that ended in a trap
	CtrCandidatesValidated // candidates surviving input validation
	CtrCandidatesExcluded  // candidates excluded during validation (all reasons)
	CtrExcludedNoEnv       // excluded: no environment ran to completion
	CtrExcludedPanic       // excluded: the profiling worker panicked
	CtrExcludedError       // excluded: emulator-level failure

	// Emulator traps by kind.
	CtrExecutions    // emulator executions started
	CtrExecTrapped   // executions that returned a trap
	CtrExecSteps     // instructions executed, summed over executions
	CtrTrapOOB       // out-of-bounds access
	CtrTrapDivZero   // division by zero
	CtrTrapBadCall   // call to an unknown function or wrong arity
	CtrTrapStepLimit // instruction budget exhausted
	CtrTrapStack     // machine stack fault
	CtrTrapDecode    // undecodable instruction
	CtrTrapBudget    // wall-clock watchdog expired

	// Differential stage.
	CtrVerdicts          // differential verdicts reached
	CtrVerdictPatched    // ... of which: patched
	CtrVerdictVulnerable // ... of which: still vulnerable

	// Scan grid.
	CtrCellsCompleted // (image, CVE, mode) grid cells that completed
	CtrCellsFailed    // grid cells recorded as ScanErrors
	CtrRefHits        // reference-profile consults answered from cache
	CtrRefMisses      // reference-profile consults that computed

	// Dedup / delta scan. pairs_scored + pairs_deduped + pairs_from_store
	// partitions the static pair total; the store counters classify every
	// persistent-store consult.
	CtrFuncsUnique        // distinct function content addresses across prepared images
	CtrPairsDeduped       // static scores reused from the in-memory dedup cache
	CtrPairsFromStore     // static scores answered by the persistent store
	CtrValidationsDeduped // candidate validations reused from the in-memory dedup cache
	CtrStoreHits          // persistent-store consults answered with a current score
	CtrStoreMisses        // persistent-store consults with no usable entry
	CtrStoreInvalidated   // persistent-store consults invalidated by a model-hash mismatch

	// Scan service (resident server). Jobs partition at admission into
	// admitted + rejected; admitted jobs partition at termination into
	// completed + failed + cancelled. Shed/retried/resumed annotate admitted
	// jobs and may overlap. The journal counters classify every append.
	CtrJobsAdmitted  // submissions accepted into the job queue
	CtrJobsRejected  // submissions rejected (queue full, tenant cap, draining, admission fault)
	CtrJobsCompleted // jobs that finished with a report
	CtrJobsFailed    // jobs that terminated without a report
	CtrJobsCancelled // jobs cancelled by the client or shutdown
	CtrJobsShed      // jobs degraded to the static-only pipeline
	CtrJobsRetried   // retry attempts across all jobs (attempts - jobs)
	CtrJobsResumed   // jobs re-enqueued from the journal after a restart
	CtrJournalOK     // journal appends that reached disk
	CtrJournalErrors // journal appends that failed (crash-safety degraded)

	// Retrieval static stage (embedding index). Per retrieval-enabled grid
	// cell, rescored_pairs + candidates_pruned equals the cell's pair total,
	// and the exact-scoring partition (pairs_scored + pairs_deduped +
	// pairs_from_store) covers only the rescored pairs. Counted from the
	// sequential reduction, never from worker goroutines.
	CtrRetrievalHits    // unique function bodies returned by index lookups
	CtrRescoredPairs    // retrieved pairs rescored by the exact pair network
	CtrCandidatesPruned // pairs skipped because their body was not retrieved

	// Component-identification prefilter (grid pruning). Counted from the
	// sequential prefilter pass before the grid is scheduled.
	CtrCellsPruned       // (image, CVE, mode) grid cells skipped by the prefilter
	CtrPrefilterDegraded // CVE rows degraded to the full grid (fault, no signature, all-pruned row)

	NumCounters
)

var counterNames = [NumCounters]string{
	CtrImagesPrepared:      "images_prepared",
	CtrImagesFailed:        "images_failed",
	CtrFuncsDisassembled:   "funcs_disassembled",
	CtrPairsScored:         "pairs_scored",
	CtrStaticCandidates:    "static_candidates",
	CtrEnvsExecuted:        "envs_executed",
	CtrEnvsTrapped:         "envs_trapped",
	CtrCandidatesValidated: "candidates_validated",
	CtrCandidatesExcluded:  "candidates_excluded",
	CtrExcludedNoEnv:       "excluded_no_env_completed",
	CtrExcludedPanic:       "excluded_panic",
	CtrExcludedError:       "excluded_error",
	CtrExecutions:          "executions",
	CtrExecTrapped:         "executions_trapped",
	CtrExecSteps:           "exec_steps",
	CtrTrapOOB:             "trap_oob",
	CtrTrapDivZero:         "trap_div_zero",
	CtrTrapBadCall:         "trap_bad_call",
	CtrTrapStepLimit:       "trap_step_limit",
	CtrTrapStack:           "trap_stack",
	CtrTrapDecode:          "trap_decode",
	CtrTrapBudget:          "trap_budget",
	CtrVerdicts:            "verdicts",
	CtrVerdictPatched:      "verdict_patched",
	CtrVerdictVulnerable:   "verdict_vulnerable",
	CtrCellsCompleted:      "cells_completed",
	CtrCellsFailed:         "cells_failed",
	CtrRefHits:             "ref_cache_hits",
	CtrRefMisses:           "ref_cache_misses",
	CtrFuncsUnique:         "funcs_unique",
	CtrPairsDeduped:        "pairs_deduped",
	CtrPairsFromStore:      "pairs_from_store",
	CtrValidationsDeduped:  "validations_deduped",
	CtrStoreHits:           "store_hits",
	CtrStoreMisses:         "store_misses",
	CtrStoreInvalidated:    "store_invalidated",
	CtrJobsAdmitted:        "jobs_admitted",
	CtrJobsRejected:        "jobs_rejected",
	CtrJobsCompleted:       "jobs_completed",
	CtrJobsFailed:          "jobs_failed",
	CtrJobsCancelled:       "jobs_cancelled",
	CtrJobsShed:            "jobs_shed",
	CtrJobsRetried:         "jobs_retried",
	CtrJobsResumed:         "jobs_resumed",
	CtrJournalOK:           "journal_appends",
	CtrJournalErrors:       "journal_errors",
	CtrRetrievalHits:       "retrieval_hits",
	CtrRescoredPairs:       "rescored_pairs",
	CtrCandidatesPruned:    "candidates_pruned",
	CtrCellsPruned:         "cells_pruned",
	CtrPrefilterDegraded:   "prefilter_degraded",
}

func (c Counter) String() string {
	if c < 0 || c >= NumCounters {
		return "counter(?)"
	}
	return counterNames[c]
}

// Stage identifies one pipeline stage for wall-clock accounting.
type Stage int

// Pipeline stages. Keep stageNames in sync.
const (
	StagePrepare      Stage = iota // image disassembly + feature extraction
	StageStatic                    // deep-learning candidate scoring
	StageDynamic                   // validation, profiling, ranking
	StageDifferential              // patch verdict on the top match
	NumStages
)

var stageNames = [NumStages]string{
	StagePrepare:      "prepare",
	StageStatic:       "static",
	StageDynamic:      "dynamic",
	StageDifferential: "differential",
}

func (s Stage) String() string {
	if s < 0 || s >= NumStages {
		return "stage(?)"
	}
	return stageNames[s]
}

// Metrics is the live sink: counters, per-stage wall-clock totals and an
// optional bounded event ring. The zero value is usable; a nil *Metrics is
// the no-op sink. All methods are safe for concurrent use.
type Metrics struct {
	counters [NumCounters]atomic.Int64
	stageNs  [NumStages]atomic.Int64
	ring     *ring
}

// New returns a counters-only sink (events are discarded).
func New() *Metrics { return &Metrics{} }

// NewTraced returns a sink that also retains the last cap events in a
// bounded ring buffer (DefaultTraceCap when cap <= 0). Older events are
// overwritten, never blocking the pipeline; Dropped reports how many were
// lost.
func NewTraced(cap int) *Metrics {
	if cap <= 0 {
		cap = DefaultTraceCap
	}
	return &Metrics{ring: newRing(cap)}
}

// DefaultTraceCap is the event ring capacity used when none is given.
const DefaultTraceCap = 1 << 14

// Enabled reports whether the sink is live. Instrumentation sites may use
// it to skip building expensive arguments; plain Add/Emit calls are already
// nil-safe.
func (m *Metrics) Enabled() bool { return m != nil }

// Add increments counter c by n. No-op on a nil receiver.
func (m *Metrics) Add(c Counter, n int64) {
	if m == nil {
		return
	}
	m.counters[c].Add(n)
}

// Get returns counter c's current value (0 on a nil receiver).
func (m *Metrics) Get(c Counter) int64 {
	if m == nil {
		return 0
	}
	return m.counters[c].Load()
}

// AddStage accumulates wall-clock time into a stage total. No-op on nil.
func (m *Metrics) AddStage(s Stage, d time.Duration) {
	if m == nil {
		return
	}
	m.stageNs[s].Add(int64(d))
}

// Stopwatch measures stage wall-clock. It is the deterministic packages'
// single sanctioned clock: stage timing is the one documented
// nondeterministic output (see the package comment), so the lint suite's
// determinism analyzer allows exactly these two sites and bans time.Now
// everywhere else in scope. Engine code must read the clock through a
// Stopwatch, never directly.
type Stopwatch struct{ start time.Time }

// StartStopwatch reads the clock once; Elapsed measures from that instant.
func StartStopwatch() Stopwatch {
	//patchecko:allow determinism stage wall-clock is the documented nondeterministic output
	return Stopwatch{start: time.Now()}
}

// Elapsed returns the wall-clock time since the stopwatch started.
func (w Stopwatch) Elapsed() time.Duration {
	//patchecko:allow determinism stage wall-clock is the documented nondeterministic output
	return time.Since(w.start)
}

// StageNs returns the accumulated wall-clock nanoseconds of a stage.
func (m *Metrics) StageNs(s Stage) int64 {
	if m == nil {
		return 0
	}
	return m.stageNs[s].Load()
}

// Merge folds another sink's counters and stage wall-clock totals into this
// one. The scan service runs each job against its own traced sink (so the
// job's event stream and counters are queryable in isolation) and merges the
// job sink into the process-level sink when the job terminates; /metrics
// then reports fleet-wide totals. Events are NOT merged — they stay with
// the job. Nil-safe on both sides.
func (m *Metrics) Merge(src *Metrics) {
	if m == nil || src == nil {
		return
	}
	for c := Counter(0); c < NumCounters; c++ {
		if v := src.counters[c].Load(); v != 0 {
			m.counters[c].Add(v)
		}
	}
	for s := Stage(0); s < NumStages; s++ {
		if v := src.stageNs[s].Load(); v != 0 {
			m.stageNs[s].Add(v)
		}
	}
}

// Counters snapshots every counter by name, zeros included, so consumers
// can sum and cross-check without knowing the Counter enum.
func (m *Metrics) Counters() map[string]int64 {
	out := make(map[string]int64, NumCounters)
	for c := Counter(0); c < NumCounters; c++ {
		var v int64
		if m != nil {
			v = m.counters[c].Load()
		}
		out[counterNames[c]] = v
	}
	return out
}
