// Package emu executes disassembled functions in isolation under fixed
// execution environments, collecting the dynamic features of the paper's
// Table II. It is the stand-in for PATCHECKO's device-side instrumentation
// stack (DLL injection + dlopen/dlsym to run a single exported function,
// GDBServer to trace it): given a function and an environment, it runs just
// that function — no whole-binary loading — and records instruction mix,
// stack depth statistics, per-region memory access counts, and library/
// system call counts. Abnormal executions surface as minic.TrapError, which
// the dynamic analysis engine uses to discard candidates, exactly as the
// paper removes candidates that "trigger a system exception".
package emu

import (
	"context"
	"fmt"
	"math"

	"repro/internal/disasm"
	"repro/internal/faultinject"
	"repro/internal/isa"
	"repro/internal/minic"
	"repro/internal/obs"
)

// Stack layout. The machine stack lives well away from the data, rodata and
// heap regions shared with the source-level semantics.
const (
	StackTop  = 0x7ff0_0000
	StackSize = 1 << 20
)

// DefaultStepLimit bounds executions ("infinite loop" detection).
const DefaultStepLimit = 1 << 20

// watchdogStride is how many instructions execute between context checks.
// The wall-clock watchdog and cancellation both piggyback on this check, so
// the hot loop pays one counter test per instruction and one channel poll
// per stride.
const watchdogStride = 4096

// maxCallDepth matches the interpreter's recursion budget.
const maxCallDepth = 64

// Region tags memory areas for the Table II access counters.
type Region int

// Regions.
const (
	RegionStack Region = iota + 1
	RegionHeap
	RegionLib  // read-only library data (rodata)
	RegionAnon // the anonymously-mapped input buffer (data region)
	RegionOther
)

// Trace aggregates the 21 dynamic features of Table II plus the raw
// counters they derive from.
type Trace struct {
	BinaryFunCalls int64 // F1

	stackDepthMin  int64
	stackDepthMax  int64
	stackDepthSum  float64
	stackDepthSum2 float64

	Instrs       int64 // F6
	uniquePCs    map[uint64]struct{}
	CallInstrs   int64 // F8
	ArithInstrs  int64 // F9
	BranchInstrs int64 // F10
	LoadInstrs   int64 // F11
	StoreInstrs  int64 // F12

	branchFreq map[uint64]int64
	arithFreq  map[uint64]int64

	HeapAccess   int64 // F15
	StackAccess  int64 // F16
	LibAccess    int64 // F17
	AnonAccess   int64 // F18
	OthersAccess int64 // F19

	LibCalls int64 // F20
	Syscalls int64 // F21
}

func newTrace() *Trace {
	return &Trace{
		stackDepthMin: math.MaxInt64,
		uniquePCs:     make(map[uint64]struct{}),
		branchFreq:    make(map[uint64]int64),
		arithFreq:     make(map[uint64]int64),
	}
}

// UniqueInstrs is feature F7.
func (t *Trace) UniqueInstrs() int64 { return int64(len(t.uniquePCs)) }

// PCs returns the set of executed instruction addresses. The fuzzer uses it
// as its coverage signal.
func (t *Trace) PCs() map[uint64]struct{} {
	out := make(map[uint64]struct{}, len(t.uniquePCs))
	for pc := range t.uniquePCs {
		out[pc] = struct{}{}
	}
	return out
}

// StackDepthStats returns features F2..F5 (min, max, mean, stddev of the
// call-stack depth sampled at every executed instruction).
func (t *Trace) StackDepthStats() (minD, maxD int64, mean, std float64) {
	if t.Instrs == 0 {
		return 0, 0, 0, 0
	}
	mean = t.stackDepthSum / float64(t.Instrs)
	variance := t.stackDepthSum2/float64(t.Instrs) - mean*mean
	if variance < 0 {
		variance = 0
	}
	return t.stackDepthMin, t.stackDepthMax, mean, math.Sqrt(variance)
}

// MaxBranchFreq is feature F13: the execution count of the hottest single
// branch instruction.
func (t *Trace) MaxBranchFreq() int64 { return maxVal(t.branchFreq) }

// MaxArithFreq is feature F14.
func (t *Trace) MaxArithFreq() int64 { return maxVal(t.arithFreq) }

func maxVal(m map[uint64]int64) int64 {
	var best int64
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	return best
}

// Vector flattens the trace into the 21-dimensional dynamic feature vector
// in Table II order.
func (t *Trace) Vector() [21]float64 {
	minD, maxD, mean, std := t.StackDepthStats()
	return [21]float64{
		float64(t.BinaryFunCalls),
		float64(minD),
		float64(maxD),
		mean,
		std,
		float64(t.Instrs),
		float64(t.UniqueInstrs()),
		float64(t.CallInstrs),
		float64(t.ArithInstrs),
		float64(t.BranchInstrs),
		float64(t.LoadInstrs),
		float64(t.StoreInstrs),
		float64(t.MaxBranchFreq()),
		float64(t.MaxArithFreq()),
		float64(t.HeapAccess),
		float64(t.StackAccess),
		float64(t.LibAccess),
		float64(t.AnonAccess),
		float64(t.OthersAccess),
		float64(t.LibCalls),
		float64(t.Syscalls),
	}
}

// Result is a completed execution.
type Result struct {
	Ret   int64
	Trace *Trace
	Mem   []byte // final data-region contents
}

// taggedMem is the emulator's address space with per-region access counting.
type taggedMem struct {
	data   []byte
	rodata []byte
	heap   []byte
	stack  []byte
	trace  *Trace
}

var _ minic.Memory = (*taggedMem)(nil)

func (m *taggedMem) region(addr int64) (Region, []byte, int64) {
	switch {
	case addr >= minic.DataBase && addr < minic.DataBase+minic.DataSize:
		return RegionAnon, m.data, addr - minic.DataBase
	case addr >= minic.RodataBase && addr < minic.RodataBase+int64(len(m.rodata)):
		return RegionLib, m.rodata, addr - minic.RodataBase
	case addr >= minic.HeapBase && addr < minic.HeapBase+minic.HeapSize:
		return RegionHeap, m.heap, addr - minic.HeapBase
	case addr >= StackTop-StackSize && addr < StackTop:
		return RegionStack, m.stack, addr - (StackTop - StackSize)
	}
	return RegionOther, nil, 0
}

func (m *taggedMem) count(r Region) {
	switch r {
	case RegionStack:
		m.trace.StackAccess++
	case RegionHeap:
		m.trace.HeapAccess++
	case RegionLib:
		m.trace.LibAccess++
	case RegionAnon:
		m.trace.AnonAccess++
	default:
		m.trace.OthersAccess++
	}
}

func (m *taggedMem) LoadByte(addr int64) (byte, error) {
	r, buf, off := m.region(addr)
	if buf == nil {
		m.trace.OthersAccess++
		return 0, &minic.TrapError{Kind: minic.TrapOOB, Addr: addr}
	}
	m.count(r)
	return buf[off], nil
}

func (m *taggedMem) StoreByte(addr int64, v byte) error {
	r, buf, off := m.region(addr)
	if buf == nil || r == RegionLib { // rodata is not writable
		m.trace.OthersAccess++
		return &minic.TrapError{Kind: minic.TrapOOB, Addr: addr}
	}
	m.count(r)
	buf[off] = v
	return nil
}

// frame is one activation record of the Go-side return stack (the emulator
// models the link register in Go, like hardware keeps it out of data memory).
type frame struct {
	fn *disasm.Function
	pc int // resume instruction index in fn
}

// Machine executes one function invocation.
type Machine struct {
	ctx   context.Context // nil = no watchdog, no cancellation
	dis   *disasm.Disassembly
	mem   *taggedMem
	regs  [16]int64
	flagL int64
	flagR int64
	bst   *minic.BuiltinState
	trace *Trace
	limit int64

	fn     *disasm.Function
	pc     int
	frames []frame
}

// Execute runs fn under env, with the given instruction budget
// (DefaultStepLimit if limit <= 0). The environment's scalar arguments load
// into r0..r3 — the same convention for every candidate function, which is
// what lets one environment drive many candidates, as in the paper.
//
// On abnormal termination the returned Result is non-nil and carries the
// trace collected up to the fault — the partial profile the dynamic stage
// consumes — alongside the *minic.TrapError.
func Execute(dis *disasm.Disassembly, fn *disasm.Function, env *minic.Env, limit int64) (*Result, error) {
	return ExecuteCtx(nil, dis, fn, env, limit)
}

// ExecuteCtx is Execute with a watchdog context. The context's deadline is
// the execution's wall-clock budget, checked every watchdogStride
// instructions alongside the step limit: an expired deadline surfaces as a
// minic.TrapBudget trap (an abnormal execution of this one function), while
// plain cancellation returns the context's error verbatim (the whole scan
// is being torn down, not this function misbehaving). A nil or
// context.Background context disables both checks at zero per-step cost.
func ExecuteCtx(ctx context.Context, dis *disasm.Disassembly, fn *disasm.Function, env *minic.Env, limit int64) (*Result, error) {
	return ExecuteObserved(ctx, dis, fn, env, limit, nil)
}

// ExecuteObserved is ExecuteCtx reporting into an observability sink:
// executions started, instructions executed, and traps by kind. A nil sink
// is the no-op default — the run itself is identical either way, and the
// accounting is a handful of atomic adds per execution, off the per-step
// hot loop.
func ExecuteObserved(ctx context.Context, dis *disasm.Disassembly, fn *disasm.Function, env *minic.Env, limit int64, o *obs.Metrics) (*Result, error) {
	if limit <= 0 {
		limit = DefaultStepLimit
	}
	if ctx != nil && ctx.Done() == nil {
		ctx = nil // no deadline and not cancellable: skip the polling
	}
	tr := newTrace()
	m := &Machine{
		ctx: ctx,
		dis: dis,
		mem: &taggedMem{
			data:   make([]byte, minic.DataSize),
			rodata: dis.Image.Rodata,
			heap:   make([]byte, minic.HeapSize),
			stack:  make([]byte, StackSize),
			trace:  tr,
		},
		bst:   minic.NewBuiltinState(),
		trace: tr,
		limit: limit,
		fn:    fn,
	}
	copy(m.mem.data, env.Data)
	for i, a := range env.Args {
		if i >= 4 {
			break
		}
		m.regs[i] = a
	}
	m.regs[m.sp()] = StackTop
	if err := faultinject.Fire(faultinject.ExecTrap, dis.Image.LibName+":"+fn.Name); err != nil {
		observeExec(o, tr, err)
		return &Result{Trace: tr, Mem: m.mem.data}, err
	}
	if err := m.run(); err != nil {
		observeExec(o, tr, err)
		// Partial result: the trace up to the fault is the truncated
		// profile the fault-tolerant dynamic stage ranks with.
		return &Result{Ret: m.regs[0], Trace: tr, Mem: m.mem.data}, err
	}
	observeExec(o, tr, nil)
	return &Result{Ret: m.regs[0], Trace: tr, Mem: m.mem.data}, nil
}

// observeExec records one execution's accounting: the execution itself, its
// instruction count, and — when it trapped — the trap kind. Cancellation is
// not a trap and counts only as an execution.
func observeExec(o *obs.Metrics, tr *Trace, err error) {
	if o == nil {
		return
	}
	o.Add(obs.CtrExecutions, 1)
	if tr != nil {
		o.Add(obs.CtrExecSteps, tr.Instrs)
	}
	if err == nil {
		return
	}
	if t, ok := minic.IsTrap(err); ok {
		o.Add(obs.CtrExecTrapped, 1)
		if c, ok := trapCounter(t.Kind); ok {
			o.Add(c, 1)
		}
	}
}

// trapCounter maps a trap kind to its per-kind counter.
func trapCounter(k minic.TrapKind) (obs.Counter, bool) {
	switch k {
	case minic.TrapOOB:
		return obs.CtrTrapOOB, true
	case minic.TrapDivZero:
		return obs.CtrTrapDivZero, true
	case minic.TrapBadCall:
		return obs.CtrTrapBadCall, true
	case minic.TrapStepLimit:
		return obs.CtrTrapStepLimit, true
	case minic.TrapStack:
		return obs.CtrTrapStack, true
	case minic.TrapDecode:
		return obs.CtrTrapDecode, true
	case minic.TrapBudget:
		return obs.CtrTrapBudget, true
	default:
		return 0, false
	}
}

func (m *Machine) sp() int { return m.dis.Arch.NumRegs - 1 }
func (m *Machine) fp() int { return m.dis.Arch.NumRegs - 2 }

func (m *Machine) run() error {
	for {
		if m.pc < 0 || m.pc >= len(m.fn.Instrs) {
			// The message deliberately omits the function's address: trap
			// text must be relocation-invariant so identical function copies
			// at different link addresses fail identically (the dedup
			// engine's sharing contract).
			return &minic.TrapError{Kind: minic.TrapDecode,
				Msg: fmt.Sprintf("pc %d outside function", m.pc)}
		}
		in := m.fn.Instrs[m.pc]
		pcAddr := m.fn.Addr + uint64(in.Offset)

		m.trace.Instrs++
		if m.trace.Instrs > m.limit {
			return &minic.TrapError{Kind: minic.TrapStepLimit}
		}
		if m.ctx != nil && m.trace.Instrs%watchdogStride == 0 {
			select {
			case <-m.ctx.Done():
				if m.ctx.Err() == context.DeadlineExceeded {
					return &minic.TrapError{Kind: minic.TrapBudget,
						Msg: fmt.Sprintf("after %d instructions", m.trace.Instrs)}
				}
				return m.ctx.Err()
			default:
			}
		}
		m.trace.uniquePCs[pcAddr] = struct{}{}
		depth := int64(len(m.frames)) + 1
		if depth < m.trace.stackDepthMin {
			m.trace.stackDepthMin = depth
		}
		if depth > m.trace.stackDepthMax {
			m.trace.stackDepthMax = depth
		}
		m.trace.stackDepthSum += float64(depth)
		m.trace.stackDepthSum2 += float64(depth) * float64(depth)
		switch {
		case in.Op.IsArith() || in.Op.IsArithFP():
			m.trace.ArithInstrs++
			m.trace.arithFreq[pcAddr]++
		case in.Op.IsBranch():
			m.trace.BranchInstrs++
			m.trace.branchFreq[pcAddr]++
		case in.Op.IsCall():
			m.trace.CallInstrs++
		case in.Op.IsLoad():
			m.trace.LoadInstrs++
		case in.Op.IsStore():
			m.trace.StoreInstrs++
		}

		done, err := m.step(in)
		if err != nil {
			return err
		}
		if done {
			return nil
		}
	}
}

// step executes one instruction; it returns true when the outermost
// function returned.
func (m *Machine) step(in disasm.DInstr) (bool, error) {
	next := m.pc + 1
	switch op := in.Op; op {
	case isa.Nop:
	case isa.Ldi:
		m.regs[in.Rd] = in.Imm
	case isa.Mov:
		m.regs[in.Rd] = m.regs[in.Rs1]

	case isa.Add, isa.Sub, isa.Mul, isa.Div, isa.Mod, isa.AndOp, isa.OrOp,
		isa.XorOp, isa.Shl, isa.Shr, isa.Fadd, isa.Fsub, isa.Fmul, isa.Fdiv,
		isa.Seq, isa.Sne, isa.Slt, isa.Sle, isa.Sgt, isa.Sge:
		v, err := minic.EvalBinOp(binOpOf(op), m.regs[in.Rs1], m.regs[in.Rs2])
		if err != nil {
			return false, err
		}
		m.regs[in.Rd] = v

	case isa.Add2, isa.Sub2, isa.Mul2, isa.Div2, isa.Mod2, isa.And2, isa.Or2,
		isa.Xor2, isa.Shl2, isa.Shr2, isa.Fadd2, isa.Fsub2, isa.Fmul2, isa.Fdiv2:
		v, err := minic.EvalBinOp(binOpOf(op), m.regs[in.Rd], m.regs[in.Rs1])
		if err != nil {
			return false, err
		}
		m.regs[in.Rd] = v

	case isa.AddI, isa.SubI, isa.MulI, isa.AndI, isa.OrI, isa.XorI, isa.ShlI, isa.ShrI:
		v, err := minic.EvalBinOp(binOpOf(op), m.regs[in.Rd], in.Imm)
		if err != nil {
			return false, err
		}
		m.regs[in.Rd] = v

	case isa.NegOp, isa.NotOp, isa.Inv:
		m.regs[in.Rd] = minic.EvalUnOp(unOpOf(op), m.regs[in.Rs1])
	case isa.Neg2, isa.Not2, isa.Inv2:
		m.regs[in.Rd] = minic.EvalUnOp(unOpOf(op), m.regs[in.Rd])

	case isa.Cmp:
		m.flagL, m.flagR = m.regs[in.Rs1], m.regs[in.Rs2]
	case isa.CmpI:
		m.flagL, m.flagR = m.regs[in.Rs1], in.Imm
	case isa.Sete:
		m.regs[in.Rd] = b2i(m.flagL == m.flagR)
	case isa.Setne:
		m.regs[in.Rd] = b2i(m.flagL != m.flagR)
	case isa.Setl:
		m.regs[in.Rd] = b2i(m.flagL < m.flagR)
	case isa.Setle:
		m.regs[in.Rd] = b2i(m.flagL <= m.flagR)
	case isa.Setg:
		m.regs[in.Rd] = b2i(m.flagL > m.flagR)
	case isa.Setge:
		m.regs[in.Rd] = b2i(m.flagL >= m.flagR)

	case isa.Ldb:
		b, err := m.mem.LoadByte(m.regs[in.Rs1] + in.Imm)
		if err != nil {
			return false, err
		}
		m.regs[in.Rd] = int64(b)
	case isa.Stb:
		if err := m.mem.StoreByte(m.regs[in.Rs1]+in.Imm, byte(m.regs[in.Rs2])); err != nil {
			return false, err
		}
	case isa.Ldw:
		v, err := minic.LoadWord(m.mem, m.regs[in.Rs1]+in.Imm)
		if err != nil {
			return false, err
		}
		m.regs[in.Rd] = v
	case isa.Stw:
		if err := minic.StoreWord(m.mem, m.regs[in.Rs1]+in.Imm, m.regs[in.Rs2]); err != nil {
			return false, err
		}

	case isa.Jmp:
		return false, m.jump(int(in.Imm))
	case isa.Jz:
		if m.regs[in.Rs1] == 0 {
			return false, m.jump(int(in.Imm))
		}
		m.pc = next
		return false, nil
	case isa.Jnz:
		if m.regs[in.Rs1] != 0 {
			return false, m.jump(int(in.Imm))
		}
		m.pc = next
		return false, nil
	case isa.Je, isa.Jne, isa.Jl, isa.Jle, isa.Jg, isa.Jge:
		if m.flagTaken(op) {
			return false, m.jump(int(in.Imm))
		}
		m.pc = next
		return false, nil

	case isa.Call:
		callee, ok := m.dis.FuncAt(uint64(in.Imm))
		if !ok {
			return false, &minic.TrapError{Kind: minic.TrapBadCall,
				Msg: fmt.Sprintf("call to unmapped address %#x", in.Imm)}
		}
		if len(m.frames) >= maxCallDepth {
			return false, &minic.TrapError{Kind: minic.TrapStack, Msg: "call stack overflow"}
		}
		m.trace.BinaryFunCalls++
		m.frames = append(m.frames, frame{fn: m.fn, pc: next})
		m.fn = callee
		m.pc = 0
		return false, nil

	case isa.CallI:
		b, ok := minic.BuiltinByIndex(int(in.Imm))
		if !ok {
			return false, &minic.TrapError{Kind: minic.TrapBadCall,
				Msg: fmt.Sprintf("bad import index %d", in.Imm)}
		}
		args := make([]int64, b.NArgs)
		for i := range args {
			args[i] = m.regs[i]
		}
		v, err := b.Fn(m.mem, m.bst, args)
		if err != nil {
			return false, err
		}
		if b.Kind == minic.KindSys {
			m.trace.Syscalls++
		} else {
			m.trace.LibCalls++
		}
		m.regs[0] = v

	case isa.Ret:
		if len(m.frames) == 0 {
			return true, nil
		}
		top := m.frames[len(m.frames)-1]
		m.frames = m.frames[:len(m.frames)-1]
		m.fn, m.pc = top.fn, top.pc
		return false, nil

	case isa.Push:
		sp := m.regs[m.sp()] - 8
		if sp < StackTop-StackSize {
			return false, &minic.TrapError{Kind: minic.TrapStack, Msg: "stack overflow"}
		}
		m.regs[m.sp()] = sp
		if err := minic.StoreWord(m.mem, sp, m.regs[in.Rs1]); err != nil {
			return false, err
		}
	case isa.Pop:
		sp := m.regs[m.sp()]
		if sp >= StackTop {
			return false, &minic.TrapError{Kind: minic.TrapStack, Msg: "stack underflow"}
		}
		v, err := minic.LoadWord(m.mem, sp)
		if err != nil {
			return false, err
		}
		m.regs[in.Rd] = v
		m.regs[m.sp()] = sp + 8
	case isa.AddSp:
		m.regs[m.sp()] += in.Imm

	default:
		return false, &minic.TrapError{Kind: minic.TrapDecode,
			Msg: fmt.Sprintf("unimplemented op %v", in.Op)}
	}
	m.pc = next
	return false, nil
}

// jump resolves an intra-function byte offset.
func (m *Machine) jump(off int) error {
	idx, ok := m.fn.IndexAtOffset(off)
	if !ok {
		return &minic.TrapError{Kind: minic.TrapDecode,
			Msg: fmt.Sprintf("branch to mid-instruction offset %d", off)}
	}
	m.pc = idx
	return nil
}

func (m *Machine) flagTaken(op isa.Op) bool {
	switch op {
	case isa.Je:
		return m.flagL == m.flagR
	case isa.Jne:
		return m.flagL != m.flagR
	case isa.Jl:
		return m.flagL < m.flagR
	case isa.Jle:
		return m.flagL <= m.flagR
	case isa.Jg:
		return m.flagL > m.flagR
	default:
		return m.flagL >= m.flagR
	}
}

// binOpOf maps ISA ALU ops onto the shared source-level semantics, keeping
// interpreter and emulator arithmetic identical by construction.
func binOpOf(op isa.Op) minic.BinOp {
	switch op {
	case isa.Add, isa.Add2, isa.AddI:
		return minic.OpAdd
	case isa.Sub, isa.Sub2, isa.SubI:
		return minic.OpSub
	case isa.Mul, isa.Mul2, isa.MulI:
		return minic.OpMul
	case isa.Div, isa.Div2:
		return minic.OpDiv
	case isa.Mod, isa.Mod2:
		return minic.OpMod
	case isa.AndOp, isa.And2, isa.AndI:
		return minic.OpAnd
	case isa.OrOp, isa.Or2, isa.OrI:
		return minic.OpOr
	case isa.XorOp, isa.Xor2, isa.XorI:
		return minic.OpXor
	case isa.Shl, isa.Shl2, isa.ShlI:
		return minic.OpShl
	case isa.Shr, isa.Shr2, isa.ShrI:
		return minic.OpShr
	case isa.Fadd, isa.Fadd2:
		return minic.OpFAdd
	case isa.Fsub, isa.Fsub2:
		return minic.OpFSub
	case isa.Fmul, isa.Fmul2:
		return minic.OpFMul
	case isa.Fdiv, isa.Fdiv2:
		return minic.OpFDiv
	case isa.Seq:
		return minic.OpEq
	case isa.Sne:
		return minic.OpNe
	case isa.Slt:
		return minic.OpLt
	case isa.Sle:
		return minic.OpLe
	case isa.Sgt:
		return minic.OpGt
	default: // isa.Sge
		return minic.OpGe
	}
}

func unOpOf(op isa.Op) minic.UnOp {
	switch op {
	case isa.NegOp, isa.Neg2:
		return minic.OpNeg
	case isa.NotOp, isa.Not2:
		return minic.OpNot
	default:
		return minic.OpInv
	}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// ExecuteByName looks the function up by symbol and executes it — a
// convenience for tests and ground-truth runs on unstripped images.
func ExecuteByName(dis *disasm.Disassembly, name string, env *minic.Env, limit int64) (*Result, error) {
	fn, ok := dis.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("emu: no function %q in %s", name, dis.Image.LibName)
	}
	return ExecuteCtx(nil, dis, fn, env, limit)
}
