package emu

import (
	"errors"
	"testing"

	"repro/internal/compiler"
	"repro/internal/disasm"
	"repro/internal/isa"
	"repro/internal/minic"
)

func disassembled(t *testing.T, mod *minic.Module, arch *isa.Arch, lvl compiler.Level) *disasm.Disassembly {
	t.Helper()
	im, err := compiler.Compile(mod, arch, lvl)
	if err != nil {
		t.Fatal(err)
	}
	dis, err := disasm.Disassemble(im)
	if err != nil {
		t.Fatal(err)
	}
	return dis
}

func TestTraceInstructionMix(t *testing.T) {
	// A function with a known mix: a loop with loads, stores, arithmetic,
	// one library call and one syscall.
	mod := &minic.Module{Name: "t", Funcs: []*minic.Func{
		minic.NewFunc("f", []string{"p", "n"},
			minic.Set("s", minic.I(0)),
			minic.Loop(minic.Gt(minic.V("n"), minic.I(0)),
				minic.Set("s", minic.Add(minic.V("s"), minic.Ld(minic.V("p"), minic.V("n")))),
				minic.St(minic.V("p"), minic.V("n"), minic.V("s")),
				minic.Set("n", minic.Sub(minic.V("n"), minic.I(1))),
			),
			minic.Set("x", minic.Call("abs", minic.V("s"))),
			minic.Do(minic.Call("write_log", minic.V("x"))),
			minic.Ret(minic.V("x"))),
	}}
	for _, arch := range isa.All() {
		dis := disassembled(t, mod, arch, compiler.O1)
		env := &minic.Env{Args: []int64{minic.DataBase, 10}, Data: []byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}}
		res, err := ExecuteByName(dis, "f", env, 0)
		if err != nil {
			t.Fatalf("%s: %v", arch.Name, err)
		}
		tr := res.Trace
		if tr.Instrs == 0 || tr.ArithInstrs == 0 || tr.BranchInstrs == 0 {
			t.Errorf("%s: zero counts in %+v", arch.Name, tr.Vector())
		}
		if tr.LoadInstrs == 0 || tr.StoreInstrs == 0 {
			t.Errorf("%s: loads/stores not traced", arch.Name)
		}
		if tr.LibCalls != 1 {
			t.Errorf("%s: LibCalls = %d, want 1", arch.Name, tr.LibCalls)
		}
		if tr.Syscalls != 1 {
			t.Errorf("%s: Syscalls = %d, want 1", arch.Name, tr.Syscalls)
		}
		if tr.AnonAccess == 0 {
			t.Errorf("%s: data-region accesses not counted", arch.Name)
		}
		if tr.UniqueInstrs() == 0 || tr.UniqueInstrs() > tr.Instrs {
			t.Errorf("%s: unique instrs %d vs total %d", arch.Name, tr.UniqueInstrs(), tr.Instrs)
		}
		if tr.MaxBranchFreq() < 10 {
			t.Errorf("%s: loop branch executed %d times, want >= 10", arch.Name, tr.MaxBranchFreq())
		}
	}
}

func TestStackDepthTracking(t *testing.T) {
	mod := &minic.Module{Name: "t", Funcs: []*minic.Func{
		minic.NewFunc("depth3", []string{"a"},
			minic.When(minic.Le(minic.V("a"), minic.I(0)), minic.Ret(minic.I(0))),
			minic.Ret(minic.Add(minic.I(1), minic.Call("depth3", minic.Sub(minic.V("a"), minic.I(1)))))),
	}}
	dis := disassembled(t, mod, isa.AMD64, compiler.O1)
	res, err := ExecuteByName(dis, "depth3", &minic.Env{Args: []int64{5}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	minD, maxD, mean, std := res.Trace.StackDepthStats()
	if minD != 1 || maxD != 6 {
		t.Errorf("stack depth range [%d,%d], want [1,6]", minD, maxD)
	}
	if mean <= 1 || mean >= 6 || std <= 0 {
		t.Errorf("stack depth mean=%f std=%f implausible", mean, std)
	}
	if res.Trace.BinaryFunCalls != 5 {
		t.Errorf("BinaryFunCalls = %d, want 5", res.Trace.BinaryFunCalls)
	}
	if res.Ret != 5 {
		t.Errorf("ret = %d, want 5", res.Ret)
	}
}

func TestMemoryRegionTagging(t *testing.T) {
	mod := &minic.Module{Name: "t", Funcs: []*minic.Func{
		minic.NewFunc("regions", []string{"p"},
			// Heap access via malloc, rodata via strlen of a literal,
			// data via p, stack implicitly via frame slots.
			minic.Set("h", minic.Call("malloc", minic.I(64))),
			minic.St(minic.V("h"), minic.I(0), minic.I(42)),
			minic.Set("r", minic.Call("strlen", minic.S("const-tag"))),
			minic.Set("d", minic.Ld(minic.V("p"), minic.I(0))),
			minic.Ret(minic.Add(minic.V("r"), minic.Add(minic.V("d"), minic.Ld(minic.V("h"), minic.I(0)))))),
	}}
	dis := disassembled(t, mod, isa.X86, compiler.O0) // O0: frame slots -> stack accesses
	res, err := ExecuteByName(dis, "regions", &minic.Env{Args: []int64{minic.DataBase}, Data: []byte{7}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trace
	if tr.HeapAccess == 0 {
		t.Error("heap accesses not tagged")
	}
	if tr.LibAccess == 0 {
		t.Error("rodata (lib) accesses not tagged")
	}
	if tr.AnonAccess == 0 {
		t.Error("data (anon) accesses not tagged")
	}
	if tr.StackAccess == 0 {
		t.Error("stack accesses not tagged")
	}
	if res.Ret != 9+7+42 {
		t.Errorf("ret = %d, want 58", res.Ret)
	}
}

func TestTrapOnWildAccess(t *testing.T) {
	mod := &minic.Module{Name: "t", Funcs: []*minic.Func{
		minic.NewFunc("wild", []string{"a"}, minic.Ret(minic.Ld(minic.V("a"), minic.I(0)))),
	}}
	dis := disassembled(t, mod, isa.XARM32, compiler.O2)
	_, err := ExecuteByName(dis, "wild", &minic.Env{Args: []int64{0x50}}, 0)
	var tr *minic.TrapError
	if !errors.As(err, &tr) || tr.Kind != minic.TrapOOB {
		t.Fatalf("want OOB trap, got %v", err)
	}
}

func TestStepLimitTrap(t *testing.T) {
	mod := &minic.Module{Name: "t", Funcs: []*minic.Func{
		minic.NewFunc("spin", nil, minic.Loop(minic.I(1), minic.Set("x", minic.Add(minic.V("x"), minic.I(1)))), minic.Ret(minic.V("x"))),
	}}
	dis := disassembled(t, mod, isa.AMD64, compiler.O1)
	_, err := ExecuteByName(dis, "spin", &minic.Env{}, 500)
	var tr *minic.TrapError
	if !errors.As(err, &tr) || tr.Kind != minic.TrapStepLimit {
		t.Fatalf("want step-limit trap, got %v", err)
	}
}

func TestRodataNotWritable(t *testing.T) {
	mod := &minic.Module{Name: "t", Funcs: []*minic.Func{
		minic.NewFunc("scribble", nil,
			minic.St(minic.S("readonly"), minic.I(0), minic.I(1)),
			minic.Ret(minic.I(0))),
	}}
	dis := disassembled(t, mod, isa.AMD64, compiler.O0)
	_, err := ExecuteByName(dis, "scribble", &minic.Env{}, 0)
	var tr *minic.TrapError
	if !errors.As(err, &tr) || tr.Kind != minic.TrapOOB {
		t.Fatalf("want OOB trap on rodata write, got %v", err)
	}
}

func TestDeterministicTraces(t *testing.T) {
	mod := minic.GenLibrary(minic.GenConfig{Seed: 55, Name: "libdet", NumFuncs: 6, FragileFrac: 0.0001})
	dis := disassembled(t, mod, isa.XARM64, compiler.O2)
	env := &minic.Env{Args: []int64{minic.DataBase, 40, 3, 9}, Data: []byte("deterministic data bytes for tracing ok")}
	for _, f := range dis.Funcs {
		r1, err1 := Execute(dis, f, env.Clone(), 0)
		r2, err2 := Execute(dis, f, env.Clone(), 0)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("%s: nondeterministic trap", f.Name)
		}
		if err1 != nil {
			continue
		}
		if r1.Ret != r2.Ret || r1.Trace.Vector() != r2.Trace.Vector() {
			t.Errorf("%s: nondeterministic trace", f.Name)
		}
	}
}

func TestExecuteByNameUnknown(t *testing.T) {
	mod := &minic.Module{Name: "t", Funcs: []*minic.Func{minic.NewFunc("f", nil, minic.Ret(minic.I(0)))}}
	dis := disassembled(t, mod, isa.AMD64, compiler.O0)
	if _, err := ExecuteByName(dis, "missing", &minic.Env{}, 0); err == nil {
		t.Error("want error for unknown function")
	}
}

func TestTraceVectorOrder(t *testing.T) {
	// The vector must follow Table II ordering: spot-check a few slots.
	tr := newTrace()
	tr.BinaryFunCalls = 3
	tr.Instrs = 100
	tr.Syscalls = 7
	v := tr.Vector()
	if v[0] != 3 || v[5] != 100 || v[20] != 7 {
		t.Errorf("vector ordering wrong: %v", v)
	}
}

// TestKitchenSinkOpCoverage executes a function exercising every source
// operator (all binary ops including float, all unary ops, both branch
// polarities, word memory ops, break/continue, recursion, every builtin)
// on every architecture at two optimization levels, comparing the emulator
// against the reference interpreter.
func TestKitchenSinkOpCoverage(t *testing.T) {
	mk := minic.NewFunc
	var body []minic.Stmt
	acc := func(e minic.Expr) {
		body = append(body, minic.Set("acc", minic.Xor(minic.V("acc"), e)))
	}
	body = append(body, minic.Set("acc", minic.I(0)))
	// Every binary operator, with operands that avoid traps.
	ops := []minic.BinOp{
		minic.OpAdd, minic.OpSub, minic.OpMul, minic.OpAnd, minic.OpOr,
		minic.OpXor, minic.OpShl, minic.OpShr,
		minic.OpEq, minic.OpNe, minic.OpLt, minic.OpLe, minic.OpGt, minic.OpGe,
		minic.OpFAdd, minic.OpFSub, minic.OpFMul, minic.OpFDiv,
	}
	for i, op := range ops {
		acc(minic.B(op, minic.Add(minic.V("a"), minic.I(int64(i))), minic.V("b")))
	}
	acc(minic.Div(minic.V("a"), minic.Add(minic.V("b"), minic.I(1))))
	acc(minic.Mod(minic.V("a"), minic.Add(minic.V("b"), minic.I(3))))
	// Unary operators.
	acc(minic.Neg(minic.V("a")))
	acc(minic.Not(minic.V("a")))
	acc(&minic.Un{Op: minic.OpInv, X: minic.V("b")})
	// Both polarities of every comparison in branch position.
	for _, op := range []minic.BinOp{minic.OpEq, minic.OpNe, minic.OpLt, minic.OpLe, minic.OpGt, minic.OpGe} {
		body = append(body,
			minic.IfElse(minic.B(op, minic.V("a"), minic.V("b")),
				[]minic.Stmt{minic.Set("acc", minic.Add(minic.V("acc"), minic.I(3)))},
				[]minic.Stmt{minic.Set("acc", minic.Sub(minic.V("acc"), minic.I(5)))}),
			minic.IfElse(minic.B(op, minic.V("b"), minic.V("a")),
				[]minic.Stmt{minic.Set("acc", minic.Add(minic.V("acc"), minic.I(7)))},
				[]minic.Stmt{minic.Set("acc", minic.Sub(minic.V("acc"), minic.I(11)))}),
		)
	}
	// Word + byte memory, string literals, break/continue.
	body = append(body,
		minic.StW(minic.V("p"), minic.I(1), minic.V("acc")),
		minic.Set("acc", minic.Add(minic.V("acc"), minic.LdW(minic.V("p"), minic.I(1)))),
		minic.St(minic.V("p"), minic.I(3), minic.V("acc")),
		minic.Set("acc", minic.Add(minic.V("acc"), minic.Ld(minic.V("p"), minic.I(3)))),
		minic.Set("acc", minic.Add(minic.V("acc"), minic.Call("strlen", minic.S("kitchen-sink")))),
	)
	// Increment-first loop so Continue cannot skip the induction update.
	body = append(body,
		minic.Set("i", minic.I(-1)),
		minic.Loop(minic.Lt(minic.V("i"), minic.I(20)),
			minic.Set("i", minic.Add(minic.V("i"), minic.I(1))),
			minic.When(minic.Eq(minic.Mod(minic.V("i"), minic.I(4)), minic.I(0)), &minic.Continue{}),
			minic.When(minic.Gt(minic.V("i"), minic.I(15)), &minic.Break{}),
			minic.Set("acc", minic.Add(minic.V("acc"), minic.V("i")))))
	// Every builtin.
	body = append(body,
		minic.Set("h", minic.Call("malloc", minic.I(32))),
		minic.Do(minic.Call("memset", minic.V("h"), minic.I(7), minic.I(16))),
		minic.Do(minic.Call("memmove", minic.Add(minic.V("h"), minic.I(8)), minic.V("h"), minic.I(8))),
		minic.Set("acc", minic.Add(minic.V("acc"), minic.Call("memcmp", minic.V("h"), minic.Add(minic.V("h"), minic.I(8)), minic.I(8)))),
		minic.Set("acc", minic.Add(minic.V("acc"), minic.Call("checksum", minic.V("h"), minic.I(16)))),
		minic.Set("acc", minic.Add(minic.V("acc"), minic.Call("abs", minic.Neg(minic.V("a"))))),
		minic.Set("acc", minic.Add(minic.V("acc"), minic.Call("min", minic.V("a"), minic.V("b")))),
		minic.Set("acc", minic.Add(minic.V("acc"), minic.Call("max", minic.V("a"), minic.V("b")))),
		minic.Do(minic.Call("free", minic.V("h"))),
		minic.Do(minic.Call("write_log", minic.V("acc"))),
		minic.Set("acc", minic.Add(minic.V("acc"), minic.Call("read_time"))),
		minic.Set("acc", minic.Add(minic.V("acc"), minic.Call("sys_rand", minic.V("acc")))),
		// Recursive helper call.
		minic.Set("acc", minic.Add(minic.V("acc"), minic.Call("fib", minic.I(7)))),
		minic.Ret(minic.V("acc")),
	)
	mod := &minic.Module{Name: "sink", Funcs: []*minic.Func{
		mk("fib", []string{"a"},
			minic.When(minic.Lt(minic.V("a"), minic.I(2)), minic.Ret(minic.V("a"))),
			minic.Ret(minic.Add(
				minic.Call("fib", minic.Sub(minic.V("a"), minic.I(1))),
				minic.Call("fib", minic.Sub(minic.V("a"), minic.I(2)))))),
		mk("sink", []string{"p", "a", "b"}, body...),
	}}
	envs := []*minic.Env{
		{Args: []int64{minic.DataBase, 13, 5}, Data: []byte("abcdefgh")},
		{Args: []int64{minic.DataBase, -9, 13}, Data: make([]byte, 64)},
		{Args: []int64{minic.DataBase, 5, 5}, Data: []byte{255, 0, 255, 0}},
	}
	for _, env := range envs {
		want, err := minic.Run(mod, "sink", env.Clone(), 1<<18)
		if err != nil {
			t.Fatalf("interp: %v", err)
		}
		for _, arch := range isa.All() {
			for _, lvl := range []compiler.Level{compiler.O0, compiler.O2} {
				dis := disassembled(t, mod, arch, lvl)
				got, err := ExecuteByName(dis, "sink", env.Clone(), 1<<20)
				if err != nil {
					t.Fatalf("%s/%s: %v", arch.Name, lvl, err)
				}
				if got.Ret != want.Ret {
					t.Errorf("%s/%s: ret %d, interp says %d", arch.Name, lvl, got.Ret, want.Ret)
				}
				if string(got.Mem) != string(want.Mem) {
					t.Errorf("%s/%s: memory state diverges", arch.Name, lvl)
				}
			}
		}
	}
}
