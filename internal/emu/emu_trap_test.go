package emu

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/binimg"
	"repro/internal/compiler"
	"repro/internal/disasm"
	"repro/internal/faultinject"
	"repro/internal/isa"
	"repro/internal/minic"
)

// wantTrap asserts err is a TrapError of the given kind whose rendering
// contains every fragment — the trap taxonomy is part of the failure model
// surfaced in reports, so the strings are contract, not decoration.
func wantTrap(t *testing.T, err error, kind minic.TrapKind, fragments ...string) *minic.TrapError {
	t.Helper()
	tr, ok := minic.IsTrap(err)
	if !ok {
		t.Fatalf("want %v trap, got %v", kind, err)
	}
	if tr.Kind != kind {
		t.Fatalf("trap kind = %v, want %v (err: %v)", tr.Kind, kind, tr)
	}
	for _, frag := range fragments {
		if !strings.Contains(tr.Error(), frag) {
			t.Errorf("trap %q does not mention %q", tr.Error(), frag)
		}
	}
	return tr
}

// handBuilt wraps raw instructions in a minimal disassembly, for trap paths
// the compiler never emits (stack underflow, undecodable ops, wild jumps).
func handBuilt(instrs ...disasm.DInstr) (*disasm.Disassembly, *disasm.Function) {
	fn := &disasm.Function{Name: "crafted", Addr: binimg.TextBase, Instrs: instrs}
	dis := &disasm.Disassembly{
		Image: &binimg.Image{Arch: isa.AMD64.Name, LibName: "libcrafted"},
		Arch:  isa.AMD64,
		Funcs: []*disasm.Function{fn},
	}
	return dis, fn
}

func di(in isa.Instr) disasm.DInstr { return disasm.DInstr{Instr: in} }

func TestTrapStackCallDepthOverflow(t *testing.T) {
	// Unbounded source-level recursion exhausts the frame budget.
	mod := &minic.Module{Name: "t", Funcs: []*minic.Func{
		minic.NewFunc("rec", []string{"a"},
			minic.Ret(minic.Call("rec", minic.Add(minic.V("a"), minic.I(1))))),
	}}
	dis := disassembled(t, mod, isa.AMD64, compiler.O1)
	res, err := ExecuteByName(dis, "rec", &minic.Env{Args: []int64{0}}, 0)
	wantTrap(t, err, minic.TrapStack, "stack fault", "call stack overflow")
	if res == nil || res.Trace == nil || res.Trace.Instrs == 0 {
		t.Error("trap did not carry the partial trace")
	}
}

func TestTrapStackPushOverflow(t *testing.T) {
	// Enough pushes to walk the machine stack past its floor. The frame
	// budget never triggers (no calls), so this exercises the Push guard.
	n := StackSize/8 + 1
	instrs := make([]disasm.DInstr, 0, n+1)
	for i := 0; i < n; i++ {
		instrs = append(instrs, di(isa.Instr{Op: isa.Push, Rs1: 0}))
	}
	instrs = append(instrs, di(isa.Instr{Op: isa.Ret}))
	dis, fn := handBuilt(instrs...)
	_, err := Execute(dis, fn, &minic.Env{}, int64(n)+16)
	wantTrap(t, err, minic.TrapStack, "stack overflow")
}

func TestTrapStackPopUnderflow(t *testing.T) {
	dis, fn := handBuilt(
		di(isa.Instr{Op: isa.Pop, Rd: 0}),
		di(isa.Instr{Op: isa.Ret}),
	)
	_, err := Execute(dis, fn, &minic.Env{}, 0)
	wantTrap(t, err, minic.TrapStack, "stack underflow")
}

func TestTrapDecodeVariants(t *testing.T) {
	// Falling off the end of the instruction stream.
	dis, fn := handBuilt(di(isa.Instr{Op: isa.Nop}))
	_, err := Execute(dis, fn, &minic.Env{}, 0)
	wantTrap(t, err, minic.TrapDecode, "decode fault", "outside function")

	// An opcode the emulator does not implement.
	dis, fn = handBuilt(di(isa.Instr{Op: isa.Op(250)}))
	_, err = Execute(dis, fn, &minic.Env{}, 0)
	wantTrap(t, err, minic.TrapDecode, "unimplemented op")

	// A branch that lands between instruction boundaries.
	dis, fn = handBuilt(
		di(isa.Instr{Op: isa.Jmp, Imm: 3}),
		di(isa.Instr{Op: isa.Ret}),
	)
	_, err = Execute(dis, fn, &minic.Env{}, 0)
	wantTrap(t, err, minic.TrapDecode, "mid-instruction")
}

func TestTrapBadCallVariants(t *testing.T) {
	// Direct call to an address hosting no function.
	dis, fn := handBuilt(
		di(isa.Instr{Op: isa.Call, Imm: 0xdead}),
		di(isa.Instr{Op: isa.Ret}),
	)
	_, err := Execute(dis, fn, &minic.Env{}, 0)
	wantTrap(t, err, minic.TrapBadCall, "bad call", "unmapped address")

	// Import call with an index outside the builtin table.
	dis, fn = handBuilt(
		di(isa.Instr{Op: isa.CallI, Imm: int64(minic.NumBuiltins())}),
		di(isa.Instr{Op: isa.Ret}),
	)
	_, err = Execute(dis, fn, &minic.Env{}, 0)
	wantTrap(t, err, minic.TrapBadCall, "bad import index")
}

func TestTrapStepLimitRendering(t *testing.T) {
	mod := &minic.Module{Name: "t", Funcs: []*minic.Func{
		minic.NewFunc("spin", nil,
			minic.Loop(minic.I(1), minic.Set("x", minic.Add(minic.V("x"), minic.I(1)))),
			minic.Ret(minic.V("x"))),
	}}
	dis := disassembled(t, mod, isa.AMD64, compiler.O1)
	res, err := ExecuteByName(dis, "spin", &minic.Env{}, 500)
	wantTrap(t, err, minic.TrapStepLimit, "step limit exceeded")
	if res == nil || res.Trace.Instrs != 501 {
		t.Errorf("step-limit trace should stop at limit+1 instructions, got %+v", res)
	}
}

func TestTrapBudgetWatchdog(t *testing.T) {
	mod := &minic.Module{Name: "t", Funcs: []*minic.Func{
		minic.NewFunc("spin", nil,
			minic.Loop(minic.I(1), minic.Set("x", minic.Add(minic.V("x"), minic.I(1)))),
			minic.Ret(minic.V("x"))),
	}}
	dis := disassembled(t, mod, isa.AMD64, compiler.O1)
	fn, _ := dis.Lookup("spin")

	// An already-expired deadline trips the watchdog at the first stride
	// poll: a TrapBudget trap with the instruction count, plus the partial
	// trace — the execution failed, not the scan.
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	res, err := ExecuteCtx(ctx, dis, fn, &minic.Env{}, 0)
	tr := wantTrap(t, err, minic.TrapBudget, "wall-clock budget exceeded", "instructions")
	if tr.Msg == "" {
		t.Error("budget trap should say how far execution got")
	}
	if res == nil || res.Trace.Instrs == 0 || res.Trace.Instrs%watchdogStride != 0 {
		t.Errorf("budget trap should land on a watchdog stride, got %+v", res.Trace)
	}

	// Plain cancellation is NOT a trap: the scan is being torn down, so the
	// context's own error comes back verbatim.
	cctx, ccancel := context.WithCancel(context.Background())
	ccancel()
	_, err = ExecuteCtx(cctx, dis, fn, &minic.Env{}, 0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled execution returned %v, want context.Canceled", err)
	}
	if _, ok := minic.IsTrap(err); ok {
		t.Error("cancellation must not masquerade as a trap")
	}

	// Background/nil contexts disable the watchdog entirely: the run
	// completes against the step limit only.
	if _, err := ExecuteCtx(context.Background(), dis, fn, &minic.Env{}, 100); err == nil {
		t.Error("expected step-limit trap")
	} else {
		wantTrap(t, err, minic.TrapStepLimit)
	}
}

func TestExecuteFaultInjection(t *testing.T) {
	mod := &minic.Module{Name: "t", Funcs: []*minic.Func{
		minic.NewFunc("ok", nil, minic.Ret(minic.I(7))),
	}}
	dis := disassembled(t, mod, isa.AMD64, compiler.O1)
	fn, _ := dis.Lookup("ok")

	// Clean run first: disarmed fault points cost nothing and change nothing.
	res, err := Execute(dis, fn, &minic.Env{}, 0)
	if err != nil || res.Ret != 7 {
		t.Fatalf("clean run: ret=%v err=%v", res, err)
	}

	injected := &minic.TrapError{Kind: minic.TrapDecode, Msg: "injected corruption"}
	defer faultinject.Arm(faultinject.ExecTrap, dis.Image.LibName+":"+fn.Name, injected)()
	res, err = Execute(dis, fn, &minic.Env{}, 0)
	wantTrap(t, err, minic.TrapDecode, "injected corruption")
	if res == nil || res.Trace == nil {
		t.Error("injected fault should still return the (empty) partial result")
	}
	if res.Trace.Instrs != 0 {
		t.Error("injected pre-execution fault must not execute instructions")
	}

	// Other functions in the same image are unaffected (exact-key match).
	other := disassembled(t, &minic.Module{Name: "t", Funcs: []*minic.Func{
		minic.NewFunc("bystander", nil, minic.Ret(minic.I(1))),
	}}, isa.AMD64, compiler.O1)
	if _, err := ExecuteByName(other, "bystander", &minic.Env{}, 0); err != nil {
		t.Errorf("bystander function hit the fault: %v", err)
	}
}
