package emu

import (
	"testing"

	"repro/internal/compiler"
	"repro/internal/disasm"
	"repro/internal/isa"
	"repro/internal/minic"
)

// BenchmarkExecute measures emulated instructions per second on a
// memory-heavy checksum loop (the pipeline's dominant dynamic-stage cost).
func BenchmarkExecute(b *testing.B) {
	mod := &minic.Module{Name: "b", Funcs: []*minic.Func{
		minic.NewFunc("hot", []string{"p", "n"},
			minic.Set("s", minic.I(0)),
			minic.Set("i", minic.I(0)),
			minic.Loop(minic.Lt(minic.V("i"), minic.V("n")),
				minic.Set("s", minic.Xor(minic.Shl(minic.V("s"), minic.I(3)),
					minic.Ld(minic.V("p"), minic.And(minic.V("i"), minic.I(255))))),
				minic.Set("i", minic.Add(minic.V("i"), minic.I(1)))),
			minic.Ret(minic.V("s"))),
	}}
	for _, arch := range isa.All() {
		arch := arch
		b.Run(arch.Name, func(b *testing.B) {
			im, err := compiler.Compile(mod, arch, compiler.O2)
			if err != nil {
				b.Fatal(err)
			}
			dis, err := disasm.Disassemble(im)
			if err != nil {
				b.Fatal(err)
			}
			fn, _ := dis.Lookup("hot")
			env := &minic.Env{Args: []int64{minic.DataBase, 4096}, Data: make([]byte, 4096)}
			res, err := Execute(dis, fn, env, 1<<22)
			if err != nil {
				b.Fatal(err)
			}
			perIter := res.Trace.Instrs
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Execute(dis, fn, env, 1<<22); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(perIter)*float64(b.N)/b.Elapsed().Seconds(), "instrs/s")
		})
	}
}
