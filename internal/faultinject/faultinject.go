// Package faultinject provides deterministic, hookable fault points for
// chaos-testing the scan pipeline. Production code calls Fire (or FirePanic)
// at well-known points; tests arm faults against those points and assert
// that the pipeline degrades instead of aborting — every injected fault must
// surface as a recorded diagnostic while the rest of the scan completes.
//
// Faults are keyed: a point is armed either for one exact key (one library
// image, one reference function) or with the empty key, which matches every
// Fire at that point. Matching is by value, never by arrival order, so an
// armed fault set produces the same failures at any worker count — the
// property the engine's determinism tests rely on.
//
// The disarmed fast path is a single atomic load, so leaving the hooks
// compiled into hot paths (the emulator's execute entry, the scan workers)
// costs nothing in production.
package faultinject

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Point names one hookable location in the pipeline.
type Point string

// Registered fault points.
const (
	// DecodeCorrupt fires in binimg.Decode after the header parses, keyed
	// by the decoded library name. Arming it simulates image corruption
	// that survives the checksum (bit rot between validation and use).
	DecodeCorrupt Point = "binimg.decode"
	// PrepareFail fires in patchecko.Prepare, keyed by library name,
	// before disassembly. Arming it simulates per-image static-stage
	// failures (unrecoverable function boundaries, feature extraction).
	PrepareFail Point = "patchecko.prepare"
	// ExecTrap fires at the top of every emulator execution, keyed by
	// "<libname>:<funcname>". Arming it with a *minic.TrapError simulates
	// OOB, step-limit exhaustion or watchdog-budget traps in exactly that
	// function's executions.
	ExecTrap Point = "emu.execute"
	// ScanPanic fires inside each scan-grid worker, keyed by
	// "<libname>|<cve>|<mode>". Arming it panics the worker for exactly
	// that grid cell, exercising the engine's panic recovery.
	ScanPanic Point = "patchecko.scanworker"
	// AdmitFail fires in the scan service's admission path, keyed by
	// tenant. Arming it simulates an admission-layer outage: the submission
	// must be rejected with a typed error, never accepted half-way or hung.
	AdmitFail Point = "server.admit"
	// JournalFail fires on every job-journal append, keyed by the record
	// kind ("submitted", "started", ...). Arming it simulates journal-disk
	// failure: jobs must keep completing with crash-safety degraded and the
	// failure counted, never fail because their bookkeeping did.
	JournalFail Point = "server.journal"
	// CompidMatch fires in the component-identification prefilter's keep
	// decision, keyed by "<libname>|<cve>". Arming it simulates a broken
	// fingerprint/signature comparison for that cell: the prefilter must
	// degrade to keeping the cell (full-grid behavior, counted as
	// prefilter_degraded), never prune on a faulty match.
	CompidMatch Point = "compid.match"
	// StoreReadFail fires in cas.Store.GetScore, keyed by the entry key.
	// Arming it simulates unreadable store files: every read degrades to a
	// miss (recompute), so armed store faults may slow a scan but can never
	// change its report.
	StoreReadFail Point = "cas.storeread"
)

var (
	mu     sync.RWMutex
	faults map[Point]map[string]error
	armed  atomic.Int32 // count of armed faults; 0 = fast path
)

// Arm registers err to be returned by Fire(p, key). An empty key matches
// every Fire at the point. Arming the same (point, key) twice replaces the
// earlier fault. The returned function disarms it; tests must call it (via
// t.Cleanup or defer) so faults never leak across tests.
func Arm(p Point, key string, err error) (disarm func()) {
	if err == nil {
		panic("faultinject: Arm with nil error")
	}
	mu.Lock()
	if faults == nil {
		faults = make(map[Point]map[string]error)
	}
	if faults[p] == nil {
		faults[p] = make(map[string]error)
	}
	if _, dup := faults[p][key]; !dup {
		armed.Add(1)
	}
	faults[p][key] = err
	mu.Unlock()
	return func() {
		mu.Lock()
		if _, ok := faults[p][key]; ok {
			delete(faults[p], key)
			armed.Add(-1)
		}
		mu.Unlock()
	}
}

// Fire reports the armed fault for (p, key), or nil. The exact key wins
// over the point's wildcard. When nothing is armed anywhere this is one
// atomic load.
func Fire(p Point, key string) error {
	if armed.Load() == 0 {
		return nil
	}
	mu.RLock()
	defer mu.RUnlock()
	m := faults[p]
	if m == nil {
		return nil
	}
	if err, ok := m[key]; ok {
		return err
	}
	return m[""]
}

// FirePanic panics with the armed fault for (p, key), if any. It is the
// hook for injected worker crashes: the panic value wraps the armed error
// so recovery sites can surface it verbatim.
func FirePanic(p Point, key string) {
	if err := Fire(p, key); err != nil {
		panic(fmt.Sprintf("faultinject: %s[%s]: %v", p, key, err))
	}
}

// Active reports whether any fault is currently armed. Tests use it to
// assert cleanup; production code never needs it.
func Active() bool { return armed.Load() != 0 }
