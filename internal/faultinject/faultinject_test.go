package faultinject

import (
	"errors"
	"strings"
	"sync"
	"testing"
)

func TestArmFireDisarm(t *testing.T) {
	if Active() {
		t.Fatal("faults armed at test entry")
	}
	errA := errors.New("boom-a")
	disarm := Arm(PrepareFail, "liba", errA)
	if !Active() {
		t.Error("Arm did not mark the registry active")
	}
	if got := Fire(PrepareFail, "liba"); !errors.Is(got, errA) {
		t.Errorf("Fire(exact key) = %v, want %v", got, errA)
	}
	if got := Fire(PrepareFail, "libz"); got != nil {
		t.Errorf("Fire(other key) = %v, want nil", got)
	}
	if got := Fire(ExecTrap, "liba"); got != nil {
		t.Errorf("Fire(other point) = %v, want nil", got)
	}
	disarm()
	if Active() || Fire(PrepareFail, "liba") != nil {
		t.Error("disarm did not clear the fault")
	}
	disarm() // double disarm is a no-op
	if Active() {
		t.Error("double disarm corrupted the armed count")
	}
}

func TestWildcardAndPrecedence(t *testing.T) {
	wild := errors.New("any")
	exact := errors.New("this-one")
	d1 := Arm(ExecTrap, "", wild)
	d2 := Arm(ExecTrap, "lib:fn", exact)
	defer d1()
	defer d2()
	if got := Fire(ExecTrap, "other:fn"); !errors.Is(got, wild) {
		t.Errorf("wildcard did not match: %v", got)
	}
	if got := Fire(ExecTrap, "lib:fn"); !errors.Is(got, exact) {
		t.Errorf("exact key should win over wildcard: %v", got)
	}
}

func TestRearmReplaces(t *testing.T) {
	first := errors.New("first")
	second := errors.New("second")
	d1 := Arm(DecodeCorrupt, "k", first)
	d2 := Arm(DecodeCorrupt, "k", second)
	if got := Fire(DecodeCorrupt, "k"); !errors.Is(got, second) {
		t.Errorf("re-arm did not replace: %v", got)
	}
	d1()
	d2()
	if Active() {
		t.Error("armed count drifted after replace+disarm")
	}
}

func TestFirePanic(t *testing.T) {
	defer Arm(ScanPanic, "cell", errors.New("injected crash"))()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("FirePanic did not panic on an armed fault")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "injected crash") {
			t.Errorf("panic value %v does not carry the armed error", r)
		}
	}()
	FirePanic(ScanPanic, "other") // disarmed key: no panic
	FirePanic(ScanPanic, "cell")
}

func TestArmNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Arm(nil) should panic")
		}
	}()
	Arm(PrepareFail, "x", nil)
}

func TestConcurrentFire(t *testing.T) {
	// Fire is on the emulator's hot path; it must be race-free against
	// concurrent Arm/disarm (run under -race via make race).
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				Arm(ExecTrap, "spin", errors.New("x"))()
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 10000; i++ {
			Fire(ExecTrap, "spin")
			Fire(ExecTrap, "other")
		}
		close(stop)
	}()
	wg.Wait()
	if Active() {
		t.Error("faults leaked from concurrency test")
	}
}
