package features

import (
	"testing"

	"repro/internal/compiler"
	"repro/internal/disasm"
	"repro/internal/isa"
	"repro/internal/minic"
)

func BenchmarkExtract(b *testing.B) {
	mod := minic.GenLibrary(minic.GenConfig{Seed: 8, Name: "libbench", NumFuncs: 20})
	im, err := compiler.Compile(mod, isa.AMD64, compiler.O2)
	if err != nil {
		b.Fatal(err)
	}
	dis, err := disasm.Disassemble(im)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, f := range dis.Funcs {
			_ = Extract(dis, f)
		}
	}
	b.ReportMetric(float64(len(dis.Funcs))*float64(b.N)/b.Elapsed().Seconds(), "funcs/s")
}
