// Package features extracts the 48 static function features of the paper's
// Table I from a disassembled function: instruction and constant counts,
// frame size, basic-block statistics, CFG shape (block/edge counts,
// cyclomatic complexity, block-kind histogram), per-block call and
// arithmetic statistics, and betweenness-centrality statistics over the CFG
// (computed with Brandes' algorithm).
//
// Two Table I block kinds depend on IDA-specific notions that do not exist
// in this ISA (indirect jumps, noreturn externs); those features are
// structurally present but always zero, as documented in DESIGN.md.
package features

import (
	"math"

	"repro/internal/disasm"
	"repro/internal/isa"
	"repro/internal/minic"
)

// NumStatic is the length of the static feature vector.
const NumStatic = 48

// Names lists the Table I feature names in vector order.
var Names = [NumStatic]string{
	"num_constant", "num_string", "num_inst", "size_local", "fun_flag",
	"num_import", "num_ox", "num_cx", "size_fun",
	"min_i_b", "max_i_b", "avg_i_b", "std_i_b",
	"min_s_b", "max_s_b", "avg_s_b", "std_s_b",
	"num_bb", "num_edge", "cyclomatic_complexity",
	"fcb_normal", "fcb_indjump", "fcb_ret", "fcb_cndret",
	"fcb_noret", "fcb_enoret", "fcb_extern", "fcb_error",
	"min_call_b", "max_call_b", "avg_call_b", "std_call_b", "sum_call_b",
	"min_arith_b", "max_arith_b", "avg_arith_b", "std_arith_b", "sum_arith_b",
	"min_arith_fp_b", "max_arith_fp_b", "avg_arith_fp_b", "std_arith_fp_b", "sum_arith_fp_b",
	"min_betweeness_cent", "max_betweeness_cent", "avg_betweeness_cent",
	"std_betweeness_cent", "betweeness_cent_zero",
}

// Vector is one function's static feature vector.
type Vector [NumStatic]float64

// Function flag bits (the fun_flag feature).
const (
	FlagReturns  = 1 << iota // function has at least one return block
	FlagLeaf                 // function makes no calls
	FlagUsesFP               // function contains FP arithmetic
	FlagHasError             // a block passes execution past the function end
)

// Extract computes the static feature vector for fn within dis.
func Extract(dis *disasm.Disassembly, fn *disasm.Function) Vector {
	var v Vector

	rodataLo := int64(minic.RodataBase)
	rodataHi := rodataLo + int64(len(dis.Image.Rodata))

	var (
		numConst, numString, numCx int64
		codeRefs                   = make(map[int64]struct{})
		imports                    = make(map[int64]struct{})
		usesFP                     bool
	)
	for _, in := range fn.Instrs {
		switch {
		case in.Op == isa.Call:
			numCx++
			codeRefs[in.Imm] = struct{}{}
		case in.Op == isa.CallI:
			numCx++
			imports[in.Imm] = struct{}{}
		case in.Op.IsBranch():
			codeRefs[int64(fn.Addr)+in.Imm] = struct{}{}
		case in.Op == isa.Ldi:
			if in.Imm >= rodataLo && in.Imm < rodataHi {
				numString++
			} else {
				numConst++
			}
		case in.Op == isa.CmpI || isALUImm(in.Op):
			numConst++
		}
		if in.Op.IsArithFP() {
			usesFP = true
		}
	}

	// Per-block statistics.
	nb := len(fn.Blocks)
	instPerBlock := make([]float64, 0, nb)
	sizePerBlock := make([]float64, 0, nb)
	callPerBlock := make([]float64, 0, nb)
	arithPerBlock := make([]float64, 0, nb)
	fpPerBlock := make([]float64, 0, nb)
	var kindNormal, kindRet, kindCndRet, kindError float64
	retBlocks := make(map[int]bool)
	for bi := range fn.Blocks {
		if fn.Blocks[bi].Kind == disasm.BlockRet {
			retBlocks[bi] = true
		}
	}
	for bi := range fn.Blocks {
		b := &fn.Blocks[bi]
		instPerBlock = append(instPerBlock, float64(b.NumInstrs()))
		sizePerBlock = append(sizePerBlock, float64(fn.ByteSize(b)))
		var calls, arith, fp float64
		for i := b.First; i <= b.Last; i++ {
			op := fn.Instrs[i].Op
			switch {
			case op.IsCall():
				calls++
			case op.IsArith():
				arith++
			case op.IsArithFP():
				arith++
				fp++
			}
		}
		callPerBlock = append(callPerBlock, calls)
		arithPerBlock = append(arithPerBlock, arith)
		fpPerBlock = append(fpPerBlock, fp)
		switch b.Kind {
		case disasm.BlockRet:
			kindRet++
		case disasm.BlockError:
			kindError++
		default:
			// A conditional-branch block with a return-block successor is
			// the conditional-return kind; everything else is normal.
			if fn.Instrs[b.Last].Op.IsCondBranch() && anySucc(b, retBlocks) {
				kindCndRet++
			} else {
				kindNormal++
			}
		}
	}

	cent := Betweenness(fn)
	var centZero float64
	for _, c := range cent {
		if c == 0 {
			centZero++
		}
	}

	edges := float64(fn.NumEdges())
	nodes := float64(nb)

	flags := float64(0)
	if kindRet > 0 {
		flags += FlagReturns
	}
	if numCx == 0 {
		flags += FlagLeaf
	}
	if usesFP {
		flags += FlagUsesFP
	}
	if kindError > 0 {
		flags += FlagHasError
	}

	i := 0
	put := func(x float64) { v[i] = x; i++ }
	put(float64(numConst))
	put(float64(numString))
	put(float64(len(fn.Instrs)))
	put(float64(fn.LocalSize()))
	put(flags)
	put(float64(len(imports)))
	put(float64(len(codeRefs)))
	put(float64(numCx))
	put(float64(fn.Size))
	putStats4(put, instPerBlock)
	putStats4(put, sizePerBlock)
	put(nodes)
	put(edges)
	put(edges - nodes + 2) // cyclomatic complexity
	put(kindNormal)
	put(0) // fcb_indjump: ISA has no indirect jumps
	put(kindRet)
	put(kindCndRet)
	put(0) // fcb_noret
	put(0) // fcb_enoret
	put(0) // fcb_extern
	put(kindError)
	putStats5(put, callPerBlock)
	putStats5(put, arithPerBlock)
	putStats5(put, fpPerBlock)
	putStats4(put, cent)
	put(centZero)
	return v
}

func isALUImm(op isa.Op) bool {
	switch op {
	case isa.AddI, isa.SubI, isa.MulI, isa.AndI, isa.OrI, isa.XorI, isa.ShlI, isa.ShrI:
		return true
	}
	return false
}

func anySucc(b *disasm.Block, set map[int]bool) bool {
	for _, s := range b.Succs {
		if set[s] {
			return true
		}
	}
	return false
}

func putStats4(put func(float64), xs []float64) {
	mn, mx, mean, std := stats(xs)
	put(mn)
	put(mx)
	put(mean)
	put(std)
}

func putStats5(put func(float64), xs []float64) {
	mn, mx, mean, std := stats(xs)
	put(mn)
	put(mx)
	put(mean)
	put(std)
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	put(sum)
}

func stats(xs []float64) (mn, mx, mean, std float64) {
	if len(xs) == 0 {
		return 0, 0, 0, 0
	}
	mn, mx = xs[0], xs[0]
	var sum, sum2 float64
	for _, x := range xs {
		if x < mn {
			mn = x
		}
		if x > mx {
			mx = x
		}
		sum += x
		sum2 += x * x
	}
	mean = sum / float64(len(xs))
	variance := sum2/float64(len(xs)) - mean*mean
	if variance < 0 {
		variance = 0
	}
	return mn, mx, mean, math.Sqrt(variance)
}

// Betweenness computes betweenness centrality for every basic block of the
// function's CFG using Brandes' algorithm on the directed, unweighted graph.
func Betweenness(fn *disasm.Function) []float64 {
	n := len(fn.Blocks)
	cb := make([]float64, n)
	if n == 0 {
		return cb
	}
	adj := make([][]int, n)
	for i := range fn.Blocks {
		adj[i] = fn.Blocks[i].Succs
	}
	// Brandes: one BFS per source.
	for s := 0; s < n; s++ {
		var stack []int
		preds := make([][]int, n)
		sigma := make([]float64, n)
		dist := make([]int, n)
		for i := range dist {
			dist[i] = -1
		}
		sigma[s] = 1
		dist[s] = 0
		queue := []int{s}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			stack = append(stack, v)
			for _, w := range adj[v] {
				if dist[w] < 0 {
					dist[w] = dist[v] + 1
					queue = append(queue, w)
				}
				if dist[w] == dist[v]+1 {
					sigma[w] += sigma[v]
					preds[w] = append(preds[w], v)
				}
			}
		}
		delta := make([]float64, n)
		for i := len(stack) - 1; i >= 0; i-- {
			w := stack[i]
			for _, v := range preds[w] {
				delta[v] += sigma[v] / sigma[w] * (1 + delta[w])
			}
			if w != s {
				cb[w] += delta[w]
			}
		}
	}
	return cb
}
