package features

import (
	"math"
	"testing"

	"repro/internal/compiler"
	"repro/internal/disasm"
	"repro/internal/isa"
	"repro/internal/minic"
)

func featureIdx(name string) int {
	for i, n := range Names {
		if n == name {
			return i
		}
	}
	return -1
}

func extractAll(t *testing.T, mod *minic.Module, arch *isa.Arch, lvl compiler.Level) map[string]Vector {
	t.Helper()
	im, err := compiler.Compile(mod, arch, lvl)
	if err != nil {
		t.Fatal(err)
	}
	dis, err := disasm.Disassemble(im)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]Vector, len(dis.Funcs))
	for _, f := range dis.Funcs {
		out[f.Name] = Extract(dis, f)
	}
	return out
}

func TestNamesComplete(t *testing.T) {
	seen := make(map[string]bool)
	for _, n := range Names {
		if n == "" {
			t.Fatal("empty feature name")
		}
		if seen[n] {
			t.Fatalf("duplicate feature name %s", n)
		}
		seen[n] = true
	}
	if len(Names) != 48 {
		t.Fatalf("%d feature names, want 48 (Table I)", len(Names))
	}
}

func TestExtractBasicSanity(t *testing.T) {
	mod := &minic.Module{Name: "t", Funcs: []*minic.Func{
		minic.NewFunc("f", []string{"p", "n"},
			minic.Set("s", minic.Call("strlen", minic.S("tag-string"))),
			minic.Loop(minic.Gt(minic.V("n"), minic.I(0)),
				minic.Set("s", minic.Add(minic.V("s"), minic.Ld(minic.V("p"), minic.V("n")))),
				minic.Set("n", minic.Sub(minic.V("n"), minic.I(1))),
			),
			minic.Ret(minic.V("s"))),
	}}
	for _, arch := range isa.All() {
		vs := extractAll(t, mod, arch, compiler.O1)
		v := vs["f"]
		get := func(name string) float64 { return v[featureIdx(name)] }
		if get("num_inst") <= 0 || get("size_fun") <= 0 {
			t.Errorf("%s: empty function features", arch.Name)
		}
		if get("num_string") < 1 {
			t.Errorf("%s: string literal not counted (num_string=%v)", arch.Name, get("num_string"))
		}
		if get("num_cx") < 1 || get("num_import") < 1 {
			t.Errorf("%s: strlen call not counted", arch.Name)
		}
		if get("num_bb") < 3 {
			t.Errorf("%s: loop should create >= 3 blocks, got %v", arch.Name, get("num_bb"))
		}
		// Cyclomatic complexity consistency: E - N + 2.
		want := get("num_edge") - get("num_bb") + 2
		if get("cyclomatic_complexity") != want {
			t.Errorf("%s: cyclomatic mismatch", arch.Name)
		}
		if get("fcb_ret") < 1 {
			t.Errorf("%s: no return blocks counted", arch.Name)
		}
		// Block-kind histogram sums to num_bb.
		kinds := get("fcb_normal") + get("fcb_indjump") + get("fcb_ret") +
			get("fcb_cndret") + get("fcb_noret") + get("fcb_enoret") +
			get("fcb_extern") + get("fcb_error")
		if kinds != get("num_bb") {
			t.Errorf("%s: block kinds sum %v != num_bb %v", arch.Name, kinds, get("num_bb"))
		}
		if int64(get("fun_flag"))&FlagReturns == 0 {
			t.Errorf("%s: FlagReturns not set", arch.Name)
		}
		if int64(get("fun_flag"))&FlagLeaf != 0 {
			t.Errorf("%s: FlagLeaf set on a calling function", arch.Name)
		}
	}
}

func TestSameSourceDifferentArchFeaturesDiffer(t *testing.T) {
	mod := minic.GenLibrary(minic.GenConfig{Seed: 21, Name: "libfeat", NumFuncs: 5})
	byArch := make(map[string]map[string]Vector)
	for _, arch := range isa.All() {
		byArch[arch.Name] = extractAll(t, mod, arch, compiler.O2)
	}
	// Features differ across architectures (else the learning task would be
	// trivial) but stay far closer than across different functions.
	diff := 0
	for _, f := range mod.Funcs {
		if byArch["amd64"][f.Name] != byArch["xarm32"][f.Name] {
			diff++
		}
	}
	if diff == 0 {
		t.Error("features identical across architectures — no cross-platform signal")
	}
}

func TestExtractDeterministic(t *testing.T) {
	mod := minic.GenLibrary(minic.GenConfig{Seed: 3, Name: "libdet", NumFuncs: 8})
	a := extractAll(t, mod, isa.X86, compiler.O3)
	b := extractAll(t, mod, isa.X86, compiler.O3)
	for name := range a {
		if a[name] != b[name] {
			t.Errorf("%s: nondeterministic features", name)
		}
	}
}

func TestBetweennessPathGraph(t *testing.T) {
	// A straight-line function is a path graph: interior nodes have
	// positive centrality, endpoints zero.
	mod := &minic.Module{Name: "t", Funcs: []*minic.Func{
		minic.NewFunc("f", []string{"a"},
			minic.When(minic.Gt(minic.V("a"), minic.I(0)),
				minic.Set("x", minic.I(1))),
			minic.When(minic.Gt(minic.V("a"), minic.I(1)),
				minic.Set("x", minic.I(2))),
			minic.Ret(minic.V("x"))),
	}}
	im, err := compiler.Compile(mod, isa.AMD64, compiler.O0)
	if err != nil {
		t.Fatal(err)
	}
	dis, err := disasm.Disassemble(im)
	if err != nil {
		t.Fatal(err)
	}
	fn, _ := dis.Lookup("f")
	cent := Betweenness(fn)
	if len(cent) != len(fn.Blocks) {
		t.Fatalf("centrality length %d, blocks %d", len(cent), len(fn.Blocks))
	}
	var pos int
	for _, c := range cent {
		if c < 0 {
			t.Errorf("negative centrality %v", c)
		}
		if c > 0 {
			pos++
		}
	}
	if pos == 0 {
		t.Error("no interior node has positive centrality")
	}
}

func TestBetweennessKnownGraph(t *testing.T) {
	// Hand-built 4-node path: 0->1->2->3. Betweenness (directed): node 1
	// lies on paths 0->2, 0->3 (2 paths); node 2 on 0->3, 1->3 (2 paths).
	fn := &disasm.Function{
		Blocks: []disasm.Block{
			{Index: 0, Succs: []int{1}},
			{Index: 1, Succs: []int{2}},
			{Index: 2, Succs: []int{3}},
			{Index: 3},
		},
	}
	cent := Betweenness(fn)
	want := []float64{0, 2, 2, 0}
	for i := range want {
		if math.Abs(cent[i]-want[i]) > 1e-12 {
			t.Errorf("cent[%d] = %v, want %v", i, cent[i], want[i])
		}
	}
}

func TestBetweennessDiamond(t *testing.T) {
	// Diamond 0->{1,2}->3: shortest paths 0->3 split over 1 and 2, so each
	// carries 0.5.
	fn := &disasm.Function{
		Blocks: []disasm.Block{
			{Index: 0, Succs: []int{1, 2}},
			{Index: 1, Succs: []int{3}},
			{Index: 2, Succs: []int{3}},
			{Index: 3},
		},
	}
	cent := Betweenness(fn)
	want := []float64{0, 0.5, 0.5, 0}
	for i := range want {
		if math.Abs(cent[i]-want[i]) > 1e-12 {
			t.Errorf("cent[%d] = %v, want %v", i, cent[i], want[i])
		}
	}
}

func TestEmptyFunctionVector(t *testing.T) {
	var fn disasm.Function
	cent := Betweenness(&fn)
	if len(cent) != 0 {
		t.Error("empty function should have empty centrality")
	}
}
