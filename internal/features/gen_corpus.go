//go:build ignore

// Regenerates the crafted entries of the FuzzExtract seed corpus in
// testdata/fuzz/FuzzExtract. Run from this directory:
//
//	go run gen_corpus.go
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/isa"
)

func main() {
	dir := filepath.Join("testdata", "fuzz", "FuzzExtract")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	for name, data := range seeds() {
		var buf bytes.Buffer
		buf.WriteString("go test fuzz v1\n")
		fmt.Fprintf(&buf, "[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(dir, name), buf.Bytes(), 0o644); err != nil {
			log.Fatal(err)
		}
	}
}

// seeds returns the crafted corpus: degenerate recovered functions that
// stress the feature ratios — a bare one-instruction function (minimal
// counts, zero-heavy denominators) and prologue-dense text that recovers
// into many tiny merged functions. The first byte selects the architecture,
// matching the fuzz target's input scheme.
func seeds() map[string][]byte {
	out := make(map[string][]byte)
	for ai, arch := range isa.All() {
		p := arch.PrologueBytes()

		bare := append([]byte{byte(ai)}, p...)
		out["bare-prologue-"+arch.Name] = bare

		dense := []byte{byte(ai)}
		for len(dense) < 512 {
			dense = append(dense, p...)
		}
		out["prologue-dense-"+arch.Name] = dense
	}
	return out
}
