package features

import (
	"math"
	"testing"

	"repro/internal/binimg"
	"repro/internal/compiler"
	"repro/internal/disasm"
	"repro/internal/isa"
	"repro/internal/minic"
)

// FuzzExtract hardens static feature extraction against whatever the
// stripped-image disassembler recovers from arbitrary bytes: the first
// input byte selects the architecture, the rest is the .text section.
// Extraction must never panic, and every one of the 48 Table I features
// must come out finite — NaN or Inf here would poison normalization and
// the similarity network downstream.
func FuzzExtract(f *testing.F) {
	mod := minic.GenLibrary(minic.GenConfig{Seed: 11, Name: "libfeat", NumFuncs: 4})
	for ai, arch := range isa.All() {
		im, err := compiler.Compile(mod, arch, compiler.O2)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(append([]byte{byte(ai)}, im.Text...))
	}
	f.Add([]byte{1})
	f.Add([]byte{2, 0x00, 0xff, 0x55, 0xaa})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		if len(data) > 1<<12 {
			data = data[:1<<12]
		}
		archs := isa.All()
		arch := archs[int(data[0])%len(archs)]
		im := &binimg.Image{
			Arch:     arch.Name,
			LibName:  "libfeat",
			OptLevel: "O2",
			Text:     data[1:],
			Stripped: true,
		}
		dis, err := disasm.Disassemble(im)
		if err != nil {
			return
		}
		for fi, fn := range dis.Funcs {
			v := Extract(dis, fn)
			for i, x := range v {
				if math.IsNaN(x) || math.IsInf(x, 0) {
					t.Fatalf("func %d: feature %d (%s) = %v, want finite", fi, i, Names[i], x)
				}
			}
		}
	})
}
