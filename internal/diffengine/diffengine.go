// Package diffengine implements PATCHECKO's third stage: deciding whether a
// matched target function is the vulnerable or the patched version of a CVE
// function (§III-D).
//
// Given the vulnerable reference fv, the patched reference fp and the
// target ft, the engine combines three evidence sources, exactly as the
// paper describes:
//
//   - the static feature vectors of fv, fp and ft (Table I);
//   - the dynamic semantic similarity scores sim(fv,ft) vs sim(fp,ft)
//     (Minkowski p=3 over the shared execution environments);
//   - differential signatures comparing CFG topology and semantic
//     information — local-variable footprint and the set of library
//     functions called (the paper's case study hinges on the patched
//     removeUnsynchronization dropping its j___aeabi_memmove import).
//
// The engine inherits the paper's documented limitation: when the patch is
// a single constant (CVE-2018-9470) none of these features move, the
// evidence is a dead tie, and the verdict falls back to "patched" — the one
// misclassification in Table VIII.
package diffengine

import (
	"math"
	"sort"

	"repro/internal/disasm"
	"repro/internal/dynamic"
	"repro/internal/features"
	"repro/internal/isa"
	"repro/internal/obs"
)

// Signature is the differential signature of one function: CFG topology
// plus semantic information.
type Signature struct {
	NumBlocks int
	NumEdges  int
	// DegreeSeq is the sorted out-degree sequence of the CFG — a cheap
	// topology fingerprint.
	DegreeSeq []int
	// Imports is the sorted set of import-table slots the function calls
	// (library-function identity, e.g. memmove).
	Imports []int
	// LocalSize is the frame footprint in bytes.
	LocalSize int64
	// NumCalls is the number of call sites (intra + import).
	NumCalls int
}

// SigOf computes the differential signature of a disassembled function.
func SigOf(fn *disasm.Function) Signature {
	sig := Signature{
		NumBlocks: len(fn.Blocks),
		NumEdges:  fn.NumEdges(),
		LocalSize: fn.LocalSize(),
		Imports:   fn.ImportIdxs(),
	}
	sort.Ints(sig.Imports)
	for i := range fn.Blocks {
		sig.DegreeSeq = append(sig.DegreeSeq, len(fn.Blocks[i].Succs))
	}
	sort.Ints(sig.DegreeSeq)
	for _, in := range fn.Instrs {
		if in.Op == isa.Call || in.Op == isa.CallI {
			sig.NumCalls++
		}
	}
	return sig
}

// Distance quantifies how different two signatures are; 0 means identical.
func Distance(a, b Signature) float64 {
	d := math.Abs(float64(a.NumBlocks-b.NumBlocks)) +
		math.Abs(float64(a.NumEdges-b.NumEdges)) +
		math.Abs(float64(a.NumCalls-b.NumCalls)) +
		math.Abs(float64(a.LocalSize-b.LocalSize))/8
	d += float64(setDiff(a.Imports, b.Imports)) * 4 // library-call identity is strong evidence
	d += seqDiff(a.DegreeSeq, b.DegreeSeq)
	return d
}

// setDiff counts elements in the symmetric difference of two sorted sets.
func setDiff(a, b []int) int {
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			i++
			j++
		case a[i] < b[j]:
			i++
			n++
		default:
			j++
			n++
		}
	}
	return n + (len(a) - i) + (len(b) - j)
}

// seqDiff compares two sorted integer sequences element-wise.
func seqDiff(a, b []int) float64 {
	var d float64
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		av, bv := 0, 0
		if i < len(a) {
			av = a[i]
		}
		if i < len(b) {
			bv = b[i]
		}
		d += math.Abs(float64(av - bv))
	}
	return d
}

// Evidence reports the per-source measurements behind a verdict, for
// transparency in reports and tests.
type Evidence struct {
	// Dynamic similarity distances (smaller = closer).
	SimVuln, SimPatched float64
	// Static feature L1 distances.
	StaticVuln, StaticPatched float64
	// Differential signature distances.
	SigVuln, SigPatched float64
}

// Verdict is the engine's decision.
type Verdict struct {
	// Patched reports the engine's conclusion.
	Patched bool
	// Confidence in [0,1]; 0.5 means a dead tie (resolved toward Patched,
	// the engine's fallback, reproducing the paper's CVE-2018-9470 miss).
	Confidence float64
	Evidence   Evidence
}

// Inputs carries everything the engine needs for one decision.
type Inputs struct {
	VulnStatic    features.Vector
	PatchedStatic features.Vector
	TargetStatic  features.Vector

	VulnProfiles    []dynamic.Profile
	PatchedProfiles []dynamic.Profile
	TargetProfiles  []dynamic.Profile

	VulnSig    Signature
	PatchedSig Signature
	TargetSig  Signature

	// Obs receives verdict counters; nil (the default) is the no-op sink.
	Obs *obs.Metrics
}

// Weights of the three evidence sources; signatures dominate because
// library-call and CFG identity are the most reliable patch indicators.
const (
	wSig    = 0.5
	wDyn    = 0.3
	wStatic = 0.2
)

// Decide runs the differential analysis.
func Decide(in Inputs) Verdict {
	ev := Evidence{
		SimVuln:       dynamic.Similarity(in.VulnProfiles, in.TargetProfiles),
		SimPatched:    dynamic.Similarity(in.PatchedProfiles, in.TargetProfiles),
		StaticVuln:    l1(in.VulnStatic, in.TargetStatic),
		StaticPatched: l1(in.PatchedStatic, in.TargetStatic),
		SigVuln:       Distance(in.VulnSig, in.TargetSig),
		SigPatched:    Distance(in.PatchedSig, in.TargetSig),
	}
	// Each source votes in [-1, 1]: positive = looks patched.
	score := wSig*vote(ev.SigVuln, ev.SigPatched) +
		wDyn*vote(ev.SimVuln, ev.SimPatched) +
		wStatic*vote(ev.StaticVuln, ev.StaticPatched)
	v := Verdict{Evidence: ev}
	// A dead tie (all evidence identical) falls back to "patched": with no
	// differential signal the engine cannot distinguish the versions, and
	// this default is what produces the paper's single Table VIII error on
	// the one-integer patch.
	v.Patched = score >= 0
	v.Confidence = 0.5 + math.Min(math.Abs(score), 1)/2
	if score == 0 {
		v.Confidence = 0.5
	}
	in.Obs.Add(obs.CtrVerdicts, 1)
	if v.Patched {
		in.Obs.Add(obs.CtrVerdictPatched, 1)
	} else {
		in.Obs.Add(obs.CtrVerdictVulnerable, 1)
	}
	return v
}

// vote maps (distance-to-vuln, distance-to-patched) to [-1, 1]; positive
// means closer to the patched reference.
func vote(dv, dp float64) float64 {
	if dv == dp {
		return 0
	}
	return (dv - dp) / (math.Abs(dv) + math.Abs(dp) + 1e-12)
}

func l1(a, b features.Vector) float64 {
	var d float64
	for i := range a {
		d += math.Abs(a[i] - b[i])
	}
	return d
}
