package diffengine

import (
	"testing"

	"repro/internal/compiler"
	"repro/internal/disasm"
	"repro/internal/dynamic"
	"repro/internal/features"
	"repro/internal/fuzz"
	"repro/internal/isa"
	"repro/internal/minic"
)

type refData struct {
	dis *disasm.Disassembly
	fn  *disasm.Function
	vec features.Vector
	sig Signature
}

func buildRef(t *testing.T, f *minic.Func, lvl compiler.Level) refData {
	t.Helper()
	mod := &minic.Module{Name: "m", Funcs: []*minic.Func{f}}
	im, err := compiler.Compile(mod, isa.XARM32, lvl)
	if err != nil {
		t.Fatal(err)
	}
	dis, err := disasm.Disassemble(im)
	if err != nil {
		t.Fatal(err)
	}
	fn, _ := dis.Lookup(f.Name)
	return refData{dis: dis, fn: fn, vec: features.Extract(dis, fn), sig: SigOf(fn)}
}

// decideFor runs the full differential pipeline: fuzz envs against both
// references, profile all three functions, decide.
func decideFor(t *testing.T, pair *minic.CVEPair, targetPatched bool, targetLvl compiler.Level) Verdict {
	t.Helper()
	vuln := buildRef(t, pair.Vulnerable, compiler.O1)
	patched := buildRef(t, pair.Patched, compiler.O1)
	tf := pair.Vulnerable
	if targetPatched {
		tf = pair.Patched
	}
	target := buildRef(t, tf, targetLvl)

	cfg := fuzz.DefaultConfig(42)
	envs := fuzz.Environments([]fuzz.Ref{
		{Dis: vuln.dis, Fn: vuln.fn},
		{Dis: patched.dis, Fn: patched.fn},
	}, cfg)
	if len(envs) == 0 {
		t.Fatal("no environments")
	}
	profile := func(dis *disasm.Disassembly, fn *disasm.Function) []dynamic.Profile {
		t.Helper()
		eps, err := dynamic.ProfileFunc(nil, dis, fn, envs, dynamic.Exec{})
		if err != nil {
			t.Fatal(err)
		}
		vs, err := dynamic.CompleteVectors(eps)
		if err != nil {
			t.Fatal(err)
		}
		return vs
	}
	vp := profile(vuln.dis, vuln.fn)
	pp := profile(patched.dis, patched.fn)
	tp := profile(target.dis, target.fn)
	return Decide(Inputs{
		VulnStatic: vuln.vec, PatchedStatic: patched.vec, TargetStatic: target.vec,
		VulnProfiles: vp, PatchedProfiles: pp, TargetProfiles: tp,
		VulnSig: vuln.sig, PatchedSig: patched.sig, TargetSig: target.sig,
	})
}

func TestDecideStructuralPatches(t *testing.T) {
	// For structural (non-minute) patches the engine must classify the
	// target correctly even when compiled at a different level than the
	// references.
	ids := []string{
		"CVE-2018-9412", "CVE-2018-9451", "CVE-2017-13232", "CVE-2018-9411",
		"CVE-2017-13278", "CVE-2018-9424", "CVE-2018-9427",
	}
	for _, id := range ids {
		id := id
		t.Run(id, func(t *testing.T) {
			pair := minic.CVEByID(id)
			for _, lvl := range []compiler.Level{compiler.O0, compiler.O2} {
				if v := decideFor(t, pair, false, lvl); v.Patched {
					t.Errorf("lvl %s: vulnerable target judged patched (conf %.2f, ev %+v)",
						lvl, v.Confidence, v.Evidence)
				}
				if v := decideFor(t, pair, true, lvl); !v.Patched {
					t.Errorf("lvl %s: patched target judged vulnerable (conf %.2f, ev %+v)",
						lvl, v.Confidence, v.Evidence)
				}
			}
		})
	}
}

func TestMinutePatchIsBlindSpot(t *testing.T) {
	// CVE-2018-9470's one-integer patch must be a (near-)tie: the engine
	// reports "patched" for BOTH versions — reproducing the paper's single
	// Table VIII misclassification when the device is actually vulnerable.
	pair := minic.CVEByID("CVE-2018-9470")
	vv := decideFor(t, pair, false, compiler.O1)
	pv := decideFor(t, pair, true, compiler.O1)
	if !vv.Patched || !pv.Patched {
		t.Errorf("minute patch should fall back to 'patched' on both versions (got vuln=%v patched=%v)",
			vv.Patched, pv.Patched)
	}
	if vv.Confidence > 0.55 {
		t.Errorf("minute-patch verdict should be low confidence, got %.2f", vv.Confidence)
	}
}

func TestSignatureCapturesLibraryCalls(t *testing.T) {
	// The paper's case study: the patched removeUnsynchronization drops
	// memmove. The signatures must disagree on the import set.
	pair := minic.CVEByID("CVE-2018-9412")
	vuln := buildRef(t, pair.Vulnerable, compiler.O1)
	patched := buildRef(t, pair.Patched, compiler.O1)
	if setDiff(vuln.sig.Imports, patched.sig.Imports) == 0 {
		t.Error("import sets identical; memmove removal not captured")
	}
	if Distance(vuln.sig, patched.sig) == 0 {
		t.Error("signatures identical for a structural patch")
	}
	if Distance(vuln.sig, vuln.sig) != 0 {
		t.Error("self-distance nonzero")
	}
}

func TestSetDiff(t *testing.T) {
	tests := []struct {
		a, b []int
		want int
	}{
		{nil, nil, 0},
		{[]int{1, 2}, []int{1, 2}, 0},
		{[]int{1}, []int{2}, 2},
		{[]int{1, 2, 3}, []int{2}, 2},
		{nil, []int{5, 6}, 2},
	}
	for _, tt := range tests {
		if got := setDiff(tt.a, tt.b); got != tt.want {
			t.Errorf("setDiff(%v,%v) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestVote(t *testing.T) {
	if vote(1, 1) != 0 {
		t.Error("tie should vote 0")
	}
	if v := vote(10, 2); v <= 0 {
		t.Errorf("closer-to-patched should vote positive, got %v", v)
	}
	if v := vote(2, 10); v >= 0 {
		t.Errorf("closer-to-vuln should vote negative, got %v", v)
	}
}
