package cas

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func openStore(t *testing.T, dir, model string, maxBytes int64) *Store {
	t.Helper()
	s, err := Open(dir, model, maxBytes)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestStoreHitMissInvalidation pins the consult classification: absent is a
// miss, a current entry is a hit with the exact score, an entry written
// under another model hash is an invalidation, and a Put under the current
// model repairs both.
func TestStoreHitMissInvalidation(t *testing.T) {
	dir := t.TempDir()
	const key = "CVE-0|vulnerable|aabb"
	s1 := openStore(t, dir, "sha256:m1", 0)

	if v, st := s1.GetScore(key); st != StatusMiss || v != 0 {
		t.Fatalf("empty store: got (%v, %v), want (0, miss)", v, st)
	}
	s1.PutScore(key, 0.625)
	if v, st := s1.GetScore(key); st != StatusHit || v != 0.625 {
		t.Fatalf("after put: got (%v, %v), want (0.625, hit)", v, st)
	}

	// A second store on the same directory under another model hash sees
	// the entry but must not use it.
	s2 := openStore(t, dir, "sha256:m2", 0)
	if v, st := s2.GetScore(key); st != StatusInvalidated || v != 0 {
		t.Fatalf("other model: got (%v, %v), want (0, invalidated)", v, st)
	}
	// Overwriting under m2 flips the invalidation direction.
	s2.PutScore(key, 0.25)
	if v, st := s2.GetScore(key); st != StatusHit || v != 0.25 {
		t.Fatalf("m2 after put: got (%v, %v), want (0.25, hit)", v, st)
	}
	if _, st := openStore(t, dir, "sha256:m1", 0).GetScore(key); st != StatusInvalidated {
		t.Fatalf("m1 after m2 overwrite: got %v, want invalidated", st)
	}
}

// TestStoreCorruptionIsMiss: every way an entry file can rot must read as a
// miss — never a wrong score, never an error — and a fresh Put repairs it.
func TestStoreCorruptionIsMiss(t *testing.T) {
	for _, tc := range []struct {
		name    string
		content string
	}{
		{"empty file", ""},
		{"garbage", "\x00\xff\x17not json"},
		{"truncated json", `{"model":"sha256:m1","key":"the-key","sco`},
		{"key mismatch", `{"model":"sha256:m1","key":"some-other-key","score":0.5}`},
		{"score wrong type", `{"model":"sha256:m1","key":"the-key","score":"high"}`},
		{"score nan", `{"model":"sha256:m1","key":"the-key","score":1e999}`},
		{"wrong shape", `[1,2,3]`},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := openStore(t, t.TempDir(), "sha256:m1", 0)
			const key = "the-key"
			if err := os.WriteFile(s.path(key), []byte(tc.content), 0o644); err != nil {
				t.Fatal(err)
			}
			if v, st := s.GetScore(key); st != StatusMiss || v != 0 {
				t.Fatalf("corrupt entry: got (%v, %v), want (0, miss)", v, st)
			}
			s.PutScore(key, 0.75)
			if v, st := s.GetScore(key); st != StatusHit || v != 0.75 {
				t.Fatalf("after repair: got (%v, %v), want (0.75, hit)", v, st)
			}
		})
	}
}

// TestStoreBound: the store never holds more entry bytes than its budget;
// old entries are evicted to make room and the most recent write survives.
func TestStoreBound(t *testing.T) {
	dir := t.TempDir()
	probe := openStore(t, dir, "sha256:m1", 0)
	probe.PutScore("probe", 0.5)
	entrySize := probe.Size()
	if entrySize == 0 {
		t.Fatal("probe entry not written")
	}
	if err := os.Remove(probe.path("probe")); err != nil {
		t.Fatal(err)
	}

	// Budget for three entries; write ten.
	s := openStore(t, dir, "sha256:m1", 3*entrySize)
	var lastKey string
	for i := 0; i < 10; i++ {
		lastKey = fmt.Sprintf("key-%02d", i)
		s.PutScore(lastKey, float64(i)/16)
	}
	if got := s.Size(); got > 3*entrySize {
		t.Errorf("store size %d exceeds budget %d", got, 3*entrySize)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) > 3 {
		t.Errorf("%d entry files on disk, budget holds 3", len(files))
	}
	if len(files) == 0 {
		t.Fatal("eviction removed everything, including the entry being written")
	}
	if v, st := s.GetScore(lastKey); st != StatusHit || v != 9.0/16 {
		t.Errorf("most recent write evicted: got (%v, %v)", v, st)
	}
	// Disk truth matches the accounted size.
	var onDisk int64
	for _, f := range files {
		info, err := os.Stat(f)
		if err != nil {
			t.Fatal(err)
		}
		onDisk += info.Size()
	}
	if onDisk != s.Size() {
		t.Errorf("accounted size %d != on-disk size %d", s.Size(), onDisk)
	}

	// An entry that can never fit is skipped silently.
	tiny := openStore(t, t.TempDir(), "sha256:m1", 8)
	tiny.PutScore(strings.Repeat("k", 100), 0.5)
	if got := tiny.Size(); got != 0 {
		t.Errorf("oversized entry written anyway (%d bytes)", got)
	}
}

// TestStoreOpenAccountsExistingEntries: reopening a directory picks up the
// bytes already on disk, so the bound holds across processes.
func TestStoreOpenAccountsExistingEntries(t *testing.T) {
	dir := t.TempDir()
	s1 := openStore(t, dir, "sha256:m1", 0)
	s1.PutScore("a", 0.1)
	s1.PutScore("b", 0.2)
	s2 := openStore(t, dir, "sha256:m1", 0)
	if s2.Size() != s1.Size() || s2.Size() == 0 {
		t.Errorf("reopened size %d, want %d", s2.Size(), s1.Size())
	}
	if v, st := s2.GetScore("b"); st != StatusHit || v != 0.2 {
		t.Errorf("reopened store lost an entry: got (%v, %v)", v, st)
	}
}

// TestStoreNonFiniteNeverPersisted: NaN and Inf scores are dropped on Put,
// so they can never come back as hits.
func TestStoreNonFiniteNeverPersisted(t *testing.T) {
	s := openStore(t, t.TempDir(), "sha256:m1", 0)
	s.PutScore("k", math.NaN())
	s.PutScore("k", math.Inf(1))
	if _, st := s.GetScore("k"); st != StatusMiss {
		t.Fatalf("non-finite score persisted: %v", st)
	}
	if s.Size() != 0 {
		t.Fatalf("non-finite put left %d bytes", s.Size())
	}
}

// TestStoreConcurrent hammers one directory from two Store instances —
// writers racing writers on the same keys, readers racing the writers —
// and checks that a hit only ever carries a value some writer actually
// wrote for that key. Run under -race this also pins the locking.
func TestStoreConcurrent(t *testing.T) {
	dir := t.TempDir()
	w := openStore(t, dir, "sha256:m1", 0)
	r := openStore(t, dir, "sha256:m1", 0)
	const keys = 16
	score := func(k, gen int) float64 { return float64(k) + float64(gen)/8 }

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(2)
		go func(gen int) {
			defer wg.Done()
			for k := 0; k < keys; k++ {
				w.PutScore(fmt.Sprintf("key-%d", k), score(k, gen))
			}
		}(g)
		go func() {
			defer wg.Done()
			for k := 0; k < keys; k++ {
				key := fmt.Sprintf("key-%d", k)
				v, st := r.GetScore(key)
				if st == StatusInvalidated {
					t.Errorf("same-model read invalidated for %s", key)
				}
				if st != StatusHit {
					continue
				}
				ok := false
				for gen := 0; gen < 4; gen++ {
					ok = ok || v == score(k, gen)
				}
				if !ok {
					t.Errorf("hit for %s returned %v, never written", key, v)
				}
			}
		}()
	}
	wg.Wait()
	for k := 0; k < keys; k++ {
		if _, st := r.GetScore(fmt.Sprintf("key-%d", k)); st != StatusHit {
			t.Errorf("key-%d unreadable after writers finished: %v", k, st)
		}
	}
}
