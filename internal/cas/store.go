// Persistent static-score store for incremental delta scans.
//
// The store memoizes static similarity scores on disk keyed by
// (CVE, query mode, function content address), versioned by the model hash
// from the run manifest. Rescanning a firmware update then only pays for
// functions whose content actually changed; everything else is answered
// from disk.
//
// The store is an optimization, never an authority: a missing, truncated,
// corrupted or key-mismatched entry is a miss (recompute), and an entry
// written under a different model hash is an invalidation (recompute) — in
// no case can a bad entry surface as a wrong score. Dynamic outcomes and
// verdicts are deliberately NOT persisted: they are recomputed (or shared
// in memory within one analyzer), which keeps the on-disk format trivial to
// audit and the delta-scan accounting exact.

package cas

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/faultinject"
)

// Status classifies one store consult.
type Status int

// Consult outcomes.
const (
	StatusMiss        Status = iota // no usable entry: compute and Put
	StatusHit                       // entry found, current model: use the score
	StatusInvalidated               // entry found but written by another model
)

func (s Status) String() string {
	switch s {
	case StatusHit:
		return "hit"
	case StatusInvalidated:
		return "invalidated"
	}
	return "miss"
}

// entryFile is the on-disk JSON envelope. The key is stored verbatim and
// verified on read, so a (vanishingly unlikely) filename-hash collision or a
// file copied between stores degrades to a miss instead of a wrong score.
type entryFile struct {
	Model string  `json:"model"`
	Key   string  `json:"key"`
	Score float64 `json:"score"`
}

// Store is a bounded, corruption-tolerant directory of score entries, one
// JSON file per key. Safe for concurrent use by multiple goroutines; writes
// are atomic (temp file + rename), so concurrent readers — including other
// Store instances on the same directory — always see a complete entry or
// none.
type Store struct {
	dir       string
	modelHash string
	maxBytes  int64

	mu   sync.Mutex
	size int64 // bytes currently on disk (entry files only)
}

// DefaultMaxBytes bounds a store when the caller does not choose a budget.
const DefaultMaxBytes = 64 << 20

// Open opens (creating if needed) a store rooted at dir for the model
// identified by modelHash (the manifest's "sha256:..." string). maxBytes
// bounds the on-disk size; <= 0 selects DefaultMaxBytes. Entries written by
// other model versions stay on disk but answer as invalidated until
// overwritten.
func Open(dir, modelHash string, maxBytes int64) (*Store, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cas: open store: %w", err)
	}
	s := &Store{dir: dir, modelHash: modelHash, maxBytes: maxBytes}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("cas: open store: %w", err)
	}
	for _, de := range entries {
		if de.IsDir() || filepath.Ext(de.Name()) != ".json" {
			continue
		}
		if info, err := de.Info(); err == nil {
			s.size += info.Size()
		}
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Size returns the bytes of entry files currently accounted on disk.
func (s *Store) Size() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.size
}

// path maps a key to its entry file. Keys are arbitrary strings, so the
// filename is the key's digest, not the key itself.
func (s *Store) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(s.dir, hex.EncodeToString(sum[:])+".json")
}

// GetScore looks the key up. Only StatusHit carries a usable score; every
// failure mode — absent, unreadable, truncated, unparsable, key mismatch,
// non-finite score — is StatusMiss, and a well-formed entry written by a
// different model is StatusInvalidated.
func (s *Store) GetScore(key string) (float64, Status) {
	if faultinject.Fire(faultinject.StoreReadFail, key) != nil {
		return 0, StatusMiss
	}
	raw, err := os.ReadFile(s.path(key))
	if err != nil {
		return 0, StatusMiss
	}
	var ent entryFile
	if err := json.Unmarshal(raw, &ent); err != nil {
		return 0, StatusMiss
	}
	if ent.Key != key || math.IsNaN(ent.Score) || math.IsInf(ent.Score, 0) {
		return 0, StatusMiss
	}
	if ent.Model != s.modelHash {
		return 0, StatusInvalidated
	}
	return ent.Score, StatusHit
}

// PutScore records a score for the key under the store's model hash.
// Storage failures are deliberately silent: the store is an optimization
// and a failed write only costs a future recompute. Non-finite scores are
// never persisted.
func (s *Store) PutScore(key string, score float64) {
	if math.IsNaN(score) || math.IsInf(score, 0) {
		return
	}
	data, err := json.Marshal(entryFile{Model: s.modelHash, Key: key, Score: score})
	if err != nil || int64(len(data)) > s.maxBytes {
		return
	}
	path := s.path(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	var oldSize int64
	if info, err := os.Stat(path); err == nil {
		oldSize = info.Size()
	}
	if s.size-oldSize+int64(len(data)) > s.maxBytes {
		s.evictLocked(s.maxBytes-int64(len(data))+oldSize, path)
	}
	tmp, err := os.CreateTemp(s.dir, "put-*")
	if err != nil {
		return
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return
	}
	s.size += int64(len(data)) - oldSize
}

// evictLocked deletes entry files, oldest modification time first (name as
// the tie-break), until the accounted size is at or below target. keep is
// never evicted — it is the entry about to be rewritten. Callers hold s.mu.
func (s *Store) evictLocked(target int64, keep string) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	type victim struct {
		path  string
		size  int64
		mtime int64
	}
	var victims []victim
	for _, de := range entries {
		if de.IsDir() || filepath.Ext(de.Name()) != ".json" {
			continue
		}
		path := filepath.Join(s.dir, de.Name())
		if path == keep {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		victims = append(victims, victim{path: path, size: info.Size(), mtime: info.ModTime().UnixNano()})
	}
	sort.Slice(victims, func(i, j int) bool {
		if victims[i].mtime != victims[j].mtime {
			return victims[i].mtime < victims[j].mtime
		}
		return victims[i].path < victims[j].path
	})
	for _, v := range victims {
		if s.size <= target {
			return
		}
		if err := os.Remove(v.path); err == nil || os.IsNotExist(err) {
			s.size -= v.size
		}
	}
}
