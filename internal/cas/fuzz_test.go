package cas

import (
	"testing"

	"repro/internal/binimg"
	"repro/internal/compiler"
	"repro/internal/disasm"
	"repro/internal/features"
	"repro/internal/isa"
	"repro/internal/minic"
)

// FuzzNormalize hardens the content-address normalizer against whatever the
// stripped-image disassembler recovers from arbitrary bytes: the first
// input byte selects the architecture, the second seeds a tiny rodata
// section, the rest is the .text section. Normalization must never panic —
// arbitrary call graphs, self-calls, cycles, frame-discipline violations —
// and must be a pure function of the disassembly: a second pass over the
// same input yields byte-identical addresses. MemoryTouching must stay
// consistent with ImageAddrs on the same input.
func FuzzNormalize(f *testing.F) {
	mod := minic.GenLibrary(minic.GenConfig{Seed: 23, Name: "libcas", NumFuncs: 4})
	for ai, arch := range isa.All() {
		im, err := compiler.Compile(mod, arch, compiler.O2)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(append([]byte{byte(ai), 0x61}, im.Text...))
	}
	f.Add([]byte{0, 0})
	f.Add([]byte{3, 0xfe, 0x00, 0xff, 0x55, 0xaa})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		if len(data) > 1<<12 {
			data = data[:1<<12]
		}
		archs := isa.All()
		arch := archs[int(data[0])%len(archs)]
		var rodata []byte
		if data[1] != 0 {
			rodata = []byte{data[1], 0}
		}
		im := &binimg.Image{
			Arch:     arch.Name,
			LibName:  "libcas",
			OptLevel: "O2",
			Text:     data[2:],
			Rodata:   rodata,
			Stripped: true,
		}
		dis, err := disasm.Disassemble(im)
		if err != nil {
			return
		}
		vecs := make([]features.Vector, len(dis.Funcs))
		for i, fn := range dis.Funcs {
			vecs[i] = features.Extract(dis, fn)
		}
		addrs := ImageAddrs(dis, vecs)
		if len(addrs) != len(dis.Funcs) {
			t.Fatalf("ImageAddrs returned %d addresses for %d functions", len(addrs), len(dis.Funcs))
		}
		again := ImageAddrs(dis, vecs)
		for i := range addrs {
			if addrs[i] != again[i] {
				t.Fatalf("func %d: address not deterministic: %s vs %s", i, addrs[i], again[i])
			}
		}
		if mem := MemoryTouching(dis); len(mem) != len(dis.Funcs) {
			t.Fatalf("MemoryTouching returned %d flags for %d functions", len(mem), len(dis.Funcs))
		}
	})
}
