package cas

import (
	"testing"

	"repro/internal/compiler"
	"repro/internal/disasm"
	"repro/internal/features"
	"repro/internal/isa"
	"repro/internal/minic"
)

// The property suite pins the two halves of the content-address contract:
//
//   - Collision where required: relocating a function (compiling the same
//     bodies at different text offsets) must not change its address, and
//     byte-identical bodies must collide even inside one image.
//   - Separation where required: one semantic change — a different
//     constant, a different callee, a different rodata byte reaching a
//     memory-touching closure — must change the address, and must change
//     ONLY the addresses whose closures can observe it.
//
// srcBase covers every interesting call-graph shape: a pure leaf, a
// self-recursive function (singleton SCC with a self-loop), a mutually
// recursive pair (non-trivial SCC), an explicit memory reader, a function
// whose only memory access happens inside the strlen builtin, and a caller
// that stitches the pure ones together.
const srcBase = `
func mix(a, b) { return a * 31 + b ^ 7; }
func fact(n) { if (n < 2) { return 1; } return n * fact(n - 1); }
func even(n) { if (n == 0) { return 1; } return odd(n - 1); }
func odd(n) { if (n == 0) { return 0; } return even(n - 1); }
func sum(p, n) { s = 0; i = 0; while (i < n) { s = s + p[i]; i = i + 1; } return s; }
func taglen(a) { return strlen("cas-property-tag") + a; }
func chain(x) { return mix(x, fact(3)) + even(x); }
`

// srcPermuted declares the identical function bodies in a different order,
// so the compiler lays them out at different text offsets and relocates
// every cross-function call immediate.
const srcPermuted = `
func chain(x) { return mix(x, fact(3)) + even(x); }
func taglen(a) { return strlen("cas-property-tag") + a; }
func sum(p, n) { s = 0; i = 0; while (i < n) { s = s + p[i]; i = i + 1; } return s; }
func odd(n) { if (n == 0) { return 0; } return even(n - 1); }
func even(n) { if (n == 0) { return 1; } return odd(n - 1); }
func fact(n) { if (n < 2) { return 1; } return n * fact(n - 1); }
func mix(a, b) { return a * 31 + b ^ 7; }
`

// srcConstFlip is srcBase with one semantic byte changed: mix multiplies by
// 37 instead of 31. Only mix itself and its transitive callers may diverge.
const srcConstFlip = `
func mix(a, b) { return a * 37 + b ^ 7; }
func fact(n) { if (n < 2) { return 1; } return n * fact(n - 1); }
func even(n) { if (n == 0) { return 1; } return odd(n - 1); }
func odd(n) { if (n == 0) { return 0; } return even(n - 1); }
func sum(p, n) { s = 0; i = 0; while (i < n) { s = s + p[i]; i = i + 1; } return s; }
func taglen(a) { return strlen("cas-property-tag") + a; }
func chain(x) { return mix(x, fact(3)) + even(x); }
`

type compiled struct {
	dis   *disasm.Disassembly
	vecs  []features.Vector
	addrs []Addr
	idx   map[string]int // function name -> index in dis.Funcs
}

func (c *compiled) addr(t *testing.T, name string) Addr {
	t.Helper()
	i, ok := c.idx[name]
	if !ok {
		t.Fatalf("function %q not in disassembly", name)
	}
	return c.addrs[i]
}

func compileFor(t *testing.T, arch *isa.Arch, src string) *compiled {
	t.Helper()
	mod, err := minic.Parse("libcas", src)
	if err != nil {
		t.Fatal(err)
	}
	im, err := compiler.Compile(mod, arch, compiler.O2)
	if err != nil {
		t.Fatal(err)
	}
	dis, err := disasm.Disassemble(im)
	if err != nil {
		t.Fatal(err)
	}
	return address(t, dis)
}

func address(t *testing.T, dis *disasm.Disassembly) *compiled {
	t.Helper()
	vecs := make([]features.Vector, len(dis.Funcs))
	for i, fn := range dis.Funcs {
		vecs[i] = features.Extract(dis, fn)
	}
	c := &compiled{dis: dis, vecs: vecs, addrs: ImageAddrs(dis, vecs), idx: make(map[string]int)}
	for i, fn := range dis.Funcs {
		if fn.Name == "" {
			t.Fatal("property fixtures need unstripped images (function names)")
		}
		c.idx[fn.Name] = i
	}
	return c
}

var baseFuncs = []string{"mix", "fact", "even", "odd", "sum", "taglen", "chain"}

// TestAddrRelocationInvariant: the same function bodies compiled in a
// permuted layout — every function at a different text offset, every
// cross-function call relocated — keep their content addresses.
func TestAddrRelocationInvariant(t *testing.T) {
	for _, arch := range isa.All() {
		a := compileFor(t, arch, srcBase)
		b := compileFor(t, arch, srcPermuted)
		// The premise must hold or the test is vacuous: the layouts differ.
		moved := false
		for _, name := range baseFuncs {
			if a.dis.Funcs[a.idx[name]].Addr != b.dis.Funcs[b.idx[name]].Addr {
				moved = true
			}
		}
		if !moved {
			t.Fatalf("%s: permuted source compiled to identical layout; fixture is vacuous", arch.Name)
		}
		for _, name := range baseFuncs {
			if a.addr(t, name) != b.addr(t, name) {
				t.Errorf("%s: %s: content address changed under relocation", arch.Name, name)
			}
		}
	}
}

// TestAddrSemanticSensitivity: one changed constant in a leaf diverges the
// leaf and, Merkle-style, exactly its transitive callers.
func TestAddrSemanticSensitivity(t *testing.T) {
	for _, arch := range isa.All() {
		a := compileFor(t, arch, srcBase)
		b := compileFor(t, arch, srcConstFlip)
		changed := map[string]bool{"mix": true, "chain": true} // chain calls mix
		for _, name := range baseFuncs {
			same := a.addr(t, name) == b.addr(t, name)
			if changed[name] && same {
				t.Errorf("%s: %s: semantic change did not change the content address", arch.Name, name)
			}
			if !changed[name] && !same {
				t.Errorf("%s: %s: content address changed without a semantic change", arch.Name, name)
			}
		}
	}
}

// TestAddrRodataSensitivity: flipping one rodata byte changes exactly the
// addresses of memory-touching closures — including taglen, whose only
// memory access happens inside the strlen builtin — and no others.
func TestAddrRodataSensitivity(t *testing.T) {
	for _, arch := range isa.All() {
		a := compileFor(t, arch, srcBase)
		if len(a.dis.Image.Rodata) == 0 {
			t.Fatalf("%s: fixture interned no rodata; test is vacuous", arch.Name)
		}

		im := *a.dis.Image
		im.Rodata = append([]byte(nil), a.dis.Image.Rodata...)
		im.Rodata[0] ^= 0x01
		dis2, err := disasm.Disassemble(&im)
		if err != nil {
			t.Fatal(err)
		}
		b := address(t, dis2)

		mem := MemoryTouching(a.dis)
		wantMem := map[string]bool{"sum": true, "taglen": true}
		for _, name := range baseFuncs {
			if got := mem[a.idx[name]]; got != wantMem[name] {
				t.Errorf("%s: MemoryTouching(%s) = %v, want %v", arch.Name, name, got, wantMem[name])
			}
			same := a.addr(t, name) == b.addr(t, name)
			if wantMem[name] && same {
				t.Errorf("%s: %s: rodata flip did not change a memory-touching address", arch.Name, name)
			}
			if !wantMem[name] && !same {
				t.Errorf("%s: %s: rodata flip changed a memory-blind address", arch.Name, name)
			}
		}
	}
}

// TestAddrIntraImageDuplicates: byte-identical bodies inside one image
// collide, and the collision propagates to their (otherwise identical)
// callers; a one-constant variant separates both levels.
func TestAddrIntraImageDuplicates(t *testing.T) {
	const src = `
func f(a) { return a * 3 + 1; }
func g(a) { return a * 3 + 1; }
func h(a) { return a * 3 + 2; }
func callf(x) { return f(x) + 5; }
func callg(x) { return g(x) + 5; }
func callh(x) { return h(x) + 5; }
`
	for _, arch := range isa.All() {
		c := compileFor(t, arch, src)
		if c.addr(t, "f") != c.addr(t, "g") {
			t.Errorf("%s: identical bodies f and g got distinct addresses", arch.Name)
		}
		if c.addr(t, "f") == c.addr(t, "h") {
			t.Errorf("%s: distinct bodies f and h collided", arch.Name)
		}
		if c.addr(t, "callf") != c.addr(t, "callg") {
			t.Errorf("%s: callers of behaviorally equal callees got distinct addresses", arch.Name)
		}
		if c.addr(t, "callf") == c.addr(t, "callh") {
			t.Errorf("%s: callers of behaviorally distinct callees collided", arch.Name)
		}
	}
}

// TestImageAddrsDeterministic: addressing is a pure function of the
// disassembly and vectors.
func TestImageAddrsDeterministic(t *testing.T) {
	for _, arch := range isa.All() {
		c := compileFor(t, arch, srcBase)
		again := ImageAddrs(c.dis, c.vecs)
		for i := range c.addrs {
			if c.addrs[i] != again[i] {
				t.Fatalf("%s: ImageAddrs not deterministic at func %d", arch.Name, i)
			}
		}
	}
}
