// Package cas assigns content addresses to disassembled functions so the
// scan engine can recognize that two functions — in the same image or in
// different images of a fleet — are behaviorally the same work item and
// score them once.
//
// Real firmware fleets share enormous function overlap (the same libc, the
// same vendor SDK, across device models and firmware updates), but the
// copies are not byte-identical: the linker relocates every call target, so
// the same function linked at two different text offsets differs exactly in
// its call immediates. The content address therefore hashes a *normalized*
// encoding of the function's whole call closure:
//
//   - Instruction streams are encoded field by field (op, registers,
//     immediate) in a fixed unambiguous binary record.
//   - Call immediates that resolve to a function in the image are replaced
//     by position: a closure-local index for callees inside the function's
//     own strongly-connected component, or the callee's own content address
//     (Merkle-style) for callees in downstream components. Unresolved call
//     immediates — calls into unmapped memory — are kept raw, because the
//     emulator's trap message embeds the raw target and resolution status is
//     itself semantic.
//   - Every other immediate is kept raw. Branch immediates are
//     function-local byte offsets and import-call immediates index a global
//     builtin table, so none of them move under relocation.
//   - If any instruction in the function's component can observe rodata —
//     a load or store through a base register other than FP/SP, an import
//     call into a memory-accessing builtin such as strlen or memcmp, or
//     any violation of the compiler's frame discipline (FP/SP-relative
//     accesses are register spills only while FP/SP provably stay
//     stack-valued) — a digest of the image's rodata section is folded in:
//     computed addresses can reach interned constants, so behavior depends
//     on rodata content. Callee rodata dependence flows through the callee
//     hashes.
//   - The function's own 48-dimensional static feature vector is folded in
//     bit for bit, so a shared content address always implies bit-identical
//     static scores.
//
// Two functions with equal addresses produce bit-identical static scores
// and bit-identical dynamic profiles under any execution environment; the
// engine's dedup path relies on exactly that.
//
// The package also provides a small persistent score store keyed by content
// address (see store.go) for incremental delta scans across firmware
// updates.
package cas

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"math"

	"repro/internal/disasm"
	"repro/internal/features"
	"repro/internal/isa"
	"repro/internal/minic"
)

// Addr is a function content address: a SHA-256 over the normalized
// closure encoding.
type Addr [sha256.Size]byte

// String renders the address as lowercase hex.
func (a Addr) String() string { return hex.EncodeToString(a[:]) }

// version tags the canonical encoding; bump it whenever the normalization
// rules change so stale persisted scores can never be misread as current.
const version = "patchecko-cas/v1"

// Immediate tags of the canonical instruction record. The tag byte makes
// the three immediate interpretations unambiguous: a raw value can never
// collide with a local index or an external-reference position.
const (
	immRaw    = 0 // immediate kept verbatim (incl. unresolved call targets)
	immExtern = 1 // call resolved outside the component: external-ref position
	immLocal  = 2 // call resolved inside the component: closure-local index
)

// ImageAddrs computes the content address of every function in the image.
// vecs must hold the function's static feature vectors aligned with
// dis.Funcs (as produced during image preparation). The result is
// deterministic in the disassembly and vectors alone.
//
// Cost is linear: the call graph is condensed into strongly-connected
// components (callees first), each function's encoding covers only its own
// component plus one 32-byte digest per external callee, and components are
// almost always singletons in compiled code.
func ImageAddrs(dis *disasm.Disassembly, vecs []features.Vector) []Addr {
	n := len(dis.Funcs)
	callees, resolved := callGraph(dis)
	comp, sccs := condense(callees)
	sccMem := sccTouchesMem(dis, sccs)
	rodata := rodataDigest(dis.Image.Rodata)

	addrs := make([]Addr, n)
	var buf [16]byte
	// Tarjan emits components callees-first, so every external callee's
	// address is final before any caller encodes it.
	for _, scc := range sccs {
		for _, root := range scc {
			addrs[root] = hashRoot(dis, vecs, root, comp, callees, resolved, sccMem, rodata, addrs, buf[:])
		}
	}
	return addrs
}

// MemoryTouching reports, per function, whether the function's call closure
// can observe rodata: a load or store through a non-FP/SP base register, an
// import call into a memory-accessing builtin, or a frame-discipline
// violation (see sccTouchesMem). Functions for which this is false cannot
// observe rodata, so their content address is independent of the image's
// rodata section; the property suite uses this to predict exactly which
// addresses a rodata edit may change.
func MemoryTouching(dis *disasm.Disassembly) []bool {
	callees, _ := callGraph(dis)
	comp, sccs := condense(callees)
	own := sccTouchesMem(dis, sccs)
	closure := make([]bool, len(sccs))
	// Callee-first component order makes the closure flag a single pass.
	for ci, scc := range sccs {
		closure[ci] = own[ci]
		for _, fi := range scc {
			for _, ti := range callees[fi] {
				if comp[ti] != ci && closure[comp[ti]] {
					closure[ci] = true
				}
			}
		}
	}
	out := make([]bool, len(dis.Funcs))
	for i := range out {
		out[i] = closure[comp[i]]
	}
	return out
}

// callGraph resolves every Call immediate against the image's recovered
// function starts. callees[i] lists the resolved target indices of function
// i in instruction order (duplicates kept — the encoder needs first-reference
// order); resolved[i] maps the instruction index of each resolved Call to
// its target function index.
func callGraph(dis *disasm.Disassembly) (callees [][]int, resolved []map[int]int) {
	idxOf := make(map[uint64]int, len(dis.Funcs))
	for i, fn := range dis.Funcs {
		idxOf[fn.Addr] = i
	}
	callees = make([][]int, len(dis.Funcs))
	resolved = make([]map[int]int, len(dis.Funcs))
	for i, fn := range dis.Funcs {
		for k, in := range fn.Instrs {
			if in.Op != isa.Call {
				continue
			}
			ti, ok := idxOf[uint64(in.Imm)]
			if !ok {
				continue
			}
			if resolved[i] == nil {
				resolved[i] = make(map[int]int)
			}
			resolved[i][k] = ti
			callees[i] = append(callees[i], ti)
		}
	}
	return callees, resolved
}

// condense runs an iterative Tarjan SCC pass over the call graph. comp maps
// each function to its component id; sccs lists components in completion
// order, which for Tarjan is reverse-topological: every component a member
// calls into is emitted before the component itself.
func condense(adj [][]int) (comp []int, sccs [][]int) {
	n := len(adj)
	comp = make([]int, n)
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	next := 0
	type frame struct{ v, ei int }
	var frames []frame
	for s := 0; s < n; s++ {
		if index[s] != -1 {
			continue
		}
		index[s], low[s] = next, next
		next++
		stack = append(stack, s)
		onStack[s] = true
		frames = append(frames[:0], frame{s, 0})
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.ei < len(adj[f.v]) {
				w := adj[f.v][f.ei]
				f.ei++
				if index[w] == -1 {
					index[w], low[w] = next, next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{w, 0})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				if p := &frames[len(frames)-1]; low[v] < low[p.v] {
					low[p.v] = low[v]
				}
			}
			if low[v] == index[v] {
				var scc []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = len(sccs)
					scc = append(scc, w)
					if w == v {
						break
					}
				}
				sccs = append(sccs, scc)
			}
		}
	}
	return comp, sccs
}

// sccTouchesMem flags components that can observe image-dependent memory,
// which in this machine model means exactly the rodata section: the stack
// starts zeroed and the data region is seeded by the (image-independent)
// execution environment. A component is flagged when any member
//
//   - loads or stores through a base register other than FP/SP — a computed
//     address can reach rodata;
//   - imports a builtin whose implementation accesses memory (strlen,
//     memcmp, ... — marked minic.Builtin.Mem);
//   - breaks the frame discipline (see frameDisciplined), in which case
//     FP/SP-relative accesses can no longer be assumed to stay on the
//     stack and the component is flagged conservatively.
//
// FP/SP-relative loads and stores in disciplined functions are register
// spills; Push/Pop address only the stack. Neither can observe rodata,
// because every value that could carry rodata content into a stack slot
// must first pass through one of the flagged ingress points above.
func sccTouchesMem(dis *disasm.Disassembly, sccs [][]int) []bool {
	fp, sp := dis.Arch.FP(), dis.Arch.SP()
	out := make([]bool, len(sccs))
	for ci, scc := range sccs {
		for _, fi := range scc {
			fn := dis.Funcs[fi]
			if !frameDisciplined(fn, fp, sp) {
				out[ci] = true
				break
			}
			for _, in := range fn.Instrs {
				switch in.Op {
				case isa.Ldb, isa.Ldw, isa.Stb, isa.Stw:
					if in.Rs1 != fp && in.Rs1 != sp {
						out[ci] = true
					}
				case isa.CallI:
					if b, ok := minic.BuiltinByIndex(int(in.Imm)); ok && b.Mem {
						out[ci] = true
					}
				}
			}
			if out[ci] {
				break
			}
		}
	}
	return out
}

// frameDisciplined reports whether every write to the frame and stack
// pointers keeps them stack-valued: moves between FP and SP, the implicit
// Push/Pop/AddSp adjustments, and the epilogue's Pop-FP — accepted only when
// immediately followed by Ret, so a popped value (which may be any pushed
// word) is never live at a load or store. Compiler output always satisfies
// this; arbitrary bytes that do not are conservatively treated as
// memory-touching by sccTouchesMem.
func frameDisciplined(fn *disasm.Function, fp, sp isa.Reg) bool {
	for k, in := range fn.Instrs {
		if !writesRd(in.Op) || (in.Rd != fp && in.Rd != sp) {
			continue
		}
		switch {
		case in.Op == isa.Mov && (in.Rs1 == fp || in.Rs1 == sp):
		case in.Op == isa.Pop && in.Rd == fp &&
			k+1 < len(fn.Instrs) && fn.Instrs[k+1].Op == isa.Ret:
		default:
			return false
		}
	}
	return true
}

// writesRd reports whether op writes its Rd operand.
func writesRd(op isa.Op) bool {
	switch {
	case op == isa.Ldi || op == isa.Mov || op == isa.Ldb || op == isa.Ldw || op == isa.Pop:
		return true
	case op >= isa.Add && op <= isa.Inv: // RISC ALU, compares, unaries
		return true
	case op >= isa.Add2 && op <= isa.ShrI: // CISC ALU and immediates
		return true
	case op >= isa.Sete && op <= isa.Setge: // CISC flag materialization
		return true
	}
	return false
}

// rodataDigest hashes the rodata section with its length, so an empty
// section and a missing one digest differently from any non-empty one.
func rodataDigest(rodata []byte) [sha256.Size]byte {
	h := sha256.New()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(len(rodata)))
	h.Write(buf[:])
	h.Write(rodata)
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}

// hashRoot encodes the closure of one function, rooted at root, and hashes
// it. Members of root's component are walked breadth-first in first-call
// order starting at root, so each member of a cycle still gets its own
// root-relative address.
func hashRoot(dis *disasm.Disassembly, vecs []features.Vector, root int,
	comp []int, callees [][]int, resolved []map[int]int,
	sccMem []bool, rodata [sha256.Size]byte, addrs []Addr, buf []byte) Addr {

	h := sha256.New()
	h.Write([]byte(version))
	h.Write([]byte(dis.Arch.Name))
	h.Write([]byte{0})

	local := map[int]int{root: 0}
	order := []int{root}
	var extRefs []int
	extPos := map[int]int{}

	for qi := 0; qi < len(order); qi++ {
		fi := order[qi]
		fn := dis.Funcs[fi]
		writeU64(h, buf, uint64(len(fn.Instrs)))
		for k, in := range fn.Instrs {
			tag, val := byte(immRaw), uint64(in.Imm)
			if in.Op == isa.Call {
				if ti, ok := resolved[fi][k]; ok {
					if comp[ti] == comp[root] {
						li, seen := local[ti]
						if !seen {
							li = len(order)
							local[ti] = li
							order = append(order, ti)
						}
						tag, val = immLocal, uint64(li)
					} else {
						ei, seen := extPos[ti]
						if !seen {
							ei = len(extRefs)
							extPos[ti] = ei
							extRefs = append(extRefs, ti)
						}
						tag, val = immExtern, uint64(ei)
					}
				}
			}
			buf[0], buf[1], buf[2], buf[3], buf[4] = byte(in.Op), byte(in.Rd), byte(in.Rs1), byte(in.Rs2), tag
			binary.LittleEndian.PutUint64(buf[5:13], val)
			h.Write(buf[:13])
		}
	}

	writeU64(h, buf, uint64(len(extRefs)))
	for _, ti := range extRefs {
		h.Write(addrs[ti][:])
	}
	if sccMem[comp[root]] {
		h.Write([]byte{1})
		h.Write(rodata[:])
	} else {
		h.Write([]byte{0})
	}
	for _, x := range vecs[root] {
		writeU64(h, buf, math.Float64bits(x))
	}

	var out Addr
	h.Sum(out[:0])
	return out
}

func writeU64(h hash.Hash, buf []byte, v uint64) {
	binary.LittleEndian.PutUint64(buf[:8], v)
	h.Write(buf[:8])
}
