// Package corpus generates the three datasets of the paper's evaluation
// (§V-A):
//
//   - Dataset I — the training corpus: generated libraries compiled from
//     source for 4 architectures × 6 optimization levels (the paper's 100
//     Android libraries / 2,108 binaries; some (library, level) combinations
//     are skipped, mirroring the paper's footnote that "some compiler
//     optimization levels didn't work for certain instances").
//   - Dataset II — the vulnerability database: the 25 CVE reference pairs
//     compiled per architecture plus fuzzer-derived execution environments.
//   - Dataset III — device firmware images: per-device library sets with
//     per-CVE patch states, stripped for scanning, with ground truth kept
//     aside for evaluation only.
//
// Everything is deterministic from seeds, so every table in EXPERIMENTS.md
// is reproducible bit-for-bit.
package corpus

import (
	"fmt"
	"math/rand"

	"repro/internal/binimg"
	"repro/internal/compiler"
	"repro/internal/detector"
	"repro/internal/disasm"
	"repro/internal/features"
	"repro/internal/fuzz"
	"repro/internal/isa"
	"repro/internal/minic"
	"repro/internal/vulndb"
)

// Scale sizes corpus generation. The paper's full corpus needs GPU-scale
// training; these presets keep each experiment tractable on one CPU core
// while preserving the evaluation's shape.
type Scale struct {
	Name        string
	NumLibs     int // Dataset I libraries
	FuncsPerLib int
	// SkipFrac is the fraction of (lib, arch, level) compilations dropped,
	// like the paper's failed optimization-level builds.
	SkipFrac float64

	// Detector training knobs.
	MaxPosPerFunc int
	Epochs        int

	// Dataset III sizing.
	FirmwareExtraLibs int // generated-only libraries besides the CVE hosts
	FirmwareFuncs     int // functions per firmware library
	// SiblingsPerCVE is how many lookalike functions are planted next to
	// each hosted CVE function (half of them crashy). Real libraries are
	// full of such lookalikes; they are what the static stage over-reports
	// and the dynamic stage prunes.
	SiblingsPerCVE int

	// Dynamic stage knobs.
	NumEnvs   int
	FuzzIters int
}

// Preset scales.
var (
	ScaleTiny = Scale{
		Name: "tiny", NumLibs: 3, FuncsPerLib: 8, SkipFrac: 0.05,
		MaxPosPerFunc: 8, Epochs: 4,
		FirmwareExtraLibs: 1, FirmwareFuncs: 10, SiblingsPerCVE: 2,
		NumEnvs: 3, FuzzIters: 120,
	}
	ScaleSmall = Scale{
		Name: "small", NumLibs: 8, FuncsPerLib: 15, SkipFrac: 0.08,
		MaxPosPerFunc: 10, Epochs: 6,
		FirmwareExtraLibs: 3, FirmwareFuncs: 25, SiblingsPerCVE: 4,
		NumEnvs: 4, FuzzIters: 250,
	}
	ScaleMedium = Scale{
		Name: "medium", NumLibs: 25, FuncsPerLib: 25, SkipFrac: 0.1,
		MaxPosPerFunc: 12, Epochs: 8,
		FirmwareExtraLibs: 8, FirmwareFuncs: 60, SiblingsPerCVE: 6,
		NumEnvs: 4, FuzzIters: 400,
	}
	ScaleLarge = Scale{
		Name: "large", NumLibs: 100, FuncsPerLib: 40, SkipFrac: 0.12,
		MaxPosPerFunc: 16, Epochs: 10,
		FirmwareExtraLibs: 16, FirmwareFuncs: 120, SiblingsPerCVE: 10,
		NumEnvs: 4, FuzzIters: 600,
	}
)

// ScaleByName resolves a preset.
func ScaleByName(name string) (Scale, error) {
	for _, s := range []Scale{ScaleTiny, ScaleSmall, ScaleMedium, ScaleLarge} {
		if s.Name == name {
			return s, nil
		}
	}
	return Scale{}, fmt.Errorf("corpus: unknown scale %q", name)
}

// refLevel is the optimization level used for vulnerability-database
// reference builds.
const refLevel = compiler.O1

// siblingSuffixes name the lookalike variants planted next to CVE
// functions, like neighbouring overloads in a real library.
var siblingSuffixes = []string{"Fast", "Compat", "Legacy", "V2", "Impl", "Ex", "Raw", "Slow", "Alt", "Pre"}

// TrainingGroups builds Dataset I: per-function static feature vectors
// grouped by source function across all (arch, level) compilations.
func TrainingGroups(s Scale, seed int64) (detector.Groups, error) {
	groups := make(detector.Groups)
	rng := rand.New(rand.NewSource(seed))
	for li := 0; li < s.NumLibs; li++ {
		mod := minic.GenLibrary(minic.GenConfig{
			Seed:     seed + int64(li)*7919,
			Name:     fmt.Sprintf("libtrain%03d", li),
			NumFuncs: s.FuncsPerLib,
		})
		for _, arch := range isa.All() {
			for _, lvl := range compiler.Levels() {
				if rng.Float64() < s.SkipFrac {
					continue // "didn't work for certain instances"
				}
				im, err := compiler.Compile(mod, arch, lvl)
				if err != nil {
					return nil, fmt.Errorf("corpus: compile %s %s/%s: %w", mod.Name, arch.Name, lvl, err)
				}
				dis, err := disasm.Disassemble(im)
				if err != nil {
					return nil, fmt.Errorf("corpus: disasm %s %s/%s: %w", mod.Name, arch.Name, lvl, err)
				}
				for _, f := range dis.Funcs {
					groups.Add(mod.Name, f.Name, features.Extract(dis, f))
				}
			}
		}
	}
	return groups, nil
}

// BuildDB builds Dataset II: the 25-entry vulnerability database with
// per-architecture reference binaries and fuzzer-derived environments.
func BuildDB(s Scale, seed int64) (*vulndb.DB, error) {
	db := &vulndb.DB{}
	for ci, pair := range minic.CVEs() {
		entry := &vulndb.Entry{
			ID:            pair.ID,
			Library:       pair.Library,
			FuncName:      pair.FuncName,
			Class:         pair.Class,
			Minute:        pair.Minute,
			VulnImages:    make(map[string][]byte),
			PatchedImages: make(map[string][]byte),
		}
		for _, arch := range isa.All() {
			vim, err := compiler.Compile(
				&minic.Module{Name: pair.Library + ".vuln", Funcs: []*minic.Func{pair.Vulnerable}},
				arch, refLevel)
			if err != nil {
				return nil, fmt.Errorf("corpus: %s vuln ref: %w", pair.ID, err)
			}
			pim, err := compiler.Compile(
				&minic.Module{Name: pair.Library + ".patched", Funcs: []*minic.Func{pair.Patched}},
				arch, refLevel)
			if err != nil {
				return nil, fmt.Errorf("corpus: %s patched ref: %w", pair.ID, err)
			}
			entry.VulnImages[arch.Name] = binimg.Encode(vim)
			entry.PatchedImages[arch.Name] = binimg.Encode(pim)
		}
		// Derive environments on a reference architecture, requiring every
		// environment to run cleanly on BOTH versions (the paper "tested
		// that these inputs worked with both the vulnerable and patched
		// functions"). Thanks to the toolchain's semantics preservation,
		// clean execution carries over to the other architectures.
		vref, err := entry.VulnRef(isa.AMD64.Name)
		if err != nil {
			return nil, err
		}
		pref, err := entry.PatchedRef(isa.AMD64.Name)
		if err != nil {
			return nil, err
		}
		cfg := fuzz.DefaultConfig(seed + int64(ci)*131)
		cfg.NumEnvs = s.NumEnvs
		cfg.MaxIters = s.FuzzIters
		envs := fuzz.Environments([]fuzz.Ref{
			{Dis: vref.Dis, Fn: vref.Fn},
			{Dis: pref.Dis, Fn: pref.Fn},
		}, cfg)
		if len(envs) == 0 {
			return nil, fmt.Errorf("corpus: %s: no clean environments found", pair.ID)
		}
		for _, env := range envs {
			entry.Envs = append(entry.Envs, vulndb.FromEnv(env))
		}
		db.Entries = append(db.Entries, entry)
	}
	return db, nil
}

// Device describes one target platform of Dataset III.
type Device struct {
	Name string
	Arch *isa.Arch
	Seed int64
	// PatchState maps CVE id to whether this device's firmware carries the
	// patched version. CVEs absent from the map are present and vulnerable.
	PatchState map[string]bool
	// Obfuscate builds the firmware with the compiler's obfuscation passes
	// (dead-code islands, live junk, stack churn) — the hostile-vendor
	// scenario used by the obfuscation-robustness ablation.
	Obfuscate bool
}

// Obfuscated derives a device variant whose firmware is built obfuscated.
func (d Device) Obfuscated() Device {
	d.Name += "-obf"
	d.Obfuscate = true
	return d
}

// The two evaluation devices, mirroring the paper's Android Things 1.0 and
// Google Pixel 2 XL targets. ThingOS carries the patch states of the
// paper's Table VIII ground-truth column (10 CVEs patched, including the
// one-integer CVE-2018-9470 left unpatched); Pebble2XL models the Pixel's
// older 2017 patch level with a smaller patched set.
var (
	ThingOS = Device{
		Name: "thingos-1.0",
		Arch: isa.XARM32,
		Seed: 90001,
		PatchState: map[string]bool{
			"CVE-2017-13232": true,
			"CVE-2017-13210": true,
			"CVE-2017-13209": true,
			"CVE-2017-13252": true,
			"CVE-2017-13253": true,
			"CVE-2017-13278": true,
			"CVE-2017-13208": true,
			"CVE-2017-13279": true,
			"CVE-2017-13180": true,
			"CVE-2017-13182": true,
		},
	}
	Pebble2XL = Device{
		Name: "pebble-2xl",
		Arch: isa.XARM64,
		Seed: 90002,
		PatchState: map[string]bool{
			"CVE-2017-13232": true,
			"CVE-2017-13208": true,
			"CVE-2017-13178": true,
		},
	}
	// FruitOS is the iOS stand-in: the paper's Dataset III also collects
	// "different versions of ... IOS" firmware (§II-A counts 198 libraries
	// with 93,714 functions in IOS 12.0.1), though the evaluation tables
	// run on the two devices above. FruitOS exists for cross-ecosystem
	// scans and the corpus census; its patch level is current (most CVEs
	// patched).
	FruitOS = Device{
		Name: "fruitos-12",
		Arch: isa.AMD64,
		Seed: 90003,
		PatchState: map[string]bool{
			"CVE-2017-13232": true, "CVE-2017-13210": true, "CVE-2017-13209": true,
			"CVE-2017-13252": true, "CVE-2017-13253": true, "CVE-2017-13278": true,
			"CVE-2017-13208": true, "CVE-2017-13279": true, "CVE-2017-13180": true,
			"CVE-2017-13182": true, "CVE-2017-13178": true, "CVE-2018-9340": true,
			"CVE-2018-9345": true, "CVE-2018-9410": true, "CVE-2018-9411": true,
			"CVE-2018-9412": true, "CVE-2018-9420": true, "CVE-2018-9424": true,
			"CVE-2018-9427": true, "CVE-2018-9440": true,
		},
	}
)

// CVETruth is the ground truth for one CVE in one firmware image.
type CVETruth struct {
	ID       string
	Library  string
	FuncName string
	Patched  bool
	Addr     uint64 // address of the CVE function in the host library
}

// LibraryTruth retains the pre-strip symbol table of one firmware library.
type LibraryTruth struct {
	Library string
	Symbols []binimg.Symbol
}

// Firmware is one device image set (Dataset III), stripped for scanning.
type Firmware struct {
	Device string
	Arch   string
	Images []*binimg.Image // stripped

	// Ground truth, used by the evaluation only — never by the pipeline.
	Truth map[string]LibraryTruth // by library name
	CVEs  []CVETruth
}

// Image returns the firmware library image with the given name.
func (fw *Firmware) Image(lib string) (*binimg.Image, bool) {
	for _, im := range fw.Images {
		if im.LibName == lib {
			return im, true
		}
	}
	return nil, false
}

// CVETruthFor returns the ground truth record for a CVE id.
func (fw *Firmware) CVETruthFor(id string) (CVETruth, bool) {
	for _, ct := range fw.CVEs {
		if ct.ID == id {
			return ct, true
		}
	}
	return CVETruth{}, false
}

// BuildFirmware generates Dataset III for one device: every CVE host
// library (carrying the vulnerable or patched function per the device's
// patch state) plus extra unrelated libraries, each compiled at a
// device-deterministic optimization level and stripped.
func BuildFirmware(dev Device, s Scale) (*Firmware, error) {
	fw := &Firmware{
		Device: dev.Name,
		Arch:   dev.Arch.Name,
		Truth:  make(map[string]LibraryTruth),
	}
	rng := rand.New(rand.NewSource(dev.Seed))
	levels := compiler.Levels()

	// Group CVEs by host library.
	byLib := make(map[string][]*minic.CVEPair)
	var libOrder []string
	for _, pair := range minic.CVEs() {
		if _, ok := byLib[pair.Library]; !ok {
			libOrder = append(libOrder, pair.Library)
		}
		byLib[pair.Library] = append(byLib[pair.Library], pair)
	}

	buildLib := func(mod *minic.Module) (*binimg.Image, error) {
		lvl := levels[rng.Intn(len(levels))]
		var (
			im  *binimg.Image
			err error
		)
		if dev.Obfuscate {
			im, err = compiler.CompileObfuscated(mod, dev.Arch, lvl,
				compiler.DefaultObfConfig(dev.Seed+int64(len(fw.Images))))
		} else {
			im, err = compiler.Compile(mod, dev.Arch, lvl)
		}
		if err != nil {
			return nil, fmt.Errorf("corpus: firmware %s %s: %w", dev.Name, mod.Name, err)
		}
		fw.Truth[mod.Name] = LibraryTruth{Library: mod.Name, Symbols: im.Symbols}
		stripped := im.Strip()
		fw.Images = append(fw.Images, stripped)
		return im, nil
	}

	for li, lib := range libOrder {
		mod := minic.GenLibrary(minic.GenConfig{
			Seed:     dev.Seed + int64(li)*104729,
			Name:     lib,
			NumFuncs: s.FirmwareFuncs,
		})
		// Insert each hosted CVE function at a deterministic position, and
		// plant lookalike siblings around it (half with latent faults).
		for ci, pair := range byLib[lib] {
			fn := pair.Vulnerable
			if dev.PatchState[pair.ID] {
				fn = pair.Patched
			}
			insert := []*minic.Func{fn}
			for si := 0; si < s.SiblingsPerCVE; si++ {
				insert = append(insert, minic.SiblingFunc(
					pair.Vulnerable,
					fmt.Sprintf("%s%s", pair.FuncName, siblingSuffixes[si%len(siblingSuffixes)]),
					dev.Seed+int64(ci)*977+int64(si),
					si%2 == 0, /* crashy */
				))
			}
			for _, f := range insert {
				pos := rng.Intn(len(mod.Funcs) + 1)
				mod.Funcs = append(mod.Funcs[:pos], append([]*minic.Func{f}, mod.Funcs[pos:]...)...)
			}
		}
		im, err := buildLib(mod)
		if err != nil {
			return nil, err
		}
		for _, pair := range byLib[lib] {
			sym, ok := im.Lookup(pair.FuncName)
			if !ok {
				return nil, fmt.Errorf("corpus: %s lost %s", lib, pair.FuncName)
			}
			fw.CVEs = append(fw.CVEs, CVETruth{
				ID:       pair.ID,
				Library:  lib,
				FuncName: pair.FuncName,
				Patched:  dev.PatchState[pair.ID],
				Addr:     sym.Addr,
			})
		}
	}
	for xi := 0; xi < s.FirmwareExtraLibs; xi++ {
		mod := minic.GenLibrary(minic.GenConfig{
			Seed:     dev.Seed + int64(1000+xi)*104729,
			Name:     fmt.Sprintf("libvendor%02d", xi),
			NumFuncs: s.FirmwareFuncs,
		})
		if _, err := buildLib(mod); err != nil {
			return nil, err
		}
	}
	return fw, nil
}

// FleetVendorImages generates n extra vendor libraries the way a real fleet
// diversifies beyond the reference corpus' code profile: body-size profiles
// rotate through 2× and 3× the generator default, optimization levels
// rotate, and every image ships stripped. The component prefilter's
// grid-reduction measurements scan these alongside a device's own images to
// model firmware dominated by vendor code that hosts no CVE at all.
func FleetVendorImages(arch *isa.Arch, n int, seed int64) ([]*binimg.Image, error) {
	levels := compiler.Levels()
	out := make([]*binimg.Image, 0, n)
	for i := 0; i < n; i++ {
		mod := minic.GenLibrary(minic.GenConfig{
			Seed:      seed + int64(i)*104729,
			Name:      fmt.Sprintf("libfleet%02d", i),
			NumFuncs:  10,
			BodyScale: 2 + float64(i%2),
		})
		im, err := compiler.Compile(mod, arch, levels[i%len(levels)])
		if err != nil {
			return nil, fmt.Errorf("corpus: fleet vendor %s: %w", mod.Name, err)
		}
		out = append(out, im.Strip())
	}
	return out, nil
}
