package corpus

import (
	"testing"

	"repro/internal/disasm"
	"repro/internal/emu"
	"repro/internal/minic"
	"repro/internal/vulndb"
)

func TestScaleByName(t *testing.T) {
	for _, name := range []string{"tiny", "small", "medium", "large"} {
		s, err := ScaleByName(name)
		if err != nil || s.Name != name {
			t.Errorf("ScaleByName(%s) = %+v, %v", name, s, err)
		}
	}
	if _, err := ScaleByName("huge"); err == nil {
		t.Error("want error for unknown scale")
	}
}

func TestTrainingGroupsShape(t *testing.T) {
	groups, err := TrainingGroups(ScaleTiny, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != ScaleTiny.NumLibs*ScaleTiny.FuncsPerLib {
		t.Errorf("%d function groups, want %d", len(groups), ScaleTiny.NumLibs*ScaleTiny.FuncsPerLib)
	}
	// Each function appears under multiple compilations (24 minus skips).
	for k, vs := range groups {
		if len(vs) < 12 {
			t.Errorf("%v has only %d compilations", k, len(vs))
		}
		if len(vs) > 24 {
			t.Errorf("%v has %d compilations, max is 24", k, len(vs))
		}
	}
}

func TestTrainingGroupsDeterministic(t *testing.T) {
	a, err := TrainingGroups(ScaleTiny, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TrainingGroups(ScaleTiny, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("nondeterministic group count")
	}
	for k := range a {
		if len(a[k]) != len(b[k]) {
			t.Fatalf("%v: nondeterministic compilation count", k)
		}
		for i := range a[k] {
			if a[k][i] != b[k][i] {
				t.Fatalf("%v: nondeterministic features", k)
			}
		}
	}
}

func TestBuildDB(t *testing.T) {
	db, err := BuildDB(ScaleTiny, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(db.Entries) != 25 {
		t.Fatalf("%d entries, want 25", len(db.Entries))
	}
	minute := 0
	for _, e := range db.Entries {
		if len(e.Envs) == 0 {
			t.Errorf("%s: no environments", e.ID)
		}
		if len(e.VulnImages) != 4 || len(e.PatchedImages) != 4 {
			t.Errorf("%s: missing per-arch references", e.ID)
		}
		if e.Minute {
			minute++
		}
		// Environments must run cleanly on both references on the device
		// architectures too (semantics preservation makes this hold).
		for _, archName := range []string{"xarm32", "xarm64"} {
			vref, err := e.VulnRef(archName)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			pref, err := e.PatchedRef(archName)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			for i, env := range e.Environments() {
				if _, err := emu.Execute(vref.Dis, vref.Fn, env.Clone(), 1<<20); err != nil {
					t.Errorf("%s %s env %d: vulnerable ref traps: %v", e.ID, archName, i, err)
				}
				if _, err := emu.Execute(pref.Dis, pref.Fn, env.Clone(), 1<<20); err != nil {
					t.Errorf("%s %s env %d: patched ref traps: %v", e.ID, archName, i, err)
				}
			}
		}
	}
	if minute != 1 {
		t.Errorf("%d minute entries, want 1", minute)
	}
	// Serialization survives.
	raw, err := db.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vulndb.Load(raw); err != nil {
		t.Fatal(err)
	}
}

func TestBuildFirmware(t *testing.T) {
	for _, dev := range []Device{ThingOS, Pebble2XL} {
		fw, err := BuildFirmware(dev, ScaleTiny)
		if err != nil {
			t.Fatalf("%s: %v", dev.Name, err)
		}
		if fw.Arch != dev.Arch.Name {
			t.Errorf("%s: arch %s", dev.Name, fw.Arch)
		}
		if len(fw.CVEs) != 25 {
			t.Errorf("%s: %d CVE truths, want 25", dev.Name, len(fw.CVEs))
		}
		for _, im := range fw.Images {
			if !im.Stripped || im.Symbols != nil {
				t.Errorf("%s: image %s not stripped", dev.Name, im.LibName)
			}
			if _, ok := fw.Truth[im.LibName]; !ok {
				t.Errorf("%s: no ground truth for %s", dev.Name, im.LibName)
			}
		}
		// Patch states follow the device table.
		for _, ct := range fw.CVEs {
			if ct.Patched != dev.PatchState[ct.ID] {
				t.Errorf("%s %s: patch state %v, want %v", dev.Name, ct.ID, ct.Patched, dev.PatchState[ct.ID])
			}
		}
		// The CVE function is really present at the recorded address and
		// the stripped image disassembles around it.
		ct, ok := fw.CVETruthFor("CVE-2018-9412")
		if !ok {
			t.Fatalf("%s: no truth for the case-study CVE", dev.Name)
		}
		im, ok := fw.Image(ct.Library)
		if !ok {
			t.Fatalf("%s: host library missing", dev.Name)
		}
		dis, err := disasm.Disassemble(im)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := dis.FuncAt(ct.Addr); !ok {
			t.Errorf("%s: boundary recovery lost the CVE function at %#x", dev.Name, ct.Addr)
		}
	}
}

func TestDevicesDiffer(t *testing.T) {
	// The two devices must have different patch levels (that difference
	// drives Fig. 7's per-device FP variation) and the paper's known-miss
	// CVE must be unpatched on ThingOS.
	if ThingOS.PatchState["CVE-2018-9470"] {
		t.Error("CVE-2018-9470 must be unpatched on ThingOS (Table VIII)")
	}
	same := true
	for id, p := range ThingOS.PatchState {
		if Pebble2XL.PatchState[id] != p {
			same = false
		}
	}
	if same {
		t.Error("devices share identical patch states")
	}
}

func TestFirmwareGeneratedFunctionsExecutable(t *testing.T) {
	fw, err := BuildFirmware(ThingOS, ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	im := fw.Images[0]
	dis, err := disasm.Disassemble(im)
	if err != nil {
		t.Fatal(err)
	}
	env := &minic.Env{Args: []int64{minic.DataBase, 32, 3, 2}, Data: make([]byte, 64)}
	ran := 0
	for _, f := range dis.Funcs {
		if _, err := emu.Execute(dis, f, env.Clone(), 1<<18); err == nil {
			ran++
		}
	}
	if ran == 0 {
		t.Error("no firmware function executes cleanly")
	}
}
