package isa

import (
	"testing"
)

// FuzzDecode feeds arbitrary bytes to every architecture's decoder: it must
// never panic, and whatever it accepts must re-encode to the same bytes
// (decode/encode idempotence on the accepted prefix).
func FuzzDecode(f *testing.F) {
	for _, arch := range All() {
		f.Add(arch.PrologueBytes())
		enc, _, _ := arch.Encode([]Instr{{Op: Ldi, Rd: 1, Imm: -42}, {Op: Ret}})
		f.Add(enc)
	}
	f.Add([]byte{0x00, 0x01, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, arch := range All() {
			in, n, err := arch.Decode(data)
			if err != nil {
				continue
			}
			if n <= 0 || n > len(data) {
				t.Fatalf("%s: decode consumed %d of %d bytes", arch.Name, n, len(data))
			}
			// Branch immediates are rewritten by Encode, so skip them.
			if in.Op.IsBranch() {
				continue
			}
			re := arch.appendInstr(nil, in)
			// Re-encoding may legitimately pick a smaller immediate width
			// for CISC, so compare via a second decode instead of bytes.
			in2, _, err := arch.Decode(re)
			if err != nil {
				t.Fatalf("%s: re-encoded instruction undecodable: %v (%v)", arch.Name, err, in)
			}
			if in2 != in {
				t.Fatalf("%s: decode/encode/decode drift: %+v vs %+v", arch.Name, in, in2)
			}
		}
	})
}

// FuzzDecodeAllNoHang ensures DecodeAll terminates and either consumes the
// whole input or errors.
func FuzzDecodeAllNoHang(f *testing.F) {
	enc, _, _ := AMD64.Encode([]Instr{{Op: Nop}, {Op: Ret}})
	f.Add(enc)
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 4096 {
			data = data[:4096]
		}
		instrs, offs, err := AMD64.DecodeAll(data)
		if err != nil {
			return
		}
		if len(instrs) != len(offs) {
			t.Fatal("instrs/offsets length mismatch")
		}
		total := 0
		for i := range instrs {
			if offs[i] != total {
				t.Fatalf("offset drift at %d", i)
			}
			total += AMD64.InstrSize(instrs[i])
		}
		if total != len(data) {
			t.Fatalf("DecodeAll accepted %d of %d bytes without error", total, len(data))
		}
	})
}
