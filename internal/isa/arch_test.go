package isa

import (
	"bytes"
	"math/rand"
	"testing"
)

// randInstr generates a random but well-formed instruction for the arch.
func randInstr(rng *rand.Rand, a *Arch) Instr {
	for {
		op := Op(1 + rng.Intn(NumOps-1))
		if op == opMax {
			continue
		}
		in := Instr{
			Op:  op,
			Rd:  Reg(rng.Intn(a.NumRegs)),
			Rs1: Reg(rng.Intn(a.NumRegs)),
			Rs2: Reg(rng.Intn(a.NumRegs)),
		}
		if op.HasImm() && !op.IsBranch() {
			switch rng.Intn(4) {
			case 0:
				in.Imm = int64(int8(rng.Int()))
			case 1:
				in.Imm = int64(int16(rng.Int()))
			case 2:
				in.Imm = int64(int32(rng.Int()))
			default:
				in.Imm = rng.Int63() - rng.Int63()
			}
		}
		// CISC encodings pack registers into nibbles and drop fields the
		// format does not carry; normalize to what the format preserves.
		if a.Family == CISC {
			in.Rd &= 0x0f
			in.Rs1 &= 0x0f
			if !ciscNeedsRs2(op) {
				in.Rs2 = 0
			}
		}
		if !op.HasImm() {
			in.Imm = 0
		}
		return in
	}
}

func TestEncodeDecodeRoundtrip(t *testing.T) {
	for _, a := range All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(1))
			for i := 0; i < 2000; i++ {
				in := randInstr(rng, a)
				if in.Op.IsBranch() {
					continue // branch immediates are rewritten by Encode; tested below
				}
				b := a.appendInstr(nil, in)
				if len(b) != a.InstrSize(in) {
					t.Fatalf("%v: encoded %d bytes, InstrSize says %d", in, len(b), a.InstrSize(in))
				}
				got, n, err := a.Decode(b)
				if err != nil {
					t.Fatalf("%v: decode: %v", in, err)
				}
				if n != len(b) {
					t.Fatalf("%v: decode consumed %d of %d", in, n, len(b))
				}
				if got != in {
					t.Fatalf("roundtrip mismatch: sent %+v, got %+v", in, got)
				}
			}
		})
	}
}

func TestEncodeBranchTargets(t *testing.T) {
	for _, a := range All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			// 0: ldi r0, 7; 1: jmp ->3; 2: nop; 3: ret
			instrs := []Instr{
				{Op: Ldi, Rd: 0, Imm: 7},
				{Op: Jmp, Imm: 3}, // target = instruction index 3
				{Op: Nop},
				{Op: Ret},
			}
			b, offs, err := a.Encode(instrs)
			if err != nil {
				t.Fatal(err)
			}
			decoded, doffs, err := a.DecodeAll(b)
			if err != nil {
				t.Fatal(err)
			}
			if len(decoded) != 4 {
				t.Fatalf("decoded %d instrs, want 4", len(decoded))
			}
			for i := range offs {
				if offs[i] != doffs[i] {
					t.Fatalf("offset %d: encode %d vs decode %d", i, offs[i], doffs[i])
				}
			}
			if decoded[1].Imm != int64(offs[3]) {
				t.Errorf("jmp byte offset = %d, want %d", decoded[1].Imm, offs[3])
			}
		})
	}
}

func TestEncodeBranchOutOfRange(t *testing.T) {
	_, _, err := XARM64.Encode([]Instr{{Op: Jmp, Imm: 99}})
	if err == nil {
		t.Error("want error for out-of-range branch target")
	}
}

func TestArchEncodingsDiffer(t *testing.T) {
	in := []Instr{{Op: Ldi, Rd: 1, Imm: 42}, {Op: Ret}}
	seen := make(map[string]string)
	for _, a := range All() {
		b, _, err := a.Encode(in)
		if err != nil {
			t.Fatal(err)
		}
		if prev, ok := seen[string(b)]; ok {
			t.Errorf("%s and %s share an encoding", a.Name, prev)
		}
		seen[string(b)] = a.Name
	}
}

func TestPrologueConstantAndDecodable(t *testing.T) {
	for _, a := range All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			p1 := a.PrologueBytes()
			p2 := a.PrologueBytes()
			if !bytes.Equal(p1, p2) {
				t.Fatal("prologue bytes not constant")
			}
			instrs, _, err := a.DecodeAll(p1)
			if err != nil {
				t.Fatal(err)
			}
			if len(instrs) != 2 || instrs[0].Op != Push || instrs[1].Op != Mov {
				t.Errorf("prologue decodes to %v", instrs)
			}
			if instrs[0].Rs1 != a.FP() || instrs[1].Rd != a.FP() || instrs[1].Rs1 != a.SP() {
				t.Errorf("prologue registers wrong: %v", instrs)
			}
		})
	}
}

func TestOpClassification(t *testing.T) {
	// Every op belongs to a well-defined, non-contradictory class set.
	for op := Op(1); op < opMax; op++ {
		if op.IsArith() && op.IsArithFP() {
			t.Errorf("%v is both int and FP arithmetic", op)
		}
		if op.IsBranch() && op.IsCall() {
			t.Errorf("%v is both branch and call", op)
		}
		if op.IsLoad() && op.IsStore() {
			t.Errorf("%v is both load and store", op)
		}
	}
	if !Jz.IsCondBranch() || Jmp.IsCondBranch() {
		t.Error("cond-branch classification wrong")
	}
	if !Jmp.Terminates() || !Ret.Terminates() || Jz.Terminates() {
		t.Error("terminator classification wrong")
	}
}

func TestByName(t *testing.T) {
	for _, a := range All() {
		got, err := ByName(a.Name)
		if err != nil || got != a {
			t.Errorf("ByName(%s) = %v, %v", a.Name, got, err)
		}
	}
	if _, err := ByName("mips"); err == nil {
		t.Error("want error for unknown arch")
	}
}

func TestWordWidthsAndRegisterFiles(t *testing.T) {
	if X86.NumRegs != 8 || len(X86.VarRegs()) != 0 || len(X86.ScratchRegs()) != 2 {
		t.Error("x86 register file should be starved")
	}
	if AMD64.NumRegs != 16 || len(AMD64.VarRegs()) == 0 {
		t.Error("amd64 register file wrong")
	}
	// Fixed RISC widths differ between 32- and 64-bit variants.
	i := Instr{Op: Nop}
	if XARM32.InstrSize(i) == XARM64.InstrSize(i) {
		t.Error("RISC 32/64 encodings should differ in width")
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := AMD64.Decode(nil); err == nil {
		t.Error("want error for empty input")
	}
	// An opcode byte that is not assigned must fail. Find one.
	for b := 1; b <= 255; b++ {
		if _, ok := AMD64.byteToOp[byte(b)]; !ok {
			if _, _, err := AMD64.Decode([]byte{byte(b), 0}); err == nil {
				t.Error("want error for unassigned opcode byte")
			}
			return
		}
	}
}
