package isa

import (
	"fmt"
	"math/rand"
)

// Family distinguishes the two instruction-set families.
type Family int

// Families.
const (
	RISC Family = iota + 1 // three-address load/store, fixed-width encoding
	CISC                   // two-address + immediates, variable-width encoding
)

func (f Family) String() string {
	if f == RISC {
		return "RISC"
	}
	return "CISC"
}

// Arch describes one target architecture: its register file, instruction
// family, word width and binary opcode assignment.
type Arch struct {
	Name     string
	WordBits int
	Family   Family
	NumRegs  int

	opToByte map[Op]byte
	byteToOp map[byte]Op
}

// The four target architectures (the paper's x86 / amd64 / ARM32 / ARM64).
var (
	XARM32 = newArch("xarm32", 32, RISC, 16, 0xA3)
	XARM64 = newArch("xarm64", 64, RISC, 16, 0x5C)
	X86    = newArch("x86", 32, CISC, 8, 0x17)
	AMD64  = newArch("amd64", 64, CISC, 16, 0xE9)
)

// All returns the four supported architectures.
func All() []*Arch { return []*Arch{XARM32, XARM64, X86, AMD64} }

// ByName resolves an architecture by name.
func ByName(name string) (*Arch, error) {
	for _, a := range All() {
		if a.Name == name {
			return a, nil
		}
	}
	return nil, fmt.Errorf("isa: unknown architecture %q", name)
}

// newArch builds an architecture with a salt-derived opcode permutation, so
// each architecture has a genuinely different binary opcode map.
func newArch(name string, wordBits int, fam Family, numRegs int, salt int64) *Arch {
	a := &Arch{
		Name:     name,
		WordBits: wordBits,
		Family:   fam,
		NumRegs:  numRegs,
		opToByte: make(map[Op]byte, NumOps),
		byteToOp: make(map[byte]Op, NumOps),
	}
	// Deterministically shuffle candidate opcode bytes 0x01..0xFF.
	rng := rand.New(rand.NewSource(salt))
	candidates := make([]byte, 0, 255)
	for b := 1; b <= 255; b++ {
		candidates = append(candidates, byte(b))
	}
	rng.Shuffle(len(candidates), func(i, j int) {
		candidates[i], candidates[j] = candidates[j], candidates[i]
	})
	i := 0
	for op := Op(1); op < opMax; op++ {
		a.opToByte[op] = candidates[i]
		a.byteToOp[candidates[i]] = op
		i++
	}
	return a
}

// FP returns the frame-pointer register.
func (a *Arch) FP() Reg { return Reg(a.NumRegs - 2) }

// SP returns the stack-pointer register.
func (a *Arch) SP() Reg { return Reg(a.NumRegs - 1) }

// ArgRegs returns the argument-passing registers (also carry the return
// value in slot 0).
func (a *Arch) ArgRegs() []Reg { return []Reg{0, 1, 2, 3} }

// ScratchRegs returns the registers the code generator may use for
// expression evaluation.
func (a *Arch) ScratchRegs() []Reg {
	if a.NumRegs <= 8 {
		return []Reg{4, 5} // register-starved x86
	}
	return []Reg{4, 5, 6, 7, 8, 9}
}

// VarRegs returns the registers available for register-allocating variables
// at O1 and above. Register-starved architectures have none.
func (a *Arch) VarRegs() []Reg {
	if a.NumRegs <= 8 {
		return nil
	}
	return []Reg{10, 11, 12, 13}
}

// riscSize is the fixed instruction width of the RISC encodings.
func (a *Arch) riscSize() int {
	if a.WordBits == 32 {
		return 12 // [op][rd][rs1][rs2][imm64]
	}
	return 16 // [op][rd][rs1][rs2][pad4][imm64]
}

// ciscImmLen returns the encoded immediate width for a CISC instruction.
// Branch offsets are fixed at 4 bytes and call/ldi at 8 so that instruction
// sizes are independent of final layout; other immediates use the smallest
// signed width that fits (the 32-bit variant has no 1-byte form).
func (a *Arch) ciscImmLen(op Op, imm int64) int {
	switch {
	case op.IsBranch():
		return 4
	case op == Call || op == CallI || op == Ldi:
		return 8
	}
	fits8 := imm >= -128 && imm <= 127
	fits16 := imm >= -32768 && imm <= 32767
	fits32 := imm >= -(1<<31) && imm <= (1<<31)-1
	switch {
	case fits8 && a.WordBits == 64:
		return 1
	case fits16:
		return 2
	case fits32:
		return 4
	default:
		return 8
	}
}

// ciscNeedsRs2 reports whether the CISC encoding carries a third register
// byte for this op.
func ciscNeedsRs2(op Op) bool {
	return op == Cmp || op == Stb || op == Stw
}

// InstrSize returns the encoded size in bytes of in on this architecture.
func (a *Arch) InstrSize(in Instr) int {
	if a.Family == RISC {
		return a.riscSize()
	}
	size := 2 // opcode + modrm
	if ciscNeedsRs2(in.Op) {
		size++
	}
	if in.Op.HasImm() {
		size += 1 + a.ciscImmLen(in.Op, in.Imm)
	}
	return size
}

// Prologue returns the canonical function prologue instructions. Its
// encoding is a constant byte pattern per architecture; the disassembler's
// function-boundary heuristic scans for it in stripped images, standing in
// for the "robust heuristic technique" the paper delegates to IDA Pro.
func (a *Arch) Prologue() []Instr {
	return []Instr{
		{Op: Push, Rs1: a.FP()},
		{Op: Mov, Rd: a.FP(), Rs1: a.SP()},
	}
}

// PrologueBytes returns the encoded prologue byte pattern.
func (a *Arch) PrologueBytes() []byte {
	var out []byte
	for _, in := range a.Prologue() {
		out = a.appendInstr(out, in)
	}
	return out
}

// Encode lowers a function body to bytes. Branch instructions must carry
// the *index* of their target instruction in Imm; Encode rewrites them to
// intra-function byte offsets. It returns the encoded bytes and the byte
// offset of each instruction.
func (a *Arch) Encode(instrs []Instr) ([]byte, []int, error) {
	offsets := make([]int, len(instrs)+1)
	for i, in := range instrs {
		offsets[i+1] = offsets[i] + a.InstrSize(in)
	}
	var out []byte
	for i, in := range instrs {
		if in.Op.IsBranch() {
			t := int(in.Imm)
			if t < 0 || t > len(instrs) {
				return nil, nil, fmt.Errorf("isa: branch at %d targets instruction %d of %d", i, t, len(instrs))
			}
			in.Imm = int64(offsets[t])
		}
		out = a.appendInstr(out, in)
	}
	return out, offsets[:len(instrs)], nil
}

func (a *Arch) appendInstr(out []byte, in Instr) []byte {
	ob, ok := a.opToByte[in.Op]
	if !ok {
		panic(fmt.Sprintf("isa: op %v not in %s opcode map", in.Op, a.Name))
	}
	if a.Family == RISC {
		out = append(out, ob, byte(in.Rd), byte(in.Rs1), byte(in.Rs2))
		if a.WordBits == 64 {
			out = append(out, 0, 0, 0, 0)
		}
		u := uint64(in.Imm)
		for i := 0; i < 8; i++ {
			out = append(out, byte(u>>(8*uint(i))))
		}
		return out
	}
	// CISC: [op][modrm] [rs2?] [immlen imm...?]
	out = append(out, ob, byte(in.Rd)<<4|byte(in.Rs1)&0x0f)
	if ciscNeedsRs2(in.Op) {
		out = append(out, byte(in.Rs2))
	}
	if in.Op.HasImm() {
		n := a.ciscImmLen(in.Op, in.Imm)
		out = append(out, byte(n))
		u := uint64(in.Imm)
		for i := 0; i < n; i++ {
			out = append(out, byte(u>>(8*uint(i))))
		}
	}
	return out
}

// Decode decodes a single instruction at the start of b, returning the
// instruction and its encoded size. Branch immediates come back as
// intra-function byte offsets, exactly as encoded.
func (a *Arch) Decode(b []byte) (Instr, int, error) {
	if len(b) == 0 {
		return Instr{}, 0, fmt.Errorf("isa: empty input")
	}
	op, ok := a.byteToOp[b[0]]
	if !ok {
		return Instr{}, 0, fmt.Errorf("isa: %s: bad opcode byte %#x", a.Name, b[0])
	}
	if a.Family == RISC {
		size := a.riscSize()
		if len(b) < size {
			return Instr{}, 0, fmt.Errorf("isa: %s: truncated instruction", a.Name)
		}
		in := Instr{Op: op, Rd: Reg(b[1]), Rs1: Reg(b[2]), Rs2: Reg(b[3])}
		immOff := 4
		if a.WordBits == 64 {
			immOff = 8
		}
		var u uint64
		for i := 0; i < 8; i++ {
			u |= uint64(b[immOff+i]) << (8 * uint(i))
		}
		in.Imm = int64(u)
		return in, size, nil
	}
	if len(b) < 2 {
		return Instr{}, 0, fmt.Errorf("isa: %s: truncated instruction", a.Name)
	}
	in := Instr{Op: op, Rd: Reg(b[1] >> 4), Rs1: Reg(b[1] & 0x0f)}
	pos := 2
	if ciscNeedsRs2(op) {
		if len(b) < pos+1 {
			return Instr{}, 0, fmt.Errorf("isa: %s: truncated instruction", a.Name)
		}
		in.Rs2 = Reg(b[pos])
		pos++
	}
	if op.HasImm() {
		if len(b) < pos+1 {
			return Instr{}, 0, fmt.Errorf("isa: %s: truncated instruction", a.Name)
		}
		n := int(b[pos])
		pos++
		switch n {
		case 1, 2, 4, 8:
		default:
			return Instr{}, 0, fmt.Errorf("isa: %s: bad immediate length %d", a.Name, n)
		}
		if len(b) < pos+n {
			return Instr{}, 0, fmt.Errorf("isa: %s: truncated immediate", a.Name)
		}
		var u uint64
		for i := 0; i < n; i++ {
			u |= uint64(b[pos+i]) << (8 * uint(i))
		}
		// Sign-extend.
		shift := uint(64 - 8*n)
		in.Imm = int64(u<<shift) >> shift
		pos += n
		// The encoder only ever emits the canonical width for the decoded
		// value (fixed for branches/Call/CallI/Ldi, smallest-fit otherwise),
		// and InstrSize reports that width. Rejecting the non-canonical
		// encodings keeps consumed bytes equal to InstrSize on everything
		// Decode accepts, which DecodeAll offset math relies on.
		if want := a.ciscImmLen(op, in.Imm); n != want {
			return Instr{}, 0, fmt.Errorf("isa: %s: non-canonical immediate width %d for %s (want %d)",
				a.Name, n, op, want)
		}
	}
	return in, pos, nil
}

// DecodeAll decodes an entire function body.
func (a *Arch) DecodeAll(b []byte) ([]Instr, []int, error) {
	var (
		instrs  []Instr
		offsets []int
	)
	pos := 0
	for pos < len(b) {
		in, n, err := a.Decode(b[pos:])
		if err != nil {
			return nil, nil, fmt.Errorf("at offset %d: %w", pos, err)
		}
		instrs = append(instrs, in)
		offsets = append(offsets, pos)
		pos += n
	}
	return instrs, offsets, nil
}
