// Package isa defines the instruction sets of the four synthetic target
// architectures the corpus is compiled for, together with their binary
// encodings.
//
// The paper evaluates PATCHECKO cross-platform on x86, amd64, ARM 32-bit and
// ARM 64-bit. This package mirrors that heterogeneity with two instruction
// families — a register-rich three-address load/store family ("RISC", the
// ARM stand-ins) and a two-address family with immediate-operand ALU forms
// and variable-length encodings ("CISC", the x86 stand-ins) — each in a
// 32-bit and a 64-bit variant with its own opcode map. The same source
// function therefore compiles to materially different instruction streams,
// opcode mixes, block structures and byte encodings per architecture, which
// is precisely the variation the paper's similarity model must see through.
package isa

import "fmt"

// Reg names a general-purpose register. Register file layout is
// per-architecture (see Arch); by convention the two highest registers are
// the frame pointer and the stack pointer.
type Reg uint8

// Op is an architecture-independent operation code. Each architecture
// encodes a subset of these with its own opcode byte assignment.
type Op uint8

// Operations. The "2" suffix marks two-address forms (rd op= rs1) used by
// the CISC family; the "I" suffix marks immediate forms (rd op= imm).
const (
	Nop Op = iota + 1
	Ldi    // rd <- imm
	Mov    // rd <- rs1

	// RISC three-address ALU: rd <- rs1 op rs2.
	Add
	Sub
	Mul
	Div
	Mod
	AndOp
	OrOp
	XorOp
	Shl
	Shr
	Fadd
	Fsub
	Fmul
	Fdiv
	// RISC compare-to-register: rd <- (rs1 op rs2) ? 1 : 0.
	Seq
	Sne
	Slt
	Sle
	Sgt
	Sge
	// RISC unary: rd <- op rs1.
	NegOp
	NotOp
	Inv

	// CISC two-address ALU: rd <- rd op rs1.
	Add2
	Sub2
	Mul2
	Div2
	Mod2
	And2
	Or2
	Xor2
	Shl2
	Shr2
	Fadd2
	Fsub2
	Fmul2
	Fdiv2
	// CISC unary in place: rd <- op rd.
	Neg2
	Not2
	Inv2
	// CISC ALU immediate: rd <- rd op imm.
	AddI
	SubI
	MulI
	AndI
	OrI
	XorI
	ShlI
	ShrI

	// CISC flag-setting compares and conditional branches.
	Cmp  // flags <- compare(rs1, rs2)
	CmpI // flags <- compare(rs1, imm)
	Je   // branch if equal
	Jne
	Jl
	Jle
	Jg
	Jge
	// CISC flag materialization (x86 SETcc): rd <- predicate(flags).
	Sete
	Setne
	Setl
	Setle
	Setg
	Setge

	// Memory. Byte loads zero-extend; words are 64-bit little-endian.
	Ldb // rd <- mem8[rs1+imm]
	Stb // mem8[rs1+imm] <- rs2 (low byte)
	Ldw // rd <- mem64[rs1+imm]
	Stw // mem64[rs1+imm] <- rs2

	// Control flow. Branch/call immediates hold an intra-function byte
	// offset (branches) or an absolute address / pre-link function index
	// (Call) / import-table index (CallI).
	Jmp
	Jz  // branch if rs1 == 0 (RISC)
	Jnz // branch if rs1 != 0 (RISC)
	Call
	CallI
	Ret

	// Stack.
	Push  // sp -= 8; mem64[sp] <- rs1
	Pop   // rd <- mem64[sp]; sp += 8
	AddSp // sp += imm

	opMax // sentinel
)

var opNames = map[Op]string{
	Nop: "nop", Ldi: "ldi", Mov: "mov",
	Add: "add", Sub: "sub", Mul: "mul", Div: "div", Mod: "mod",
	AndOp: "and", OrOp: "or", XorOp: "xor", Shl: "shl", Shr: "shr",
	Fadd: "fadd", Fsub: "fsub", Fmul: "fmul", Fdiv: "fdiv",
	Seq: "seq", Sne: "sne", Slt: "slt", Sle: "sle", Sgt: "sgt", Sge: "sge",
	NegOp: "neg", NotOp: "not", Inv: "inv",
	Add2: "add2", Sub2: "sub2", Mul2: "mul2", Div2: "div2", Mod2: "mod2",
	And2: "and2", Or2: "or2", Xor2: "xor2", Shl2: "shl2", Shr2: "shr2",
	Fadd2: "fadd2", Fsub2: "fsub2", Fmul2: "fmul2", Fdiv2: "fdiv2",
	Neg2: "neg2", Not2: "not2", Inv2: "inv2",
	AddI: "addi", SubI: "subi", MulI: "muli", AndI: "andi", OrI: "ori",
	XorI: "xori", ShlI: "shli", ShrI: "shri",
	Cmp: "cmp", CmpI: "cmpi",
	Je: "je", Jne: "jne", Jl: "jl", Jle: "jle", Jg: "jg", Jge: "jge",
	Sete: "sete", Setne: "setne", Setl: "setl", Setle: "setle",
	Setg: "setg", Setge: "setge",
	Ldb: "ldb", Stb: "stb", Ldw: "ldw", Stw: "stw",
	Jmp: "jmp", Jz: "jz", Jnz: "jnz", Call: "call", CallI: "calli", Ret: "ret",
	Push: "push", Pop: "pop", AddSp: "addsp",
}

func (op Op) String() string {
	if s, ok := opNames[op]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// NumOps is the size of the generic opcode space.
const NumOps = int(opMax)

// HasImm reports whether instructions with this op carry an immediate.
func (op Op) HasImm() bool {
	switch op {
	case Ldi, AddI, SubI, MulI, AndI, OrI, XorI, ShlI, ShrI, CmpI,
		Ldb, Stb, Ldw, Stw,
		Jmp, Jz, Jnz, Je, Jne, Jl, Jle, Jg, Jge,
		Call, CallI, AddSp:
		return true
	}
	return false
}

// IsBranch reports whether the op transfers control within the function.
func (op Op) IsBranch() bool {
	switch op {
	case Jmp, Jz, Jnz, Je, Jne, Jl, Jle, Jg, Jge:
		return true
	}
	return false
}

// IsCondBranch reports whether the op is a conditional branch.
func (op Op) IsCondBranch() bool {
	return op.IsBranch() && op != Jmp
}

// IsCall reports whether the op is a call (local or import).
func (op Op) IsCall() bool { return op == Call || op == CallI }

// IsArith reports whether the op is an integer arithmetic/logic instruction
// (the paper's "arithmetic instruction" feature family).
func (op Op) IsArith() bool {
	switch op {
	case Add, Sub, Mul, Div, Mod, AndOp, OrOp, XorOp, Shl, Shr,
		Seq, Sne, Slt, Sle, Sgt, Sge, NegOp, NotOp, Inv,
		Add2, Sub2, Mul2, Div2, Mod2, And2, Or2, Xor2, Shl2, Shr2,
		Neg2, Not2, Inv2,
		AddI, SubI, MulI, AndI, OrI, XorI, ShlI, ShrI, Cmp, CmpI,
		Sete, Setne, Setl, Setle, Setg, Setge:
		return true
	}
	return false
}

// IsArithFP reports whether the op is a floating-point arithmetic
// instruction.
func (op Op) IsArithFP() bool {
	switch op {
	case Fadd, Fsub, Fmul, Fdiv, Fadd2, Fsub2, Fmul2, Fdiv2:
		return true
	}
	return false
}

// IsLoad reports whether the op reads data memory.
func (op Op) IsLoad() bool {
	switch op {
	case Ldb, Ldw, Pop:
		return true
	}
	return false
}

// IsStore reports whether the op writes data memory.
func (op Op) IsStore() bool {
	switch op {
	case Stb, Stw, Push:
		return true
	}
	return false
}

// Terminates reports whether control never falls through this op to the
// next instruction.
func (op Op) Terminates() bool { return op == Jmp || op == Ret }

// Instr is one decoded (or not-yet-encoded) instruction.
//
// Branch instructions interpret Imm as a byte offset from the start of the
// function. Before linking, Call's Imm is the callee's function index within
// the object; the linker rewrites it to the callee's absolute address.
// CallI's Imm is an import-table index.
type Instr struct {
	Op       Op
	Rd       Reg
	Rs1, Rs2 Reg
	Imm      int64
}

func (in Instr) String() string {
	switch {
	case in.Op == Ret || in.Op == Nop:
		return in.Op.String()
	case in.Op == Push:
		return fmt.Sprintf("push r%d", in.Rs1)
	case in.Op == Pop:
		return fmt.Sprintf("pop r%d", in.Rd)
	case in.Op.IsBranch() || in.Op.IsCall() || in.Op == AddSp:
		if in.Op == Jz || in.Op == Jnz {
			return fmt.Sprintf("%s r%d, %d", in.Op, in.Rs1, in.Imm)
		}
		return fmt.Sprintf("%s %d", in.Op, in.Imm)
	case in.Op == Ldb || in.Op == Ldw:
		return fmt.Sprintf("%s r%d, [r%d%+d]", in.Op, in.Rd, in.Rs1, in.Imm)
	case in.Op == Stb || in.Op == Stw:
		return fmt.Sprintf("%s [r%d%+d], r%d", in.Op, in.Rs1, in.Imm, in.Rs2)
	case in.Op >= Sete && in.Op <= Setge:
		return fmt.Sprintf("%s r%d", in.Op, in.Rd)
	case in.Op == Cmp:
		return fmt.Sprintf("cmp r%d, r%d", in.Rs1, in.Rs2)
	case in.Op == CmpI:
		return fmt.Sprintf("cmpi r%d, %d", in.Rs1, in.Imm)
	case in.Op.HasImm():
		return fmt.Sprintf("%s r%d, %d", in.Op, in.Rd, in.Imm)
	case in.Op == Mov || (in.Op >= NegOp && in.Op <= Inv):
		return fmt.Sprintf("%s r%d, r%d", in.Op, in.Rd, in.Rs1)
	case in.Op >= Add2 && in.Op <= Inv2:
		return fmt.Sprintf("%s r%d, r%d", in.Op, in.Rd, in.Rs1)
	default:
		return fmt.Sprintf("%s r%d, r%d, r%d", in.Op, in.Rd, in.Rs1, in.Rs2)
	}
}
