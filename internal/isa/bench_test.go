package isa

import (
	"math/rand"
	"testing"
)

func benchInstrs(n int) []Instr {
	rng := rand.New(rand.NewSource(9))
	out := make([]Instr, 0, n)
	for i := 0; i < n; i++ {
		in := randInstr(rng, AMD64)
		if in.Op.IsBranch() {
			in = Instr{Op: Nop}
		}
		out = append(out, in)
	}
	return out
}

func BenchmarkEncode(b *testing.B) {
	for _, arch := range All() {
		arch := arch
		b.Run(arch.Name, func(b *testing.B) {
			instrs := benchInstrs(256)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := arch.Encode(instrs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDecode(b *testing.B) {
	for _, arch := range All() {
		arch := arch
		b.Run(arch.Name, func(b *testing.B) {
			instrs := benchInstrs(256)
			enc, _, err := arch.Encode(instrs)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(enc)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := arch.DecodeAll(enc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
