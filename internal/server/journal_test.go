package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/obs"
)

func testSub(tenant string) *Submission {
	return &Submission{Tenant: tenant, Device: "dev", Arch: "amd64", Images: [][]byte{[]byte("x")}}
}

// TestJournalRecoversLiveJobs pins the replay contract: submitted-without-
// terminal jobs come back in admission order, terminated ones do not.
func TestJournalRecoversLiveJobs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, pending, _, err := openJournal(path, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 0 {
		t.Fatalf("fresh journal replayed %d jobs", len(pending))
	}
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(j.append(recSubmitted, "job-1", testSub("a")))
	must(j.append(recStarted, "job-1", nil))
	must(j.append(recSubmitted, "job-2", testSub("b")))
	must(j.append(recDone, "job-1", nil))
	must(j.append(recSubmitted, "job-3", testSub("c")))
	must(j.append(recStarted, "job-3", nil))
	must(j.append(recSubmitted, "job-4", testSub("d")))
	must(j.append(recCancelled, "job-4", nil))
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	_, pending, _, err = openJournal(path, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for _, rec := range pending {
		ids = append(ids, rec.Job)
	}
	if len(ids) != 2 || ids[0] != "job-2" || ids[1] != "job-3" {
		t.Fatalf("replayed %v, want [job-2 job-3]", ids)
	}
	for _, rec := range pending {
		if rec.Sub == nil || rec.Sub.Tenant == "" {
			t.Fatalf("replayed record %s lost its submission", rec.Job)
		}
	}
}

// TestJournalCorruptTail pins crash tolerance: a torn final line (the crash
// interrupted an append) is truncated away, costing only the un-acked
// record, and the journal keeps appending afterwards.
func TestJournalCorruptTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, _, _, err := openJournal(path, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.append(recSubmitted, "job-1", testSub("a")); err != nil {
		t.Fatal(err)
	}
	if err := j.append(recSubmitted, "job-2", testSub("b")); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Simulate the torn write: a half-record with no newline.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"kind":"submitted","seq":3,"job":"job-3","sub":{"ten`)
	f.Close()

	j2, pending, _, err := openJournal(path, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 2 {
		t.Fatalf("replayed %d jobs after torn tail, want 2", len(pending))
	}
	// The truncated journal must keep working — and the next append must not
	// collide with a seq from the lost tail.
	if err := j2.append(recDone, "job-1", nil); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	_, pending, _, err = openJournal(path, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 1 || pending[0].Job != "job-2" {
		t.Fatalf("post-repair replay = %v, want [job-2]", pending)
	}
}

// TestJournalCorruptMiddle: garbage before good records stops replay at the
// last trustworthy prefix rather than guessing past it.
func TestJournalCorruptMiddle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	good, _ := json.Marshal(record{Kind: recSubmitted, Seq: 1, Job: "job-1", Sub: testSub("a")})
	content := append(good, '\n')
	content = append(content, []byte("NOT JSON AT ALL\n")...)
	tail, _ := json.Marshal(record{Kind: recSubmitted, Seq: 3, Job: "job-3", Sub: testSub("c")})
	content = append(content, tail...)
	content = append(content, '\n')
	if err := os.WriteFile(path, content, 0o644); err != nil {
		t.Fatal(err)
	}
	_, pending, _, err := openJournal(path, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 1 || pending[0].Job != "job-1" {
		t.Fatalf("replay past corruption: %v, want only job-1", pending)
	}
}

// TestJournalCompaction: outgrowing the byte budget rewrites the file down
// to the live submission records, atomically, without losing any live job.
func TestJournalCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, _, _, err := openJournal(path, 512, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Churn far past the budget: every job terminates except the last two.
	for i := 0; i < 40; i++ {
		id := fmt.Sprintf("job-%03d", i)
		j.append(recSubmitted, id, testSub("t"))
		j.append(recDone, id, nil)
	}
	j.append(recSubmitted, "job-live-1", testSub("t"))
	j.append(recSubmitted, "job-live-2", testSub("t"))
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() > 2048 {
		t.Fatalf("journal never compacted: %d bytes on disk", info.Size())
	}
	j.Close()
	_, pending, _, err := openJournal(path, 512, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 2 || pending[0].Job != "job-live-1" || pending[1].Job != "job-live-2" {
		t.Fatalf("post-compaction replay = %v, want the two live jobs in order", pending)
	}
}

// TestJournalTerminalRetention pins the finished-job replay contract at the
// journal layer: terminal records come back in termination order with their
// outcome fields intact, retention is bounded by journalTerminalKeep (oldest
// evicted first), and compaction keeps live submissions at the expense of
// the oldest finished reports — never the other way around.
func TestJournalTerminalRetention(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, _, _, err := openJournal(path, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Finish more jobs than the retention bound.
	total := journalTerminalKeep + 10
	for i := 0; i < total; i++ {
		id := fmt.Sprintf("job-%03d", i)
		j.append(recSubmitted, id, testSub("t"))
		j.appendRecord(&record{Kind: recDone, Job: id, Tenant: "t", Attempts: i + 1})
	}
	j.Close()

	_, pending, finished, err := openJournal(path, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 0 {
		t.Fatalf("finished jobs replayed as pending: %d", len(pending))
	}
	if len(finished) != journalTerminalKeep {
		t.Fatalf("retained %d terminal records, want %d", len(finished), journalTerminalKeep)
	}
	// The survivors are the newest, in termination order, outcomes intact.
	for i, rec := range finished {
		wantIdx := total - journalTerminalKeep + i
		if want := fmt.Sprintf("job-%03d", wantIdx); rec.Job != want {
			t.Fatalf("finished[%d] = %s, want %s (newest kept, oldest evicted)", i, rec.Job, want)
		}
		if rec.Kind != recDone || rec.Tenant != "t" || rec.Attempts != wantIdx+1 {
			t.Errorf("finished[%d] lost outcome fields: %+v", i, rec)
		}
	}

	// A tiny byte budget: compaction must shed finished records to fit, but
	// every live submission survives.
	tight, _, _, err := openJournal(filepath.Join(t.TempDir(), "tight.jsonl"), 512, nil)
	if err != nil {
		t.Fatal(err)
	}
	tight.append(recSubmitted, "job-live", testSub("t"))
	for i := 0; i < 40; i++ {
		id := fmt.Sprintf("churn-%03d", i)
		tight.append(recSubmitted, id, testSub("t"))
		tight.appendRecord(&record{Kind: recDone, Job: id, Tenant: "t"})
	}
	tight.Close()
	_, pending, finished, err = openJournal(tight.path, 512, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 1 || pending[0].Job != "job-live" {
		t.Fatalf("live job lost to terminal churn: pending = %v", pending)
	}
	if len(finished) == 0 {
		t.Error("compaction dropped every terminal record despite spare budget")
	}
	for i := 1; i < len(finished); i++ {
		if finished[i-1].Seq >= finished[i].Seq {
			t.Errorf("finished records out of seq order: %d >= %d", finished[i-1].Seq, finished[i].Seq)
		}
	}
}

// TestJournalAppendFault: an armed journal fault degrades crash-safety —
// counted, reported to the caller — but never corrupts the file for later
// appends.
func TestJournalAppendFault(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	sink := obs.New()
	j, _, _, err := openJournal(path, 0, sink)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.append(recSubmitted, "job-1", testSub("a")); err != nil {
		t.Fatal(err)
	}
	disarm := faultinject.Arm(faultinject.JournalFail, string(recSubmitted), errors.New("disk on fire"))
	if err := j.append(recSubmitted, "job-2", testSub("b")); err == nil {
		t.Fatal("armed journal fault did not surface")
	}
	disarm()
	if err := j.append(recSubmitted, "job-3", testSub("c")); err != nil {
		t.Fatalf("append after fault: %v", err)
	}
	if got := sink.Get(obs.CtrJournalErrors); got != 1 {
		t.Errorf("journal_errors = %d, want 1", got)
	}
	if got := sink.Get(obs.CtrJournalOK); got != 2 {
		t.Errorf("journal_appends = %d, want 2", got)
	}
}
