// Package server is the resident scan service: a long-lived HTTP/JSON
// front-end over the patchecko engine with the robustness machinery a
// fleet-facing scanner needs and a one-shot CLI does not:
//
//   - admission control — a bounded job queue with typed 429/503
//     rejections and per-tenant in-flight caps, so overload sheds at the
//     door instead of OOMing the process;
//   - retry with exponential backoff + jitter, driven by the engine's
//     ScanError taxonomy: deterministic failures (decode, prepare,
//     reference, trap) are terminal, environmental ones (panic,
//     cancellation, internal) are retried within a budget;
//   - graceful degradation — under queue pressure or deadline pressure a
//     job is shed to the static-only pipeline and its Report is explicitly
//     marked Degraded, never silently truncated;
//   - a crash-safe job journal (see journal.go): acked submissions survive
//     a process kill and resume on the next start, producing byte-identical
//     Reports;
//   - per-job deadlines and cancellation, plus /healthz, /readyz and
//     /metrics backed by internal/obs.
//
// Everything that can vary under the policies above — shedding, retrying,
// resuming, cache sharing — is warmth and wall-clock only: a job's Report
// is byte-identical to the same scan run by the CLI, and the golden-report
// suite pins that.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"repro/internal/binimg"
	"repro/internal/cas"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/patchecko"
)

// Submission is the body of POST /scan: one firmware image set to scan.
// Images are raw binimg bytes (base64 in JSON, per encoding/json). The
// journal persists submissions verbatim, so a resumed job re-runs exactly
// what was acked.
type Submission struct {
	Tenant string `json:"tenant,omitempty"`
	Device string `json:"device"`
	Arch   string `json:"arch"`
	// Images are the stripped library images, in an order the caller must
	// keep stable: the engine's deterministic reduction tie-breaks on image
	// order, so byte-identical Reports require byte-identical image order.
	Images [][]byte `json:"images"`
	// DeadlineMS bounds this job's wall-clock (0 = server default).
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// StaticOnly requests the degraded static-only pipeline up front.
	StaticOnly bool `json:"static_only,omitempty"`
}

// firmware decodes the submission into the engine's scan input.
func (sub *Submission) firmware() (*patchecko.Firmware, error) {
	fw := &patchecko.Firmware{Device: sub.Device, Arch: sub.Arch}
	for i, raw := range sub.Images {
		im, err := binimg.Decode(raw)
		if err != nil {
			return nil, fmt.Errorf("image %d: %w", i, err)
		}
		fw.Images = append(fw.Images, im)
	}
	return fw, nil
}

// Config configures a Server. Model and DB are required; the zero value of
// everything else selects a sane default (see Validate for the bounds).
type Config struct {
	Model *patchecko.Model
	DB    *patchecko.DB

	// QueueDepth bounds the admission queue (default 64). A submission
	// arriving at a full queue is rejected with a typed queue_full error.
	QueueDepth int
	// Workers is the job worker pool size: > 0 = exactly that many, 0 = the
	// default (2), < 0 = no workers at all — jobs are admitted and
	// journaled but never run. The admit-only mode is how the restart tests
	// (and an operator draining a bad node) capture work for a later
	// process life.
	Workers int
	// ScanWorkers is the engine parallelism within one job (Analyzer.Workers).
	ScanWorkers int
	// PerTenant caps one tenant's in-flight (queued + running) jobs;
	// 0 = no cap.
	PerTenant int

	// RetryBudget is the number of re-attempts allowed per job beyond the
	// first (0 = no retries). Only retryable ScanErrors — panic,
	// cancellation, internal — consume it; deterministic failures never do.
	RetryBudget int
	// RetryBase is the first backoff delay; each retry doubles it up to
	// RetryMax, with ±50% jitter. Required > 0 when RetryBudget > 0.
	RetryBase time.Duration
	RetryMax  time.Duration

	// JobDeadline bounds each job's wall-clock (0 = none). A submission's
	// own deadline_ms tightens but never loosens it.
	JobDeadline time.Duration
	// ShedThreshold in (0, 1] degrades jobs dequeued while the queue is at
	// or above this fraction of QueueDepth to the static-only pipeline;
	// 0 disables shedding.
	ShedThreshold float64

	// RefCacheSize bounds the process-wide shared reference cache in
	// entries (0 = default 256).
	RefCacheSize int

	// Embedder, when non-nil, routes every job's static stage through the
	// embedding-index retrieval path (top-K nomination + exact rescoring);
	// nil keeps the exact scan. TopK is the nomination budget per query
	// (<= 0 = the engine default).
	Embedder *patchecko.Embedder
	TopK     int

	// NoPrefilter disables the component-identification prefilter, scanning
	// every job's full (image, CVE, mode) grid. Served Reports are
	// byte-identical either way; the flag exists as the operator's escape
	// hatch.
	NoPrefilter bool

	// JournalPath enables the crash-safe job journal ("" = in-memory only:
	// no crash safety, no resume). JournalMax is its compaction threshold
	// in bytes (0 = default).
	JournalPath string
	JournalMax  int64

	// Store is the optional persistent static-score store shared by all
	// jobs. Obs is the process-level sink ( nil = a private one); each job
	// additionally runs against its own traced sink, merged in at
	// termination.
	Store *cas.Store
	Obs   *obs.Metrics

	// TraceCap bounds each job's event ring (0 = obs.DefaultTraceCap).
	TraceCap int

	// gate, when non-nil, makes every worker consume one token from it
	// between dequeuing a job and running it. In-package tests use it to pin
	// queue occupancy deterministically (fill the queue while a worker
	// holds); production configs leave it nil.
	gate chan struct{}
}

// Validate checks the configuration bounds, returning a clear error naming
// the offending knob — these surface verbatim as patcheckod flag errors.
func (c *Config) Validate() error {
	switch {
	case c.Model == nil:
		return fmt.Errorf("server: config: Model is required")
	case c.DB == nil:
		return fmt.Errorf("server: config: DB is required")
	case c.QueueDepth < 0:
		return fmt.Errorf("server: config: queue depth must be >= 0 (0 = default), got %d", c.QueueDepth)
	case c.ScanWorkers < 0:
		return fmt.Errorf("server: config: scan workers must be >= 0 (0 = default), got %d", c.ScanWorkers)
	case c.PerTenant < 0:
		return fmt.Errorf("server: config: per-tenant cap must be >= 0 (0 = unlimited), got %d", c.PerTenant)
	case c.RetryBudget < 0:
		return fmt.Errorf("server: config: retry budget must be >= 0, got %d", c.RetryBudget)
	case c.RetryBudget > 0 && c.RetryBase <= 0:
		return fmt.Errorf("server: config: retry base delay must be > 0 when the retry budget is, got %v", c.RetryBase)
	case c.RetryMax < 0:
		return fmt.Errorf("server: config: retry max delay must be >= 0, got %v", c.RetryMax)
	case c.JobDeadline < 0:
		return fmt.Errorf("server: config: job deadline must be >= 0 (0 = none), got %v", c.JobDeadline)
	case c.ShedThreshold < 0 || c.ShedThreshold > 1:
		return fmt.Errorf("server: config: shed threshold must be in [0, 1], got %v", c.ShedThreshold)
	case c.RefCacheSize < 0:
		return fmt.Errorf("server: config: ref cache size must be >= 0 (0 = default), got %d", c.RefCacheSize)
	case c.JournalMax < 0:
		return fmt.Errorf("server: config: journal max bytes must be >= 0 (0 = default), got %d", c.JournalMax)
	}
	return nil
}

// Defaults for the zero Config values.
const (
	defaultQueueDepth   = 64
	defaultWorkers      = 2
	defaultRefCacheSize = 256
)

// Job states.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// job is one admitted submission's full lifecycle.
type job struct {
	id     string
	tenant string
	sub    *Submission
	sink   *obs.Metrics // per-job traced sink; merged into the server sink at termination

	cancel       context.CancelFunc
	done         chan struct{}
	clientCancel bool // cancelled by DELETE (vs. shutdown or deadline)

	// Guarded by Server.mu.
	state    string
	attempts int
	shed     bool // degraded by the server (queue or deadline pressure)
	resumed  bool // re-enqueued from the journal after a restart
	report   *patchecko.Report
	errKind  string
	errMsg   string
}

// Server is the resident scan service. Build one with New, mount Handler on
// an http.Server, and Close it to shut down.
type Server struct {
	cfg     Config
	cache   *patchecko.RefCache
	journal *Journal
	obs     *obs.Metrics

	queue chan *job
	quit  chan struct{}
	wg    sync.WaitGroup
	// gate, when non-nil, blocks each worker between dequeuing a job (and
	// deciding shed from the queue level) and running it — one receive per
	// job. Tests use it to pin queue occupancy deterministically.
	gate chan struct{}

	mu       sync.Mutex
	draining bool
	jobs     map[string]*job
	tenants  map[string]int
	nextID   uint64
}

// New builds the server, replays the journal, re-enqueues the jobs a
// previous process life left unfinished, and starts the worker pool.
func New(cfg Config) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = defaultQueueDepth
	}
	if cfg.RefCacheSize == 0 {
		cfg.RefCacheSize = defaultRefCacheSize
	}
	if cfg.Obs == nil {
		cfg.Obs = obs.New()
	}
	s := &Server{
		cfg:     cfg,
		cache:   patchecko.NewRefCache(cfg.RefCacheSize),
		obs:     cfg.Obs,
		quit:    make(chan struct{}),
		gate:    cfg.gate,
		jobs:    make(map[string]*job),
		tenants: make(map[string]int),
	}

	var pending, finished []*record
	if cfg.JournalPath != "" {
		j, recs, done, err := openJournal(cfg.JournalPath, cfg.JournalMax, s.obs)
		if err != nil {
			return nil, err
		}
		s.journal = j
		s.nextID = j.seq
		pending = recs
		finished = done
	}

	// Materialize the previous life's finished jobs from their terminal
	// records: their states and reports are served exactly as if this process
	// had run them — GET /jobs/{id}/report survives a restart. They hold no
	// tenant slot and never enter the queue; only their trace events are lost
	// with the old process.
	for _, rec := range finished {
		j := &job{
			id:       rec.Job,
			tenant:   rec.Tenant,
			sub:      &Submission{Tenant: rec.Tenant},
			sink:     obs.NewTraced(cfg.TraceCap),
			done:     make(chan struct{}),
			state:    stateOfKind(rec.Kind),
			attempts: rec.Attempts,
			shed:     rec.Shed,
			report:   rec.Report,
			errKind:  rec.ErrKind,
			errMsg:   rec.ErrMsg,
		}
		close(j.done)
		s.jobs[j.id] = j
	}

	// The queue is sized for the admission bound, stretched if the journal
	// replayed more live jobs than the bound (a previous life's running
	// jobs resume on top of its queue). Admission still rejects at
	// QueueDepth, so the steady-state bound holds.
	depth := cfg.QueueDepth
	if len(pending) > depth {
		depth = len(pending)
	}
	s.queue = make(chan *job, depth)

	for _, rec := range pending {
		j := s.newJobLocked(rec.Job, rec.Sub)
		j.resumed = true
		s.jobs[j.id] = j
		s.tenants[j.tenant]++
		s.queue <- j
		s.obs.Add(obs.CtrJobsResumed, 1)
		j.sink.Emit(obs.Event{Kind: obs.EvJobResumed, Job: j.id, Tenant: j.tenant})
	}

	workers := cfg.Workers
	if workers == 0 {
		workers = defaultWorkers
	}
	for i := 0; i < workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// stateOfKind maps a terminal journal record kind to its job state.
func stateOfKind(k recordKind) string {
	switch k {
	case recDone:
		return StateDone
	case recCancelled:
		return StateCancelled
	default:
		return StateFailed
	}
}

// newJobLocked builds a job shell in the queued state. id == "" mints a
// fresh one (unique across process lives: the counter is seeded past the
// journal's high seq, and every admission advances the journal).
func (s *Server) newJobLocked(id string, sub *Submission) *job {
	if id == "" {
		s.nextID++
		id = fmt.Sprintf("job-%08d", s.nextID)
	}
	return &job{
		id:     id,
		tenant: sub.Tenant,
		sub:    sub,
		sink:   obs.NewTraced(s.cfg.TraceCap),
		done:   make(chan struct{}),
		state:  StateQueued,
	}
}

// Close stops admission, cancels running jobs and waits for the workers.
// Jobs interrupted here are NOT journaled terminal, so a journaled server
// resumes them on the next New — Close is the clean half of a crash.
func (s *Server) Close() error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	var cancels []context.CancelFunc
	for _, j := range s.jobs {
		if j.state == StateRunning && j.cancel != nil {
			cancels = append(cancels, j.cancel)
		}
	}
	s.mu.Unlock()
	if already {
		return nil
	}
	close(s.quit)
	for _, c := range cancels {
		c()
	}
	s.wg.Wait()
	return s.journal.Close()
}

// APIError is the typed rejection envelope every non-2xx response carries:
// {"error":{"kind":...,"msg":...,"retry_after_ms":...}}.
type APIError struct {
	Kind         string `json:"kind"`
	Msg          string `json:"msg"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
}

func writeErr(w http.ResponseWriter, status int, e APIError) {
	w.Header().Set("Content-Type", "application/json")
	if e.RetryAfterMS > 0 {
		w.Header().Set("Retry-After", fmt.Sprintf("%d", (e.RetryAfterMS+999)/1000))
	}
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]APIError{"error": e})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// maxSubmissionBytes bounds a POST /scan body.
const maxSubmissionBytes = 256 << 20

// Handler returns the service's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /scan", s.handleSubmit)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/report", s.handleReport)
	mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// Submit admits one submission, journals it, and enqueues it, returning the
// job id. It is the transport-free core of POST /scan — tests and embedded
// callers use it directly. The returned *APIError, when non-nil, is the
// typed rejection (its HTTP status is the second return).
func (s *Server) Submit(sub *Submission) (string, int, *APIError) {
	if len(sub.Images) == 0 {
		return "", http.StatusBadRequest, &APIError{Kind: "bad_request", Msg: "submission has no images"}
	}
	if sub.Arch == "" {
		return "", http.StatusBadRequest, &APIError{Kind: "bad_request", Msg: "submission has no arch"}
	}
	if _, err := sub.firmware(); err != nil {
		return "", http.StatusBadRequest, &APIError{Kind: "bad_image", Msg: err.Error()}
	}
	if err := faultinject.Fire(faultinject.AdmitFail, sub.Tenant); err != nil {
		s.obs.Add(obs.CtrJobsRejected, 1)
		return "", http.StatusServiceUnavailable, &APIError{Kind: "admission_fault", Msg: err.Error(), RetryAfterMS: 1000}
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.obs.Add(obs.CtrJobsRejected, 1)
		return "", http.StatusServiceUnavailable, &APIError{Kind: "draining", Msg: "server is shutting down"}
	}
	if s.cfg.PerTenant > 0 && s.tenants[sub.Tenant] >= s.cfg.PerTenant {
		s.mu.Unlock()
		s.obs.Add(obs.CtrJobsRejected, 1)
		return "", http.StatusTooManyRequests, &APIError{
			Kind:         "tenant_busy",
			Msg:          fmt.Sprintf("tenant %q has %d jobs in flight (cap %d)", sub.Tenant, s.cfg.PerTenant, s.cfg.PerTenant),
			RetryAfterMS: 1000,
		}
	}
	if len(s.queue) >= s.cfg.QueueDepth {
		s.mu.Unlock()
		s.obs.Add(obs.CtrJobsRejected, 1)
		return "", http.StatusTooManyRequests, &APIError{
			Kind:         "queue_full",
			Msg:          fmt.Sprintf("admission queue is full (%d jobs)", s.cfg.QueueDepth),
			RetryAfterMS: 2000,
		}
	}
	j := s.newJobLocked("", sub)
	s.jobs[j.id] = j
	s.tenants[j.tenant]++
	// Journal BEFORE acking: an append failure degrades crash-safety (it is
	// counted, and the job runs anyway) but a crash between ack and append
	// must never lose an acked job.
	s.journal.append(recSubmitted, j.id, sub)
	s.queue <- j
	s.mu.Unlock()

	s.obs.Add(obs.CtrJobsAdmitted, 1)
	j.sink.Emit(obs.Event{Kind: obs.EvJobQueued, Job: j.id, Tenant: j.tenant})
	return j.id, http.StatusAccepted, nil
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var sub Submission
	body := http.MaxBytesReader(w, r.Body, maxSubmissionBytes)
	if err := json.NewDecoder(body).Decode(&sub); err != nil {
		writeErr(w, http.StatusBadRequest, APIError{Kind: "bad_request", Msg: "malformed submission: " + err.Error()})
		return
	}
	id, status, apiErr := s.Submit(&sub)
	if apiErr != nil {
		writeErr(w, status, *apiErr)
		return
	}
	writeJSON(w, status, map[string]string{"job": id, "state": StateQueued})
}

// jobStatus is the GET /jobs/{id} view.
type JobStatus struct {
	Job      string    `json:"job"`
	Tenant   string    `json:"tenant,omitempty"`
	State    string    `json:"state"`
	Attempts int       `json:"attempts"`
	Shed     bool      `json:"shed,omitempty"`
	Resumed  bool      `json:"resumed,omitempty"`
	Degraded bool      `json:"degraded,omitempty"`
	Error    *APIError `json:"error,omitempty"`
}

func (s *Server) lookup(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

func (s *Server) statusOf(j *job) JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := JobStatus{
		Job:      j.id,
		Tenant:   j.tenant,
		State:    j.state,
		Attempts: j.attempts,
		Shed:     j.shed,
		Resumed:  j.resumed,
		Degraded: j.report != nil && j.report.Degraded,
	}
	if j.errMsg != "" {
		st.Error = &APIError{Kind: j.errKind, Msg: j.errMsg}
	}
	return st
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeErr(w, http.StatusNotFound, APIError{Kind: "not_found", Msg: "no such job"})
		return
	}
	writeJSON(w, http.StatusOK, s.statusOf(j))
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeErr(w, http.StatusNotFound, APIError{Kind: "not_found", Msg: "no such job"})
		return
	}
	s.mu.Lock()
	state, report := j.state, j.report
	s.mu.Unlock()
	if report == nil {
		switch state {
		case StateQueued, StateRunning:
			writeErr(w, http.StatusConflict, APIError{Kind: "not_ready", Msg: "job is " + state, RetryAfterMS: 500})
		default:
			writeErr(w, http.StatusGone, APIError{Kind: "no_report", Msg: "job terminated without a report"})
		}
		return
	}
	if r.URL.Query().Get("normalize") != "" {
		// Round-trip through JSON for a deep copy, then normalize the copy:
		// the stored report stays untouched for non-normalized readers.
		var err error
		if report, err = copyReport(report); err != nil {
			writeErr(w, http.StatusInternalServerError, APIError{Kind: "internal", Msg: err.Error()})
			return
		}
		report.Normalize()
	}
	// json.Marshal + '\n' is the CLI's exact output framing; the golden
	// suite compares served bytes against CLI bytes, so keep them identical.
	data, err := json.Marshal(report)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, APIError{Kind: "internal", Msg: err.Error()})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(append(data, '\n'))
}

// copyReport deep-copies a Report through its JSON form. Lossless by the
// round-trip test in the golden suite.
func copyReport(r *patchecko.Report) (*patchecko.Report, error) {
	data, err := json.Marshal(r)
	if err != nil {
		return nil, err
	}
	var out patchecko.Report
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeErr(w, http.StatusNotFound, APIError{Kind: "not_found", Msg: "no such job"})
		return
	}
	w.Header().Set("Content-Type", "application/jsonl")
	j.sink.WriteJSONL(w)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeErr(w, http.StatusNotFound, APIError{Kind: "not_found", Msg: "no such job"})
		return
	}
	s.mu.Lock()
	switch j.state {
	case StateQueued:
		// The worker that eventually dequeues it sees the terminal state
		// and skips; settle it now.
		j.clientCancel = true
		s.finishLocked(j, StateCancelled, "cancelled", "cancelled while queued")
	case StateRunning:
		j.clientCancel = true
		if j.cancel != nil {
			j.cancel()
		}
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, s.statusOf(j))
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	full := len(s.queue) >= s.cfg.QueueDepth
	s.mu.Unlock()
	switch {
	case draining:
		writeErr(w, http.StatusServiceUnavailable, APIError{Kind: "draining", Msg: "server is shutting down"})
	case full:
		writeErr(w, http.StatusServiceUnavailable, APIError{Kind: "queue_full", Msg: "admission queue is full", RetryAfterMS: 2000})
	default:
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	}
}

// metricsView is the GET /metrics body: the process-level counters (job
// sinks merge in at termination) plus live gauges.
type metricsView struct {
	Counters map[string]int64 `json:"counters"`
	Queue    struct {
		Used int `json:"used"`
		Cap  int `json:"cap"`
	} `json:"queue"`
	Jobs     map[string]int `json:"jobs"`
	RefCache struct {
		Entries int `json:"entries"`
	} `json:"ref_cache"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var v metricsView
	v.Counters = s.obs.Counters()
	v.Jobs = make(map[string]int)
	s.mu.Lock()
	v.Queue.Used = len(s.queue)
	v.Queue.Cap = s.cfg.QueueDepth
	for _, j := range s.jobs {
		v.Jobs[j.state]++
	}
	s.mu.Unlock()
	v.RefCache.Entries = s.cache.Len()
	writeJSON(w, http.StatusOK, v)
}

// Wait blocks until the job terminates (or ctx ends), returning its status.
func (s *Server) Wait(ctx context.Context, id string) (JobStatus, error) {
	j := s.lookup(id)
	if j == nil {
		return JobStatus{}, fmt.Errorf("server: no such job %s", id)
	}
	select {
	case <-j.done:
		return s.statusOf(j), nil
	case <-ctx.Done():
		return s.statusOf(j), ctx.Err()
	}
}

// Report returns a terminated job's report (nil while in flight or when the
// job died without one).
func (s *Server) Report(id string) *patchecko.Report {
	j := s.lookup(id)
	if j == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return j.report
}

// worker is the job execution loop: dequeue, decide shedding from the queue
// level, run with retry, terminate.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.quit:
			return
		case j := <-s.queue:
			s.mu.Lock()
			if j.state != StateQueued { // cancelled while queued
				s.mu.Unlock()
				continue
			}
			j.state = StateRunning
			// Load-shedding decision: made at dequeue, from the queue level
			// this job leaves behind — the backlog the full pipeline would
			// stall. ceil keeps threshold 1.0 meaning "only shed when
			// completely full".
			if s.cfg.ShedThreshold > 0 && !j.sub.StaticOnly {
				limit := int(math.Ceil(s.cfg.ShedThreshold * float64(s.cfg.QueueDepth)))
				if len(s.queue) >= limit {
					j.shed = true
				}
			}
			s.mu.Unlock()
			if s.gate != nil {
				select {
				case <-s.gate:
				case <-s.quit:
					return
				}
			}
			if j.shed {
				s.obs.Add(obs.CtrJobsShed, 1)
				j.sink.Emit(obs.Event{Kind: obs.EvJobShed, Job: j.id, Tenant: j.tenant, Reason: "queue pressure"})
			}
			s.runJob(j)
		}
	}
}

// runJob executes one job: fresh analyzer per attempt, retry on retryable
// ScanErrors with backoff and reference-cache invalidation, degrade to the
// static-only pipeline when the soft deadline eats a full-pipeline attempt.
func (s *Server) runJob(j *job) {
	fw, err := j.sub.firmware()
	if err != nil {
		// Admission validated decode, so this is journal bit-rot or an
		// embedded caller skipping Submit — terminal either way.
		s.finish(j, StateFailed, "bad_image", err.Error())
		return
	}

	deadline := s.cfg.JobDeadline
	if d := time.Duration(j.sub.DeadlineMS) * time.Millisecond; d > 0 && (deadline == 0 || d < deadline) {
		deadline = d
	}
	// Jobs are deliberately rooted here, not in the submitting request's
	// context: an acked job outlives its HTTP request, and shutdown cancels
	// running jobs explicitly through j.cancel (Close) rather than by
	// tearing down a shared parent.
	//patchecko:allow ctxflow job contexts outlive their requests; Close cancels them explicitly
	base := context.Background()
	var ctx context.Context
	var cancel context.CancelFunc
	if deadline > 0 {
		ctx, cancel = context.WithTimeout(base, deadline)
	} else {
		ctx, cancel = context.WithCancel(base)
	}
	defer cancel()
	s.mu.Lock()
	j.cancel = cancel
	s.mu.Unlock()

	degraded := j.shed || j.sub.StaticOnly
	for {
		s.mu.Lock()
		j.attempts++
		attempt := j.attempts
		s.mu.Unlock()
		s.journal.append(recStarted, j.id, nil)
		j.sink.Emit(obs.Event{Kind: obs.EvJobStarted, Job: j.id, Tenant: j.tenant, Attempt: attempt})

		an := patchecko.NewAnalyzer(s.cfg.Model, s.cfg.DB)
		an.Workers = s.cfg.ScanWorkers
		an.SharedCache = s.cache
		an.Store = s.cfg.Store
		an.Obs = j.sink
		an.StaticOnly = degraded
		an.Embedder = s.cfg.Embedder
		an.TopK = s.cfg.TopK
		an.Prefilter = !s.cfg.NoPrefilter

		// Full-pipeline attempts under a deadline get a soft budget of 3/4
		// of the remaining wall-clock: if the scan blows it while the job
		// deadline is still alive, the leftover quarter runs the static-only
		// fallback — an explicit degraded Report instead of nothing.
		attemptCtx, attemptCancel := ctx, context.CancelFunc(func() {})
		if !degraded {
			if dl, ok := ctx.Deadline(); ok {
				soft := time.Now().Add(time.Until(dl) * 3 / 4)
				attemptCtx, attemptCancel = context.WithDeadline(ctx, soft)
			}
		}
		report, scanErr := an.ScanFirmware(attemptCtx, fw)
		attemptCancel()

		if scanErr != nil {
			switch {
			case ctx.Err() == nil && !degraded && !s.cancelled(j):
				// Only the soft deadline expired: shed and use what's left.
				degraded = true
				s.mu.Lock()
				j.shed = true
				s.mu.Unlock()
				s.obs.Add(obs.CtrJobsShed, 1)
				j.sink.Emit(obs.Event{Kind: obs.EvJobShed, Job: j.id, Tenant: j.tenant, Attempt: attempt, Reason: "deadline pressure"})
				continue
			case s.cancelled(j):
				s.finish(j, StateCancelled, "cancelled", "cancelled by client")
			case s.closing():
				// Shutdown: terminate in memory but do NOT journal, so a
				// journaled server resumes this job on the next start.
				s.finish(j, StateCancelled, "shutdown", "server shut down mid-job")
			case ctx.Err() != nil:
				s.finish(j, StateFailed, "deadline", "job deadline exceeded")
			default:
				s.finish(j, StateFailed, "scan_error", scanErr.Error())
			}
			return
		}

		retryable := retryableErrors(report)
		if len(retryable) == 0 || attempt > s.cfg.RetryBudget {
			s.mu.Lock()
			j.report = report
			s.mu.Unlock()
			s.finish(j, StateDone, "", "")
			return
		}
		// Transient failures are memoized in the shared reference cache;
		// evict the implicated CVEs so the retry actually re-runs them.
		for _, se := range retryable {
			if se.CVE != "" {
				s.cache.InvalidateCVE(se.CVE)
			}
		}
		s.obs.Add(obs.CtrJobsRetried, 1)
		j.sink.Emit(obs.Event{
			Kind: obs.EvJobRetried, Job: j.id, Tenant: j.tenant, Attempt: attempt,
			Reason: fmt.Sprintf("%d retryable scan errors", len(retryable)),
		})
		if !s.backoff(ctx, attempt) {
			switch {
			case s.cancelled(j):
				s.finish(j, StateCancelled, "cancelled", "cancelled by client")
			case s.closing():
				s.finish(j, StateCancelled, "shutdown", "server shut down mid-job")
			default:
				s.finish(j, StateFailed, "deadline", "job deadline exceeded during backoff")
			}
			return
		}
	}
}

// retryableErrors filters the report's isolated failures down to the kinds
// the taxonomy marks environmental (panic, cancellation, internal).
func retryableErrors(r *patchecko.Report) []patchecko.ScanError {
	var out []patchecko.ScanError
	for _, se := range r.Errors {
		if se.Retryable() {
			out = append(out, se)
		}
	}
	return out
}

// backoff sleeps the exponential-with-jitter retry delay for the given
// attempt number, returning false if the job context or the server quit
// first.
func (s *Server) backoff(ctx context.Context, attempt int) bool {
	d := s.cfg.RetryBase
	for i := 1; i < attempt && d < s.cfg.RetryMax; i++ {
		d *= 2
	}
	if s.cfg.RetryMax > 0 && d > s.cfg.RetryMax {
		d = s.cfg.RetryMax
	}
	if d <= 0 {
		return ctx.Err() == nil
	}
	// ±50% jitter de-synchronizes retry herds; it only moves wall-clock,
	// never results, so the unseeded source is fine.
	d = d/2 + time.Duration(rand.Int63n(int64(d)))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	case <-s.quit:
		return false
	}
}

// cancelled reports whether the client asked for this job's cancellation.
func (s *Server) cancelled(j *job) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return j.clientCancel
}

func (s *Server) closing() bool {
	select {
	case <-s.quit:
		return true
	default:
		return false
	}
}

// finish settles a job into a terminal state exactly once: journal the
// terminal record (except on shutdown, so the job resumes), release the
// tenant slot, count, emit, merge the job sink into the process sink, and
// wake waiters.
func (s *Server) finish(j *job, state, errKind, errMsg string) {
	s.mu.Lock()
	s.finishLocked(j, state, errKind, errMsg)
	s.mu.Unlock()
}

func (s *Server) finishLocked(j *job, state, errKind, errMsg string) {
	if j.state == StateDone || j.state == StateFailed || j.state == StateCancelled {
		return
	}
	j.state = state
	j.errKind, j.errMsg = errKind, errMsg
	s.tenants[j.tenant]--
	if s.tenants[j.tenant] <= 0 {
		delete(s.tenants, j.tenant)
	}
	// Terminal records carry the job's outcome — including the full report —
	// so the journal alone can answer status and report requests in the next
	// process life.
	rec := &record{
		Job:      j.id,
		Tenant:   j.tenant,
		Attempts: j.attempts,
		Shed:     j.shed,
		Report:   j.report,
		ErrKind:  errKind,
		ErrMsg:   errMsg,
	}
	switch state {
	case StateDone:
		s.obs.Add(obs.CtrJobsCompleted, 1)
		rec.Kind = recDone
		s.journal.appendRecord(rec)
	case StateCancelled:
		s.obs.Add(obs.CtrJobsCancelled, 1)
		if errKind != "shutdown" {
			rec.Kind = recCancelled
			s.journal.appendRecord(rec)
		}
	default:
		s.obs.Add(obs.CtrJobsFailed, 1)
		rec.Kind = recFailed
		s.journal.appendRecord(rec)
	}
	j.sink.Emit(obs.Event{Kind: obs.EvJobDone, Job: j.id, Tenant: j.tenant, Attempt: j.attempts, State: state, Reason: errMsg})
	s.obs.Merge(j.sink)
	close(j.done)
}
