package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/binimg"
	"repro/internal/cas"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/patchecko"
)

// The server test fixture is the golden seed-42 / ScaleTiny pipeline: the
// same model, DB and ThingOS firmware the patchecko golden suite pins, so
// "the served report matches the committed golden bytes" is a meaningful
// cross-package assertion, not a self-comparison.
var (
	fixOnce  sync.Once
	fixModel *patchecko.Model
	fixDB    *patchecko.DB
	fixFw    *patchecko.Firmware
	fixErr   error
)

func fixtures(t *testing.T) (*patchecko.Model, *patchecko.DB, *patchecko.Firmware) {
	t.Helper()
	fixOnce.Do(func() {
		groups, err := patchecko.TrainingCorpus(patchecko.ScaleTiny, 42)
		if err != nil {
			fixErr = err
			return
		}
		cfg := patchecko.DefaultTrainConfig()
		cfg.Seed = 42
		cfg.Epochs = patchecko.ScaleTiny.Epochs
		cfg.MaxPosPerFunc = patchecko.ScaleTiny.MaxPosPerFunc
		fixModel, _, _, fixErr = patchecko.TrainDetector(groups, cfg)
		if fixErr != nil {
			return
		}
		fixDB, fixErr = patchecko.BuildVulnDB(patchecko.ScaleTiny, 42)
		if fixErr != nil {
			return
		}
		fixFw, fixErr = patchecko.BuildFirmware(patchecko.ThingOS, patchecko.ScaleTiny)
	})
	if fixErr != nil {
		t.Fatal(fixErr)
	}
	return fixModel, fixDB, fixFw
}

// goldenSubmission encodes the fixture firmware as a wire submission,
// preserving the engine's canonical image order.
func goldenSubmission(t *testing.T) *Submission {
	t.Helper()
	_, _, fw := fixtures(t)
	sub := &Submission{Device: fw.Device, Arch: fw.Arch}
	for _, im := range fw.Images {
		sub.Images = append(sub.Images, binimg.Encode(im))
	}
	return sub
}

// goldenBytes loads the committed golden report — the normalized seed-42
// scan bytes the patchecko golden suite maintains.
func goldenBytes(t *testing.T) []byte {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join("..", "..", "patchecko", "testdata", "golden_report_seed42.json"))
	if err != nil {
		t.Fatalf("missing committed golden report: %v", err)
	}
	return raw
}

// baseConfig is a fully-specified small config for the fixture pipeline.
func baseConfig(t *testing.T) Config {
	model, db, _ := fixtures(t)
	return Config{
		Model:      model,
		DB:         db,
		QueueDepth: 8,
		Workers:    1,
	}
}

func newServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func submit(t *testing.T, s *Server, sub *Submission) string {
	t.Helper()
	id, status, apiErr := s.Submit(sub)
	if apiErr != nil {
		t.Fatalf("submit rejected: %d %s: %s", status, apiErr.Kind, apiErr.Msg)
	}
	return id
}

func waitDone(t *testing.T, s *Server, id string) JobStatus {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	st, err := s.Wait(ctx, id)
	if err != nil {
		t.Fatalf("job %s did not terminate: %v (state %s)", id, err, st.State)
	}
	return st
}

// waitState polls until the job reaches the given state.
func waitState(t *testing.T, s *Server, id, state string) {
	t.Helper()
	deadline := time.Now().Add(time.Minute)
	for time.Now().Before(deadline) {
		j := s.lookup(id)
		if j == nil {
			t.Fatalf("job %s vanished", id)
		}
		s.mu.Lock()
		cur := j.state
		s.mu.Unlock()
		if cur == state {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached state %s", id, state)
}

// servedReport fetches a job's report through the HTTP handler, exactly the
// bytes a network client gets.
func servedReport(t *testing.T, s *Server, id string, normalize bool) []byte {
	t.Helper()
	url := "/jobs/" + id + "/report"
	if normalize {
		url += "?normalize=1"
	}
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET %s: %d %s", url, rec.Code, rec.Body.String())
	}
	return rec.Body.Bytes()
}

func TestConfigValidate(t *testing.T) {
	model, db, _ := fixtures(t)
	cases := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"missing model", func(c *Config) { c.Model = nil }, "Model is required"},
		{"missing db", func(c *Config) { c.DB = nil }, "DB is required"},
		{"negative queue", func(c *Config) { c.QueueDepth = -1 }, "queue depth"},
		{"negative scan workers", func(c *Config) { c.ScanWorkers = -2 }, "scan workers"},
		{"negative tenant cap", func(c *Config) { c.PerTenant = -1 }, "per-tenant cap"},
		{"negative retry budget", func(c *Config) { c.RetryBudget = -1 }, "retry budget"},
		{"retry without base", func(c *Config) { c.RetryBudget = 1; c.RetryBase = 0 }, "retry base delay"},
		{"negative retry max", func(c *Config) { c.RetryMax = -time.Second }, "retry max delay"},
		{"negative deadline", func(c *Config) { c.JobDeadline = -time.Second }, "job deadline"},
		{"shed out of range", func(c *Config) { c.ShedThreshold = 1.5 }, "shed threshold"},
		{"negative ref cache", func(c *Config) { c.RefCacheSize = -1 }, "ref cache size"},
		{"negative journal max", func(c *Config) { c.JournalMax = -1 }, "journal max"},
	}
	for _, tc := range cases {
		cfg := Config{Model: model, DB: db}
		tc.mut(&cfg)
		err := cfg.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted the bad config", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not name the knob (%q)", tc.name, err, tc.want)
		}
	}
	if err := (&Config{Model: model, DB: db}).Validate(); err != nil {
		t.Errorf("zero config rejected: %v", err)
	}
}

// TestAdmissionControl exercises every typed rejection against an
// admit-only server (Workers < 0: nothing dequeues, so queue occupancy is
// fully controlled).
func TestAdmissionControl(t *testing.T) {
	cfg := baseConfig(t)
	cfg.Workers = -1
	cfg.QueueDepth = 2
	cfg.PerTenant = 1
	s := newServer(t, cfg)
	sub := goldenSubmission(t)

	// Malformed input: typed 400s.
	if _, status, apiErr := s.Submit(&Submission{Arch: sub.Arch}); apiErr == nil || status != http.StatusBadRequest || apiErr.Kind != "bad_request" {
		t.Fatalf("no-images submission: got %d %+v", status, apiErr)
	}
	if _, status, apiErr := s.Submit(&Submission{Arch: sub.Arch, Images: [][]byte{[]byte("garbage")}}); apiErr == nil || status != http.StatusBadRequest || apiErr.Kind != "bad_image" {
		t.Fatalf("undecodable submission: got %d %+v", status, apiErr)
	}

	// Injected admission outage: typed 503, nothing half-admitted.
	disarm := faultinject.Arm(faultinject.AdmitFail, "victim", errors.New("admission outage"))
	vic := *sub
	vic.Tenant = "victim"
	if _, status, apiErr := s.Submit(&vic); apiErr == nil || status != http.StatusServiceUnavailable || apiErr.Kind != "admission_fault" {
		t.Fatalf("armed admission fault: got %d %+v", status, apiErr)
	}
	disarm()

	// Tenant cap: the second in-flight job of one tenant is a typed 429;
	// another tenant is unaffected.
	a1 := *sub
	a1.Tenant = "tenant-a"
	submit(t, s, &a1)
	a2 := a1
	if _, status, apiErr := s.Submit(&a2); apiErr == nil || status != http.StatusTooManyRequests || apiErr.Kind != "tenant_busy" {
		t.Fatalf("tenant cap: got %d %+v", status, apiErr)
	}
	b1 := *sub
	b1.Tenant = "tenant-b"
	submit(t, s, &b1)

	// Queue full (depth 2, both slots held): typed 429 with retry advice.
	c1 := *sub
	c1.Tenant = "tenant-c"
	_, status, apiErr := s.Submit(&c1)
	if apiErr == nil || status != http.StatusTooManyRequests || apiErr.Kind != "queue_full" {
		t.Fatalf("full queue: got %d %+v", status, apiErr)
	}
	if apiErr.RetryAfterMS <= 0 {
		t.Error("queue_full rejection carries no retry_after_ms")
	}

	if got := s.obs.Get(obs.CtrJobsAdmitted); got != 2 {
		t.Errorf("jobs_admitted = %d, want 2", got)
	}
	if got := s.obs.Get(obs.CtrJobsRejected); got != 3 {
		t.Errorf("jobs_rejected = %d, want 3 (fault, tenant cap, queue full)", got)
	}

	// Readiness reflects the full queue; health never does.
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("/readyz with full queue = %d, want 503", rec.Code)
	}
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("/healthz = %d, want 200", rec.Code)
	}

	// Draining: after Close every submission is a typed 503.
	s.Close()
	if _, status, apiErr := s.Submit(&c1); apiErr == nil || status != http.StatusServiceUnavailable || apiErr.Kind != "draining" {
		t.Fatalf("draining server: got %d %+v", status, apiErr)
	}
}

// TestServedReportMatchesGolden is the service half of the golden contract:
// a report served over HTTP in normalized form is byte-identical to the
// committed golden bytes — i.e. to the CLI scanning the same firmware.
func TestServedReportMatchesGolden(t *testing.T) {
	cfg := baseConfig(t)
	cfg.ScanWorkers = 4
	s := newServer(t, cfg)
	id := submit(t, s, goldenSubmission(t))
	if st := waitDone(t, s, id); st.State != StateDone {
		t.Fatalf("job state %s, want done (error %+v)", st.State, st.Error)
	}

	if got, want := servedReport(t, s, id, true), goldenBytes(t); !bytes.Equal(got, want) {
		t.Errorf("served normalized report diverges from committed golden bytes (%d vs %d bytes)", len(got), len(want))
	}

	// The raw (non-normalized) served bytes must round-trip losslessly and
	// normalize to the same golden bytes — the serving path may not lose or
	// reorder anything.
	raw := servedReport(t, s, id, false)
	var rt patchecko.Report
	if err := json.Unmarshal(raw, &rt); err != nil {
		t.Fatal(err)
	}
	rt.Normalize()
	again, err := json.Marshal(&rt)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(append(again, '\n'), goldenBytes(t)) {
		t.Error("raw served report does not normalize to the golden bytes")
	}

	// The job's event stream tells the whole story: queued, started, done.
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/jobs/"+id+"/events", nil))
	evs := rec.Body.String()
	for _, kind := range []string{"job_queued", "job_started", "job_done", "scan_started"} {
		if !strings.Contains(evs, kind) {
			t.Errorf("job event stream missing %q", kind)
		}
	}
}

// TestLoadShedding pins the degradation contract: a job dequeued under
// queue pressure is shed to the static-only pipeline and its report says so
// explicitly; jobs dequeued off a calm queue are not.
func TestLoadShedding(t *testing.T) {
	cfg := baseConfig(t)
	cfg.QueueDepth = 2
	cfg.ShedThreshold = 0.5 // shed when >= 1 job is still queued at dequeue
	cfg.gate = make(chan struct{})
	s := newServer(t, cfg)

	sub := goldenSubmission(t)
	first := *sub
	first.StaticOnly = true // keep the test fast; shedding is about the others
	j1 := submit(t, s, &first)
	// The worker dequeues j1 (calm queue) and blocks on the gate; only then
	// pile up queue pressure behind it, or j1 would still occupy a slot.
	waitState(t, s, j1, StateRunning)
	j2 := submit(t, s, sub)
	third := *sub
	third.StaticOnly = true
	j3 := submit(t, s, &third)

	cfg.gate <- struct{}{} // j1 runs: dequeued before any backlog existed
	cfg.gate <- struct{}{} // j2 runs: dequeued with j3 still queued -> shed
	cfg.gate <- struct{}{} // j3 runs: queue empty again -> not shed

	st1, st2, st3 := waitDone(t, s, j1), waitDone(t, s, j2), waitDone(t, s, j3)
	if st1.State != StateDone || st2.State != StateDone || st3.State != StateDone {
		t.Fatalf("states: %s %s %s, want all done", st1.State, st2.State, st3.State)
	}
	if st1.Shed {
		t.Error("j1 (calm queue) was shed")
	}
	if !st2.Shed {
		t.Error("j2 (dequeued under pressure) was not shed")
	}
	if st3.Shed {
		t.Error("j3 (client static-only) reported as server-shed")
	}

	// Degradation is never silent: the shed job's Report and every scan in
	// it are explicitly marked.
	r2 := s.Report(j2)
	if r2 == nil || !r2.Degraded {
		t.Fatal("shed job's report is not marked Degraded")
	}
	for cve, scan := range r2.Results {
		if scan != nil && !scan.Degraded {
			t.Errorf("shed job: result %s not marked Degraded", cve)
		}
		if scan != nil && (scan.Matched || len(scan.Ranking) > 0) {
			t.Errorf("shed job: result %s carries dynamic-stage output", cve)
		}
	}
	// Client-requested static-only is Degraded on the report but not a shed.
	if r3 := s.Report(j3); r3 == nil || !r3.Degraded {
		t.Error("client static-only report not marked Degraded")
	}
	if got := s.obs.Get(obs.CtrJobsShed); got != 1 {
		t.Errorf("jobs_shed = %d, want 1", got)
	}
}

// TestRetryBackoff: a persistently panicking scan cell consumes the whole
// retry budget (the fault is armed for the job's lifetime), every attempt
// is journaled and counted, and the job still completes with the failure
// recorded — retries never turn a degraded answer into no answer.
func TestRetryBackoff(t *testing.T) {
	defer faultinject.Arm(faultinject.ScanPanic, "", errors.New("injected worker crash"))()

	cfg := baseConfig(t)
	cfg.RetryBudget = 2
	cfg.RetryBase = time.Millisecond
	cfg.RetryMax = 4 * time.Millisecond
	s := newServer(t, cfg)

	sub := goldenSubmission(t)
	sub.StaticOnly = true // panics fire in the scan grid either way; keep it fast
	id := submit(t, s, sub)
	st := waitDone(t, s, id)
	if st.State != StateDone {
		t.Fatalf("job state %s, want done", st.State)
	}
	if st.Attempts != cfg.RetryBudget+1 {
		t.Errorf("attempts = %d, want %d (budget exhausted)", st.Attempts, cfg.RetryBudget+1)
	}
	if got := s.obs.Get(obs.CtrJobsRetried); got != int64(cfg.RetryBudget) {
		t.Errorf("jobs_retried = %d, want %d", got, cfg.RetryBudget)
	}
	report := s.Report(id)
	if report == nil {
		t.Fatal("no report after retries")
	}
	found := false
	for _, se := range report.Errors {
		if se.Kind == patchecko.FailPanic {
			found = true
		}
	}
	if !found {
		t.Error("report does not record the injected panic")
	}
	// The retry loop emitted its lifecycle events.
	evs := s.lookup(id).sink.Events()
	var retried int
	for _, ev := range evs {
		if ev.Kind == obs.EvJobRetried {
			retried++
		}
	}
	if retried != cfg.RetryBudget {
		t.Errorf("job_retried events = %d, want %d", retried, cfg.RetryBudget)
	}
}

// TestCancelQueuedJob: cancelling a queued job settles it immediately and
// the worker skips its queue slot.
func TestCancelQueuedJob(t *testing.T) {
	cfg := baseConfig(t)
	cfg.Workers = -1
	s := newServer(t, cfg)
	id := submit(t, s, goldenSubmission(t))

	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("DELETE", "/jobs/"+id, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("DELETE = %d", rec.Code)
	}
	st := waitDone(t, s, id)
	if st.State != StateCancelled {
		t.Errorf("state = %s, want cancelled", st.State)
	}
	if got := s.obs.Get(obs.CtrJobsCancelled); got != 1 {
		t.Errorf("jobs_cancelled = %d, want 1", got)
	}
}

// TestCrashRestartResume is the crash-safety core: jobs captured in the
// journal by one server life are resumed by the next and produce reports
// byte-identical to the committed golden bytes — at every engine
// parallelism.
func TestCrashRestartResume(t *testing.T) {
	for _, scanWorkers := range []int{1, 4, 16} {
		journal := filepath.Join(t.TempDir(), "journal.jsonl")

		// Life 1: admit-only — the job is acked and journaled, never run.
		// Closing here is the clean analogue of a crash after ack.
		cfg := baseConfig(t)
		cfg.Workers = -1
		cfg.JournalPath = journal
		life1, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		id := submit(t, life1, goldenSubmission(t))
		life1.Close()

		// Life 2: the journal replays the job; it runs to completion.
		cfg2 := baseConfig(t)
		cfg2.ScanWorkers = scanWorkers
		cfg2.JournalPath = journal
		life2 := newServer(t, cfg2)
		if got := life2.obs.Get(obs.CtrJobsResumed); got != 1 {
			t.Fatalf("scanWorkers=%d: jobs_resumed = %d, want 1", scanWorkers, got)
		}
		st := waitDone(t, life2, id)
		if st.State != StateDone {
			t.Fatalf("scanWorkers=%d: resumed job state %s (error %+v)", scanWorkers, st.State, st.Error)
		}
		if !st.Resumed {
			t.Errorf("scanWorkers=%d: job status not marked resumed", scanWorkers)
		}
		if got, want := servedReport(t, life2, id, true), goldenBytes(t); !bytes.Equal(got, want) {
			t.Errorf("scanWorkers=%d: resumed report diverges from golden bytes", scanWorkers)
		}
		life2.Close()

		// Life 3: the completed job was journaled terminal — nothing resumes.
		cfg3 := baseConfig(t)
		cfg3.Workers = -1
		cfg3.JournalPath = journal
		life3 := newServer(t, cfg3)
		if got := life3.obs.Get(obs.CtrJobsResumed); got != 0 {
			t.Errorf("scanWorkers=%d: terminal job resurrected (%d resumed)", scanWorkers, got)
		}
		life3.Close()
	}
}

// TestMidJobRestart kills the server while a job is mid-scan: the shutdown
// does not journal a terminal record, so the next life re-runs the job from
// its submission and still produces the golden bytes.
func TestMidJobRestart(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "journal.jsonl")

	cfg := baseConfig(t)
	cfg.JournalPath = journal
	life1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	id := submit(t, life1, goldenSubmission(t))
	waitState(t, life1, id, StateRunning)
	life1.Close() // cancels the in-flight scan; no terminal journal record

	cfg2 := baseConfig(t)
	cfg2.ScanWorkers = 4
	cfg2.JournalPath = journal
	life2 := newServer(t, cfg2)
	if got := life2.obs.Get(obs.CtrJobsResumed); got != 1 {
		t.Fatalf("jobs_resumed = %d, want 1", got)
	}
	st := waitDone(t, life2, id)
	if st.State != StateDone {
		t.Fatalf("resumed job state %s (error %+v)", st.State, st.Error)
	}
	if got, want := servedReport(t, life2, id, true), goldenBytes(t); !bytes.Equal(got, want) {
		t.Error("mid-job-restart report diverges from golden bytes")
	}
}

// TestFinishedJobReplay is the terminal half of the journal contract: a job
// that FINISHED in one server life is still served by the next — status
// intact, report byte-identical — replayed from the journal's terminal
// record instead of 404ing or re-running the scan.
func TestFinishedJobReplay(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "journal.jsonl")

	cfg := baseConfig(t)
	cfg.ScanWorkers = 4
	cfg.JournalPath = journal
	life1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sub := goldenSubmission(t)
	sub.Tenant = "replay-tenant"
	id := submit(t, life1, sub)
	st1 := waitDone(t, life1, id)
	if st1.State != StateDone {
		t.Fatalf("job state %s, want done (error %+v)", st1.State, st1.Error)
	}
	want := servedReport(t, life1, id, false)
	wantNorm := servedReport(t, life1, id, true)
	life1.Close()

	// Life 2 is admit-only: nothing can run, so anything it serves for the
	// finished job must come from the journal's terminal record.
	cfg2 := baseConfig(t)
	cfg2.Workers = -1
	cfg2.JournalPath = journal
	life2 := newServer(t, cfg2)
	if got := life2.obs.Get(obs.CtrJobsResumed); got != 0 {
		t.Fatalf("finished job was resumed (%d), want replayed as terminal", got)
	}
	st2 := waitDone(t, life2, id) // done channel is pre-closed for replayed jobs
	if st2.State != StateDone {
		t.Fatalf("replayed job state %s, want done", st2.State)
	}
	if st2.Tenant != sub.Tenant || st2.Attempts != st1.Attempts || st2.Shed != st1.Shed {
		t.Errorf("replayed status %+v diverges from life 1's %+v", st2, st1)
	}
	if got := servedReport(t, life2, id, false); !bytes.Equal(got, want) {
		t.Errorf("replayed raw report diverges from life 1's served bytes (%d vs %d)", len(got), len(want))
	}
	if got := servedReport(t, life2, id, true); !bytes.Equal(got, wantNorm) {
		t.Error("replayed normalized report diverges from life 1's served bytes")
	}
	if !bytes.Equal(servedReport(t, life2, id, true), goldenBytes(t)) {
		t.Error("replayed normalized report diverges from committed golden bytes")
	}
	// The replayed job holds no tenant slot: the tenant can submit again
	// even at a per-tenant cap of 1.
	life2.mu.Lock()
	inflight := life2.tenants[sub.Tenant]
	life2.mu.Unlock()
	if inflight != 0 {
		t.Errorf("replayed terminal job holds %d tenant slots, want 0", inflight)
	}
	life2.Close()

	// Life 3: replay is idempotent — the terminal record survives another
	// restart and still serves the same bytes.
	cfg3 := baseConfig(t)
	cfg3.Workers = -1
	cfg3.JournalPath = journal
	life3 := newServer(t, cfg3)
	if got := servedReport(t, life3, id, true); !bytes.Equal(got, wantNorm) {
		t.Error("second replay diverges from life 1's served bytes")
	}
	life3.Close()
}

// TestChaosMatrix arms every service fault point at once — admission
// outage for one tenant, journal-disk failure for every append, store reads
// degrading to misses — on a server with a full queue, and asserts the
// ISSUE's chaos contract: no deadlock, typed rejections, and a completed
// job whose report still matches the committed golden bytes.
func TestChaosMatrix(t *testing.T) {
	defer faultinject.Arm(faultinject.JournalFail, "", errors.New("journal disk failure"))()
	defer faultinject.Arm(faultinject.StoreReadFail, "", errors.New("store read failure"))()
	defer faultinject.Arm(faultinject.AdmitFail, "chaos-tenant", errors.New("admission outage"))()

	store, err := cas.Open(t.TempDir(), "sha256:chaos", 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig(t)
	cfg.QueueDepth = 1
	cfg.JournalPath = filepath.Join(t.TempDir(), "journal.jsonl")
	cfg.Store = store
	cfg.ScanWorkers = 4
	cfg.gate = make(chan struct{})
	s := newServer(t, cfg)

	sub := goldenSubmission(t)
	id := submit(t, s, sub) // dequeued, parked on the gate

	// Wait for the worker to hold the job, then fill the queue behind it.
	waitState(t, s, id, StateRunning)
	queued := *sub
	filler := submit(t, s, &queued)

	// Full queue: typed rejection, not a hang.
	over := *sub
	if _, status, apiErr := s.Submit(&over); apiErr == nil || status != http.StatusTooManyRequests || apiErr.Kind != "queue_full" {
		t.Fatalf("full queue under chaos: got %d %+v", status, apiErr)
	}
	// Armed admission fault: typed rejection for exactly that tenant.
	chaos := *sub
	chaos.Tenant = "chaos-tenant"
	if _, status, apiErr := s.Submit(&chaos); apiErr == nil || status != http.StatusServiceUnavailable || apiErr.Kind != "admission_fault" {
		t.Fatalf("armed admission fault under chaos: got %d %+v", status, apiErr)
	}

	// Release the worker; both jobs must complete despite every journal
	// append failing and every store read missing.
	cfg.gate <- struct{}{}
	cfg.gate <- struct{}{}
	if st := waitDone(t, s, id); st.State != StateDone {
		t.Fatalf("chaos job state %s (error %+v)", st.State, st.Error)
	}
	filler2 := waitDone(t, s, filler)
	if filler2.State != StateDone {
		t.Fatalf("filler job state %s", filler2.State)
	}

	// Injected store faults degrade reads to misses — they may cost
	// recomputes but can never change report bytes.
	if got, want := servedReport(t, s, id, true), goldenBytes(t); !bytes.Equal(got, want) {
		t.Error("report under chaos diverges from golden bytes")
	}
	// Crash-safety degradation was counted, not hidden.
	if got := s.obs.Get(obs.CtrJournalErrors); got == 0 {
		t.Error("journal_errors = 0 despite every append failing")
	}
	if got := s.obs.Get(obs.CtrJournalOK); got != 0 {
		t.Errorf("journal_appends = %d with the journal disk down", got)
	}
}

// TestMetricsEndpoint sanity-checks the /metrics JSON shape and that job
// counters merge into the service sink at termination.
func TestMetricsEndpoint(t *testing.T) {
	cfg := baseConfig(t)
	s := newServer(t, cfg)
	sub := goldenSubmission(t)
	sub.StaticOnly = true
	id := submit(t, s, sub)
	waitDone(t, s, id)

	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics = %d", rec.Code)
	}
	var v metricsView
	if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
		t.Fatal(err)
	}
	if v.Counters["jobs_admitted"] != 1 || v.Counters["jobs_completed"] != 1 {
		t.Errorf("job counters: admitted %d completed %d, want 1/1",
			v.Counters["jobs_admitted"], v.Counters["jobs_completed"])
	}
	// The job's scan-level counters merged in at termination.
	if v.Counters["images_prepared"] == 0 {
		t.Error("scan counters did not merge into the service sink")
	}
	if v.Jobs[StateDone] != 1 {
		t.Errorf("job state tally %v, want 1 done", v.Jobs)
	}
	if v.Queue.Cap != cfg.QueueDepth {
		t.Errorf("queue cap %d, want %d", v.Queue.Cap, cfg.QueueDepth)
	}
}
