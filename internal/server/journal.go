// Crash-safe job journal: an append-only JSONL file recording every job's
// admission and termination, so a process restart can resume the jobs it
// was killed under. The format follows the cas.Store playbook — the journal
// is bookkeeping, never an authority over results:
//
//   - every append is written and fsynced BEFORE the submission is
//     acknowledged, so an acked job is never lost to a crash;
//   - a torn final line (the crash happened mid-append) is detected on open
//     and truncated away — the corrupt tail costs at most the one record
//     that was never acked;
//   - rotation is compaction: when the file outgrows its budget it is
//     rewritten to hold only the live (non-terminal) jobs, via temp file +
//     rename, so readers never observe a half-rotated journal;
//   - append failures (disk full, injected faults) degrade crash-safety and
//     are counted, but never fail the job they describe.
package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/patchecko"
)

// recordKind classifies one journal record.
type recordKind string

// Journal record kinds. A job contributes one "submitted" record (carrying
// the full submission so the job can be re-run from the journal alone), at
// least one "started" record (one per attempt epoch; a restart may add
// more), and exactly one terminal record.
const (
	recSubmitted recordKind = "submitted"
	recStarted   recordKind = "started"
	recDone      recordKind = "done"
	recFailed    recordKind = "failed"
	recCancelled recordKind = "cancelled"
)

// terminal reports whether the record kind ends a job's journal lifetime.
func (k recordKind) terminal() bool {
	return k == recDone || k == recFailed || k == recCancelled
}

// record is one journal line.
type record struct {
	Kind recordKind  `json:"kind"`
	Seq  uint64      `json:"seq"`
	Job  string      `json:"job"`
	Sub  *Submission `json:"sub,omitempty"` // submitted records only

	// Terminal records carry the job's outcome so a restarted process can
	// serve its status and report without re-running the scan. Reports are
	// verbatim Report JSON; replay materializes them as finished jobs.
	Tenant   string            `json:"tenant,omitempty"`
	Attempts int               `json:"attempts,omitempty"`
	Shed     bool              `json:"shed,omitempty"`
	Report   *patchecko.Report `json:"report,omitempty"`
	ErrKind  string            `json:"err_kind,omitempty"`
	ErrMsg   string            `json:"err_msg,omitempty"`
}

// Journal is the append-only JSONL job journal. Safe for concurrent use.
type Journal struct {
	mu   sync.Mutex
	path string
	f    *os.File
	size int64
	max  int64
	seq  uint64
	// live maps job id to its submission record for every job that has been
	// admitted but not terminated; compaction always keeps these, and
	// recovery re-enqueues them.
	live map[string]*record
	// terminal maps job id to its terminal record (outcome, report) for the
	// most recently finished jobs, bounded by journalTerminalKeep so report
	// payloads cannot grow the journal without limit; recovery serves these
	// as finished jobs.
	terminal map[string]*record
	obs      *obs.Metrics
}

// defaultJournalMax bounds the journal when the caller does not choose a
// rotation budget.
const defaultJournalMax = 4 << 20

// journalTerminalKeep bounds how many finished jobs' terminal records (and
// thus replayable reports) the journal retains; compaction additionally
// drops the oldest ones until the rewritten file fits half the rotation
// budget, so live submissions always win space over finished reports.
const journalTerminalKeep = 64

// openJournal opens (creating if needed) the journal at path and replays it.
// pending are the live — submitted or started, never terminated — jobs in
// admission order, ready to resume; finished are the retained terminal
// records in termination order, ready to serve their outcomes and reports.
// maxBytes is the compaction threshold (<= 0 selects defaultJournalMax). A
// corrupt tail is truncated in place; corruption anywhere else stops replay
// at the last good line, because everything after it is untrustworthy.
func openJournal(path string, maxBytes int64, sink *obs.Metrics) (j *Journal, pending, finished []*record, err error) {
	if maxBytes <= 0 {
		maxBytes = defaultJournalMax
	}
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, nil, nil, fmt.Errorf("server: journal: %w", err)
		}
	}
	j = &Journal{path: path, max: maxBytes, live: make(map[string]*record), terminal: make(map[string]*record), obs: sink}

	raw, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, nil, fmt.Errorf("server: journal: %w", err)
	}
	var order []string
	good := 0 // byte offset of the end of the last parseable line
	for off := 0; off < len(raw); {
		nl := bytes.IndexByte(raw[off:], '\n')
		if nl < 0 {
			break // torn final line: the crash interrupted an append
		}
		line := raw[off : off+nl]
		var rec record
		if err := json.Unmarshal(line, &rec); err != nil || rec.Job == "" {
			break
		}
		off += nl + 1
		good = off
		if rec.Seq > j.seq {
			j.seq = rec.Seq
		}
		switch {
		case rec.Kind == recSubmitted && rec.Sub != nil:
			if _, dup := j.live[rec.Job]; !dup {
				order = append(order, rec.Job)
			}
			r := rec
			j.live[rec.Job] = &r
		case rec.Kind.terminal():
			delete(j.live, rec.Job)
			r := rec
			j.terminal[rec.Job] = &r
			j.trimTerminalLocked()
		}
	}
	if good < len(raw) {
		if err := os.Truncate(path, int64(good)); err != nil {
			return nil, nil, nil, fmt.Errorf("server: journal: truncating corrupt tail: %w", err)
		}
	}
	j.size = int64(good)

	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("server: journal: %w", err)
	}
	j.f = f

	pending = make([]*record, 0, len(j.live))
	for _, id := range order {
		if rec, ok := j.live[id]; ok {
			pending = append(pending, rec)
		}
	}
	finished = sortedBySeq(j.terminal)
	return j, pending, finished, nil
}

// trimTerminalLocked evicts the oldest terminal records beyond the retention
// bound. Callers hold j.mu (or own j exclusively during replay).
func (j *Journal) trimTerminalLocked() {
	for len(j.terminal) > journalTerminalKeep {
		var oldest *record
		for _, rec := range j.terminal {
			if oldest == nil || rec.Seq < oldest.Seq {
				oldest = rec
			}
		}
		delete(j.terminal, oldest.Job)
	}
}

// append writes one record, fsyncs it, and rotates if the file outgrew its
// budget. The returned error is informational: callers count it and move
// on — a job must never fail because its bookkeeping did.
func (j *Journal) append(kind recordKind, jobID string, sub *Submission) error {
	return j.appendRecord(&record{Kind: kind, Job: jobID, Sub: sub})
}

// appendRecord is append for callers that fill the terminal outcome fields;
// rec.Seq is assigned here.
func (j *Journal) appendRecord(rec *record) error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.seq++
	rec.Seq = j.seq
	if err := j.writeLocked(rec); err != nil {
		j.obs.Add(obs.CtrJournalErrors, 1)
		return err
	}
	j.obs.Add(obs.CtrJournalOK, 1)
	switch {
	case rec.Kind == recSubmitted:
		j.live[rec.Job] = rec
	case rec.Kind.terminal():
		delete(j.live, rec.Job)
		j.terminal[rec.Job] = rec
		j.trimTerminalLocked()
	}
	if j.size > j.max {
		j.compactLocked()
	}
	return nil
}

func (j *Journal) writeLocked(rec *record) error {
	if err := faultinject.Fire(faultinject.JournalFail, string(rec.Kind)); err != nil {
		return err
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if _, err := j.f.Write(data); err != nil {
		return err
	}
	if err := j.f.Sync(); err != nil {
		return err
	}
	j.size += int64(len(data))
	return nil
}

// compactLocked rewrites the journal to hold the live jobs' submission
// records plus the retained terminal records, atomically (temp file +
// rename). Live records always survive; terminal records are dropped oldest
// first until the rewrite fits half the rotation budget, so report payloads
// can never crowd out crash-safety or pin the file above its budget. On any
// failure the original file keeps working — compaction is retried after the
// next append. Callers hold j.mu.
func (j *Journal) compactLocked() {
	liveRecs := sortedBySeq(j.live)
	liveLines, ok := marshalLines(liveRecs)
	if !ok {
		return
	}
	var size int64
	for _, line := range liveLines {
		size += int64(len(line))
	}
	termRecs := sortedBySeq(j.terminal)
	termLines, ok := marshalLines(termRecs)
	if !ok {
		return
	}
	keepFrom := 0
	for _, line := range termLines {
		size += int64(len(line))
	}
	for keepFrom < len(termRecs) && size > j.max/2 {
		size -= int64(len(termLines[keepFrom]))
		delete(j.terminal, termRecs[keepFrom].Job)
		keepFrom++
	}

	tmp, err := os.CreateTemp(filepath.Dir(j.path), "journal-*")
	if err != nil {
		return
	}
	w := bufio.NewWriter(tmp)
	ok = true
	for _, line := range liveLines {
		if _, err := w.Write(line); err != nil {
			ok = false
			break
		}
	}
	if ok {
		for _, line := range termLines[keepFrom:] {
			if _, err := w.Write(line); err != nil {
				ok = false
				break
			}
		}
	}
	if ok {
		ok = w.Flush() == nil && tmp.Sync() == nil
	}
	if cerr := tmp.Close(); cerr != nil {
		ok = false
	}
	if !ok {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), j.path); err != nil {
		os.Remove(tmp.Name())
		return
	}
	f, err := os.OpenFile(j.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		// The compacted file is in place but unappendable; keep the old
		// handle (its writes land in the unlinked inode and are lost, which
		// is the degraded-crash-safety mode the error counter reports).
		j.obs.Add(obs.CtrJournalErrors, 1)
		return
	}
	j.f.Close()
	j.f = f
	j.size = size
}

// marshalLines renders records as newline-terminated JSONL lines.
func marshalLines(recs []*record) ([][]byte, bool) {
	lines := make([][]byte, len(recs))
	for i, rec := range recs {
		data, err := json.Marshal(rec)
		if err != nil {
			return nil, false
		}
		lines[i] = append(data, '\n')
	}
	return lines, true
}

// sortedBySeq returns the map's records in seq order.
func sortedBySeq(m map[string]*record) []*record {
	recs := make([]*record, 0, len(m))
	for _, rec := range m {
		recs = append(recs, rec)
	}
	for i := 1; i < len(recs); i++ {
		for k := i; k > 0 && recs[k-1].Seq > recs[k].Seq; k-- {
			recs[k-1], recs[k] = recs[k], recs[k-1]
		}
	}
	return recs
}

// Close flushes and closes the journal file.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}
