// Package compid is the component-identification prefilter: a cheap
// fingerprint pass that binds a firmware library image to the components it
// plausibly embeds, so the scan engine only schedules (image, CVE) grid
// cells whose component fingerprints match (UVSCAN's architecture; VulMatch
// shows instruction/constant signatures suffice to bind a binary to its
// vulnerable components).
//
// A Fingerprint summarizes one prepared image as deterministic signature
// sets: relocation-masked digests of every distinct function body, the
// static feature vector of each, the image's .rodata string literals and a
// sketch of its distinctive immediates. A Signature summarizes one CVE for
// one architecture by compiling its vulnerable and patched reference
// functions at every optimization level and collecting the same channels,
// plus the spread — the maximum pairwise Canberra distance between variant
// feature vectors — which bounds how far compilation settings alone can
// move the reference.
//
// The keep rule (Signature.Matches) is calibrated to be recall-safe against
// the scan engine's full-grid ground truth, not merely plausible:
//
//   - A degenerate signature (Spread < DegenerateSpread) describes a
//     reference so generic that lookalikes appear at arbitrary feature
//     distance; it matches every image, so the engine never prunes its row.
//   - Otherwise the image matches on an exact digest hit (the component's
//     code is embedded verbatim at SOME optimization level — masking makes
//     this linkage-invariant), on a shared distinctive rodata string or
//     immediate, or when any image function sits within MatchRadius of any
//     reference variant in Canberra feature space.
//
// String and constant channels only ever ADD matches, so they can only
// improve recall; the digest and feature-ball channels carry the measured
// calibration (see patchecko's TestPrefilterRecall, which pins recall = 1.0
// and report byte-identity against the full grid).
package compid

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/binimg"
	"repro/internal/compiler"
	"repro/internal/disasm"
	"repro/internal/features"
	"repro/internal/isa"
	"repro/internal/minic"
)

// Calibrated thresholds. Measured on the seed corpus (three devices, every
// CVE, every optimization level, plus generated vendor libraries across
// body-size profiles):
//
//   - Every full-grid winner cell that is not an exact digest hit sits
//     within Canberra 0.067 of a reference variant; MatchRadius 0.08 keeps
//     all of them with margin while pruning 40-90% of vendor cells
//     (depending on how different the vendor code profile is).
//   - Signatures with spread below 0.03 (three or four of the 25 CVEs —
//     tiny helpers whose feature vectors barely move across optimization
//     levels) attract lookalike winners at distances up to 0.11; no radius
//     separates those from genuinely foreign code, so they are declared
//     degenerate and never pruned.
const (
	// DegenerateSpread is the spread floor below which a signature is too
	// generic to prune against.
	DegenerateSpread = 0.03
	// MatchRadius is the Canberra feature-space radius of the keep ball
	// around each reference variant vector.
	MatchRadius = 0.08
)

// Channel filters. Strings shorter than minStringLen are too common to
// identify a component; immediates are distinctive only when they are large
// magic numbers, not small operands and not addresses into the fixed data,
// rodata or text windows (which encode linkage, not identity).
const (
	minStringLen  = 6
	minConstMag   = 1 << 16
	textWindowEnd = binimg.TextBase + 1<<24
)

// BodyDigest hashes a function body with relocations masked, so the digest
// depends only on the code itself, not on where the module's linker placed
// its neighbours or its string table:
//
//   - Call targets are module-layout-dependent absolute addresses; the
//     operand is dropped (the digest keeps the fact of a call, not its
//     destination).
//   - Immediates inside the rodata window address the module's interned
//     string table, whose layout depends on every OTHER function in the
//     module; they are dropped the same way.
//
// Everything else — opcodes, registers, ordinary immediates — is hashed
// verbatim, so any real code edit changes the digest.
func BodyDigest(arch string, fn *disasm.Function) [32]byte {
	h := sha256.New()
	h.Write([]byte(arch))
	var buf [13]byte
	for _, in := range fn.Instrs {
		imm := uint64(in.Imm)
		tag := byte(0)
		switch {
		case in.Op == isa.Call:
			tag, imm = 2, 0
		case in.Imm >= minic.RodataBase && in.Imm < minic.RodataBase+minic.RodataSize:
			tag, imm = 1, 0
		}
		buf[0], buf[1], buf[2], buf[3], buf[4] = byte(in.Op), byte(in.Rd), byte(in.Rs1), byte(in.Rs2), tag
		binary.LittleEndian.PutUint64(buf[5:13], imm)
		h.Write(buf[:])
	}
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// Fingerprint is one image's component-identification summary. All slices
// are in canonical order (digests, strings and constants strictly
// ascending; Vecs aligned index-for-index with Digests), so equal images
// produce byte-identical fingerprints regardless of extraction order.
type Fingerprint struct {
	// Arch names the image's architecture; fingerprints and signatures only
	// compare within one architecture.
	Arch string
	// Digests are the relocation-masked body digests of the image's
	// distinct function bodies, strictly ascending.
	Digests [][32]byte
	// Vecs holds the static feature vector of each distinct body, aligned
	// with Digests.
	Vecs []features.Vector
	// Strings are the image's .rodata string literals of at least
	// minStringLen bytes, strictly ascending.
	Strings []string
	// Consts are the image's distinctive immediates, strictly ascending.
	Consts []uint64
}

// distinctiveConst reports whether an immediate identifies code rather than
// linkage: large in magnitude and outside the fixed data/rodata and text
// address windows.
func distinctiveConst(imm int64) bool {
	if imm > -minConstMag && imm < minConstMag {
		return false
	}
	if imm >= minic.DataBase && imm < minic.RodataBase+minic.RodataSize {
		return false
	}
	if imm >= binimg.TextBase && imm < textWindowEnd {
		return false
	}
	return true
}

// rodataStrings splits a .rodata section into its NUL-terminated string
// literals and keeps the distinctive ones: at least minStringLen bytes,
// printable ASCII throughout.
func rodataStrings(rodata []byte) []string {
	var out []string
	start := 0
	for i := 0; i <= len(rodata); i++ {
		if i < len(rodata) && rodata[i] != 0 {
			continue
		}
		s := rodata[start:i]
		start = i + 1
		if len(s) < minStringLen {
			continue
		}
		printable := true
		for _, c := range s {
			if c < 0x20 || c > 0x7e {
				printable = false
				break
			}
		}
		if printable {
			out = append(out, string(s))
		}
	}
	return sortedUniqueStrings(out)
}

func sortedUniqueStrings(in []string) []string {
	sort.Strings(in)
	out := in[:0]
	for i, s := range in {
		if i == 0 || s != in[i-1] {
			out = append(out, s)
		}
	}
	return out
}

func sortedUniqueU64(in []uint64) []uint64 {
	sort.Slice(in, func(i, j int) bool { return in[i] < in[j] })
	out := in[:0]
	for i, v := range in {
		if i == 0 || v != in[i-1] {
			out = append(out, v)
		}
	}
	return out
}

func digestLess(a, b [32]byte) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// Extract fingerprints a prepared image from its decoded form, its
// disassembly and the per-function feature vectors the static stage already
// computed (aligned with dis.Funcs). The result is deterministic in the
// image contents alone.
func Extract(im *binimg.Image, dis *disasm.Disassembly, vecs []features.Vector) *Fingerprint {
	fp := &Fingerprint{Arch: im.Arch}
	seen := make(map[[32]byte]int, len(dis.Funcs))
	var consts []uint64
	for i, fn := range dis.Funcs {
		d := BodyDigest(im.Arch, fn)
		if _, ok := seen[d]; !ok {
			seen[d] = i
			fp.Digests = append(fp.Digests, d)
			fp.Vecs = append(fp.Vecs, vecs[i])
		}
		for _, in := range fn.Instrs {
			if in.Op != isa.Call && distinctiveConst(in.Imm) {
				consts = append(consts, uint64(in.Imm))
			}
		}
	}
	sort.Sort(&bodySorter{fp.Digests, fp.Vecs})
	fp.Strings = rodataStrings(im.Rodata)
	fp.Consts = sortedUniqueU64(consts)
	return fp
}

// bodySorter sorts the digest list and its aligned vectors together.
type bodySorter struct {
	d [][32]byte
	v []features.Vector
}

func (s *bodySorter) Len() int           { return len(s.d) }
func (s *bodySorter) Less(i, j int) bool { return digestLess(s.d[i], s.d[j]) }
func (s *bodySorter) Swap(i, j int) {
	s.d[i], s.d[j] = s.d[j], s.d[i]
	s.v[i], s.v[j] = s.v[j], s.v[i]
}

// Signature is one CVE's component signature for one architecture, derived
// from the reference builder: both patch states compiled at every
// optimization level.
type Signature struct {
	CVE  string
	Arch string
	// Digests are the relocation-masked digests of every reference variant,
	// strictly ascending.
	Digests [][32]byte
	// Vecs are the variant feature vectors (two patch states × every
	// optimization level, in build order).
	Vecs []features.Vector
	// Spread is the maximum pairwise Canberra distance among Vecs: how far
	// compilation settings alone move this reference in feature space.
	Spread float64
	// Strings and Consts are the distinctive rodata strings and immediates
	// the variants carry, strictly ascending.
	Strings []string
	Consts  []uint64
}

// Degenerate reports whether the signature is too generic to prune against:
// its variants are so close together that unrelated code produces
// lookalikes at arbitrary distance. The engine keeps every cell of a
// degenerate CVE's row.
func (s *Signature) Degenerate() bool { return s.Spread < DegenerateSpread }

// Canberra is the feature-space distance the keep ball is calibrated in:
// the per-dimension relative difference |a-b|/(|a|+|b|), averaged over the
// vector. Unlike Euclidean distance it weighs every feature equally no
// matter its scale, which is what makes one radius meaningful across count
// features that span orders of magnitude.
func Canberra(a, b features.Vector) float64 {
	var sum float64
	for i := range a {
		d := math.Abs(a[i] - b[i])
		if d == 0 {
			continue
		}
		sum += d / (math.Abs(a[i]) + math.Abs(b[i]))
	}
	return sum / float64(len(a))
}

// DeriveSignature builds a CVE's signature for one architecture by
// compiling the pair's vulnerable and patched functions as single-function
// modules at every optimization level — exactly the space of builds the
// reference database itself draws from.
func DeriveSignature(pair *minic.CVEPair, arch *isa.Arch) (*Signature, error) {
	sig := &Signature{CVE: pair.ID, Arch: arch.Name}
	var strs []string
	var consts []uint64
	seen := make(map[[32]byte]bool)
	for _, fn := range []*minic.Func{pair.Vulnerable, pair.Patched} {
		for _, lvl := range compiler.Levels() {
			mod := &minic.Module{Name: "sig", Funcs: []*minic.Func{minic.CloneFunc(fn)}}
			im, err := compiler.Compile(mod, arch, lvl)
			if err != nil {
				return nil, fmt.Errorf("compid: %s: %s %s: %w", pair.ID, arch.Name, lvl, err)
			}
			dis, err := disasm.Disassemble(im)
			if err != nil {
				return nil, fmt.Errorf("compid: %s: %s %s: %w", pair.ID, arch.Name, lvl, err)
			}
			if len(dis.Funcs) != 1 {
				return nil, fmt.Errorf("compid: %s: variant has %d functions, want 1", pair.ID, len(dis.Funcs))
			}
			fn := dis.Funcs[0]
			d := BodyDigest(arch.Name, fn)
			if !seen[d] {
				seen[d] = true
				sig.Digests = append(sig.Digests, d)
			}
			sig.Vecs = append(sig.Vecs, features.Extract(dis, fn))
			strs = append(strs, rodataStrings(im.Rodata)...)
			for _, in := range fn.Instrs {
				if in.Op != isa.Call && distinctiveConst(in.Imm) {
					consts = append(consts, uint64(in.Imm))
				}
			}
		}
	}
	sort.Slice(sig.Digests, func(i, j int) bool { return digestLess(sig.Digests[i], sig.Digests[j]) })
	sig.Strings = sortedUniqueStrings(strs)
	sig.Consts = sortedUniqueU64(consts)
	for i := range sig.Vecs {
		for j := i + 1; j < len(sig.Vecs); j++ {
			if d := Canberra(sig.Vecs[i], sig.Vecs[j]); d > sig.Spread {
				sig.Spread = d
			}
		}
	}
	return sig, nil
}

// pairIndex memoizes the CVE reference builder's pair set; minic.CVEs is
// deterministic, so one materialization serves every signature derivation.
var (
	pairOnce sync.Once
	pairByID map[string]*minic.CVEPair
)

// SignatureFor derives the signature of a CVE from the reference builder by
// ID. It returns an error for IDs the builder does not know — callers treat
// that as "no signature" and keep the CVE's whole row.
func SignatureFor(cveID string, arch *isa.Arch) (*Signature, error) {
	pairOnce.Do(func() {
		pairByID = make(map[string]*minic.CVEPair)
		for _, p := range minic.CVEs() {
			pairByID[p.ID] = p
		}
	})
	pair, ok := pairByID[cveID]
	if !ok {
		return nil, fmt.Errorf("compid: no reference pair for %s", cveID)
	}
	return DeriveSignature(pair, arch)
}

// containsDigest reports membership in a strictly-ascending digest list.
func containsDigest(sorted [][32]byte, d [32]byte) bool {
	i := sort.Search(len(sorted), func(i int) bool { return !digestLess(sorted[i], d) })
	return i < len(sorted) && sorted[i] == d
}

func containsString(sorted []string, s string) bool {
	i := sort.SearchStrings(sorted, s)
	return i < len(sorted) && sorted[i] == s
}

func containsU64(sorted []uint64, v uint64) bool {
	i := sort.Search(len(sorted), func(i int) bool { return sorted[i] >= v })
	return i < len(sorted) && sorted[i] == v
}

// Matches reports whether the image plausibly embeds the signature's
// component — the prefilter's keep decision. It errs strictly on the side
// of keeping: degenerate signatures and cross-architecture comparisons
// match unconditionally, and the string/constant channels can only add
// matches, never remove one.
func (s *Signature) Matches(f *Fingerprint) bool {
	if s.Degenerate() || s.Arch != f.Arch {
		return true
	}
	for _, d := range s.Digests {
		if containsDigest(f.Digests, d) {
			return true
		}
	}
	for _, str := range s.Strings {
		if containsString(f.Strings, str) {
			return true
		}
	}
	for _, c := range s.Consts {
		if containsU64(f.Consts, c) {
			return true
		}
	}
	for _, fv := range f.Vecs {
		for _, rv := range s.Vecs {
			if Canberra(rv, fv) <= MatchRadius {
				return true
			}
		}
	}
	return false
}
