// Versioned binary codec for component fingerprints, in the PKANN001 mold:
// a magic tag, exhaustively validated sizes before any allocation, hard
// caps on every dimension, and trailing-byte rejection, so a fingerprint
// can later persist next to the delta-scan store and be loaded from
// untrusted bytes without surprises.
package compid

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/features"
)

// Magic identifies fingerprint blobs; the trailing digits version the
// layout.
const Magic = "PKCID001"

// Hard caps. A fingerprint summarizes one image, so these are generous by
// orders of magnitude; their job is to bound allocation on hostile input.
const (
	maxArchLen = 64
	maxBodies  = 1 << 20
	maxStrings = 1 << 20
	maxStrLen  = 1 << 12
	maxConsts  = 1 << 20
)

// Marshal encodes the fingerprint in the PKCID001 layout:
//
//	magic        8 bytes
//	archLen      u32, arch bytes
//	nBodies      u32
//	  digests    nBodies × 32 bytes, strictly ascending
//	  vectors    nBodies × dims × f64
//	nStrings     u32
//	  strings    (u32 length + bytes) each, strictly ascending
//	nConsts      u32
//	  consts     u64 each, strictly ascending
//
// All integers are little-endian. The canonical ordering Extract
// establishes is part of the format: Unmarshal rejects blobs that violate
// it, so equal fingerprints have equal encodings.
func (f *Fingerprint) Marshal() []byte {
	dims := len(features.Vector{})
	size := len(Magic) + 4 + len(f.Arch) + 4 + len(f.Digests)*(32+dims*8) + 4 + 4
	for _, s := range f.Strings {
		size += 4 + len(s)
	}
	size += 8 * len(f.Consts)
	out := make([]byte, 0, size)
	out = append(out, Magic...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(f.Arch)))
	out = append(out, f.Arch...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(f.Digests)))
	for _, d := range f.Digests {
		out = append(out, d[:]...)
	}
	for _, v := range f.Vecs {
		for _, x := range v {
			out = binary.LittleEndian.AppendUint64(out, math.Float64bits(x))
		}
	}
	out = binary.LittleEndian.AppendUint32(out, uint32(len(f.Strings)))
	for _, s := range f.Strings {
		out = binary.LittleEndian.AppendUint32(out, uint32(len(s)))
		out = append(out, s...)
	}
	out = binary.LittleEndian.AppendUint32(out, uint32(len(f.Consts)))
	for _, c := range f.Consts {
		out = binary.LittleEndian.AppendUint64(out, c)
	}
	return out
}

// reader is a bounds-checked cursor over an untrusted blob.
type reader struct {
	buf []byte
	off int
	err error
}

func (r *reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("compid: "+format, args...)
	}
}

func (r *reader) bytes(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.buf) {
		r.fail("truncated at offset %d (need %d bytes)", r.off, n)
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *reader) u32() uint32 {
	b := r.bytes(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *reader) u64() uint64 {
	b := r.bytes(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// f64 decodes one float and rejects NaN/Inf — a fingerprint's feature
// vectors are finite by construction, so non-finite values mean corruption.
func (r *reader) f64() float64 {
	v := math.Float64frombits(r.u64())
	if r.err == nil && (math.IsNaN(v) || math.IsInf(v, 0)) {
		r.fail("non-finite feature value at offset %d", r.off-8)
	}
	return v
}

// Unmarshal decodes a PKCID001 blob, validating every declared size against
// the remaining input and the hard caps before allocating, and rejecting
// non-canonical ordering and trailing bytes.
func Unmarshal(data []byte) (*Fingerprint, error) {
	r := &reader{buf: data}
	if got := r.bytes(len(Magic)); r.err != nil || string(got) != Magic {
		return nil, fmt.Errorf("compid: bad magic")
	}
	archLen := int(r.u32())
	if r.err == nil && (archLen < 1 || archLen > maxArchLen) {
		r.fail("arch length %d out of range [1, %d]", archLen, maxArchLen)
	}
	arch := r.bytes(archLen)
	if r.err != nil {
		return nil, r.err
	}
	fp := &Fingerprint{Arch: string(arch)}

	dims := len(features.Vector{})
	nBodies := int(r.u32())
	if r.err == nil && nBodies > maxBodies {
		r.fail("body count %d exceeds cap %d", nBodies, maxBodies)
	}
	if r.err == nil && len(r.buf)-r.off < nBodies*(32+dims*8) {
		r.fail("truncated: %d bodies declared, %d bytes remain", nBodies, len(r.buf)-r.off)
	}
	if r.err != nil {
		return nil, r.err
	}
	fp.Digests = make([][32]byte, nBodies)
	for i := range fp.Digests {
		copy(fp.Digests[i][:], r.bytes(32))
		if i > 0 && r.err == nil && !digestLess(fp.Digests[i-1], fp.Digests[i]) {
			r.fail("digests not strictly ascending at index %d", i)
		}
	}
	fp.Vecs = make([]features.Vector, nBodies)
	for i := range fp.Vecs {
		for j := range fp.Vecs[i] {
			fp.Vecs[i][j] = r.f64()
		}
	}

	nStrings := int(r.u32())
	if r.err == nil && nStrings > maxStrings {
		r.fail("string count %d exceeds cap %d", nStrings, maxStrings)
	}
	if r.err == nil && len(r.buf)-r.off < nStrings*4 {
		r.fail("truncated: %d strings declared, %d bytes remain", nStrings, len(r.buf)-r.off)
	}
	if r.err != nil {
		return nil, r.err
	}
	fp.Strings = make([]string, 0, nStrings)
	for i := 0; i < nStrings; i++ {
		n := int(r.u32())
		if r.err == nil && (n < 1 || n > maxStrLen) {
			r.fail("string %d length %d out of range [1, %d]", i, n, maxStrLen)
		}
		s := string(r.bytes(n))
		if i > 0 && r.err == nil && fp.Strings[i-1] >= s {
			r.fail("strings not strictly ascending at index %d", i)
		}
		if r.err != nil {
			return nil, r.err
		}
		fp.Strings = append(fp.Strings, s)
	}

	nConsts := int(r.u32())
	if r.err == nil && nConsts > maxConsts {
		r.fail("const count %d exceeds cap %d", nConsts, maxConsts)
	}
	if r.err == nil && len(r.buf)-r.off < nConsts*8 {
		r.fail("truncated: %d consts declared, %d bytes remain", nConsts, len(r.buf)-r.off)
	}
	if r.err != nil {
		return nil, r.err
	}
	fp.Consts = make([]uint64, nConsts)
	for i := range fp.Consts {
		fp.Consts[i] = r.u64()
		if i > 0 && r.err == nil && fp.Consts[i-1] >= fp.Consts[i] {
			r.fail("consts not strictly ascending at index %d", i)
		}
	}

	if r.err == nil && r.off != len(r.buf) {
		r.fail("%d trailing bytes", len(r.buf)-r.off)
	}
	if r.err != nil {
		return nil, r.err
	}
	return fp, nil
}
