package compid

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/binimg"
	"repro/internal/compiler"
	"repro/internal/disasm"
	"repro/internal/features"
	"repro/internal/isa"
	"repro/internal/minic"
)

// fingerprintImage runs the extraction pipeline the engine runs at Prepare
// time: disassemble, extract per-function features, fingerprint.
func fingerprintImage(t *testing.T, im *binimg.Image) *Fingerprint {
	t.Helper()
	dis, err := disasm.Disassemble(im)
	if err != nil {
		t.Fatal(err)
	}
	vecs := make([]features.Vector, len(dis.Funcs))
	for i, fn := range dis.Funcs {
		vecs[i] = features.Extract(dis, fn)
	}
	return Extract(im, dis, vecs)
}

func compileLib(t *testing.T, mod *minic.Module, arch *isa.Arch, lvl compiler.Level) *binimg.Image {
	t.Helper()
	im, err := compiler.Compile(mod, arch, lvl)
	if err != nil {
		t.Fatal(err)
	}
	return im
}

// checkCanonical asserts the ordering invariants the codec treats as part of
// the format: digests, strings and constants strictly ascending, vectors
// aligned with digests.
func checkCanonical(t *testing.T, fp *Fingerprint) {
	t.Helper()
	if fp.Arch == "" {
		t.Error("fingerprint has no arch")
	}
	if len(fp.Vecs) != len(fp.Digests) {
		t.Fatalf("vectors (%d) not aligned with digests (%d)", len(fp.Vecs), len(fp.Digests))
	}
	for i := 1; i < len(fp.Digests); i++ {
		if !digestLess(fp.Digests[i-1], fp.Digests[i]) {
			t.Errorf("digests not strictly ascending at %d", i)
		}
	}
	for i := 1; i < len(fp.Strings); i++ {
		if fp.Strings[i-1] >= fp.Strings[i] {
			t.Errorf("strings not strictly ascending at %d", i)
		}
	}
	for i := 1; i < len(fp.Consts); i++ {
		if fp.Consts[i-1] >= fp.Consts[i] {
			t.Errorf("consts not strictly ascending at %d", i)
		}
	}
}

// TestExtractDeterministic pins extraction determinism on every supported
// architecture: recompiling and re-fingerprinting the same source produces
// byte-identical encodings, and stripping the image (dropping symbol names)
// changes nothing — the fingerprint depends on image contents alone.
func TestExtractDeterministic(t *testing.T) {
	for _, arch := range isa.All() {
		mod := minic.GenLibrary(minic.GenConfig{Seed: 7, Name: "libfp", NumFuncs: 12})
		fp := fingerprintImage(t, compileLib(t, mod, arch, compiler.O2))
		checkCanonical(t, fp)
		if len(fp.Digests) == 0 || len(fp.Strings) == 0 {
			t.Fatalf("%s: fixture fingerprint is vacuous: %d digests, %d strings",
				arch.Name, len(fp.Digests), len(fp.Strings))
		}

		mod2 := minic.GenLibrary(minic.GenConfig{Seed: 7, Name: "libfp", NumFuncs: 12})
		again := fingerprintImage(t, compileLib(t, mod2, arch, compiler.O2))
		if !bytes.Equal(fp.Marshal(), again.Marshal()) {
			t.Errorf("%s: recompiled fingerprint differs", arch.Name)
		}

		stripped := fingerprintImage(t, compileLib(t, mod, arch, compiler.O2).Strip())
		if !bytes.Equal(fp.Marshal(), stripped.Marshal()) {
			t.Errorf("%s: stripped fingerprint differs from unstripped", arch.Name)
		}
	}
}

// TestBodyDigestLinkageInvariance pins the relocation mask: a function
// compiled alone and the same function linked into a module full of other
// functions (different call-target addresses, different interned-string
// layout) must digest identically — and the mask must actually be doing
// work, i.e. for at least some corpus function the RAW instruction streams
// differ between the two linkages.
func TestBodyDigestLinkageInvariance(t *testing.T) {
	arch := isa.XARM64
	rawDiffers := false
	for _, pair := range minic.CVEs() {
		for _, lvl := range []compiler.Level{compiler.O0, compiler.O2} {
			alone := compileLib(t, &minic.Module{
				Name:  "alone",
				Funcs: []*minic.Func{minic.CloneFunc(pair.Vulnerable)},
			}, arch, lvl)
			crowd := minic.GenLibrary(minic.GenConfig{Seed: 11, Name: "libcrowd", NumFuncs: 8})
			crowd.Funcs = append(crowd.Funcs, minic.CloneFunc(pair.Vulnerable))
			linked := compileLib(t, crowd, arch, lvl)

			dAlone, err := disasm.Disassemble(alone)
			if err != nil {
				t.Fatal(err)
			}
			dLinked, err := disasm.Disassemble(linked)
			if err != nil {
				t.Fatal(err)
			}
			if len(dAlone.Funcs) != 1 {
				t.Fatalf("%s: single-function module has %d functions", pair.ID, len(dAlone.Funcs))
			}
			var inCrowd *disasm.Function
			for _, fn := range dLinked.Funcs {
				if fn.Name == pair.Vulnerable.Name {
					inCrowd = fn
				}
			}
			if inCrowd == nil {
				t.Fatalf("%s: function %s not found in linked module", pair.ID, pair.Vulnerable.Name)
			}
			if BodyDigest(arch.Name, dAlone.Funcs[0]) != BodyDigest(arch.Name, inCrowd) {
				t.Errorf("%s at %s: digest differs between linkages", pair.ID, lvl)
			}
			if !reflect.DeepEqual(dAlone.Funcs[0].Instrs, inCrowd.Instrs) {
				rawDiffers = true
			}
		}
	}
	if !rawDiffers {
		t.Error("raw instruction streams never differed between linkages; the mask is untested")
	}
}

// TestBodyDigestEditSensitivity pins the flip side of the mask: a real code
// edit — each CVE's patch, including CVE-2018-9470's single-constant
// change — must change the digest. Masking may only hide linkage, never
// edits.
func TestBodyDigestEditSensitivity(t *testing.T) {
	arch := isa.XARM64
	for _, pair := range minic.CVEs() {
		digests := make([][32]byte, 2)
		for i, fn := range []*minic.Func{pair.Vulnerable, pair.Patched} {
			im := compileLib(t, &minic.Module{
				Name:  "edit",
				Funcs: []*minic.Func{minic.CloneFunc(fn)},
			}, arch, compiler.O0)
			dis, err := disasm.Disassemble(im)
			if err != nil {
				t.Fatal(err)
			}
			digests[i] = BodyDigest(arch.Name, dis.Funcs[0])
		}
		if digests[0] == digests[1] {
			t.Errorf("%s: vulnerable and patched bodies digest identically", pair.ID)
		}
	}
}

// TestRodataEditSensitivity pins the string channel: editing a byte inside a
// rodata string literal must change the fingerprint.
func TestRodataEditSensitivity(t *testing.T) {
	mod := minic.GenLibrary(minic.GenConfig{Seed: 7, Name: "libfp", NumFuncs: 12})
	im := compileLib(t, mod, isa.XARM64, compiler.O2)
	fp := fingerprintImage(t, im)
	if len(fp.Strings) == 0 {
		t.Fatal("fixture image interned no distinctive strings")
	}

	edited := *im
	edited.Rodata = append([]byte(nil), im.Rodata...)
	// Flip one printable byte inside the first distinctive literal.
	idx := bytes.Index(edited.Rodata, []byte(fp.Strings[0]))
	if idx < 0 {
		t.Fatalf("string %q not found in rodata", fp.Strings[0])
	}
	if edited.Rodata[idx] == 'z' {
		edited.Rodata[idx] = 'y'
	} else {
		edited.Rodata[idx] = 'z'
	}
	got := fingerprintImage(t, &edited)
	if reflect.DeepEqual(fp.Strings, got.Strings) {
		t.Error("rodata edit left the string channel unchanged")
	}
	if bytes.Equal(fp.Marshal(), got.Marshal()) {
		t.Error("rodata edit left the fingerprint encoding unchanged")
	}
}

// TestCanberraProperties pins the distance the keep ball is measured in:
// identity, symmetry, positivity on distinct vectors, and insensitivity to
// shared zeros.
func TestCanberraProperties(t *testing.T) {
	var a, b features.Vector
	for i := range a {
		a[i] = float64(i)
		b[i] = float64(i)
	}
	if d := Canberra(a, b); d != 0 {
		t.Errorf("Canberra(x, x) = %v, want 0", d)
	}
	b[3] = 7
	if d, e := Canberra(a, b), Canberra(b, a); d != e {
		t.Errorf("asymmetric: %v vs %v", d, e)
	}
	if d := Canberra(a, b); d <= 0 {
		t.Errorf("Canberra of distinct vectors = %v, want > 0", d)
	}
	// A single changed dimension moves the average by at most 1/dims.
	if d, max := Canberra(a, b), 1.0/float64(len(a)); d > max {
		t.Errorf("single-dimension distance %v exceeds 1/dims %v", d, max)
	}
}

// TestSignatureDerivation pins the signature builder across the whole CVE
// corpus and every architecture: derivation succeeds, is deterministic, and
// yields the canonical ordering.
func TestSignatureDerivation(t *testing.T) {
	for _, arch := range isa.All() {
		for _, pair := range minic.CVEs() {
			sig, err := DeriveSignature(pair, arch)
			if err != nil {
				t.Fatalf("%s on %s: %v", pair.ID, arch.Name, err)
			}
			if sig.CVE != pair.ID || sig.Arch != arch.Name {
				t.Fatalf("%s: signature labelled %s/%s", pair.ID, sig.CVE, sig.Arch)
			}
			// Two patch states at every level, deduped digests.
			if want := 2 * len(compiler.Levels()); len(sig.Vecs) != want {
				t.Errorf("%s on %s: %d variant vectors, want %d", pair.ID, arch.Name, len(sig.Vecs), want)
			}
			if len(sig.Digests) == 0 || sig.Spread < 0 {
				t.Errorf("%s on %s: vacuous signature (%d digests, spread %v)",
					pair.ID, arch.Name, len(sig.Digests), sig.Spread)
			}
			again, err := DeriveSignature(pair, arch)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(sig, again) {
				t.Errorf("%s on %s: derivation is not deterministic", pair.ID, arch.Name)
			}
		}
	}
	if _, err := SignatureFor("CVE-0000-0000", isa.XARM64); err == nil {
		t.Error("SignatureFor on an unknown CVE returned no error")
	}
	sig, err := SignatureFor("CVE-2018-9412", isa.XARM64)
	if err != nil || sig.CVE != "CVE-2018-9412" {
		t.Errorf("SignatureFor(CVE-2018-9412) = %v, %v", sig, err)
	}
}

// TestSignatureSelfRecall pins the property the whole prefilter rests on: a
// signature must match the fingerprint of any image that embeds its own
// reference build — both patch states, every optimization level. The digest
// channel makes this exact, so the test admits no tolerance.
func TestSignatureSelfRecall(t *testing.T) {
	arch := isa.XARM64
	for _, pair := range minic.CVEs() {
		sig, err := DeriveSignature(pair, arch)
		if err != nil {
			t.Fatal(err)
		}
		for _, fn := range []*minic.Func{pair.Vulnerable, pair.Patched} {
			for _, lvl := range compiler.Levels() {
				im := compileLib(t, &minic.Module{
					Name:  "host",
					Funcs: []*minic.Func{minic.CloneFunc(fn)},
				}, arch, lvl)
				if !sig.Matches(fingerprintImage(t, im.Strip())) {
					t.Errorf("%s: signature misses its own %s build of %s", pair.ID, lvl, fn.Name)
				}
			}
		}
	}
}

// TestMatchesChannels exercises each keep channel of the match rule in
// isolation on hand-built signatures and fingerprints.
func TestMatchesChannels(t *testing.T) {
	var near, far, ref features.Vector
	for i := range ref {
		ref[i] = 1
		near[i] = 1
		far[i] = 3
	}
	near[0] = 1.01 // one dimension nudged: Canberra ≈ 1e-4, inside the ball
	d := [32]byte{1}
	sig := &Signature{
		CVE:     "CVE-test",
		Arch:    "xarm64",
		Spread:  10 * DegenerateSpread,
		Digests: [][32]byte{d},
		Vecs:    []features.Vector{ref},
		Strings: []string{"libtest: magic tag"},
		Consts:  []uint64{0xdeadbeef0},
	}
	empty := func() *Fingerprint { return &Fingerprint{Arch: "xarm64", Vecs: []features.Vector{far}} }

	if sig.Matches(empty()) {
		t.Error("no shared channel, but matched")
	}
	cases := []struct {
		name string
		fp   *Fingerprint
	}{
		{"digest", func() *Fingerprint { f := empty(); f.Digests = [][32]byte{d}; return f }()},
		{"string", func() *Fingerprint { f := empty(); f.Strings = []string{"libtest: magic tag"}; return f }()},
		{"const", func() *Fingerprint { f := empty(); f.Consts = []uint64{0xdeadbeef0}; return f }()},
		{"feature ball", func() *Fingerprint { f := empty(); f.Vecs = append(f.Vecs, near); return f }()},
	}
	for _, c := range cases {
		if !sig.Matches(c.fp) {
			t.Errorf("%s channel did not match", c.name)
		}
	}

	other := empty()
	other.Arch = "x86"
	if !sig.Matches(other) {
		t.Error("cross-architecture comparison must keep the cell")
	}
	degen := *sig
	degen.Spread = DegenerateSpread / 2
	if !degen.Matches(empty()) {
		t.Error("degenerate signature must match everything")
	}
	if !degen.Degenerate() || sig.Degenerate() {
		t.Error("Degenerate() disagrees with the spread threshold")
	}
}
