package compid

import (
	"bytes"
	"encoding/binary"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/compiler"
	"repro/internal/features"
	"repro/internal/isa"
	"repro/internal/minic"
)

func le32(n uint32) []byte { return binary.LittleEndian.AppendUint32(nil, n) }
func le64(n uint64) []byte { return binary.LittleEndian.AppendUint64(nil, n) }

// blob builds a PKCID001 byte string from parts, for hand-crafting both
// valid and corrupt encodings.
func blob(parts ...[]byte) []byte {
	out := []byte(Magic)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// minimalBlob is the smallest valid fingerprint: an arch and three empty
// sections.
func minimalBlob() []byte {
	return blob(le32(1), []byte("a"), le32(0), le32(0), le32(0))
}

// TestCodecRoundTrip pins Marshal/Unmarshal as exact inverses on real
// fingerprints from every architecture, and the canonical-encoding property:
// re-marshalling a decoded blob reproduces it byte for byte.
func TestCodecRoundTrip(t *testing.T) {
	for _, arch := range isa.All() {
		mod := minic.GenLibrary(minic.GenConfig{Seed: 19, Name: "libcodec", NumFuncs: 10})
		fp := fingerprintImage(t, compileLib(t, mod, arch, compiler.O1))
		enc := fp.Marshal()
		dec, err := Unmarshal(enc)
		if err != nil {
			t.Fatalf("%s: %v", arch.Name, err)
		}
		if !reflect.DeepEqual(fp, dec) {
			t.Errorf("%s: decoded fingerprint differs from original", arch.Name)
		}
		if !bytes.Equal(dec.Marshal(), enc) {
			t.Errorf("%s: re-encoding is not canonical", arch.Name)
		}
	}
	dec, err := Unmarshal(minimalBlob())
	if err != nil {
		t.Fatal(err)
	}
	if dec.Arch != "a" || len(dec.Digests) != 0 || len(dec.Strings) != 0 || len(dec.Consts) != 0 {
		t.Errorf("minimal blob decoded to %+v", dec)
	}
}

// TestCodecRejects pins the validation surface: every malformed class of
// input is rejected with a descriptive error, never a panic or a silent
// partial decode.
func TestCodecRejects(t *testing.T) {
	dims := len(features.Vector{})
	var d0, d1 [32]byte
	d1[0] = 1
	zeroVec := make([]byte, dims*8)

	cases := []struct {
		name string
		data []byte
		want string // substring of the error
	}{
		{"empty", nil, "bad magic"},
		{"bad magic", []byte("PKANN001........"), "bad magic"},
		{"arch length zero", blob(le32(0)), "arch length"},
		{"arch length over cap", blob(le32(maxArchLen + 1)), "arch length"},
		{"arch truncated", blob(le32(4), []byte("ab")), "truncated"},
		{"body count over cap", blob(le32(1), []byte("a"), le32(maxBodies+1)), "exceeds cap"},
		{"bodies truncated", blob(le32(1), []byte("a"), le32(2), d0[:]), "truncated"},
		{"digests unordered", blob(le32(1), []byte("a"),
			le32(2), d1[:], d0[:], zeroVec, zeroVec,
			le32(0), le32(0)), "not strictly ascending"},
		{"digests duplicated", blob(le32(1), []byte("a"),
			le32(2), d0[:], d0[:], zeroVec, zeroVec,
			le32(0), le32(0)), "not strictly ascending"},
		{"non-finite vector", blob(le32(1), []byte("a"),
			le32(1), d0[:], bytes.Repeat(le64(math.Float64bits(math.NaN())), dims),
			le32(0), le32(0)), "non-finite"},
		{"string count over cap", blob(le32(1), []byte("a"), le32(0), le32(maxStrings+1)), "exceeds cap"},
		{"string length zero", blob(le32(1), []byte("a"), le32(0),
			le32(1), le32(0), le32(0)), "length 0"},
		{"string length over cap", blob(le32(1), []byte("a"), le32(0),
			le32(1), le32(maxStrLen+1)), "out of range"},
		{"strings unordered", blob(le32(1), []byte("a"), le32(0),
			le32(2), le32(1), []byte("b"), le32(1), []byte("a"), le32(0)), "not strictly ascending"},
		{"const count over cap", blob(le32(1), []byte("a"), le32(0), le32(0), le32(maxConsts+1)), "exceeds cap"},
		{"consts truncated", blob(le32(1), []byte("a"), le32(0), le32(0), le32(2), le64(7)), "truncated"},
		{"consts unordered", blob(le32(1), []byte("a"), le32(0), le32(0),
			le32(2), le64(9), le64(7)), "not strictly ascending"},
		{"trailing bytes", append(minimalBlob(), 0), "trailing"},
	}
	for _, c := range cases {
		fp, err := Unmarshal(c.data)
		if err == nil {
			t.Errorf("%s: accepted as %+v", c.name, fp)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}

	// Every strict prefix of a valid blob must be rejected, not panic.
	mod := minic.GenLibrary(minic.GenConfig{Seed: 19, Name: "libcodec", NumFuncs: 4})
	enc := fingerprintImage(t, compileLib(t, mod, isa.X86, compiler.O0)).Marshal()
	for i := 0; i < len(enc); i++ {
		if _, err := Unmarshal(enc[:i]); err == nil {
			t.Fatalf("prefix of %d/%d bytes accepted", i, len(enc))
		}
	}
}

// FuzzFingerprintDecode fuzzes the untrusted-input decoder. Any input the
// decoder accepts must re-encode to exactly the input bytes (the format is
// canonical) and survive a second decode to an equal value; everything else
// must be rejected without panicking.
func FuzzFingerprintDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(Magic))
	f.Add(minimalBlob())
	mod := minic.GenLibrary(minic.GenConfig{Seed: 19, Name: "libfuzz", NumFuncs: 3})
	for _, arch := range []*isa.Arch{isa.XARM64, isa.X86} {
		im, err := compiler.Compile(mod, arch, compiler.O1)
		if err != nil {
			f.Fatal(err)
		}
		fp := &Fingerprint{Arch: im.Arch, Strings: rodataStrings(im.Rodata)}
		f.Add(fp.Marshal())
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		fp, err := Unmarshal(data)
		if err != nil {
			return
		}
		re := fp.Marshal()
		if !bytes.Equal(re, data) {
			t.Fatalf("accepted input is not canonical: %d bytes in, %d bytes re-encoded", len(data), len(re))
		}
		fp2, err := Unmarshal(re)
		if err != nil {
			t.Fatalf("re-encoded blob rejected: %v", err)
		}
		if !reflect.DeepEqual(fp, fp2) {
			t.Fatal("second decode differs from first")
		}
	})
}
