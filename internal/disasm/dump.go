package disasm

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/isa"
	"repro/internal/minic"
)

// Dump writes an objdump-style listing of the function: one instruction
// per line with its address, block boundaries marked, branch targets
// resolved to local labels, and import calls resolved to library names.
func (d *Disassembly) Dump(w io.Writer, fn *Function) {
	name := fn.Name
	if name == "" {
		name = fmt.Sprintf("sub_%x", fn.Addr)
	}
	fmt.Fprintf(w, "%08x <%s>: %d instructions, %d blocks, %d bytes\n",
		fn.Addr, name, len(fn.Instrs), len(fn.Blocks), fn.Size)

	blockStart := make(map[int]int, len(fn.Blocks)) // first instr idx -> block idx
	for bi := range fn.Blocks {
		blockStart[fn.Blocks[bi].First] = bi
	}
	for i, in := range fn.Instrs {
		if bi, ok := blockStart[i]; ok {
			b := &fn.Blocks[bi]
			var succs []string
			for _, s := range b.Succs {
				succs = append(succs, fmt.Sprintf("bb%d", s))
			}
			kind := ""
			switch b.Kind {
			case BlockRet:
				kind = " ret"
			case BlockError:
				kind = " !error"
			}
			fmt.Fprintf(w, "bb%d:%s -> [%s]\n", bi, kind, strings.Join(succs, " "))
		}
		fmt.Fprintf(w, "  %08x:  %s\n", fn.Addr+uint64(in.Offset), d.format(fn, in))
	}
}

// format renders one instruction, resolving targets symbolically.
func (d *Disassembly) format(fn *Function, in DInstr) string {
	switch {
	case in.Op.IsBranch():
		if idx, ok := fn.IndexAtOffset(int(in.Imm)); ok {
			for bi := range fn.Blocks {
				if fn.Blocks[bi].First == idx {
					s := in.Instr
					base := s.String()
					return fmt.Sprintf("%s  ; -> bb%d", base, bi)
				}
			}
		}
		return in.Instr.String()
	case in.Op == isa.Call:
		if callee, ok := d.FuncAt(uint64(in.Imm)); ok {
			name := callee.Name
			if name == "" {
				name = fmt.Sprintf("sub_%x", callee.Addr)
			}
			return fmt.Sprintf("call <%s>", name)
		}
		return in.Instr.String()
	case in.Op == isa.CallI:
		if b, ok := minic.BuiltinByIndex(int(in.Imm)); ok {
			return fmt.Sprintf("calli <%s@plt>", b.Name)
		}
		return in.Instr.String()
	default:
		return in.Instr.String()
	}
}

// DumpAll writes the listing for every function in the image.
func (d *Disassembly) DumpAll(w io.Writer) {
	for i, fn := range d.Funcs {
		if i > 0 {
			fmt.Fprintln(w)
		}
		d.Dump(w, fn)
	}
}
