package disasm

import (
	"testing"

	"repro/internal/binimg"
	"repro/internal/compiler"
	"repro/internal/isa"
	"repro/internal/minic"
)

// FuzzDisassemble hardens the stripped-image recovery path against
// arbitrary text bytes: the first input byte selects the architecture and
// the rest becomes the .text section of a stripped image. Disassembly must
// never panic, and whatever it recovers must satisfy the structural
// invariants the rest of the pipeline relies on: functions sorted and
// non-overlapping inside the text mapping, instruction offsets strictly
// increasing and in bounds, CFG block ranges and successor indices valid.
func FuzzDisassemble(f *testing.F) {
	// Real compiled prologues per architecture give the mutator a running
	// start; testdata/fuzz holds further checked-in seeds.
	mod := minic.GenLibrary(minic.GenConfig{Seed: 7, Name: "libfuzz", NumFuncs: 4})
	for ai, arch := range isa.All() {
		im, err := compiler.Compile(mod, arch, compiler.O2)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(append([]byte{byte(ai)}, im.Text...))
	}
	f.Add([]byte{0})
	f.Add([]byte{3, 0xff, 0x00, 0x13, 0x37})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		if len(data) > 1<<12 {
			data = data[:1<<12]
		}
		archs := isa.All()
		arch := archs[int(data[0])%len(archs)]
		im := &binimg.Image{
			Arch:     arch.Name,
			LibName:  "libfuzz",
			OptLevel: "O2",
			Text:     data[1:],
			Stripped: true,
		}
		dis, err := Disassemble(im)
		if err != nil {
			return
		}
		var prevEnd uint64 = binimg.TextBase
		for fi, fn := range dis.Funcs {
			if fn.Addr < prevEnd {
				t.Fatalf("func %d at %#x overlaps previous end %#x", fi, fn.Addr, prevEnd)
			}
			end := fn.Addr + fn.Size
			if end > binimg.TextBase+uint64(len(im.Text)) {
				t.Fatalf("func %d spans [%#x, %#x) past text end", fi, fn.Addr, end)
			}
			prevEnd = end
			if got, ok := dis.FuncAt(fn.Addr); !ok || got != fn {
				t.Fatalf("FuncAt(%#x) does not resolve func %d", fn.Addr, fi)
			}
			off := -1
			for ii, in := range fn.Instrs {
				if in.Offset <= off {
					t.Fatalf("func %d instr %d: offset %d not increasing past %d", fi, ii, in.Offset, off)
				}
				off = in.Offset
				if in.Size <= 0 || uint64(in.Offset+in.Size) > fn.Size {
					t.Fatalf("func %d instr %d: span [%d, %d) outside size %d",
						fi, ii, in.Offset, in.Offset+in.Size, fn.Size)
				}
				if idx, ok := fn.IndexAtOffset(in.Offset); !ok || idx != ii {
					t.Fatalf("func %d: IndexAtOffset(%d) = %d, %v; want %d", fi, in.Offset, idx, ok, ii)
				}
			}
			for bi, b := range fn.Blocks {
				if b.First < 0 || b.Last < b.First || b.Last >= len(fn.Instrs) {
					t.Fatalf("func %d block %d: range [%d, %d] invalid for %d instrs",
						fi, bi, b.First, b.Last, len(fn.Instrs))
				}
				if bi > 0 && b.First != fn.Blocks[bi-1].Last+1 {
					t.Fatalf("func %d block %d: starts at %d, previous ended at %d",
						fi, bi, b.First, fn.Blocks[bi-1].Last)
				}
				for _, s := range b.Succs {
					if s < 0 || s >= len(fn.Blocks) {
						t.Fatalf("func %d block %d: successor %d out of %d blocks",
							fi, bi, s, len(fn.Blocks))
					}
				}
			}
		}
	})
}
