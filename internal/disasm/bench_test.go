package disasm

import (
	"testing"

	"repro/internal/compiler"
	"repro/internal/isa"
	"repro/internal/minic"
)

// BenchmarkDisassembleStripped measures boundary recovery + CFG
// construction on a stripped image (the scanner's per-image setup cost).
func BenchmarkDisassembleStripped(b *testing.B) {
	mod := minic.GenLibrary(minic.GenConfig{Seed: 13, Name: "libbench", NumFuncs: 40})
	for _, arch := range isa.All() {
		arch := arch
		b.Run(arch.Name, func(b *testing.B) {
			im, err := compiler.Compile(mod, arch, compiler.O2)
			if err != nil {
				b.Fatal(err)
			}
			stripped := im.Strip()
			b.SetBytes(int64(len(stripped.Text)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Disassemble(stripped); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
