//go:build ignore

// Regenerates the crafted entries of the FuzzDisassemble seed corpus in
// testdata/fuzz/FuzzDisassemble. Hash-named entries alongside them were
// found by the fuzzer itself and are not rewritten here. Run from this
// directory:
//
//	go run gen_corpus.go
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/isa"
)

func main() {
	dir := filepath.Join("testdata", "fuzz", "FuzzDisassemble")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	for name, data := range seeds() {
		var buf bytes.Buffer
		buf.WriteString("go test fuzz v1\n")
		fmt.Fprintf(&buf, "[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(dir, name), buf.Bytes(), 0o644); err != nil {
			log.Fatal(err)
		}
	}
}

// seeds returns the crafted corpus: adversarial shapes the compiled-image
// seeds added by f.Add never produce. The first byte selects the
// architecture, matching the fuzz target's input scheme.
func seeds() map[string][]byte {
	out := make(map[string][]byte)
	for ai, arch := range isa.All() {
		p := arch.PrologueBytes()

		// Prologue-dense text: every candidate boundary fails validation and
		// merges forward. Regression input for the quadratic span
		// re-validation findBoundaries used to hit.
		dense := []byte{byte(ai)}
		for len(dense) < 1024 {
			dense = append(dense, p...)
		}
		dense = append(dense, 0x00, 0xff)
		out["prologue-dense-"+arch.Name] = dense

		// A prologue whose padding run is interrupted by junk: exercises the
		// padding-scan rejection path.
		junk := append([]byte{byte(ai)}, p...)
		junk = append(junk, make([]byte, 16)...)
		junk = append(junk, 0xff)
		out["padding-then-junk-"+arch.Name] = junk

		// A prologue followed by a truncated final instruction: the span
		// decodes cleanly until the text ends mid-instruction.
		trunc := append([]byte{byte(ai)}, p...)
		trunc = append(trunc, p[:len(p)-1]...)
		out["truncated-tail-"+arch.Name] = trunc
	}
	return out
}
