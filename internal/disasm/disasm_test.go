package disasm

import (
	"strings"
	"testing"

	"repro/internal/binimg"
	"repro/internal/compiler"
	"repro/internal/isa"
	"repro/internal/minic"
)

func compile(t *testing.T, mod *minic.Module, arch *isa.Arch, lvl compiler.Level) *binimg.Image {
	t.Helper()
	im, err := compiler.Compile(mod, arch, lvl)
	if err != nil {
		t.Fatal(err)
	}
	return im
}

func testModule() *minic.Module {
	return minic.GenLibrary(minic.GenConfig{Seed: 404, Name: "libdis", NumFuncs: 15})
}

func TestDisassembleWithSymbols(t *testing.T) {
	mod := testModule()
	for _, arch := range isa.All() {
		im := compile(t, mod, arch, compiler.O2)
		dis, err := Disassemble(im)
		if err != nil {
			t.Fatalf("%s: %v", arch.Name, err)
		}
		if len(dis.Funcs) != len(mod.Funcs) {
			t.Fatalf("%s: %d funcs, want %d", arch.Name, len(dis.Funcs), len(mod.Funcs))
		}
		for _, f := range dis.Funcs {
			if len(f.Instrs) == 0 || len(f.Blocks) == 0 {
				t.Errorf("%s %s: empty function", arch.Name, f.Name)
			}
		}
	}
}

func TestBoundaryRecoveryOnStrippedImages(t *testing.T) {
	mod := testModule()
	for _, arch := range isa.All() {
		for _, lvl := range compiler.Levels() {
			im := compile(t, mod, arch, lvl)
			dis, err := Disassemble(im.Strip())
			if err != nil {
				t.Fatalf("%s/%s: %v", arch.Name, lvl, err)
			}
			// Every true function start must be recovered with the right size.
			found := make(map[uint64]uint64, len(dis.Funcs))
			for _, f := range dis.Funcs {
				found[f.Addr] = f.Size
			}
			for _, s := range im.Symbols {
				size, ok := found[s.Addr]
				if !ok {
					t.Errorf("%s/%s: missed function at %#x (%s)", arch.Name, lvl, s.Addr, s.Name)
					continue
				}
				if size != s.Size {
					t.Errorf("%s/%s %s: recovered size %d, want %d", arch.Name, lvl, s.Name, size, s.Size)
				}
			}
			// Low false-positive rate: at most one spurious boundary.
			if len(dis.Funcs) > len(im.Symbols)+1 {
				t.Errorf("%s/%s: %d recovered functions vs %d real",
					arch.Name, lvl, len(dis.Funcs), len(im.Symbols))
			}
		}
	}
}

func TestCFGInvariants(t *testing.T) {
	mod := testModule()
	for _, arch := range isa.All() {
		im := compile(t, mod, arch, compiler.O2)
		dis, err := Disassemble(im)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range dis.Funcs {
			covered := 0
			for bi := range f.Blocks {
				b := &f.Blocks[bi]
				if b.First > b.Last || b.Last >= len(f.Instrs) {
					t.Fatalf("%s: bad block range [%d,%d]", f.Name, b.First, b.Last)
				}
				covered += b.NumInstrs()
				for _, s := range b.Succs {
					if s < 0 || s >= len(f.Blocks) {
						t.Errorf("%s: successor %d out of range", f.Name, s)
					}
				}
				// Branches only terminate blocks.
				for i := b.First; i < b.Last; i++ {
					if f.Instrs[i].Op.IsBranch() || f.Instrs[i].Op == isa.Ret {
						t.Errorf("%s: control transfer mid-block at instr %d", f.Name, i)
					}
				}
				if b.Kind == BlockRet && len(b.Succs) != 0 {
					t.Errorf("%s: return block with successors", f.Name)
				}
			}
			if covered != len(f.Instrs) {
				t.Errorf("%s: blocks cover %d of %d instructions", f.Name, covered, len(f.Instrs))
			}
			// Entry block exists and at least one return block for compiled code.
			hasRet := false
			for bi := range f.Blocks {
				if f.Blocks[bi].Kind == BlockRet {
					hasRet = true
				}
			}
			if !hasRet {
				t.Errorf("%s: no return block", f.Name)
			}
		}
	}
}

func TestLocalSizeRecovered(t *testing.T) {
	mod := &minic.Module{Name: "t", Funcs: []*minic.Func{
		minic.NewFunc("f", []string{"a", "b"},
			minic.Set("x", minic.Add(minic.V("a"), minic.V("b"))),
			minic.Set("y", minic.Mul(minic.V("x"), minic.I(2))),
			minic.Ret(minic.V("y"))),
	}}
	im := compile(t, mod, isa.AMD64, compiler.O0)
	dis, err := Disassemble(im)
	if err != nil {
		t.Fatal(err)
	}
	f, ok := dis.Lookup("f")
	if !ok {
		t.Fatal("no f")
	}
	// 4 variables (a, b, x, y) -> 32 bytes rounded to 16-byte alignment.
	if got := f.LocalSize(); got != 32 {
		t.Errorf("LocalSize = %d, want 32", got)
	}
}

func TestCalleesAndImports(t *testing.T) {
	mod := &minic.Module{Name: "t", Funcs: []*minic.Func{
		minic.NewFunc("leaf", []string{"a"}, minic.Ret(minic.V("a"))),
		minic.NewFunc("f", []string{"p"},
			minic.Set("x", minic.Call("leaf", minic.I(1))),
			minic.Set("y", minic.Call("strlen", minic.V("p"))),
			minic.Set("z", minic.Call("abs", minic.V("x"))),
			minic.Ret(minic.Add(minic.V("y"), minic.V("z")))),
	}}
	im := compile(t, mod, isa.XARM64, compiler.O0)
	dis, err := Disassemble(im)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := dis.Lookup("f")
	leaf, _ := dis.Lookup("leaf")
	callees := f.CalleeAddrs()
	if len(callees) != 1 || callees[0] != leaf.Addr {
		t.Errorf("CalleeAddrs = %#x, want [%#x]", callees, leaf.Addr)
	}
	imps := f.ImportIdxs()
	if len(imps) != 2 {
		t.Errorf("ImportIdxs = %v, want 2 entries", imps)
	}
	if len(leaf.CalleeAddrs()) != 0 || len(leaf.ImportIdxs()) != 0 {
		t.Error("leaf should have no callees or imports")
	}
}

func TestDisassembleUnknownArch(t *testing.T) {
	if _, err := Disassemble(&binimg.Image{Arch: "mips"}); err == nil {
		t.Error("want error for unknown arch")
	}
}

func TestDumpListing(t *testing.T) {
	mod := &minic.Module{Name: "t", Funcs: []*minic.Func{
		minic.NewFunc("leaf", []string{"a"}, minic.Ret(minic.V("a"))),
		minic.NewFunc("f", []string{"p", "n"},
			minic.Loop(minic.Gt(minic.V("n"), minic.I(0)),
				minic.Set("s", minic.Add(minic.V("s"), minic.Call("leaf", minic.V("n")))),
				minic.Set("n", minic.Sub(minic.V("n"), minic.I(1)))),
			minic.Do(minic.Call("write_log", minic.V("s"))),
			minic.Ret(minic.V("s"))),
	}}
	im := compile(t, mod, isa.AMD64, compiler.O1)
	dis, err := Disassemble(im)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	dis.DumpAll(&buf)
	out := buf.String()
	for _, want := range []string{
		"<f>", "<leaf>", // symbol headers
		"call <leaf>",           // resolved local call
		"calli <write_log@plt>", // resolved import
		"bb0:",                  // block markers
		"-> bb",                 // branch annotations or successor lists
	} {
		if !strings.Contains(out, want) {
			t.Errorf("listing missing %q:\n%s", want, out)
		}
	}
	// A stripped image dumps with synthetic names.
	sdis, err := Disassemble(im.Strip())
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	sdis.DumpAll(&buf)
	if !strings.Contains(buf.String(), "sub_") {
		t.Error("stripped listing lacks synthetic sub_ names")
	}
}
