// Package disasm recovers functions and control-flow graphs from binary
// images. For stripped images it implements the "robust heuristic
// technique" the paper delegates to IDA Pro: function boundaries are found
// by scanning for the architecture's canonical prologue byte pattern and
// validating each candidate by decoding the region it would span; candidates
// that do not decode cleanly are merged back into their predecessor (they
// were data bytes — immediates — masquerading as prologues).
package disasm

import (
	"bytes"
	"fmt"

	"repro/internal/binimg"
	"repro/internal/isa"
)

// BlockKind classifies a basic block, mirroring the fcb_* static features
// of the paper's Table I.
type BlockKind int

// Block kinds.
const (
	BlockNormal BlockKind = iota + 1
	BlockRet              // ends in a return
	BlockError            // execution passes the function end
)

// DInstr is a decoded instruction with its position inside the function.
type DInstr struct {
	isa.Instr

	Offset int // byte offset from function start
	Size   int
}

// Block is one basic block.
type Block struct {
	Index       int
	First, Last int // instruction index range, inclusive
	Succs       []int
	Kind        BlockKind
}

// NumInstrs returns the instruction count of the block.
func (b *Block) NumInstrs() int { return b.Last - b.First + 1 }

// Function is one disassembled function with its CFG.
type Function struct {
	Name   string // empty for stripped images
	Addr   uint64
	Size   uint64
	Instrs []DInstr
	Blocks []Block

	offToIdx map[int]int
}

// IndexAtOffset resolves a branch byte offset to an instruction index.
func (f *Function) IndexAtOffset(off int) (int, bool) {
	i, ok := f.offToIdx[off]
	return i, ok
}

// ByteSize returns the total size of basic block b in bytes.
func (f *Function) ByteSize(b *Block) int {
	last := f.Instrs[b.Last]
	return last.Offset + last.Size - f.Instrs[b.First].Offset
}

// LocalSize reports the stack frame size the function allocates for locals
// (the size_local static feature), recovered from the AddSp adjustment in
// the prologue.
func (f *Function) LocalSize() int64 {
	for i, in := range f.Instrs {
		if i > 4 {
			break
		}
		if in.Op == isa.AddSp && in.Imm < 0 {
			return -in.Imm
		}
	}
	return 0
}

// Disassembly is a fully-disassembled image.
type Disassembly struct {
	Image  *binimg.Image
	Arch   *isa.Arch
	Funcs  []*Function
	byAddr map[uint64]*Function
}

// FuncAt returns the function starting at the given address.
func (d *Disassembly) FuncAt(addr uint64) (*Function, bool) {
	f, ok := d.byAddr[addr]
	return f, ok
}

// Lookup returns the function with the given symbol name (only meaningful
// for unstripped images).
func (d *Disassembly) Lookup(name string) (*Function, bool) {
	for _, f := range d.Funcs {
		if f.Name == name {
			return f, true
		}
	}
	return nil, false
}

// Disassemble decodes every function in the image and builds CFGs. If the
// image retains symbols they define the boundaries; otherwise the prologue
// heuristic recovers them.
func Disassemble(im *binimg.Image) (*Disassembly, error) {
	arch, err := isa.ByName(im.Arch)
	if err != nil {
		return nil, err
	}
	d := &Disassembly{Image: im, Arch: arch, byAddr: make(map[uint64]*Function)}
	var bounds []boundary
	if len(im.Symbols) > 0 {
		for _, s := range im.Symbols {
			bounds = append(bounds, boundary{name: s.Name, start: int(s.Addr - binimg.TextBase), end: int(s.Addr - binimg.TextBase + s.Size)})
		}
	} else {
		bounds = findBoundaries(arch, im.Text)
	}
	for _, b := range bounds {
		fn, err := decodeFunction(arch, im.Text, b)
		if err != nil {
			return nil, fmt.Errorf("disasm: function at %#x: %w", binimg.TextBase+uint64(b.start), err)
		}
		buildCFG(fn)
		d.Funcs = append(d.Funcs, fn)
		d.byAddr[fn.Addr] = fn
	}
	return d, nil
}

type boundary struct {
	name       string
	start, end int
}

// findBoundaries scans for prologue byte patterns and validates candidates
// by decoding. Invalid candidates (prologue look-alikes inside immediates)
// are merged into the preceding function.
//
// Validation is incremental: each candidate's instruction stream is decoded
// at most once no matter how many merge steps extend its end, keeping
// recovery linear in the text size. Re-decoding the span per merge step is
// quadratic on prologue-dense inputs, which adversarial (fuzzed) images hit
// reliably even if compiled code never does.
func findBoundaries(arch *isa.Arch, text []byte) []boundary {
	pattern := arch.PrologueBytes()
	var starts []int
	for off := 0; off+len(pattern) <= len(text); {
		if bytes.Equal(text[off:off+len(pattern)], pattern) {
			starts = append(starts, off)
			off += len(pattern)
			continue
		}
		off++
	}
	// nonzero[i] counts nonzero bytes in text[:i], so padding runs can be
	// checked in O(1) during candidate merging.
	nonzero := make([]int, len(text)+1)
	for i, b := range text {
		nonzero[i+1] = nonzero[i]
		if b != 0 {
			nonzero[i+1]++
		}
	}
	var out []boundary
	i := 0
	for i < len(starts) {
		start := starts[i]
		sp := spanDecoder{arch: arch, body: text[start:], nonzero: nonzero[start:], zeroAt: -1}
		j := i + 1
		for {
			end := len(text)
			if j < len(starts) {
				end = starts[j]
			}
			if bodyEnd, ok := sp.validTo(end - start); ok {
				out = append(out, boundary{start: start, end: start + bodyEnd})
				break
			}
			if j >= len(starts) {
				// Even the final stretch fails; skip this candidate.
				break
			}
			j++ // merge: the next "prologue" was data
		}
		i = j
	}
	return out
}

// spanDecoder incrementally validates candidate function spans. Opcode
// bytes are never zero, so a zero byte at an instruction boundary marks the
// start of inter-function padding; a span is well formed when it is a
// nonempty instruction stream followed only by padding. Because instruction
// lengths are fully determined by their leading bytes (truncation is always
// a decode error, never a shorter instruction), greedily decoding the
// unbounded text visits exactly the boundaries a decode bounded to any span
// end would, so successive validTo queries can share one decode pass.
type spanDecoder struct {
	arch    *isa.Arch
	body    []byte
	nonzero []int // nonzero[i] = nonzero bytes in body[:i]
	pos     int   // next undecoded instruction boundary
	zeroAt  int   // boundary where padding stopped the decode, -1 if none
	failed  bool  // body[pos:] does not decode
}

// validTo reports whether body[:end] is a well-formed span and returns the
// byte length of its instruction stream. end must not decrease across calls.
func (s *spanDecoder) validTo(end int) (int, bool) {
	for !s.failed && s.zeroAt < 0 && s.pos < end {
		if s.body[s.pos] == 0 {
			s.zeroAt = s.pos
			break
		}
		_, n, err := s.arch.Decode(s.body[s.pos:])
		if err != nil {
			s.failed = true
			break
		}
		s.pos += n
	}
	switch {
	case s.zeroAt >= 0:
		// Padding from zeroAt on: the remainder up to end must stay zero,
		// and the instruction stream must be nonempty.
		return s.zeroAt, s.zeroAt > 0 && s.nonzero[end] == s.nonzero[s.zeroAt]
	case s.failed:
		// The undecodable byte sits before end, and a decode bounded to end
		// fails on it the same way (shorter slices only truncate harder).
		return 0, false
	case s.pos == end:
		return end, end > 0
	default:
		// end falls strictly inside an instruction: a bounded decode would
		// see it truncated.
		return 0, false
	}
}

func decodeFunction(arch *isa.Arch, text []byte, b boundary) (*Function, error) {
	if b.start < 0 || b.end > len(text) || b.start >= b.end {
		return nil, fmt.Errorf("bad boundary [%d,%d) in %d bytes of text", b.start, b.end, len(text))
	}
	body := text[b.start:b.end]
	end := len(body)
	fn := &Function{
		Name:     b.name,
		Addr:     binimg.TextBase + uint64(b.start),
		Size:     uint64(end),
		offToIdx: make(map[int]int),
	}
	pos := 0
	for pos < end {
		in, n, err := arch.Decode(body[pos:])
		if err != nil {
			return nil, err
		}
		fn.offToIdx[pos] = len(fn.Instrs)
		fn.Instrs = append(fn.Instrs, DInstr{Instr: in, Offset: pos, Size: n})
		pos += n
	}
	return fn, nil
}

// buildCFG splits the instruction stream into basic blocks and wires
// successor edges.
func buildCFG(fn *Function) {
	n := len(fn.Instrs)
	if n == 0 {
		return
	}
	leader := make([]bool, n)
	leader[0] = true
	for i, in := range fn.Instrs {
		if in.Op.IsBranch() {
			if t, ok := fn.IndexAtOffset(int(in.Imm)); ok {
				leader[t] = true
			}
			if i+1 < n {
				leader[i+1] = true
			}
		}
		if in.Op == isa.Ret && i+1 < n {
			leader[i+1] = true
		}
	}
	// Carve blocks.
	startIdx := make(map[int]int) // leader instruction index -> block index
	for i := 0; i < n; {
		j := i + 1
		for j < n && !leader[j] {
			j++
		}
		b := Block{Index: len(fn.Blocks), First: i, Last: j - 1}
		startIdx[i] = b.Index
		fn.Blocks = append(fn.Blocks, b)
		i = j
	}
	// Wire successors and classify.
	for bi := range fn.Blocks {
		b := &fn.Blocks[bi]
		last := fn.Instrs[b.Last]
		switch {
		case last.Op == isa.Ret:
			b.Kind = BlockRet
		case last.Op == isa.Jmp:
			b.Kind = BlockNormal
			if t, ok := fn.IndexAtOffset(int(last.Imm)); ok {
				b.Succs = append(b.Succs, startIdx[t])
			}
		case last.Op.IsCondBranch():
			b.Kind = BlockNormal
			if t, ok := fn.IndexAtOffset(int(last.Imm)); ok {
				b.Succs = append(b.Succs, startIdx[t])
			}
			if b.Last+1 < n {
				b.Succs = append(b.Succs, startIdx[b.Last+1])
			} else {
				b.Kind = BlockError
			}
		default:
			if b.Last+1 < n {
				b.Kind = BlockNormal
				b.Succs = append(b.Succs, startIdx[b.Last+1])
			} else {
				// Execution runs off the end of the function.
				b.Kind = BlockError
			}
		}
	}
}

// NumEdges counts CFG edges.
func (f *Function) NumEdges() int {
	n := 0
	for i := range f.Blocks {
		n += len(f.Blocks[i].Succs)
	}
	return n
}

// CalleeAddrs returns the distinct intra-binary call targets.
func (f *Function) CalleeAddrs() []uint64 {
	seen := make(map[uint64]bool)
	var out []uint64
	for _, in := range f.Instrs {
		if in.Op == isa.Call && !seen[uint64(in.Imm)] {
			seen[uint64(in.Imm)] = true
			out = append(out, uint64(in.Imm))
		}
	}
	return out
}

// ImportIdxs returns the distinct import-table slots the function calls.
func (f *Function) ImportIdxs() []int {
	seen := make(map[int]bool)
	var out []int
	for _, in := range f.Instrs {
		if in.Op == isa.CallI && !seen[int(in.Imm)] {
			seen[int(in.Imm)] = true
			out = append(out, int(in.Imm))
		}
	}
	return out
}
