package detector

import (
	"math/rand"
	"testing"

	"repro/internal/features"
	"repro/internal/nn"
)

// syntheticModel builds a model with paper-shaped random weights and a
// normalizer fit on plausible count-like feature vectors — enough for
// scoring-path equivalence without paying for training.
func syntheticModel(seed int64, nFit int) (*Model, *rand.Rand) {
	rng := rand.New(rand.NewSource(seed))
	fit := make([]features.Vector, nFit)
	for i := range fit {
		fit[i] = syntheticVector(rng)
	}
	return &Model{
		Net:       nn.NewPaperNetwork(seed + 1),
		Norm:      FitNormalizer(fit),
		Threshold: 0.25,
	}, rng
}

func syntheticVector(rng *rand.Rand) features.Vector {
	var v features.Vector
	for j := range v {
		v[j] = float64(rng.Intn(64))
		if rng.Intn(8) == 0 {
			v[j] = 0
		}
	}
	return v
}

// TestScorerPairMatchesSimilarityBitForBit is the core equivalence claim:
// the batched scorer's symmetrized pair score equals the scalar
// Model.Similarity exactly — same floating-point operation order, so ==,
// not approximately-equal, across many random models and vectors.
func TestScorerPairMatchesSimilarityBitForBit(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		m, rng := syntheticModel(seed, 50)
		const nTargets = 40
		targets := make([]features.Vector, nTargets)
		for i := range targets {
			targets[i] = syntheticVector(rng)
		}
		ts := m.PrepareTargets(targets)
		sc := m.NewScorer()
		for trial := 0; trial < 10; trial++ {
			query := syntheticVector(rng)
			qh := m.PrepareQuery(query)
			for i, tv := range targets {
				want := m.Similarity(query, tv)
				got := sc.Pair(qh, ts, i)
				if got != want {
					t.Fatalf("seed %d trial %d target %d: batched %v != scalar %v (diff %g)",
						seed, trial, i, got, want, got-want)
				}
			}
		}
	}
}

// TestScorerCandidatesMatchScalar: same inputs, same candidate list —
// indices, exact scores, and order.
func TestScorerCandidatesMatchScalar(t *testing.T) {
	m, rng := syntheticModel(7, 80)
	const nTargets = 120
	targets := make([]features.Vector, nTargets)
	for i := range targets {
		targets[i] = syntheticVector(rng)
	}
	ts := m.PrepareTargets(targets)
	sc := m.NewScorer()
	for trial := 0; trial < 8; trial++ {
		query := syntheticVector(rng)
		want := m.Candidates(query, targets)
		got := sc.Candidates(m.PrepareQuery(query), ts)
		if len(got) != len(want) {
			t.Fatalf("trial %d: batched found %d candidates, scalar %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d candidate %d: batched %+v != scalar %+v", trial, i, got[i], want[i])
			}
		}
	}
	if sc.Candidates(m.PrepareQuery(syntheticVector(rng)), &TargetSet{}) == nil {
		// empty target set yields an empty (non-nil is not required), just
		// must not panic
		t.Log("empty target set scored")
	}
}

// TestScorerSteadyStateAllocs: once the scorer's buffers are warm, scoring
// a whole target set — threshold filter, candidate collection and sort
// included — must not allocate.
func TestScorerSteadyStateAllocs(t *testing.T) {
	m, rng := syntheticModel(9, 60)
	targets := make([]features.Vector, 200)
	for i := range targets {
		targets[i] = syntheticVector(rng)
	}
	ts := m.PrepareTargets(targets)
	qh := m.PrepareQuery(syntheticVector(rng))
	sc := m.NewScorer()
	sc.Candidates(qh, ts) // warm the candidate buffer
	allocs := testing.AllocsPerRun(20, func() {
		sc.Candidates(qh, ts)
	})
	if allocs != 0 {
		t.Errorf("steady-state Candidates allocates %.1f objects/op, want 0", allocs)
	}
}

// TestPrepareQueryMatchesPrepareTargets: the query- and target-side
// precomputations of the same vector are the same numbers, so a reference
// scored as a query equals itself scored as a target.
func TestPrepareQueryMatchesPrepareTargets(t *testing.T) {
	m, rng := syntheticModel(21, 40)
	v := syntheticVector(rng)
	qh := m.PrepareQuery(v)
	ts := m.PrepareTargets([]features.Vector{v})
	for o := range qh.first {
		if qh.first[o] != ts.firstHalf(0)[o] || qh.second[o] != ts.secondHalf(0)[o] {
			t.Fatalf("row %d: query halves (%v, %v) != target halves (%v, %v)",
				o, qh.first[o], qh.second[o], ts.firstHalf(0)[o], ts.secondHalf(0)[o])
		}
	}
}

// TestSimilarityStillSymmetricAndStable: the split-order refactor keeps
// Similarity symmetric and in [0,1].
func TestSimilaritySplitOrderProperties(t *testing.T) {
	m, rng := syntheticModel(33, 40)
	for trial := 0; trial < 20; trial++ {
		a, b := syntheticVector(rng), syntheticVector(rng)
		ab, ba := m.Similarity(a, b), m.Similarity(b, a)
		if ab != ba {
			t.Fatalf("trial %d: Similarity not symmetric: %v vs %v", trial, ab, ba)
		}
		if ab < 0 || ab > 1 {
			t.Fatalf("trial %d: score %v outside [0,1]", trial, ab)
		}
	}
}
