package detector

import (
	"testing"

	"repro/internal/compiler"
	"repro/internal/disasm"
	"repro/internal/features"
	"repro/internal/isa"
	"repro/internal/minic"
)

// buildGroups compiles a few generated libraries across every (arch, level)
// pair and collects per-function feature vectors — a miniature Dataset I.
func buildGroups(t *testing.T, nLibs, nFuncs int) Groups {
	t.Helper()
	groups := make(Groups)
	for li := 0; li < nLibs; li++ {
		mod := minic.GenLibrary(minic.GenConfig{
			Seed: int64(1000 + li), Name: "lib" + string(rune('a'+li)), NumFuncs: nFuncs,
		})
		for _, arch := range isa.All() {
			for _, lvl := range compiler.Levels() {
				im, err := compiler.Compile(mod, arch, lvl)
				if err != nil {
					t.Fatal(err)
				}
				dis, err := disasm.Disassemble(im)
				if err != nil {
					t.Fatal(err)
				}
				for _, f := range dis.Funcs {
					groups.Add(mod.Name, f.Name, features.Extract(dis, f))
				}
			}
		}
	}
	return groups
}

func TestGroupsBookkeeping(t *testing.T) {
	g := make(Groups)
	var v features.Vector
	g.Add("libx", "f", v)
	g.Add("libx", "f", v)
	g.Add("liba", "g", v)
	if g.NumVectors() != 3 {
		t.Errorf("NumVectors = %d, want 3", g.NumVectors())
	}
	keys := g.Keys()
	if len(keys) != 2 || keys[0].Library != "liba" {
		t.Errorf("Keys = %v, want sorted 2 entries", keys)
	}
}

func TestNormalizer(t *testing.T) {
	vecs := []features.Vector{}
	for i := 0; i < 10; i++ {
		var v features.Vector
		for j := range v {
			v[j] = float64(i * j)
		}
		vecs = append(vecs, v)
	}
	n := FitNormalizer(vecs)
	// Standardized training data has ~zero mean per dimension.
	sums := make([]float64, features.NumStatic)
	for _, v := range vecs {
		for j, x := range n.Apply(v) {
			sums[j] += x
		}
	}
	for j, s := range sums {
		if s/float64(len(vecs)) > 1e-9 && j > 0 { // dim 0 is all-zero: std clamped
			t.Errorf("dim %d mean %v after normalization", j, s/float64(len(vecs)))
		}
	}
	// Degenerate cases don't divide by zero.
	empty := FitNormalizer(nil)
	out := empty.Apply(vecs[0])
	for _, x := range out {
		if x != x { // NaN check
			t.Fatal("NaN after normalizing with empty-fit normalizer")
		}
	}
}

func TestTrainAndDetect(t *testing.T) {
	groups := buildGroups(t, 3, 12)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 10
	model, hist, ds, err := Train(groups, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist.Epochs) != 10 {
		t.Fatalf("history has %d epochs", len(hist.Epochs))
	}
	acc, _, auc := model.TestMetrics(ds.Test)
	t.Logf("test acc %.3f auc %.3f (train %d, val %d, test %d samples)",
		acc, auc, len(ds.Train), len(ds.Val), len(ds.Test))
	if acc < 0.80 {
		t.Errorf("test accuracy %.3f below 0.80 — the model should comfortably beat this (paper: >0.93)", acc)
	}
	if auc < 0.85 {
		t.Errorf("test AUC %.3f below 0.85", auc)
	}

	// Retrieval check: a function's amd64/O0 vector should retrieve the
	// same function's xarm64/O3 vector above threshold.
	mod := minic.GenLibrary(minic.GenConfig{Seed: 1000, Name: "liba", NumFuncs: 12})
	vecsFor := func(arch *isa.Arch, lvl compiler.Level) map[string]features.Vector {
		im, err := compiler.Compile(mod, arch, lvl)
		if err != nil {
			t.Fatal(err)
		}
		dis, err := disasm.Disassemble(im)
		if err != nil {
			t.Fatal(err)
		}
		out := make(map[string]features.Vector)
		for _, f := range dis.Funcs {
			out[f.Name] = features.Extract(dis, f)
		}
		return out
	}
	qs := vecsFor(isa.AMD64, compiler.O0)
	ts := vecsFor(isa.XARM64, compiler.O3)
	names := make([]string, 0, len(ts))
	targets := make([]features.Vector, 0, len(ts))
	for n, v := range ts {
		names = append(names, n)
		targets = append(targets, v)
	}
	hits := 0
	for qname, qv := range qs {
		cands := model.Candidates(qv, targets)
		for rank, c := range cands {
			if names[c.Index] == qname && rank < 3 {
				hits++
				break
			}
		}
	}
	t.Logf("cross-arch retrieval: %d/%d queries have the true match in the top 3 candidates", hits, len(qs))
	if hits < len(qs)/2 {
		t.Errorf("retrieval too weak: %d/%d", hits, len(qs))
	}
}

func TestModelSerializeRoundtrip(t *testing.T) {
	groups := buildGroups(t, 2, 6)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 2
	model, _, _, err := Train(groups, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := model.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	var a, c features.Vector
	for i := range a {
		a[i] = float64(i)
		c[i] = float64(i * 2)
	}
	if model.Similarity(a, c) != restored.Similarity(a, c) {
		t.Error("similarity changed after roundtrip")
	}
	if _, err := Unmarshal([]byte(`{"oops"`)); err == nil {
		t.Error("want error for garbage model")
	}
}

func TestBuildDatasetValidation(t *testing.T) {
	if _, err := BuildDataset(make(Groups), DefaultTrainConfig()); err == nil {
		t.Error("want error for empty groups")
	}
}

func TestSimilarityIsSymmetric(t *testing.T) {
	groups := buildGroups(t, 2, 5)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 1
	model, _, _, err := Train(groups, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var a, b features.Vector
	for i := range a {
		a[i] = float64(i % 7)
		b[i] = float64(i % 3)
	}
	if model.Similarity(a, b) != model.Similarity(b, a) {
		t.Error("similarity should be symmetric by construction")
	}
}

func TestCalibrateThreshold(t *testing.T) {
	groups := buildGroups(t, 3, 10)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 6
	model, _, ds, err := Train(groups, cfg)
	if err != nil {
		t.Fatal(err)
	}
	th := model.CalibrateThreshold(ds.Val, 0.98)
	if th != model.Threshold {
		t.Error("CalibrateThreshold did not update the model")
	}
	if th < 0.02 || th > 0.9 {
		t.Errorf("threshold %v outside operating range", th)
	}
	// The calibrated threshold must actually achieve ~the target recall
	// on the validation positives.
	var pos, kept int
	for _, s := range ds.Val {
		if s.Y > 0.5 {
			pos++
			if model.Net.Predict(s.X) >= th {
				kept++
			}
		}
	}
	if pos > 0 && float64(kept)/float64(pos) < 0.95 {
		t.Errorf("calibrated recall %d/%d below target", kept, pos)
	}
	// Degenerate inputs leave the threshold unchanged.
	before := model.Threshold
	if got := model.CalibrateThreshold(nil, 0.9); got != before {
		t.Error("empty validation set changed the threshold")
	}
}
