// Package detector implements PATCHECKO's static stage: the deep-learning
// similarity model over pairs of 48-dimensional static feature vectors.
//
// Training follows the paper's protocol: two feature vectors are labelled
// similar when they come from the same source function compiled for
// different (architecture, optimization level) targets, dissimilar when
// they come from different source functions; functions are split into
// disjoint train/validation/test subsets (the paper uses 1,222,663 /
// 407,554 / 407,555 samples from 2,108 binaries); the model is the 6-layer
// sequential network with a 96-dimensional input shown in the paper's
// Fig. 3/4. At scan time the model scores a target function against a CVE
// reference vector, and everything above the decision threshold becomes a
// candidate for the dynamic stage.
package detector

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/features"
	"repro/internal/nn"
)

// PairDim is the model input width: two concatenated static vectors.
const PairDim = 2 * features.NumStatic

// FuncKey identifies a source function across compilations.
type FuncKey struct {
	Library  string
	Function string
}

// Groups collects, for every source function, its static feature vectors
// across all (arch, optlevel) compilations. It is the raw material for
// Dataset I.
type Groups map[FuncKey][]features.Vector

// Add appends a compilation's vector for the function.
func (g Groups) Add(lib, fn string, v features.Vector) {
	k := FuncKey{Library: lib, Function: fn}
	g[k] = append(g[k], v)
}

// Keys returns the function keys in deterministic order.
func (g Groups) Keys() []FuncKey {
	keys := make([]FuncKey, 0, len(g))
	for k := range g {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Library != keys[j].Library {
			return keys[i].Library < keys[j].Library
		}
		return keys[i].Function < keys[j].Function
	})
	return keys
}

// NumVectors counts all stored vectors.
func (g Groups) NumVectors() int {
	n := 0
	for _, vs := range g {
		n += len(vs)
	}
	return n
}

// Normalizer standardizes feature vectors: signed log scaling followed by
// per-dimension z-scoring with statistics frozen at training time.
type Normalizer struct {
	Mean []float64 `json:"mean"`
	Std  []float64 `json:"std"`
}

func slog(x float64) float64 {
	if x < 0 {
		return -math.Log1p(-x)
	}
	return math.Log1p(x)
}

// FitNormalizer computes normalization statistics over the vectors.
func FitNormalizer(vecs []features.Vector) *Normalizer {
	n := &Normalizer{
		Mean: make([]float64, features.NumStatic),
		Std:  make([]float64, features.NumStatic),
	}
	if len(vecs) == 0 {
		for i := range n.Std {
			n.Std[i] = 1
		}
		return n
	}
	for _, v := range vecs {
		for i, x := range v {
			n.Mean[i] += slog(x)
		}
	}
	for i := range n.Mean {
		n.Mean[i] /= float64(len(vecs))
	}
	for _, v := range vecs {
		for i, x := range v {
			d := slog(x) - n.Mean[i]
			n.Std[i] += d * d
		}
	}
	for i := range n.Std {
		n.Std[i] = math.Sqrt(n.Std[i] / float64(len(vecs)))
		if n.Std[i] < 1e-9 {
			n.Std[i] = 1
		}
	}
	return n
}

// Apply standardizes one vector.
func (n *Normalizer) Apply(v features.Vector) []float64 {
	out := make([]float64, features.NumStatic)
	n.ApplyInto(out, v)
	return out
}

// ApplyInto standardizes one vector into a caller-owned buffer of length
// NumStatic, allocation-free.
func (n *Normalizer) ApplyInto(dst []float64, v features.Vector) {
	for i, x := range v {
		dst[i] = (slog(x) - n.Mean[i]) / n.Std[i]
	}
}

// Model is a trained similarity detector.
type Model struct {
	Net  *nn.Network `json:"net"`
	Norm *Normalizer `json:"norm"`
	// Threshold is the similarity cut-off used by Candidates.
	Threshold float64 `json:"threshold"`
}

// TrainConfig controls dataset construction and optimization.
type TrainConfig struct {
	Seed int64
	// NegPerPos is the number of dissimilar pairs per similar pair.
	NegPerPos int
	// MaxPosPerFunc bounds the number of similar pairs drawn per function.
	MaxPosPerFunc int
	Epochs        int
	BatchSize     int
	LR            float64
	// TrainFrac/ValFrac split the FUNCTIONS (not samples), keeping the
	// test set disjoint at the function level as in the paper.
	TrainFrac float64
	ValFrac   float64
	Verbose   func(string)
}

// DefaultTrainConfig mirrors the paper's setup at laptop scale.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{
		Seed:          1,
		NegPerPos:     1,
		MaxPosPerFunc: 12,
		Epochs:        8,
		BatchSize:     64,
		LR:            1e-3,
		TrainFrac:     0.6,
		ValFrac:       0.2,
	}
}

// Dataset is a constructed pair dataset with the function-level split.
type Dataset struct {
	Train []nn.Sample
	Val   []nn.Sample
	Test  []nn.Sample
	Norm  *Normalizer
}

// BuildDataset assembles similar/dissimilar pairs from the groups, splits
// by function, and fits the normalizer on the training portion.
func BuildDataset(groups Groups, cfg TrainConfig) (*Dataset, error) {
	keys := groups.Keys()
	if len(keys) < 3 {
		return nil, fmt.Errorf("detector: need at least 3 functions, have %d", len(keys))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	rng.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
	nTrain := int(float64(len(keys)) * cfg.TrainFrac)
	nVal := int(float64(len(keys)) * cfg.ValFrac)
	if nTrain == 0 {
		nTrain = 1
	}
	if nVal == 0 {
		nVal = 1
	}
	if nTrain+nVal >= len(keys) {
		nTrain, nVal = len(keys)-2, 1
	}
	splits := [][]FuncKey{
		keys[:nTrain],
		keys[nTrain : nTrain+nVal],
		keys[nTrain+nVal:],
	}
	// Fit the normalizer on training-function vectors only.
	var trainVecs []features.Vector
	for _, k := range splits[0] {
		trainVecs = append(trainVecs, groups[k]...)
	}
	norm := FitNormalizer(trainVecs)

	build := func(ks []FuncKey) []nn.Sample {
		var out []nn.Sample
		for _, k := range ks {
			vs := groups[k]
			if len(vs) < 2 {
				continue
			}
			// Positive pairs: distinct compilations of the same function.
			nPos := cfg.MaxPosPerFunc
			if nPos <= 0 {
				nPos = 8
			}
			for c := 0; c < nPos; c++ {
				i := rng.Intn(len(vs))
				j := rng.Intn(len(vs))
				if i == j {
					continue
				}
				out = append(out, nn.Sample{X: pairInput(norm, vs[i], vs[j]), Y: 1})
				// Negative pairs: this function vs a different one.
				for neg := 0; neg < cfg.NegPerPos; neg++ {
					ok := ks[rng.Intn(len(ks))]
					if ok == k {
						continue
					}
					ovs := groups[ok]
					if len(ovs) == 0 {
						continue
					}
					out = append(out, nn.Sample{
						X: pairInput(norm, vs[i], ovs[rng.Intn(len(ovs))]),
						Y: 0,
					})
				}
			}
		}
		rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
		return out
	}
	return &Dataset{
		Train: build(splits[0]),
		Val:   build(splits[1]),
		Test:  build(splits[2]),
		Norm:  norm,
	}, nil
}

func pairInput(norm *Normalizer, a, b features.Vector) []float64 {
	x := make([]float64, PairDim)
	norm.ApplyInto(x[:features.NumStatic], a)
	norm.ApplyInto(x[features.NumStatic:], b)
	return x
}

// Train builds the dataset and fits the paper's 6-layer model, returning
// the model, the training history (Fig. 8) and the dataset used.
func Train(groups Groups, cfg TrainConfig) (*Model, *nn.History, *Dataset, error) {
	ds, err := BuildDataset(groups, cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	net := nn.NewPaperNetwork(cfg.Seed + 1)
	hist, err := nn.Train(net, ds.Train, ds.Val, nn.TrainConfig{
		Epochs:    cfg.Epochs,
		BatchSize: cfg.BatchSize,
		LR:        cfg.LR,
		Seed:      cfg.Seed + 2,
		Verbose:   cfg.Verbose,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	// The candidate threshold is deliberately recall-oriented: the paper's
	// static stage keeps hundreds of candidates per query (600+ of 3000+
	// functions) and relies on the dynamic stage to prune false positives.
	m := &Model{Net: net, Norm: ds.Norm, Threshold: 0.25}
	return m, hist, ds, nil
}

// Similarity scores a pair of raw feature vectors in [0,1]; the score is
// symmetrized over both input orders. It uses the network's stateless
// inference path, so one model can score from many goroutines at once —
// the parallel scan engine depends on this.
//
// Each vector is normalized once and pushed through both halves of the
// first layer once, then reused for both symmetrized orders. Scores follow
// the canonical split accumulation order (see package nn), which the
// batched Scorer shares — the two paths are bit-identical, so this is the
// reference implementation the batched engine is verified against.
func (m *Model) Similarity(a, b features.Vector) float64 {
	l0 := m.Net.Layers[0]
	na, nb := m.Norm.Apply(a), m.Norm.Apply(b)
	aFirst := l0.HalfApply(na, 0, true)
	aSecond := l0.HalfApply(na, features.NumStatic, false)
	bFirst := l0.HalfApply(nb, 0, true)
	bSecond := l0.HalfApply(nb, features.NumStatic, false)
	ab := nn.Sigmoid(m.Net.InferLogitSplit(aFirst, bSecond))
	ba := nn.Sigmoid(m.Net.InferLogitSplit(bFirst, aSecond))
	return (ab + ba) / 2
}

// Candidate is one function the static stage flags as similar to a query.
type Candidate struct {
	Index int     // index into the scanned function list
	Score float64 // similarity in [0,1]
}

// Candidates scores every target function against the query vector and
// returns those above the model threshold, highest score first. This is
// the step that turns a whole firmware image (thousands of functions) into
// a candidate list for the dynamic stage.
func (m *Model) Candidates(query features.Vector, targets []features.Vector) []Candidate {
	var out []Candidate
	for i, tv := range targets {
		s := m.Similarity(query, tv)
		if s >= m.Threshold {
			out = append(out, Candidate{Index: i, Score: s})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Index < out[j].Index
	})
	return out
}

// CalibrateThreshold sets the candidate threshold to the largest value
// that still keeps the target recall on positive validation pairs. The
// static stage is recall-oriented (a pruned true function can never be
// recovered downstream, while false positives are cheap — the dynamic
// stage exists to remove them), so thresholds are chosen from recall, not
// precision. Returns the chosen threshold; the model is updated in place.
func (m *Model) CalibrateThreshold(val []nn.Sample, targetRecall float64) float64 {
	if targetRecall <= 0 || targetRecall > 1 {
		targetRecall = 0.99
	}
	var posScores []float64
	for _, s := range val {
		if s.Y > 0.5 {
			posScores = append(posScores, m.Net.Predict(s.X))
		}
	}
	if len(posScores) == 0 {
		return m.Threshold
	}
	sort.Float64s(posScores)
	idx := int(float64(len(posScores)) * (1 - targetRecall))
	if idx >= len(posScores) {
		idx = len(posScores) - 1
	}
	th := posScores[idx]
	// Clamp to a sane operating range.
	if th < 0.02 {
		th = 0.02
	}
	if th > 0.9 {
		th = 0.9
	}
	m.Threshold = th
	return th
}

// TestMetrics evaluates the model on held-out samples: accuracy, loss, AUC.
func (m *Model) TestMetrics(samples []nn.Sample) (acc, loss, auc float64) {
	loss, acc = nn.Evaluate(m.Net, samples)
	auc = nn.AUC(m.Net, samples)
	return acc, loss, auc
}

// Marshal serializes the model to JSON.
func (m *Model) Marshal() ([]byte, error) { return json.Marshal(m) }

// Unmarshal restores a model serialized with Marshal.
func Unmarshal(b []byte) (*Model, error) {
	m := &Model{Net: &nn.Network{}}
	if err := json.Unmarshal(b, m); err != nil {
		return nil, err
	}
	if m.Net == nil || m.Norm == nil {
		return nil, fmt.Errorf("detector: incomplete model")
	}
	if m.Threshold == 0 {
		m.Threshold = 0.5
	}
	return m, nil
}
