// Batched static-stage inference with cross-grid feature reuse.
//
// The scan engine recombines the same vectors combinatorially: every CVE
// reference (× two query modes) is scored against every function of every
// firmware image, in both symmetrized pair orders. The pieces here cache
// everything that does not depend on the specific (query, target) pair:
//
//   - TargetSet: per image, every function vector normalized ONCE and
//     pushed through both halves of the model's first layer ONCE. The
//     halves are reused across all CVEs, both query modes, and both pair
//     orders — the dominant first-layer cost drops from
//     2·CVEs·modes·funcs half-GEMVs to 2·funcs.
//   - QueryHalves: the same two half-GEMVs for a query vector, computed
//     once per (CVE, mode) and reused across every image and worker.
//   - Scorer: a per-worker scoring context whose forward passes run
//     entirely in reusable scratch buffers — steady-state candidate
//     scoring performs zero heap allocations.
//
// All scoring uses the canonical split accumulation order shared with
// Model.Similarity (see package nn), so batched results are bit-identical
// to the scalar path: same scores, same thresholds, same candidate order.
package detector

import (
	"slices"

	"repro/internal/features"
	"repro/internal/nn"
	"repro/internal/obs"
)

// TargetSet is the batched static stage's per-image precomputation: each
// target function's normalized vector pushed through both halves of the
// model's first layer. Build one per prepared image with PrepareTargets
// and reuse it for every (CVE, mode) scored against the image; it is
// immutable after construction and safe for concurrent use.
type TargetSet struct {
	n     int
	width int       // first-layer output width
	first []float64 // n×width: bias + W[:, :48]·t (target in first pair position)
	sec   []float64 // n×width: W[:, 48:]·t (target in second pair position)
}

// Len returns the number of prepared target functions.
func (ts *TargetSet) Len() int { return ts.n }

func (ts *TargetSet) firstHalf(i int) []float64  { return ts.first[i*ts.width : (i+1)*ts.width] }
func (ts *TargetSet) secondHalf(i int) []float64 { return ts.sec[i*ts.width : (i+1)*ts.width] }

// PrepareTargets normalizes every target vector once and precomputes its
// two first-layer halves.
func (m *Model) PrepareTargets(targets []features.Vector) *TargetSet {
	l0 := m.Net.Layers[0]
	ts := &TargetSet{
		n:     len(targets),
		width: l0.Out,
		first: make([]float64, len(targets)*l0.Out),
		sec:   make([]float64, len(targets)*l0.Out),
	}
	norm := make([]float64, features.NumStatic)
	for i, tv := range targets {
		m.Norm.ApplyInto(norm, tv)
		l0.HalfApplyInto(ts.firstHalf(i), norm, 0, true)
		l0.HalfApplyInto(ts.secondHalf(i), norm, features.NumStatic, false)
	}
	return ts
}

// QueryHalves is a query vector's first-layer precomputation, the
// per-(CVE, mode) counterpart of a TargetSet entry. Immutable after
// construction and safe for concurrent use.
type QueryHalves struct {
	first  []float64 // bias + W[:, :48]·q
	second []float64 // W[:, 48:]·q
}

// PrepareQuery normalizes the query once and precomputes its two
// first-layer halves.
func (m *Model) PrepareQuery(query features.Vector) *QueryHalves {
	l0 := m.Net.Layers[0]
	q := &QueryHalves{
		first:  make([]float64, l0.Out),
		second: make([]float64, l0.Out),
	}
	norm := make([]float64, features.NumStatic)
	m.Norm.ApplyInto(norm, query)
	l0.HalfApplyInto(q.first, norm, 0, true)
	l0.HalfApplyInto(q.second, norm, features.NumStatic, false)
	return q
}

// Scorer is a reusable scoring context for the batched static stage. It
// owns the forward-pass scratch buffers and the candidate output buffer,
// so steady-state scoring allocates nothing. A Scorer is NOT safe for
// concurrent use; the scan engine keeps one per worker goroutine.
type Scorer struct {
	model   *Model
	scratch *nn.Scratch
	out     []Candidate
	obs     *obs.Metrics
}

// NewScorer builds a scoring context for the model.
func (m *Model) NewScorer() *Scorer {
	return &Scorer{model: m, scratch: m.Net.NewScratch()}
}

// Observe attaches a metrics sink (nil for the no-op default) and returns
// the Scorer. Candidates then counts pairs scored and candidates surviving
// the cutoff in two bulk adds per call — nothing per pair.
func (s *Scorer) Observe(o *obs.Metrics) *Scorer {
	s.obs = o
	return s
}

// Pair scores prepared target i against the prepared query, symmetrized
// over both input orders — bit-identical to Model.Similarity on the raw
// vectors. Both directions run in one interleaved forward pass that loads
// each weight row once.
func (s *Scorer) Pair(q *QueryHalves, ts *TargetSet, i int) float64 {
	lqt, ltq := s.model.Net.InferLogitSplitScratch2(s.scratch,
		q.first, ts.secondHalf(i), ts.firstHalf(i), q.second)
	return (nn.Sigmoid(lqt) + nn.Sigmoid(ltq)) / 2
}

// Candidates is the batched equivalent of Model.Candidates: it scores every
// prepared target against the prepared query and returns those above the
// model threshold, highest score first (ties by index). The returned slice
// is owned by the Scorer and valid only until its next Candidates call —
// callers that keep candidates must copy them out.
func (s *Scorer) Candidates(q *QueryHalves, ts *TargetSet) []Candidate {
	out := s.out[:0]
	for i := 0; i < ts.Len(); i++ {
		if sc := s.Pair(q, ts, i); sc >= s.model.Threshold {
			out = append(out, Candidate{Index: i, Score: sc})
		}
	}
	// Same total order as the scalar path's sort: score descending, index
	// ascending — ties cannot survive, so any sorting algorithm yields the
	// identical permutation. slices.SortFunc does not allocate.
	slices.SortFunc(out, func(a, b Candidate) int {
		if a.Score != b.Score {
			if a.Score > b.Score {
				return -1
			}
			return 1
		}
		return a.Index - b.Index
	})
	s.out = out
	s.obs.Add(obs.CtrPairsScored, int64(ts.Len()))
	s.obs.Add(obs.CtrStaticCandidates, int64(len(out)))
	return out
}
