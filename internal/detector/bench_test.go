package detector

import (
	"encoding/json"
	"os"
	"testing"

	"repro/internal/features"
	"repro/internal/obs"
)

// benchTargets approximates one ScaleSmall library image's function count.
const benchTargets = 400

func benchFixture(b *testing.B) (*Model, features.Vector, []features.Vector) {
	b.Helper()
	m, rng := syntheticModel(1, 100)
	targets := make([]features.Vector, benchTargets)
	for i := range targets {
		targets[i] = syntheticVector(rng)
	}
	return m, syntheticVector(rng), targets
}

// BenchmarkCandidatesScalar is the static stage's scalar baseline: per
// pair, both vectors are normalized and pushed through the first layer
// from scratch, and every layer output is freshly allocated.
func BenchmarkCandidatesScalar(b *testing.B) {
	m, query, targets := benchFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Candidates(query, targets)
	}
	reportPairMetrics(b, len(targets))
}

// BenchmarkCandidatesBatched is the steady-state batched path: target and
// query halves precomputed (as the scan engine's caches hold them), all
// forward passes in per-worker scratch buffers.
func BenchmarkCandidatesBatched(b *testing.B) {
	m, query, targets := benchFixture(b)
	ts := m.PrepareTargets(targets)
	qh := m.PrepareQuery(query)
	sc := m.NewScorer()
	sc.Candidates(qh, ts) // warm the candidate buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sc.Candidates(qh, ts)
	}
	reportPairMetrics(b, len(targets))
}

// BenchmarkCandidatesObserved is the batched path with a live metrics sink
// attached: the instrumentation budget is two bulk atomic adds per
// Candidates call, so ns/pair must stay within noise of the unobserved
// batched path and the steady state must stay allocation-free. (A nil sink
// is the same code path with the adds compiled down to nil-receiver
// returns; BenchmarkCandidatesBatched already covers it.)
func BenchmarkCandidatesObserved(b *testing.B) {
	m, query, targets := benchFixture(b)
	ts := m.PrepareTargets(targets)
	qh := m.PrepareQuery(query)
	sc := m.NewScorer().Observe(obs.New())
	sc.Candidates(qh, ts) // warm the candidate buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sc.Candidates(qh, ts)
	}
	reportPairMetrics(b, len(targets))
}

// BenchmarkPrepareTargets prices the per-image precomputation the batched
// path amortizes across the scan grid.
func BenchmarkPrepareTargets(b *testing.B) {
	m, _, targets := benchFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.PrepareTargets(targets)
	}
	reportPairMetrics(b, len(targets))
}

func reportPairMetrics(b *testing.B, pairs int) {
	total := float64(pairs) * float64(b.N)
	b.ReportMetric(b.Elapsed().Seconds()*1e9/total, "ns/pair")
	b.ReportMetric(total/b.Elapsed().Seconds(), "pairs/s")
}

// benchArtifact is the BENCH_static.json schema: the static stage's perf
// trajectory for future PRs to compare against.
type benchArtifact struct {
	Benchmark string           `json:"benchmark"`
	Targets   int              `json:"targets"`
	Scalar    benchArtifactRow `json:"scalar"`
	Batched   benchArtifactRow `json:"batched"`
	Observed  benchArtifactRow `json:"observed"`
	Speedup   float64          `json:"speedup"`
	// ObservedOverheadPct is the batched path's ns/pair cost of a live
	// metrics sink, in percent (negative values are measurement noise).
	ObservedOverheadPct float64 `json:"observed_overhead_pct"`
}

type benchArtifactRow struct {
	NsPerPair   float64 `json:"ns_per_pair"`
	PairsPerSec float64 `json:"pairs_per_sec"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// TestWriteStaticBenchArtifact measures the scalar and batched candidate
// paths and writes BENCH_static.json to the path in PATCHECKO_BENCH_OUT.
// Skipped when the variable is unset, so `go test` stays fast; CI and
// `make bench-static` opt in.
func TestWriteStaticBenchArtifact(t *testing.T) {
	out := os.Getenv("PATCHECKO_BENCH_OUT")
	if out == "" {
		t.Skip("PATCHECKO_BENCH_OUT not set")
	}
	row := func(r testing.BenchmarkResult) benchArtifactRow {
		ns := float64(r.NsPerOp()) / benchTargets
		return benchArtifactRow{
			NsPerPair:   ns,
			PairsPerSec: 1e9 / ns,
			AllocsPerOp: r.AllocsPerOp(),
		}
	}
	scalar := testing.Benchmark(BenchmarkCandidatesScalar)
	batched := testing.Benchmark(BenchmarkCandidatesBatched)
	observed := testing.Benchmark(BenchmarkCandidatesObserved)
	art := benchArtifact{
		Benchmark: "internal/detector Candidates: paper network, symmetrized pairs, small-scale image",
		Targets:   benchTargets,
		Scalar:    row(scalar),
		Batched:   row(batched),
		Observed:  row(observed),
		Speedup:   float64(scalar.NsPerOp()) / float64(batched.NsPerOp()),
		ObservedOverheadPct: 100 * (float64(observed.NsPerOp()) -
			float64(batched.NsPerOp())) / float64(batched.NsPerOp()),
	}
	raw, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(raw, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("scalar %.0f ns/pair, batched %.0f ns/pair, observed %.0f ns/pair, "+
		"speedup %.2fx, metrics overhead %+.2f%%, batched allocs/op %d",
		art.Scalar.NsPerPair, art.Batched.NsPerPair, art.Observed.NsPerPair,
		art.Speedup, art.ObservedOverheadPct, art.Batched.AllocsPerOp)
	if art.Speedup < 3 {
		t.Errorf("batched speedup %.2fx below the 3x acceptance floor", art.Speedup)
	}
	if art.Batched.AllocsPerOp != 0 {
		t.Errorf("batched path allocates %d objects/op in steady state, want 0", art.Batched.AllocsPerOp)
	}
	if art.Observed.AllocsPerOp != 0 {
		t.Errorf("observed path allocates %d objects/op in steady state, want 0", art.Observed.AllocsPerOp)
	}
	if art.ObservedOverheadPct >= 2 {
		t.Errorf("live metrics sink costs %+.2f%% ns/pair on the batched path, want < 2%%",
			art.ObservedOverheadPct)
	}
}
