package detector

import (
	"encoding/json"
	"os"
	"testing"

	"repro/internal/features"
	"repro/internal/obs"
)

// benchTargets approximates one ScaleSmall library image's function count.
const benchTargets = 400

func benchFixture(b *testing.B) (*Model, features.Vector, []features.Vector) {
	b.Helper()
	m, rng := syntheticModel(1, 100)
	targets := make([]features.Vector, benchTargets)
	for i := range targets {
		targets[i] = syntheticVector(rng)
	}
	return m, syntheticVector(rng), targets
}

// BenchmarkCandidatesScalar is the static stage's scalar baseline: per
// pair, both vectors are normalized and pushed through the first layer
// from scratch, and every layer output is freshly allocated.
func BenchmarkCandidatesScalar(b *testing.B) {
	m, query, targets := benchFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Candidates(query, targets)
	}
	reportPairMetrics(b, len(targets))
}

// BenchmarkCandidatesBatched is the steady-state batched path: target and
// query halves precomputed (as the scan engine's caches hold them), all
// forward passes in per-worker scratch buffers.
func BenchmarkCandidatesBatched(b *testing.B) {
	m, query, targets := benchFixture(b)
	ts := m.PrepareTargets(targets)
	qh := m.PrepareQuery(query)
	sc := m.NewScorer()
	sc.Candidates(qh, ts) // warm the candidate buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sc.Candidates(qh, ts)
	}
	reportPairMetrics(b, len(targets))
}

// BenchmarkCandidatesObserved is the batched path with a live metrics sink
// attached: the instrumentation budget is two bulk atomic adds per
// Candidates call, so ns/pair must stay within noise of the unobserved
// batched path and the steady state must stay allocation-free. (A nil sink
// is the same code path with the adds compiled down to nil-receiver
// returns; BenchmarkCandidatesBatched already covers it.)
func BenchmarkCandidatesObserved(b *testing.B) {
	m, query, targets := benchFixture(b)
	ts := m.PrepareTargets(targets)
	qh := m.PrepareQuery(query)
	sc := m.NewScorer().Observe(obs.New())
	sc.Candidates(qh, ts) // warm the candidate buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sc.Candidates(qh, ts)
	}
	reportPairMetrics(b, len(targets))
}

// benchOverlapUnique sizes the content-dedup fixture: benchTargets (400)
// target slots share benchOverlapUnique (80) distinct bodies, five copies
// each — the fleet-scan shape where one vendor library ships on several
// device images.
const benchOverlapUnique = 80

func benchOverlapFixture(b *testing.B) (m *Model, query features.Vector, targets, unique []features.Vector, idx []int) {
	b.Helper()
	m, rng := syntheticModel(1, 100)
	unique = make([]features.Vector, benchOverlapUnique)
	for i := range unique {
		unique[i] = syntheticVector(rng)
	}
	targets = make([]features.Vector, benchTargets)
	idx = make([]int, benchTargets)
	for i := range targets {
		idx[i] = i % benchOverlapUnique
		targets[i] = unique[idx[i]]
	}
	return m, syntheticVector(rng), targets, unique, idx
}

// BenchmarkCandidatesOverlapBatched is the dedup baseline: the batched path
// scoring all 400 target slots, blind to the fact that only 80 bodies are
// distinct. This is what every scan paid before content addressing.
func BenchmarkCandidatesOverlapBatched(b *testing.B) {
	m, query, targets, _, _ := benchOverlapFixture(b)
	ts := m.PrepareTargets(targets)
	qh := m.PrepareQuery(query)
	sc := m.NewScorer()
	sc.Candidates(qh, ts) // warm the candidate buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sc.Candidates(qh, ts)
	}
	reportPairMetrics(b, len(targets))
}

// BenchmarkCandidatesDeduped is the content-addressed path: score each of
// the 80 unique bodies once, then fan the scores out to all 400 slots
// through the address→slot index — the same shape patchecko's dedup layer
// uses. ns/pair is reported over the 400 effective pairs, so the speedup
// against OverlapBatched is the measured dedup win at 5x duplication.
func BenchmarkCandidatesDeduped(b *testing.B) {
	m, query, _, unique, idx := benchOverlapFixture(b)
	ts := m.PrepareTargets(unique)
	qh := m.PrepareQuery(query)
	sc := m.NewScorer()
	scores := make([]float64, benchOverlapUnique)
	fanned := make([]float64, benchTargets)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for u := 0; u < benchOverlapUnique; u++ {
			scores[u] = sc.Pair(qh, ts, u)
		}
		for slot, u := range idx {
			fanned[slot] = scores[u]
		}
	}
	reportPairMetrics(b, benchTargets)
}

// BenchmarkPrepareTargets prices the per-image precomputation the batched
// path amortizes across the scan grid.
func BenchmarkPrepareTargets(b *testing.B) {
	m, _, targets := benchFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.PrepareTargets(targets)
	}
	reportPairMetrics(b, len(targets))
}

func reportPairMetrics(b *testing.B, pairs int) {
	total := float64(pairs) * float64(b.N)
	b.ReportMetric(b.Elapsed().Seconds()*1e9/total, "ns/pair")
	b.ReportMetric(total/b.Elapsed().Seconds(), "pairs/s")
}

// benchArtifact is the BENCH_static.json schema: the static stage's perf
// trajectory for future PRs to compare against.
type benchArtifact struct {
	Benchmark string           `json:"benchmark"`
	Targets   int              `json:"targets"`
	Scalar    benchArtifactRow `json:"scalar"`
	Batched   benchArtifactRow `json:"batched"`
	Observed  benchArtifactRow `json:"observed"`
	Speedup   float64          `json:"speedup"`
	// ObservedOverheadPct is the batched path's ns/pair cost of a live
	// metrics sink, in percent (negative values are measurement noise).
	ObservedOverheadPct float64 `json:"observed_overhead_pct"`
	// Content-dedup rows: 400 target slots sharing 80 unique bodies
	// (DedupRatio 5x). Deduped scores each body once and fans the result
	// out; DedupSpeedup is its measured win over the duplication-blind
	// batched path on the same fleet.
	UniqueTargets  int              `json:"unique_targets"`
	OverlapBatched benchArtifactRow `json:"overlap_batched"`
	Deduped        benchArtifactRow `json:"deduped"`
	DedupRatio     float64          `json:"dedup_ratio"`
	DedupSpeedup   float64          `json:"dedup_speedup"`
}

type benchArtifactRow struct {
	NsPerPair   float64 `json:"ns_per_pair"`
	PairsPerSec float64 `json:"pairs_per_sec"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// TestWriteStaticBenchArtifact measures the scalar and batched candidate
// paths and writes BENCH_static.json to the path in PATCHECKO_BENCH_OUT.
// Skipped when the variable is unset, so `go test` stays fast; CI and
// `make bench-static` opt in.
func TestWriteStaticBenchArtifact(t *testing.T) {
	out := os.Getenv("PATCHECKO_BENCH_OUT")
	if out == "" {
		t.Skip("PATCHECKO_BENCH_OUT not set")
	}
	row := func(r testing.BenchmarkResult) benchArtifactRow {
		ns := float64(r.NsPerOp()) / benchTargets
		return benchArtifactRow{
			NsPerPair:   ns,
			PairsPerSec: 1e9 / ns,
			AllocsPerOp: r.AllocsPerOp(),
		}
	}
	scalar := testing.Benchmark(BenchmarkCandidatesScalar)
	batched := testing.Benchmark(BenchmarkCandidatesBatched)
	observed := testing.Benchmark(BenchmarkCandidatesObserved)
	overlap := testing.Benchmark(BenchmarkCandidatesOverlapBatched)
	deduped := testing.Benchmark(BenchmarkCandidatesDeduped)
	art := benchArtifact{
		Benchmark: "internal/detector Candidates: paper network, symmetrized pairs, small-scale image",
		Targets:   benchTargets,
		Scalar:    row(scalar),
		Batched:   row(batched),
		Observed:  row(observed),
		Speedup:   float64(scalar.NsPerOp()) / float64(batched.NsPerOp()),
		ObservedOverheadPct: 100 * (float64(observed.NsPerOp()) -
			float64(batched.NsPerOp())) / float64(batched.NsPerOp()),
		UniqueTargets:  benchOverlapUnique,
		OverlapBatched: row(overlap),
		Deduped:        row(deduped),
		DedupRatio:     float64(benchTargets) / benchOverlapUnique,
		DedupSpeedup:   float64(overlap.NsPerOp()) / float64(deduped.NsPerOp()),
	}
	raw, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(raw, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("scalar %.0f ns/pair, batched %.0f ns/pair, observed %.0f ns/pair, "+
		"speedup %.2fx, metrics overhead %+.2f%%, batched allocs/op %d",
		art.Scalar.NsPerPair, art.Batched.NsPerPair, art.Observed.NsPerPair,
		art.Speedup, art.ObservedOverheadPct, art.Batched.AllocsPerOp)
	t.Logf("dedup fixture (%d slots, %d unique, %.0fx duplication): "+
		"blind %.0f ns/pair, deduped %.0f ns/pair, dedup speedup %.2fx",
		benchTargets, art.UniqueTargets, art.DedupRatio,
		art.OverlapBatched.NsPerPair, art.Deduped.NsPerPair, art.DedupSpeedup)
	if art.Speedup < 3 {
		t.Errorf("batched speedup %.2fx below the 3x acceptance floor", art.Speedup)
	}
	if art.Batched.AllocsPerOp != 0 {
		t.Errorf("batched path allocates %d objects/op in steady state, want 0", art.Batched.AllocsPerOp)
	}
	if art.Observed.AllocsPerOp != 0 {
		t.Errorf("observed path allocates %d objects/op in steady state, want 0", art.Observed.AllocsPerOp)
	}
	if art.ObservedOverheadPct >= 2 {
		t.Errorf("live metrics sink costs %+.2f%% ns/pair on the batched path, want < 2%%",
			art.ObservedOverheadPct)
	}
	if art.Deduped.AllocsPerOp != 0 {
		t.Errorf("deduped path allocates %d objects/op in steady state, want 0", art.Deduped.AllocsPerOp)
	}
	if art.DedupSpeedup < 3 {
		t.Errorf("dedup speedup %.2fx at %.0fx duplication, below the 3x acceptance floor",
			art.DedupSpeedup, art.DedupRatio)
	}
}
