package annindex

import (
	"bytes"
	"math/rand"
	"testing"
)

// FuzzDecode drives the deserializer with arbitrary bytes. Decode must
// never panic or over-allocate; when it does accept a blob, the decoded
// index must be fully valid: re-encoding is the identity and a search over
// it terminates with exact brute-force results.
func FuzzDecode(f *testing.F) {
	// Seed with a real encoding plus structured corruptions of it, on top
	// of the checked-in corpus under testdata/fuzz/FuzzDecode.
	rng := rand.New(rand.NewSource(17))
	vecs := make([][]float64, 9)
	for i := range vecs {
		v := make([]float64, 4)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		vecs[i] = v
	}
	ix, err := Build(vecs, DefaultConfig())
	if err != nil {
		f.Fatal(err)
	}
	valid := ix.Encode()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(append(bytes.Clone(valid), 0xAA))
	f.Add([]byte(magic))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		dec, err := Decode(data)
		if err != nil {
			return
		}
		blob := dec.Encode()
		if !bytes.Equal(blob, data) {
			t.Fatalf("accepted blob is not canonical: re-encode differs")
		}
		// The decoded structure must behave like a real index.
		q := make([]float64, dec.Dim())
		got := ix2brute(dec, q, 3)
		if res := dec.Search(q, 3); !hitsEqual(res, got) {
			t.Fatalf("decoded index search mismatch: got %v want %v", res, got)
		}
	})
}

func ix2brute(ix *Index, q []float64, k int) []Hit {
	vecs := make([][]float64, ix.Len())
	for i := range vecs {
		vecs[i] = ix.vec(i)
	}
	return bruteTopK(vecs, q, k)
}

func hitsEqual(a, b []Hit) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
