package annindex

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Binary index format, versioned by the magic string. All integers are
// little-endian uint32, all floats are little-endian IEEE-754 float64.
//
//	magic   "PKANN001"                     (8 bytes)
//	dim     uint32
//	n       uint32                         (vector count)
//	nclus   uint32                         (cluster count, 1..n)
//	data    n × dim × float64              (row-major, id order)
//	per cluster:
//	  centroid  dim × float64
//	  radius    float64
//	  count     uint32
//	  members   count × uint32             (ascending ids)
//
// Decode validates structure exhaustively — magic/version, bounds on every
// declared size BEFORE allocating, finite floats, and that the cluster
// member lists form an exact partition of [0, n) — so a corrupted or
// adversarial blob (see FuzzDecode) is rejected with an error, never a
// panic or an over-allocation.

const (
	magic = "PKANN001"

	// Decode hard caps: far above anything the engine builds (indexes are
	// per-image unique-function sets), low enough that a hostile header
	// cannot make Decode allocate unboundedly.
	maxDim  = 4096
	maxVecs = 1 << 22
)

// Encode serializes the index. The output depends only on the index
// contents: equal builds encode byte-identically.
func (ix *Index) Encode() []byte {
	n := ix.Len()
	size := len(magic) + 3*4 + n*ix.dim*8
	for _, cl := range ix.clusters {
		size += ix.dim*8 + 8 + 4 + 4*len(cl.members)
	}
	b := make([]byte, 0, size)
	b = append(b, magic...)
	b = binary.LittleEndian.AppendUint32(b, uint32(ix.dim))
	b = binary.LittleEndian.AppendUint32(b, uint32(n))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(ix.clusters)))
	for _, x := range ix.data {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(x))
	}
	for _, cl := range ix.clusters {
		for _, x := range cl.centroid {
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(x))
		}
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(cl.radius))
		b = binary.LittleEndian.AppendUint32(b, uint32(len(cl.members)))
		for _, id := range cl.members {
			b = binary.LittleEndian.AppendUint32(b, uint32(id))
		}
	}
	return b
}

// reader is a bounds-checked cursor over the encoded blob.
type reader struct {
	b   []byte
	off int
}

func (r *reader) u32() (uint32, error) {
	if len(r.b)-r.off < 4 {
		return 0, fmt.Errorf("annindex: truncated at offset %d", r.off)
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v, nil
}

func (r *reader) f64s(dst []float64) error {
	if len(r.b)-r.off < 8*len(dst) {
		return fmt.Errorf("annindex: truncated at offset %d", r.off)
	}
	for i := range dst {
		x := math.Float64frombits(binary.LittleEndian.Uint64(r.b[r.off:]))
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return fmt.Errorf("annindex: non-finite float at offset %d", r.off)
		}
		dst[i] = x
		r.off += 8
	}
	return nil
}

// Decode parses and validates an Encode blob.
func Decode(b []byte) (*Index, error) {
	if len(b) < len(magic) || string(b[:len(magic)]) != magic {
		return nil, fmt.Errorf("annindex: bad magic")
	}
	r := &reader{b: b, off: len(magic)}
	dim32, err := r.u32()
	if err != nil {
		return nil, err
	}
	n32, err := r.u32()
	if err != nil {
		return nil, err
	}
	nclus32, err := r.u32()
	if err != nil {
		return nil, err
	}
	dim, n, nclus := int(dim32), int(n32), int(nclus32)
	if dim < 1 || dim > maxDim {
		return nil, fmt.Errorf("annindex: dim %d out of range", dim)
	}
	if n < 1 || n > maxVecs {
		return nil, fmt.Errorf("annindex: vector count %d out of range", n)
	}
	if nclus < 1 || nclus > n {
		return nil, fmt.Errorf("annindex: cluster count %d out of range for %d vectors", nclus, n)
	}
	// Reject undersized blobs before any large allocation: the fixed-width
	// payload is fully determined by the header except for the per-cluster
	// member counts, whose floor is 8 bytes each.
	minSize := len(magic) + 3*4 + n*dim*8 + nclus*(dim*8+8+4)
	if len(b) < minSize {
		return nil, fmt.Errorf("annindex: blob shorter than declared layout (%d < %d)", len(b), minSize)
	}

	ix := &Index{dim: dim, data: make([]float64, n*dim)}
	if err := r.f64s(ix.data); err != nil {
		return nil, err
	}
	ix.clusters = make([]cluster, nclus)
	seen := make([]bool, n)
	total := 0
	for c := range ix.clusters {
		cl := &ix.clusters[c]
		cl.centroid = make([]float64, dim)
		if err := r.f64s(cl.centroid); err != nil {
			return nil, err
		}
		rad := make([]float64, 1)
		if err := r.f64s(rad); err != nil {
			return nil, err
		}
		if rad[0] < 0 {
			return nil, fmt.Errorf("annindex: cluster %d has negative radius", c)
		}
		cl.radius = rad[0]
		count32, err := r.u32()
		if err != nil {
			return nil, err
		}
		count := int(count32)
		if count < 1 || count > n-total {
			return nil, fmt.Errorf("annindex: cluster %d member count %d out of range", c, count)
		}
		total += count
		cl.members = make([]int32, count)
		prev := -1
		for m := range cl.members {
			id32, err := r.u32()
			if err != nil {
				return nil, err
			}
			id := int(id32)
			if id >= n || seen[id] {
				return nil, fmt.Errorf("annindex: cluster %d member %d invalid or duplicate", c, id)
			}
			if id <= prev {
				return nil, fmt.Errorf("annindex: cluster %d members not ascending", c)
			}
			seen[id] = true
			prev = id
			cl.members[m] = int32(id)
		}
	}
	if total != n {
		return nil, fmt.Errorf("annindex: clusters cover %d of %d vectors", total, n)
	}
	if r.off != len(b) {
		return nil, fmt.Errorf("annindex: %d trailing bytes", len(b)-r.off)
	}
	return ix, nil
}
