package annindex

import (
	"bytes"
	"math"
	"math/rand"
	"slices"
	"testing"
)

// randomVecs builds a deterministic vector set with deliberate duplicates
// so distance ties are actually exercised.
func randomVecs(t *testing.T, n, dim int, seed int64) [][]float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	vecs := make([][]float64, n)
	for i := range vecs {
		if i > 0 && rng.Intn(8) == 0 {
			// Exact duplicate of an earlier vector: equal distance to every
			// query, forcing the id tie-break.
			vecs[i] = slices.Clone(vecs[rng.Intn(i)])
			continue
		}
		v := make([]float64, dim)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		vecs[i] = v
	}
	return vecs
}

// bruteTopK is the reference: full scan, sort by (dist asc, id asc).
func bruteTopK(vecs [][]float64, q []float64, k int) []Hit {
	hits := make([]Hit, len(vecs))
	for i, v := range vecs {
		s := 0.0
		for j, x := range v {
			d := x - q[j]
			s += d * d
		}
		hits[i] = Hit{ID: i, Dist: math.Sqrt(s)}
	}
	slices.SortFunc(hits, func(a, b Hit) int {
		if a.Dist != b.Dist {
			if a.Dist < b.Dist {
				return -1
			}
			return 1
		}
		return a.ID - b.ID
	})
	if k > len(hits) {
		k = len(hits)
	}
	return hits[:k]
}

func TestSearchMatchesBruteForce(t *testing.T) {
	for _, n := range []int{1, 2, 17, 200} {
		vecs := randomVecs(t, n, 8, int64(n))
		ix, err := Build(vecs, DefaultConfig())
		if err != nil {
			t.Fatalf("Build(n=%d): %v", n, err)
		}
		rng := rand.New(rand.NewSource(99))
		for qi := 0; qi < 25; qi++ {
			q := make([]float64, 8)
			for j := range q {
				q[j] = rng.NormFloat64()
			}
			if qi%3 == 0 && n > 1 {
				// Query sitting exactly on an indexed vector: zero distance
				// plus duplicate ties.
				q = slices.Clone(vecs[rng.Intn(n)])
			}
			for _, k := range []int{1, 3, n / 2, n, n + 5} {
				if k < 1 {
					continue
				}
				got := ix.Search(q, k)
				want := bruteTopK(vecs, q, k)
				if !slices.Equal(got, want) {
					t.Fatalf("n=%d k=%d query %d: Search != brute force\ngot  %v\nwant %v", n, k, qi, got, want)
				}
			}
		}
	}
}

// TestSearchSupersetProperty pins the recall contract: the retrieval set at
// K = all is the entire id space, so it trivially contains the exact top-K
// for every smaller K — and for every smaller K the result is a prefix of
// the K = all ranking.
func TestSearchSupersetProperty(t *testing.T) {
	vecs := randomVecs(t, 120, 6, 7)
	ix, err := Build(vecs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for qi := 0; qi < 10; qi++ {
		q := make([]float64, 6)
		for j := range q {
			q[j] = rng.NormFloat64()
		}
		all := ix.Search(q, len(vecs))
		if len(all) != len(vecs) {
			t.Fatalf("K=all returned %d of %d", len(all), len(vecs))
		}
		for _, k := range []int{1, 7, 64, 120} {
			got := ix.Search(q, k)
			if !slices.Equal(got, all[:k]) {
				t.Fatalf("query %d: Search(k=%d) is not a prefix of Search(k=all)", qi, k)
			}
		}
	}
}

func TestBuildDeterminism(t *testing.T) {
	vecs := randomVecs(t, 150, 10, 42)
	a, err := Build(vecs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(vecs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Encode(), b.Encode()) {
		t.Fatal("two builds from equal inputs encode differently")
	}
	// A different seed may legitimately cluster differently, but search
	// results stay exact regardless.
	c, err := Build(vecs, Config{Seed: 999, Clusters: 5, Iters: 3})
	if err != nil {
		t.Fatal(err)
	}
	q := slices.Clone(vecs[7])
	if !slices.Equal(a.Search(q, 9), c.Search(q, 9)) {
		t.Fatal("search results depend on clustering configuration")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	vecs := randomVecs(t, 64, 5, 13)
	ix, err := Build(vecs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	blob := ix.Encode()
	dec, err := Decode(blob)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !bytes.Equal(dec.Encode(), blob) {
		t.Fatal("re-encode after Decode differs")
	}
	if dec.Len() != ix.Len() || dec.Dim() != ix.Dim() {
		t.Fatalf("shape changed: %d×%d vs %d×%d", dec.Len(), dec.Dim(), ix.Len(), ix.Dim())
	}
	q := slices.Clone(vecs[3])
	if !slices.Equal(dec.Search(q, 10), ix.Search(q, 10)) {
		t.Fatal("decoded index searches differently")
	}
}

func TestBuildRejects(t *testing.T) {
	if _, err := Build(nil, DefaultConfig()); err == nil {
		t.Fatal("Build accepted empty input")
	}
	if _, err := Build([][]float64{{}}, DefaultConfig()); err == nil {
		t.Fatal("Build accepted zero-dim vectors")
	}
	if _, err := Build([][]float64{{1, 2}, {3}}, DefaultConfig()); err == nil {
		t.Fatal("Build accepted ragged vectors")
	}
	if _, err := Build([][]float64{{1, math.NaN()}}, DefaultConfig()); err == nil {
		t.Fatal("Build accepted NaN")
	}
	if _, err := Build([][]float64{{1, math.Inf(1)}}, DefaultConfig()); err == nil {
		t.Fatal("Build accepted +Inf")
	}
}

func TestSearchEdgeCases(t *testing.T) {
	vecs := randomVecs(t, 10, 4, 1)
	ix, err := Build(vecs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := ix.Search(vecs[0], 0); got != nil {
		t.Fatalf("k=0 returned %v", got)
	}
	if got := ix.Search([]float64{1, 2}, 3); got != nil {
		t.Fatalf("wrong-dim query returned %v", got)
	}
}

func TestDecodeRejects(t *testing.T) {
	vecs := randomVecs(t, 12, 3, 5)
	ix, err := Build(vecs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	valid := ix.Encode()

	mutate := func(name string, f func(b []byte) []byte) {
		t.Helper()
		if _, err := Decode(f(slices.Clone(valid))); err == nil {
			t.Fatalf("%s: Decode accepted corrupt blob", name)
		}
	}
	mutate("empty", func(b []byte) []byte { return nil })
	mutate("bad magic", func(b []byte) []byte { b[0] ^= 0xff; return b })
	mutate("truncated header", func(b []byte) []byte { return b[:10] })
	mutate("truncated data", func(b []byte) []byte { return b[:len(b)-1] })
	mutate("trailing bytes", func(b []byte) []byte { return append(b, 0) })
	mutate("zero dim", func(b []byte) []byte {
		for i := 8; i < 12; i++ {
			b[i] = 0
		}
		return b
	})
	mutate("huge dim", func(b []byte) []byte {
		b[8], b[9], b[10], b[11] = 0xff, 0xff, 0xff, 0x7f
		return b
	})
	mutate("huge n", func(b []byte) []byte {
		b[12], b[13], b[14], b[15] = 0xff, 0xff, 0xff, 0x7f
		return b
	})
	mutate("zero clusters", func(b []byte) []byte {
		for i := 16; i < 20; i++ {
			b[i] = 0
		}
		return b
	})
	mutate("nan in data", func(b []byte) []byte {
		nan := math.Float64bits(math.NaN())
		for i := 0; i < 8; i++ {
			b[20+i] = byte(nan >> (8 * i))
		}
		return b
	})
	mutate("duplicate member", func(b []byte) []byte {
		// Last 4 bytes are the final member id of the final cluster; clobber
		// with an id from the start of the partition.
		copy(b[len(b)-4:], []byte{0, 0, 0, 0})
		return b
	})
	mutate("member out of range", func(b []byte) []byte {
		copy(b[len(b)-4:], []byte{0xff, 0xff, 0xff, 0x7f})
		return b
	})
}
