// Package annindex is a deterministic, pure-Go nearest-neighbor index for
// the retrieval static stage: a cluster-pruned flat index over fixed-size
// embedding vectors.
//
// The index is EXACT, not approximate: Search returns precisely the k
// nearest vectors by (Euclidean distance, then id) — identical to a brute
// force scan — it only *visits* fewer of them. Clusters are scanned in
// ascending lower-bound order (centroid distance minus cluster radius, a
// triangle-inequality bound), and scanning stops once the bound proves no
// unvisited cluster can improve the current k-th best. Pruning is applied
// only on a STRICT bound violation, so distance ties still resolve by id
// exactly as brute force would.
//
// Everything is deterministic in (vectors, Config): clustering is seeded
// k-means with fixed iteration count and lowest-index tie-breaking, all
// floating-point accumulation is sequential in a fixed order, and Search
// breaks distance ties by ascending id. Two builds from equal inputs are
// byte-identical under Encode, and results never depend on scheduling —
// which is what lets the scan engine keep reports byte-identical at any
// worker count.
package annindex

import (
	"fmt"
	"math"
	"math/rand"
	"slices"
)

// Config parameterizes Build. The zero value selects the defaults.
type Config struct {
	// Seed drives the k-means initialization. Equal seeds (and equal
	// vectors) build byte-identical indexes.
	Seed int64
	// Clusters is the k-means cluster count; <= 0 selects ~sqrt(n).
	Clusters int
	// Iters is the fixed Lloyd iteration count; <= 0 selects 8.
	Iters int
}

// DefaultConfig returns the standard build configuration.
func DefaultConfig() Config { return Config{Seed: 1} }

// cluster is one k-means cell: its centroid, the distance of its farthest
// member from the centroid, and its member ids in ascending order.
type cluster struct {
	centroid []float64
	radius   float64
	members  []int32
}

// Index is a built cluster-pruned flat index. Immutable after Build/Decode
// and safe for concurrent Search use.
type Index struct {
	dim      int
	data     []float64 // n × dim, row-major; row i is vector id i
	clusters []cluster
}

// Len returns the number of indexed vectors.
func (ix *Index) Len() int {
	if ix.dim == 0 {
		return 0
	}
	return len(ix.data) / ix.dim
}

// Dim returns the vector dimensionality.
func (ix *Index) Dim() int { return ix.dim }

func (ix *Index) vec(id int) []float64 { return ix.data[id*ix.dim : (id+1)*ix.dim] }

// dist is the Euclidean distance with one fixed sequential accumulation
// order — the package's single distance definition, shared by Build and
// Search so bounds and results agree bit for bit.
func dist(a, b []float64) float64 {
	s := 0.0
	for i, av := range a {
		d := av - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Build clusters the vectors and returns the index. All vectors must share
// one dimensionality and contain only finite values.
func Build(vecs [][]float64, cfg Config) (*Index, error) {
	if len(vecs) == 0 {
		return nil, fmt.Errorf("annindex: no vectors")
	}
	dim := len(vecs[0])
	if dim == 0 {
		return nil, fmt.Errorf("annindex: zero-dimensional vectors")
	}
	ix := &Index{dim: dim, data: make([]float64, len(vecs)*dim)}
	for i, v := range vecs {
		if len(v) != dim {
			return nil, fmt.Errorf("annindex: vector %d has dim %d, want %d", i, len(v), dim)
		}
		for j, x := range v {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return nil, fmt.Errorf("annindex: vector %d dim %d is not finite", i, j)
			}
		}
		copy(ix.data[i*dim:], v)
	}

	n := len(vecs)
	k := cfg.Clusters
	if k <= 0 {
		k = int(math.Sqrt(float64(n)))
	}
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	iters := cfg.Iters
	if iters <= 0 {
		iters = 8
	}

	// Seeded initialization: k distinct vector ids. rand.Perm is
	// deterministic in the seed, so the whole build is.
	rng := rand.New(rand.NewSource(cfg.Seed))
	centroids := make([][]float64, k)
	for c, id := range rng.Perm(n)[:k] {
		centroids[c] = append([]float64(nil), ix.vec(id)...)
	}

	// Fixed-count Lloyd iterations. Assignment ties go to the lowest
	// cluster index (strict < when comparing), and centroid sums accumulate
	// in ascending vector id order, so every run reproduces the same cells.
	assign := make([]int, n)
	counts := make([]int, k)
	sums := make([]float64, k*dim)
	for it := 0; it < iters; it++ {
		for i := 0; i < n; i++ {
			v := ix.vec(i)
			best, bestD := 0, dist(v, centroids[0])
			for c := 1; c < k; c++ {
				if d := dist(v, centroids[c]); d < bestD {
					best, bestD = c, d
				}
			}
			assign[i] = best
		}
		for i := range sums {
			sums[i] = 0
		}
		for i := range counts {
			counts[i] = 0
		}
		for i := 0; i < n; i++ {
			c := assign[i]
			counts[c]++
			row := sums[c*dim : (c+1)*dim]
			for j, x := range ix.vec(i) {
				row[j] += x
			}
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				continue // empty cell keeps its centroid
			}
			inv := 1 / float64(counts[c])
			for j := 0; j < dim; j++ {
				centroids[c][j] = sums[c*dim+j] * inv
			}
		}
	}

	// Final cells: members in ascending id (the assignment scan order),
	// empty cells dropped, radius = farthest member.
	for c := 0; c < k; c++ {
		if counts[c] == 0 {
			continue
		}
		cl := cluster{centroid: centroids[c]}
		for i := 0; i < n; i++ {
			if assign[i] != c {
				continue
			}
			cl.members = append(cl.members, int32(i))
			if d := dist(ix.vec(i), cl.centroid); d > cl.radius {
				cl.radius = d
			}
		}
		ix.clusters = append(ix.clusters, cl)
	}
	return ix, nil
}

// Hit is one Search result.
type Hit struct {
	ID   int     // vector id (the Build input position)
	Dist float64 // Euclidean distance to the query
}

// candOrder is the cluster visit order: ascending lower bound, ties by
// cluster position so the order is total.
type candOrder struct {
	cluster int
	lb      float64
}

// Search returns the k nearest indexed vectors to q, ordered by
// (distance ascending, id ascending) — exactly the brute-force top-k,
// including tie resolution. k <= 0 returns nil; k >= Len returns every
// vector ranked. The query must have the index dimensionality.
func (ix *Index) Search(q []float64, k int) []Hit {
	if k <= 0 || len(q) != ix.dim {
		return nil
	}
	if n := ix.Len(); k > n {
		k = n
	}

	order := make([]candOrder, len(ix.clusters))
	for c := range ix.clusters {
		lb := dist(q, ix.clusters[c].centroid) - ix.clusters[c].radius
		if lb < 0 {
			lb = 0
		}
		order[c] = candOrder{cluster: c, lb: lb}
	}
	slices.SortFunc(order, func(a, b candOrder) int {
		if a.lb != b.lb {
			if a.lb < b.lb {
				return -1
			}
			return 1
		}
		return a.cluster - b.cluster
	})

	best := make([]Hit, 0, k)
	for _, co := range order {
		// Prune only on a STRICT bound violation: a cluster whose lower
		// bound equals the current worst distance may still hold an
		// equal-distance member with a smaller id, which brute force would
		// prefer — so it must be scanned.
		if len(best) == k && co.lb > best[k-1].Dist {
			break
		}
		for _, id32 := range ix.clusters[co.cluster].members {
			id := int(id32)
			d := dist(q, ix.vec(id))
			if len(best) == k {
				w := best[k-1]
				if d > w.Dist || (d == w.Dist && id > w.ID) {
					continue
				}
				best = best[:k-1]
			}
			// Insert keeping (dist asc, id asc) order.
			pos := len(best)
			for pos > 0 && (best[pos-1].Dist > d || (best[pos-1].Dist == d && best[pos-1].ID > id)) {
				pos--
			}
			best = append(best, Hit{})
			copy(best[pos+1:], best[pos:])
			best[pos] = Hit{ID: id, Dist: d}
		}
	}
	return best
}
