// Package vulndb is the vulnerability database: for every CVE it stores
// the vulnerable and patched reference functions as compiled single-
// function binaries per architecture, plus the fuzzer-derived execution
// environments used for dynamic validation and profiling (Dataset II in the
// paper's evaluation; the paper's database holds 2,076 Android Security
// Bulletin vulnerabilities of which 25 are exercised end-to-end, which are
// exactly the 25 this database materializes).
//
// References are stored as binaries, not feature vectors, because both
// analysis stages need to *run* them on the target device's architecture:
// the static stage extracts the query feature vector from the reference
// compiled for the scanned image's architecture, and the dynamic stage
// executes the reference under the shared environments to obtain comparable
// traces — mirroring how the paper runs the CVE function binary on the same
// platform as the target firmware.
package vulndb

import (
	"encoding/json"
	"fmt"

	"repro/internal/binimg"
	"repro/internal/disasm"
	"repro/internal/features"
	"repro/internal/minic"
)

// EnvData is the serializable form of an execution environment.
type EnvData struct {
	Args []int64 `json:"args"`
	Data []byte  `json:"data"`
}

// ToEnv converts to a runtime environment.
func (e EnvData) ToEnv() *minic.Env {
	return &minic.Env{
		Args: append([]int64(nil), e.Args...),
		Data: append([]byte(nil), e.Data...),
	}
}

// FromEnv captures a runtime environment.
func FromEnv(env *minic.Env) EnvData {
	return EnvData{
		Args: append([]int64(nil), env.Args...),
		Data: append([]byte(nil), env.Data...),
	}
}

// Entry is one CVE record.
type Entry struct {
	ID       string `json:"id"`
	Library  string `json:"library"`
	FuncName string `json:"func"`
	Class    string `json:"class"`
	// Minute marks single-constant patches (the differential engine's
	// documented blind spot).
	Minute bool `json:"minute"`
	// Envs are the validated execution environments (the paper's K fixed
	// execution environments for this CVE).
	Envs []EnvData `json:"envs"`
	// VulnImages and PatchedImages map architecture name to the encoded
	// single-function reference binary.
	VulnImages    map[string][]byte `json:"vuln_images"`
	PatchedImages map[string][]byte `json:"patched_images"`
}

// Ref is a decoded, disassembled reference function.
type Ref struct {
	Dis *disasm.Disassembly
	Fn  *disasm.Function
}

// ref decodes and disassembles one stored reference image.
func (e *Entry) ref(images map[string][]byte, arch string) (*Ref, error) {
	raw, ok := images[arch]
	if !ok {
		return nil, fmt.Errorf("vulndb: %s: no reference for architecture %q", e.ID, arch)
	}
	im, err := binimg.Decode(raw)
	if err != nil {
		return nil, fmt.Errorf("vulndb: %s: %w", e.ID, err)
	}
	dis, err := disasm.Disassemble(im)
	if err != nil {
		return nil, fmt.Errorf("vulndb: %s: %w", e.ID, err)
	}
	fn, ok := dis.Lookup(e.FuncName)
	if !ok {
		return nil, fmt.Errorf("vulndb: %s: reference image lacks %s", e.ID, e.FuncName)
	}
	return &Ref{Dis: dis, Fn: fn}, nil
}

// VulnRef returns the vulnerable reference for the architecture.
func (e *Entry) VulnRef(arch string) (*Ref, error) {
	return e.ref(e.VulnImages, arch)
}

// PatchedRef returns the patched reference for the architecture.
func (e *Entry) PatchedRef(arch string) (*Ref, error) {
	return e.ref(e.PatchedImages, arch)
}

// StaticVec extracts the reference's static feature vector.
func (r *Ref) StaticVec() features.Vector {
	return features.Extract(r.Dis, r.Fn)
}

// Environments materializes the stored environments.
func (e *Entry) Environments() []*minic.Env {
	out := make([]*minic.Env, 0, len(e.Envs))
	for _, ed := range e.Envs {
		out = append(out, ed.ToEnv())
	}
	return out
}

// DB is the vulnerability database.
type DB struct {
	Entries []*Entry `json:"entries"`
}

// Get returns the entry for a CVE id.
func (db *DB) Get(id string) (*Entry, bool) {
	for _, e := range db.Entries {
		if e.ID == id {
			return e, true
		}
	}
	return nil, false
}

// IDs lists all CVE ids in database order.
func (db *DB) IDs() []string {
	out := make([]string, 0, len(db.Entries))
	for _, e := range db.Entries {
		out = append(out, e.ID)
	}
	return out
}

// Marshal serializes the database.
func (db *DB) Marshal() ([]byte, error) { return json.Marshal(db) }

// Load restores a database serialized with Marshal.
func Load(b []byte) (*DB, error) {
	db := &DB{}
	if err := json.Unmarshal(b, db); err != nil {
		return nil, fmt.Errorf("vulndb: %w", err)
	}
	for _, e := range db.Entries {
		if e.ID == "" || e.FuncName == "" {
			return nil, fmt.Errorf("vulndb: entry missing id or function name")
		}
	}
	return db, nil
}
