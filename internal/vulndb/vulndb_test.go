package vulndb

import (
	"testing"

	"repro/internal/binimg"
	"repro/internal/compiler"
	"repro/internal/isa"
	"repro/internal/minic"
)

func sampleDB(t *testing.T) *DB {
	t.Helper()
	pair := minic.CVEByID("CVE-2018-9412")
	e := &Entry{
		ID: pair.ID, Library: pair.Library, FuncName: pair.FuncName,
		Class:         pair.Class,
		VulnImages:    make(map[string][]byte),
		PatchedImages: make(map[string][]byte),
		Envs: []EnvData{{
			Args: []int64{minic.DataBase, 16, 1, 2},
			Data: []byte{4, 0, 0, 0, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1},
		}},
	}
	for _, arch := range isa.All() {
		vim, err := compiler.Compile(
			&minic.Module{Name: "v", Funcs: []*minic.Func{pair.Vulnerable}}, arch, compiler.O1)
		if err != nil {
			t.Fatal(err)
		}
		pim, err := compiler.Compile(
			&minic.Module{Name: "p", Funcs: []*minic.Func{pair.Patched}}, arch, compiler.O1)
		if err != nil {
			t.Fatal(err)
		}
		e.VulnImages[arch.Name] = binimg.Encode(vim)
		e.PatchedImages[arch.Name] = binimg.Encode(pim)
	}
	return &DB{Entries: []*Entry{e}}
}

func TestDBRoundtrip(t *testing.T) {
	db := sampleDB(t)
	b, err := db.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Load(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Entries) != 1 || got.Entries[0].ID != "CVE-2018-9412" {
		t.Fatalf("roundtrip lost entries: %+v", got.IDs())
	}
	e := got.Entries[0]
	if len(e.Envs) != 1 || len(e.Envs[0].Data) != 16 {
		t.Error("environments lost in roundtrip")
	}
}

func TestRefsDecodeAndRun(t *testing.T) {
	db := sampleDB(t)
	e := db.Entries[0]
	for _, arch := range isa.All() {
		vref, err := e.VulnRef(arch.Name)
		if err != nil {
			t.Fatalf("%s: %v", arch.Name, err)
		}
		pref, err := e.PatchedRef(arch.Name)
		if err != nil {
			t.Fatalf("%s: %v", arch.Name, err)
		}
		if vref.Fn.Name != e.FuncName || pref.Fn.Name != e.FuncName {
			t.Errorf("%s: wrong function resolved", arch.Name)
		}
		vv := vref.StaticVec()
		pv := pref.StaticVec()
		if vv == pv {
			t.Errorf("%s: vulnerable and patched have identical static features", arch.Name)
		}
	}
}

func TestEnvironmentsMaterialize(t *testing.T) {
	db := sampleDB(t)
	envs := db.Entries[0].Environments()
	if len(envs) != 1 || envs[0].Args[1] != 16 {
		t.Fatalf("Environments = %+v", envs)
	}
	// Materialized envs are fresh copies.
	envs[0].Data[0] = 99
	if db.Entries[0].Envs[0].Data[0] == 99 {
		t.Error("Environments aliases stored data")
	}
}

func TestGetAndIDs(t *testing.T) {
	db := sampleDB(t)
	if _, ok := db.Get("CVE-2018-9412"); !ok {
		t.Error("Get failed")
	}
	if _, ok := db.Get("CVE-0000-0000"); ok {
		t.Error("Get should miss")
	}
	if ids := db.IDs(); len(ids) != 1 {
		t.Errorf("IDs = %v", ids)
	}
}

func TestLoadRejectsBadData(t *testing.T) {
	if _, err := Load([]byte(`{"entries":[{"id":""}]}`)); err == nil {
		t.Error("want error for empty id")
	}
	if _, err := Load([]byte(`garbage`)); err == nil {
		t.Error("want error for garbage")
	}
}

func TestMissingArch(t *testing.T) {
	db := sampleDB(t)
	if _, err := db.Entries[0].VulnRef("mips"); err == nil {
		t.Error("want error for unknown arch")
	}
}

func TestEnvConversionRoundtrip(t *testing.T) {
	env := &minic.Env{Args: []int64{1, 2, 3}, Data: []byte{9, 8}}
	got := FromEnv(env).ToEnv()
	if got.Args[2] != 3 || got.Data[1] != 8 {
		t.Error("env roundtrip lost data")
	}
	got.Args[0] = 99
	if env.Args[0] == 99 {
		t.Error("conversion aliases the original")
	}
}
