package baseline

import (
	"testing"

	"repro/internal/compiler"
	"repro/internal/disasm"
	"repro/internal/isa"
	"repro/internal/minic"
)

func funcsFor(t *testing.T, mod *minic.Module, arch *isa.Arch, lvl compiler.Level) map[string]*disasm.Function {
	t.Helper()
	im, err := compiler.Compile(mod, arch, lvl)
	if err != nil {
		t.Fatal(err)
	}
	dis, err := disasm.Disassemble(im)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]*disasm.Function, len(dis.Funcs))
	for _, f := range dis.Funcs {
		out[f.Name] = f
	}
	return out
}

func TestScorersBasicProperties(t *testing.T) {
	mod := minic.GenLibrary(minic.GenConfig{Seed: 61, Name: "libbase", NumFuncs: 8})
	fs := funcsFor(t, mod, isa.AMD64, compiler.O1)
	for _, sc := range Scorers() {
		for _, f := range fs {
			s := sc.Score(f, f)
			if s < 0.99 || s > 1.0001 {
				t.Errorf("%s: self-similarity %v, want ~1", sc.Name, s)
			}
		}
		// Symmetry.
		var a, b *disasm.Function
		for _, f := range fs {
			if a == nil {
				a = f
			} else if b == nil {
				b = f
			}
		}
		if s1, s2 := sc.Score(a, b), sc.Score(b, a); s1 != s2 {
			t.Errorf("%s: asymmetric scores %v vs %v", sc.Name, s1, s2)
		}
		// Range.
		if s := sc.Score(a, b); s < 0 || s > 1 {
			t.Errorf("%s: score %v out of [0,1]", sc.Name, s)
		}
	}
	// Degenerate empty functions.
	var empty disasm.Function
	if BinDiff(&empty, &empty) != 0 {
		t.Error("empty-function BinDiff should be 0")
	}
	if GraphEmbedding(&empty, &empty) != 0.5 { // zero vectors -> cosine 0 -> 0.5
		t.Error("empty-function embedding cosine should map to 0.5")
	}
}

// TestCrossLevelRetrieval checks the property the baselines are used for:
// the same source function compiled at another level should rank above most
// unrelated functions — but (as the paper argues) less reliably than the
// trained detector, especially cross-architecture.
func TestCrossLevelRetrieval(t *testing.T) {
	mod := minic.GenLibrary(minic.GenConfig{Seed: 62, Name: "libret", NumFuncs: 12})
	q := funcsFor(t, mod, isa.AMD64, compiler.O0)
	tg := funcsFor(t, mod, isa.AMD64, compiler.O2)
	names := make([]string, 0, len(tg))
	targets := make([]*disasm.Function, 0, len(tg))
	for n, f := range tg {
		names = append(names, n)
		targets = append(targets, f)
	}
	for _, sc := range Scorers() {
		top3 := 0
		for qname, qf := range q {
			ranked := RankByScore(sc.Score, qf, targets)
			for r := 0; r < 3 && r < len(ranked); r++ {
				if names[ranked[r]] == qname {
					top3++
					break
				}
			}
		}
		t.Logf("%s: same-arch cross-level top-3 retrieval %d/%d", sc.Name, top3, len(q))
		if top3 < len(q)/3 {
			t.Errorf("%s: retrieval %d/%d is below even the baseline floor", sc.Name, top3, len(q))
		}
	}
}

func TestEmbedDeterministic(t *testing.T) {
	mod := minic.GenLibrary(minic.GenConfig{Seed: 63, Name: "libdet", NumFuncs: 4})
	fs := funcsFor(t, mod, isa.XARM64, compiler.O2)
	for _, f := range fs {
		if Embed(f) != Embed(f) {
			t.Errorf("%s: nondeterministic embedding", f.Name)
		}
	}
}

func TestCosine(t *testing.T) {
	a := [EmbedDim]float64{1, 0, 0, 0, 0, 0, 0, 0}
	b := [EmbedDim]float64{0, 1, 0, 0, 0, 0, 0, 0}
	if c := Cosine(a, a); c < 0.999 {
		t.Errorf("Cosine(a,a) = %v", c)
	}
	if c := Cosine(a, b); c != 0 {
		t.Errorf("orthogonal cosine = %v", c)
	}
	var zero [EmbedDim]float64
	if c := Cosine(a, zero); c != 0 {
		t.Errorf("zero-vector cosine = %v", c)
	}
}
