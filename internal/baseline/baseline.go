// Package baseline implements the two prior-art static similarity
// approaches the paper positions PATCHECKO against (§VI):
//
//   - BinDiff-style bipartite CFG matching [44, 32]: recover both
//     functions' control-flow graphs, greedily match basic blocks by
//     attribute similarity, and score the match quality. "BinDiff starts by
//     recovering the control flow graphs of the two binaries and then
//     attempts to use a heuristic to normalize and match the vertices."
//   - Graph-embedding similarity in the style of Xu et al. [41] (the
//     "current state of the art" the paper builds on): propagate per-block
//     attribute vectors over the CFG for a fixed number of rounds,
//     sum-pool into a function embedding, and compare by cosine. The paper
//     reports such models reach ~80% detection accuracy but leave 600+
//     candidates in a 3000-function binary.
//
// Both baselines are deterministic, training-free scorers over the same
// disassembly PATCHECKO uses, which makes the comparison in the benchmarks
// apples-to-apples: same binaries, same ground truth, different similarity
// function.
package baseline

import (
	"math"
	"sort"

	"repro/internal/disasm"
)

// blockVec is the per-basic-block attribute vector shared by both
// baselines (instruction count, byte size, calls, arithmetic, loads,
// stores, branches, out-degree) — the "basic block-level attributes"
// prior work extracts.
const blockVecDim = 8

func blockVector(fn *disasm.Function, b *disasm.Block) [blockVecDim]float64 {
	var v [blockVecDim]float64
	v[0] = float64(b.NumInstrs())
	v[1] = float64(fn.ByteSize(b))
	for i := b.First; i <= b.Last; i++ {
		op := fn.Instrs[i].Op
		switch {
		case op.IsCall():
			v[2]++
		case op.IsArith() || op.IsArithFP():
			v[3]++
		case op.IsLoad():
			v[4]++
		case op.IsStore():
			v[5]++
		case op.IsBranch():
			v[6]++
		}
	}
	v[7] = float64(len(b.Succs))
	return v
}

// blockDistance is a normalized L1 distance between block vectors.
func blockDistance(a, b [blockVecDim]float64) float64 {
	var d float64
	for i := range a {
		num := math.Abs(a[i] - b[i])
		den := a[i] + b[i] + 1
		d += num / den
	}
	return d / blockVecDim
}

// BinDiff scores the similarity of two functions in [0, 1] by greedy
// bipartite matching of their basic blocks: blocks pair up best-first by
// attribute distance; the score is the mean matched similarity discounted
// by the fraction of unmatched blocks.
func BinDiff(fa *disasm.Function, fb *disasm.Function) float64 {
	na, nb := len(fa.Blocks), len(fb.Blocks)
	if na == 0 || nb == 0 {
		return 0
	}
	va := make([][blockVecDim]float64, na)
	for i := range fa.Blocks {
		va[i] = blockVector(fa, &fa.Blocks[i])
	}
	vb := make([][blockVecDim]float64, nb)
	for i := range fb.Blocks {
		vb[i] = blockVector(fb, &fb.Blocks[i])
	}
	type edge struct {
		i, j int
		d    float64
	}
	edges := make([]edge, 0, na*nb)
	for i := 0; i < na; i++ {
		for j := 0; j < nb; j++ {
			edges = append(edges, edge{i: i, j: j, d: blockDistance(va[i], vb[j])})
		}
	}
	sort.Slice(edges, func(x, y int) bool {
		if edges[x].d != edges[y].d {
			return edges[x].d < edges[y].d
		}
		if edges[x].i != edges[y].i {
			return edges[x].i < edges[y].i
		}
		return edges[x].j < edges[y].j
	})
	usedA := make([]bool, na)
	usedB := make([]bool, nb)
	var simSum float64
	matched := 0
	for _, e := range edges {
		if usedA[e.i] || usedB[e.j] {
			continue
		}
		usedA[e.i] = true
		usedB[e.j] = true
		simSum += 1 - e.d
		matched++
	}
	maxBlocks := na
	if nb > maxBlocks {
		maxBlocks = nb
	}
	return simSum / float64(maxBlocks)
}

// EmbedRounds is the number of propagation rounds of the graph embedding
// (Xu et al. use T=5).
const EmbedRounds = 5

// EmbedDim is the embedding width: the block vector plus a neighbour
// aggregate per round collapses back to blockVecDim via the fixed mixing
// below, so embeddings stay blockVecDim-wide.
const EmbedDim = blockVecDim

// Embed computes a structure2vec-style function embedding: every block
// starts from its attribute vector; for T rounds each block adds a damped
// sum of its successors' embeddings passed through a ReLU; the function
// embedding is the sum over blocks. No training is involved — this is the
// untrained-propagation variant, which prior work shows already captures
// most CFG structure.
func Embed(fn *disasm.Function) [EmbedDim]float64 {
	n := len(fn.Blocks)
	var out [EmbedDim]float64
	if n == 0 {
		return out
	}
	cur := make([][EmbedDim]float64, n)
	for i := range fn.Blocks {
		cur[i] = blockVector(fn, &fn.Blocks[i])
	}
	const damping = 0.5
	for round := 0; round < EmbedRounds; round++ {
		next := make([][EmbedDim]float64, n)
		for i := range fn.Blocks {
			agg := cur[i]
			for _, s := range fn.Blocks[i].Succs {
				for k := 0; k < EmbedDim; k++ {
					agg[k] += damping * cur[s][k]
				}
			}
			// ReLU with a fixed alternating-sign mix to break symmetry, the
			// untrained analog of the embedding network's nonlinearity.
			for k := 0; k < EmbedDim; k++ {
				v := agg[k] - 0.1*agg[(k+1)%EmbedDim]
				if v < 0 {
					v = 0
				}
				next[i][k] = v
			}
		}
		cur = next
	}
	for i := range cur {
		for k := 0; k < EmbedDim; k++ {
			out[k] += cur[i][k]
		}
	}
	// Log-compress: block counts vary over orders of magnitude.
	for k := 0; k < EmbedDim; k++ {
		out[k] = math.Log1p(out[k])
	}
	return out
}

// Cosine scores two embeddings in [-1, 1].
func Cosine(a, b [EmbedDim]float64) float64 {
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

// GraphEmbedding scores two functions via embedding cosine, mapped to
// [0, 1] to be comparable with the other scorers.
func GraphEmbedding(fa, fb *disasm.Function) float64 {
	return (Cosine(Embed(fa), Embed(fb)) + 1) / 2
}

// Scorer is a static function-similarity scorer.
type Scorer struct {
	Name  string
	Score func(a, b *disasm.Function) float64
}

// Scorers returns the baseline scorers.
func Scorers() []Scorer {
	return []Scorer{
		{Name: "bindiff-bipartite", Score: BinDiff},
		{Name: "graph-embedding", Score: GraphEmbedding},
	}
}

// RankByScore orders target indexes by descending similarity to the query
// function.
func RankByScore(score func(a, b *disasm.Function) float64, query *disasm.Function,
	targets []*disasm.Function) []int {
	type scored struct {
		idx int
		s   float64
	}
	ss := make([]scored, len(targets))
	for i, t := range targets {
		ss[i] = scored{idx: i, s: score(query, t)}
	}
	sort.Slice(ss, func(x, y int) bool {
		if ss[x].s != ss[y].s {
			return ss[x].s > ss[y].s
		}
		return ss[x].idx < ss[y].idx
	})
	out := make([]int, len(ss))
	for i, s := range ss {
		out[i] = s.idx
	}
	return out
}
