package experiments

import (
	"io"
	"strings"

	"repro/internal/corpus"
	"repro/patchecko"
)

// The paper's §II-A motivates the scale problem with a firmware census:
// "For Android Things 1.0, we found 379 different libraries that included
// 440,532 functions, while IOS 12.0.1 contained 198 different libraries
// with 93,714 functions." Census reproduces that table over the generated
// device firmware (including the iOS stand-in, which is not part of the
// evaluation tables but is part of Dataset III).

// CensusRow is one device's firmware inventory.
type CensusRow struct {
	Device    string
	Arch      string
	Libraries int
	Functions int
	TextBytes int
}

// CensusResult is the firmware inventory across devices.
type CensusResult struct {
	Rows []CensusRow
}

// Census counts libraries and recovered functions per device. The iOS
// stand-in is built on demand at the suite's scale.
func (s *Suite) Census() (CensusResult, error) {
	devices := append(Devices(), corpus.FruitOS)
	res := CensusResult{}
	for _, dev := range devices {
		fw, ok := s.Firmware[dev.Name]
		if !ok {
			var err error
			fw, err = corpus.BuildFirmware(dev, s.Cfg.Scale)
			if err != nil {
				return CensusResult{}, err
			}
			prep := make(map[string]*patchecko.PreparedImage, len(fw.Images))
			for _, im := range fw.Images {
				p, err := patchecko.Prepare(im)
				if err != nil {
					return CensusResult{}, err
				}
				prep[im.LibName] = p
			}
			s.Firmware[dev.Name] = fw
			s.prepared[dev.Name] = prep
		}
		row := CensusRow{Device: dev.Name, Arch: fw.Arch, Libraries: len(fw.Images)}
		for _, p := range s.prepared[dev.Name] {
			row.Functions += p.NumFuncs()
			row.TextBytes += len(p.Image.Text)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render prints the census.
func (r CensusResult) Render(w io.Writer) {
	fprintf(w, "Firmware census (§II-A motivation: libraries and functions per device)\n")
	fprintf(w, "%-16s %-8s %10s %10s %12s\n", "device", "arch", "libraries", "functions", "text_bytes")
	for _, row := range r.Rows {
		fprintf(w, "%-16s %-8s %10d %10d %12d\n", row.Device, row.Arch, row.Libraries, row.Functions, row.TextBytes)
	}
}

// --- ASCII chart helpers: figures render as figures ---

// bar renders a horizontal bar of width proportional to v/max.
func bar(v, max float64, width int) string {
	if max <= 0 {
		return ""
	}
	n := int(v / max * float64(width))
	if n > width {
		n = width
	}
	if n < 0 {
		n = 0
	}
	return strings.Repeat("#", n)
}

// RenderChart draws Fig. 7 as grouped horizontal bars, one group per CVE,
// like the paper's bar figure.
func (r Fig7Result) RenderChart(w io.Writer) {
	fprintf(w, "Fig. 7 — static-stage false positive rate (bars, %% of functions)\n")
	maxRate := 0.0
	for _, row := range r.Rows {
		for _, d := range r.Devices {
			for _, c := range row.Cells[d] {
				if rate := c.Rate(); rate > maxRate {
					maxRate = rate
				}
			}
		}
	}
	const width = 40
	for _, row := range r.Rows {
		fprintf(w, "%s\n", row.CVE)
		for _, d := range r.Devices {
			v := row.Cells[d][patchecko.QueryVulnerable].Rate()
			p := row.Cells[d][patchecko.QueryPatched].Rate()
			fprintf(w, "  %-12s vuln  %6.2f%% |%-*s|\n", d, 100*v, width, bar(v, maxRate, width))
			fprintf(w, "  %-12s patch %6.2f%% |%-*s|\n", d, 100*p, width, bar(p, maxRate, width))
		}
	}
}

// RenderChart draws the Fig. 8 accuracy/loss curves as aligned sparkline
// columns.
func (r Fig8Result) RenderChart(w io.Writer) {
	fprintf(w, "Fig. 8 — training curves (bars: train_acc and train_loss per epoch)\n")
	maxLoss := 0.0
	for _, e := range r.Epochs {
		if e.TrainLoss > maxLoss {
			maxLoss = e.TrainLoss
		}
	}
	const width = 40
	for _, e := range r.Epochs {
		fprintf(w, "epoch %2d  acc  %.4f |%-*s|\n", e.Epoch, e.TrainAcc, width, bar(e.TrainAcc, 1, width))
		fprintf(w, "          loss %.4f |%-*s|\n", e.TrainLoss, width, bar(e.TrainLoss, maxLoss, width))
	}
}
