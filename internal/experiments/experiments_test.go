package experiments

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"

	"repro/internal/corpus"
	"repro/patchecko"
)

var (
	suiteOnce sync.Once
	suite     *Suite
	suiteErr  error
)

func testSuite(t *testing.T) *Suite {
	t.Helper()
	suiteOnce.Do(func() {
		suite, suiteErr = NewSuite(context.Background(), Config{Scale: corpus.ScaleSmall, Seed: 42})
	})
	if suiteErr != nil {
		t.Fatal(suiteErr)
	}
	return suite
}

func TestFig8Shape(t *testing.T) {
	s := testSuite(t)
	r := s.Fig8()
	if len(r.Epochs) == 0 {
		t.Fatal("no training history")
	}
	first, last := r.Epochs[0], r.Epochs[len(r.Epochs)-1]
	if last.TrainLoss >= first.TrainLoss {
		t.Errorf("training loss did not decrease: %.4f -> %.4f", first.TrainLoss, last.TrainLoss)
	}
	if last.ValAcc < 0.8 {
		t.Errorf("final validation accuracy %.3f < 0.8", last.ValAcc)
	}
	if r.TestAcc < 0.8 {
		t.Errorf("test accuracy %.3f < 0.8", r.TestAcc)
	}
	if r.TestAUC < 0.85 {
		t.Errorf("test AUC %.3f < 0.85", r.TestAUC)
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "Fig. 8") {
		t.Error("render missing header")
	}
}

func TestFig7Shape(t *testing.T) {
	s := testSuite(t)
	r, err := s.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 25 || len(r.Devices) != 2 {
		t.Fatalf("Fig7 has %d rows / %d devices", len(r.Rows), len(r.Devices))
	}
	var anyFP bool
	for _, row := range r.Rows {
		for _, d := range r.Devices {
			for _, cell := range row.Cells[d] {
				if rate := cell.Rate(); rate < 0 || rate > 1 {
					t.Errorf("%s/%s: FP rate %v out of range", row.CVE, d, rate)
				}
				if cell.FalsePositives > 0 {
					anyFP = true
				}
			}
		}
	}
	if !anyFP {
		t.Error("static stage produced no false positives at all — implausible for a similarity model")
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "CVE-2018-9412") {
		t.Error("render missing rows")
	}
}

func TestTable3CaseStudy(t *testing.T) {
	s := testSuite(t)
	r, err := s.Table3(context.Background(), corpus.ThingOS.Name, "CVE-2018-9412")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) < 2 {
		t.Fatalf("only %d profile rows", len(r.Rows))
	}
	last := r.Rows[len(r.Rows)-1]
	if last.Label != "Vulnerable function" {
		t.Errorf("last row should be the reference, got %s", last.Label)
	}
	if last.Features[5] == 0 { // F6: instruction_num
		t.Error("reference executed zero instructions")
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "F21") {
		t.Error("render missing feature columns")
	}
}

func TestTables4And5Rankings(t *testing.T) {
	s := testSuite(t)
	for _, mode := range []patchecko.QueryMode{patchecko.QueryVulnerable, patchecko.QueryPatched} {
		r, err := s.Ranking(context.Background(), corpus.ThingOS.Name, "CVE-2018-9412", mode, 10)
		if err != nil {
			t.Fatal(err)
		}
		if len(r.Rows) == 0 {
			t.Fatalf("%v: empty ranking", mode)
		}
		if len(r.Rows) > 10 {
			t.Errorf("%v: topN not honoured", mode)
		}
		for i := 1; i < len(r.Rows); i++ {
			if r.Rows[i].Sim < r.Rows[i-1].Sim {
				t.Errorf("%v: ranking not ascending", mode)
			}
		}
	}
	// The vulnerable-query top hit must be the true function (ThingOS
	// carries the vulnerable version): the paper's Table IV shows
	// candidate_29 == removeUnsynchronization at the top.
	r, err := s.Ranking(context.Background(), corpus.ThingOS.Name, "CVE-2018-9412", patchecko.QueryVulnerable, 10)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows[0].GroundTruth != "removeUnsynchronization" {
		t.Errorf("top-ranked ground truth = %s, want removeUnsynchronization", r.Rows[0].GroundTruth)
	}
}

func TestTable6And7Pipeline(t *testing.T) {
	s := testSuite(t)
	for _, mode := range []patchecko.QueryMode{patchecko.QueryVulnerable, patchecko.QueryPatched} {
		r, err := s.Pipeline(context.Background(), corpus.ThingOS.Name, mode)
		if err != nil {
			t.Fatal(err)
		}
		if len(r.Rows) != 25 {
			t.Fatalf("%v: %d rows", mode, len(r.Rows))
		}
		found, top3 := 0, 0
		for _, row := range r.Rows {
			if row.TP+row.FP+row.TN+row.FN != row.Total {
				t.Errorf("%s: confusion cells don't sum to total", row.CVE)
			}
			if row.Execution > row.TP+row.FP {
				t.Errorf("%s: more executions than candidates", row.CVE)
			}
			if row.Ranking > 0 {
				found++
				if row.Ranking <= 3 {
					top3++
				}
			}
		}
		if found < 15 {
			t.Errorf("%v: true function located for only %d/25 CVEs", mode, found)
		}
		if float64(top3) < 0.9*float64(found) {
			t.Errorf("%v: top-3 rate %d/%d below 90%% (paper: 100%%)", mode, top3, found)
		}
		var buf bytes.Buffer
		r.Render(&buf)
		if !strings.Contains(buf.String(), "average FP rate") {
			t.Error("render missing summary")
		}
	}
}

func TestTable8Verdicts(t *testing.T) {
	s := testSuite(t)
	r, err := s.Verdicts(context.Background(), corpus.ThingOS.Name)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 25 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	if acc := r.Accuracy(); acc < 0.8 {
		t.Errorf("patch detection accuracy %.2f < 0.8 (paper: 0.96)", acc)
	}
	// The one-integer patch is the engine's expected blind spot: ThingOS is
	// vulnerable but the tie-break reports patched, as in Table VIII.
	for _, row := range r.Rows {
		if row.CVE != "CVE-2018-9470" {
			continue
		}
		if row.GroundTruth {
			t.Fatal("fixture: 9470 should be unpatched on ThingOS")
		}
		if row.Found && !row.Reported {
			t.Error("CVE-2018-9470 was classified correctly — the minute-patch blind spot disappeared")
		}
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "patch detection accuracy") {
		t.Error("render missing accuracy line")
	}
}

func TestHeadlines(t *testing.T) {
	s := testSuite(t)
	h, err := s.Headlines(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h.TestAccuracy < 0.8 || h.TestAUC < 0.85 {
		t.Errorf("model headline metrics too low: %+v", h)
	}
	if h.Top3Rate < 0.85 {
		t.Errorf("top-3 rate %.2f below 0.85", h.Top3Rate)
	}
	if h.PatchAccuracy < 0.8 {
		t.Errorf("patch accuracy %.2f below 0.8", h.PatchAccuracy)
	}
}

func TestAblations(t *testing.T) {
	s := testSuite(t)
	dist, err := s.AblateDistance(context.Background(), corpus.ThingOS.Name)
	if err != nil {
		t.Fatal(err)
	}
	if len(dist.Rows) != 4 {
		t.Fatalf("distance ablation has %d rows", len(dist.Rows))
	}
	for _, row := range dist.Rows {
		if row.Found == 0 {
			t.Errorf("%s: nothing rankable", row.Config)
		}
	}
	envs, err := s.AblateEnvironments(context.Background(), corpus.ThingOS.Name)
	if err != nil {
		t.Fatal(err)
	}
	if len(envs.Rows) == 0 {
		t.Fatal("environment ablation empty")
	}
	hyb, err := s.AblateHybrid(context.Background(), corpus.ThingOS.Name)
	if err != nil {
		t.Fatal(err)
	}
	pruned := 0
	for _, row := range hyb.Rows {
		if row.Survivors > row.Candidates {
			t.Errorf("%s: survivors exceed candidates", row.CVE)
		}
		if row.Survivors < row.Candidates {
			pruned++
		}
	}
	if pruned == 0 {
		t.Error("dynamic validation pruned nothing across 25 CVEs — implausible")
	}
	var buf bytes.Buffer
	dist.Render(&buf)
	envs.Render(&buf)
	hyb.Render(&buf)
	if buf.Len() == 0 {
		t.Error("ablation renders empty")
	}
}

func TestExploitReplayAblation(t *testing.T) {
	s := testSuite(t)
	base, err := s.Verdicts(context.Background(), corpus.ThingOS.Name)
	if err != nil {
		t.Fatal(err)
	}
	replay, err := s.VerdictsWithReplay(context.Background(), corpus.ThingOS.Name)
	if err != nil {
		t.Fatal(err)
	}
	if replay.Accuracy() < base.Accuracy() {
		t.Errorf("replay reduced accuracy: %.2f -> %.2f", base.Accuracy(), replay.Accuracy())
	}
	// The minute patch must flip from the blind-spot default to correct.
	for _, row := range replay.Rows {
		if row.CVE == "CVE-2018-9470" && row.Found && row.Reported != row.GroundTruth {
			t.Error("exploit replay failed to resolve the CVE-2018-9470 blind spot")
		}
	}
}

func TestBaselineComparison(t *testing.T) {
	s := testSuite(t)
	r, err := s.Baselines(corpus.ThingOS.Name)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("%d scorer rows, want 3", len(r.Rows))
	}
	byName := make(map[string]BaselineRow, len(r.Rows))
	for _, row := range r.Rows {
		byName[row.Scorer] = row
		if row.Total == 0 {
			t.Fatalf("%s: no rankable CVEs", row.Scorer)
		}
		if row.Top1 > row.Top3 || row.Top3 > row.Top10 || row.Top10 > row.Total {
			t.Errorf("%s: inconsistent rank counters %+v", row.Scorer, row)
		}
	}
	det := byName["patchecko-detector"]
	for _, name := range []string{"bindiff-bipartite", "graph-embedding"} {
		if byName[name].Top3 > det.Top3 {
			t.Errorf("%s beats the trained detector on top-3 (%d vs %d) — the paper's comparison inverts",
				name, byName[name].Top3, det.Top3)
		}
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "patchecko-detector") {
		t.Error("render missing rows")
	}
}

func TestFeatureGroupAblation(t *testing.T) {
	s := testSuite(t)
	r, err := s.AblateFeatureGroups()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("%d rows, want 3", len(r.Rows))
	}
	byGroup := make(map[string]FeatureGroupRow)
	for _, row := range r.Rows {
		byGroup[row.Group] = row
		if row.TestAcc < 0.5 || row.TestAUC < 0.5 {
			t.Errorf("%s: worse than chance (%+v)", row.Group, row)
		}
	}
	full := byGroup["full"]
	for _, g := range []string{"instruction-mix", "cfg-shape"} {
		if byGroup[g].TestAcc > full.TestAcc+0.02 {
			t.Errorf("%s alone beats the full feature set by >2%% (%.3f vs %.3f)",
				g, byGroup[g].TestAcc, full.TestAcc)
		}
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "cfg-shape") {
		t.Error("render missing groups")
	}
}

func TestObfuscationAblation(t *testing.T) {
	s := testSuite(t)
	r, err := s.AblateObfuscation()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Clean.Rows) != len(r.Obfuscated.Rows) || len(r.Clean.Rows) != 3 {
		t.Fatalf("row mismatch: %d clean vs %d obf", len(r.Clean.Rows), len(r.Obfuscated.Rows))
	}
	for i := range r.Clean.Rows {
		if r.Clean.Rows[i].Scorer != r.Obfuscated.Rows[i].Scorer {
			t.Fatal("scorer rows misaligned")
		}
		if r.Obfuscated.Rows[i].Total == 0 {
			t.Errorf("%s: obfuscated firmware not rankable", r.Clean.Rows[i].Scorer)
		}
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "obf_top3") {
		t.Error("render missing columns")
	}
	t.Log("\n" + buf.String())
}

// TestRetrievalSuiteEquivalence pins the Config.Retrieval wiring: at the
// default top-K the retrieval suite's rendered artifacts are byte-identical
// to the exact suite's on the same (scale, seed) — retrieval is a perf knob,
// never a results knob.
func TestRetrievalSuiteEquivalence(t *testing.T) {
	ctx := context.Background()
	base := Config{Scale: corpus.ScaleTiny, Seed: 42, Workers: 4}
	exact, err := NewSuite(ctx, base)
	if err != nil {
		t.Fatal(err)
	}
	withRet := base
	withRet.Retrieval = true
	ret, err := NewSuite(ctx, withRet)
	if err != nil {
		t.Fatal(err)
	}
	if ret.Analyzer.Embedder == nil {
		t.Fatal("Retrieval config did not install an embedder")
	}
	dev := corpus.ThingOS.Name
	render := func(s *Suite) string {
		var buf bytes.Buffer
		f7, err := s.Fig7()
		if err != nil {
			t.Fatal(err)
		}
		f7.Render(&buf)
		v, err := s.Verdicts(ctx, dev)
		if err != nil {
			t.Fatal(err)
		}
		v.Render(&buf)
		return buf.String()
	}
	if got, want := render(ret), render(exact); got != want {
		t.Errorf("retrieval suite artifacts diverge from exact suite:\n got:\n%s\nwant:\n%s", got, want)
	}
}

// TestPrefilterAblation locks the prefilter ablation's contract: every
// fixture keeps all ground-truth cells (recall exactly 1.0), prunes a
// non-trivial slice of the grid, stays byte-identical to the full scan, and
// the fleet fixture clears the 2x grid-reduction floor DESIGN.md records.
func TestPrefilterAblation(t *testing.T) {
	ctx := context.Background()
	s, err := NewSuite(ctx, Config{Scale: corpus.ScaleTiny, Seed: 42, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.AblatePrefilter(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(Devices()) + 1; len(r.Rows) != want {
		t.Fatalf("got %d rows, want %d (devices + fleet)", len(r.Rows), want)
	}
	var fleet *PrefilterRow
	for i := range r.Rows {
		row := &r.Rows[i]
		if row.Recall != 1.0 {
			t.Errorf("%s: ground-truth recall %.3f, want exactly 1.0", row.Fixture, row.Recall)
		}
		if !row.Identical {
			t.Errorf("%s: pruned report is not byte-identical to the full grid", row.Fixture)
		}
		if row.Pruned <= 0 {
			t.Errorf("%s: prefilter pruned nothing (grid %d)", row.Fixture, row.GridCells)
		}
		if row.GridCells <= 0 || row.Pruned >= row.GridCells {
			t.Errorf("%s: implausible grid accounting: %d pruned of %d", row.Fixture, row.Pruned, row.GridCells)
		}
		if strings.HasPrefix(row.Fixture, "fleet-") {
			fleet = row
		}
	}
	if fleet == nil {
		t.Fatal("no fleet fixture row")
	}
	if fleet.Reduction < 2 {
		t.Errorf("fleet grid reduction %.2fx below the 2x floor", fleet.Reduction)
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "prefilter") {
		t.Error("render missing header")
	}
}

func TestCensusAndCharts(t *testing.T) {
	s := testSuite(t)
	c, err := s.Census()
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Rows) != 3 {
		t.Fatalf("%d census rows, want 3 (two evaluation devices + the iOS stand-in)", len(c.Rows))
	}
	for _, row := range c.Rows {
		if row.Libraries == 0 || row.Functions == 0 || row.TextBytes == 0 {
			t.Errorf("%s: empty census row %+v", row.Device, row)
		}
		if row.Functions < row.Libraries {
			t.Errorf("%s: fewer functions than libraries", row.Device)
		}
	}
	var buf bytes.Buffer
	c.Render(&buf)
	if !strings.Contains(buf.String(), "fruitos-12") {
		t.Error("census missing the iOS stand-in")
	}

	// Charts render with bars and plausible extents.
	f7, err := s.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	f7.RenderChart(&buf)
	if !strings.Contains(buf.String(), "#") {
		t.Error("Fig.7 chart has no bars")
	}
	buf.Reset()
	s.Fig8().RenderChart(&buf)
	if !strings.Contains(buf.String(), "acc") || !strings.Contains(buf.String(), "#") {
		t.Error("Fig.8 chart malformed")
	}
	// bar() edge cases.
	if bar(1, 0, 10) != "" || bar(-1, 1, 10) != "" || len(bar(5, 1, 10)) != 10 {
		t.Error("bar clamping wrong")
	}
}
