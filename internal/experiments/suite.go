// Package experiments reproduces every table and figure of the paper's
// evaluation (§V): Fig. 7 (per-CVE false-positive rates on two devices for
// vulnerable and patched query vectors), Fig. 8 (training accuracy/loss
// curves), Table III (dynamic feature profiles of candidate functions),
// Tables IV/V (similarity rankings), Tables VI/VII (full pipeline accuracy
// and timing per CVE), Table VIII (final patch verdicts vs ground truth),
// plus the ablations DESIGN.md calls out. Each experiment is a pure
// function of a Suite, so the CLI and the benchmarks share one
// implementation.
package experiments

import (
	"context"
	"fmt"
	"io"
	"runtime"

	"repro/internal/cas"
	"repro/internal/corpus"
	"repro/internal/detector"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/patchecko"
)

// Config parameterizes a suite.
type Config struct {
	Scale corpus.Scale
	Seed  int64
	// Epochs overrides the scale's training epochs when > 0.
	Epochs int
	// Workers sizes the analyzer's scan worker pool and parallelizes
	// firmware preparation during setup. Every experiment artifact is
	// bit-identical at any worker count; <= 0 keeps scanning sequential.
	Workers int
	// Obs, when non-nil, receives the analyzer's pipeline counters and
	// trace events; experiment artifacts are byte-identical either way.
	Obs *obs.Metrics
	// NoDedup disables the analyzer's content-addressed dedup path,
	// forcing every (query, function) pair to be scored and validated
	// independently. Experiment artifacts are byte-identical either way.
	NoDedup bool
	// NoPrefilter disables the component-identification prefilter, scanning
	// the full (image, CVE, mode) grid. Experiment artifacts are
	// byte-identical either way; AblatePrefilter measures the difference.
	NoPrefilter bool
	// Retrieval routes the static stage through the embedding index
	// (distilled from the trained model at Seed): top-K nomination + exact
	// rescoring. TopK overrides the nomination budget when > 0. At the
	// default budget the fixture images' unique-body counts are covered, so
	// artifacts stay byte-identical to the exact scan.
	Retrieval bool
	TopK      int
	// Log, when non-nil, receives progress lines during setup.
	Log func(string)
}

// Suite owns the trained model, the vulnerability database and the two
// device firmware images, shared by all experiments.
type Suite struct {
	Cfg      Config
	Model    *patchecko.Model
	History  *nn.History
	Dataset  *detector.Dataset
	DB       *patchecko.DB
	Analyzer *patchecko.Analyzer

	Firmware map[string]*patchecko.Firmware // by device name
	prepared map[string]map[string]*patchecko.PreparedImage
	// scanCache memoizes scansForDevice so the three ranking ablations
	// share one vulnerable-query sweep per device instead of re-scanning.
	scanCache map[string]deviceScans
}

// deviceScans is one device's memoized vulnerable-query sweep.
type deviceScans struct {
	scans  map[string]*patchecko.CVEScan
	truths map[string]uint64
}

// Devices returns the evaluation devices in presentation order.
func Devices() []corpus.Device {
	return []corpus.Device{corpus.ThingOS, corpus.Pebble2XL}
}

// NewSuite builds the corpus, trains the detector and prepares both
// firmware images. Everything is deterministic in (Scale, Seed).
func NewSuite(ctx context.Context, cfg Config) (*Suite, error) {
	logf := cfg.Log
	if logf == nil {
		logf = func(string) {}
	}
	s := &Suite{
		Cfg:       cfg,
		Firmware:  make(map[string]*patchecko.Firmware),
		prepared:  make(map[string]map[string]*patchecko.PreparedImage),
		scanCache: make(map[string]deviceScans),
	}
	logf(fmt.Sprintf("building Dataset I (%s scale)...", cfg.Scale.Name))
	groups, err := corpus.TrainingGroups(cfg.Scale, cfg.Seed)
	if err != nil {
		return nil, err
	}
	logf(fmt.Sprintf("  %d functions, %d feature vectors", len(groups), groups.NumVectors()))

	tc := detector.DefaultTrainConfig()
	tc.Seed = cfg.Seed
	tc.MaxPosPerFunc = cfg.Scale.MaxPosPerFunc
	tc.Epochs = cfg.Scale.Epochs
	if cfg.Epochs > 0 {
		tc.Epochs = cfg.Epochs
	}
	tc.Verbose = func(line string) { logf("  " + line) }
	logf("training the 6-layer similarity network...")
	s.Model, s.History, s.Dataset, err = detector.Train(groups, tc)
	if err != nil {
		return nil, err
	}

	logf("building Dataset II (vulnerability database, 25 CVEs)...")
	s.DB, err = corpus.BuildDB(cfg.Scale, cfg.Seed)
	if err != nil {
		return nil, err
	}
	s.Analyzer = patchecko.NewAnalyzer(s.Model, s.DB)
	s.Analyzer.Workers = cfg.Workers
	s.Analyzer.Obs = cfg.Obs
	s.Analyzer.Dedup = !cfg.NoDedup
	s.Analyzer.Prefilter = !cfg.NoPrefilter
	if cfg.Retrieval {
		logf("distilling the retrieval embedding tower...")
		emb, err := patchecko.DistillEmbedder(s.Model, cfg.Seed)
		if err != nil {
			return nil, err
		}
		s.Analyzer.Embedder = emb
		s.Analyzer.TopK = cfg.TopK
	}

	prepWorkers := cfg.Workers
	if prepWorkers <= 0 {
		// Preparation has no ordering concerns at all, so default to every
		// core even when scanning stays sequential.
		prepWorkers = runtime.NumCPU()
	}
	for _, dev := range Devices() {
		logf(fmt.Sprintf("building Dataset III firmware for %s (%s)...", dev.Name, dev.Arch.Name))
		fw, err := corpus.BuildFirmware(dev, cfg.Scale)
		if err != nil {
			return nil, err
		}
		s.Firmware[dev.Name] = fw
		preparedImages, err := patchecko.PrepareImages(ctx, fw.Images, prepWorkers)
		if err != nil {
			return nil, err
		}
		prep := make(map[string]*patchecko.PreparedImage, len(preparedImages))
		uniq := make(map[cas.Addr]struct{})
		total := 0
		for _, p := range preparedImages {
			prep[p.Image.LibName] = p
			total += p.NumFuncs()
			for _, a := range p.CAS {
				uniq[a] = struct{}{}
			}
		}
		if total > 0 && len(uniq) > 0 {
			logf(fmt.Sprintf("  %d functions, %d unique bodies (dedup ratio %.2fx)",
				total, len(uniq), float64(total)/float64(len(uniq))))
		}
		s.prepared[dev.Name] = prep
	}
	return s, nil
}

// hostImage returns the prepared host-library image of a CVE on a device.
func (s *Suite) hostImage(device, cveID string) (*patchecko.PreparedImage, corpus.CVETruth, error) {
	fw, ok := s.Firmware[device]
	if !ok {
		return nil, corpus.CVETruth{}, fmt.Errorf("experiments: unknown device %q", device)
	}
	truth, ok := fw.CVETruthFor(cveID)
	if !ok {
		return nil, corpus.CVETruth{}, fmt.Errorf("experiments: no ground truth for %s", cveID)
	}
	p, ok := s.prepared[device][truth.Library]
	if !ok {
		return nil, corpus.CVETruth{}, fmt.Errorf("experiments: library %s not prepared", truth.Library)
	}
	return p, truth, nil
}

// funcName resolves an address to the ground-truth symbol name on a device
// (used only for presentation, exactly like the paper's "Ground truth"
// columns in Tables IV/V).
func (s *Suite) funcName(device, lib string, addr uint64) string {
	fw := s.Firmware[device]
	lt, ok := fw.Truth[lib]
	if !ok {
		return "?"
	}
	for _, sym := range lt.Symbols {
		if sym.Addr == addr {
			return sym.Name
		}
	}
	return fmt.Sprintf("sub_%x", addr)
}

// fprintf writes formatted output, ignoring write errors (experiment
// renderers write to stdout or test buffers).
func fprintf(w io.Writer, format string, args ...any) {
	fmt.Fprintf(w, format, args...)
}
