package experiments

import (
	"io"

	"repro/internal/nn"
	"repro/patchecko"
)

// --- Fig. 8: training accuracy and loss curves ---

// Fig8Result carries the training history plus held-out test metrics (the
// paper reports 96% training accuracy and >93% detection accuracy).
type Fig8Result struct {
	Epochs   []nn.EpochStats
	TestAcc  float64
	TestLoss float64
	TestAUC  float64
}

// Fig8 returns the training curves of the suite's model.
func (s *Suite) Fig8() Fig8Result {
	acc, loss, auc := s.Model.TestMetrics(s.Dataset.Test)
	return Fig8Result{
		Epochs:   s.History.Epochs,
		TestAcc:  acc,
		TestLoss: loss,
		TestAUC:  auc,
	}
}

// Render prints the curves as an epoch table.
func (r Fig8Result) Render(w io.Writer) {
	fprintf(w, "Fig. 8 — deep learning training curves\n")
	fprintf(w, "%-6s %12s %12s %12s %12s\n", "epoch", "train_loss", "train_acc", "val_loss", "val_acc")
	for _, e := range r.Epochs {
		fprintf(w, "%-6d %12.4f %12.4f %12.4f %12.4f\n",
			e.Epoch, e.TrainLoss, e.TrainAcc, e.ValLoss, e.ValAcc)
	}
	fprintf(w, "held-out test: accuracy %.4f  loss %.4f  AUC %.4f\n", r.TestAcc, r.TestLoss, r.TestAUC)
}

// --- Fig. 7: per-CVE static-stage false-positive rates ---

// Fig7Cell is the FP rate of one (CVE, device, query-version) combination.
type Fig7Cell struct {
	FalsePositives int
	Total          int
}

// Rate returns the false-positive rate.
func (c Fig7Cell) Rate() float64 {
	if c.Total == 0 {
		return 0
	}
	return float64(c.FalsePositives) / float64(c.Total)
}

// Fig7Row is one CVE's FP rates across devices and query versions.
type Fig7Row struct {
	CVE string
	// By device name, then by query mode.
	Cells map[string]map[patchecko.QueryMode]Fig7Cell
}

// Fig7Result is the full figure.
type Fig7Result struct {
	Rows    []Fig7Row
	Devices []string
}

// Fig7 measures, for every CVE on both devices, the deep-learning stage's
// false-positive rate when querying with the vulnerable and with the
// patched reference vector. Only the static stage runs (the figure
// characterizes the classifier before dynamic pruning).
func (s *Suite) Fig7() (Fig7Result, error) {
	res := Fig7Result{}
	for _, dev := range Devices() {
		res.Devices = append(res.Devices, dev.Name)
	}
	for _, id := range s.DB.IDs() {
		row := Fig7Row{CVE: id, Cells: make(map[string]map[patchecko.QueryMode]Fig7Cell)}
		for _, dev := range Devices() {
			p, truth, err := s.hostImage(dev.Name, id)
			if err != nil {
				return Fig7Result{}, err
			}
			entry, _ := s.DB.Get(id)
			row.Cells[dev.Name] = make(map[patchecko.QueryMode]Fig7Cell, 2)
			for _, mode := range []patchecko.QueryMode{patchecko.QueryVulnerable, patchecko.QueryPatched} {
				ref, err := refVec(entry, p.Image.Arch, mode)
				if err != nil {
					return Fig7Result{}, err
				}
				cands := s.Model.Candidates(ref, p.Vecs)
				fp := 0
				for _, c := range cands {
					if p.Dis.Funcs[c.Index].Addr != truth.Addr {
						fp++
					}
				}
				row.Cells[dev.Name][mode] = Fig7Cell{FalsePositives: fp, Total: len(p.Vecs)}
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render prints the figure as a table of FP percentages.
func (r Fig7Result) Render(w io.Writer) {
	fprintf(w, "Fig. 7 — static-stage false positive rate per CVE (percent)\n")
	fprintf(w, "%-16s", "CVE")
	for _, d := range r.Devices {
		fprintf(w, " %14s %14s", d+"/vuln", d+"/patch")
	}
	fprintf(w, "\n")
	for _, row := range r.Rows {
		fprintf(w, "%-16s", row.CVE)
		for _, d := range r.Devices {
			fprintf(w, " %14.2f %14.2f",
				100*row.Cells[d][patchecko.QueryVulnerable].Rate(),
				100*row.Cells[d][patchecko.QueryPatched].Rate())
		}
		fprintf(w, "\n")
	}
}
