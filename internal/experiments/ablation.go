package experiments

import (
	"context"
	"fmt"
	"io"

	"repro/internal/corpus"
	"repro/internal/detector"
	"repro/internal/dynamic"
	"repro/internal/features"
	"repro/patchecko"
)

// Ablations for the design choices DESIGN.md calls out: the Minkowski
// exponent (the paper picks p=3 over Euclidean/Manhattan), raw vs
// log-scaled dynamic features, the number of execution environments K, and
// static-only vs hybrid false positives.

// AblationRow is one configuration's ranking quality.
type AblationRow struct {
	Config string
	// Top1 counts CVEs whose true function ranks first; Top3 within the
	// top three; Found is how many were rankable at all.
	Top1, Top3, Found int
}

// AblationResult is one ablation sweep.
type AblationResult struct {
	Name   string
	Device string
	Rows   []AblationRow
}

// Render prints the sweep.
func (r AblationResult) Render(w io.Writer) {
	fprintf(w, "Ablation — %s (device %s)\n", r.Name, r.Device)
	fprintf(w, "%-24s %6s %6s %6s\n", "config", "top1", "top3", "found")
	for _, row := range r.Rows {
		fprintf(w, "%-24s %6d %6d %6d\n", row.Config, row.Top1, row.Top3, row.Found)
	}
}

// rankWith re-ranks stored scan profiles under a custom distance.
func rankWith(scan *patchecko.CVEScan, trueAddr uint64, k int,
	dist func(a, b patchecko.Profile, p float64) float64, p float64) (rank int) {
	type scored struct {
		addr uint64
		sim  float64
	}
	var rs []scored
	for addr, ps := range scan.SurvivorProfiles {
		ref := scan.RefProfiles
		n := len(ref)
		if k > 0 && k < n {
			n = k
		}
		if n == 0 || len(ps) < n {
			continue
		}
		var sum float64
		for i := 0; i < n; i++ {
			sum += dist(ref[i], ps[i].Vec, p)
		}
		rs = append(rs, scored{addr: addr, sim: sum / float64(n)})
	}
	// Selection of the true function's rank.
	rank = 0
	var trueSim float64
	found := false
	for _, r := range rs {
		if r.addr == trueAddr {
			trueSim = r.sim
			found = true
		}
	}
	if !found {
		return 0
	}
	rank = 1
	for _, r := range rs {
		if r.addr != trueAddr && (r.sim < trueSim || (r.sim == trueSim && r.addr < trueAddr)) {
			rank++
		}
	}
	return rank
}

// scansForDevice runs vulnerable-query scans for every CVE on a device.
// The sweep is memoized per device: AblateDistance, AblateEnvironments and
// AblateHybrid all re-rank the same stored profiles, so one scan feeds all
// three (the scans themselves are deterministic, so reuse never changes a
// row).
func (s *Suite) scansForDevice(ctx context.Context, device string) (map[string]*patchecko.CVEScan, map[string]uint64, error) {
	if cached, ok := s.scanCache[device]; ok {
		return cached.scans, cached.truths, nil
	}
	scans := make(map[string]*patchecko.CVEScan)
	truths := make(map[string]uint64)
	for _, id := range s.DB.IDs() {
		p, truth, err := s.hostImage(device, id)
		if err != nil {
			return nil, nil, err
		}
		scan, err := s.Analyzer.ScanImage(ctx, p, id, patchecko.QueryVulnerable)
		if err != nil {
			return nil, nil, err
		}
		s.Analyzer.EmitScanEvents(scan)
		scans[id] = scan
		truths[id] = truth.Addr
	}
	s.scanCache[device] = deviceScans{scans: scans, truths: truths}
	return scans, truths, nil
}

// AblateDistance sweeps the distance metric: Minkowski p ∈ {1,2,3} on
// log-scaled features, plus the raw (unscaled) p=3 form.
func (s *Suite) AblateDistance(ctx context.Context, device string) (AblationResult, error) {
	scans, truths, err := s.scansForDevice(ctx, device)
	if err != nil {
		return AblationResult{}, err
	}
	res := AblationResult{Name: "similarity distance", Device: device}
	configs := []struct {
		name string
		dist func(a, b patchecko.Profile, p float64) float64
		p    float64
	}{
		{"manhattan (p=1, scaled)", dynamic.MinkowskiScaled, 1},
		{"euclidean (p=2, scaled)", dynamic.MinkowskiScaled, 2},
		{"minkowski (p=3, scaled)", dynamic.MinkowskiScaled, 3},
		{"minkowski (p=3, raw)", dynamic.Minkowski, 3},
	}
	for _, cfg := range configs {
		row := AblationRow{Config: cfg.name}
		for id, scan := range scans {
			rank := rankWith(scan, truths[id], 0, cfg.dist, cfg.p)
			if rank == 0 {
				continue
			}
			row.Found++
			if rank == 1 {
				row.Top1++
			}
			if rank <= 3 {
				row.Top3++
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// AblateEnvironments sweeps the number of execution environments K.
func (s *Suite) AblateEnvironments(ctx context.Context, device string) (AblationResult, error) {
	scans, truths, err := s.scansForDevice(ctx, device)
	if err != nil {
		return AblationResult{}, err
	}
	res := AblationResult{Name: "execution environments (K)", Device: device}
	maxK := 0
	for _, scan := range scans {
		if len(scan.RefProfiles) > maxK {
			maxK = len(scan.RefProfiles)
		}
	}
	for k := 1; k <= maxK; k++ {
		row := AblationRow{Config: configK(k)}
		for id, scan := range scans {
			rank := rankWith(scan, truths[id], k, dynamic.MinkowskiScaled, dynamic.MinkowskiP)
			if rank == 0 {
				continue
			}
			row.Found++
			if rank == 1 {
				row.Top1++
			}
			if rank <= 3 {
				row.Top3++
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func configK(k int) string { return fmt.Sprintf("K=%d", k) }

// HybridRow compares static-only candidate counts against the hybrid
// pipeline's surviving set — the paper's core argument that dynamic
// analysis prunes the deep-learning stage's false positives.
type HybridRow struct {
	CVE        string
	Candidates int // after the static stage
	Survivors  int // after dynamic validation
	TrueInCand bool
	TrueInSurv bool
}

// HybridResult is the static-vs-hybrid ablation.
type HybridResult struct {
	Device string
	Rows   []HybridRow
}

// AblateHybrid measures candidate-set shrinkage per CVE.
func (s *Suite) AblateHybrid(ctx context.Context, device string) (HybridResult, error) {
	scans, truths, err := s.scansForDevice(ctx, device)
	if err != nil {
		return HybridResult{}, err
	}
	res := HybridResult{Device: device}
	for _, id := range s.DB.IDs() {
		scan := scans[id]
		row := HybridRow{CVE: id, Candidates: scan.NumCandidates, Survivors: scan.NumExecuted}
		for _, a := range scan.CandidateAddr {
			if a == truths[id] {
				row.TrueInCand = true
			}
		}
		if _, ok := scan.SurvivorProfiles[truths[id]]; ok {
			row.TrueInSurv = true
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render prints the shrinkage table.
func (r HybridResult) Render(w io.Writer) {
	fprintf(w, "Ablation — static-only vs hybrid pruning (device %s)\n", r.Device)
	fprintf(w, "%-16s %10s %10s %10s\n", "CVE", "candidates", "survivors", "true-kept")
	for _, row := range r.Rows {
		kept := "-"
		if row.TrueInCand {
			kept = "pruned!"
			if row.TrueInSurv {
				kept = "yes"
			}
		}
		fprintf(w, "%-16s %10d %10d %10s\n", row.CVE, row.Candidates, row.Survivors, kept)
	}
}

// Feature-group ablation: retrain the detector with only one group of the
// 48 static features active and measure what each group contributes. The
// groups follow Table I's structure: "instruction mix" covers the scalar
// counts (constants, strings, instructions, imports, calls, sizes) and the
// per-block call/arithmetic statistics; "CFG shape" covers block/edge
// counts, cyclomatic complexity, block kinds, per-block size statistics
// and betweenness centrality.

// featureGroup returns the index set of a named group.
func featureGroup(name string) map[int]bool {
	idx := make(map[int]bool)
	add := func(lo, hi int) {
		for i := lo; i <= hi; i++ {
			idx[i] = true
		}
	}
	switch name {
	case "instruction-mix":
		add(0, 8)   // num_constant .. size_fun
		add(28, 42) // call/arith/fp per-block stats
	case "cfg-shape":
		add(9, 27)  // block instr/size stats, num_bb/num_edge/cyclomatic, fcb_*
		add(43, 47) // betweenness centrality stats
	default: // full
		add(0, features.NumStatic-1)
	}
	return idx
}

// maskGroups zeroes every feature outside the group.
func maskGroups(groups detector.Groups, keep map[int]bool) detector.Groups {
	out := make(detector.Groups, len(groups))
	for k, vs := range groups {
		mvs := make([]features.Vector, len(vs))
		for i, v := range vs {
			for d := 0; d < features.NumStatic; d++ {
				if keep[d] {
					mvs[i][d] = v[d]
				}
			}
		}
		out[k] = mvs
	}
	return out
}

// FeatureGroupRow is one group's detector quality.
type FeatureGroupRow struct {
	Group   string
	TestAcc float64
	TestAUC float64
}

// FeatureGroupResult is the feature-group ablation.
type FeatureGroupResult struct {
	Rows []FeatureGroupRow
}

// AblateFeatureGroups retrains the detector on masked feature sets. It
// rebuilds Dataset I at the suite's scale and seed, so the rows are
// directly comparable with the suite's own model.
func (s *Suite) AblateFeatureGroups() (FeatureGroupResult, error) {
	groups, err := corpus.TrainingGroups(s.Cfg.Scale, s.Cfg.Seed)
	if err != nil {
		return FeatureGroupResult{}, err
	}
	res := FeatureGroupResult{}
	for _, name := range []string{"full", "instruction-mix", "cfg-shape"} {
		masked := maskGroups(groups, featureGroup(name))
		tc := detector.DefaultTrainConfig()
		tc.Seed = s.Cfg.Seed
		tc.MaxPosPerFunc = s.Cfg.Scale.MaxPosPerFunc
		tc.Epochs = s.Cfg.Scale.Epochs
		model, _, ds, err := detector.Train(masked, tc)
		if err != nil {
			return FeatureGroupResult{}, err
		}
		acc, _, auc := model.TestMetrics(ds.Test)
		res.Rows = append(res.Rows, FeatureGroupRow{Group: name, TestAcc: acc, TestAUC: auc})
	}
	return res, nil
}

// Render prints the feature-group ablation.
func (r FeatureGroupResult) Render(w io.Writer) {
	fprintf(w, "Ablation — static feature groups (detector retrained per group)\n")
	fprintf(w, "%-18s %10s %10s\n", "group", "test_acc", "test_auc")
	for _, row := range r.Rows {
		fprintf(w, "%-18s %10.4f %10.4f\n", row.Group, row.TestAcc, row.TestAUC)
	}
}
