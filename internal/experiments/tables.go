package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/dynamic"
	"repro/internal/features"
	"repro/internal/vulndb"
	"repro/patchecko"
)

// refVec extracts the static query vector of one reference version on one
// architecture.
func refVec(entry *vulndb.Entry, arch string, mode patchecko.QueryMode) (features.Vector, error) {
	var (
		ref *vulndb.Ref
		err error
	)
	if mode == patchecko.QueryPatched {
		ref, err = entry.PatchedRef(arch)
	} else {
		ref, err = entry.VulnRef(arch)
	}
	if err != nil {
		return features.Vector{}, err
	}
	return ref.StaticVec(), nil
}

// --- Table III: dynamic feature profiles of surviving candidates ---

// Table3Row is one function's dynamic feature vector (averaged over the K
// environments, like the paper shows one representative profile per
// candidate).
type Table3Row struct {
	Label    string
	Features [21]float64
}

// Table3Result reproduces the case-study profiling table.
type Table3Result struct {
	CVE    string
	Device string
	Rows   []Table3Row // candidates first, reference function last
}

// Table3 profiles the surviving candidates of one CVE on one device and
// appends the vulnerability-database reference function's profile, exactly
// like the paper's Table III (candidates 1..38 plus "Vulnerable function").
func (s *Suite) Table3(ctx context.Context, device, cveID string) (Table3Result, error) {
	p, _, err := s.hostImage(device, cveID)
	if err != nil {
		return Table3Result{}, err
	}
	scan, err := s.Analyzer.ScanImage(ctx, p, cveID, patchecko.QueryVulnerable)
	if err != nil {
		return Table3Result{}, err
	}
	s.Analyzer.EmitScanEvents(scan)
	res := Table3Result{CVE: cveID, Device: device}
	for _, r := range scan.Ranking {
		res.Rows = append(res.Rows, Table3Row{
			Label:    fmt.Sprintf("candidate_%x", r.Addr),
			Features: meanProfile(dynamic.Vectors(scan.SurvivorProfiles[r.Addr])),
		})
	}
	res.Rows = append(res.Rows, Table3Row{
		Label:    "Vulnerable function",
		Features: meanProfile(scan.RefProfiles),
	})
	return res, nil
}

func meanProfile(ps []patchecko.Profile) [21]float64 {
	var out [21]float64
	if len(ps) == 0 {
		return out
	}
	for _, p := range ps {
		for i, v := range p {
			out[i] += v
		}
	}
	for i := range out {
		out[i] /= float64(len(ps))
	}
	return out
}

// Render prints the profiling table.
func (r Table3Result) Render(w io.Writer) {
	fprintf(w, "Table III — dynamic feature profiles for %s on %s (F1..F21, mean over environments)\n", r.CVE, r.Device)
	fprintf(w, "%-24s", "Candidate")
	for i := 1; i <= 21; i++ {
		fprintf(w, " %7s", fmt.Sprintf("F%d", i))
	}
	fprintf(w, "\n")
	for _, row := range r.Rows {
		fprintf(w, "%-24s", row.Label)
		for _, v := range row.Features {
			fprintf(w, " %7.1f", v)
		}
		fprintf(w, "\n")
	}
}

// --- Tables IV and V: similarity rankings ---

// RankRow is one ranked candidate with its ground-truth identity.
type RankRow struct {
	Candidate   string
	Sim         float64
	GroundTruth string
}

// RankResult reproduces Table IV (vulnerable query) / Table V (patched
// query): the top-ranked candidates by dynamic similarity.
type RankResult struct {
	CVE    string
	Device string
	Mode   patchecko.QueryMode
	Rows   []RankRow
}

// Ranking computes the top-N dynamic similarity ranking for one CVE.
func (s *Suite) Ranking(ctx context.Context, device, cveID string, mode patchecko.QueryMode, topN int) (RankResult, error) {
	p, truth, err := s.hostImage(device, cveID)
	if err != nil {
		return RankResult{}, err
	}
	scan, err := s.Analyzer.ScanImage(ctx, p, cveID, mode)
	if err != nil {
		return RankResult{}, err
	}
	s.Analyzer.EmitScanEvents(scan)
	res := RankResult{CVE: cveID, Device: device, Mode: mode}
	for i, r := range scan.Ranking {
		if topN > 0 && i >= topN {
			break
		}
		res.Rows = append(res.Rows, RankRow{
			Candidate:   fmt.Sprintf("candidate_%x", r.Addr),
			Sim:         r.Sim,
			GroundTruth: s.funcName(device, truth.Library, r.Addr),
		})
	}
	return res, nil
}

// Render prints the ranking table.
func (r RankResult) Render(w io.Writer) {
	table := "IV"
	if r.Mode == patchecko.QueryPatched {
		table = "V"
	}
	fprintf(w, "Table %s — similarity ranking for %s on %s (%s query)\n", table, r.CVE, r.Device, r.Mode)
	fprintf(w, "%-24s %10s  %s\n", "Candidate", "Sim", "Ground truth")
	for _, row := range r.Rows {
		fprintf(w, "%-24s %10.3f  %s\n", row.Candidate, row.Sim, row.GroundTruth)
	}
}

// --- Tables VI and VII: full pipeline accuracy per CVE ---

// PipelineRow is one CVE's end-to-end result on a device.
type PipelineRow struct {
	CVE   string
	TP    int
	TN    int
	FP    int
	FN    int
	Total int
	// Execution is the number of candidates surviving input validation.
	Execution int
	// Ranking is the 1-based dynamic rank of the true function (0 = missed).
	Ranking     int
	StaticTime  time.Duration
	DynamicTime time.Duration
}

// FPRate is the static-stage false-positive rate.
func (r PipelineRow) FPRate() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.FP) / float64(r.Total)
}

// PipelineResult reproduces Table VI (vulnerable query) or Table VII
// (patched query) for one device.
type PipelineResult struct {
	Device string
	Mode   patchecko.QueryMode
	Rows   []PipelineRow
}

// Pipeline runs the full three-stage pipeline for every CVE on a device.
func (s *Suite) Pipeline(ctx context.Context, device string, mode patchecko.QueryMode) (PipelineResult, error) {
	res := PipelineResult{Device: device, Mode: mode}
	for _, id := range s.DB.IDs() {
		p, truth, err := s.hostImage(device, id)
		if err != nil {
			return PipelineResult{}, err
		}
		scan, err := s.Analyzer.ScanImage(ctx, p, id, mode)
		if err != nil {
			return PipelineResult{}, err
		}
		s.Analyzer.EmitScanEvents(scan)
		row := PipelineRow{
			CVE:         id,
			Total:       scan.TotalFuncs,
			Execution:   scan.NumExecuted,
			Ranking:     scan.TopRank(truth.Addr),
			StaticTime:  scan.StaticTime,
			DynamicTime: scan.DynamicTime,
		}
		for _, addr := range scan.CandidateAddr {
			if addr == truth.Addr {
				row.TP = 1
			} else {
				row.FP++
			}
		}
		row.FN = 1 - row.TP
		row.TN = row.Total - row.TP - row.FP - row.FN
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render prints the per-CVE pipeline table.
func (r PipelineResult) Render(w io.Writer) {
	table := "VI"
	if r.Mode == patchecko.QueryPatched {
		table = "VII"
	}
	fprintf(w, "Table %s — pipeline accuracy on %s (%s query)\n", table, r.Device, r.Mode)
	fprintf(w, "%-16s %3s %5s %4s %3s %6s %7s %5s %5s %10s %10s\n",
		"CVE", "TP", "TN", "FP", "FN", "Total", "FP(%)", "Exec", "Rank", "DP(ms)", "DA(ms)")
	for _, row := range r.Rows {
		rank := "N/A"
		if row.Ranking > 0 {
			rank = fmt.Sprintf("%d", row.Ranking)
		}
		fprintf(w, "%-16s %3d %5d %4d %3d %6d %7.2f %5d %5s %10.2f %10.2f\n",
			row.CVE, row.TP, row.TN, row.FP, row.FN, row.Total, 100*row.FPRate(),
			row.Execution, rank,
			float64(row.StaticTime.Microseconds())/1000,
			float64(row.DynamicTime.Microseconds())/1000)
	}
	var avgFP float64
	top3 := 0
	found := 0
	for _, row := range r.Rows {
		avgFP += row.FPRate()
		if row.Ranking > 0 {
			found++
			if row.Ranking <= 3 {
				top3++
			}
		}
	}
	fprintf(w, "average FP rate %.2f%%; true function in top 3 for %d/%d found (%d missed by the static stage)\n",
		100*avgFP/float64(len(r.Rows)), top3, found, len(r.Rows)-found)
}

// --- Table VIII: final patch verdicts ---

// VerdictRow is one CVE's final patch decision vs ground truth.
type VerdictRow struct {
	CVE string
	// Reported is PATCHECKO's verdict (true = patched); Found reports
	// whether any stage located the function at all.
	Found       bool
	Reported    bool
	GroundTruth bool
	Confidence  float64
}

// Correct reports agreement with ground truth.
func (r VerdictRow) Correct() bool { return r.Found && r.Reported == r.GroundTruth }

// VerdictResult reproduces Table VIII for one device.
type VerdictResult struct {
	Device string
	Rows   []VerdictRow
}

// Accuracy is the fraction of correct verdicts.
func (r VerdictResult) Accuracy() float64 {
	if len(r.Rows) == 0 {
		return 0
	}
	ok := 0
	for _, row := range r.Rows {
		if row.Correct() {
			ok++
		}
	}
	return float64(ok) / float64(len(r.Rows))
}

// Verdicts runs the differential engine for every CVE on a device. Like
// the paper, the vulnerable-query match drives the decision; when the
// static stage misses with the vulnerable query (which happens for patched
// targets), the patched-query scan supplies the match.
func (s *Suite) Verdicts(ctx context.Context, device string) (VerdictResult, error) {
	return s.verdictsWith(ctx, s.Analyzer, device)
}

// VerdictsWithReplay re-runs Table VIII with the exploit-replay extension
// enabled — the future work the paper proposes for its single
// misclassification.
func (s *Suite) VerdictsWithReplay(ctx context.Context, device string) (VerdictResult, error) {
	an := patchecko.NewAnalyzer(s.Model, s.DB)
	an.ExploitReplay = true
	return s.verdictsWith(ctx, an, device)
}

func (s *Suite) verdictsWith(ctx context.Context, an *patchecko.Analyzer, device string) (VerdictResult, error) {
	res := VerdictResult{Device: device}
	for _, id := range s.DB.IDs() {
		p, truth, err := s.hostImage(device, id)
		if err != nil {
			return VerdictResult{}, err
		}
		scan, err := an.ScanImage(ctx, p, id, patchecko.QueryVulnerable)
		if err != nil {
			return VerdictResult{}, err
		}
		an.EmitScanEvents(scan)
		if !scan.Matched || scan.Match.Addr != truth.Addr {
			pscan, err := an.ScanImage(ctx, p, id, patchecko.QueryPatched)
			if err != nil {
				return VerdictResult{}, err
			}
			an.EmitScanEvents(pscan)
			if pscan.Matched && (pscan.Match.Addr == truth.Addr || !scan.Matched) {
				scan = pscan
			}
		}
		row := VerdictRow{CVE: id, GroundTruth: truth.Patched}
		if scan.Matched {
			row.Found = true
			row.Reported = scan.Verdict.Patched
			row.Confidence = scan.Verdict.Confidence
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render prints the verdict table.
func (r VerdictResult) Render(w io.Writer) {
	fprintf(w, "Table VIII — final patch detection on %s\n", r.Device)
	fprintf(w, "%-16s %10s %12s %6s\n", "CVE", "PATCHECKO", "GroundTruth", "OK")
	mark := func(b bool) string {
		if b {
			return "patched"
		}
		return "vuln"
	}
	for _, row := range r.Rows {
		status := "MISS"
		if row.Correct() {
			status = "ok"
		}
		rep := "not-found"
		if row.Found {
			rep = mark(row.Reported)
		}
		fprintf(w, "%-16s %10s %12s %6s\n", row.CVE, rep, mark(row.GroundTruth), status)
	}
	fprintf(w, "patch detection accuracy: %.0f%%\n", 100*r.Accuracy())
}

// --- §V headline numbers ---

// Headline aggregates the numbers quoted in the paper's abstract and §V:
// detection accuracy, top-3 ranking rate, patch-detection accuracy.
type Headline struct {
	TestAccuracy  float64 // deep learning model, held-out pairs
	TestAUC       float64
	Top3Rate      float64 // fraction of located functions ranked top-3
	PatchAccuracy float64 // Table VIII accuracy on ThingOS
}

// Headlines computes the headline metrics.
func (s *Suite) Headlines(ctx context.Context) (Headline, error) {
	h := Headline{}
	acc, _, auc := s.Model.TestMetrics(s.Dataset.Test)
	h.TestAccuracy, h.TestAUC = acc, auc

	found, top3 := 0, 0
	for _, dev := range Devices() {
		pr, err := s.Pipeline(ctx, dev.Name, patchecko.QueryVulnerable)
		if err != nil {
			return h, err
		}
		for _, row := range pr.Rows {
			if row.Ranking > 0 {
				found++
				if row.Ranking <= 3 {
					top3++
				}
			}
		}
	}
	if found > 0 {
		h.Top3Rate = float64(top3) / float64(found)
	}
	vr, err := s.Verdicts(ctx, primaryDevice().Name)
	if err != nil {
		return h, err
	}
	h.PatchAccuracy = vr.Accuracy()
	return h, nil
}

// primaryDevice is the device whose ground truth mirrors the paper's
// Table VIII (the Android Things stand-in).
func primaryDevice() patchecko.Device { return Devices()[0] }
