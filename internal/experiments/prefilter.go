package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/binimg"
	"repro/internal/corpus"
	"repro/internal/isa"
	"repro/patchecko"
)

// The component-identification prefilter ablation: scan each fixture with
// the prefilter on and off and report what pruning bought (grid reduction)
// and what it must never cost (ground-truth recall, report byte-identity).

// PrefilterRow is one fixture's prefilter measurement.
type PrefilterRow struct {
	Fixture string
	Images  int
	// GridCells is the full (image, CVE, mode) grid; Pruned is how many of
	// those cells the prefilter removed; Reduction is full over scheduled.
	GridCells int
	Pruned    int
	Reduction float64
	// Recall is the kept fraction of ground-truth (CVE, host image) cells.
	// The engine contract pins it at exactly 1.0.
	Recall float64
	// Identical reports whether the pruned scan's normalized Report is
	// byte-identical to the full grid's.
	Identical bool
}

// PrefilterResult is the prefilter ablation sweep.
type PrefilterResult struct {
	Rows []PrefilterRow
}

// Render prints the sweep.
func (r PrefilterResult) Render(w io.Writer) {
	fprintf(w, "Ablation — component-identification prefilter (grid pruning vs full grid)\n")
	fprintf(w, "%-22s %7s %10s %8s %10s %7s %10s\n",
		"fixture", "images", "grid", "pruned", "reduction", "recall", "identical")
	for _, row := range r.Rows {
		fprintf(w, "%-22s %7d %10d %8d %9.2fx %7.3f %10v\n",
			row.Fixture, row.Images, row.GridCells, row.Pruned, row.Reduction,
			row.Recall, row.Identical)
	}
}

// scanAnalyzer builds a fresh analyzer mirroring the suite's configuration
// (workers, dedup, retrieval) so an ablation can flip one knob without
// disturbing the shared analyzer's memoized state. The ablation's scans skip
// the suite's Obs sink: they run every fixture twice, which would double
// every counter the other experiments report.
func (s *Suite) scanAnalyzer() *patchecko.Analyzer {
	an := patchecko.NewAnalyzer(s.Model, s.DB)
	an.Workers = s.Cfg.Workers
	an.Dedup = !s.Cfg.NoDedup
	an.Prefilter = !s.Cfg.NoPrefilter
	an.Embedder = s.Analyzer.Embedder
	an.TopK = s.Analyzer.TopK
	return an
}

// prefilterFixtures is the ablation's fixture set: each evaluation device,
// plus the first device's firmware extended with generated vendor libraries
// whose code profile diverges from the reference corpus — the fleet shape
// where component identification pays, and where the 2x grid-reduction
// acceptance floor is measured.
func (s *Suite) prefilterFixtures() ([]struct {
	Name string
	Fw   *patchecko.Firmware
}, error) {
	var fixtures []struct {
		Name string
		Fw   *patchecko.Firmware
	}
	for _, dev := range Devices() {
		fixtures = append(fixtures, struct {
			Name string
			Fw   *patchecko.Firmware
		}{dev.Name, s.Firmware[dev.Name]})
	}
	base := s.Firmware[Devices()[0].Name]
	arch, err := isa.ByName(base.Arch)
	if err != nil {
		return nil, err
	}
	extra, err := corpus.FleetVendorImages(arch, 12, 70000)
	if err != nil {
		return nil, err
	}
	fleet := *base
	fleet.Images = append(append([]*binimg.Image{}, base.Images...), extra...)
	fixtures = append(fixtures, struct {
		Name string
		Fw   *patchecko.Firmware
	}{"fleet-" + base.Device, &fleet})
	return fixtures, nil
}

// prefilterRecall measures the keep decision against a firmware's held-out
// ground truth.
func (s *Suite) prefilterRecall(ctx context.Context, an *patchecko.Analyzer, fw *patchecko.Firmware) (float64, error) {
	workers := s.Cfg.Workers
	if workers <= 0 {
		workers = 1
	}
	prepared, err := patchecko.PrepareImages(ctx, fw.Images, workers)
	if err != nil {
		return 0, err
	}
	byLib := make(map[string]*patchecko.PreparedImage)
	for _, p := range prepared {
		if p != nil {
			byLib[p.Image.LibName] = p
		}
	}
	if len(fw.CVEs) == 0 {
		return 0, fmt.Errorf("experiments: firmware %s has no ground-truth cells", fw.Device)
	}
	kept := 0
	for _, ct := range fw.CVEs {
		p, ok := byLib[ct.Library]
		if !ok {
			return 0, fmt.Errorf("experiments: ground-truth library %s not prepared", ct.Library)
		}
		if an.PrefilterKeep(p, ct.ID) {
			kept++
		}
	}
	return float64(kept) / float64(len(fw.CVEs)), nil
}

// AblatePrefilter scans every fixture with the prefilter on and off and
// reports grid reduction, ground-truth recall and report byte-identity
// against the full grid.
func (s *Suite) AblatePrefilter(ctx context.Context) (PrefilterResult, error) {
	fixtures, err := s.prefilterFixtures()
	if err != nil {
		return PrefilterResult{}, err
	}
	res := PrefilterResult{}
	for _, fx := range fixtures {
		var raws [][]byte
		var row PrefilterRow
		for _, prefilter := range []bool{true, false} {
			an := s.scanAnalyzer()
			an.Prefilter = prefilter
			report, err := an.ScanFirmware(ctx, fx.Fw)
			if err != nil {
				return PrefilterResult{}, err
			}
			if prefilter {
				healthy := report.Stats.Images - report.Stats.ImagesFailed
				row = PrefilterRow{
					Fixture:   fx.Name,
					Images:    healthy,
					GridCells: report.Stats.CVEs * healthy * 2,
					Pruned:    report.Stats.CellsPruned,
				}
				row.Reduction = float64(row.GridCells) / float64(row.GridCells-row.Pruned)
				if row.Recall, err = s.prefilterRecall(ctx, an, fx.Fw); err != nil {
					return PrefilterResult{}, err
				}
			}
			report.Normalize()
			raw, err := json.Marshal(report)
			if err != nil {
				return PrefilterResult{}, err
			}
			raws = append(raws, raw)
		}
		row.Identical = bytes.Equal(raws[0], raws[1])
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
