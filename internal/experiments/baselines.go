package experiments

import (
	"io"

	"repro/internal/baseline"
	"repro/internal/corpus"
	"repro/internal/disasm"
	"repro/patchecko"
)

// BaselineRow is one scorer's static-stage retrieval quality over the 25
// CVEs: how often the true function ranks top-1/3/10 among all functions
// of the host library, by static similarity alone.
type BaselineRow struct {
	Scorer            string
	Top1, Top3, Top10 int
	Total             int
}

// BaselineResult compares the paper's trained detector against the
// prior-art scorers of §VI (BinDiff-style matching, graph embeddings).
type BaselineResult struct {
	Device string
	Rows   []BaselineRow
}

// Baselines ranks every CVE's vulnerable reference against all functions
// of its host library under each scorer. The detector row uses the same
// protocol (pure static ranking, no dynamic stage) so the comparison
// isolates the similarity function.
func (s *Suite) Baselines(device string) (BaselineResult, error) {
	res := BaselineResult{Device: device}

	type ranker struct {
		name string
		rank func(entry string, p *patchecko.PreparedImage, ref *disasm.Function, refIdx int) []int
	}
	rankers := []ranker{
		{
			name: "patchecko-detector",
			rank: func(entry string, p *patchecko.PreparedImage, ref *disasm.Function, _ int) []int {
				e, _ := s.DB.Get(entry)
				query, err := refVec(e, p.Image.Arch, patchecko.QueryVulnerable)
				if err != nil {
					return nil
				}
				type sc struct {
					idx int
					s   float64
				}
				ss := make([]sc, len(p.Vecs))
				for i, v := range p.Vecs {
					ss[i] = sc{idx: i, s: s.Model.Similarity(query, v)}
				}
				// Selection-sort into index order by descending score.
				out := make([]int, 0, len(ss))
				used := make([]bool, len(ss))
				for range ss {
					best := -1
					for i := range ss {
						if used[i] {
							continue
						}
						if best < 0 || ss[i].s > ss[best].s {
							best = i
						}
					}
					used[best] = true
					out = append(out, ss[best].idx)
				}
				return out
			},
		},
	}
	for _, sc := range baseline.Scorers() {
		sc := sc
		rankers = append(rankers, ranker{
			name: sc.Name,
			rank: func(_ string, p *patchecko.PreparedImage, ref *disasm.Function, _ int) []int {
				return baseline.RankByScore(sc.Score, ref, p.Dis.Funcs)
			},
		})
	}

	rows := make(map[string]*BaselineRow, len(rankers))
	for _, r := range rankers {
		rows[r.name] = &BaselineRow{Scorer: r.name}
	}
	for _, id := range s.DB.IDs() {
		p, truth, err := s.hostImage(device, id)
		if err != nil {
			return BaselineResult{}, err
		}
		entry, _ := s.DB.Get(id)
		vref, err := entry.VulnRef(p.Image.Arch)
		if err != nil {
			return BaselineResult{}, err
		}
		trueIdx := -1
		for i, f := range p.Dis.Funcs {
			if f.Addr == truth.Addr {
				trueIdx = i
			}
		}
		if trueIdx < 0 {
			continue
		}
		for _, r := range rankers {
			row := rows[r.name]
			row.Total++
			order := r.rank(id, p, vref.Fn, trueIdx)
			for pos, idx := range order {
				if idx != trueIdx {
					continue
				}
				if pos == 0 {
					row.Top1++
				}
				if pos < 3 {
					row.Top3++
				}
				if pos < 10 {
					row.Top10++
				}
				break
			}
		}
	}
	for _, r := range rankers {
		res.Rows = append(res.Rows, *rows[r.name])
	}
	return res, nil
}

// Render prints the comparison.
func (r BaselineResult) Render(w io.Writer) {
	fprintf(w, "Baseline comparison — static-stage retrieval of the true function (device %s)\n", r.Device)
	fprintf(w, "%-22s %6s %6s %6s %6s\n", "scorer", "top1", "top3", "top10", "of")
	for _, row := range r.Rows {
		fprintf(w, "%-22s %6d %6d %6d %6d\n", row.Scorer, row.Top1, row.Top3, row.Top10, row.Total)
	}
}

// ObfuscationResult compares static-stage retrieval on clean vs obfuscated
// builds of the same device firmware.
type ObfuscationResult struct {
	Clean      BaselineResult
	Obfuscated BaselineResult
}

// AblateObfuscation builds an obfuscated variant of the first device's
// firmware (dead-code islands, live junk, stack churn — same patch states,
// same seed) and re-runs the baseline comparison on it. The drop from the
// clean column is each scorer's obfuscation fragility.
func (s *Suite) AblateObfuscation() (ObfuscationResult, error) {
	clean, err := s.Baselines(Devices()[0].Name)
	if err != nil {
		return ObfuscationResult{}, err
	}
	obfDev := Devices()[0].Obfuscated()
	if _, ok := s.Firmware[obfDev.Name]; !ok {
		fw, err := corpus.BuildFirmware(obfDev, s.Cfg.Scale)
		if err != nil {
			return ObfuscationResult{}, err
		}
		prep := make(map[string]*patchecko.PreparedImage, len(fw.Images))
		for _, im := range fw.Images {
			p, err := patchecko.Prepare(im)
			if err != nil {
				return ObfuscationResult{}, err
			}
			prep[im.LibName] = p
		}
		s.Firmware[obfDev.Name] = fw
		s.prepared[obfDev.Name] = prep
	}
	obf, err := s.Baselines(obfDev.Name)
	if err != nil {
		return ObfuscationResult{}, err
	}
	return ObfuscationResult{Clean: clean, Obfuscated: obf}, nil
}

// Render prints the clean-vs-obfuscated comparison.
func (r ObfuscationResult) Render(w io.Writer) {
	fprintf(w, "Ablation — obfuscation robustness (clean vs obfuscated firmware)\n")
	fprintf(w, "%-22s %12s %12s %12s %12s\n", "scorer", "clean_top3", "obf_top3", "clean_top10", "obf_top10")
	for i, row := range r.Clean.Rows {
		or := r.Obfuscated.Rows[i]
		fprintf(w, "%-22s %12d %12d %12d %12d\n", row.Scorer, row.Top3, or.Top3, row.Top10, or.Top10)
	}
}
