package minic

import (
	"errors"
	"testing"
)

// benignEnv is an execution environment under which every CVE function —
// vulnerable and patched alike — must terminate cleanly. It is the seed the
// fuzzer starts from when deriving validation environments.
func benignEnv() *Env {
	data := make([]byte, 64)
	data[0] = 4
	for i := 4; i < 64; i++ {
		data[i] = 1
	}
	return &Env{Args: []int64{DataBase, 64, 3, 2}, Data: data}
}

// BenignCVEEnv is exported for other packages' tests via the _test trick:
// keep it unexported here; corpus has its own canonical seed builder.

func cveModule(f *Func) *Module {
	return &Module{Name: "cve", Funcs: []*Func{f}}
}

func TestCVEsWellFormed(t *testing.T) {
	pairs := CVEs()
	if len(pairs) != 25 {
		t.Fatalf("got %d CVE pairs, want 25", len(pairs))
	}
	ids := make(map[string]bool)
	names := make(map[string]bool)
	for _, c := range pairs {
		if ids[c.ID] {
			t.Errorf("duplicate CVE id %s", c.ID)
		}
		ids[c.ID] = true
		if names[c.FuncName] {
			t.Errorf("duplicate function name %s", c.FuncName)
		}
		names[c.FuncName] = true
		if c.Vulnerable == nil || c.Patched == nil {
			t.Fatalf("%s: missing function", c.ID)
		}
		if c.Vulnerable.Name != c.FuncName || c.Patched.Name != c.FuncName {
			t.Errorf("%s: function name mismatch", c.ID)
		}
		if len(c.Vulnerable.Params) != len(c.Patched.Params) {
			t.Errorf("%s: arity differs between vulnerable and patched", c.ID)
		}
		if len(c.Vulnerable.Params) > 4 {
			t.Errorf("%s: more than 4 params breaks the corpus convention", c.ID)
		}
	}
	minute := 0
	for _, c := range pairs {
		if c.Minute {
			minute++
			if c.ID != "CVE-2018-9470" {
				t.Errorf("unexpected minute patch %s", c.ID)
			}
		}
	}
	if minute != 1 {
		t.Errorf("got %d minute patches, want exactly 1 (CVE-2018-9470)", minute)
	}
}

func TestCVEsRunCleanOnBenignEnv(t *testing.T) {
	for _, c := range CVEs() {
		c := c
		t.Run(c.ID, func(t *testing.T) {
			env := benignEnv()
			env.Args = env.Args[:len(c.Vulnerable.Params)]
			if _, err := Run(cveModule(c.Vulnerable), c.FuncName, env.Clone(), 0); err != nil {
				t.Errorf("vulnerable traps on benign env: %v", err)
			}
			if _, err := Run(cveModule(c.Patched), c.FuncName, env.Clone(), 0); err != nil {
				t.Errorf("patched traps on benign env: %v", err)
			}
		})
	}
}

func TestCVEExploitBehaviour(t *testing.T) {
	// For a selection of CVEs, a crafted environment makes the vulnerable
	// version trap or diverge while the patched version stays well-behaved.
	tests := []struct {
		id       string
		env      func() *Env
		wantTrap TrapKind // 0 means "no trap but divergent return"
	}{
		{
			id: "CVE-2017-13232", // division by zero
			env: func() *Env {
				return &Env{Args: []int64{8, 3, 0}}
			},
			wantTrap: TrapDivZero,
		},
		{
			id: "CVE-2017-13178", // alignment div by zero
			env: func() *Env {
				return &Env{Args: []int64{8, 0}}
			},
			wantTrap: TrapDivZero,
		},
		{
			id: "CVE-2018-9411", // negative index passes check
			env: func() *Env {
				return &Env{Args: []int64{DataBase, 8, -DataBase - 1}, Data: []byte{1, 2, 3}}
			},
			wantTrap: TrapOOB,
		},
		{
			id: "CVE-2017-13180", // unchecked store index
			env: func() *Env {
				return &Env{Args: []int64{DataBase, 8, DataSize + 10}, Data: []byte{1}}
			},
			wantTrap: TrapOOB,
		},
		{
			id: "CVE-2017-13209", // zero-progress loop
			env: func() *Env {
				return &Env{Args: []int64{DataBase, 8, 1 << 40}, Data: []byte{0, 0, 0}}
			},
			wantTrap: TrapStepLimit,
		},
		{
			id: "CVE-2018-9498", // unbounded recursion
			env: func() *Env {
				data := make([]byte, 256)
				for i := range data {
					data[i] = 1 // kind&3 == 1 recurses
				}
				return &Env{Args: []int64{DataBase, 200}, Data: data}
			},
			wantTrap: TrapStack,
		},
		{
			id: "CVE-2017-13278", // underflow off the front of the region
			env: func() *Env {
				return &Env{Args: []int64{DataBase, 8}, Data: make([]byte, 8)}
			},
			wantTrap: TrapOOB,
		},
		{
			id: "CVE-2018-9340", // off-by-one: divergent return, no trap
			env: func() *Env {
				data := []byte{1, 1, 1, 1, 9}
				return &Env{Args: []int64{DataBase, 4}, Data: data}
			},
		},
		{
			id: "CVE-2018-9427", // weak digest: divergent return
			env: func() *Env {
				return &Env{Args: []int64{DataBase, 16}, Data: []byte("0123456789abcdef")}
			},
		},
		{
			id: "CVE-2018-9470", // minute patch still diverges on big dims
			env: func() *Env {
				return &Env{Args: []int64{400, 200}}
			},
		},
	}
	for _, tt := range tests {
		tt := tt
		t.Run(tt.id, func(t *testing.T) {
			c := CVEByID(tt.id)
			if c == nil {
				t.Fatalf("no such CVE %s", tt.id)
			}
			env := tt.env()
			env.Args = env.Args[:min(len(env.Args), len(c.Vulnerable.Params))]
			vres, verr := Run(cveModule(c.Vulnerable), c.FuncName, env.Clone(), 1<<16)
			pres, perr := Run(cveModule(c.Patched), c.FuncName, env.Clone(), 1<<16)
			if perr != nil {
				t.Fatalf("patched version traps on exploit env: %v", perr)
			}
			if tt.wantTrap != 0 {
				var tr *TrapError
				if !errors.As(verr, &tr) || tr.Kind != tt.wantTrap {
					t.Fatalf("vulnerable: want trap %v, got %v", tt.wantTrap, verr)
				}
				return
			}
			if verr != nil {
				t.Fatalf("vulnerable traps unexpectedly: %v", verr)
			}
			if vres.Ret == pres.Ret {
				t.Errorf("vulnerable and patched agree (%d) on exploit env; want divergence", vres.Ret)
			}
		})
	}
}

func TestCVEPairsFreshCopies(t *testing.T) {
	a := CVEByID("CVE-2018-9412")
	b := CVEByID("CVE-2018-9412")
	if a == b || a.Vulnerable == b.Vulnerable {
		t.Error("CVEs() should rebuild ASTs on every call")
	}
}
