package minic

// Deep-copy helpers for the AST. The compiler clones functions before
// transforming them; the corpus's sibling-function mutator clones before
// mutating.

// CloneFunc returns a deep copy of the function.
func CloneFunc(f *Func) *Func {
	return &Func{
		Name:   f.Name,
		Params: append([]string(nil), f.Params...),
		Body:   CloneStmts(f.Body),
	}
}

// CloneStmts deep-copies a statement list.
func CloneStmts(ss []Stmt) []Stmt {
	out := make([]Stmt, 0, len(ss))
	for _, s := range ss {
		out = append(out, CloneStmt(s))
	}
	return out
}

// CloneStmt deep-copies one statement.
func CloneStmt(s Stmt) Stmt {
	switch s := s.(type) {
	case *Assign:
		return &Assign{Name: s.Name, E: CloneExpr(s.E)}
	case *Store:
		return &Store{Base: CloneExpr(s.Base), Index: CloneExpr(s.Index), Val: CloneExpr(s.Val)}
	case *StoreW:
		return &StoreW{Base: CloneExpr(s.Base), Index: CloneExpr(s.Index), Val: CloneExpr(s.Val)}
	case *If:
		return &If{Cond: CloneExpr(s.Cond), Then: CloneStmts(s.Then), Else: CloneStmts(s.Else)}
	case *While:
		return &While{Cond: CloneExpr(s.Cond), Body: CloneStmts(s.Body)}
	case *Return:
		if s.E == nil {
			return &Return{}
		}
		return &Return{E: CloneExpr(s.E)}
	case *ExprStmt:
		return &ExprStmt{E: CloneExpr(s.E)}
	case *Break:
		return &Break{}
	case *Continue:
		return &Continue{}
	default:
		return s
	}
}

// CloneExpr deep-copies one expression.
func CloneExpr(e Expr) Expr {
	switch e := e.(type) {
	case *IntLit:
		return &IntLit{V: e.V}
	case *StrLit:
		return &StrLit{S: e.S}
	case *VarRef:
		return &VarRef{Name: e.Name}
	case *Bin:
		return &Bin{Op: e.Op, L: CloneExpr(e.L), R: CloneExpr(e.R)}
	case *Un:
		return &Un{Op: e.Op, X: CloneExpr(e.X)}
	case *Load:
		return &Load{Base: CloneExpr(e.Base), Index: CloneExpr(e.Index)}
	case *LoadW:
		return &LoadW{Base: CloneExpr(e.Base), Index: CloneExpr(e.Index)}
	case *CallExpr:
		args := make([]Expr, len(e.Args))
		for i, a := range e.Args {
			args[i] = CloneExpr(a)
		}
		return &CallExpr{Name: e.Name, Args: args}
	default:
		return e
	}
}
