package minic

import (
	"strings"
	"testing"
)

func TestExprStrings(t *testing.T) {
	tests := []struct {
		e    Expr
		want string
	}{
		{I(42), "42"},
		{S("hi"), `"hi"`},
		{V("x"), "x"},
		{Add(V("a"), I(1)), "(a + 1)"},
		{Sub(V("a"), V("b")), "(a - b)"},
		{Mul(I(2), I(3)), "(2 * 3)"},
		{Div(V("a"), V("b")), "(a / b)"},
		{Mod(V("a"), V("b")), "(a % b)"},
		{Eq(V("a"), I(0)), "(a == 0)"},
		{Ne(V("a"), I(0)), "(a != 0)"},
		{Lt(V("a"), I(0)), "(a < 0)"},
		{Le(V("a"), I(0)), "(a <= 0)"},
		{Gt(V("a"), I(0)), "(a > 0)"},
		{Ge(V("a"), I(0)), "(a >= 0)"},
		{And(V("a"), I(7)), "(a & 7)"},
		{Or(V("a"), I(7)), "(a | 7)"},
		{Xor(V("a"), I(7)), "(a ^ 7)"},
		{Shl(V("a"), I(2)), "(a << 2)"},
		{Shr(V("a"), I(2)), "(a >> 2)"},
		{B(OpFAdd, V("a"), V("b")), "(a f+ b)"},
		{B(OpFDiv, V("a"), V("b")), "(a f/ b)"},
		{Neg(V("a")), "(-a)"},
		{Not(V("a")), "(!a)"},
		{&Un{Op: OpInv, X: V("a")}, "(~a)"},
		{Ld(V("p"), V("i")), "p[i]"},
		{LdW(V("p"), I(2)), "p.w[2]"},
		{Call("min", V("a"), I(1)), "min(a, 1)"},
	}
	for _, tt := range tests {
		if got := tt.e.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestOpPredicates(t *testing.T) {
	if !OpFAdd.IsFloat() || OpAdd.IsFloat() {
		t.Error("IsFloat wrong")
	}
	if !OpLt.IsCompare() || OpAdd.IsCompare() {
		t.Error("IsCompare wrong")
	}
	if BinOp(99).String() == "" || !strings.Contains(BinOp(99).String(), "99") {
		t.Error("unknown op String should include the code")
	}
}

func TestTrapKindStrings(t *testing.T) {
	kinds := []TrapKind{TrapOOB, TrapDivZero, TrapBadCall, TrapStepLimit, TrapStack, TrapDecode, TrapBudget}
	seen := make(map[string]bool)
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Errorf("TrapKind %d: bad or duplicate string %q", k, s)
		}
		seen[s] = true
	}
	if !strings.Contains(TrapKind(77).String(), "77") {
		t.Error("unknown kind should render its code")
	}
	// TrapError messages.
	if s := (&TrapError{Kind: TrapOOB, Addr: 0x20}).Error(); !strings.Contains(s, "0x20") {
		t.Errorf("OOB error lacks address: %s", s)
	}
	if s := (&TrapError{Kind: TrapBadCall, Msg: "nope"}).Error(); !strings.Contains(s, "nope") {
		t.Errorf("error lacks message: %s", s)
	}
	if s := (&TrapError{Kind: TrapDivZero}).Error(); !strings.Contains(s, "division") {
		t.Errorf("plain error wrong: %s", s)
	}
	// IsTrap on non-traps.
	if _, ok := IsTrap(nil); ok {
		t.Error("IsTrap(nil) = true")
	}
}

func TestBuiltinTable(t *testing.T) {
	if NumBuiltins() == 0 {
		t.Fatal("empty builtin table")
	}
	for i := 0; i < NumBuiltins(); i++ {
		b, ok := BuiltinByIndex(i)
		if !ok || b.Index != i {
			t.Fatalf("BuiltinByIndex(%d) inconsistent", i)
		}
		if Builtins[b.Name] != b {
			t.Errorf("name map and index table disagree for %s", b.Name)
		}
		if b.Kind != KindLib && b.Kind != KindSys {
			t.Errorf("%s: bad kind", b.Name)
		}
	}
	if _, ok := BuiltinByIndex(-1); ok {
		t.Error("negative index accepted")
	}
	if _, ok := BuiltinByIndex(NumBuiltins()); ok {
		t.Error("out-of-range index accepted")
	}
	// The import table must contain both kinds (Table II separates library
	// calls from syscalls).
	var lib, sys bool
	for _, b := range Builtins {
		if b.Kind == KindLib {
			lib = true
		} else {
			sys = true
		}
	}
	if !lib || !sys {
		t.Error("builtin table missing a kind")
	}
}

func TestModuleLookup(t *testing.T) {
	m := &Module{Name: "t", Funcs: []*Func{NewFunc("f", nil, Ret(I(0)))}}
	if m.Lookup("f") == nil || m.Lookup("g") != nil {
		t.Error("Lookup wrong")
	}
}

func TestCloneIndependence(t *testing.T) {
	f := NewFunc("f", []string{"a"},
		When(Gt(V("a"), I(0)), Set("x", Add(V("a"), I(1)))),
		Ret(V("x")))
	g := CloneFunc(f)
	// Mutate the clone deeply; the original must be untouched.
	g.Body[0].(*If).Then[0].(*Assign).E = I(999)
	orig := f.Body[0].(*If).Then[0].(*Assign).E
	if lit, ok := orig.(*IntLit); ok && lit.V == 999 {
		t.Error("CloneFunc shares expression nodes")
	}
	// All statement kinds round-trip through CloneStmt.
	stmts := []Stmt{
		Set("x", I(1)),
		St(V("p"), I(0), I(1)),
		StW(V("p"), I(0), I(1)),
		When(I(1), Ret(I(0))),
		Loop(I(0)),
		&Return{},
		Do(Call("read_time")),
	}
	for _, s := range stmts {
		c := CloneStmt(s)
		if c == s {
			t.Errorf("%T not deep-cloned", s)
		}
	}
	// Break/Continue are zero-size (identical addresses are fine); just
	// check the clones have the right dynamic type.
	if _, ok := CloneStmt(&Break{}).(*Break); !ok {
		t.Error("Break clone has wrong type")
	}
	if _, ok := CloneStmt(&Continue{}).(*Continue); !ok {
		t.Error("Continue clone has wrong type")
	}
}
