package minic

import (
	"fmt"
	"math"
)

// Env is an execution environment for a single function invocation: the
// scalar arguments plus the initial contents of the data region. It is the
// source-level analog of the paper's "fixed execution environment"
// (function arguments and global memory state).
type Env struct {
	// Args are the scalar arguments. By convention pointer-typed arguments
	// hold addresses inside the data region (DataBase..DataBase+DataSize).
	Args []int64
	// Data is copied to the start of the data region before execution.
	Data []byte
}

// Clone returns a deep copy of the environment.
func (e *Env) Clone() *Env {
	out := &Env{Args: make([]int64, len(e.Args)), Data: make([]byte, len(e.Data))}
	copy(out.Args, e.Args)
	copy(out.Data, e.Data)
	return out
}

// Result is the outcome of a successful source-level execution.
type Result struct {
	Ret   int64
	Steps int64
	// Mem exposes the final data-region contents so callers (and the
	// semantics-preservation property tests) can compare memory effects.
	Mem []byte
}

// DefaultStepLimit bounds interpreter executions.
const DefaultStepLimit = 1 << 20

// maxCallDepth bounds source-level recursion.
const maxCallDepth = 64

// flatMem is the interpreter's address space: a data region, a rodata
// region holding interned strings, and a heap.
type flatMem struct {
	data   []byte
	rodata []byte
	heap   []byte
}

var _ Memory = (*flatMem)(nil)

func newFlatMem(env *Env, rodata []byte) *flatMem {
	m := &flatMem{
		data:   make([]byte, DataSize),
		rodata: rodata,
		heap:   make([]byte, HeapSize),
	}
	copy(m.data, env.Data)
	return m
}

func (m *flatMem) LoadByte(addr int64) (byte, error) {
	switch {
	case addr >= DataBase && addr < DataBase+DataSize:
		return m.data[addr-DataBase], nil
	case addr >= RodataBase && addr < RodataBase+int64(len(m.rodata)):
		return m.rodata[addr-RodataBase], nil
	case addr >= HeapBase && addr < HeapBase+HeapSize:
		return m.heap[addr-HeapBase], nil
	}
	return 0, &TrapError{Kind: TrapOOB, Addr: addr}
}

func (m *flatMem) StoreByte(addr int64, v byte) error {
	switch {
	case addr >= DataBase && addr < DataBase+DataSize:
		m.data[addr-DataBase] = v
		return nil
	case addr >= HeapBase && addr < HeapBase+HeapSize:
		m.heap[addr-HeapBase] = v
		return nil
	}
	// rodata is not writable.
	return &TrapError{Kind: TrapOOB, Addr: addr}
}

// Interp executes source functions directly. It defines the reference
// semantics that the compiler/emulator pipeline is tested against.
type Interp struct {
	mod       *Module
	strAddrs  map[string]int64
	mem       *flatMem
	bst       *BuiltinState
	steps     int64
	stepLimit int64
}

// control models non-local statement outcomes.
type control int

const (
	ctlNone control = iota
	ctlBreak
	ctlContinue
	ctlReturn
)

// Run interprets m.Lookup(fname) under env with the given step limit
// (DefaultStepLimit if limit <= 0).
func Run(m *Module, fname string, env *Env, limit int64) (*Result, error) {
	fn := m.Lookup(fname)
	if fn == nil {
		return nil, fmt.Errorf("minic: no function %q in module %q", fname, m.Name)
	}
	if limit <= 0 {
		limit = DefaultStepLimit
	}
	rodata, addrs := InternStrings(m)
	in := &Interp{
		mod:       m,
		strAddrs:  addrs,
		mem:       newFlatMem(env, rodata),
		bst:       NewBuiltinState(),
		stepLimit: limit,
	}
	ret, err := in.call(fn, env.Args, 0)
	if err != nil {
		return nil, err
	}
	return &Result{Ret: ret, Steps: in.steps, Mem: in.mem.data}, nil
}

func (in *Interp) tick() error {
	in.steps++
	if in.steps > in.stepLimit {
		return &TrapError{Kind: TrapStepLimit}
	}
	return nil
}

func (in *Interp) call(fn *Func, args []int64, depth int) (int64, error) {
	if depth > maxCallDepth {
		return 0, &TrapError{Kind: TrapStack, Msg: "recursion too deep"}
	}
	if len(args) != len(fn.Params) {
		return 0, &TrapError{Kind: TrapBadCall,
			Msg: fmt.Sprintf("%s expects %d args, got %d", fn.Name, len(fn.Params), len(args))}
	}
	vars := make(map[string]int64, len(fn.Params)+8)
	for i, p := range fn.Params {
		vars[p] = args[i]
	}
	ctl, ret, err := in.execBlock(fn.Body, vars, depth)
	if err != nil {
		return 0, err
	}
	if ctl == ctlReturn {
		return ret, nil
	}
	return 0, nil // falling off the end returns 0
}

func (in *Interp) execBlock(ss []Stmt, vars map[string]int64, depth int) (control, int64, error) {
	for _, s := range ss {
		ctl, ret, err := in.execStmt(s, vars, depth)
		if err != nil {
			return ctlNone, 0, err
		}
		if ctl != ctlNone {
			return ctl, ret, nil
		}
	}
	return ctlNone, 0, nil
}

func (in *Interp) execStmt(s Stmt, vars map[string]int64, depth int) (control, int64, error) {
	if err := in.tick(); err != nil {
		return ctlNone, 0, err
	}
	switch s := s.(type) {
	case *Assign:
		v, err := in.eval(s.E, vars, depth)
		if err != nil {
			return ctlNone, 0, err
		}
		vars[s.Name] = v
	case *Store:
		base, err := in.eval(s.Base, vars, depth)
		if err != nil {
			return ctlNone, 0, err
		}
		idx, err := in.eval(s.Index, vars, depth)
		if err != nil {
			return ctlNone, 0, err
		}
		val, err := in.eval(s.Val, vars, depth)
		if err != nil {
			return ctlNone, 0, err
		}
		if err := in.mem.StoreByte(base+idx, byte(val)); err != nil {
			return ctlNone, 0, err
		}
	case *StoreW:
		base, err := in.eval(s.Base, vars, depth)
		if err != nil {
			return ctlNone, 0, err
		}
		idx, err := in.eval(s.Index, vars, depth)
		if err != nil {
			return ctlNone, 0, err
		}
		val, err := in.eval(s.Val, vars, depth)
		if err != nil {
			return ctlNone, 0, err
		}
		if err := StoreWord(in.mem, base+idx*8, val); err != nil {
			return ctlNone, 0, err
		}
	case *If:
		c, err := in.eval(s.Cond, vars, depth)
		if err != nil {
			return ctlNone, 0, err
		}
		if c != 0 {
			return in.execBlock(s.Then, vars, depth)
		}
		return in.execBlock(s.Else, vars, depth)
	case *While:
		for {
			c, err := in.eval(s.Cond, vars, depth)
			if err != nil {
				return ctlNone, 0, err
			}
			if c == 0 {
				return ctlNone, 0, nil
			}
			ctl, ret, err := in.execBlock(s.Body, vars, depth)
			if err != nil {
				return ctlNone, 0, err
			}
			switch ctl {
			case ctlBreak:
				return ctlNone, 0, nil
			case ctlReturn:
				return ctlReturn, ret, nil
			}
			if err := in.tick(); err != nil {
				return ctlNone, 0, err
			}
		}
	case *Return:
		if s.E == nil {
			return ctlReturn, 0, nil
		}
		v, err := in.eval(s.E, vars, depth)
		if err != nil {
			return ctlNone, 0, err
		}
		return ctlReturn, v, nil
	case *ExprStmt:
		if _, err := in.eval(s.E, vars, depth); err != nil {
			return ctlNone, 0, err
		}
	case *Break:
		return ctlBreak, 0, nil
	case *Continue:
		return ctlContinue, 0, nil
	default:
		return ctlNone, 0, fmt.Errorf("minic: unknown statement %T", s)
	}
	return ctlNone, 0, nil
}

func (in *Interp) eval(e Expr, vars map[string]int64, depth int) (int64, error) {
	if err := in.tick(); err != nil {
		return 0, err
	}
	switch e := e.(type) {
	case *IntLit:
		return e.V, nil
	case *StrLit:
		return in.strAddrs[e.S], nil
	case *VarRef:
		return vars[e.Name], nil // unassigned locals read as 0
	case *Bin:
		l, err := in.eval(e.L, vars, depth)
		if err != nil {
			return 0, err
		}
		r, err := in.eval(e.R, vars, depth)
		if err != nil {
			return 0, err
		}
		return EvalBinOp(e.Op, l, r)
	case *Un:
		x, err := in.eval(e.X, vars, depth)
		if err != nil {
			return 0, err
		}
		return EvalUnOp(e.Op, x), nil
	case *Load:
		base, err := in.eval(e.Base, vars, depth)
		if err != nil {
			return 0, err
		}
		idx, err := in.eval(e.Index, vars, depth)
		if err != nil {
			return 0, err
		}
		b, err := in.mem.LoadByte(base + idx)
		if err != nil {
			return 0, err
		}
		return int64(b), nil
	case *LoadW:
		base, err := in.eval(e.Base, vars, depth)
		if err != nil {
			return 0, err
		}
		idx, err := in.eval(e.Index, vars, depth)
		if err != nil {
			return 0, err
		}
		return LoadWord(in.mem, base+idx*8)
	case *CallExpr:
		args := make([]int64, len(e.Args))
		for i, a := range e.Args {
			v, err := in.eval(a, vars, depth)
			if err != nil {
				return 0, err
			}
			args[i] = v
		}
		if b, ok := Builtins[e.Name]; ok {
			if len(args) != b.NArgs {
				return 0, &TrapError{Kind: TrapBadCall,
					Msg: fmt.Sprintf("%s expects %d args, got %d", b.Name, b.NArgs, len(args))}
			}
			return b.Fn(in.mem, in.bst, args)
		}
		if fn := in.mod.Lookup(e.Name); fn != nil {
			return in.call(fn, args, depth+1)
		}
		return 0, &TrapError{Kind: TrapBadCall, Msg: "unknown function " + e.Name}
	default:
		return 0, fmt.Errorf("minic: unknown expression %T", e)
	}
}

// EvalBinOp applies a binary operator to two values, with the trap
// semantics shared by the interpreter and the emulator.
func EvalBinOp(op BinOp, l, r int64) (int64, error) {
	switch op {
	case OpAdd:
		return l + r, nil
	case OpSub:
		return l - r, nil
	case OpMul:
		return l * r, nil
	case OpDiv:
		if r == 0 {
			return 0, &TrapError{Kind: TrapDivZero}
		}
		if l == math.MinInt64 && r == -1 {
			return math.MinInt64, nil // wraparound, not a trap
		}
		return l / r, nil
	case OpMod:
		if r == 0 {
			return 0, &TrapError{Kind: TrapDivZero}
		}
		if l == math.MinInt64 && r == -1 {
			return 0, nil
		}
		return l % r, nil
	case OpAnd:
		return l & r, nil
	case OpOr:
		return l | r, nil
	case OpXor:
		return l ^ r, nil
	case OpShl:
		return l << (uint64(r) & 63), nil
	case OpShr:
		return int64(uint64(l) >> (uint64(r) & 63)), nil
	case OpEq:
		return b2i(l == r), nil
	case OpNe:
		return b2i(l != r), nil
	case OpLt:
		return b2i(l < r), nil
	case OpLe:
		return b2i(l <= r), nil
	case OpGt:
		return b2i(l > r), nil
	case OpGe:
		return b2i(l >= r), nil
	case OpFAdd:
		return fbin(l, r, func(a, b float64) float64 { return a + b }), nil
	case OpFSub:
		return fbin(l, r, func(a, b float64) float64 { return a - b }), nil
	case OpFMul:
		return fbin(l, r, func(a, b float64) float64 { return a * b }), nil
	case OpFDiv:
		return fbin(l, r, func(a, b float64) float64 { return a / b }), nil
	default:
		return 0, fmt.Errorf("minic: unknown binary op %v", op)
	}
}

// EvalUnOp applies a unary operator.
func EvalUnOp(op UnOp, x int64) int64 {
	switch op {
	case OpNeg:
		return -x
	case OpNot:
		return b2i(x == 0)
	case OpInv:
		return ^x
	default:
		return 0
	}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func fbin(l, r int64, f func(a, b float64) float64) int64 {
	a := math.Float64frombits(uint64(l))
	b := math.Float64frombits(uint64(r))
	return int64(math.Float64bits(f(a, b)))
}
