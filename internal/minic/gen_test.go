package minic

import (
	"errors"
	"reflect"
	"testing"
)

func TestGenLibraryDeterministic(t *testing.T) {
	a := GenLibrary(GenConfig{Seed: 42, Name: "libfoo", NumFuncs: 12})
	b := GenLibrary(GenConfig{Seed: 42, Name: "libfoo", NumFuncs: 12})
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed must generate identical modules")
	}
	c := GenLibrary(GenConfig{Seed: 43, Name: "libfoo", NumFuncs: 12})
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds should generate different modules")
	}
}

func TestGenLibraryShape(t *testing.T) {
	m := GenLibrary(GenConfig{Seed: 7, Name: "libbar", NumFuncs: 30})
	if len(m.Funcs) != 30 {
		t.Fatalf("got %d funcs, want 30", len(m.Funcs))
	}
	names := make(map[string]bool)
	for _, f := range m.Funcs {
		if names[f.Name] {
			t.Errorf("duplicate function name %s", f.Name)
		}
		names[f.Name] = true
		if len(f.Params) == 0 || len(f.Params) > 4 {
			t.Errorf("%s: %d params outside [1,4]", f.Name, len(f.Params))
		}
	}
}

// TestGeneratedFunctionsTerminate runs every generated function under
// several environments: no generated function may hit the step limit
// (all loops are bounded by construction), though fragile ones may trap OOB.
func TestGeneratedFunctionsTerminate(t *testing.T) {
	m := GenLibrary(GenConfig{Seed: 99, Name: "libterm", NumFuncs: 40})
	envs := []*Env{
		{Args: []int64{DataBase, 16, 3, 2}, Data: make([]byte, 256)},
		{Args: []int64{DataBase + 100, 255, -7, 1000}, Data: []byte("some input data here")},
		{Args: []int64{DataBase, 0, 0, 0}},
	}
	for _, f := range m.Funcs {
		for i, env := range envs {
			e := env.Clone()
			e.Args = e.Args[:len(f.Params)]
			_, err := Run(m, f.Name, e, 1<<18)
			if err == nil {
				continue
			}
			var tr *TrapError
			if errors.As(err, &tr) {
				if tr.Kind == TrapStepLimit {
					t.Errorf("%s env %d: hit step limit — generator emitted an unbounded loop", f.Name, i)
				}
				continue // OOB traps are expected for fragile functions
			}
			t.Errorf("%s env %d: unexpected error %v", f.Name, i, err)
		}
	}
}

// TestGeneratedDefensiveFunctionsMostlyClean checks the defensive fraction
// survives arbitrary-ish inputs, which the dynamic validation stage relies on.
func TestGeneratedDefensiveFunctionsMostlyClean(t *testing.T) {
	m := GenLibrary(GenConfig{Seed: 5, Name: "libdef", NumFuncs: 60, FragileFrac: 0.0001})
	env := &Env{Args: []int64{DataBase, 200, 77, 13}, Data: make([]byte, 1024)}
	for i := range env.Data {
		env.Data[i] = byte(i * 37)
	}
	clean := 0
	for _, f := range m.Funcs {
		e := env.Clone()
		e.Args = e.Args[:len(f.Params)]
		if _, err := Run(m, f.Name, e, 1<<18); err == nil {
			clean++
		}
	}
	if clean < len(m.Funcs)*9/10 {
		t.Errorf("only %d/%d defensive functions ran cleanly", clean, len(m.Funcs))
	}
}

func TestGeneratedFunctionsDeterministicResults(t *testing.T) {
	m := GenLibrary(GenConfig{Seed: 31, Name: "libdet", NumFuncs: 10})
	env := &Env{Args: []int64{DataBase, 32, 5, 9}, Data: []byte("deterministic-input-bytes")}
	for _, f := range m.Funcs {
		e1 := env.Clone()
		e1.Args = e1.Args[:len(f.Params)]
		e2 := e1.Clone()
		r1, err1 := Run(m, f.Name, e1, 1<<18)
		r2, err2 := Run(m, f.Name, e2, 1<<18)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("%s: nondeterministic trap behaviour", f.Name)
		}
		if err1 == nil && (r1.Ret != r2.Ret || r1.Steps != r2.Steps) {
			t.Errorf("%s: nondeterministic result", f.Name)
		}
	}
}
