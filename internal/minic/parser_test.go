package minic

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseBasicProgram(t *testing.T) {
	src := `
// Sum the first n bytes of p.
func sum(p, n) {
    s = 0;
    i = 0;
    while (i < n) {
        s = s + p[i];
        i = i + 1;
    }
    return s;
}
`
	mod, err := Parse("demo", src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(mod, "sum", &Env{Args: []int64{DataBase, 4}, Data: []byte{1, 2, 3, 4}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != 10 {
		t.Errorf("sum = %d, want 10", res.Ret)
	}
}

func TestParsePrecedence(t *testing.T) {
	tests := []struct {
		src  string
		want int64
	}{
		{"return 2 + 3 * 4;", 14},
		{"return (2 + 3) * 4;", 20},
		{"return 10 - 4 - 3;", 3}, // left associative
		{"return 1 << 2 + 1;", 1 << 3},
		{"return 7 & 3 == 3;", 7 & 1},
		{"return 1 | 2 ^ 2;", 1},
		{"return -3 * -4;", 12},
		{"return !0 + !5;", 1},
		{"return ~0;", -1},
		{"return 0x10 + 0xf;", 31},
		{"return 100 / 10 % 4;", 2},
		{"return 1 < 2 == 3 < 4;", 1},
	}
	for _, tt := range tests {
		t.Run(tt.src, func(t *testing.T) {
			mod, err := Parse("t", "func f() { "+tt.src+" }")
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(mod, "f", &Env{}, 0)
			if err != nil {
				t.Fatal(err)
			}
			if res.Ret != tt.want {
				t.Errorf("got %d, want %d", res.Ret, tt.want)
			}
		})
	}
}

func TestParseMemoryAndCalls(t *testing.T) {
	src := `
func f(p) {
    p[0] = 65;
    p.w[1] = 513;
    h = malloc(16);
    h[0] = p[0] + p.w[1];
    write_log(h[0]);
    return h[0] + strlen("abc");
}
`
	mod, err := Parse("t", src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(mod, "f", &Env{Args: []int64{DataBase}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// h[0] stores the low byte of 65+513 = 578 -> 66; plus strlen("abc").
	const want = 66 + 3
	if res.Ret != want {
		t.Errorf("got %d, want %d", res.Ret, want)
	}
}

func TestParseControlFlow(t *testing.T) {
	src := `
func f(n) {
    acc = 0;
    i = 0;
    while (1) {
        i = i + 1;
        if (i > n) { break; }
        if (i % 2 == 0) { continue; } else { acc = acc + i; }
    }
    if (acc > 100) { return 100; }
    return acc;
}
`
	mod, err := Parse("t", src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(mod, "f", &Env{Args: []int64{7}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != 1+3+5+7 {
		t.Errorf("got %d, want 16", res.Ret)
	}
}

func TestParseFloatOps(t *testing.T) {
	// 2.0 and 3.0 as raw bit patterns; +. is float addition on the bits.
	src := `
func f(a, b) {
    return a +. b *. b;
}
`
	mod, err := Parse("t", src)
	if err != nil {
		t.Fatal(err)
	}
	two := int64(4611686018427387904)  // bits of 2.0
	nine := int64(4621256167635550208) // bits of 9.0 = 3*3
	three := int64(4613937818241073152)
	res, err := Run(mod, "f", &Env{Args: []int64{two, three}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	eleven := int64(4622382067542392832) // bits of 11.0
	_ = nine
	if res.Ret != eleven {
		t.Errorf("float expr bits = %d, want %d", res.Ret, eleven)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"fn f() {}",
		"func f( {}",
		"func f() { x = ; }",
		"func f() { return 1 }",
		"func f() { 5 = x; }",
		"func f() { if 1 { } }",
		"func f() { x = \"unterminated; }",
		"func f() { x = 99999999999999999999999999; }",
		"func f() { @ }",
		"func f() { while (1) { ",
	}
	for _, src := range bad {
		if _, err := Parse("t", src); err == nil {
			t.Errorf("accepted bad program %q", src)
		}
	}
}

func TestParseErrorPositions(t *testing.T) {
	_, err := Parse("t", "func f() {\n    x = ;\n}")
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("want *ParseError, got %T", err)
	}
	if pe.Line != 2 {
		t.Errorf("error line %d, want 2", pe.Line)
	}
}

// TestPrintParseRoundtrip is the frontend's core property: Parse(Print(m))
// rebuilds m exactly, for the whole CVE corpus and generated libraries.
func TestPrintParseRoundtrip(t *testing.T) {
	var mods []*Module
	for _, pair := range CVEs() {
		mods = append(mods,
			&Module{Name: pair.ID + ".vuln", Funcs: []*Func{pair.Vulnerable}},
			&Module{Name: pair.ID + ".patched", Funcs: []*Func{pair.Patched}},
		)
	}
	for seed := int64(0); seed < 3; seed++ {
		mods = append(mods, GenLibrary(GenConfig{Seed: 100 + seed, Name: "libroundtrip", NumFuncs: 10}))
	}
	for _, m := range mods {
		src := Print(m)
		back, err := Parse(m.Name, src)
		if err != nil {
			t.Fatalf("%s: re-parse failed: %v\nsource:\n%s", m.Name, err, src)
		}
		if !reflect.DeepEqual(m.Funcs, back.Funcs) {
			// Pinpoint the first differing function for the report.
			for i := range m.Funcs {
				if i < len(back.Funcs) && !reflect.DeepEqual(m.Funcs[i], back.Funcs[i]) {
					t.Fatalf("%s: function %s does not round-trip:\n%s\nvs\n%s",
						m.Name, m.Funcs[i].Name, PrintFunc(m.Funcs[i]), PrintFunc(back.Funcs[i]))
				}
			}
			t.Fatalf("%s: module does not round-trip", m.Name)
		}
	}
}

func TestPrintIsParseable(t *testing.T) {
	// And the printed CVE corpus is human-plausible source.
	pair := CVEByID("CVE-2018-9412")
	src := PrintFunc(pair.Vulnerable)
	for _, want := range []string{"func removeUnsynchronization(p, n)", "while", "memmove(", "return"} {
		if !strings.Contains(src, want) {
			t.Errorf("printed source missing %q:\n%s", want, src)
		}
	}
}
