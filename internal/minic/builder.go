package minic

// Builder helpers. The CVE corpus (cves.go) and the library generator
// (gen.go) construct a lot of AST by hand; these shorthands keep that code
// readable. They are also used pervasively by tests across the repository.

// I builds an integer literal.
func I(v int64) *IntLit { return &IntLit{V: v} }

// S builds a string literal.
func S(s string) *StrLit { return &StrLit{S: s} }

// V builds a variable reference.
func V(name string) *VarRef { return &VarRef{Name: name} }

// B builds a binary expression.
func B(op BinOp, l, r Expr) *Bin { return &Bin{Op: op, L: l, R: r} }

// Add, Sub, Mul, Div, Mod build the corresponding arithmetic expressions.
func Add(l, r Expr) *Bin { return B(OpAdd, l, r) }

// Sub builds l - r.
func Sub(l, r Expr) *Bin { return B(OpSub, l, r) }

// Mul builds l * r.
func Mul(l, r Expr) *Bin { return B(OpMul, l, r) }

// Div builds l / r (traps on zero divisor).
func Div(l, r Expr) *Bin { return B(OpDiv, l, r) }

// Mod builds l % r (traps on zero divisor).
func Mod(l, r Expr) *Bin { return B(OpMod, l, r) }

// Eq builds l == r.
func Eq(l, r Expr) *Bin { return B(OpEq, l, r) }

// Ne builds l != r.
func Ne(l, r Expr) *Bin { return B(OpNe, l, r) }

// Lt builds l < r.
func Lt(l, r Expr) *Bin { return B(OpLt, l, r) }

// Le builds l <= r.
func Le(l, r Expr) *Bin { return B(OpLe, l, r) }

// Gt builds l > r.
func Gt(l, r Expr) *Bin { return B(OpGt, l, r) }

// Ge builds l >= r.
func Ge(l, r Expr) *Bin { return B(OpGe, l, r) }

// And builds the bitwise and of l and r.
func And(l, r Expr) *Bin { return B(OpAnd, l, r) }

// Or builds the bitwise or of l and r.
func Or(l, r Expr) *Bin { return B(OpOr, l, r) }

// Xor builds the bitwise xor of l and r.
func Xor(l, r Expr) *Bin { return B(OpXor, l, r) }

// Shl builds l << r.
func Shl(l, r Expr) *Bin { return B(OpShl, l, r) }

// Shr builds the logical shift l >> r.
func Shr(l, r Expr) *Bin { return B(OpShr, l, r) }

// Not builds the logical negation of x.
func Not(x Expr) *Un { return &Un{Op: OpNot, X: x} }

// Neg builds -x.
func Neg(x Expr) *Un { return &Un{Op: OpNeg, X: x} }

// Ld builds a byte load base[idx].
func Ld(base, idx Expr) *Load { return &Load{Base: base, Index: idx} }

// LdW builds a word load base.w[idx].
func LdW(base, idx Expr) *LoadW { return &LoadW{Base: base, Index: idx} }

// Call builds a call expression.
func Call(name string, args ...Expr) *CallExpr {
	return &CallExpr{Name: name, Args: args}
}

// Set builds an assignment statement.
func Set(name string, e Expr) *Assign { return &Assign{Name: name, E: e} }

// St builds a byte store base[idx] = val.
func St(base, idx, val Expr) *Store {
	return &Store{Base: base, Index: idx, Val: val}
}

// StW builds a word store base.w[idx] = val.
func StW(base, idx, val Expr) *StoreW {
	return &StoreW{Base: base, Index: idx, Val: val}
}

// When builds an if statement with no else branch.
func When(cond Expr, then ...Stmt) *If { return &If{Cond: cond, Then: then} }

// IfElse builds an if/else statement.
func IfElse(cond Expr, then, els []Stmt) *If {
	return &If{Cond: cond, Then: then, Else: els}
}

// Loop builds a while statement.
func Loop(cond Expr, body ...Stmt) *While {
	return &While{Cond: cond, Body: body}
}

// For builds the canonical counted loop:
//
//	i = start; while (i < limit) { body...; i = i + 1 }
func For(i string, start, limit Expr, body ...Stmt) []Stmt {
	loopBody := make([]Stmt, 0, len(body)+1)
	loopBody = append(loopBody, body...)
	loopBody = append(loopBody, Set(i, Add(V(i), I(1))))
	return []Stmt{
		Set(i, start),
		Loop(Lt(V(i), limit), loopBody...),
	}
}

// Ret builds a return statement.
func Ret(e Expr) *Return { return &Return{E: e} }

// Do builds an expression statement.
func Do(e Expr) *ExprStmt { return &ExprStmt{E: e} }

// NewFunc builds a function.
func NewFunc(name string, params []string, body ...Stmt) *Func {
	return &Func{Name: name, Params: params, Body: body}
}
