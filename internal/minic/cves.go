package minic

// The CVE corpus: 25 vulnerable/patched function pairs, one per CVE the
// paper evaluates (Tables VI-VIII use exactly these 25 IDs from the Android
// Security Bulletins). Each pair is a hand-written minic function modelled
// on the real vulnerability's class:
//
//   - CVE-2018-9412 is a faithful port of the paper's case study,
//     ID3::removeUnsynchronization in libstagefright (Fig. 6): the
//     vulnerable version shifts the buffer with memmove inside the scan
//     loop; the patch rewrites it as a read/write-offset compaction loop
//     and drops the memmove library call entirely.
//   - CVE-2018-9470 is the paper's known-hard case: the patch changes a
//     single integer constant, which the differential engine misclassifies
//     (Table VIII's one error). Minute=true marks it.
//
// All functions use the corpus-wide signature convention (≤4 params drawn
// from p, n, a, b; p is a pointer into the data region) so a single set of
// execution environments can drive any candidate function, exactly as the
// paper reuses the CVE function's inputs to validate candidates.

// CVEPair is one entry of the vulnerability database source.
type CVEPair struct {
	ID       string // e.g. "CVE-2018-9412"
	Library  string // which synthetic library hosts the function
	FuncName string
	Class    string // vulnerability class, for documentation/reports
	// Minute marks patches so small (single constant) that the paper's
	// differential engine cannot distinguish them (Table VIII, CVE-2018-9470).
	Minute     bool
	Vulnerable *Func
	Patched    *Func
}

// CVEs returns the full 25-entry corpus. The result is freshly built on
// every call so callers may mutate the ASTs.
func CVEs() []*CVEPair {
	return []*CVEPair{
		cveRemoveUnsync(),     // CVE-2018-9412
		cveClampDimension(),   // CVE-2018-9470 (minute patch)
		cveParseChunkHeader(), // CVE-2018-9451
		cveDecodeFrameLen(),   // CVE-2018-9340
		cveScaleSampleRate(),  // CVE-2017-13232
		cveUnpackEntries(),    // CVE-2018-9345
		cveReadTagValue(),     // CVE-2018-9420
		cveCopyTrackName(),    // CVE-2017-13210
		cveSeekToCluster(),    // CVE-2017-13209
		cveValidateRange(),    // CVE-2018-9411
		cveMergeCuePoints(),   // CVE-2017-13252
		cveParseSynchsafe(),   // CVE-2017-13253
		cveUpdateHistogram(),  // CVE-2018-9499
		cveDecodeVarint(),     // CVE-2018-9424
		cveFillPadding(),      // CVE-2018-9491
		cveStripTrailing(),    // CVE-2017-13278
		cveSumTable(),         // CVE-2018-9410
		cveResampleCount(),    // CVE-2017-13208
		cveParseAtomDepth(),   // CVE-2018-9498
		cveCheckMagic(),       // CVE-2017-13279
		cveExpandRLE(),        // CVE-2018-9440
		cveMixKeyDigest(),     // CVE-2018-9427
		cveAlignOffset(),      // CVE-2017-13178
		cveTruncateList(),     // CVE-2017-13180
		cveSwapEndian(),       // CVE-2017-13182
	}
}

// CVEByID returns the pair with the given CVE id, or nil.
func CVEByID(id string) *CVEPair {
	for _, c := range CVEs() {
		if c.ID == id {
			return c
		}
	}
	return nil
}

// Real CVE functions are substantial (the paper's case-study candidates
// execute 89-238 instructions, Table III); a ten-instruction helper has
// trace-identical lookalikes everywhere and cannot be ranked reliably. The
// preamble builders below add realistic surrounding logic — header
// checksumming, diagnostics, small scans — IDENTICALLY to the vulnerable
// and patched versions of the smaller CVE functions, so the patch diff
// itself is untouched.

// preambleP is shared prologue logic for functions with a valid pointer
// parameter p: checksum a header window, log it, and fold a few bytes.
func preambleP(span int64) []Stmt {
	out := []Stmt{
		Set("hdr", Call("checksum", V("p"), I(span))),
		Do(Call("write_log", V("hdr"))),
		Set("hacc", I(0)),
	}
	out = append(out, For("ci", I(0), I(span/2),
		Set("hacc", Xor(Shl(V("hacc"), I(1)), Ld(V("p"), V("ci")))))...)
	return out
}

// preambleS is shared prologue logic for scalar-only functions: mix the
// first scalar, log the result, and run a small bounded loop.
func preambleS(v string) []Stmt {
	out := []Stmt{
		Set("mix", Xor(Mul(V(v), I(0x9e37)), Shr(V(v), I(3)))),
		Do(Call("write_log", V("mix"))),
	}
	out = append(out, For("ci", I(0), Add(And(V(v), I(15)), I(4)),
		Set("mix", Add(Mul(V("mix"), I(31)), V("ci"))))...)
	return out
}

// withPreamble prepends shared statements to a function body.
func withPreamble(pre []Stmt, f *Func) *Func {
	f.Body = append(append([]Stmt{}, pre...), f.Body...)
	return f
}

// cveRemoveUnsync ports Fig. 6 of the paper. p points at the ID3 data, n is
// mSize. Returns the new size.
func cveRemoveUnsync() *CVEPair {
	vuln := NewFunc("removeUnsynchronization", []string{"p", "n"},
		// for (i = 0; i + 1 < n; ++i)
		Set("i", I(0)),
		Loop(Lt(Add(V("i"), I(1)), V("n")),
			When(And(Eq(Ld(V("p"), V("i")), I(0xff)), Eq(Ld(V("p"), Add(V("i"), I(1))), I(0))),
				// memmove(&p[i+1], &p[i+2], n - i - 2); --n;
				Do(Call("memmove",
					Add(V("p"), Add(V("i"), I(1))),
					Add(V("p"), Add(V("i"), I(2))),
					Sub(Sub(V("n"), V("i")), I(2)))),
				Set("n", Sub(V("n"), I(1))),
			),
			Set("i", Add(V("i"), I(1))),
		),
		Ret(V("n")),
	)
	patched := NewFunc("removeUnsynchronization", []string{"p", "n"},
		Set("w", I(1)),
		Set("r", I(1)),
		Loop(Lt(V("r"), V("n")),
			IfElse(And(Eq(Ld(V("p"), Sub(V("r"), I(1))), I(0xff)), Eq(Ld(V("p"), V("r")), I(0))),
				nil, // continue
				[]Stmt{
					St(V("p"), V("w"), Ld(V("p"), V("r"))),
					Set("w", Add(V("w"), I(1))),
				}),
			Set("r", Add(V("r"), I(1))),
		),
		When(Lt(V("w"), V("n")), Set("n", V("w"))),
		Ret(V("n")),
	)
	return &CVEPair{
		ID: "CVE-2018-9412", Library: "libstagefright", FuncName: "removeUnsynchronization",
		Class:      "DoS via quadratic memmove / unsynchronization rewrite",
		Vulnerable: vuln, Patched: patched,
	}
}

// cveClampDimension is the CVE-2018-9470 analog: the patch changes one
// integer constant (the clamp bound), nothing else.
func cveClampDimension() *CVEPair {
	mk := func(bound int64) *Func {
		return NewFunc("clampBitmapDimension", []string{"n", "a"},
			Set("v", Mul(V("n"), V("a"))),
			When(Lt(V("v"), I(0)), Set("v", I(0))),
			When(Gt(V("v"), I(bound)), Set("v", I(bound))),
			Set("pad", And(V("v"), I(7))),
			When(Ne(V("pad"), I(0)), Set("v", Add(V("v"), Sub(I(8), V("pad"))))),
			Ret(V("v")),
		)
	}
	// The two bounds are chosen so that the window between them contains no
	// value the profiling environments can produce (both are multiples of 8
	// and the window is narrower than the argument granularity), keeping the
	// pair observationally identical under dynamic analysis — this is what
	// makes the one-integer patch the differential engine's blind spot, as
	// in the paper.
	return &CVEPair{
		ID: "CVE-2018-9470", Library: "libhwui", FuncName: "clampBitmapDimension",
		Class: "insufficient clamp bound (single-integer patch)", Minute: true,
		Vulnerable: mk(65000), Patched: mk(62000),
	}
}

func cveParseChunkHeader() *CVEPair {
	vuln := NewFunc("parseChunkHeader", []string{"p", "n"},
		When(Lt(V("n"), I(8)), Ret(I(-1))),
		// length field from header bytes 0..3 (little endian)
		Set("len", Or(Or(Ld(V("p"), I(0)), Shl(Ld(V("p"), I(1)), I(8))),
			Or(Shl(Ld(V("p"), I(2)), I(16)), Shl(Ld(V("p"), I(3)), I(24))))),
		// copies payload without validating len against n
		Do(Call("memmove", Add(V("p"), I(4096)), Add(V("p"), I(8)), V("len"))),
		Ret(V("len")),
	)
	patched := NewFunc("parseChunkHeader", []string{"p", "n"},
		When(Lt(V("n"), I(8)), Ret(I(-1))),
		Set("len", Or(Or(Ld(V("p"), I(0)), Shl(Ld(V("p"), I(1)), I(8))),
			Or(Shl(Ld(V("p"), I(2)), I(16)), Shl(Ld(V("p"), I(3)), I(24))))),
		When(Gt(V("len"), Sub(V("n"), I(8))), Ret(I(-2))),
		Do(Call("memmove", Add(V("p"), I(4096)), Add(V("p"), I(8)), V("len"))),
		Ret(V("len")),
	)
	return &CVEPair{
		ID: "CVE-2018-9451", Library: "libmkvextractor", FuncName: "parseChunkHeader",
		Class:      "unchecked length field drives memmove",
		Vulnerable: vuln, Patched: patched,
	}
}

func cveDecodeFrameLen() *CVEPair {
	vuln := NewFunc("decodeFrameLen", []string{"p", "n"},
		Set("acc", I(0)),
		Set("i", I(0)),
		// off-by-one: i <= n reads one past the frame
		Loop(Le(V("i"), V("n")),
			Set("acc", Add(Shl(V("acc"), I(7)), And(Ld(V("p"), V("i")), I(0x7f)))),
			Set("i", Add(V("i"), I(1))),
		),
		Ret(V("acc")),
	)
	patched := NewFunc("decodeFrameLen", []string{"p", "n"},
		Set("acc", I(0)),
		Set("i", I(0)),
		Loop(Lt(V("i"), V("n")),
			Set("acc", Add(Shl(V("acc"), I(7)), And(Ld(V("p"), V("i")), I(0x7f)))),
			Set("i", Add(V("i"), I(1))),
		),
		Ret(V("acc")),
	)
	return &CVEPair{
		ID: "CVE-2018-9340", Library: "libaudioflinger", FuncName: "decodeFrameLen",
		Class:      "off-by-one read past frame end",
		Vulnerable: withPreamble(preambleP(8), vuln),
		Patched:    withPreamble(preambleP(8), patched),
	}
}

func cveScaleSampleRate() *CVEPair {
	vuln := NewFunc("scaleSampleRate", []string{"n", "a", "b"},
		Set("num", Mul(V("n"), V("a"))),
		// divides by caller-controlled b without a zero check
		Set("q", Div(V("num"), V("b"))),
		When(Gt(V("q"), I(192000)), Set("q", I(192000))),
		Ret(V("q")),
	)
	patched := NewFunc("scaleSampleRate", []string{"n", "a", "b"},
		When(Eq(V("b"), I(0)), Ret(I(0))),
		Set("num", Mul(V("n"), V("a"))),
		Set("q", Div(V("num"), V("b"))),
		When(Gt(V("q"), I(192000)), Set("q", I(192000))),
		Ret(V("q")),
	)
	return &CVEPair{
		ID: "CVE-2017-13232", Library: "libaudioflinger", FuncName: "scaleSampleRate",
		Class:      "division by zero",
		Vulnerable: withPreamble(preambleS("a"), vuln),
		Patched:    withPreamble(preambleS("a"), patched),
	}
}

func cveUnpackEntries() *CVEPair {
	vuln := NewFunc("unpackEntries", []string{"p", "n", "a"},
		// 32-bit overflow in total size computation bypasses the check
		Set("total", And(Mul(V("a"), I(12)), I(0xffffffff))),
		When(Gt(V("total"), V("n")), Ret(I(-1))),
		Set("i", I(0)),
		Set("sum", I(0)),
		Loop(Lt(V("i"), V("a")),
			Set("sum", Add(V("sum"), Ld(V("p"), Mul(V("i"), I(12))))),
			Set("i", Add(V("i"), I(1))),
		),
		Ret(V("sum")),
	)
	patched := NewFunc("unpackEntries", []string{"p", "n", "a"},
		When(Lt(V("a"), I(0)), Ret(I(-1))),
		When(Gt(V("a"), Div(V("n"), I(12))), Ret(I(-1))),
		Set("i", I(0)),
		Set("sum", I(0)),
		Loop(Lt(V("i"), V("a")),
			Set("sum", Add(V("sum"), Ld(V("p"), Mul(V("i"), I(12))))),
			Set("i", Add(V("i"), I(1))),
		),
		Ret(V("sum")),
	)
	return &CVEPair{
		ID: "CVE-2018-9345", Library: "libdrmframework", FuncName: "unpackEntries",
		Class:      "integer overflow bypasses size check",
		Vulnerable: vuln, Patched: patched,
	}
}

func cveReadTagValue() *CVEPair {
	vuln := NewFunc("readTagValue", []string{"p", "a"},
		// missing null check: dereferences p unconditionally
		Set("t", Ld(V("p"), I(0))),
		When(Eq(V("t"), V("a")), Ret(Ld(V("p"), I(1)))),
		Ret(I(0)),
	)
	patched := NewFunc("readTagValue", []string{"p", "a"},
		When(Eq(V("p"), I(0)), Ret(I(-1))),
		Set("t", Ld(V("p"), I(0))),
		When(Eq(V("t"), V("a")), Ret(Ld(V("p"), I(1)))),
		Ret(I(0)),
	)
	return &CVEPair{
		ID: "CVE-2018-9420", Library: "libexifparser", FuncName: "readTagValue",
		Class:      "missing NULL-pointer check",
		Vulnerable: withPreamble(preambleS("a"), vuln),
		Patched:    withPreamble(preambleS("a"), patched),
	}
}

func cveCopyTrackName() *CVEPair {
	vuln := NewFunc("copyTrackName", []string{"p", "n"},
		Set("len", Call("strlen", V("p"))),
		// copies into a 256-byte field without clamping
		Do(Call("memmove", Add(V("p"), I(8192)), V("p"), V("len"))),
		Ret(V("len")),
	)
	patched := NewFunc("copyTrackName", []string{"p", "n"},
		Set("len", Call("strlen", V("p"))),
		When(Gt(V("len"), I(255)), Set("len", I(255))),
		Do(Call("memmove", Add(V("p"), I(8192)), V("p"), V("len"))),
		St(V("p"), Add(I(8192), V("len")), I(0)),
		Ret(V("len")),
	)
	return &CVEPair{
		ID: "CVE-2017-13210", Library: "libmkvextractor", FuncName: "copyTrackName",
		Class:      "unbounded string copy into fixed field",
		Vulnerable: vuln, Patched: patched,
	}
}

func cveSeekToCluster() *CVEPair {
	vuln := NewFunc("seekToCluster", []string{"p", "n", "a"},
		Set("i", I(0)),
		Set("hops", I(0)),
		Loop(Lt(V("i"), V("n")),
			Set("step", Ld(V("p"), V("i"))),
			// zero step makes no progress: infinite loop (DoS)
			Set("i", Add(V("i"), V("step"))),
			Set("hops", Add(V("hops"), I(1))),
			When(Ge(V("hops"), V("a")), Ret(V("i"))),
		),
		Ret(V("hops")),
	)
	patched := NewFunc("seekToCluster", []string{"p", "n", "a"},
		Set("i", I(0)),
		Set("hops", I(0)),
		Loop(Lt(V("i"), V("n")),
			Set("step", Ld(V("p"), V("i"))),
			When(Eq(V("step"), I(0)), Ret(I(-1))),
			Set("i", Add(V("i"), V("step"))),
			Set("hops", Add(V("hops"), I(1))),
			When(Ge(V("hops"), V("a")), Ret(V("i"))),
		),
		Ret(V("hops")),
	)
	return &CVEPair{
		ID: "CVE-2017-13209", Library: "libmkvextractor", FuncName: "seekToCluster",
		Class:      "infinite loop on zero-progress step",
		Vulnerable: vuln, Patched: patched,
	}
}

func cveValidateRange() *CVEPair {
	vuln := NewFunc("validateRange", []string{"p", "n", "a"},
		// signed confusion: negative a passes the upper-bound-only check
		When(Ge(V("a"), V("n")), Ret(I(-1))),
		Ret(Ld(V("p"), V("a"))),
	)
	patched := NewFunc("validateRange", []string{"p", "n", "a"},
		When(Lt(V("a"), I(0)), Ret(I(-1))),
		When(Ge(V("a"), V("n")), Ret(I(-1))),
		Ret(Ld(V("p"), V("a"))),
	)
	return &CVEPair{
		ID: "CVE-2018-9411", Library: "libmediaplayer", FuncName: "validateRange",
		Class:      "signed/unsigned confusion in bounds check",
		Vulnerable: withPreamble(preambleP(12), vuln),
		Patched:    withPreamble(preambleP(12), patched),
	}
}

func cveMergeCuePoints() *CVEPair {
	vuln := NewFunc("mergeCuePoints", []string{"p", "n", "a", "b"},
		Set("idx", Add(V("a"), V("b"))),
		// unchecked combined index
		St(V("p"), V("idx"), I(0x7e)),
		Set("s", Add(Ld(V("p"), V("a")), Ld(V("p"), V("b")))),
		Ret(V("s")),
	)
	patched := NewFunc("mergeCuePoints", []string{"p", "n", "a", "b"},
		Set("idx", Add(V("a"), V("b"))),
		When(Or(Lt(V("idx"), I(0)), Ge(V("idx"), V("n"))), Ret(I(-1))),
		When(Or(Lt(V("a"), I(0)), Ge(V("a"), V("n"))), Ret(I(-1))),
		When(Or(Lt(V("b"), I(0)), Ge(V("b"), V("n"))), Ret(I(-1))),
		St(V("p"), V("idx"), I(0x7e)),
		Set("s", Add(Ld(V("p"), V("a")), Ld(V("p"), V("b")))),
		Ret(V("s")),
	)
	return &CVEPair{
		ID: "CVE-2017-13252", Library: "libmkvextractor", FuncName: "mergeCuePoints",
		Class:      "unchecked combined index",
		Vulnerable: withPreamble(preambleP(12), vuln),
		Patched:    withPreamble(preambleP(12), patched),
	}
}

func cveParseSynchsafe() *CVEPair {
	vuln := NewFunc("parseSynchsafe", []string{"p", "n"},
		When(Lt(V("n"), I(4)), Ret(I(-1))),
		// accepts bytes with the high bit set, yielding oversized values
		Set("v", Or(Or(Shl(Ld(V("p"), I(0)), I(21)), Shl(Ld(V("p"), I(1)), I(14))),
			Or(Shl(Ld(V("p"), I(2)), I(7)), Ld(V("p"), I(3))))),
		Ret(V("v")),
	)
	patched := NewFunc("parseSynchsafe", []string{"p", "n"},
		When(Lt(V("n"), I(4)), Ret(I(-1))),
		Set("i", I(0)),
		Loop(Lt(V("i"), I(4)),
			When(Ge(Ld(V("p"), V("i")), I(0x80)), Ret(I(-2))),
			Set("i", Add(V("i"), I(1))),
		),
		Set("v", Or(Or(Shl(Ld(V("p"), I(0)), I(21)), Shl(Ld(V("p"), I(1)), I(14))),
			Or(Shl(Ld(V("p"), I(2)), I(7)), Ld(V("p"), I(3))))),
		Ret(V("v")),
	)
	return &CVEPair{
		ID: "CVE-2017-13253", Library: "libstagefright", FuncName: "parseSynchsafe",
		Class:      "missing synchsafe-byte validation",
		Vulnerable: withPreamble(preambleP(8), vuln),
		Patched:    withPreamble(preambleP(8), patched),
	}
}

func cveUpdateHistogram() *CVEPair {
	vuln := NewFunc("updateHistogram", []string{"p", "n", "a"},
		// bucket index taken from input without masking
		Set("i", I(0)),
		Loop(Lt(V("i"), Call("min", V("n"), I(64))),
			Set("bkt", Add(Ld(V("p"), V("i")), V("a"))),
			St(V("p"), Add(I(16384), V("bkt")), Add(Ld(V("p"), Add(I(16384), V("bkt"))), I(1))),
			Set("i", Add(V("i"), I(1))),
		),
		Ret(V("i")),
	)
	patched := NewFunc("updateHistogram", []string{"p", "n", "a"},
		Set("i", I(0)),
		Loop(Lt(V("i"), Call("min", V("n"), I(64))),
			Set("bkt", And(Add(Ld(V("p"), V("i")), V("a")), I(255))),
			St(V("p"), Add(I(16384), V("bkt")), Add(Ld(V("p"), Add(I(16384), V("bkt"))), I(1))),
			Set("i", Add(V("i"), I(1))),
		),
		Ret(V("i")),
	)
	return &CVEPair{
		ID: "CVE-2018-9499", Library: "libhwui", FuncName: "updateHistogram",
		Class:      "attacker-controlled array index",
		Vulnerable: vuln, Patched: patched,
	}
}

func cveDecodeVarint() *CVEPair {
	vuln := NewFunc("decodeVarint", []string{"p", "n"},
		Set("v", I(0)),
		Set("i", I(0)),
		// reads continuation bytes without honoring n
		Loop(Lt(V("i"), I(10)),
			Set("byte", Ld(V("p"), V("i"))),
			Set("v", Or(V("v"), Shl(And(V("byte"), I(0x7f)), Mul(V("i"), I(7))))),
			When(Lt(V("byte"), I(0x80)), Ret(V("v"))),
			Set("i", Add(V("i"), I(1))),
		),
		Ret(I(-1)),
	)
	patched := NewFunc("decodeVarint", []string{"p", "n"},
		Set("v", I(0)),
		Set("i", I(0)),
		Loop(And(Lt(V("i"), I(10)), Lt(V("i"), V("n"))),
			Set("byte", Ld(V("p"), V("i"))),
			Set("v", Or(V("v"), Shl(And(V("byte"), I(0x7f)), Mul(V("i"), I(7))))),
			When(Lt(V("byte"), I(0x80)), Ret(V("v"))),
			Set("i", Add(V("i"), I(1))),
		),
		Ret(I(-1)),
	)
	return &CVEPair{
		ID: "CVE-2018-9424", Library: "libdrmframework", FuncName: "decodeVarint",
		Class:      "varint decode ignores buffer length",
		Vulnerable: vuln, Patched: patched,
	}
}

func cveFillPadding() *CVEPair {
	vuln := NewFunc("fillPadding", []string{"p", "n", "a"},
		// memset length is attacker-controlled
		Do(Call("memset", Add(V("p"), V("n")), I(0), V("a"))),
		Ret(V("a")),
	)
	patched := NewFunc("fillPadding", []string{"p", "n", "a"},
		When(Lt(V("a"), I(0)), Ret(I(-1))),
		Set("len", Call("min", V("a"), I(512))),
		Do(Call("memset", Add(V("p"), V("n")), I(0), V("len"))),
		Ret(V("len")),
	)
	return &CVEPair{
		ID: "CVE-2018-9491", Library: "libaudioflinger", FuncName: "fillPadding",
		Class:      "unbounded memset length",
		Vulnerable: vuln, Patched: patched,
	}
}

func cveStripTrailing() *CVEPair {
	vuln := NewFunc("stripTrailing", []string{"p", "n"},
		// n can underflow past zero into negative offsets
		Loop(Eq(Ld(V("p"), Sub(V("n"), I(1))), I(0)),
			Set("n", Sub(V("n"), I(1))),
		),
		Ret(V("n")),
	)
	patched := NewFunc("stripTrailing", []string{"p", "n"},
		Loop(Gt(V("n"), I(0)),
			When(Ne(Ld(V("p"), Sub(V("n"), I(1))), I(0)), &Break{}),
			Set("n", Sub(V("n"), I(1))),
		),
		Ret(V("n")),
	)
	return &CVEPair{
		ID: "CVE-2017-13278", Library: "libutils", FuncName: "stripTrailing",
		Class:      "length underflow while trimming",
		Vulnerable: withPreamble(preambleP(8), vuln),
		Patched:    withPreamble(preambleP(8), patched),
	}
}

func cveSumTable() *CVEPair {
	vuln := NewFunc("sumTable", []string{"p", "n", "a"},
		Set("s", I(0)),
		Set("i", I(0)),
		Loop(Lt(V("i"), V("a")),
			// scaled index is never validated against n
			Set("s", Add(V("s"), LdW(V("p"), V("i")))),
			Set("i", Add(V("i"), I(1))),
		),
		Ret(V("s")),
	)
	patched := NewFunc("sumTable", []string{"p", "n", "a"},
		Set("s", I(0)),
		Set("lim", Call("min", V("a"), Div(V("n"), I(8)))),
		Set("i", I(0)),
		Loop(Lt(V("i"), V("lim")),
			Set("s", Add(V("s"), LdW(V("p"), V("i")))),
			Set("i", Add(V("i"), I(1))),
		),
		Ret(V("s")),
	)
	return &CVEPair{
		ID: "CVE-2018-9410", Library: "libutils", FuncName: "sumTable",
		Class:      "unchecked scaled table index",
		Vulnerable: vuln, Patched: patched,
	}
}

func cveResampleCount() *CVEPair {
	vuln := NewFunc("resampleCount", []string{"p", "n", "a"},
		Set("cnt", Shr(Mul(V("n"), V("a")), I(8))),
		Set("i", I(0)),
		Set("s", I(0)),
		Loop(Lt(V("i"), V("cnt")),
			Set("s", Add(V("s"), Ld(V("p"), V("i")))),
			Set("i", Add(V("i"), I(1))),
		),
		Ret(V("s")),
	)
	patched := NewFunc("resampleCount", []string{"p", "n", "a"},
		Set("cnt", Shr(Mul(V("n"), V("a")), I(8))),
		Set("cnt", Call("min", V("cnt"), V("n"))),
		When(Lt(V("cnt"), I(0)), Ret(I(-1))),
		Set("i", I(0)),
		Set("s", I(0)),
		Loop(Lt(V("i"), V("cnt")),
			Set("s", Add(V("s"), Ld(V("p"), V("i")))),
			Set("i", Add(V("i"), I(1))),
		),
		Ret(V("s")),
	)
	return &CVEPair{
		ID: "CVE-2017-13208", Library: "libaudioflinger", FuncName: "resampleCount",
		Class:      "unclamped resample count",
		Vulnerable: vuln, Patched: patched,
	}
}

func cveParseAtomDepth() *CVEPair {
	vuln := NewFunc("parseAtomDepth", []string{"p", "n"},
		When(Le(V("n"), I(0)), Ret(I(0))),
		Set("kind", Ld(V("p"), I(0))),
		// recursion depth driven entirely by input bytes: stack exhaustion
		When(Eq(And(V("kind"), I(3)), I(1)),
			Ret(Add(I(1), Call("parseAtomDepth", Add(V("p"), I(1)), Sub(V("n"), I(1)))))),
		Ret(I(1)),
	)
	patched := NewFunc("parseAtomDepth", []string{"p", "n"},
		When(Le(V("n"), I(0)), Ret(I(0))),
		When(Gt(V("n"), I(32)), Set("n", I(32))), // depth cap
		Set("kind", Ld(V("p"), I(0))),
		When(Eq(And(V("kind"), I(3)), I(1)),
			Ret(Add(I(1), Call("parseAtomDepth", Add(V("p"), I(1)), Sub(V("n"), I(1)))))),
		Ret(I(1)),
	)
	return &CVEPair{
		ID: "CVE-2018-9498", Library: "libmediaplayer", FuncName: "parseAtomDepth",
		Class:      "unbounded recursion depth",
		Vulnerable: vuln, Patched: patched,
	}
}

func cveCheckMagic() *CVEPair {
	vuln := NewFunc("checkMagic", []string{"p", "n"},
		// compares 8 bytes even when fewer are available (info leak)
		Set("r", Call("memcmp", V("p"), S("MKVSEG01"), I(8))),
		Ret(Eq(V("r"), I(0))),
	)
	patched := NewFunc("checkMagic", []string{"p", "n"},
		When(Lt(V("n"), I(8)), Ret(I(0))),
		Set("r", Call("memcmp", V("p"), S("MKVSEG01"), I(8))),
		Ret(Eq(V("r"), I(0))),
	)
	return &CVEPair{
		ID: "CVE-2017-13279", Library: "libmkvextractor", FuncName: "checkMagic",
		Class:      "read past declared length (info leak)",
		Vulnerable: withPreamble(preambleP(8), vuln),
		Patched:    withPreamble(preambleP(8), patched),
	}
}

func cveExpandRLE() *CVEPair {
	vuln := NewFunc("expandRLE", []string{"p", "n"},
		Set("out", I(0)),
		Set("i", I(0)),
		Loop(Lt(Add(V("i"), I(1)), V("n")),
			Set("run", Ld(V("p"), V("i"))),
			Set("val", Ld(V("p"), Add(V("i"), I(1)))),
			Set("j", I(0)),
			// output offset grows without any cap
			Loop(Lt(V("j"), V("run")),
				St(V("p"), Add(I(32768), Add(V("out"), V("j"))), V("val")),
				Set("j", Add(V("j"), I(1))),
			),
			Set("out", Add(V("out"), V("run"))),
			Set("i", Add(V("i"), I(2))),
		),
		Ret(V("out")),
	)
	patched := NewFunc("expandRLE", []string{"p", "n"},
		Set("out", I(0)),
		Set("i", I(0)),
		Loop(Lt(Add(V("i"), I(1)), V("n")),
			Set("run", Ld(V("p"), V("i"))),
			Set("val", Ld(V("p"), Add(V("i"), I(1)))),
			When(Gt(Add(V("out"), V("run")), I(4096)), Ret(I(-1))),
			Set("j", I(0)),
			Loop(Lt(V("j"), V("run")),
				St(V("p"), Add(I(32768), Add(V("out"), V("j"))), V("val")),
				Set("j", Add(V("j"), I(1))),
			),
			Set("out", Add(V("out"), V("run"))),
			Set("i", Add(V("i"), I(2))),
		),
		Ret(V("out")),
	)
	return &CVEPair{
		ID: "CVE-2018-9440", Library: "libhwui", FuncName: "expandRLE",
		Class:      "RLE expansion without output bound",
		Vulnerable: vuln, Patched: patched,
	}
}

func cveMixKeyDigest() *CVEPair {
	vuln := NewFunc("mixKeyDigest", []string{"p", "n"},
		// digests only the first 4 bytes regardless of n (weak digest)
		Set("h", Call("checksum", V("p"), Call("min", V("n"), I(4)))),
		Set("h", Xor(V("h"), Shr(V("h"), I(17)))),
		Ret(V("h")),
	)
	patched := NewFunc("mixKeyDigest", []string{"p", "n"},
		Set("h", Call("checksum", V("p"), V("n"))),
		Set("h", Xor(V("h"), Shr(V("h"), I(17)))),
		Set("h", Mul(V("h"), I(0x5bd1e995))),
		Set("h", Xor(V("h"), Shr(V("h"), I(13)))),
		Ret(V("h")),
	)
	return &CVEPair{
		ID: "CVE-2018-9427", Library: "libkeystore", FuncName: "mixKeyDigest",
		Class:      "key digest covers only a prefix",
		Vulnerable: vuln, Patched: patched,
	}
}

func cveAlignOffset() *CVEPair {
	vuln := NewFunc("alignOffset", []string{"a", "b"},
		// alignment divisor from input, no zero check
		Set("q", Div(Sub(Add(V("a"), V("b")), I(1)), V("b"))),
		Ret(Mul(V("q"), V("b"))),
	)
	patched := NewFunc("alignOffset", []string{"a", "b"},
		When(Le(V("b"), I(0)), Ret(V("a"))),
		Set("q", Div(Sub(Add(V("a"), V("b")), I(1)), V("b"))),
		Ret(Mul(V("q"), V("b"))),
	)
	return &CVEPair{
		ID: "CVE-2017-13178", Library: "libutils", FuncName: "alignOffset",
		Class:      "division by zero in alignment helper",
		Vulnerable: withPreamble(preambleS("a"), vuln),
		Patched:    withPreamble(preambleS("a"), patched),
	}
}

func cveTruncateList() *CVEPair {
	vuln := NewFunc("truncateList", []string{"p", "n", "a"},
		// writes the terminator at an unchecked index
		St(V("p"), V("a"), I(0)),
		Ret(V("a")),
	)
	patched := NewFunc("truncateList", []string{"p", "n", "a"},
		When(Or(Lt(V("a"), I(0)), Ge(V("a"), V("n"))), Ret(I(-1))),
		St(V("p"), V("a"), I(0)),
		Ret(V("a")),
	)
	return &CVEPair{
		ID: "CVE-2017-13180", Library: "libmediaplayer", FuncName: "truncateList",
		Class:      "unchecked terminator index",
		Vulnerable: withPreamble(preambleP(12), vuln),
		Patched:    withPreamble(preambleP(12), patched),
	}
}

func cveSwapEndian() *CVEPair {
	vuln := NewFunc("swapEndian", []string{"p", "n"},
		Set("i", I(0)),
		// odd n reads/writes one byte past the logical end
		Loop(Lt(V("i"), V("n")),
			Set("x", Ld(V("p"), V("i"))),
			St(V("p"), V("i"), Ld(V("p"), Add(V("i"), I(1)))),
			St(V("p"), Add(V("i"), I(1)), V("x")),
			Set("i", Add(V("i"), I(2))),
		),
		Ret(V("i")),
	)
	patched := NewFunc("swapEndian", []string{"p", "n"},
		Set("i", I(0)),
		Loop(Lt(Add(V("i"), I(1)), V("n")),
			Set("x", Ld(V("p"), V("i"))),
			St(V("p"), V("i"), Ld(V("p"), Add(V("i"), I(1)))),
			St(V("p"), Add(V("i"), I(1)), V("x")),
			Set("i", Add(V("i"), I(2))),
		),
		Ret(V("i")),
	)
	return &CVEPair{
		ID: "CVE-2017-13182", Library: "libhwui", FuncName: "swapEndian",
		Class:      "odd-length endian swap past end",
		Vulnerable: vuln, Patched: patched,
	}
}
