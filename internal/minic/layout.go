package minic

// Read-only data layout shared by the interpreter and the compiled-image
// loader, so that string-literal addresses are observationally identical in
// both executions.
const (
	// RodataBase is where a module's interned string table is mapped.
	RodataBase = DataBase + DataSize
	// RodataSize bounds the string table region.
	RodataSize = 1 << 16
)

// InternStrings lays out the module's string literals: it walks every
// function in order, appending each distinct literal (NUL-terminated) to a
// table, and returns the table bytes plus a map from literal to its address
// (RodataBase-relative addresses are returned as absolute).
//
// The compiler and the interpreter both use this exact function, which is
// what guarantees identical pointer values for string literals.
func InternStrings(m *Module) ([]byte, map[string]int64) {
	addrs := make(map[string]int64)
	var table []byte
	for _, f := range m.Funcs {
		for _, s := range f.Strings() {
			if _, ok := addrs[s]; ok {
				continue
			}
			addrs[s] = RodataBase + int64(len(table))
			table = append(table, s...)
			table = append(table, 0)
		}
	}
	return table, addrs
}
