package minic

import (
	"errors"
	"fmt"
)

// TrapKind classifies abnormal termination of a function execution. The
// dynamic analysis engine uses traps to discard candidate functions that
// crash under a given execution environment (the paper removes candidates
// that "trigger a system exception").
type TrapKind int

// Trap kinds.
const (
	TrapOOB TrapKind = iota + 1 // memory access outside a mapped region
	TrapDivZero
	TrapBadCall   // call to an unknown function or with wrong arity
	TrapStepLimit // execution exceeded its instruction budget ("infinite loop")
	TrapStack     // machine stack overflow/underflow (emulator only)
	TrapDecode    // undecodable instruction (emulator only)
	TrapBudget    // wall-clock watchdog budget exceeded (emulator only)
)

func (k TrapKind) String() string {
	switch k {
	case TrapOOB:
		return "out-of-bounds access"
	case TrapDivZero:
		return "division by zero"
	case TrapBadCall:
		return "bad call"
	case TrapStepLimit:
		return "step limit exceeded"
	case TrapStack:
		return "stack fault"
	case TrapDecode:
		return "decode fault"
	case TrapBudget:
		return "wall-clock budget exceeded"
	default:
		return fmt.Sprintf("trap(%d)", int(k))
	}
}

// TrapError is returned by the interpreter and emulator on abnormal
// termination. Callers match it with errors.As.
type TrapError struct {
	Kind TrapKind
	Addr int64 // faulting address for TrapOOB, otherwise 0
	Msg  string
}

func (e *TrapError) Error() string {
	if e.Msg != "" {
		return fmt.Sprintf("trap: %s: %s", e.Kind, e.Msg)
	}
	if e.Kind == TrapOOB {
		return fmt.Sprintf("trap: %s at %#x", e.Kind, e.Addr)
	}
	return "trap: " + e.Kind.String()
}

// IsTrap reports whether err is a TrapError, returning it if so.
func IsTrap(err error) (*TrapError, bool) {
	var t *TrapError
	if errors.As(err, &t) {
		return t, true
	}
	return nil, false
}

// Memory is the byte-addressed memory abstraction shared by the interpreter,
// the emulator and the builtin library implementations. Implementations
// return a *TrapError with TrapOOB for unmapped addresses.
type Memory interface {
	LoadByte(addr int64) (byte, error)
	StoreByte(addr int64, v byte) error
}

// LoadWord reads a little-endian 64-bit word through m.
func LoadWord(m Memory, addr int64) (int64, error) {
	var v uint64
	for i := int64(0); i < 8; i++ {
		b, err := m.LoadByte(addr + i)
		if err != nil {
			return 0, err
		}
		v |= uint64(b) << (8 * uint(i))
	}
	return int64(v), nil
}

// StoreWord writes v little-endian through m.
func StoreWord(m Memory, addr int64, v int64) error {
	u := uint64(v)
	for i := int64(0); i < 8; i++ {
		if err := m.StoreByte(addr+i, byte(u>>(8*uint(i)))); err != nil {
			return err
		}
	}
	return nil
}

// BuiltinKind distinguishes ordinary library functions from system calls;
// the dynamic feature extractor counts the two separately (Table II features
// 20 and 21).
type BuiltinKind int

// Builtin kinds.
const (
	KindLib BuiltinKind = iota + 1
	KindSys
)

// BuiltinState carries the mutable runtime state shared by builtins: the
// heap bump pointer and the deterministic time counter. The interpreter and
// the emulator each own one per execution, initialized identically, so that
// malloc returns the same addresses in both.
type BuiltinState struct {
	HeapNext int64
	Ticks    int64
}

// NewBuiltinState returns the canonical initial builtin state.
func NewBuiltinState() *BuiltinState {
	return &BuiltinState{HeapNext: HeapBase}
}

// Builtin describes one library/system function available to source code.
type Builtin struct {
	Name  string
	NArgs int
	Kind  BuiltinKind
	// Index is the stable import-table slot used by the compiler and
	// emulator. It doubles as the "which library function" identity used
	// by the differential engine's semantic signature.
	Index int
	// Mem marks builtins whose implementation reads or writes data memory
	// through the Memory interface. Callers of such builtins can observe
	// memory content without any load/store of their own, which matters to
	// anything reasoning about memory dependence from the instruction
	// stream (the content-address normalizer in internal/cas).
	Mem bool
	Fn  func(m Memory, st *BuiltinState, args []int64) (int64, error)
}

// builtinList fixes the stable ordering of the import table.
var builtinList = []*Builtin{
	{Name: "memmove", NArgs: 3, Kind: KindLib, Mem: true, Fn: bMemmove},
	{Name: "memset", NArgs: 3, Kind: KindLib, Mem: true, Fn: bMemset},
	{Name: "memcmp", NArgs: 3, Kind: KindLib, Mem: true, Fn: bMemcmp},
	{Name: "strlen", NArgs: 1, Kind: KindLib, Mem: true, Fn: bStrlen},
	{Name: "checksum", NArgs: 2, Kind: KindLib, Mem: true, Fn: bChecksum},
	{Name: "abs", NArgs: 1, Kind: KindLib, Fn: bAbs},
	{Name: "min", NArgs: 2, Kind: KindLib, Fn: bMin},
	{Name: "max", NArgs: 2, Kind: KindLib, Fn: bMax},
	{Name: "malloc", NArgs: 1, Kind: KindLib, Fn: bMalloc},
	{Name: "free", NArgs: 1, Kind: KindLib, Fn: bFree},
	{Name: "write_log", NArgs: 1, Kind: KindSys, Fn: bWriteLog},
	{Name: "read_time", NArgs: 0, Kind: KindSys, Fn: bReadTime},
	{Name: "sys_rand", NArgs: 1, Kind: KindSys, Fn: bSysRand},
}

// Builtins maps builtin name to its descriptor.
var Builtins = buildBuiltins()

func buildBuiltins() map[string]*Builtin {
	m := make(map[string]*Builtin, len(builtinList))
	for i, b := range builtinList {
		b.Index = i
		m[b.Name] = b
	}
	return m
}

// BuiltinByIndex returns the builtin occupying the given import-table slot.
func BuiltinByIndex(i int) (*Builtin, bool) {
	if i < 0 || i >= len(builtinList) {
		return nil, false
	}
	return builtinList[i], true
}

// NumBuiltins is the size of the import table.
func NumBuiltins() int { return len(builtinList) }

func bMemmove(m Memory, _ *BuiltinState, args []int64) (int64, error) {
	dst, src, n := args[0], args[1], args[2]
	if n <= 0 {
		return dst, nil
	}
	if dst < src {
		for i := int64(0); i < n; i++ {
			b, err := m.LoadByte(src + i)
			if err != nil {
				return 0, err
			}
			if err := m.StoreByte(dst+i, b); err != nil {
				return 0, err
			}
		}
		return dst, nil
	}
	for i := n - 1; i >= 0; i-- {
		b, err := m.LoadByte(src + i)
		if err != nil {
			return 0, err
		}
		if err := m.StoreByte(dst+i, b); err != nil {
			return 0, err
		}
	}
	return dst, nil
}

func bMemset(m Memory, _ *BuiltinState, args []int64) (int64, error) {
	p, v, n := args[0], byte(args[1]), args[2]
	for i := int64(0); i < n; i++ {
		if err := m.StoreByte(p+i, v); err != nil {
			return 0, err
		}
	}
	return p, nil
}

func bMemcmp(m Memory, _ *BuiltinState, args []int64) (int64, error) {
	a, b, n := args[0], args[1], args[2]
	for i := int64(0); i < n; i++ {
		x, err := m.LoadByte(a + i)
		if err != nil {
			return 0, err
		}
		y, err := m.LoadByte(b + i)
		if err != nil {
			return 0, err
		}
		if x != y {
			if x < y {
				return -1, nil
			}
			return 1, nil
		}
	}
	return 0, nil
}

// strlenMax bounds strlen scans so a missing terminator traps on the region
// boundary rather than scanning forever.
const strlenMax = DataSize

func bStrlen(m Memory, _ *BuiltinState, args []int64) (int64, error) {
	p := args[0]
	for i := int64(0); i < strlenMax; i++ {
		b, err := m.LoadByte(p + i)
		if err != nil {
			return 0, err
		}
		if b == 0 {
			return i, nil
		}
	}
	return strlenMax, nil
}

func bChecksum(m Memory, _ *BuiltinState, args []int64) (int64, error) {
	p, n := args[0], args[1]
	var sum uint64
	for i := int64(0); i < n; i++ {
		b, err := m.LoadByte(p + i)
		if err != nil {
			return 0, err
		}
		sum = sum*131 + uint64(b)
	}
	return int64(sum), nil
}

func bAbs(_ Memory, _ *BuiltinState, args []int64) (int64, error) {
	if args[0] < 0 {
		return -args[0], nil
	}
	return args[0], nil
}

func bMin(_ Memory, _ *BuiltinState, args []int64) (int64, error) {
	if args[0] < args[1] {
		return args[0], nil
	}
	return args[1], nil
}

func bMax(_ Memory, _ *BuiltinState, args []int64) (int64, error) {
	if args[0] > args[1] {
		return args[0], nil
	}
	return args[1], nil
}

func bMalloc(_ Memory, st *BuiltinState, args []int64) (int64, error) {
	n := args[0]
	if n <= 0 {
		n = 1
	}
	// Round to 16 bytes, like a typical allocator.
	n = (n + 15) &^ 15
	if st.HeapNext+n > HeapBase+HeapSize {
		return 0, nil // OOM reported as NULL, as in C
	}
	p := st.HeapNext
	st.HeapNext += n
	return p, nil
}

func bFree(_ Memory, _ *BuiltinState, _ []int64) (int64, error) {
	return 0, nil // bump allocator: free is a no-op
}

func bWriteLog(_ Memory, _ *BuiltinState, args []int64) (int64, error) {
	return args[0], nil
}

func bReadTime(_ Memory, st *BuiltinState, _ []int64) (int64, error) {
	st.Ticks++
	return st.Ticks, nil
}

func bSysRand(_ Memory, st *BuiltinState, args []int64) (int64, error) {
	// Deterministic xorshift seeded by the tick counter and the argument,
	// so executions are reproducible across interpreter and emulator.
	st.Ticks++
	x := uint64(st.Ticks)*0x9e3779b97f4a7c15 ^ uint64(args[0])
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return int64(x), nil
}
