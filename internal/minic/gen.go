package minic

import (
	"fmt"
	"math/rand"
)

// The library generator synthesizes the source corpus that stands in for the
// paper's 100 Android libraries. Functions are generated deterministically
// from a seed, terminate on every input (all loops are bounded), and are
// defensive by default (memory offsets are masked into the data region) so
// that the dynamic stage's candidate-validation step keeps a realistic
// fraction of them alive. A configurable fraction is generated fragile
// (unmasked indexing) to give the validator crashes to prune, as in the
// paper's case study where most candidates are removed by input validation.

// GenConfig configures library generation.
type GenConfig struct {
	Seed     int64
	Name     string
	NumFuncs int
	// FragileFrac is the fraction of functions generated without defensive
	// index masking (they may trap under fuzzed inputs). Default 0.3.
	FragileFrac float64
	// BodyScale multiplies the number of fragments per function body,
	// modelling codebases with systematically larger (or smaller) functions
	// than the default profile. Values <= 1 (including the zero value) leave
	// generation byte-identical to the default profile: the generator draws
	// from the rng in exactly the same order either way.
	BodyScale float64
}

// libgen carries generator state.
type libgen struct {
	rng       *rand.Rand
	mod       *Module
	fragile   bool
	bodyScale float64
	// vars available in the function under construction.
	scalars []string
	ptrs    []string
	tmpN    int
}

var (
	genVerbs = []string{
		"parse", "decode", "update", "sync", "flush", "scale", "convert",
		"read", "write", "init", "reset", "pack", "unpack", "hash",
		"filter", "merge", "split", "encode", "clamp", "seek",
	}
	genNouns = []string{
		"Header", "Frame", "Chunk", "Block", "Index", "Packet", "Sample",
		"Buffer", "Stream", "Table", "Entry", "Segment", "Track", "Atom",
		"Tag", "Record", "Page", "Row", "Cue", "Cluster",
	}
	genTags = []string{
		"ok", "fail", "warn: short read", "eof", "bad magic", "v2",
		"retry", "sync lost", "crc mismatch", "range",
	}
)

// GenLibrary deterministically generates a module with cfg.NumFuncs
// functions named after cfg.Name.
func GenLibrary(cfg GenConfig) *Module {
	if cfg.NumFuncs <= 0 {
		cfg.NumFuncs = 20
	}
	if cfg.FragileFrac == 0 {
		cfg.FragileFrac = 0.3
	}
	g := &libgen{
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		mod:       &Module{Name: cfg.Name},
		bodyScale: cfg.BodyScale,
	}
	names := make(map[string]bool)
	for i := 0; i < cfg.NumFuncs; i++ {
		name := g.funcName(names)
		g.fragile = g.rng.Float64() < cfg.FragileFrac
		g.mod.Funcs = append(g.mod.Funcs, g.genFunc(name))
	}
	return g.mod
}

func (g *libgen) funcName(taken map[string]bool) string {
	for {
		name := genVerbs[g.rng.Intn(len(genVerbs))] + genNouns[g.rng.Intn(len(genNouns))]
		if !taken[name] {
			taken[name] = true
			return name
		}
		// Collision: qualify with a short suffix.
		name = fmt.Sprintf("%s%d", name, g.rng.Intn(100))
		if !taken[name] {
			taken[name] = true
			return name
		}
	}
}

// genFunc builds one function. The parameter convention across the corpus is
// at most four parameters; by convention "p" is a pointer into the data
// region and "n" a length.
func (g *libgen) genFunc(name string) *Func {
	nParams := 1 + g.rng.Intn(4)
	params := []string{"p", "n", "a", "b"}[:nParams]
	g.scalars = []string{}
	g.ptrs = []string{}
	for _, p := range params {
		if p == "p" {
			g.ptrs = append(g.ptrs, p)
		} else {
			g.scalars = append(g.scalars, p)
		}
	}
	g.tmpN = 0

	var body []Stmt
	// Most functions begin with a guard, like real parsers do.
	if g.rng.Float64() < 0.7 && len(g.scalars) > 0 {
		body = append(body, When(
			Le(V(g.scalars[0]), I(0)),
			Ret(I(-int64(1+g.rng.Intn(8)))),
		))
	}
	nFrags := 2 + g.rng.Intn(4)
	if g.bodyScale > 1 {
		nFrags = int(float64(nFrags) * g.bodyScale)
	}
	for i := 0; i < nFrags; i++ {
		body = append(body, g.genFragment()...)
	}
	body = append(body, Ret(g.resultExpr()))
	return NewFunc(name, params, body...)
}

// newTmp introduces a fresh scalar local.
func (g *libgen) newTmp() string {
	g.tmpN++
	name := fmt.Sprintf("t%d", g.tmpN)
	g.scalars = append(g.scalars, name)
	return name
}

// scalar returns a random scalar operand: a variable or a small constant.
func (g *libgen) scalar() Expr {
	if len(g.scalars) > 0 && g.rng.Float64() < 0.65 {
		return V(g.scalars[g.rng.Intn(len(g.scalars))])
	}
	return I(int64(g.rng.Intn(256) - 32))
}

// ptrBase returns a pointer expression into the data region.
func (g *libgen) ptrBase() Expr {
	if len(g.ptrs) > 0 && g.rng.Float64() < 0.8 {
		return V(g.ptrs[g.rng.Intn(len(g.ptrs))])
	}
	return I(DataBase + int64(g.rng.Intn(1024)))
}

// index returns an index expression; defensive functions mask it into a
// small window so every access stays in bounds for any base within the data
// region's first half. Fragile functions not only skip the mask but often
// scale the offset, so hostile-enough inputs push the access outside the
// data region — these are the candidates the dynamic stage's input
// validation prunes, as in the paper's case study (252 candidates -> 38).
func (g *libgen) index(e Expr) Expr {
	if g.fragile {
		if g.rng.Float64() < 0.6 {
			return Mul(e, I(int64(64+g.rng.Intn(2048))))
		}
		return e
	}
	return And(e, I(int64(255+(g.rng.Intn(4)<<8))))
}

// boundedCounter returns (loopVar, limitExpr) guaranteeing termination.
func (g *libgen) boundedLimit() Expr {
	switch g.rng.Intn(3) {
	case 0:
		return I(int64(4 + g.rng.Intn(60)))
	case 1:
		if len(g.scalars) > 0 {
			return Add(And(V(g.scalars[g.rng.Intn(len(g.scalars))]), I(63)), I(1))
		}
		return I(16)
	default:
		return Call("min", g.scalar(), I(int64(8+g.rng.Intn(56))))
	}
}

// arith returns a random pure arithmetic expression over existing scalars.
func (g *libgen) arith(depth int) Expr {
	if depth <= 0 || g.rng.Float64() < 0.35 {
		return g.scalar()
	}
	ops := []BinOp{OpAdd, OpSub, OpMul, OpAnd, OpOr, OpXor, OpShl, OpShr, OpLt, OpGe}
	op := ops[g.rng.Intn(len(ops))]
	l := g.arith(depth - 1)
	r := g.arith(depth - 1)
	if op == OpShl || op == OpShr {
		r = And(r, I(7)) // keep shifts small so values stay interesting
	}
	return B(op, l, r)
}

// genFragment emits one statement pattern.
func (g *libgen) genFragment() []Stmt {
	switch g.rng.Intn(10) {
	case 0:
		return g.fragSumLoop()
	case 1:
		return g.fragCondLadder()
	case 2:
		return g.fragNestedLoop()
	case 3:
		return g.fragBuiltinCall()
	case 4:
		return g.fragIntraCall()
	case 5:
		return g.fragXorFold()
	case 6:
		return g.fragFloat()
	case 7:
		return g.fragWordScan()
	case 8:
		return g.fragTagLog()
	default:
		return g.fragStoreLoop()
	}
}

// fragSumLoop: acc = 0; for i < bound { acc += mem[p + f(i)] }.
func (g *libgen) fragSumLoop() []Stmt {
	acc := g.newTmp()
	i := g.newTmp()
	base := g.ptrBase()
	mulK := I(int64(1 + g.rng.Intn(3)))
	body := Set(acc, Add(V(acc), Mul(Ld(base, g.index(V(i))), mulK)))
	out := []Stmt{Set(acc, I(0))}
	out = append(out, For(i, I(0), g.boundedLimit(), body)...)
	return out
}

// fragCondLadder: a chain of comparisons updating a local.
func (g *libgen) fragCondLadder() []Stmt {
	t := g.newTmp()
	out := []Stmt{Set(t, g.arith(1))}
	n := 2 + g.rng.Intn(3)
	for k := 0; k < n; k++ {
		cmpOps := []BinOp{OpLt, OpGt, OpEq, OpLe, OpNe}
		cond := B(cmpOps[g.rng.Intn(len(cmpOps))], g.scalar(), I(int64(g.rng.Intn(64))))
		if g.rng.Float64() < 0.5 {
			out = append(out, When(cond, Set(t, g.arith(2))))
		} else {
			out = append(out, IfElse(cond,
				[]Stmt{Set(t, Add(V(t), g.scalar()))},
				[]Stmt{Set(t, Xor(V(t), I(int64(g.rng.Intn(255)))))}))
		}
	}
	return out
}

// fragNestedLoop: small doubly-nested loop over a 2D window.
func (g *libgen) fragNestedLoop() []Stmt {
	acc := g.newTmp()
	i := g.newTmp()
	j := g.newTmp()
	base := g.ptrBase()
	inner := For(j, I(0), I(int64(2+g.rng.Intn(6))),
		Set(acc, Add(V(acc), Ld(base, g.index(Add(Mul(V(i), I(8)), V(j)))))),
	)
	out := []Stmt{Set(acc, I(0))}
	out = append(out, For(i, I(0), I(int64(2+g.rng.Intn(8))), inner...)...)
	return out
}

// fragBuiltinCall: call a library builtin with safe arguments.
func (g *libgen) fragBuiltinCall() []Stmt {
	t := g.newTmp()
	base := g.ptrBase()
	switch g.rng.Intn(5) {
	case 0:
		return []Stmt{Set(t, Call("checksum", base, I(int64(8+g.rng.Intn(56)))))}
	case 1:
		return []Stmt{Set(t, Call("abs", Sub(g.scalar(), g.scalar())))}
	case 2:
		return []Stmt{Set(t, Call("max", g.scalar(), Call("min", g.scalar(), I(64))))}
	case 3:
		n := I(int64(4 + g.rng.Intn(28)))
		return []Stmt{
			Do(Call("memset", Add(base, I(512)), And(g.scalar(), I(255)), n)),
			Set(t, Call("memcmp", base, Add(base, I(512)), n)),
		}
	default:
		return []Stmt{Set(t, Call("memmove", Add(base, I(256)), base, I(int64(4+g.rng.Intn(28)))))}
	}
}

// fragIntraCall: call an earlier function in the module (keeps the call
// graph acyclic so termination is preserved).
func (g *libgen) fragIntraCall() []Stmt {
	if len(g.mod.Funcs) == 0 {
		return g.fragCondLadder()
	}
	callee := g.mod.Funcs[g.rng.Intn(len(g.mod.Funcs))]
	args := make([]Expr, len(callee.Params))
	for i, p := range callee.Params {
		if p == "p" {
			args[i] = g.ptrBase()
		} else {
			args[i] = And(g.scalar(), I(63))
		}
	}
	t := g.newTmp()
	return []Stmt{Set(t, Call(callee.Name, args...))}
}

// fragXorFold: fold bytes with xor/rotate-like mixing.
func (g *libgen) fragXorFold() []Stmt {
	h := g.newTmp()
	i := g.newTmp()
	base := g.ptrBase()
	body := Set(h, Xor(Shl(V(h), I(3)), Add(Shr(V(h), I(5)), Ld(base, g.index(V(i))))))
	out := []Stmt{Set(h, I(int64(g.rng.Intn(1024))))}
	out = append(out, For(i, I(0), g.boundedLimit(), body)...)
	return out
}

// fragFloat: a short float computation, giving the corpus arithmetic-FP
// instructions (features 36-40 of Table I and 14 of Table II).
func (g *libgen) fragFloat() []Stmt {
	f := g.newTmp()
	fops := []BinOp{OpFAdd, OpFSub, OpFMul, OpFDiv}
	// 4607182418800017408 is the bit pattern of float64(1.0).
	const one = 4607182418800017408
	e := Expr(I(one))
	n := 1 + g.rng.Intn(3)
	for k := 0; k < n; k++ {
		e = B(fops[g.rng.Intn(len(fops))], e, I(one+int64(g.rng.Intn(1<<20))))
	}
	return []Stmt{Set(f, e)}
}

// fragWordScan: scan 64-bit words.
func (g *libgen) fragWordScan() []Stmt {
	acc := g.newTmp()
	i := g.newTmp()
	base := g.ptrBase()
	idx := Expr(V(i))
	if !g.fragile {
		idx = And(V(i), I(31))
	}
	body := Set(acc, Add(V(acc), LdW(base, idx)))
	out := []Stmt{Set(acc, I(0))}
	out = append(out, For(i, I(0), I(int64(2+g.rng.Intn(14))), body)...)
	return out
}

// fragTagLog: reference a string literal and log its checksum — gives the
// function a string constant (num_string feature) and a syscall.
func (g *libgen) fragTagLog() []Stmt {
	t := g.newTmp()
	tag := genTags[g.rng.Intn(len(genTags))]
	return []Stmt{
		Set(t, Call("strlen", S(tag))),
		Do(Call("write_log", V(t))),
	}
}

// fragStoreLoop: write a computed pattern back to the buffer.
func (g *libgen) fragStoreLoop() []Stmt {
	i := g.newTmp()
	base := g.ptrBase()
	val := Expr(And(Add(Mul(V(i), I(int64(1+g.rng.Intn(7)))), g.scalar()), I(255)))
	body := St(base, g.index(Add(V(i), I(int64(g.rng.Intn(64))))), val)
	return For(i, I(0), g.boundedLimit(), body)
}

// resultExpr combines live scalars into the return value.
func (g *libgen) resultExpr() Expr {
	if len(g.scalars) == 0 {
		return I(0)
	}
	e := Expr(V(g.scalars[len(g.scalars)-1]))
	n := min(3, len(g.scalars))
	for k := 0; k < n; k++ {
		e = Xor(e, V(g.scalars[g.rng.Intn(len(g.scalars))]))
	}
	return e
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
