package minic

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

// run is a test helper executing fname from m under env.
func run(t *testing.T, m *Module, fname string, env *Env) *Result {
	t.Helper()
	res, err := Run(m, fname, env, 0)
	if err != nil {
		t.Fatalf("Run(%s): %v", fname, err)
	}
	return res
}

func TestArithmetic(t *testing.T) {
	tests := []struct {
		name string
		expr Expr
		want int64
	}{
		{"add", Add(I(2), I(3)), 5},
		{"sub", Sub(I(2), I(3)), -1},
		{"mul", Mul(I(-4), I(3)), -12},
		{"div", Div(I(7), I(2)), 3},
		{"div-neg", Div(I(-7), I(2)), -3},
		{"mod", Mod(I(7), I(3)), 1},
		{"and", And(I(0b1100), I(0b1010)), 0b1000},
		{"or", Or(I(0b1100), I(0b1010)), 0b1110},
		{"xor", Xor(I(0b1100), I(0b1010)), 0b0110},
		{"shl", Shl(I(1), I(10)), 1024},
		{"shr-logical", Shr(I(-1), I(60)), 15},
		{"eq-true", Eq(I(4), I(4)), 1},
		{"eq-false", Eq(I(4), I(5)), 0},
		{"lt", Lt(I(-1), I(0)), 1},
		{"ge", Ge(I(3), I(3)), 1},
		{"not-zero", Not(I(0)), 1},
		{"not-nonzero", Not(I(7)), 0},
		{"neg", Neg(I(5)), -5},
		{"shl-mod64", Shl(I(1), I(64)), 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m := &Module{Name: "t", Funcs: []*Func{NewFunc("f", nil, Ret(tt.expr))}}
			res := run(t, m, "f", &Env{})
			if res.Ret != tt.want {
				t.Errorf("got %d, want %d", res.Ret, tt.want)
			}
		})
	}
}

func TestFloatOps(t *testing.T) {
	bits := func(f float64) int64 { return int64(math.Float64bits(f)) }
	m := &Module{Name: "t", Funcs: []*Func{
		NewFunc("f", []string{"a", "b"}, Ret(B(OpFMul, B(OpFAdd, V("a"), V("b")), V("a")))),
	}}
	res := run(t, m, "f", &Env{Args: []int64{bits(2.0), bits(3.0)}})
	if got := math.Float64frombits(uint64(res.Ret)); got != 10.0 {
		t.Errorf("(2+3)*2 = %v, want 10", got)
	}
}

func TestDivByZeroTraps(t *testing.T) {
	m := &Module{Name: "t", Funcs: []*Func{
		NewFunc("f", []string{"a"}, Ret(Div(I(1), V("a")))),
	}}
	_, err := Run(m, "f", &Env{Args: []int64{0}}, 0)
	tr, ok := IsTrap(err)
	if !ok || tr.Kind != TrapDivZero {
		t.Fatalf("want TrapDivZero, got %v", err)
	}
}

func TestOOBTraps(t *testing.T) {
	m := &Module{Name: "t", Funcs: []*Func{
		NewFunc("f", []string{"a"}, Ret(Ld(V("a"), I(0)))),
	}}
	for _, addr := range []int64{0, DataBase - 1, DataBase + DataSize + RodataSize, -5} {
		_, err := Run(m, "f", &Env{Args: []int64{addr}}, 0)
		tr, ok := IsTrap(err)
		if !ok || tr.Kind != TrapOOB {
			t.Fatalf("addr %#x: want TrapOOB, got %v", addr, err)
		}
	}
}

func TestRodataReadOnly(t *testing.T) {
	m := &Module{Name: "t", Funcs: []*Func{
		NewFunc("f", nil, St(S("hi"), I(0), I(1)), Ret(I(0))),
	}}
	_, err := Run(m, "f", &Env{}, 0)
	if tr, ok := IsTrap(err); !ok || tr.Kind != TrapOOB {
		t.Fatalf("want TrapOOB on rodata write, got %v", err)
	}
}

func TestStepLimit(t *testing.T) {
	m := &Module{Name: "t", Funcs: []*Func{
		NewFunc("f", nil, Loop(I(1), Set("x", Add(V("x"), I(1)))), Ret(V("x"))),
	}}
	_, err := Run(m, "f", &Env{}, 1000)
	if tr, ok := IsTrap(err); !ok || tr.Kind != TrapStepLimit {
		t.Fatalf("want TrapStepLimit, got %v", err)
	}
}

func TestRecursionDepthLimit(t *testing.T) {
	m := &Module{Name: "t", Funcs: []*Func{
		NewFunc("f", []string{"a"}, Ret(Call("f", Add(V("a"), I(1))))),
	}}
	_, err := Run(m, "f", &Env{Args: []int64{0}}, 0)
	if tr, ok := IsTrap(err); !ok || tr.Kind != TrapStack {
		t.Fatalf("want TrapStack, got %v", err)
	}
}

func TestLoopBreakContinue(t *testing.T) {
	// Sum odd numbers below 10, stop at 7: 1+3+5+7 = 16.
	m := &Module{Name: "t", Funcs: []*Func{
		NewFunc("f", nil,
			Set("s", I(0)),
			Set("i", I(0)),
			Loop(Lt(V("i"), I(100)),
				Set("i", Add(V("i"), I(1))),
				When(Eq(Mod(V("i"), I(2)), I(0)), &Continue{}),
				Set("s", Add(V("s"), V("i"))),
				When(Ge(V("i"), I(7)), &Break{}),
			),
			Ret(V("s")),
		),
	}}
	if res := run(t, m, "f", &Env{}); res.Ret != 16 {
		t.Errorf("got %d, want 16", res.Ret)
	}
}

func TestMemoryRoundtrip(t *testing.T) {
	m := &Module{Name: "t", Funcs: []*Func{
		NewFunc("f", []string{"p"},
			StW(V("p"), I(2), I(0x1122334455667788)),
			Ret(LdW(V("p"), I(2))),
		),
	}}
	res := run(t, m, "f", &Env{Args: []int64{DataBase}})
	if res.Ret != 0x1122334455667788 {
		t.Errorf("word roundtrip: got %#x", res.Ret)
	}
	// Little-endian byte order observable through byte loads.
	m2 := &Module{Name: "t", Funcs: []*Func{
		NewFunc("f", []string{"p"},
			StW(V("p"), I(0), I(0x0102)),
			Ret(Ld(V("p"), I(0))),
		),
	}}
	if res := run(t, m2, "f", &Env{Args: []int64{DataBase}}); res.Ret != 0x02 {
		t.Errorf("little-endian low byte: got %#x", res.Ret)
	}
}

func TestBuiltins(t *testing.T) {
	env := &Env{Args: []int64{DataBase}, Data: []byte("hello\x00world")}
	tests := []struct {
		name string
		body Expr
		want int64
	}{
		{"strlen", Call("strlen", V("p")), 5},
		{"abs-neg", Call("abs", I(-9)), 9},
		{"min", Call("min", I(3), I(-2)), -2},
		{"max", Call("max", I(3), I(-2)), 3},
		{"memcmp-eq", Call("memcmp", V("p"), V("p"), I(5)), 0},
		{"checksum-empty", Call("checksum", V("p"), I(0)), 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m := &Module{Name: "t", Funcs: []*Func{NewFunc("f", []string{"p"}, Ret(tt.body))}}
			if res := run(t, m, "f", env.Clone()); res.Ret != tt.want {
				t.Errorf("got %d, want %d", res.Ret, tt.want)
			}
		})
	}
}

func TestMemmoveOverlap(t *testing.T) {
	// Shift "abcd" right by one within the buffer: overlap must be handled.
	m := &Module{Name: "t", Funcs: []*Func{
		NewFunc("f", []string{"p"},
			Do(Call("memmove", Add(V("p"), I(1)), V("p"), I(4))),
			Ret(Ld(V("p"), I(4))),
		),
	}}
	res := run(t, m, "f", &Env{Args: []int64{DataBase}, Data: []byte("abcdX")})
	if res.Ret != 'd' {
		t.Errorf("overlapping memmove: got %c, want d", byte(res.Ret))
	}
	if string(res.Mem[:5]) != "aabcd" {
		t.Errorf("memory after shift = %q, want aabcd", res.Mem[:5])
	}
}

func TestMallocDeterministic(t *testing.T) {
	m := &Module{Name: "t", Funcs: []*Func{
		NewFunc("f", nil,
			Set("a", Call("malloc", I(10))),
			Set("b", Call("malloc", I(10))),
			St(V("a"), I(0), I(42)),
			Ret(Add(Sub(V("b"), V("a")), Ld(V("a"), I(0)))),
		),
	}}
	res := run(t, m, "f", &Env{})
	if res.Ret != 16+42 {
		t.Errorf("malloc spacing+store: got %d, want 58", res.Ret)
	}
	// First allocation is at HeapBase in every execution.
	m2 := &Module{Name: "t", Funcs: []*Func{
		NewFunc("f", nil, Ret(Call("malloc", I(1)))),
	}}
	if res := run(t, m2, "f", &Env{}); res.Ret != HeapBase {
		t.Errorf("first malloc at %#x, want %#x", res.Ret, HeapBase)
	}
}

func TestStringLiteralAddressesStable(t *testing.T) {
	m := &Module{Name: "t", Funcs: []*Func{
		NewFunc("f", nil, Ret(Call("strlen", S("four")))),
		NewFunc("g", nil, Ret(Sub(Call("strlen", S("longer-string")), Call("strlen", S("four"))))),
	}}
	if res := run(t, m, "f", &Env{}); res.Ret != 4 {
		t.Errorf("strlen(lit) = %d", res.Ret)
	}
	if res := run(t, m, "g", &Env{}); res.Ret != 9 {
		t.Errorf("strlen diff = %d, want 9", res.Ret)
	}
	_, addrs := InternStrings(m)
	if len(addrs) != 2 {
		t.Fatalf("interned %d strings, want 2", len(addrs))
	}
	for s, a := range addrs {
		if a < RodataBase || a >= RodataBase+RodataSize {
			t.Errorf("string %q at %#x outside rodata", s, a)
		}
	}
}

func TestIntraModuleCall(t *testing.T) {
	m := &Module{Name: "t", Funcs: []*Func{
		NewFunc("double", []string{"a"}, Ret(Mul(V("a"), I(2)))),
		NewFunc("f", []string{"a"}, Ret(Add(Call("double", V("a")), I(1)))),
	}}
	if res := run(t, m, "f", &Env{Args: []int64{20}}); res.Ret != 41 {
		t.Errorf("got %d, want 41", res.Ret)
	}
}

func TestBadCallTraps(t *testing.T) {
	m := &Module{Name: "t", Funcs: []*Func{
		NewFunc("f", nil, Ret(Call("nosuch", I(1)))),
		NewFunc("g", nil, Ret(Call("min", I(1)))), // wrong arity
	}}
	for _, fn := range []string{"f", "g"} {
		_, err := Run(m, fn, &Env{}, 0)
		if tr, ok := IsTrap(err); !ok || tr.Kind != TrapBadCall {
			t.Errorf("%s: want TrapBadCall, got %v", fn, err)
		}
	}
}

func TestEvalBinOpProperties(t *testing.T) {
	// Comparison operators always yield 0 or 1.
	cmpBool := func(l, r int64) bool {
		for _, op := range []BinOp{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe} {
			v, err := EvalBinOp(op, l, r)
			if err != nil || (v != 0 && v != 1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(cmpBool, nil); err != nil {
		t.Error(err)
	}
	// x-y+y == x, x^y^y == x.
	inv := func(x, y int64) bool {
		d, _ := EvalBinOp(OpSub, x, y)
		s, _ := EvalBinOp(OpAdd, d, y)
		a, _ := EvalBinOp(OpXor, x, y)
		b, _ := EvalBinOp(OpXor, a, y)
		return s == x && b == x
	}
	if err := quick.Check(inv, nil); err != nil {
		t.Error(err)
	}
	// Division traps only on zero divisor.
	divOK := func(x, y int64) bool {
		_, err := EvalBinOp(OpDiv, x, y)
		var tr *TrapError
		isTrap := errors.As(err, &tr)
		return isTrap == (y == 0)
	}
	if err := quick.Check(divOK, nil); err != nil {
		t.Error(err)
	}
}

func TestEnvCloneIsDeep(t *testing.T) {
	e := &Env{Args: []int64{1, 2}, Data: []byte{3, 4}}
	c := e.Clone()
	c.Args[0] = 99
	c.Data[0] = 99
	if e.Args[0] != 1 || e.Data[0] != 3 {
		t.Error("Clone shares backing arrays")
	}
}

func TestLocalsAndStringsAndCallees(t *testing.T) {
	f := NewFunc("f", []string{"p", "n"},
		Set("x", I(1)),
		When(Gt(V("n"), I(0)),
			Set("y", Call("strlen", S("tag"))),
			Set("x", Call("helper", V("x"))),
		),
		Ret(V("x")),
	)
	if got := f.Locals(); len(got) != 2 || got[0] != "x" || got[1] != "y" {
		t.Errorf("Locals = %v", got)
	}
	if got := f.Strings(); len(got) != 1 || got[0] != "tag" {
		t.Errorf("Strings = %v", got)
	}
	callees := f.Callees()
	if len(callees) != 2 || callees[0] != "strlen" || callees[1] != "helper" {
		t.Errorf("Callees = %v", callees)
	}
}
