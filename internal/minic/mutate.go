package minic

import (
	"math/rand"
)

// SiblingFunc derives a "lookalike" function from f: structurally similar
// (same skeleton, similar feature vector) but not semantically equal.
//
// Real libraries are full of such lookalikes — libstagefright alone has
// thousands of parser routines that resemble one another — and they are
// what inflates the paper's static-stage candidate sets (252 candidates for
// removeUnsynchronization). A `crashy` sibling additionally contains a
// latent memory fault, so it cannot survive the dynamic stage's input
// validation; the paper prunes exactly this way (252 candidates -> 38 that
// tolerate the CVE function's inputs).
func SiblingFunc(f *Func, name string, seed int64, crashy bool) *Func {
	rng := rand.New(rand.NewSource(seed))
	g := CloneFunc(f)
	g.Name = name

	// Benign divergence: jitter integer literals so the sibling computes
	// something related but different.
	jitterConstants(g.Body, rng)

	// Prepend a small extra computation, like a neighbouring overload would
	// have; benign siblings always get one so their traces diverge from
	// the original's even when constant jitter lands on dead values.
	if (!crashy || rng.Intn(2) == 0) && len(g.Params) > 0 {
		extra := Set("sib", Xor(V(g.Params[len(g.Params)-1]), I(int64(rng.Intn(255)))))
		g.Body = append([]Stmt{extra}, g.Body...)
	}
	// Occasionally add a short trailing scan, another common overload shape.
	if rng.Intn(3) == 0 {
		i := "sibi"
		acc := "sibacc"
		tail := []Stmt{Set(acc, I(0))}
		tail = append(tail, For(i, I(0), I(int64(2+rng.Intn(9))),
			Set(acc, Add(V(acc), Ld(I(DataBase), And(V(i), I(63))))))...)
		// Splice before the final return so the scan executes.
		if len(g.Body) > 0 {
			last := g.Body[len(g.Body)-1]
			g.Body = append(g.Body[:len(g.Body)-1], append(tail, last)...)
		}
	}

	if crashy {
		injectFault(g, rng)
	}
	return g
}

// jitterConstants perturbs literals (excluding 0/1, which are usually
// loop/guard scaffolding) with small deltas.
func jitterConstants(ss []Stmt, rng *rand.Rand) {
	var walkExpr func(e Expr)
	walkExpr = func(e Expr) {
		switch e := e.(type) {
		case *IntLit:
			if e.V > 1 && rng.Intn(3) == 0 {
				e.V += int64(rng.Intn(7)) - 3
				if e.V < 2 {
					e.V = 2
				}
			}
		case *Bin:
			walkExpr(e.L)
			walkExpr(e.R)
		case *Un:
			walkExpr(e.X)
		case *Load:
			walkExpr(e.Index)
		case *LoadW:
			walkExpr(e.Index)
		case *CallExpr:
			for _, a := range e.Args {
				walkExpr(a)
			}
		}
	}
	var walk func(ss []Stmt)
	walk = func(ss []Stmt) {
		for _, s := range ss {
			switch s := s.(type) {
			case *Assign:
				walkExpr(s.E)
			case *Store:
				walkExpr(s.Index)
				walkExpr(s.Val)
			case *StoreW:
				walkExpr(s.Index)
				walkExpr(s.Val)
			case *If:
				walkExpr(s.Cond)
				walk(s.Then)
				walk(s.Else)
			case *While:
				// Jittering loop-bound constants changes iteration counts,
				// which is what makes a sibling's dynamic trace diverge
				// from the original's.
				walkExpr(s.Cond)
				walk(s.Body)
			case *Return:
				if s.E != nil {
					walkExpr(s.E)
				}
			case *ExprStmt:
				walkExpr(s.E)
			}
		}
	}
	walk(ss)
}

// injectFault plants a latent memory error. The fault variants mirror real
// bug classes: a wildly-scaled index, a near-null dereference, and an
// unchecked read far past the data region.
func injectFault(g *Func, rng *rand.Rand) {
	switch rng.Intn(3) {
	case 0:
		// Scale the first memory index so moderate inputs walk out of the
		// data region.
		if scaleFirstIndex(g.Body, int64(3000+rng.Intn(4000))) {
			return
		}
		fallthrough
	case 1:
		// Dereference a near-null pointer guarded by a condition that holds
		// for essentially every input.
		guardVar := "n"
		if len(g.Params) > 0 {
			guardVar = g.Params[len(g.Params)-1]
		}
		fault := When(Ne(V(guardVar), I(int64(-7777))),
			Set("flt", Ld(I(int64(8+rng.Intn(64))), I(0))))
		g.Body = append([]Stmt{fault}, g.Body...)
	default:
		// Read far beyond the data region.
		fault := Set("flt", Ld(I(DataBase), I(DataSize+int64(rng.Intn(1024)))))
		g.Body = append([]Stmt{fault}, g.Body...)
	}
}

// scaleFirstIndex multiplies the first Load/Store index it finds.
func scaleFirstIndex(ss []Stmt, factor int64) bool {
	done := false
	var walkExpr func(e Expr)
	walkExpr = func(e Expr) {
		if done {
			return
		}
		switch e := e.(type) {
		case *Bin:
			walkExpr(e.L)
			walkExpr(e.R)
		case *Un:
			walkExpr(e.X)
		case *Load:
			e.Index = Mul(e.Index, I(factor))
			done = true
		case *LoadW:
			e.Index = Mul(e.Index, I(factor))
			done = true
		case *CallExpr:
			for _, a := range e.Args {
				walkExpr(a)
			}
		}
	}
	var walk func(ss []Stmt)
	walk = func(ss []Stmt) {
		for _, s := range ss {
			if done {
				return
			}
			switch s := s.(type) {
			case *Assign:
				walkExpr(s.E)
			case *Store:
				s.Index = Mul(s.Index, I(factor))
				done = true
			case *StoreW:
				s.Index = Mul(s.Index, I(factor))
				done = true
			case *If:
				walkExpr(s.Cond)
				walk(s.Then)
				walk(s.Else)
			case *While:
				walkExpr(s.Cond)
				walk(s.Body)
			case *Return:
				if s.E != nil {
					walkExpr(s.E)
				}
			case *ExprStmt:
				walkExpr(s.E)
			}
		}
	}
	walk(ss)
	return done
}
