package minic

import (
	"fmt"
	"strings"
)

// Print renders a module as parseable source text. Print and Parse are
// exact inverses on canonical output: Parse(Print(m)) rebuilds m
// structurally (the printer_test property).
func Print(m *Module) string {
	var b strings.Builder
	for i, f := range m.Funcs {
		if i > 0 {
			b.WriteString("\n")
		}
		printFunc(&b, f)
	}
	return b.String()
}

// PrintFunc renders one function as source text.
func PrintFunc(f *Func) string {
	var b strings.Builder
	printFunc(&b, f)
	return b.String()
}

func printFunc(b *strings.Builder, f *Func) {
	fmt.Fprintf(b, "func %s(%s) {\n", f.Name, strings.Join(f.Params, ", "))
	printStmts(b, f.Body, 1)
	b.WriteString("}\n")
}

func printStmts(b *strings.Builder, ss []Stmt, depth int) {
	ind := strings.Repeat("    ", depth)
	for _, s := range ss {
		switch s := s.(type) {
		case *Assign:
			fmt.Fprintf(b, "%s%s = %s;\n", ind, s.Name, exprText(s.E))
		case *Store:
			fmt.Fprintf(b, "%s%s[%s] = %s;\n", ind, primaryText(s.Base), exprText(s.Index), exprText(s.Val))
		case *StoreW:
			fmt.Fprintf(b, "%s%s.w[%s] = %s;\n", ind, primaryText(s.Base), exprText(s.Index), exprText(s.Val))
		case *If:
			fmt.Fprintf(b, "%sif (%s) {\n", ind, exprText(s.Cond))
			printStmts(b, s.Then, depth+1)
			if len(s.Else) > 0 {
				fmt.Fprintf(b, "%s} else {\n", ind)
				printStmts(b, s.Else, depth+1)
			}
			fmt.Fprintf(b, "%s}\n", ind)
		case *While:
			fmt.Fprintf(b, "%swhile (%s) {\n", ind, exprText(s.Cond))
			printStmts(b, s.Body, depth+1)
			fmt.Fprintf(b, "%s}\n", ind)
		case *Return:
			if s.E == nil {
				fmt.Fprintf(b, "%sreturn;\n", ind)
			} else {
				fmt.Fprintf(b, "%sreturn %s;\n", ind, exprText(s.E))
			}
		case *ExprStmt:
			fmt.Fprintf(b, "%s%s;\n", ind, exprText(s.E))
		case *Break:
			fmt.Fprintf(b, "%sbreak;\n", ind)
		case *Continue:
			fmt.Fprintf(b, "%scontinue;\n", ind)
		}
	}
}

// binOpText maps operators to source spellings. Float operators use the
// OCaml-style dotted forms.
var binOpText = map[BinOp]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpMod: "%",
	OpAnd: "&", OpOr: "|", OpXor: "^", OpShl: "<<", OpShr: ">>",
	OpEq: "==", OpNe: "!=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpFAdd: "+.", OpFSub: "-.", OpFMul: "*.", OpFDiv: "/.",
}

// exprText renders an expression fully parenthesized (canonical form).
func exprText(e Expr) string {
	switch e := e.(type) {
	case *IntLit:
		return fmt.Sprintf("%d", e.V)
	case *StrLit:
		return fmt.Sprintf("%q", e.S)
	case *VarRef:
		return e.Name
	case *Bin:
		return fmt.Sprintf("(%s %s %s)", exprText(e.L), binOpText[e.Op], exprText(e.R))
	case *Un:
		switch e.Op {
		case OpNeg:
			return fmt.Sprintf("(-%s)", exprText(e.X))
		case OpNot:
			return fmt.Sprintf("(!%s)", exprText(e.X))
		default:
			return fmt.Sprintf("(~%s)", exprText(e.X))
		}
	case *Load:
		return fmt.Sprintf("%s[%s]", primaryText(e.Base), exprText(e.Index))
	case *LoadW:
		return fmt.Sprintf("%s.w[%s]", primaryText(e.Base), exprText(e.Index))
	case *CallExpr:
		args := make([]string, len(e.Args))
		for i, a := range e.Args {
			args[i] = exprText(a)
		}
		return fmt.Sprintf("%s(%s)", e.Name, strings.Join(args, ", "))
	default:
		return "?"
	}
}

// primaryText renders an expression used as an indexing base: anything
// non-primary gets parenthesized so indexing binds correctly.
func primaryText(e Expr) string {
	switch e.(type) {
	case *IntLit, *StrLit, *VarRef, *CallExpr, *Load, *LoadW:
		return exprText(e)
	default:
		return "(" + exprText(e) + ")"
	}
}
