// Package minic defines the small procedural source language that every
// binary in this repository is compiled from.
//
// The PATCHECKO paper (DSN 2020) evaluates on Android libraries compiled from
// C++ sources with Clang across four architectures and six optimization
// levels. This package is the stand-in for those sources: a deliberately
// C-like language with functions, integer arithmetic, byte-addressed memory,
// loops and calls. Keeping the language small lets the repository own the
// entire toolchain — compiler, binary format, disassembler, emulator — while
// preserving the property the paper's learning task depends on: the same
// source function compiled for different targets and optimization levels
// yields syntactically different but semantically equal machine code.
//
// Semantics are fixed by the reference interpreter in interp.go; the
// compiler + emulator pipeline must agree with it (see the semantics
// preservation property tests).
package minic

import "fmt"

// Address-space layout shared by the interpreter and the emulator so that
// pointer arithmetic is observationally identical in both.
const (
	// DataBase is the address of the input/data buffer. Addresses below it
	// form the null guard page: any access traps.
	DataBase = 0x1000
	// DataSize is the size of the data region in bytes.
	DataSize = 1 << 16
	// HeapBase is the address of the first byte handed out by malloc.
	HeapBase = 0x100000
	// HeapSize bounds the bump allocator.
	HeapSize = 1 << 20
)

// BinOp enumerates binary operators.
type BinOp int

// Binary operators. Comparison operators evaluate to 0 or 1.
const (
	OpAdd BinOp = iota + 1
	OpSub
	OpMul
	OpDiv // traps on division by zero
	OpMod // traps on division by zero
	OpAnd
	OpOr
	OpXor
	OpShl // shift count taken mod 64
	OpShr // logical shift; count taken mod 64
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	// Floating-point operators reinterpret their operands' bits as float64
	// and return the result's bits. They exist so that compiled code
	// contains arithmetic-FP instructions (several Table I/II features
	// count them).
	OpFAdd
	OpFSub
	OpFMul
	OpFDiv
)

var binOpNames = map[BinOp]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpMod: "%",
	OpAnd: "&", OpOr: "|", OpXor: "^", OpShl: "<<", OpShr: ">>",
	OpEq: "==", OpNe: "!=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpFAdd: "f+", OpFSub: "f-", OpFMul: "f*", OpFDiv: "f/",
}

func (op BinOp) String() string {
	if s, ok := binOpNames[op]; ok {
		return s
	}
	return fmt.Sprintf("BinOp(%d)", int(op))
}

// IsFloat reports whether the operator is one of the floating-point group.
func (op BinOp) IsFloat() bool {
	switch op {
	case OpFAdd, OpFSub, OpFMul, OpFDiv:
		return true
	}
	return false
}

// IsCompare reports whether the operator yields a boolean (0/1) result.
func (op BinOp) IsCompare() bool {
	switch op {
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		return true
	}
	return false
}

// UnOp enumerates unary operators.
type UnOp int

// Unary operators.
const (
	OpNeg UnOp = iota + 1 // arithmetic negation
	OpNot                 // logical not: 1 if operand is 0, else 0
	OpInv                 // bitwise complement
)

// Expr is a source-level expression. All expressions evaluate to an int64.
type Expr interface {
	exprNode()
	String() string
}

// IntLit is an integer literal.
type IntLit struct {
	V int64
}

// StrLit is a string literal; it evaluates to the address where the string
// (NUL-terminated) has been placed in the data region. The compiler places
// string literals in .rodata; the interpreter lays them out at the top of
// the data region.
type StrLit struct {
	S string
}

// VarRef reads a parameter or local variable.
type VarRef struct {
	Name string
}

// Bin applies a binary operator.
type Bin struct {
	Op   BinOp
	L, R Expr
}

// Un applies a unary operator.
type Un struct {
	Op UnOp
	X  Expr
}

// Load reads one byte from memory at address Base+Index and zero-extends it.
type Load struct {
	Base  Expr
	Index Expr
}

// LoadW reads a little-endian 8-byte word from memory at Base+Index*8.
type LoadW struct {
	Base  Expr
	Index Expr
}

// CallExpr calls a function by name. The callee is either another function
// in the same module or a builtin library function (see builtins.go).
type CallExpr struct {
	Name string
	Args []Expr
}

func (*IntLit) exprNode()   {}
func (*StrLit) exprNode()   {}
func (*VarRef) exprNode()   {}
func (*Bin) exprNode()      {}
func (*Un) exprNode()       {}
func (*Load) exprNode()     {}
func (*LoadW) exprNode()    {}
func (*CallExpr) exprNode() {}

func (e *IntLit) String() string { return fmt.Sprintf("%d", e.V) }
func (e *StrLit) String() string { return fmt.Sprintf("%q", e.S) }
func (e *VarRef) String() string { return e.Name }
func (e *Bin) String() string {
	return fmt.Sprintf("(%s %s %s)", e.L, e.Op, e.R)
}
func (e *Un) String() string {
	switch e.Op {
	case OpNeg:
		return fmt.Sprintf("(-%s)", e.X)
	case OpNot:
		return fmt.Sprintf("(!%s)", e.X)
	default:
		return fmt.Sprintf("(~%s)", e.X)
	}
}
func (e *Load) String() string  { return fmt.Sprintf("%s[%s]", e.Base, e.Index) }
func (e *LoadW) String() string { return fmt.Sprintf("%s.w[%s]", e.Base, e.Index) }
func (e *CallExpr) String() string {
	s := e.Name + "("
	for i, a := range e.Args {
		if i > 0 {
			s += ", "
		}
		s += a.String()
	}
	return s + ")"
}

// Stmt is a source-level statement.
type Stmt interface {
	stmtNode()
}

// Assign stores the value of E into the named local/parameter.
type Assign struct {
	Name string
	E    Expr
}

// Store writes the low byte of Val to memory at Base+Index.
type Store struct {
	Base  Expr
	Index Expr
	Val   Expr
}

// StoreW writes Val as a little-endian 8-byte word at Base+Index*8.
type StoreW struct {
	Base  Expr
	Index Expr
	Val   Expr
}

// If branches on Cond != 0.
type If struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
}

// While loops while Cond != 0.
type While struct {
	Cond Expr
	Body []Stmt
}

// Return returns from the function. A nil E returns 0.
type Return struct {
	E Expr
}

// ExprStmt evaluates E for its side effects (typically a call).
type ExprStmt struct {
	E Expr
}

// Break exits the innermost loop.
type Break struct{}

// Continue jumps to the condition of the innermost loop.
type Continue struct{}

func (*Assign) stmtNode()   {}
func (*Store) stmtNode()    {}
func (*StoreW) stmtNode()   {}
func (*If) stmtNode()       {}
func (*While) stmtNode()    {}
func (*Return) stmtNode()   {}
func (*ExprStmt) stmtNode() {}
func (*Break) stmtNode()    {}
func (*Continue) stmtNode() {}

// Func is a single source-level function.
type Func struct {
	Name   string
	Params []string
	Body   []Stmt
}

// Module is a compilation unit — the analog of one Android library's source.
type Module struct {
	Name  string
	Funcs []*Func
}

// Lookup returns the function with the given name, or nil.
func (m *Module) Lookup(name string) *Func {
	for _, f := range m.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Locals returns the set of variable names assigned in the function body
// that are not parameters, in first-assignment order. The compiler uses this
// to size stack frames; size_local is one of the 48 static features.
func (f *Func) Locals() []string {
	seen := make(map[string]bool, len(f.Params))
	for _, p := range f.Params {
		seen[p] = true
	}
	var out []string
	var walk func(ss []Stmt)
	walk = func(ss []Stmt) {
		for _, s := range ss {
			switch s := s.(type) {
			case *Assign:
				if !seen[s.Name] {
					seen[s.Name] = true
					out = append(out, s.Name)
				}
			case *If:
				walk(s.Then)
				walk(s.Else)
			case *While:
				walk(s.Body)
			}
		}
	}
	walk(f.Body)
	return out
}

// Strings returns all string literals referenced by the function, in
// source order. The compiler interns them into .rodata.
func (f *Func) Strings() []string {
	var out []string
	var walkExpr func(e Expr)
	walkExpr = func(e Expr) {
		switch e := e.(type) {
		case *StrLit:
			out = append(out, e.S)
		case *Bin:
			walkExpr(e.L)
			walkExpr(e.R)
		case *Un:
			walkExpr(e.X)
		case *Load:
			walkExpr(e.Base)
			walkExpr(e.Index)
		case *LoadW:
			walkExpr(e.Base)
			walkExpr(e.Index)
		case *CallExpr:
			for _, a := range e.Args {
				walkExpr(a)
			}
		}
	}
	var walk func(ss []Stmt)
	walk = func(ss []Stmt) {
		for _, s := range ss {
			switch s := s.(type) {
			case *Assign:
				walkExpr(s.E)
			case *Store:
				walkExpr(s.Base)
				walkExpr(s.Index)
				walkExpr(s.Val)
			case *StoreW:
				walkExpr(s.Base)
				walkExpr(s.Index)
				walkExpr(s.Val)
			case *If:
				walkExpr(s.Cond)
				walk(s.Then)
				walk(s.Else)
			case *While:
				walkExpr(s.Cond)
				walk(s.Body)
			case *Return:
				if s.E != nil {
					walkExpr(s.E)
				}
			case *ExprStmt:
				walkExpr(s.E)
			}
		}
	}
	walk(f.Body)
	return out
}

// Callees returns the distinct names of functions called by f, in first-call
// order.
func (f *Func) Callees() []string {
	seen := make(map[string]bool)
	var out []string
	var walkExpr func(e Expr)
	walkExpr = func(e Expr) {
		switch e := e.(type) {
		case *Bin:
			walkExpr(e.L)
			walkExpr(e.R)
		case *Un:
			walkExpr(e.X)
		case *Load:
			walkExpr(e.Base)
			walkExpr(e.Index)
		case *LoadW:
			walkExpr(e.Base)
			walkExpr(e.Index)
		case *CallExpr:
			if !seen[e.Name] {
				seen[e.Name] = true
				out = append(out, e.Name)
			}
			for _, a := range e.Args {
				walkExpr(a)
			}
		}
	}
	var walk func(ss []Stmt)
	walk = func(ss []Stmt) {
		for _, s := range ss {
			switch s := s.(type) {
			case *Assign:
				walkExpr(s.E)
			case *Store:
				walkExpr(s.Base)
				walkExpr(s.Index)
				walkExpr(s.Val)
			case *StoreW:
				walkExpr(s.Base)
				walkExpr(s.Index)
				walkExpr(s.Val)
			case *If:
				walkExpr(s.Cond)
				walk(s.Then)
				walk(s.Else)
			case *While:
				walkExpr(s.Cond)
				walk(s.Body)
			case *Return:
				if s.E != nil {
					walkExpr(s.E)
				}
			case *ExprStmt:
				walkExpr(s.E)
			}
		}
	}
	walk(f.Body)
	return out
}
