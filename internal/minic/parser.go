package minic

// A textual frontend for the source language, completing the toolchain:
// source files (conventionally *.mc) parse to the same AST the generator
// and the CVE corpus build programmatically, and everything downstream
// (interpreter, compilers, pipeline) is shared.
//
// Grammar (C-like, expressions over int64):
//
//	module  := func*
//	func    := "func" IDENT "(" [IDENT ("," IDENT)*] ")" block
//	block   := "{" stmt* "}"
//	stmt    := lvalue "=" expr ";"         // variable, byte or word store
//	         | "if" "(" expr ")" block ["else" block]
//	         | "while" "(" expr ")" block
//	         | "return" [expr] ";"
//	         | "break" ";" | "continue" ";"
//	         | expr ";"                     // call for effect
//	lvalue  := IDENT | primary "[" expr "]" | primary ".w[" expr "]"
//
// Binary operators follow C precedence (tightest first): * / % ; + - and
// the float forms +. -. *. /. ; << >> ; < <= > >= ; == != ; & ; ^ ; |.
// Unary: - ! ~. Postfix: call "(...)", byte index "[e]", word index ".w[e]".
// Literals: decimal and 0x hex integers, Go-quoted strings. Comments: //
// to end of line.

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// ParseError reports a syntax error with position information.
type ParseError struct {
	Line, Col int
	Msg       string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("minic: parse error at %d:%d: %s", e.Line, e.Col, e.Msg)
}

// Parse parses module source text.
func Parse(name, src string) (*Module, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	mod := &Module{Name: name}
	for !p.at(tokEOF) {
		f, err := p.parseFunc()
		if err != nil {
			return nil, err
		}
		mod.Funcs = append(mod.Funcs, f)
	}
	if len(mod.Funcs) == 0 {
		return nil, fmt.Errorf("minic: %s: no functions", name)
	}
	return mod, nil
}

// --- lexer ---

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokInt
	tokStr
	tokPunct // operators and delimiters, stored verbatim in text
)

type token struct {
	kind      tokKind
	text      string
	ival      int64
	sval      string
	line, col int
}

// punctuation, longest first so the lexer is maximal-munch.
var puncts = []string{
	"<<", ">>", "<=", ">=", "==", "!=", "+.", "-.", "*.", "/.", ".w[",
	"(", ")", "{", "}", "[", "]", ",", ";", "=",
	"+", "-", "*", "/", "%", "&", "|", "^", "<", ">", "!", "~",
}

func lex(src string) ([]token, error) {
	var toks []token
	line, col := 1, 1
	i := 0
	advance := func(n int) {
		for k := 0; k < n; k++ {
			if src[i+k] == '\n' {
				line++
				col = 1
			} else {
				col++
			}
		}
		i += n
	}
outer:
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			advance(1)
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				advance(1)
			}
		case c == '"':
			start, sl, sc := i, line, col
			advance(1)
			for i < len(src) && src[i] != '"' {
				if src[i] == '\\' && i+1 < len(src) {
					advance(1)
				}
				advance(1)
			}
			if i >= len(src) {
				return nil, &ParseError{Line: sl, Col: sc, Msg: "unterminated string"}
			}
			advance(1)
			s, err := strconv.Unquote(src[start:i])
			if err != nil {
				return nil, &ParseError{Line: sl, Col: sc, Msg: "bad string literal"}
			}
			toks = append(toks, token{kind: tokStr, sval: s, line: sl, col: sc})
		case unicode.IsDigit(rune(c)):
			start, sl, sc := i, line, col
			for i < len(src) && (isIdentChar(src[i]) || src[i] == 'x' || src[i] == 'X') {
				advance(1)
			}
			text := src[start:i]
			v, err := strconv.ParseInt(text, 0, 64)
			if err != nil {
				// 9223372036854775808 appears as the magnitude of MinInt64
				// under a unary minus; wrap it like C literals do.
				u, uerr := strconv.ParseUint(text, 0, 64)
				if uerr != nil {
					return nil, &ParseError{Line: sl, Col: sc, Msg: "bad integer literal " + text}
				}
				v = int64(u)
			}
			toks = append(toks, token{kind: tokInt, ival: v, line: sl, col: sc})
		case isIdentStart(c):
			start, sl, sc := i, line, col
			for i < len(src) && isIdentChar(src[i]) {
				advance(1)
			}
			toks = append(toks, token{kind: tokIdent, text: src[start:i], line: sl, col: sc})
		default:
			for _, pct := range puncts {
				if strings.HasPrefix(src[i:], pct) {
					toks = append(toks, token{kind: tokPunct, text: pct, line: line, col: col})
					advance(len(pct))
					continue outer
				}
			}
			return nil, &ParseError{Line: line, Col: col, Msg: fmt.Sprintf("unexpected character %q", c)}
		}
	}
	toks = append(toks, token{kind: tokEOF, line: line, col: col})
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentChar(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

// --- parser ---

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(kind tokKind) bool { return p.cur().kind == kind }

func (p *parser) atPunct(text string) bool {
	return p.cur().kind == tokPunct && p.cur().text == text
}

func (p *parser) atKeyword(kw string) bool {
	return p.cur().kind == tokIdent && p.cur().text == kw
}

func (p *parser) eat(text string) bool {
	if p.atPunct(text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) errf(format string, args ...any) error {
	t := p.cur()
	return &ParseError{Line: t.line, Col: t.col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) expect(text string) error {
	if !p.eat(text) {
		return p.errf("expected %q, found %q", text, p.cur().text)
	}
	return nil
}

func (p *parser) parseFunc() (*Func, error) {
	if !p.atKeyword("func") {
		return nil, p.errf("expected 'func'")
	}
	p.next()
	if !p.at(tokIdent) {
		return nil, p.errf("expected function name")
	}
	name := p.next().text
	if err := p.expect("("); err != nil {
		return nil, err
	}
	var params []string
	for !p.atPunct(")") {
		if len(params) > 0 {
			if err := p.expect(","); err != nil {
				return nil, err
			}
		}
		if !p.at(tokIdent) {
			return nil, p.errf("expected parameter name")
		}
		params = append(params, p.next().text)
	}
	p.next() // ')'
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &Func{Name: name, Params: params, Body: body}, nil
}

func (p *parser) parseBlock() ([]Stmt, error) {
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	var out []Stmt
	for !p.atPunct("}") {
		if p.at(tokEOF) {
			return nil, p.errf("unterminated block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	p.next() // '}'
	return out, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	switch {
	case p.atKeyword("if"):
		p.next()
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		then, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		var els []Stmt
		if p.atKeyword("else") {
			p.next()
			els, err = p.parseBlock()
			if err != nil {
				return nil, err
			}
		}
		return &If{Cond: cond, Then: then, Else: els}, nil
	case p.atKeyword("while"):
		p.next()
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return &While{Cond: cond, Body: body}, nil
	case p.atKeyword("return"):
		p.next()
		if p.eat(";") {
			return &Return{}, nil
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return &Return{E: e}, nil
	case p.atKeyword("break"):
		p.next()
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return &Break{}, nil
	case p.atKeyword("continue"):
		p.next()
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return &Continue{}, nil
	}
	// Expression-led statement: assignment, store or call-for-effect.
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.eat("=") {
		val, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		switch lv := e.(type) {
		case *VarRef:
			return &Assign{Name: lv.Name, E: val}, nil
		case *Load:
			return &Store{Base: lv.Base, Index: lv.Index, Val: val}, nil
		case *LoadW:
			return &StoreW{Base: lv.Base, Index: lv.Index, Val: val}, nil
		default:
			return nil, p.errf("cannot assign to this expression")
		}
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	return &ExprStmt{E: e}, nil
}

// precedence levels, loosest first. Operators at the same level are
// left-associative.
var precLevels = [][]string{
	{"|"},
	{"^"},
	{"&"},
	{"==", "!="},
	{"<", "<=", ">", ">="},
	{"<<", ">>"},
	{"+", "-", "+.", "-."},
	{"*", "/", "%", "*.", "/."},
}

var punctBinOp = map[string]BinOp{
	"+": OpAdd, "-": OpSub, "*": OpMul, "/": OpDiv, "%": OpMod,
	"&": OpAnd, "|": OpOr, "^": OpXor, "<<": OpShl, ">>": OpShr,
	"==": OpEq, "!=": OpNe, "<": OpLt, "<=": OpLe, ">": OpGt, ">=": OpGe,
	"+.": OpFAdd, "-.": OpFSub, "*.": OpFMul, "/.": OpFDiv,
}

func (p *parser) parseExpr() (Expr, error) { return p.parseBin(0) }

func (p *parser) parseBin(level int) (Expr, error) {
	if level >= len(precLevels) {
		return p.parseUnary()
	}
	left, err := p.parseBin(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		matched := false
		for _, opText := range precLevels[level] {
			if p.atPunct(opText) {
				p.next()
				right, err := p.parseBin(level + 1)
				if err != nil {
					return nil, err
				}
				left = &Bin{Op: punctBinOp[opText], L: left, R: right}
				matched = true
				break
			}
		}
		if !matched {
			return left, nil
		}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	switch {
	case p.eat("-"):
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Fold negated literals so "-5" is the literal -5 (keeps Print and
		// Parse exact inverses).
		if lit, ok := x.(*IntLit); ok {
			return &IntLit{V: -lit.V}, nil
		}
		return &Un{Op: OpNeg, X: x}, nil
	case p.eat("!"):
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Un{Op: OpNot, X: x}, nil
	case p.eat("~"):
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Un{Op: OpInv, X: x}, nil
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (Expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.eat("["):
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect("]"); err != nil {
				return nil, err
			}
			e = &Load{Base: e, Index: idx}
		case p.eat(".w["):
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect("]"); err != nil {
				return nil, err
			}
			e = &LoadW{Base: e, Index: idx}
		default:
			return e, nil
		}
	}
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokInt:
		p.next()
		return &IntLit{V: t.ival}, nil
	case t.kind == tokStr:
		p.next()
		return &StrLit{S: t.sval}, nil
	case t.kind == tokIdent:
		p.next()
		if p.eat("(") {
			var args []Expr
			for !p.atPunct(")") {
				if len(args) > 0 {
					if err := p.expect(","); err != nil {
						return nil, err
					}
				}
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
			}
			p.next() // ')'
			return &CallExpr{Name: t.text, Args: args}, nil
		}
		return &VarRef{Name: t.text}, nil
	case p.eat("("):
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return e, nil
	default:
		return nil, p.errf("unexpected token %q", t.text)
	}
}
