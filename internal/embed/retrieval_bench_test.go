// Retrieval-stage benchmarks: the embed-once candidate retrieval path
// (single-tower embedding + annindex nomination + exact top-K rescoring)
// against the batched exact scan it replaces. The fixture is the fleet-scan
// shape at CVE-database scale: one vendor library build shipped on eight
// device images (800 target slots over 100 unique bodies), swept by 128
// query vectors. The external test package breaks the embed <- patchecko
// import cycle while keeping the benchmark next to the tower it measures.
package embed_test

import (
	"encoding/json"
	"math/rand"
	"os"
	"testing"

	"repro/internal/annindex"
	"repro/internal/detector"
	"repro/internal/embed"
	"repro/internal/features"
	"repro/internal/nn"
)

const (
	retrQueries = 128 // the CVE-database scale the speedup is amortized over
	retrUnique  = 100 // distinct function bodies in the fleet
	retrDup     = 8   // device images sharing each body
	retrSlots   = retrUnique * retrDup
	retrTopK    = 128 // patchecko.DefaultTopK: covers every unique body here
	retrSmallK  = 16  // the pruning regime, reported informationally
)

// retrFixture is everything both paths share: the teacher model, the
// distilled tower, the built index, and the prepared target halves.
type retrFixture struct {
	model   *detector.Model
	emb     *embed.Embedder
	idx     *annindex.Index
	uts     *detector.TargetSet // the unique bodies
	sts     *detector.TargetSet // all slots, duplication-blind
	queries []features.Vector
	slotOf  []int // slot -> unique body
}

func retrVector(rng *rand.Rand) features.Vector {
	var v features.Vector
	for i := range v {
		v[i] = float64(rng.Intn(64))
		if rng.Intn(8) == 0 {
			v[i] = 0
		}
	}
	return v
}

func newRetrFixture(tb testing.TB) *retrFixture {
	tb.Helper()
	rng := rand.New(rand.NewSource(1))
	fit := make([]features.Vector, 100)
	for i := range fit {
		fit[i] = retrVector(rng)
	}
	f := &retrFixture{model: &detector.Model{
		Net:       nn.NewPaperNetwork(2),
		Norm:      detector.FitNormalizer(fit),
		Threshold: 0.25,
	}}
	var err error
	if f.emb, err = embed.DistillFromModel(f.model, 1); err != nil {
		tb.Fatal(err)
	}
	unique := make([]features.Vector, retrUnique)
	vecs := make([][]float64, retrUnique)
	xbuf := make([]float64, features.NumStatic)
	hbuf := make([]float64, f.emb.Hidden())
	slab := make([]float64, retrUnique*f.emb.Dim())
	for i := range unique {
		unique[i] = retrVector(rng)
		vecs[i] = slab[i*f.emb.Dim() : (i+1)*f.emb.Dim()]
		f.emb.EmbedInto(vecs[i], xbuf, hbuf, unique[i])
	}
	if f.idx, err = annindex.Build(vecs, annindex.DefaultConfig()); err != nil {
		tb.Fatal(err)
	}
	slots := make([]features.Vector, retrSlots)
	f.slotOf = make([]int, retrSlots)
	for i := range slots {
		f.slotOf[i] = i % retrUnique
		slots[i] = unique[f.slotOf[i]]
	}
	f.uts = f.model.PrepareTargets(unique)
	f.sts = f.model.PrepareTargets(slots)
	f.queries = make([]features.Vector, retrQueries)
	for i := range f.queries {
		f.queries[i] = retrVector(rng)
	}
	return f
}

// BenchmarkRetrievalExactBatched is the comparator: one query swept over
// every target slot on the batched exact path, blind to duplication and to
// the index. ns/op is one full-query sweep (800 pairs).
func BenchmarkRetrievalExactBatched(b *testing.B) {
	f := newRetrFixture(b)
	sc := f.model.NewScorer()
	qhs := make([]*detector.QueryHalves, len(f.queries))
	for i, q := range f.queries {
		qhs[i] = f.model.PrepareQuery(q)
	}
	sc.Candidates(qhs[0], f.sts) // warm the candidate buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sc.Candidates(qhs[i%len(qhs)], f.sts)
	}
	reportRetrPairMetrics(b, retrSlots)
}

// BenchmarkRetrievalIndexed is the embed-once retrieval path: per query,
// embed, nominate top-K unique bodies from the index, rescore only those
// with the exact pair network, and fan the scores out to every slot. The
// index build is amortized across the whole query sweep (see
// BenchmarkRetrievalIndexBuild for its one-time cost); ns/op covers the
// same 800 logical pairs as the exact sweep.
func BenchmarkRetrievalIndexed(b *testing.B) {
	f := newRetrFixture(b)
	sc := f.model.NewScorer()
	qhs := make([]*detector.QueryHalves, len(f.queries))
	for i, q := range f.queries {
		qhs[i] = f.model.PrepareQuery(q)
	}
	qe := make([]float64, f.emb.Dim())
	xbuf := make([]float64, features.NumStatic)
	hbuf := make([]float64, f.emb.Hidden())
	scores := make([]float64, retrUnique)
	fanned := make([]float64, retrSlots)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qi := i % len(f.queries)
		f.emb.EmbedInto(qe, xbuf, hbuf, f.queries[qi])
		hits := f.idx.Search(qe, retrTopK)
		for _, h := range hits {
			scores[h.ID] = sc.Pair(qhs[qi], f.uts, h.ID)
		}
		for slot, u := range f.slotOf {
			fanned[slot] = scores[u]
		}
	}
	reportRetrPairMetrics(b, retrSlots)
}

// BenchmarkRetrievalIndexBuild prices the one-time embed-and-build step the
// indexed path amortizes across the CVE sweep.
func BenchmarkRetrievalIndexBuild(b *testing.B) {
	f := newRetrFixture(b)
	rng := rand.New(rand.NewSource(3))
	unique := make([]features.Vector, retrUnique)
	for i := range unique {
		unique[i] = retrVector(rng)
	}
	xbuf := make([]float64, features.NumStatic)
	hbuf := make([]float64, f.emb.Hidden())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		slab := make([]float64, retrUnique*f.emb.Dim())
		vecs := make([][]float64, retrUnique)
		for j := range unique {
			vecs[j] = slab[j*f.emb.Dim() : (j+1)*f.emb.Dim()]
			f.emb.EmbedInto(vecs[j], xbuf, hbuf, unique[j])
		}
		if _, err := annindex.Build(vecs, annindex.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func reportRetrPairMetrics(b *testing.B, pairs int) {
	total := float64(pairs) * float64(b.N)
	b.ReportMetric(b.Elapsed().Seconds()*1e9/total, "ns/pair")
	b.ReportMetric(total/b.Elapsed().Seconds(), "pairs/s")
}

// recallAtK measures, over every query, whether the exact scan's best unique
// body (argmax pair score, ties to the lower index — the engine's candidate
// order) appears among the index's top-K nominations.
func recallAtK(f *retrFixture, k int) float64 {
	sc := f.model.NewScorer()
	qe := make([]float64, f.emb.Dim())
	xbuf := make([]float64, features.NumStatic)
	hbuf := make([]float64, f.emb.Hidden())
	found := 0
	for _, q := range f.queries {
		qh := f.model.PrepareQuery(q)
		best, bestScore := 0, sc.Pair(qh, f.uts, 0)
		for u := 1; u < retrUnique; u++ {
			if s := sc.Pair(qh, f.uts, u); s > bestScore {
				best, bestScore = u, s
			}
		}
		f.emb.EmbedInto(qe, xbuf, hbuf, q)
		for _, h := range f.idx.Search(qe, k) {
			if h.ID == best {
				found++
				break
			}
		}
	}
	return float64(found) / float64(len(f.queries))
}

// retrievalArtifact is the "retrieval" object merged into BENCH_static.json.
type retrievalArtifact struct {
	Benchmark     string  `json:"benchmark"`
	Queries       int     `json:"queries"`
	Targets       int     `json:"targets"`
	UniqueTargets int     `json:"unique_targets"`
	TopK          int     `json:"top_k"`
	EmbedDim      int     `json:"embed_dim"`
	ExactBatched  retrRow `json:"exact_batched"`
	Indexed       retrRow `json:"indexed"`
	// Speedup is Indexed's pairs/sec over ExactBatched's on the same
	// 800-logical-pair sweep; the acceptance floor is 5x.
	Speedup float64 `json:"speedup"`
	// RecallAtK is measured over every query: the exact top-1 body's
	// membership in the top-K nomination. At the operating point (K covers
	// every unique body) the engine contract requires exactly 1.0.
	RecallAtK float64 `json:"recall_at_k"`
	// IndexBuildNs is the one-time embed+build cost the sweep amortizes.
	IndexBuildNs int64 `json:"index_build_ns"`
	// Pruning regime (K < unique bodies), reported informationally: the
	// approximate recall the index delivers when it actually has to choose.
	SmallK         int     `json:"small_k"`
	SmallKRecall   float64 `json:"small_k_recall"`
	AmortizedPerQ  float64 `json:"index_build_amortized_per_query_ns"`
	QueriesPerBldQ float64 `json:"index_build_paid_back_in_queries"`
}

type retrRow struct {
	NsPerPair   float64 `json:"ns_per_pair"`
	PairsPerSec float64 `json:"pairs_per_sec"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// TestWriteRetrievalBenchArtifact measures the retrieval path against the
// batched exact sweep and merges the "retrieval" object into the artifact at
// PATCHECKO_BENCH_OUT (preserving the detector-written rows). Skipped when
// the variable is unset; `make bench-static` opts in after the detector
// writer has run.
func TestWriteRetrievalBenchArtifact(t *testing.T) {
	out := os.Getenv("PATCHECKO_BENCH_OUT")
	if out == "" {
		t.Skip("PATCHECKO_BENCH_OUT not set")
	}
	row := func(r testing.BenchmarkResult) retrRow {
		ns := float64(r.NsPerOp()) / retrSlots
		return retrRow{NsPerPair: ns, PairsPerSec: 1e9 / ns, AllocsPerOp: r.AllocsPerOp()}
	}
	exact := testing.Benchmark(BenchmarkRetrievalExactBatched)
	indexed := testing.Benchmark(BenchmarkRetrievalIndexed)
	build := testing.Benchmark(BenchmarkRetrievalIndexBuild)
	f := newRetrFixture(t)
	art := retrievalArtifact{
		Benchmark: "internal/embed retrieval: embed-once nomination + exact top-K rescoring, " +
			"fleet image (8x duplication) swept by a CVE-scale query set",
		Queries:       retrQueries,
		Targets:       retrSlots,
		UniqueTargets: retrUnique,
		TopK:          retrTopK,
		EmbedDim:      f.emb.Dim(),
		ExactBatched:  row(exact),
		Indexed:       row(indexed),
		Speedup:       float64(exact.NsPerOp()) / float64(indexed.NsPerOp()),
		RecallAtK:     recallAtK(f, retrTopK),
		IndexBuildNs:  build.NsPerOp(),
		SmallK:        retrSmallK,
		SmallKRecall:  recallAtK(f, retrSmallK),
	}
	art.AmortizedPerQ = float64(build.NsPerOp()) / retrQueries
	if saved := exact.NsPerOp() - indexed.NsPerOp(); saved > 0 {
		art.QueriesPerBldQ = float64(build.NsPerOp()) / float64(saved)
	}

	// Merge into the detector-written artifact rather than clobbering it.
	merged := make(map[string]json.RawMessage)
	if prev, err := os.ReadFile(out); err == nil {
		if err := json.Unmarshal(prev, &merged); err != nil {
			t.Fatalf("existing artifact %s is not a JSON object: %v", out, err)
		}
	}
	rawRetr, err := json.Marshal(art)
	if err != nil {
		t.Fatal(err)
	}
	merged["retrieval"] = rawRetr
	raw, err := json.MarshalIndent(merged, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(raw, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("exact %.0f ns/pair, indexed %.0f ns/pair, speedup %.2fx, recall@%d %.3f, "+
		"recall@%d %.3f, index build %d ns (%.0f ns/query over the sweep)",
		art.ExactBatched.NsPerPair, art.Indexed.NsPerPair, art.Speedup,
		art.TopK, art.RecallAtK, art.SmallK, art.SmallKRecall, art.IndexBuildNs, art.AmortizedPerQ)
	if art.Speedup < 5 {
		t.Errorf("retrieval speedup %.2fx below the 5x acceptance floor", art.Speedup)
	}
	if art.RecallAtK != 1.0 {
		t.Errorf("recall@%d = %.4f, want exactly 1.0 at the covering operating point",
			art.TopK, art.RecallAtK)
	}
	if art.Indexed.AllocsPerOp > 8 {
		t.Errorf("indexed path allocates %d objects/op; only the Search result should allocate",
			art.Indexed.AllocsPerOp)
	}
}
