package embed

import (
	"bytes"
	"math"
	"math/rand"
	"slices"
	"sync"
	"testing"

	"repro/internal/corpus"
	"repro/internal/detector"
	"repro/internal/features"
	"repro/internal/nn"
)

// testTeacher builds a small deterministic detector model to distill from,
// mirroring the synthetic fixtures used by the detector benchmarks. Cheap
// (untrained network) — used by the mechanics tests where only determinism
// and shape matter, not ranking quality.
func testTeacher(t *testing.T, seed int64) *detector.Model {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	fit := make([]features.Vector, 100)
	for i := range fit {
		fit[i] = testVector(rng)
	}
	return &detector.Model{
		Net:       nn.NewPaperNetwork(seed + 1),
		Norm:      detector.FitNormalizer(fit),
		Threshold: 0.25,
	}
}

var (
	trainedOnce  sync.Once
	trainedModel *detector.Model
	trainedErr   error
)

// trainedTeacher trains a real (tiny-scale) detector once per test binary:
// distillation quality is only meaningful against a teacher whose pair
// scores actually encode function locality.
func trainedTeacher(t *testing.T) *detector.Model {
	t.Helper()
	trainedOnce.Do(func() {
		groups, err := corpus.TrainingGroups(corpus.ScaleTiny, 11)
		if err != nil {
			trainedErr = err
			return
		}
		cfg := detector.DefaultTrainConfig()
		cfg.Epochs = 6
		trainedModel, _, _, trainedErr = detector.Train(groups, cfg)
	})
	if trainedErr != nil {
		t.Fatal(trainedErr)
	}
	return trainedModel
}

func testVector(rng *rand.Rand) features.Vector {
	var v features.Vector
	for i := range v {
		v[i] = float64(rng.Intn(64))
		if rng.Intn(8) == 0 {
			v[i] = 0
		}
	}
	return v
}

func TestDistillDeterminism(t *testing.T) {
	teacher := testTeacher(t, 1)
	a, err := DistillFromModel(teacher, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := DistillFromModel(teacher, 7)
	if err != nil {
		t.Fatal(err)
	}
	ab, err := a.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	bb, err := b.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ab, bb) {
		t.Fatal("equal (teacher, seed) distillations are not bit-identical")
	}
	c, err := DistillFromModel(teacher, 8)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := c.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(ab, cb) {
		t.Fatal("different seeds produced identical towers")
	}
}

func TestEmbedReproducible(t *testing.T) {
	teacher := testTeacher(t, 2)
	e, err := DistillFromModel(teacher, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	vecs := make([]features.Vector, 32)
	for i := range vecs {
		vecs[i] = testVector(rng)
	}
	want := make([][]float64, len(vecs))
	for i, v := range vecs {
		want[i] = e.Embed(v)
		if len(want[i]) != e.Dim() {
			t.Fatalf("Embed returned %d dims, want %d", len(want[i]), e.Dim())
		}
	}
	// EmbedInto with reused buffers must agree bit for bit, including when
	// hammered from many goroutines at once.
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out := make([]float64, e.Dim())
			xbuf := make([]float64, features.NumStatic)
			hbuf := make([]float64, DefaultHidden)
			for i, v := range vecs {
				e.EmbedInto(out, xbuf, hbuf, v)
				if !slices.Equal(out, want[i]) {
					t.Errorf("vector %d: concurrent EmbedInto differs from Embed", i)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestDistanceTracksTeacher checks the distillation actually learned the
// teacher's structure: across fresh probe pairs, squared embedding
// distance must correlate positively with teacher dissimilarity. The
// tower is a recall filter, so rank correlation — not calibration — is
// the contract.
func TestDistanceTracksTeacher(t *testing.T) {
	teacher := trainedTeacher(t)
	e, err := DistillFromModel(teacher, 11)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	const pairs = 300
	xs := make([]float64, 0, pairs) // teacher dissimilarity
	ys := make([]float64, 0, pairs) // embedding distance²
	for p := 0; p < pairs; p++ {
		a, b := testVector(rng), testVector(rng)
		if p%2 == 1 { // near-duplicate regime
			b = a
			for i := 0; i < 6; i++ {
				b[rng.Intn(features.NumStatic)] += float64(rng.Intn(5))
			}
		}
		ea, eb := e.Embed(a), e.Embed(b)
		d2 := 0.0
		for i := range ea {
			d := ea[i] - eb[i]
			d2 += d * d
		}
		xs = append(xs, 1-teacher.Similarity(a, b))
		ys = append(ys, d2)
	}
	if r := pearson(xs, ys); r < 0.2 {
		t.Fatalf("embedding distance barely tracks teacher dissimilarity: r=%.3f", r)
	}
}

func pearson(xs, ys []float64) float64 {
	n := float64(len(xs))
	var mx, my float64
	for i := range xs {
		mx += xs[i]
		my += ys[i]
	}
	mx /= n
	my /= n
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

func TestMarshalRoundTrip(t *testing.T) {
	teacher := testTeacher(t, 4)
	e, err := DistillFromModel(teacher, 9)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := e.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Unmarshal(blob)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 16; i++ {
		v := testVector(rng)
		if !slices.Equal(dec.Embed(v), e.Embed(v)) {
			t.Fatal("decoded embedder produces different embeddings")
		}
	}
	blob2, err := dec.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, blob2) {
		t.Fatal("re-marshal after Unmarshal differs")
	}
}

func TestUnmarshalRejects(t *testing.T) {
	teacher := testTeacher(t, 5)
	e, err := DistillFromModel(teacher, 1)
	if err != nil {
		t.Fatal(err)
	}
	valid, err := e.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"garbage":        []byte("not json"),
		"empty object":   []byte("{}"),
		"bad version":    bytes.Replace(valid, []byte(`"version": 1`), []byte(`"version": 99`), 1),
		"bad dim":        bytes.Replace(valid, []byte(`"dim": 16`), []byte(`"dim": 0`), 1),
		"shape mismatch": bytes.Replace(valid, []byte(`"hidden": 32`), []byte(`"hidden": 31`), 1),
	}
	for name, blob := range cases {
		if _, err := Unmarshal(blob); err == nil {
			t.Errorf("%s: Unmarshal accepted invalid blob", name)
		}
	}
}

func TestDistillRejects(t *testing.T) {
	teacher := testTeacher(t, 6)
	if _, err := Distill(nil, DefaultConfig(1)); err == nil {
		t.Fatal("Distill accepted nil teacher")
	}
	if _, err := Distill(&detector.Model{}, DefaultConfig(1)); err == nil {
		t.Fatal("Distill accepted incomplete teacher")
	}
	bad := DefaultConfig(1)
	bad.Dim = 0
	if _, err := Distill(teacher, bad); err == nil {
		t.Fatal("Distill accepted zero-dim config")
	}
	bad = DefaultConfig(1)
	bad.LR = 0
	if _, err := Distill(teacher, bad); err == nil {
		t.Fatal("Distill accepted zero learning rate")
	}
}
