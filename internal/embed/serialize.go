package embed

import (
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/detector"
	"repro/internal/features"
)

// serialVersion is the on-disk format version; bump on layout changes.
const serialVersion = 1

// serialized is the versioned JSON form of an Embedder.
type serialized struct {
	Version int                  `json:"version"`
	Dim     int                  `json:"dim"`
	Hidden  int                  `json:"hidden"`
	Norm    *detector.Normalizer `json:"norm"`
	W1      []float64            `json:"w1"`
	B1      []float64            `json:"b1"`
	W2      []float64            `json:"w2"`
	B2      []float64            `json:"b2"`
}

// Marshal serializes the embedder to its versioned JSON form.
func (e *Embedder) Marshal() ([]byte, error) {
	return json.MarshalIndent(&serialized{
		Version: serialVersion,
		Dim:     e.dim,
		Hidden:  e.hidden,
		Norm:    e.norm,
		W1:      e.w1,
		B1:      e.b1,
		W2:      e.w2,
		B2:      e.b2,
	}, "", " ")
}

// Unmarshal parses and validates a Marshal blob.
func Unmarshal(data []byte) (*Embedder, error) {
	var s serialized
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("embed: parse: %w", err)
	}
	if s.Version != serialVersion {
		return nil, fmt.Errorf("embed: unsupported version %d", s.Version)
	}
	if s.Dim < 1 || s.Hidden < 1 {
		return nil, fmt.Errorf("embed: invalid geometry %d×%d", s.Hidden, s.Dim)
	}
	if s.Norm == nil || len(s.Norm.Mean) != features.NumStatic || len(s.Norm.Std) != features.NumStatic {
		return nil, fmt.Errorf("embed: missing or malformed normalizer")
	}
	if len(s.W1) != s.Hidden*features.NumStatic || len(s.B1) != s.Hidden ||
		len(s.W2) != s.Dim*s.Hidden || len(s.B2) != s.Dim {
		return nil, fmt.Errorf("embed: weight shapes do not match geometry")
	}
	for _, slab := range [][]float64{s.Norm.Mean, s.Norm.Std, s.W1, s.B1, s.W2, s.B2} {
		for _, x := range slab {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return nil, fmt.Errorf("embed: non-finite weight")
			}
		}
	}
	for _, sd := range s.Norm.Std {
		if sd <= 0 {
			return nil, fmt.Errorf("embed: non-positive normalizer std")
		}
	}
	return &Embedder{
		dim:    s.Dim,
		hidden: s.Hidden,
		norm:   s.Norm,
		w1:     s.W1,
		b1:     s.B1,
		w2:     s.W2,
		b2:     s.B2,
	}, nil
}
