// Package embed distills a single-tower embedding head from the trained
// pair network so every function maps to one fixed vector.
//
// The pair DNN scores a (query, target) pair with a forward pass over the
// 96-dim concatenation — exact, but O(functions × CVEs × modes) GEMVs per
// scan. The embedding tower makes candidate retrieval a nearest-neighbor
// lookup (internal/annindex) with the exact pair network rescoring only
// the top-K survivors; the tower is a recall filter, never a scoring
// authority.
//
// Distillation is anchor-based kernel-map regression: Dim probe functions
// are frozen as anchors, and the tower is trained so that coordinate i of
// Embed(x) regresses the teacher's symmetrized pair score against anchor
// i (the pair-logit targets, through the sigmoid). Two functions the
// teacher scores as similar have near-identical anchor profiles, so
// Euclidean proximity in embedding space approximates teacher similarity
// structure — the property retrieval needs.
//
// Everything is deterministic: probes and anchors are sampled from the
// teacher's frozen normalization statistics with a seeded generator,
// targets come from detector.Model.Similarity (the scalar reference
// path), and training is momentum SGD over a fixed sample order. Equal
// (teacher, Config) inputs produce bit-identical towers, and Embed uses
// one fixed sequential accumulation order, so embeddings — and therefore
// retrieval sets and reports — are reproducible at any worker count.
package embed

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/detector"
	"repro/internal/features"
)

// Default tower geometry: 48 normalized features → Hidden ReLU → Dim.
const (
	// DefaultDim is the embedding dimensionality (= anchor count).
	DefaultDim = 16
	// DefaultHidden is the hidden-layer width.
	DefaultHidden = 32
)

// Config parameterizes Distill. The zero value is not valid; start from
// DefaultConfig.
type Config struct {
	Seed   int64 // drives probe/anchor sampling and weight init
	Dim    int   // embedding dimensionality = anchor count
	Hidden int   // hidden-layer width
	Probes int   // synthetic training functions sampled from teacher stats
	Epochs int
	LR     float64 // initial learning rate (decays per epoch)
}

// DefaultConfig returns the standard distillation configuration for seed.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:   seed,
		Dim:    DefaultDim,
		Hidden: DefaultHidden,
		Probes: 384,
		Epochs: 30,
		LR:     5e-3,
	}
}

// Embedder is a trained single-tower embedding head. Immutable after
// Distill/Unmarshal and safe for concurrent Embed use.
type Embedder struct {
	dim    int
	hidden int
	norm   *detector.Normalizer
	w1     []float64 // hidden × NumStatic, row-major
	b1     []float64
	w2     []float64 // dim × hidden, row-major
	b2     []float64
}

// Dim returns the embedding dimensionality.
func (e *Embedder) Dim() int { return e.dim }

// Hidden returns the tower's hidden width (the hbuf length EmbedInto needs).
func (e *Embedder) Hidden() int { return e.hidden }

// Embed maps one raw feature vector to its embedding. The accumulation
// order is fixed (ascending input index within ascending output row), so
// the result is bit-identical across runs and goroutines.
func (e *Embedder) Embed(v features.Vector) []float64 {
	out := make([]float64, e.dim)
	x := make([]float64, features.NumStatic)
	h := make([]float64, e.hidden)
	e.EmbedInto(out, x, h, v)
	return out
}

// EmbedInto is the allocation-free form of Embed: out must have length
// Dim, xbuf length features.NumStatic, hbuf length Hidden.
func (e *Embedder) EmbedInto(out, xbuf, hbuf []float64, v features.Vector) {
	e.norm.ApplyInto(xbuf, v)
	e.forward(out, xbuf, hbuf)
}

// forward runs the tower over an already-normalized input.
func (e *Embedder) forward(out, x, h []float64) {
	for o := 0; o < e.hidden; o++ {
		row := e.w1[o*features.NumStatic : (o+1)*features.NumStatic]
		s := e.b1[o]
		for i, xv := range x {
			s += row[i] * xv
		}
		if s < 0 {
			s = 0
		}
		h[o] = s
	}
	for o := 0; o < e.dim; o++ {
		row := e.w2[o*e.hidden : (o+1)*e.hidden]
		s := e.b2[o]
		for i, hv := range h {
			s += row[i] * hv
		}
		out[o] = s
	}
}

// invSlog inverts detector's signed-log feature scaling, mapping a value
// from normalized probe space back to raw feature space.
func invSlog(y float64) float64 {
	if y < 0 {
		return -math.Expm1(-y)
	}
	return math.Expm1(y)
}

// DistillFromModel distills an embedding tower from the trained pair
// network with the default configuration.
func DistillFromModel(teacher *detector.Model, seed int64) (*Embedder, error) {
	return Distill(teacher, DefaultConfig(seed))
}

// Distill trains an embedding tower against the teacher's pair scores.
func Distill(teacher *detector.Model, cfg Config) (*Embedder, error) {
	if teacher == nil || teacher.Net == nil || teacher.Norm == nil {
		return nil, fmt.Errorf("embed: incomplete teacher model")
	}
	if teacher.Net.InputDim() != 2*features.NumStatic {
		return nil, fmt.Errorf("embed: teacher input dim %d, want %d", teacher.Net.InputDim(), 2*features.NumStatic)
	}
	if cfg.Dim < 1 || cfg.Hidden < 1 || cfg.Probes < 2*cfg.Dim || cfg.Epochs < 1 {
		return nil, fmt.Errorf("embed: invalid config %+v", cfg)
	}
	if cfg.LR <= 0 {
		return nil, fmt.Errorf("embed: invalid config %+v", cfg)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	e := &Embedder{
		dim:    cfg.Dim,
		hidden: cfg.Hidden,
		norm: &detector.Normalizer{
			Mean: append([]float64(nil), teacher.Norm.Mean...),
			Std:  append([]float64(nil), teacher.Norm.Std...),
		},
		w1: make([]float64, cfg.Hidden*features.NumStatic),
		b1: make([]float64, cfg.Hidden),
		w2: make([]float64, cfg.Dim*cfg.Hidden),
		b2: make([]float64, cfg.Dim),
	}
	initUniform(rng, e.w1, features.NumStatic)
	initUniform(rng, e.w2, cfg.Hidden)
	// Start the output layer small: targets are sigmoid scores in [0, 1],
	// so initial outputs should sit near zero and grow toward them.
	for i := range e.w2 {
		e.w2[i] *= 0.2
	}

	// Probe functions sampled in the teacher's normalized space and mapped
	// back to raw feature space, so the tower trains on the input
	// distribution the normalizer was fitted for. Half the probes are
	// perturbed copies of earlier ones: the near-duplicate regime the
	// static stage must rank correctly.
	sample := func() features.Vector {
		var v features.Vector
		for i := 0; i < features.NumStatic; i++ {
			z := rng.NormFloat64()
			v[i] = invSlog(e.norm.Mean[i] + e.norm.Std[i]*z)
		}
		return v
	}
	perturb := func(v features.Vector) features.Vector {
		for i := range v {
			z := rng.NormFloat64() * 0.15
			v[i] = invSlog(slogf(v[i]) + e.norm.Std[i]*z)
		}
		return v
	}
	probes := make([]features.Vector, cfg.Probes)
	for p := range probes {
		if p >= 2 && p%2 == 1 {
			probes[p] = perturb(probes[rng.Intn(p)])
		} else {
			probes[p] = sample()
		}
	}

	// The first Dim probes are frozen as anchors; every probe's regression
	// target is its squashed symmetrized pair LOGIT against each anchor.
	// Logits, unlike post-sigmoid scores, keep their dynamic range in the
	// dissimilar bulk (where the sigmoid saturates at 0), so the regression
	// has gradient signal everywhere; tanh(l/4) bounds the targets while
	// preserving the ordering around the decision boundary at logit 0.
	anchors := probes[:cfg.Dim]
	xpair := make([]float64, 2*features.NumStatic)
	pairLogit := func(a, b features.Vector) float64 {
		e.norm.ApplyInto(xpair[:features.NumStatic], a)
		e.norm.ApplyInto(xpair[features.NumStatic:], b)
		lab := teacher.Net.InferLogit(xpair)
		e.norm.ApplyInto(xpair[:features.NumStatic], b)
		e.norm.ApplyInto(xpair[features.NumStatic:], a)
		lba := teacher.Net.InferLogit(xpair)
		return (lab + lba) / 2
	}
	targets := make([][]float64, cfg.Probes)
	for p, v := range probes {
		row := make([]float64, cfg.Dim)
		for i, a := range anchors {
			row[i] = math.Tanh(pairLogit(v, a) / 4)
		}
		targets[p] = row
	}

	e.train(probes, targets, cfg)
	return e, nil
}

// slogf mirrors detector's signed-log feature scaling.
func slogf(x float64) float64 {
	if x < 0 {
		return -math.Log1p(-x)
	}
	return math.Log1p(x)
}

func initUniform(rng *rand.Rand, w []float64, fanIn int) {
	limit := math.Sqrt(6 / float64(fanIn))
	for i := range w {
		w[i] = (rng.Float64()*2 - 1) * limit
	}
}

// train fits the tower to the anchor-score targets with momentum SGD over
// the fixed sample order: loss per sample is Σ_o (e(x)_o − t_o)².
func (e *Embedder) train(probes []features.Vector, targets [][]float64, cfg Config) {
	nIn := features.NumStatic
	gW1 := make([]float64, len(e.w1))
	gB1 := make([]float64, len(e.b1))
	gW2 := make([]float64, len(e.w2))
	gB2 := make([]float64, len(e.b2))
	vW1 := make([]float64, len(e.w1))
	vB1 := make([]float64, len(e.b1))
	vW2 := make([]float64, len(e.w2))
	vB2 := make([]float64, len(e.b2))
	x := make([]float64, nIn)
	h := make([]float64, e.hidden)
	out := make([]float64, e.dim)
	ge := make([]float64, e.dim)
	gh := make([]float64, e.hidden)

	const momentum = 0.9
	lr := cfg.LR
	for ep := 0; ep < cfg.Epochs; ep++ {
		for p, v := range probes {
			e.norm.ApplyInto(x, v)
			e.forward(out, x, h)
			for o := 0; o < e.dim; o++ {
				ge[o] = 2 * (out[o] - targets[p][o])
			}

			for i := range gW1 {
				gW1[i] = 0
			}
			for i := range gB1 {
				gB1[i] = 0
			}
			for i := range gW2 {
				gW2[i] = 0
			}
			for i := range gB2 {
				gB2[i] = 0
			}
			e.backprop(x, h, ge, gh, gW1, gB1, gW2, gB2)
			clipGrads(8.0, gW1, gB1, gW2, gB2)

			step(e.w1, vW1, gW1, lr, momentum)
			step(e.b1, vB1, gB1, lr, momentum)
			step(e.w2, vW2, gW2, lr, momentum)
			step(e.b2, vB2, gB2, lr, momentum)
		}
		lr *= 0.95
	}
}

// backprop accumulates gradients for one sample given dL/d embedding.
func (e *Embedder) backprop(x, h, ge, gh, gW1, gB1, gW2, gB2 []float64) {
	nIn := features.NumStatic
	for i := range gh {
		gh[i] = 0
	}
	for o := 0; o < e.dim; o++ {
		g := ge[o]
		row := e.w2[o*e.hidden : (o+1)*e.hidden]
		grow := gW2[o*e.hidden : (o+1)*e.hidden]
		gB2[o] += g
		for i, hv := range h {
			grow[i] += g * hv
			gh[i] += g * row[i]
		}
	}
	for o := 0; o < e.hidden; o++ {
		if h[o] <= 0 { // ReLU gate: zero activation blocks the gradient
			continue
		}
		g := gh[o]
		gB1[o] += g
		grow := gW1[o*nIn : (o+1)*nIn]
		for i, xv := range x {
			grow[i] += g * xv
		}
	}
}

// clipGrads rescales a per-sample gradient to a bounded global norm,
// keeping early training stable regardless of teacher scale.
func clipGrads(maxNorm float64, slabs ...[]float64) {
	n2 := 0.0
	for _, s := range slabs {
		for _, g := range s {
			n2 += g * g
		}
	}
	if n2 <= maxNorm*maxNorm {
		return
	}
	scale := maxNorm / math.Sqrt(n2)
	for _, s := range slabs {
		for i := range s {
			s[i] *= scale
		}
	}
}

func step(w, vel, grad []float64, lr, momentum float64) {
	for i := range w {
		vel[i] = momentum*vel[i] - lr*grad[i]
		w[i] += vel[i]
	}
}
