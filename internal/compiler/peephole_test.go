package compiler

import (
	"testing"

	"repro/internal/isa"
)

func TestPeepholeJumpToNext(t *testing.T) {
	in := []isa.Instr{
		{Op: isa.Ldi, Rd: 0, Imm: 1},
		{Op: isa.Jmp, Imm: 2}, // jump to the immediately-following instruction
		{Op: isa.Ret},
	}
	out := peephole(in)
	if len(out) != 2 {
		t.Fatalf("got %d instrs, want 2: %v", len(out), out)
	}
	if out[0].Op != isa.Ldi || out[1].Op != isa.Ret {
		t.Errorf("wrong survivors: %v", out)
	}
}

func TestPeepholeSelfMove(t *testing.T) {
	in := []isa.Instr{
		{Op: isa.Mov, Rd: 3, Rs1: 3},
		{Op: isa.Mov, Rd: 3, Rs1: 4}, // real move stays
		{Op: isa.Ret},
	}
	out := peephole(in)
	if len(out) != 2 || out[0].Rs1 != 4 {
		t.Errorf("self-move not removed: %v", out)
	}
}

func TestPeepholePushPopPair(t *testing.T) {
	in := []isa.Instr{
		{Op: isa.Push, Rs1: 5},
		{Op: isa.Pop, Rd: 5},
		{Op: isa.Ret},
	}
	out := peephole(in)
	if len(out) != 1 || out[0].Op != isa.Ret {
		t.Errorf("push/pop pair not removed: %v", out)
	}
	// Different registers: must stay (it's a move via stack).
	in2 := []isa.Instr{
		{Op: isa.Push, Rs1: 5},
		{Op: isa.Pop, Rd: 6},
		{Op: isa.Ret},
	}
	if out := peephole(in2); len(out) != 3 {
		t.Errorf("push/pop to different reg was removed: %v", out)
	}
}

func TestPeepholeBranchTargetRemap(t *testing.T) {
	// 0: jz ->3 ; 1: mov r2,r2 (dead) ; 2: ldi ; 3: ret
	in := []isa.Instr{
		{Op: isa.Jz, Rs1: 1, Imm: 3},
		{Op: isa.Mov, Rd: 2, Rs1: 2},
		{Op: isa.Ldi, Rd: 0, Imm: 9},
		{Op: isa.Ret},
	}
	out := peephole(in)
	if len(out) != 3 {
		t.Fatalf("got %d instrs: %v", len(out), out)
	}
	if out[0].Op != isa.Jz || out[0].Imm != 2 {
		t.Errorf("branch target not remapped: %v", out[0])
	}
}

func TestPeepholeStoreLoadForwarding(t *testing.T) {
	fp := isa.Reg(14)
	in := []isa.Instr{
		{Op: isa.Stw, Rs1: fp, Imm: -8, Rs2: 4},
		{Op: isa.Ldw, Rd: 5, Rs1: fp, Imm: -8},
		{Op: isa.Ret},
	}
	out := peephole(in)
	if len(out) != 3 {
		t.Fatalf("got %d instrs: %v", len(out), out)
	}
	if out[1].Op != isa.Mov || out[1].Rd != 5 || out[1].Rs1 != 4 {
		t.Errorf("load not forwarded: %v", out[1])
	}
	// Different slot: untouched.
	in2 := []isa.Instr{
		{Op: isa.Stw, Rs1: fp, Imm: -8, Rs2: 4},
		{Op: isa.Ldw, Rd: 5, Rs1: fp, Imm: -16},
		{Op: isa.Ret},
	}
	if out := peephole(in2); out[1].Op != isa.Ldw {
		t.Errorf("forwarding across different slots: %v", out[1])
	}
}

func TestPeepholeRespectsBranchTargets(t *testing.T) {
	// The Pop at index 2 is a branch target: the pair must NOT be removed.
	in := []isa.Instr{
		{Op: isa.Jz, Rs1: 1, Imm: 2},
		{Op: isa.Push, Rs1: 5},
		{Op: isa.Pop, Rd: 5},
		{Op: isa.Ret},
	}
	out := peephole(in)
	if len(out) != 4 {
		t.Errorf("branch-targeted push/pop removed: %v", out)
	}
}

func TestPeepholeFixpoint(t *testing.T) {
	// Removing one jump exposes another jump-to-next; the pass iterates.
	in := []isa.Instr{
		{Op: isa.Jmp, Imm: 1},
		{Op: isa.Jmp, Imm: 2},
		{Op: isa.Ret},
	}
	out := peephole(in)
	if len(out) != 1 || out[0].Op != isa.Ret {
		t.Errorf("fixpoint not reached: %v", out)
	}
}

func TestPeepholeEmpty(t *testing.T) {
	if out := peephole(nil); len(out) != 0 {
		t.Errorf("empty input produced %v", out)
	}
}
